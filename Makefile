# Developer convenience targets. `make check` is the pre-submit gate:
# static analysis, the full test suite under the race detector, and a short
# fuzzing smoke of the analyzer/search entry points.

GO ?= go

.PHONY: all build test check vet race fuzz-smoke bench bench-sim bench-eval bench-assoc bench-serve bench-serve-smoke bench-optimize bench-cluster bench-cluster-smoke serve-check cover golden

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A 10-second no-panic fuzz of AnalyzeWithOptions + Search on top of the
# checked-in seed corpus, plus the cross-engine simulation invariants:
# analytic vs exact agreement, the sampled estimator's bounds, the
# set-associative simulator's batched-vs-scalar equivalence, and the
# transformation-plan legality contract (plans apply cleanly or reject
# before evaluation, and applied plans preserve execution semantics).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyzeNoPanic$$' -fuzztime 10s ./internal/tilesearch
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyticVsExact$$' -fuzztime 10s ./internal/validate
	$(GO) test -run '^$$' -fuzz '^FuzzSampledBounds$$' -fuzztime 10s ./internal/validate
	$(GO) test -run '^$$' -fuzz '^FuzzAssocBlockVsScalar$$' -fuzztime 10s ./internal/cachesim
	$(GO) test -run '^$$' -fuzz '^FuzzPlanLegality$$' -fuzztime 10s ./internal/loopir

check: vet race fuzz-smoke

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Simulation-pipeline benchmarks (frozen scalar baseline vs batched/sharded,
# plus per-engine rows) and the committed BENCH_sim.json artifact. The
# go-test benchmarks and the artifact generator share the internal/simbench
# workload definitions, so the two outputs measure the same thing. The final
# smoke run fails if the analytic engine is not ≥100× faster than the exact
# simulator on the n=512 matmul.
bench-sim:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/simbench
	$(GO) run ./cmd/simbench -o BENCH_sim.json
	$(GO) run ./cmd/simbench -smoke

# Symbolic-evaluation benchmarks (tree-walking baseline vs compiled
# programs on slot frames) and the committed BENCH_eval.json artifact,
# sharing the internal/evalbench workload definitions the same way
# bench-sim shares internal/simbench.
bench-eval:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/evalbench
	$(GO) run ./cmd/evalbench -o BENCH_eval.json

# Set-associative accuracy benchmarks: the conflict-aware model against the
# AssocCache ground truth across an associativity sweep, plus ns/prediction
# for both models, written to the committed BENCH_assoc.json artifact. The
# go-test benchmarks and the artifact generator share internal/simbench, so
# CI's 1-iteration simbench smoke exercises these paths too.
bench-assoc:
	$(GO) test -run '^$$' -bench '^BenchmarkAssoc' -benchmem ./internal/simbench
	$(GO) run ./cmd/simbench -assoc -o BENCH_assoc.json

# Serving-layer load test: 32 closed-loop clients against an in-process
# server, every response verified byte-for-byte against the direct library
# call, throughput and latency percentiles written to BENCH_serve.json.
# Scenarios: predict-hot, mixed, the batch 1/8/64 sweep (items/sec and
# speedup vs predict-hot), NDJSON streaming, and the 64-client storm
# (single-request p99 with batch traffic in the mix).
bench-serve:
	$(GO) run ./cmd/loadgen -clients 32 -duration 2s -o BENCH_serve.json

# Short regression tripwire for the batch amortization claim: asserts
# batch-64 items/sec ≥ 3× the predict-hot request rate. CI-friendly.
bench-serve-smoke:
	$(GO) run ./cmd/loadgen -scenario batch -batch-size 64 -smoke \
		-clients 16 -duration 500ms -o ""

# Joint transformation-search benchmarks (the plan search vs the tile-only
# baseline on the committed workloads) and the BENCH_opt.json artifact,
# sharing internal/optbench the same way bench-sim shares internal/simbench.
# The smoke run fails if any workload's joint winner stops strictly beating
# its tile-only baseline.
bench-optimize:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/optbench
	$(GO) run ./cmd/optbench -o BENCH_opt.json
	$(GO) run ./cmd/optbench -smoke

# Cluster-tier benchmark: a key sweep bigger than one replica's caches,
# routed through analysisrouter, single replica vs 4 — the aggregate
# cache-capacity win consistent-hash sharding buys even on one core. Every
# response is byte-verified against the direct library computation and the
# artifact is committed as BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/clusterbench -o BENCH_cluster.json
	$(GO) run ./cmd/clusterbench -smoke -o ""

# Short regression tripwire for the scale-out claim: asserts 4-replica
# throughput ≥ 2.5× single-replica. CI-friendly.
bench-cluster-smoke:
	$(GO) run ./cmd/clusterbench -smoke -duration 1s -o ""

# End-to-end analysisd lifecycle check: start, readiness, one request per
# endpoint, SIGTERM, clean drain — then the same for the cluster tier
# (analysisrouter in front of two replicas: routed requests, all-backends-down
# 503, clean router drain).
serve-check:
	sh scripts/serve_check.sh

# Golden-file tests for the cmd tools' text output and RunReport JSON.
# Regenerate with: go test ./cmd/... -update
golden:
	$(GO) test -run Golden ./...

# Coverage gate for the observability layer: the instrumentation the run
# reports depend on must stay ≥ 70% covered.
cover:
	$(GO) test -coverprofile=/tmp/obs.cover ./internal/obs
	@$(GO) tool cover -func=/tmp/obs.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/obs coverage: %s\n", $$3; \
		if (pct < 70) { print "FAIL: internal/obs coverage below 70%"; exit 1 } }'
