# Developer convenience targets. `make check` is the pre-submit gate:
# static analysis, the full test suite under the race detector, and a short
# fuzzing smoke of the analyzer/search entry points.

GO ?= go

.PHONY: all build test check vet race fuzz-smoke bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A 10-second no-panic fuzz of AnalyzeWithOptions + Search on top of the
# checked-in seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyzeNoPanic$$' -fuzztime 10s ./internal/tilesearch

check: vet race fuzz-smoke

bench:
	$(GO) test -bench . -benchtime 1x ./...
