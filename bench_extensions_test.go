// Benchmarks for the extension experiments: ablations of the model's
// refinements, the fused four-index chain, loop-order ranking, and the
// exact success function.
package repro

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/tce"
	"repro/internal/tilesearch"
	"repro/internal/trace"
)

// BenchmarkAblationFullModel / BenchmarkAblationBareModel quantify the cost
// and accuracy impact of the span-cost refinements (see EXPERIMENTS.md):
// both analyze the two-index transform and evaluate one prediction; the
// reported rel-err metric compares against exact simulation at N=64.
func benchAblation(b *testing.B, opts core.Options) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(64, 16, 8, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	const cache = 1024
	// One-time accuracy measurement.
	a0, err := core.AnalyzeWithOptions(nest, opts)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := a0.PredictTotal(env, cache)
	if err != nil {
		b.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		b.Fatal(err)
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cache})
	p.Run(sim.Access)
	m, _ := sim.Results().MissesFor(cache)
	rel := float64(pred-m) / float64(m)
	if rel < 0 {
		rel = -rel
	}
	b.ReportMetric(rel*100, "rel-err-%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.AnalyzeWithOptions(nest, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.PredictTotal(env, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFullModel(b *testing.B) {
	benchAblation(b, core.DefaultOptions())
}

func BenchmarkAblationNoCarrierCorrection(b *testing.B) {
	benchAblation(b, core.Options{CarrierCorrection: false, ComplementRule: true})
}

func BenchmarkAblationNoComplementRule(b *testing.B) {
	benchAblation(b, core.Options{CarrierCorrection: true, ComplementRule: false})
}

// BenchmarkFusedFourIndexAnalysis measures the full TCE pipeline: op-min,
// fused-chain code generation, and cache analysis of the resulting
// imperfect nest.
func BenchmarkFusedFourIndexAnalysis(b *testing.B) {
	c, r := tce.FourIndexTransform()
	for i := 0; i < b.N; i++ {
		tree, err := tce.OpMin(c, r, expr.Env{"N": 64, "V": 32})
		if err != nil {
			b.Fatal(err)
		}
		nest, err := tce.GenFusedTransformChain("four-index-fused", tree.Sequence(), r)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Analyze(nest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopOrderRanking regenerates the loop-order extension experiment
// (predictions only).
func BenchmarkLoopOrderRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunLoopOrder(128, 1024, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 6 {
			b.Fatal("missing orders")
		}
	}
}

// BenchmarkSuccessFunction measures the exact success-function collection
// overhead relative to plain simulation.
func BenchmarkSuccessFunction(b *testing.B) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.MatmulEnv(32, 8, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), nil)
		sf := sim.CollectExact()
		p.Run(sim.Access)
		if sf.MissesFor(1024) <= 0 {
			b.Fatal("no misses")
		}
	}
}

// BenchmarkSearchVsExhaustive reports the evaluation-count advantage of the
// §6 search over the full divisor grid.
func BenchmarkSearchVsExhaustive(b *testing.B) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		b.Fatal(err)
	}
	opt := tilesearch.Options{
		Dims:       []tilesearch.Dim{{Symbol: "TI", Max: 64}, {Symbol: "TJ", Max: 64}, {Symbol: "TK", Max: 64}},
		CacheElems: 512,
		BaseEnv:    expr.Env{"N": 64},
		DivisorOf:  64,
	}
	var searchEvals, exEvals int
	for i := 0; i < b.N; i++ {
		res, err := tilesearch.Search(a, opt)
		if err != nil {
			b.Fatal(err)
		}
		searchEvals = res.Evaluated
		exOpt := opt
		exOpt.MinTile = 2
		ex, err := tilesearch.Exhaustive(a, exOpt)
		if err != nil {
			b.Fatal(err)
		}
		exEvals = ex.Evaluated
	}
	b.ReportMetric(float64(searchEvals), "search-evals")
	b.ReportMetric(float64(exEvals), "exhaustive-evals")
}
