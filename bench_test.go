// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks for the substrates. The table/figure
// benchmarks regenerate the same rows/series the paper reports (through
// internal/experiments, which the cmd/ tools also use); the full-scale
// simulated validations, which take minutes, live behind the cmd tools and
// are reported in EXPERIMENTS.md — here simulation benchmarks run at a
// proportionally scaled size so `go test -bench=.` stays tractable.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/smp"
	"repro/internal/tilesearch"
	"repro/internal/trace"
)

// BenchmarkTable1Partitions regenerates Table 1: the symbolic component
// inventory (iteration-space partitions, instance counts, stack-distance
// expressions) of the tiled matrix multiplication.
func BenchmarkTable1Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nest, err := kernels.TiledMatmul()
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.Analyze(nest)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Table()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2TwoIndexMisses regenerates the predicted-miss column of
// Table 2 (six two-index-transform configurations).
func BenchmarkTable2TwoIndexMisses(b *testing.B) {
	var rows []experiments.MissRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable2(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	exact := 0
	for _, r := range rows {
		if r.Predicted == r.PaperPred {
			exact++
		}
	}
	b.ReportMetric(float64(exact), "rows-matching-paper")
}

// BenchmarkTable3MatmulMisses regenerates the predicted-miss column of
// Table 3 (six tiled-matmul configurations). All six match the paper's
// predictions exactly.
func BenchmarkTable3MatmulMisses(b *testing.B) {
	var rows []experiments.MissRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable3(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	exact := 0
	for _, r := range rows {
		if r.Predicted == r.PaperPred {
			exact++
		}
	}
	b.ReportMetric(float64(exact), "rows-matching-paper")
}

// BenchmarkTable2SimulatedScaled runs one Table 2 row end to end —
// analytical prediction plus exact trace simulation — at 1/4 linear scale
// (N=64, cache scaled by the same factor in each dimension product).
func BenchmarkTable2SimulatedScaled(b *testing.B) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(64, 32, 16, 16, 32)
	if err != nil {
		b.Fatal(err)
	}
	const cache = 2048
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := a.PredictTotal(env, cache)
		if err != nil {
			b.Fatal(err)
		}
		p, err := trace.Compile(nest, env)
		if err != nil {
			b.Fatal(err)
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cache})
		p.Run(sim.Access)
		m, err := sim.Results().MissesFor(cache)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rel := float64(pred-m) / float64(m)
			if rel < 0 {
				rel = -rel
			}
			b.ReportMetric(rel*100, "rel-err-%")
		}
	}
}

// BenchmarkTable3SimulatedScaled does the same for a scaled Table 3 row.
func BenchmarkTable3SimulatedScaled(b *testing.B) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.MatmulEnv(64, 8, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	const cache = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := a.PredictTotal(env, cache)
		if err != nil {
			b.Fatal(err)
		}
		p, err := trace.Compile(nest, env)
		if err != nil {
			b.Fatal(err)
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cache})
		p.Run(sim.Access)
		m, err := sim.Results().MissesFor(cache)
		if err != nil {
			b.Fatal(err)
		}
		_ = pred
		_ = m
	}
}

// BenchmarkTable4TileSearch regenerates a Table 4 row: the §6 tile-size
// search for the two-index transform with a 64 KB cache.
func BenchmarkTable4TileSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4([]int64{256})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatal("missing row")
		}
	}
}

// BenchmarkExhaustiveParallel scores the full 4-dimensional divisor grid of
// the two-index transform at several worker counts. Results are
// byte-identical across sub-benchmarks; compare their ns/op for the
// parallel speedup (visible only on multi-core hosts — a single-core host
// reports parity, measuring dispatch overhead instead). The cache-hit-%
// metric is the component-evaluation cache's share of avoided work.
func BenchmarkExhaustiveParallel(b *testing.B) {
	a, err := experiments.TwoIndexAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	const n = 128
	opt := tilesearch.Options{
		Dims: []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n}},
		CacheElems: experiments.KB(64),
		BaseEnv:    expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
		DivisorOf:  n,
		MinTile:    2,
	}
	for _, j := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			o := opt
			o.Parallelism = j
			var res *tilesearch.Result
			for i := 0; i < b.N; i++ {
				res, err = tilesearch.Exhaustive(a, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Evaluated), "candidates")
			b.ReportMetric(100*res.Cache.HitRate(), "cache-hit-%")
		})
	}
}

// BenchmarkSearchParallel measures the pruned §6 search at several worker
// counts on the same 4-dimensional problem.
func BenchmarkSearchParallel(b *testing.B) {
	a, err := experiments.TwoIndexAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	const n = 512
	opt := tilesearch.Options{
		Dims: []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n}},
		CacheElems: experiments.KB(64),
		BaseEnv:    expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
		DivisorOf:  n,
	}
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			o := opt
			o.Parallelism = j
			var res *tilesearch.Result
			for i := 0; i < b.N; i++ {
				res, err = tilesearch.Search(a, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Evaluated), "candidates")
			b.ReportMetric(100*res.Cache.HitRate(), "cache-hit-%")
		})
	}
}

// BenchmarkPredictMissesCached is BenchmarkPredictMisses through an
// EvalCache — the tile search's evaluation path. After the first iteration
// every component evaluation is a cache hit, so the delta against
// BenchmarkPredictMisses is the expression-evaluation cost the cache
// removes from the search's inner loop.
func BenchmarkPredictMissesCached(b *testing.B) {
	a, err := experiments.TwoIndexAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(1024, 64, 16, 16, 64)
	if err != nil {
		b.Fatal(err)
	}
	ec := core.NewEvalCache(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ec.PredictTotal(env, 8192); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*ec.Stats().HitRate(), "cache-hit-%")
}

// BenchmarkFig10SMP regenerates Figure 10: parallel time of the two-index
// transform at loop range 1024 across P ∈ {1,2,4,8} for equi-sized tiles
// and the model-predicted tile.
func BenchmarkFig10SMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure(1024)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig11SMP regenerates Figure 11 (loop range 2048).
func BenchmarkFig11SMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure(2048)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkStackSimAccess measures the exact LRU stack simulator's
// per-access cost on a random trace.
func BenchmarkStackSimAccess(b *testing.B) {
	const space = 1 << 18
	r := rand.New(rand.NewSource(1))
	addrs := make([]int64, 1<<16)
	for i := range addrs {
		addrs[i] = int64(r.Intn(space))
	}
	sim := cachesim.NewStackSim(space, 1, []int64{8192})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Access(0, addrs[i&(len(addrs)-1)])
	}
}

// BenchmarkTraceGeneration measures reference-stream generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(64, 16, 16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		b.Fatal(err)
	}
	n, _ := p.Length()
	b.SetBytes(n) // one "byte" per access for throughput reporting
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int64
		p.Run(func(_ int, _ int64) { count++ })
		if count != n {
			b.Fatal("trace length mismatch")
		}
	}
}

// BenchmarkAnalyzeTwoIndex measures full symbolic analysis of the paper's
// flagship imperfect nest.
func BenchmarkAnalyzeTwoIndex(b *testing.B) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(nest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictMisses measures one model evaluation (the inner loop of
// the tile search).
func BenchmarkPredictMisses(b *testing.B) {
	a, err := experiments.TwoIndexAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(1024, 64, 16, 16, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.PredictTotal(env, 8192); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeTwoIndexTiled measures the real floating-point kernel.
func BenchmarkNativeTwoIndexTiled(b *testing.B) {
	const n = 128
	a, c1, c2 := kernels.NewMatrix(n, n), kernels.NewMatrix(n, n), kernels.NewMatrix(n, n)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)
	out := kernels.NewMatrix(n, n)
	b.SetBytes(int64(4 * n * n * n / 1024)) // rough flop proxy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kernels.TwoIndexTiled(a, c1, c2, out, 32, 16, 16, 32, 0, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeTwoIndexParallel measures the goroutine-parallel executor
// (on a single-core host this exercises correctness and overhead, not
// speedup).
func BenchmarkNativeTwoIndexParallel(b *testing.B) {
	const n = 128
	a, c1, c2 := kernels.NewMatrix(n, n), kernels.NewMatrix(n, n), kernels.NewMatrix(n, n)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)
	out := kernels.NewMatrix(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := smp.RunParallelTwoIndex(a, c1, c2, out, 32, 16, 16, 32, 2); err != nil {
			b.Fatal(err)
		}
	}
}
