// Command analysisd serves the cache model over HTTP: the /v1 endpoints
// of internal/service (analyze, predict, tilesearch, simulate, batch —
// the latter two also as ?stream=1 NDJSON) plus /healthz, with admission
// control, request coalescing and a graceful SIGTERM drain. See README's
// Serving section for the API.
//
// Usage:
//
//	analysisd [-addr :8097] [-debug-addr :8098] [-workers N] [-queue N]
//	          [-cache-entries N] [-max-batch N] [-timeout 30s] [-report run.json]
//
// The process prints one "analysisd listening on ADDR" line once the
// listener is bound (scripts wait for it), serves until SIGINT/SIGTERM,
// then drains: new requests get 503, in-flight ones complete, the worker
// queue runs dry, and — when -report is given — a RunReport with the full
// service metrics is written before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8097", "listen address for the API")
		debugAddr    = flag.String("debug-addr", "", "listen address for the expvar/pprof debug server (off when empty)")
		workers      = flag.Int("workers", 0, "compute workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		cacheEntries = flag.Int("cache-entries", 256, "response cache capacity")
		maxBatch     = flag.Int("max-batch", 0, "max items per /v1/batch request (0 = default 256)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request compute/wait timeout")
		drainWait    = flag.Duration("drain-timeout", service.DrainTimeout, "bound on the shutdown drain")
		report       = flag.String("report", "", "write a RunReport JSON on exit")
	)
	flag.Parse()
	if err := run(*addr, *debugAddr, *workers, *queue, *cacheEntries, *maxBatch, *timeout, *drainWait, *report); err != nil {
		fmt.Fprintln(os.Stderr, "analysisd:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr string, workers, queue, cacheEntries, maxBatch int, timeout, drainWait time.Duration, report string) error {
	m := obs.New()
	svc := service.New(service.Config{
		Workers:        workers,
		QueueDepth:     queue,
		CacheEntries:   cacheEntries,
		MaxBatchItems:  maxBatch,
		RequestTimeout: timeout,
		Obs:            m,
	})
	sv, err := service.Serve(addr, svc)
	if err != nil {
		return err
	}

	var debug *obs.DebugServer
	if debugAddr != "" {
		debug, err = obs.StartDebugServer(debugAddr, m)
		if err != nil {
			return err
		}
		fmt.Printf("analysisd debug server on %s\n", debug.Addr)
	}
	fmt.Printf("analysisd listening on %s\n", sv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("analysisd: %s, draining\n", s)

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	drainErr := sv.Drain(ctx)
	if debug != nil {
		if err := debug.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if report != "" {
		rep := obs.NewRunReport("analysisd", os.Args[1:])
		rep.AddMetrics(m)
		rep.Finish()
		if err := rep.WriteFile(report); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("analysisd: drained cleanly")
	return nil
}
