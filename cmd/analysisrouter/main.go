// Command analysisrouter is the cluster tier's front door: a thin HTTP
// router that consistent-hashes canonical request keys across a set of
// analysisd replicas (internal/cluster). Each replica's caches stay hot for
// exactly its key range; /v1/batch requests are split by item key, fanned
// out, and reassembled byte-identical to a single backend's envelope.
//
// Usage:
//
//	analysisrouter -replicas http://h1:8097,http://h2:8097 [-addr :8090]
//	               [-vnodes 512] [-attempts 0] [-hedge 100ms]
//	               [-max-inflight 256] [-max-batch 256] [-timeout 30s]
//	               [-probe-interval 500ms] [-debug-addr :8091] [-report run.json]
//
// The process prints one "analysisrouter listening on ADDR" line once the
// listener is bound (scripts wait for it), routes until SIGINT/SIGTERM,
// then drains: new requests get 503, in-flight ones finish against their
// replicas, and — with -report — a RunReport with the router metrics is
// written before exit. Draining the router never touches the backends.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address for the router")
		replicas      = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		vnodes        = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		attempts      = flag.Int("attempts", 0, "max distinct replicas tried per request (0 = all)")
		hedge         = flag.Duration("hedge", 100*time.Millisecond, "delay before hedging to the next ring successor")
		maxInflight   = flag.Int("max-inflight", 256, "max concurrently proxied requests (full answers 429)")
		maxBatch      = flag.Int("max-batch", 0, "max items per /v1/batch request (0 = default 256; must not exceed the replicas' cap)")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request end-to-end timeout, hedges included")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "replica health poll period")
		drainWait     = flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
		debugAddr     = flag.String("debug-addr", "", "listen address for the expvar/pprof debug server (off when empty)")
		report        = flag.String("report", "", "write a RunReport JSON on exit")
	)
	flag.Parse()
	if err := run(*addr, *replicas, *vnodes, *attempts, *hedge, *maxInflight, *maxBatch, *timeout, *probeInterval, *drainWait, *debugAddr, *report); err != nil {
		fmt.Fprintln(os.Stderr, "analysisrouter:", err)
		os.Exit(1)
	}
}

func run(addr, replicas string, vnodes, attempts int, hedge time.Duration, maxInflight, maxBatch int, timeout, probeInterval, drainWait time.Duration, debugAddr, report string) error {
	var urls []string
	for _, r := range strings.Split(replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, strings.TrimSuffix(r, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-replicas is required (comma-separated analysisd base URLs)")
	}
	m := obs.New()
	rt, err := cluster.New(cluster.Config{
		Replicas:       urls,
		VNodes:         vnodes,
		Attempts:       attempts,
		Hedge:          hedge,
		MaxInFlight:    maxInflight,
		MaxBatchItems:  maxBatch,
		RequestTimeout: timeout,
		ProbeInterval:  probeInterval,
		Obs:            m,
	})
	if err != nil {
		return err
	}
	sv, err := cluster.Serve(addr, rt)
	if err != nil {
		rt.Close()
		return err
	}

	var debug *obs.DebugServer
	if debugAddr != "" {
		debug, err = obs.StartDebugServer(debugAddr, m)
		if err != nil {
			return err
		}
		fmt.Printf("analysisrouter debug server on %s\n", debug.Addr)
	}
	fmt.Printf("analysisrouter listening on %s (%d replicas)\n", sv.Addr(), len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("analysisrouter: %s, draining\n", s)

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	drainErr := sv.Drain(ctx)
	if debug != nil {
		if err := debug.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if report != "" {
		rep := obs.NewRunReport("analysisrouter", os.Args[1:])
		rep.AddMetrics(m)
		rep.Finish()
		if err := rep.WriteFile(report); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("analysisrouter: drained cleanly")
	return nil
}
