package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenTable1 pins the symbolic component inventory — pure analysis,
// no wall-clock content at all.
func TestGoldenTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{table: 1}); err != nil {
		t.Fatal(err)
	}
	golden(t, "table1.txt", buf.Bytes())
}

// TestGoldenAdhocText pins the ad-hoc prediction output, including the
// per-site breakdown (sorted) and the exact simulation cross-check.
func TestGoldenAdhocText(t *testing.T) {
	var buf bytes.Buffer
	o := options{
		kernel:   "matmul",
		n:        64,
		tiles:    "8,8,8",
		cacheKB:  "4",
		jobs:     1,
		simulate: true,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	golden(t, "adhoc_matmul_n64.txt", buf.Bytes())
}

// TestGoldenAdhocDirectMappedText pins the -ways output: the ad-hoc
// prediction plus the conflict-aware line for a direct-mapped geometry with
// 4-element lines.
func TestGoldenAdhocDirectMappedText(t *testing.T) {
	var buf bytes.Buffer
	o := options{
		kernel:    "matmul",
		n:         64,
		tiles:     "8,8,8",
		cacheKB:   "4",
		jobs:      1,
		ways:      1,
		lineElems: 4,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	golden(t, "adhoc_matmul_n64_dm.txt", buf.Bytes())
}

// TestGoldenSweepText pins the multi-capacity sweep table at -j 1.
func TestGoldenSweepText(t *testing.T) {
	var buf bytes.Buffer
	o := options{
		kernel:  "matmul",
		n:       64,
		tiles:   "8,8,8",
		cacheKB: "2,4,8",
		jobs:    1,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	golden(t, "sweep_matmul_n64.txt", buf.Bytes())
}

// TestGoldenRunReport pins the normalized RunReport of an ad-hoc prediction
// with simulation: analyze stage timer counts, simulator operation counters
// and the tool extras must all reproduce exactly.
func TestGoldenRunReport(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	o := options{
		kernel:     "matmul",
		n:          64,
		tiles:      "8,8,8",
		cacheKB:    "4",
		jobs:       1,
		simulate:   true,
		reportPath: reportPath,
		args: []string{"-kernel", "matmul", "-n", "64", "-tiles", "8,8,8",
			"-cache-kb", "4", "-simulate", "-report", "report.json"},
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReportFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallNanos <= 0 {
		t.Errorf("report wall time %d, want positive", rep.WallNanos)
	}
	rep.Normalize()
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "report_adhoc_matmul_n64.json", b)
}
