// Command cachechar characterizes cache misses for the paper's kernels and
// for user-written loop nests: it prints the symbolic component inventory
// (Table 1), regenerates the predicted-vs-simulated miss tables (Tables 2
// and 3), and evaluates ad-hoc configurations.
//
// Usage:
//
//	cachechar -table 1                # symbolic inventory for tiled matmul
//	cachechar -table 2 -simulate      # Table 2 with exact simulation (minutes)
//	cachechar -table 3                # Table 3, predictions only (instant)
//	cachechar -kernel twoindex -dump-tree
//	cachechar -kernel matmul -n 256 -tiles 32,64,32 -cache-kb 16 -simulate
//	cachechar -kernel fourindex -n 32 -cache-kb 64 -inventory
//	cachechar -kernel matmul -n 256 -tiles 32,64,32 -cache-kb 8,16,32,64 -j 4
//	cachechar -file mynest.loop -D N=256 -D TI=32 -cache-kb 64 -validate
//
// -cache-kb accepts a comma-separated list of capacities; predictions for a
// list are evaluated concurrently (-j workers) through a shared component
// evaluation cache, so the sweep costs little more than a single point. The
// -file format is documented in internal/loopir/parse.go; bind its symbols
// with repeated -D name=value flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/validate"
)

type defineList []string

func (d *defineList) String() string     { return fmt.Sprint(*d) }
func (d *defineList) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate paper table 1, 2 or 3")
		kernel    = flag.String("kernel", "matmul", "kernel: matmul | twoindex | fourindex")
		file      = flag.String("file", "", "analyze a loop nest from a file instead of a built-in kernel")
		simulate  = flag.Bool("simulate", false, "also run the exact trace simulation")
		doVal     = flag.Bool("validate", false, "per-site predicted-vs-simulated cross-check")
		dump      = flag.Bool("dump-tree", false, "print the loop nest")
		inventory = flag.Bool("inventory", false, "print the symbolic component inventory")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (ad-hoc and -inventory modes)")
		n         = flag.Int64("n", 256, "loop bound for built-in kernels")
		tiles     = flag.String("tiles", "", "comma-separated tile sizes")
		cacheKB   = flag.String("cache-kb", "64", "cache size(s) in KB of doubles, comma-separated")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel evaluation workers for capacity sweeps")
		lineElems = flag.Int64("line", 0, "also predict with the spatial model at this line size (elements)")
		defines   defineList
	)
	flag.Var(&defines, "D", "symbol binding name=value for -file nests (repeatable)")
	flag.Parse()
	if err := run(*table, *kernel, *file, *simulate, *doVal, *dump, *inventory, *jsonOut, *n, *tiles, *cacheKB, *jobs, *lineElems, defines); err != nil {
		fmt.Fprintln(os.Stderr, "cachechar:", err)
		os.Exit(1)
	}
}

func parseCacheKBs(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kb, err := strconv.ParseInt(part, 10, 64)
		if err != nil || kb <= 0 {
			return nil, fmt.Errorf("bad -cache-kb value %q", part)
		}
		out = append(out, kb)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -cache-kb list")
	}
	return out, nil
}

func run(table int, kernel, file string, simulate, doVal, dump, inventory, jsonOut bool,
	n int64, tiles, cacheKBList string, jobs int, lineElems int64, defines []string) error {
	switch table {
	case 1:
		nest, _, err := experiments.BuildKernel("matmul", 256, nil)
		if err != nil {
			return err
		}
		a, err := core.Analyze(nest)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: iteration-space partitions and symbolic stack distances")
		fmt.Print(a.Table())
		return nil
	case 2:
		rows, err := experiments.RunTable2(simulate)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMissRows(
			"Table 2: cache miss prediction for the tiled two-index transform", rows))
		return nil
	case 3:
		rows, err := experiments.RunTable3(simulate)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMissRows(
			"Table 3: cache miss prediction for tiled matrix multiplication", rows))
		return nil
	case 0:
		// ad-hoc mode below
	default:
		return fmt.Errorf("unknown table %d (want 1, 2 or 3)", table)
	}

	kbs, err := parseCacheKBs(cacheKBList)
	if err != nil {
		return err
	}
	caps := make([]int64, len(kbs))
	for i, kb := range kbs {
		caps[i] = experiments.KB(kb)
	}

	var (
		nest *loopir.Nest
		env  expr.Env
	)
	if file != "" {
		defs, derr := experiments.ParseDefines(defines)
		if derr != nil {
			return derr
		}
		nest, env, err = experiments.LoadNestFile(file, defs)
	} else {
		ts, terr := experiments.ParseTiles(tiles)
		if terr != nil {
			return terr
		}
		nest, env, err = experiments.BuildKernel(kernel, n, ts)
	}
	if err != nil {
		return err
	}
	if dump {
		fmt.Print(loopir.Unparse(nest))
		return nil
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return err
	}
	if inventory {
		if jsonOut {
			data, err := a.InventoryJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Print(a.Table())
		return nil
	}
	if doVal {
		cmps, err := validate.Run(a, env, caps)
		if err != nil {
			return err
		}
		fmt.Print(validate.Format(cmps))
		return validate.CheckCompulsory(cmps)
	}
	if len(caps) > 1 {
		if jsonOut {
			return fmt.Errorf("-json supports a single -cache-kb value")
		}
		if lineElems > 0 {
			return fmt.Errorf("-line supports a single -cache-kb value")
		}
		return capacitySweep(a, nest, env, kbs, caps, jobs, simulate)
	}

	cache := caps[0]
	rep, err := a.PredictMisses(env, cache)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := a.ReportToJSON(env, rep)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("nest %s  env %v  cache %d KB (%d elements)\n", nest.Name, env, kbs[0], cache)
	fmt.Printf("accesses  %d\n", rep.Accesses)
	fmt.Printf("predicted %d misses (%.3f%% of accesses)\n",
		rep.Total, 100*float64(rep.Total)/float64(rep.Accesses))
	for site, m := range rep.BySite {
		fmt.Printf("  %-8s %12d\n", site, m)
	}
	if lineElems > 0 {
		lrep, err := a.PredictLineMisses(env, cache, lineElems)
		if err != nil {
			return err
		}
		fmt.Printf("spatial model (%d-element lines): %d misses (%.3f%%)\n",
			lineElems, lrep.Total, 100*float64(lrep.Total)/float64(lrep.Accesses))
	}
	if simulate {
		cmps, err := validate.Run(a, env, []int64{cache})
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d misses (rel err %.3f%%)\n",
			cmps[0].SimulatedTotal, 100*cmps[0].RelErr())
	}
	return nil
}

// capacitySweep predicts misses at every capacity concurrently through one
// shared component-evaluation cache: capacities share all environment-
// dependent work, so the sweep recomputes only the capacity comparisons.
func capacitySweep(a *core.Analysis, nest *loopir.Nest, env expr.Env,
	kbs, caps []int64, jobs int, simulate bool) error {
	if jobs < 1 {
		jobs = 1
	}
	ec := core.NewEvalCache(a)
	reps := make([]*core.MissReport, len(caps))
	errs := make([]error, len(caps))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(caps) {
					return
				}
				reps[i], errs[i] = ec.PredictMisses(env, caps[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var sims map[int64]int64
	if simulate {
		cmps, err := validate.Run(a, env, caps)
		if err != nil {
			return err
		}
		sims = map[int64]int64{}
		for _, c := range cmps {
			sims[c.CacheElems] = c.SimulatedTotal
		}
	}
	fmt.Printf("nest %s  env %v  (%d workers)\n", nest.Name, env, jobs)
	fmt.Printf("accesses  %d\n", reps[0].Accesses)
	header := fmt.Sprintf("%-10s %-12s %-14s %-10s", "cache-kb", "elements", "predicted", "miss-%")
	if simulate {
		header += fmt.Sprintf(" %-14s", "simulated")
	}
	fmt.Println(header)
	for i, cache := range caps {
		row := fmt.Sprintf("%-10d %-12d %-14d %-10.3f",
			kbs[i], cache, reps[i].Total,
			100*float64(reps[i].Total)/float64(reps[i].Accesses))
		if simulate {
			row += fmt.Sprintf(" %-14d", sims[cache])
		}
		fmt.Println(row)
	}
	s := ec.Stats()
	fmt.Printf("component evaluations: %d of %d (cache hit rate %.1f%%)\n",
		s.Computed, s.Lookups, 100*s.HitRate())
	sortSites(reps[len(reps)-1])
	return nil
}

// sortSites prints the per-site breakdown at the largest capacity in a
// stable order.
func sortSites(rep *core.MissReport) {
	sites := make([]string, 0, len(rep.BySite))
	for s := range rep.BySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	fmt.Printf("per-site misses at %d elements:\n", rep.CacheElems)
	for _, s := range sites {
		fmt.Printf("  %-8s %12d\n", s, rep.BySite[s])
	}
}
