// Command cachechar characterizes cache misses for the paper's kernels and
// for user-written loop nests: it prints the symbolic component inventory
// (Table 1), regenerates the predicted-vs-simulated miss tables (Tables 2
// and 3), and evaluates ad-hoc configurations.
//
// Usage:
//
//	cachechar -table 1                # symbolic inventory for tiled matmul
//	cachechar -table 2 -simulate      # Table 2 with exact simulation (minutes)
//	cachechar -table 3                # Table 3, predictions only (instant)
//	cachechar -kernel twoindex -dump-tree
//	cachechar -kernel matmul -n 256 -tiles 32,64,32 -cache-kb 16 -simulate
//	cachechar -kernel fourindex -n 32 -cache-kb 64 -inventory
//	cachechar -kernel matmul -n 256 -tiles 32,64,32 -cache-kb 8,16,32,64 -j 4
//	cachechar -file mynest.loop -D N=256 -D TI=32 -cache-kb 64 -validate
//	cachechar -kernel matmul -n 128 -tiles 16,16,16 -simulate -report run.json
//
// -cache-kb accepts a comma-separated list of capacities; predictions for a
// list are evaluated concurrently (-j workers) through a shared component
// evaluation cache, so the sweep costs little more than a single point. The
// -file format is documented in internal/loopir/parse.go; bind its symbols
// with repeated -D name=value flags. -report writes a RunReport JSON
// artifact (analyze stage timings, eval-cache and simulator counters — see
// README.md, Observability); -debug-addr serves /metrics, /debug/vars and
// /debug/pprof for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/obs"
	"repro/internal/validate"
)

type defineList []string

func (d *defineList) String() string     { return fmt.Sprint(*d) }
func (d *defineList) Set(s string) error { *d = append(*d, s); return nil }

// options collects one invocation's flag values; run takes it by value so
// tests can drive the tool without touching the flag package.
type options struct {
	table      int
	kernel     string
	file       string
	simulate   bool
	doVal      bool
	dump       bool
	inventory  bool
	jsonOut    bool
	n          int64
	tiles      string
	cacheKB    string
	jobs       int
	lineElems  int64
	ways       int64
	defines    []string
	reportPath string
	debugAddr  string
	args       []string // recorded verbatim in the run report
}

func main() {
	var o options
	var defines defineList
	flag.IntVar(&o.table, "table", 0, "regenerate paper table 1, 2 or 3")
	flag.StringVar(&o.kernel, "kernel", "matmul", "kernel: matmul | twoindex | fourindex")
	flag.StringVar(&o.file, "file", "", "analyze a loop nest from a file instead of a built-in kernel")
	flag.BoolVar(&o.simulate, "simulate", false, "also run the exact trace simulation")
	flag.BoolVar(&o.doVal, "validate", false, "per-site predicted-vs-simulated cross-check")
	flag.BoolVar(&o.dump, "dump-tree", false, "print the loop nest")
	flag.BoolVar(&o.inventory, "inventory", false, "print the symbolic component inventory")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON (ad-hoc and -inventory modes)")
	flag.Int64Var(&o.n, "n", 256, "loop bound for built-in kernels")
	flag.StringVar(&o.tiles, "tiles", "", "comma-separated tile sizes")
	flag.StringVar(&o.cacheKB, "cache-kb", "64", "cache size(s) in KB of doubles, comma-separated")
	flag.IntVar(&o.jobs, "j", runtime.GOMAXPROCS(0), "parallel evaluation workers for capacity sweeps")
	flag.Int64Var(&o.lineElems, "line", 0, "also predict with the spatial model at this line size (elements)")
	flag.Int64Var(&o.ways, "ways", 0, "also predict with the conflict-aware model at this associativity (-line is the line size; 0 = skip)")
	flag.StringVar(&o.reportPath, "report", "", "write a RunReport JSON artifact to this path")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.Var(&defines, "D", "symbol binding name=value for -file nests (repeatable)")
	flag.Parse()
	o.defines = defines
	o.args = os.Args[1:]
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "cachechar:", err)
		os.Exit(1)
	}
}

func parseCacheKBs(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kb, err := strconv.ParseInt(part, 10, 64)
		if err != nil || kb <= 0 {
			return nil, fmt.Errorf("bad -cache-kb value %q", part)
		}
		out = append(out, kb)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -cache-kb list")
	}
	return out, nil
}

func run(w io.Writer, o options) error {
	var m *obs.Metrics
	var rep *obs.RunReport
	if o.reportPath != "" || o.debugAddr != "" {
		m = obs.New()
	}
	if o.reportPath != "" {
		rep = obs.NewRunReport("cachechar", o.args)
	}
	if o.debugAddr != "" {
		srv, err := obs.StartDebugServer(o.debugAddr, m)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug server listening on %s\n", srv.Addr)
	}
	finish := func() error {
		if rep == nil {
			return nil
		}
		rep.AddMetrics(m)
		if err := rep.WriteFile(o.reportPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", o.reportPath)
		return nil
	}
	analyze := func(nest *loopir.Nest) (*core.Analysis, error) {
		opts := core.DefaultOptions()
		opts.Obs = m
		return core.AnalyzeWithOptions(nest, opts)
	}

	switch o.table {
	case 1:
		nest, _, err := experiments.BuildKernel("matmul", 256, nil)
		if err != nil {
			return err
		}
		a, err := analyze(nest)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 1: iteration-space partitions and symbolic stack distances")
		fmt.Fprint(w, a.Table())
		return finish()
	case 2:
		rows, err := experiments.RunTable2(o.simulate)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatMissRows(
			"Table 2: cache miss prediction for the tiled two-index transform", rows))
		return finish()
	case 3:
		rows, err := experiments.RunTable3(o.simulate)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatMissRows(
			"Table 3: cache miss prediction for tiled matrix multiplication", rows))
		return finish()
	case 0:
		// ad-hoc mode below
	default:
		return fmt.Errorf("unknown table %d (want 1, 2 or 3)", o.table)
	}

	kbs, err := parseCacheKBs(o.cacheKB)
	if err != nil {
		return err
	}
	caps := make([]int64, len(kbs))
	for i, kb := range kbs {
		caps[i] = experiments.KB(kb)
	}

	var (
		nest *loopir.Nest
		env  expr.Env
	)
	if o.file != "" {
		defs, derr := experiments.ParseDefines(o.defines)
		if derr != nil {
			return derr
		}
		nest, env, err = experiments.LoadNestFile(o.file, defs)
	} else {
		ts, terr := experiments.ParseTiles(o.tiles)
		if terr != nil {
			return terr
		}
		nest, env, err = experiments.BuildKernel(o.kernel, o.n, ts)
	}
	if err != nil {
		return err
	}
	if o.dump {
		fmt.Fprint(w, loopir.Unparse(nest))
		return finish()
	}
	a, err := analyze(nest)
	if err != nil {
		return err
	}
	if o.inventory {
		if o.jsonOut {
			data, err := a.InventoryJSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(data))
			return finish()
		}
		fmt.Fprint(w, a.Table())
		return finish()
	}
	if o.doVal {
		cmps, err := validate.RunObserved(a, env, caps, m)
		if err != nil {
			return err
		}
		fmt.Fprint(w, validate.Format(cmps))
		if err := validate.CheckCompulsory(cmps); err != nil {
			return err
		}
		return finish()
	}
	if len(caps) > 1 {
		if o.jsonOut {
			return fmt.Errorf("-json supports a single -cache-kb value")
		}
		if o.lineElems > 0 {
			return fmt.Errorf("-line supports a single -cache-kb value")
		}
		if o.ways > 0 {
			return fmt.Errorf("-ways supports a single -cache-kb value")
		}
		if err := capacitySweep(w, a, nest, env, kbs, caps, o.jobs, o.simulate, m); err != nil {
			return err
		}
		return finish()
	}

	cache := caps[0]
	rep2, err := a.PredictMissesFrame(a.SymTab().FrameOf(env), cache)
	if err != nil {
		return err
	}
	if o.jsonOut {
		data, err := a.ReportToJSON(env, rep2)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return finish()
	}
	fmt.Fprintf(w, "nest %s  env %v  cache %d KB (%d elements)\n", nest.Name, env, kbs[0], cache)
	fmt.Fprintf(w, "accesses  %d\n", rep2.Accesses)
	fmt.Fprintf(w, "predicted %d misses (%.3f%% of accesses)\n",
		rep2.Total, 100*float64(rep2.Total)/float64(rep2.Accesses))
	// Sorted for stable output (map order would shuffle the golden files).
	sites := make([]string, 0, len(rep2.BySite))
	for site := range rep2.BySite {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		fmt.Fprintf(w, "  %-8s %12d\n", site, rep2.BySite[site])
	}
	if o.lineElems > 0 {
		lrep, err := a.PredictLineMisses(env, cache, o.lineElems)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "spatial model (%d-element lines): %d misses (%.3f%%)\n",
			o.lineElems, lrep.Total, 100*float64(lrep.Total)/float64(lrep.Accesses))
	}
	if o.ways > 0 {
		cfg := core.CacheConfig{CapacityElems: cache, Ways: o.ways, LineElems: o.lineElems}
		crep, err := a.PredictMissesConfig(env, cfg)
		if err != nil {
			return err
		}
		l := o.lineElems
		if l <= 0 {
			l = 1
		}
		fmt.Fprintf(w, "conflict-aware model (%d-way, %d-element lines): %d misses (%.3f%%)\n",
			o.ways, l, crep.Total, 100*float64(crep.Total)/float64(crep.Accesses))
	}
	if o.simulate {
		cmps, err := validate.RunObserved(a, env, []int64{cache}, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "simulated %d misses (rel err %.3f%%)\n",
			cmps[0].SimulatedTotal, 100*cmps[0].RelErr())
	}
	if rep != nil {
		rep.SetExtra("nest", nest.Name)
		rep.SetExtra("cacheKB", kbs[0])
		rep.SetExtra("predictedMisses", rep2.Total)
		rep.SetExtra("accesses", rep2.Accesses)
	}
	return finish()
}

// capacitySweep predicts misses at every capacity concurrently through one
// shared component-evaluation cache: capacities share all environment-
// dependent work, so the sweep recomputes only the capacity comparisons.
func capacitySweep(w io.Writer, a *core.Analysis, nest *loopir.Nest, env expr.Env,
	kbs, caps []int64, jobs int, simulate bool, m *obs.Metrics) error {
	if jobs < 1 {
		jobs = 1
	}
	ec := core.NewEvalCacheWithMetrics(a, m)
	reps := make([]*core.MissReport, len(caps))
	errs := make([]error, len(caps))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wkr := 0; wkr < jobs; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Frames are single-goroutine scratch; each worker binds its own.
			f := a.SymTab().FrameOf(env)
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(caps) {
					return
				}
				reps[i], errs[i] = ec.PredictMissesFrame(f, caps[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var sims map[int64]int64
	if simulate {
		cmps, err := validate.RunObserved(a, env, caps, m)
		if err != nil {
			return err
		}
		sims = map[int64]int64{}
		for _, c := range cmps {
			sims[c.CacheElems] = c.SimulatedTotal
		}
	}
	fmt.Fprintf(w, "nest %s  env %v  (%d workers)\n", nest.Name, env, jobs)
	fmt.Fprintf(w, "accesses  %d\n", reps[0].Accesses)
	header := fmt.Sprintf("%-10s %-12s %-14s %-10s", "cache-kb", "elements", "predicted", "miss-%")
	if simulate {
		header += fmt.Sprintf(" %-14s", "simulated")
	}
	fmt.Fprintln(w, header)
	for i, cache := range caps {
		row := fmt.Sprintf("%-10d %-12d %-14d %-10.3f",
			kbs[i], cache, reps[i].Total,
			100*float64(reps[i].Total)/float64(reps[i].Accesses))
		if simulate {
			row += fmt.Sprintf(" %-14d", sims[cache])
		}
		fmt.Fprintln(w, row)
	}
	s := ec.Stats()
	fmt.Fprintf(w, "component evaluations: %d of %d (cache hit rate %.1f%%)\n",
		s.Computed, s.Lookups, 100*s.HitRate())
	sortSites(w, reps[len(reps)-1])
	return nil
}

// sortSites prints the per-site breakdown at the largest capacity in a
// stable order.
func sortSites(w io.Writer, rep *core.MissReport) {
	sites := make([]string, 0, len(rep.BySite))
	for s := range rep.BySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	fmt.Fprintf(w, "per-site misses at %d elements:\n", rep.CacheElems)
	for _, s := range sites {
		fmt.Fprintf(w, "  %-8s %12d\n", s, rep.BySite[s])
	}
}
