// Command cachechar characterizes cache misses for the paper's kernels and
// for user-written loop nests: it prints the symbolic component inventory
// (Table 1), regenerates the predicted-vs-simulated miss tables (Tables 2
// and 3), and evaluates ad-hoc configurations.
//
// Usage:
//
//	cachechar -table 1                # symbolic inventory for tiled matmul
//	cachechar -table 2 -simulate      # Table 2 with exact simulation (minutes)
//	cachechar -table 3                # Table 3, predictions only (instant)
//	cachechar -kernel twoindex -dump-tree
//	cachechar -kernel matmul -n 256 -tiles 32,64,32 -cache-kb 16 -simulate
//	cachechar -kernel fourindex -n 32 -cache-kb 64 -inventory
//	cachechar -file mynest.loop -D N=256 -D TI=32 -cache-kb 64 -validate
//
// The -file format is documented in internal/loopir/parse.go; bind its
// symbols with repeated -D name=value flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/validate"
)

type defineList []string

func (d *defineList) String() string     { return fmt.Sprint(*d) }
func (d *defineList) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate paper table 1, 2 or 3")
		kernel    = flag.String("kernel", "matmul", "kernel: matmul | twoindex | fourindex")
		file      = flag.String("file", "", "analyze a loop nest from a file instead of a built-in kernel")
		simulate  = flag.Bool("simulate", false, "also run the exact trace simulation")
		doVal     = flag.Bool("validate", false, "per-site predicted-vs-simulated cross-check")
		dump      = flag.Bool("dump-tree", false, "print the loop nest")
		inventory = flag.Bool("inventory", false, "print the symbolic component inventory")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (ad-hoc and -inventory modes)")
		n         = flag.Int64("n", 256, "loop bound for built-in kernels")
		tiles     = flag.String("tiles", "", "comma-separated tile sizes")
		cacheKB   = flag.Int64("cache-kb", 64, "cache size in KB of doubles")
		lineElems = flag.Int64("line", 0, "also predict with the spatial model at this line size (elements)")
		defines   defineList
	)
	flag.Var(&defines, "D", "symbol binding name=value for -file nests (repeatable)")
	flag.Parse()
	if err := run(*table, *kernel, *file, *simulate, *doVal, *dump, *inventory, *jsonOut, *n, *tiles, *cacheKB, *lineElems, defines); err != nil {
		fmt.Fprintln(os.Stderr, "cachechar:", err)
		os.Exit(1)
	}
}

func run(table int, kernel, file string, simulate, doVal, dump, inventory, jsonOut bool,
	n int64, tiles string, cacheKB, lineElems int64, defines []string) error {
	switch table {
	case 1:
		nest, _, err := experiments.BuildKernel("matmul", 256, nil)
		if err != nil {
			return err
		}
		a, err := core.Analyze(nest)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: iteration-space partitions and symbolic stack distances")
		fmt.Print(a.Table())
		return nil
	case 2:
		rows, err := experiments.RunTable2(simulate)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMissRows(
			"Table 2: cache miss prediction for the tiled two-index transform", rows))
		return nil
	case 3:
		rows, err := experiments.RunTable3(simulate)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMissRows(
			"Table 3: cache miss prediction for tiled matrix multiplication", rows))
		return nil
	case 0:
		// ad-hoc mode below
	default:
		return fmt.Errorf("unknown table %d (want 1, 2 or 3)", table)
	}

	var (
		nest *loopir.Nest
		env  expr.Env
		err  error
	)
	if file != "" {
		defs, derr := experiments.ParseDefines(defines)
		if derr != nil {
			return derr
		}
		nest, env, err = experiments.LoadNestFile(file, defs)
	} else {
		ts, terr := experiments.ParseTiles(tiles)
		if terr != nil {
			return terr
		}
		nest, env, err = experiments.BuildKernel(kernel, n, ts)
	}
	if err != nil {
		return err
	}
	if dump {
		fmt.Print(loopir.Unparse(nest))
		return nil
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return err
	}
	if inventory {
		if jsonOut {
			data, err := a.InventoryJSON()
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Print(a.Table())
		return nil
	}
	cache := experiments.KB(cacheKB)
	if doVal {
		cmps, err := validate.Run(a, env, []int64{cache})
		if err != nil {
			return err
		}
		fmt.Print(validate.Format(cmps))
		return validate.CheckCompulsory(cmps)
	}
	rep, err := a.PredictMisses(env, cache)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := a.ReportToJSON(env, rep)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("nest %s  env %v  cache %d KB (%d elements)\n", nest.Name, env, cacheKB, cache)
	fmt.Printf("accesses  %d\n", rep.Accesses)
	fmt.Printf("predicted %d misses (%.3f%% of accesses)\n",
		rep.Total, 100*float64(rep.Total)/float64(rep.Accesses))
	for site, m := range rep.BySite {
		fmt.Printf("  %-8s %12d\n", site, m)
	}
	if lineElems > 0 {
		lrep, err := a.PredictLineMisses(env, cache, lineElems)
		if err != nil {
			return err
		}
		fmt.Printf("spatial model (%d-element lines): %d misses (%.3f%%)\n",
			lineElems, lrep.Total, 100*float64(lrep.Total)/float64(lrep.Accesses))
	}
	if simulate {
		cmps, err := validate.Run(a, env, []int64{cache})
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d misses (rel err %.3f%%)\n",
			cmps[0].SimulatedTotal, 100*cmps[0].RelErr())
	}
	return nil
}
