// Command clusterbench measures what the cluster tier buys and writes the
// BENCH_cluster artifact committed at the repository root.
//
// The scenario is aggregate cache capacity, the thing consistent-hash
// sharding actually scales on any machine (including a single-core one,
// where CPU parallelism is off the table): a closed-loop sweep over K
// distinct loop-nest specs, with each replica's response and analysis LRUs
// sized well below K. A single replica thrashes — every request misses and
// re-runs parse + analyze + predict — while N replicas each own ~K/N keys,
// fit them, and serve the sweep cache-hot after one pass. Both runs go
// through the router (same hop count, same admission), every response is
// byte-verified against the direct library computation, and the per-replica
// cache populations after the clustered run are recorded as evidence the
// ring actually spread the keys.
//
// -smoke asserts clustered throughput ≥ 2.5× single-replica throughput —
// the CI regression tripwire for the scale-out claim.
//
// Usage:
//
//	clusterbench [-o BENCH_cluster.json] [-replicas 4] [-keys 24]
//	             [-clients 8] [-duration 2s] [-cache-entries 20]
//	             [-analysis-entries 16] [-smoke]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadtest"
	"repro/internal/obs"
	"repro/internal/service"
)

// RunPoint is one measured cluster size.
type RunPoint struct {
	Replicas int             `json:"replicas"`
	Result   loadtest.Result `json:"result"`
	// ReplicaCacheEntries is each replica's response-cache population after
	// the run: bounded by the per-replica capacity, and in the clustered
	// run summing to ~the key count — the sharding evidence.
	ReplicaCacheEntries []int64 `json:"replica_cache_entries"`
	// Router holds the router's counters after the run (hedges, retries,
	// key-memo hits — the routing-cost picture).
	Router map[string]int64 `json:"router,omitempty"`
}

// Artifact is the BENCH_cluster.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Config struct {
		Keys            int     `json:"keys"`
		Clients         int     `json:"clients"`
		DurationSec     float64 `json:"duration_sec"`
		Workers         int     `json:"workers"`
		CacheEntries    int     `json:"cache_entries"`
		AnalysisEntries int     `json:"analysis_entries"`
		VNodes          int     `json:"vnodes"`
	} `json:"config"`
	Single  *RunPoint `json:"single"`
	Cluster *RunPoint `json:"cluster"`
	// Speedup is clustered ok-requests/sec over single-replica — the
	// aggregate-cache-capacity win (≥ 2.5 is the smoke bar).
	Speedup float64 `json:"speedup"`
}

// sweepNest renders the i-th distinct spec of the sweep: a tiled
// matmul-shaped nest whose name embeds i, so each spec canonicalizes to its
// own nest text — giving it its own response key AND its own analysis-cache
// entry (a sweep that only varied env would thrash one LRU but not the
// other, understating the single-replica miss cost).
func sweepNest(i int) string {
	return fmt.Sprintf(`nest sweep%03d
array A[N, N]
array B[N, N]
array C[N, N]
array D[N, N]
array E[N, N]
array F[N, N]
array G[N, N]

for iT = ceil(N/TI) {
  for jT = ceil(N/TJ) {
    for iI = TI { for jI = TJ {
      S0: C[iT*TI + iI, jT*TJ + jI] = 0
    } }
    for iI = TI { for jI = TJ {
      S1: E[iT*TI + iI, jT*TJ + jI] = 0
    } }
    for iI = TI { for jI = TJ {
      S2: G[iT*TI + iI, jT*TJ + jI] = 0
    } }
    for kT = ceil(N/TK) {
      for iI = TI { for jI = TJ { for kI = TK {
        S3: C[iT*TI + iI, jT*TJ + jI] += A[iT*TI + iI, kT*TK + kI] * B[kT*TK + kI, jT*TJ + jI]
      } } }
      for iI = TI { for jI = TJ { for kI = TK {
        S4: E[iT*TI + iI, jT*TJ + jI] += C[iT*TI + iI, kT*TK + kI] * D[kT*TK + kI, jT*TJ + jI]
      } } }
      for iI = TI { for jI = TJ { for kI = TK {
        S5: G[iT*TI + iI, jT*TJ + jI] += E[iT*TI + iI, kT*TK + kI] * F[kT*TK + kI, jT*TJ + jI]
      } } }
    }
  }
}
`, i)
}

func sweepBody(i int) []byte {
	req := struct {
		Nest    string           `json:"nest"`
		Env     map[string]int64 `json:"env"`
		CacheKB int64            `json:"cacheKB"`
	}{
		Nest:    sweepNest(i),
		Env:     map[string]int64{"N": 64, "TI": 8, "TJ": 8, "TK": 8},
		CacheKB: 4,
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return b
}

func main() {
	var (
		out             = flag.String("o", "BENCH_cluster.json", "output artifact path (empty = don't write)")
		replicas        = flag.Int("replicas", 4, "clustered run's replica count")
		keys            = flag.Int("keys", 24, "distinct specs in the sweep (must exceed -cache-entries)")
		clients         = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration        = flag.Duration("duration", 2*time.Second, "wall-clock duration per measured run")
		workers         = flag.Int("workers", 1, "workers per replica")
		cacheEntries    = flag.Int("cache-entries", 20, "response-cache capacity per replica")
		analysisEntries = flag.Int("analysis-entries", 16, "analysis-cache capacity per replica")
		smoke           = flag.Bool("smoke", false, "assert clustered throughput ≥ 2.5× single-replica")
	)
	flag.Parse()
	if err := run(*out, *replicas, *keys, *clients, *duration, *workers, *cacheEntries, *analysisEntries, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

func run(out string, replicas, keys, clients int, duration time.Duration, workers, cacheEntries, analysisEntries int, smoke bool) error {
	if keys <= cacheEntries {
		return fmt.Errorf("-keys %d must exceed -cache-entries %d or the single replica never thrashes", keys, cacheEntries)
	}
	if keys/replicas > cacheEntries {
		return fmt.Errorf("-keys/-replicas %d exceeds -cache-entries %d — the clustered run would thrash too", keys/replicas, cacheEntries)
	}

	var art Artifact
	art.Generated = time.Now().UTC().Format(time.RFC3339)
	art.Host.GOOS = runtime.GOOS
	art.Host.GOARCH = runtime.GOARCH
	art.Host.NumCPU = runtime.NumCPU()
	art.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	art.Host.GoVersion = runtime.Version()
	art.Config.Keys = keys
	art.Config.Clients = clients
	art.Config.DurationSec = duration.Seconds()
	art.Config.Workers = workers
	art.Config.CacheEntries = cacheEntries
	art.Config.AnalysisEntries = analysisEntries
	art.Config.VNodes = cluster.DefaultVNodes

	// Oracle: the direct library computation, with caches sized to hold the
	// whole sweep (the oracle measures nothing).
	oracle := service.New(service.Config{
		Workers: 1, CacheEntries: 4 * keys, AnalysisEntries: 2 * keys,
	})
	script := make([]loadtest.Request, keys)
	for i := 0; i < keys; i++ {
		body := sweepBody(i)
		want, err := oracle.Compute(context.Background(), "/v1/predict", body)
		if err != nil {
			oracle.Close()
			return fmt.Errorf("direct compute of sweep spec %d: %w", i, err)
		}
		script[i] = loadtest.Request{Path: "/v1/predict", Body: body, Want: want, Tag: "sweep"}
	}
	oracle.Close()

	scfg := service.Config{
		Workers:         workers,
		QueueDepth:      256,
		CacheEntries:    cacheEntries,
		AnalysisEntries: analysisEntries,
	}
	measure := func(n int) (*RunPoint, error) {
		m := obs.New()
		lc, err := cluster.StartLocal(n, scfg, cluster.Config{
			ProbeInterval: 100 * time.Millisecond,
			Obs:           m,
		})
		if err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), service.DrainTimeout)
			defer cancel()
			lc.Close(ctx)
		}()
		// One warm-up pass so the clustered run measures its steady state;
		// the single replica gets the identical pass and thrashes anyway —
		// cyclic access over more keys than LRU slots hits nothing.
		if _, err := (loadtest.Options{BaseURL: lc.URL(), Clients: 1, Rounds: 1, Script: script}).Run(); err != nil {
			return nil, err
		}
		res, err := loadtest.Options{BaseURL: lc.URL(), Clients: clients, Duration: duration, Script: script}.Run()
		if err != nil {
			return nil, err
		}
		if res.Mismatches > 0 || res.Errors > 0 {
			return nil, fmt.Errorf("%d-replica run: %d mismatches, %d transport errors — routing must be invisible in the bytes", n, res.Mismatches, res.Errors)
		}
		rp := &RunPoint{Replicas: n, Result: *res, Router: map[string]int64{}}
		for i := 0; i < n; i++ {
			rp.ReplicaCacheEntries = append(rp.ReplicaCacheEntries, lc.ReplicaServer(i).Service.Health().FlightCacheEntries)
		}
		for name, v := range m.Counters() {
			rp.Router[name] = v
		}
		fmt.Printf("clusterbench: replicas=%d %8.0f ok-req/s  p50 %s  p99 %s  caches %v (%d requests, %d verified)\n",
			n, res.Throughput,
			time.Duration(res.Latency.P50Nanos), time.Duration(res.Latency.P99Nanos),
			rp.ReplicaCacheEntries, res.Requests, res.Verified)
		return rp, nil
	}

	single, err := measure(1)
	if err != nil {
		return err
	}
	art.Single = single
	clustered, err := measure(replicas)
	if err != nil {
		return err
	}
	art.Cluster = clustered

	if single.Result.Throughput > 0 {
		art.Speedup = clustered.Result.Throughput / single.Result.Throughput
	}
	fmt.Printf("clusterbench: %d-replica speedup over single: %.2fx\n", replicas, art.Speedup)

	if smoke && art.Speedup < 2.5 {
		return fmt.Errorf("smoke: %d-replica speedup %.2fx < 2.5x", replicas, art.Speedup)
	}
	if smoke {
		fmt.Printf("clusterbench: smoke ok — %.2fx ≥ 2.5x\n", art.Speedup)
	}

	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("clusterbench: wrote %s\n", out)
	return nil
}
