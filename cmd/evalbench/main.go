// Command evalbench measures the compiled symbolic-evaluation layer and
// writes the BENCH_eval.json artifact committed at the repository root. It
// benchmarks exactly the workloads that the go-test benchmarks in
// internal/evalbench measure, through the same helpers, so the artifact
// and `make bench-eval` output cannot drift apart:
//
//   - raw expression evaluation over the tiled-matmul component
//     expressions: tree walking an Env versus running compiled op-slice
//     programs against a slot frame,
//   - the §6 tile search end to end: the legacy Env/tree scoring path
//     (tilesearch.Options.TreeEval) versus the per-worker frame path.
//
// Usage:
//
//	evalbench [-o BENCH_eval.json] [-benchtime 2s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/evalbench"
)

// Measurement is one benchmarked configuration.
type Measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerEval   float64 `json:"ns_per_eval,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Section pairs the tree-walking baseline with the compiled path.
type Section struct {
	Tree     Measurement `json:"tree"`
	Compiled Measurement `json:"compiled"`
	Speedup  float64     `json:"speedup"`
}

// Artifact is the BENCH_eval.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Workload struct {
		Name  string `json:"name"`
		N     int64  `json:"n"`
		Exprs int    `json:"exprs_per_op"`
	} `json:"workload"`
	// ExprEval is raw per-expression evaluation; Search is the full §6
	// search (fresh caches per op, so per-candidate scoring dominates).
	ExprEval Section `json:"expr_eval"`
	Search   Section `json:"search"`
}

func measure(f func(b *testing.B), evals int64) Measurement {
	r := testing.Benchmark(f)
	m := Measurement{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if evals > 0 {
		m.NsPerEval = float64(r.NsPerOp()) / float64(evals)
	}
	return m
}

func section(tree, compiled func(b *testing.B), evals int64) Section {
	s := Section{
		Tree:     measure(tree, evals),
		Compiled: measure(compiled, evals),
	}
	if s.Compiled.NsPerOp > 0 {
		s.Speedup = float64(s.Tree.NsPerOp) / float64(s.Compiled.NsPerOp)
	}
	return s
}

func mainE() error {
	out := flag.String("o", "BENCH_eval.json", "output artifact path")
	benchtime := flag.String("benchtime", "2s", "per-measurement benchmark time (testing -benchtime syntax)")
	flag.Parse()
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}

	var a Artifact
	a.Generated = time.Now().UTC().Format(time.RFC3339)
	a.Host.GOOS = runtime.GOOS
	a.Host.GOARCH = runtime.GOARCH
	a.Host.NumCPU = runtime.NumCPU()
	a.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	a.Host.GoVersion = runtime.Version()

	const n = 64
	w, err := evalbench.Matmul(n, []int64{8, 8, 8})
	if err != nil {
		return err
	}
	a.Workload.Name = w.Name
	a.Workload.N = n
	a.Workload.Exprs = w.NumExprs()

	// Sanity: both paths must agree before timing them.
	tv, err := w.EvalTree()
	if err != nil {
		return err
	}
	cv, err := w.EvalCompiled()
	if err != nil {
		return err
	}
	if tv != cv {
		return fmt.Errorf("tree checksum %d != compiled checksum %d", tv, cv)
	}

	fmt.Fprintln(os.Stderr, "measuring expression evaluation ...")
	var benchErr error
	a.ExprEval = section(
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.EvalTree(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.EvalCompiled(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		},
		int64(w.NumExprs()))
	if benchErr != nil {
		return benchErr
	}

	fmt.Fprintln(os.Stderr, "measuring end-to-end tile search ...")
	run := func(treeEval bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunSearch(n, treeEval); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		}
	}
	a.Search = section(run(true), run(false), 0)
	if benchErr != nil {
		return benchErr
	}

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  expr eval: %.1f -> %.1f ns/eval (%.2fx, %d exprs/op)\n",
		a.ExprEval.Tree.NsPerEval, a.ExprEval.Compiled.NsPerEval, a.ExprEval.Speedup, a.Workload.Exprs)
	fmt.Printf("  search:    %.2f -> %.2f ms (%.2fx)\n",
		float64(a.Search.Tree.NsPerOp)/1e6, float64(a.Search.Compiled.NsPerOp)/1e6, a.Search.Speedup)
	return nil
}

func main() {
	if err := mainE(); err != nil {
		fmt.Fprintln(os.Stderr, "evalbench:", err)
		os.Exit(1)
	}
}
