// Command loadgen load-tests the serving layer and writes the BENCH_serve
// artifact committed at the repository root. By default it starts an
// in-process analysisd-equivalent server on a loopback port, drives it
// with internal/loadtest's closed-loop clients, and verifies every
// response byte-for-byte against the direct library computation; -addr
// points it at an already-running analysisd instead.
//
// Two scenarios are measured:
//
//   - predict-hot: one predict request (tiled matmul n=64) repeated by
//     every client — after the first computation the response is served
//     from the coalescing cache, so this measures the serving overhead
//     ceiling (the ≥10k requests/sec acceptance bar lives here);
//   - mixed: a multi-endpoint script (two predicts, an analyze, and a
//     simulate through each engine — exact, analytic, sampled) with
//     distinct cache keys, the cache-churn picture.
//
// Usage:
//
//	loadgen [-clients 32] [-duration 2s] [-o BENCH_serve.json] [-addr URL]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/loadtest"
	"repro/internal/obs"
	"repro/internal/service"
)

// Scenario is one measured configuration of the artifact.
type Scenario struct {
	Script []string        `json:"script"` // endpoint paths, in order
	Result loadtest.Result `json:"result"`
}

// Artifact is the BENCH_serve.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Config struct {
		Clients     int     `json:"clients"`
		DurationSec float64 `json:"duration_sec"`
		Workers     int     `json:"workers"`
		QueueDepth  int     `json:"queue_depth"`
		InProcess   bool    `json:"in_process"`
	} `json:"config"`
	PredictHot Scenario `json:"predict_hot"`
	Mixed      Scenario `json:"mixed"`
	// Server is the served process's cache/coalescing counters after the
	// run (in-process mode only): the deterministic ones — lookups, hits,
	// misses — plus the timing-dependent coalesced count.
	Server map[string]int64 `json:"server,omitempty"`
}

var scenarios = struct{ predictHot, mixed []struct{ path, body string } }{
	predictHot: []struct{ path, body string }{
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64}`},
	},
	mixed: []struct{ path, body string }{
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64}`},
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[16,16,16],"cacheKB":64}`},
		{"/v1/analyze", `{"kernel":"matmul","n":64,"tiles":[8,8,8]}`},
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`},
		// The same simulation through the other engines: analytic skips the
		// trace walk (and handles sizes exact rejects), sampled estimates
		// deterministically — both verify byte-for-byte like everything else.
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"analytic"}`},
		{"/v1/simulate", `{"kernel":"matmul","n":256,"tiles":[32,32,32],"watchKB":[16],"engine":"analytic"}`},
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"sampled"}`},
	},
}

func main() {
	var (
		out      = flag.String("o", "BENCH_serve.json", "output artifact path")
		addr     = flag.String("addr", "", "base URL of a running analysisd (empty = in-process server)")
		clients  = flag.Int("clients", 32, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 2*time.Second, "wall-clock duration per scenario")
		workers  = flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "in-process server queue depth")
	)
	flag.Parse()
	if err := run(*out, *addr, *clients, *duration, *workers, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(out, addr string, clients int, duration time.Duration, workers, queue int) error {
	var art Artifact
	art.Generated = time.Now().UTC().Format(time.RFC3339)
	art.Host.GOOS = runtime.GOOS
	art.Host.GOARCH = runtime.GOARCH
	art.Host.NumCPU = runtime.NumCPU()
	art.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	art.Host.GoVersion = runtime.Version()
	art.Config.Clients = clients
	art.Config.DurationSec = duration.Seconds()
	art.Config.Workers = workers
	art.Config.QueueDepth = queue
	art.Config.InProcess = addr == ""

	// The expected bytes always come from a direct library call on a local
	// Service — that is the verification oracle even when load goes to a
	// remote server.
	m := obs.New()
	svc := service.New(service.Config{Workers: workers, QueueDepth: queue, Obs: m})
	base := addr
	var sv *service.Server
	if addr == "" {
		var err error
		sv, err = service.Serve("127.0.0.1:0", svc)
		if err != nil {
			return err
		}
		base = "http://" + sv.Addr()
		fmt.Printf("loadgen: in-process server on %s\n", sv.Addr())
	}

	buildScript := func(reqs []struct{ path, body string }) ([]loadtest.Request, []string, error) {
		var script []loadtest.Request
		var paths []string
		for _, r := range reqs {
			want, err := svc.Compute(context.Background(), r.path, []byte(r.body))
			if err != nil {
				return nil, nil, fmt.Errorf("direct compute %s: %w", r.path, err)
			}
			script = append(script, loadtest.Request{Path: r.path, Body: []byte(r.body), Want: want})
			paths = append(paths, r.path)
		}
		return script, paths, nil
	}

	runScenario := func(name string, reqs []struct{ path, body string }) (Scenario, error) {
		script, paths, err := buildScript(reqs)
		if err != nil {
			return Scenario{}, err
		}
		res, err := loadtest.Options{
			BaseURL:  base,
			Clients:  clients,
			Duration: duration,
			Script:   script,
		}.Run()
		if err != nil {
			return Scenario{}, err
		}
		fmt.Printf("loadgen: %-11s %8.0f ok-req/s  p50 %s  p99 %s  (%d requests, %d verified, %d mismatches, %d errors)\n",
			name, res.Throughput,
			time.Duration(res.Latency.P50Nanos), time.Duration(res.Latency.P99Nanos),
			res.Requests, res.Verified, res.Mismatches, res.Errors)
		if res.Mismatches > 0 {
			return Scenario{}, fmt.Errorf("%s: %d responses differed from the direct library call", name, res.Mismatches)
		}
		if res.Errors > 0 {
			return Scenario{}, fmt.Errorf("%s: %d transport errors", name, res.Errors)
		}
		return Scenario{Script: paths, Result: *res}, nil
	}

	var err error
	if art.PredictHot, err = runScenario("predict-hot", scenarios.predictHot); err != nil {
		return err
	}
	if art.Mixed, err = runScenario("mixed", scenarios.mixed); err != nil {
		return err
	}

	if sv != nil {
		c := m.Counters()
		art.Server = map[string]int64{}
		for _, name := range []string{
			"service.requests",
			"service.cache.lookups", "service.cache.hits", "service.cache.misses",
			"service.cache.coalesced", "service.cache.evictions",
			"service.analyses.misses",
		} {
			art.Server[name] = c[name]
		}
		ctx, cancel := context.WithTimeout(context.Background(), service.DrainTimeout)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			return err
		}
	} else {
		svc.Close()
	}

	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %s\n", out)
	return nil
}
