// Command loadgen load-tests the serving layer and writes the BENCH_serve
// artifact committed at the repository root. By default it starts an
// in-process analysisd-equivalent server on a loopback port, drives it
// with internal/loadtest's closed-loop clients, and verifies every
// response byte-for-byte against the direct library computation; -addr
// points it at an already-running analysisd instead.
//
// Scenarios (-scenario selects one, default all):
//
//   - predict-hot: one predict request (tiled matmul n=64) repeated by
//     every client — after the first computation the response is served
//     from the coalescing cache, so this measures the serving overhead
//     ceiling (the ≥10k requests/sec acceptance bar lives here);
//   - mixed: a multi-endpoint script (two predicts, an analyze, a
//     simulate through each engine — exact, analytic, sampled — and a
//     joint optimize) with distinct cache keys, the cache-churn picture;
//   - batch: /v1/batch candidates sweeps at batch sizes 1, 8, 64
//     (-batch-size pins one), every envelope byte-verified against the
//     direct computation — the items/sec column is the amortization
//     headline, reported as a speedup over predict-hot;
//   - stream: NDJSON framing under load — a streamed batch whose bytes
//     must equal the aggregate envelope's records re-framed as lines,
//     and streamed tile and joint-plan searches whose result records
//     must match the non-streaming responses;
//   - storm: 64 clients mixing single predicts with batch-64 sweeps;
//     the tagged p99 of the singles against a singles-only baseline is
//     the interference ratio (acceptance: within 1.5×).
//
// -smoke additionally asserts batch-64 items/sec ≥ 3× the predict-hot
// request rate, the CI regression tripwire for the amortization claim.
//
// Usage:
//
//	loadgen [-scenario all] [-clients 32] [-duration 2s] [-o BENCH_serve.json] [-addr URL] [-smoke]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/loadtest"
	"repro/internal/obs"
	"repro/internal/service"
)

// Scenario is one measured configuration of the artifact.
type Scenario struct {
	Script []string        `json:"script"` // endpoint paths, in order
	Result loadtest.Result `json:"result"`
}

// BatchPoint is one batch-size measurement of the batch scenario.
type BatchPoint struct {
	BatchSize           int             `json:"batch_size"`
	Result              loadtest.Result `json:"result"`
	ItemsPerSec         float64         `json:"items_per_sec"`
	SpeedupVsPredictHot float64         `json:"speedup_vs_predict_hot,omitempty"`
}

// StormResult reports the interference measurement: single-request p99
// with and without batch traffic sharing the worker pool.
type StormResult struct {
	Clients          int             `json:"clients"`
	BaselineP99Nanos int64           `json:"baseline_p99_nanos"` // singles-only run
	SinglesP99Nanos  int64           `json:"singles_p99_nanos"`  // singles inside the mixed run
	P99Ratio         float64         `json:"p99_ratio"`
	Result           loadtest.Result `json:"result"`
}

// Artifact is the BENCH_serve.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Config struct {
		Clients     int     `json:"clients"`
		DurationSec float64 `json:"duration_sec"`
		Workers     int     `json:"workers"`
		QueueDepth  int     `json:"queue_depth"`
		InProcess   bool    `json:"in_process"`
	} `json:"config"`
	PredictHot *Scenario    `json:"predict_hot,omitempty"`
	Mixed      *Scenario    `json:"mixed,omitempty"`
	BatchHot   []BatchPoint `json:"batch_hot,omitempty"`
	Stream     *Scenario    `json:"stream,omitempty"`
	Storm      *StormResult `json:"storm,omitempty"`
	// Server is the served process's cache/coalescing counters after the
	// run (in-process mode only): the deterministic ones — lookups, hits,
	// misses — plus the timing-dependent coalesced count.
	Server map[string]int64 `json:"server,omitempty"`
}

// scriptEntry is one scripted request; tag groups its latencies in the
// per-tag percentile report (Result.ByTag).
type scriptEntry struct{ path, body, tag string }

var scenarios = struct{ predictHot, mixed []scriptEntry }{
	predictHot: []scriptEntry{
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64}`, "predict-hot"},
	},
	mixed: []scriptEntry{
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64}`, "predict"},
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[16,16,16],"cacheKB":64}`, "predict"},
		{"/v1/analyze", `{"kernel":"matmul","n":64,"tiles":[8,8,8]}`, "analyze"},
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`, "simulate-exact"},
		// The same simulation through the other engines: analytic skips the
		// trace walk (and handles sizes exact rejects), sampled estimates
		// deterministically — both verify byte-for-byte like everything else.
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"analytic"}`, "simulate-analytic"},
		{"/v1/simulate", `{"kernel":"matmul","n":256,"tiles":[32,32,32],"watchKB":[16],"engine":"analytic"}`, "simulate-analytic"},
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"sampled"}`, "simulate-sampled"},
		// The joint transformation-plan search on the unfused two-index
		// chain — the heaviest per-miss computation in the mix.
		{"/v1/optimize", `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`, "optimize"},
	},
}

// batchBody builds a /v1/batch candidates request of the given size: a
// matmul n=64 spec swept over distinct tile triples drawn from the
// divisors of 64, so every item is valid and every body is cache-hot
// after the first round.
func batchBody(size int) []byte {
	divs := []int64{1, 2, 4, 8, 16, 32, 64}
	sets := make([][3]int64, size)
	for i := range sets {
		sets[i] = [3]int64{divs[i%7], divs[(i/7)%7], divs[(i/49)%7]}
	}
	var buf bytes.Buffer
	buf.WriteString(`{"candidates":{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64,"dims":["TI","TJ","TK"],"sets":[`)
	for i, s := range sets {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "[%d,%d,%d]", s[0], s[1], s[2])
	}
	buf.WriteString(`]}}`)
	return buf.Bytes()
}

// streamWant reconstructs the NDJSON stream a batch envelope corresponds
// to: each item record on its own line, then the summary trailer — the
// exact bytes the server promises for ?stream=1.
func streamWant(envelope []byte) ([]byte, error) {
	var env struct {
		Items   []json.RawMessage `json:"items"`
		Summary json.RawMessage   `json:"summary"`
	}
	if err := json.Unmarshal(envelope, &env); err != nil {
		return nil, fmt.Errorf("envelope: %w", err)
	}
	var buf bytes.Buffer
	for _, it := range env.Items {
		buf.Write(it)
		buf.WriteByte('\n')
	}
	buf.WriteString(`{"summary":`)
	buf.Write(env.Summary)
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

// ndjsonCheck enforces the framing contract on a streamed response: the
// body ends on a line boundary, every line is valid JSON, and the last
// line is a summary trailer.
func ndjsonCheck(status int, body []byte) error {
	if status != 200 {
		return fmt.Errorf("status %d", status)
	}
	if len(body) == 0 || body[len(body)-1] != '\n' {
		return fmt.Errorf("stream does not end on a line boundary")
	}
	lines := bytes.Split(bytes.TrimSuffix(body, []byte{'\n'}), []byte{'\n'})
	for i, line := range lines {
		if !json.Valid(line) {
			return fmt.Errorf("record %d is not valid JSON", i)
		}
	}
	if !bytes.Contains(lines[len(lines)-1], []byte(`"summary"`)) {
		return fmt.Errorf("final record is not a summary trailer")
	}
	return nil
}

func main() {
	var (
		out      = flag.String("o", "BENCH_serve.json", "output artifact path (empty = don't write)")
		addr     = flag.String("addr", "", "base URL of a running analysisd (empty = in-process server)")
		scenario = flag.String("scenario", "all", "scenario to run: all|predict-hot|mixed|batch|stream|storm")
		batchSz  = flag.Int("batch-size", 0, "batch scenario size (0 = sweep 1, 8, 64)")
		clients  = flag.Int("clients", 32, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 2*time.Second, "wall-clock duration per scenario")
		workers  = flag.Int("workers", 0, "in-process server workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "in-process server queue depth")
		smoke    = flag.Bool("smoke", false, "assert batch-64 items/sec ≥ 3× predict-hot request rate")
	)
	flag.Parse()
	if err := run(*out, *addr, *scenario, *batchSz, *clients, *duration, *workers, *queue, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(out, addr, scenario string, batchSz, clients int, duration time.Duration, workers, queue int, smoke bool) error {
	want := func(name string) bool { return scenario == "all" || scenario == name }
	switch scenario {
	case "all", "predict-hot", "mixed", "batch", "stream", "storm":
	default:
		return fmt.Errorf("unknown -scenario %q", scenario)
	}

	var art Artifact
	art.Generated = time.Now().UTC().Format(time.RFC3339)
	art.Host.GOOS = runtime.GOOS
	art.Host.GOARCH = runtime.GOARCH
	art.Host.NumCPU = runtime.NumCPU()
	art.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	art.Host.GoVersion = runtime.Version()
	art.Config.Clients = clients
	art.Config.DurationSec = duration.Seconds()
	art.Config.Workers = workers
	art.Config.QueueDepth = queue
	art.Config.InProcess = addr == ""

	// The expected bytes always come from a direct library call on a local
	// Service — that is the verification oracle even when load goes to a
	// remote server.
	m := obs.New()
	svc := service.New(service.Config{Workers: workers, QueueDepth: queue, Obs: m})
	base := addr
	var sv *service.Server
	if addr == "" {
		var err error
		sv, err = service.Serve("127.0.0.1:0", svc)
		if err != nil {
			return err
		}
		base = "http://" + sv.Addr()
		fmt.Printf("loadgen: in-process server on %s\n", sv.Addr())
	}

	oracle := func(path, body string) ([]byte, error) {
		data, err := svc.Compute(context.Background(), path, []byte(body))
		if err != nil {
			return nil, fmt.Errorf("direct compute %s: %w", path, err)
		}
		return data, nil
	}

	buildScript := func(reqs []scriptEntry) ([]loadtest.Request, []string, error) {
		var script []loadtest.Request
		var paths []string
		for _, r := range reqs {
			w, err := oracle(r.path, r.body)
			if err != nil {
				return nil, nil, err
			}
			script = append(script, loadtest.Request{Path: r.path, Body: []byte(r.body), Want: w, Tag: r.tag})
			paths = append(paths, r.path)
		}
		return script, paths, nil
	}

	check := func(name string, res *loadtest.Result) error {
		if res.Mismatches > 0 {
			return fmt.Errorf("%s: %d responses differed from the direct library call", name, res.Mismatches)
		}
		if res.Errors > 0 {
			return fmt.Errorf("%s: %d transport errors", name, res.Errors)
		}
		if res.CheckFailures > 0 {
			return fmt.Errorf("%s: %d responses failed their framing check", name, res.CheckFailures)
		}
		return nil
	}

	report := func(name string, res *loadtest.Result) {
		fmt.Printf("loadgen: %-11s %8.0f ok-req/s", name, res.Throughput)
		if res.Items > res.Status[200] {
			fmt.Printf("  %9.0f items/s", res.ItemsPerSec)
		}
		fmt.Printf("  p50 %s  p99 %s  (%d requests, %d verified, %d mismatches, %d errors)\n",
			time.Duration(res.Latency.P50Nanos), time.Duration(res.Latency.P99Nanos),
			res.Requests, res.Verified, res.Mismatches, res.Errors)
		// Per-tag percentiles, sorted, so a mixed script's endpoints are
		// individually readable (and machine-readable via Result.ByTag).
		tags := make([]string, 0, len(res.ByTag))
		for tag := range res.ByTag {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			ls := res.ByTag[tag]
			fmt.Printf("loadgen: %-11s   tag %-17s p50 %-10s p90 %-10s p99 %s\n",
				name, tag, time.Duration(ls.P50Nanos), time.Duration(ls.P90Nanos), time.Duration(ls.P99Nanos))
		}
	}

	runScript := func(name string, nClients int, script []loadtest.Request) (*loadtest.Result, error) {
		res, err := loadtest.Options{
			BaseURL:  base,
			Clients:  nClients,
			Duration: duration,
			Script:   script,
		}.Run()
		if err != nil {
			return nil, err
		}
		report(name, res)
		return res, check(name, res)
	}

	// predict-hot doubles as the baseline the batch speedup and the smoke
	// assertion are measured against, so it runs whenever those do.
	needBaseline := want("predict-hot") || want("batch") || smoke
	if needBaseline {
		script, paths, err := buildScript(scenarios.predictHot)
		if err != nil {
			return err
		}
		res, err := runScript("predict-hot", clients, script)
		if err != nil {
			return err
		}
		art.PredictHot = &Scenario{Script: paths, Result: *res}
	}

	if want("mixed") {
		script, paths, err := buildScript(scenarios.mixed)
		if err != nil {
			return err
		}
		res, err := runScript("mixed", clients, script)
		if err != nil {
			return err
		}
		art.Mixed = &Scenario{Script: paths, Result: *res}
	}

	if want("batch") || smoke {
		sizes := []int{1, 8, 64}
		if batchSz > 0 {
			sizes = []int{batchSz}
		} else if smoke && !want("batch") {
			sizes = []int{64}
		}
		for _, size := range sizes {
			body := batchBody(size)
			w, err := oracle("/v1/batch", string(body))
			if err != nil {
				return err
			}
			name := fmt.Sprintf("batch-%d", size)
			res, err := runScript(name, clients, []loadtest.Request{
				{Path: "/v1/batch", Body: body, Want: w, Items: size, Tag: name},
			})
			if err != nil {
				return err
			}
			pt := BatchPoint{BatchSize: size, Result: *res, ItemsPerSec: res.ItemsPerSec}
			if art.PredictHot != nil && art.PredictHot.Result.Throughput > 0 {
				pt.SpeedupVsPredictHot = res.ItemsPerSec / art.PredictHot.Result.Throughput
				fmt.Printf("loadgen: %-11s speedup vs predict-hot: %.2fx\n", name, pt.SpeedupVsPredictHot)
			}
			art.BatchHot = append(art.BatchHot, pt)
		}
	}

	if want("stream") {
		// The streamed batch must be the aggregate envelope re-framed as
		// NDJSON lines; the streamed tile search must end in an ok trailer
		// with its result record equal to the non-streaming response.
		bb := batchBody(8)
		env, err := oracle("/v1/batch", string(bb))
		if err != nil {
			return err
		}
		sw, err := streamWant(env)
		if err != nil {
			return err
		}
		// A result-bearing stream's last two records must be the direct
		// computation's bytes and the ok trailer; tilesearch and optimize
		// share the contract.
		resultStreamCheck := func(want []byte) func(int, []byte) error {
			return func(status int, body []byte) error {
				if err := ndjsonCheck(status, body); err != nil {
					return err
				}
				lines := bytes.Split(bytes.TrimSuffix(body, []byte{'\n'}), []byte{'\n'})
				if len(lines) < 2 {
					return fmt.Errorf("only %d records", len(lines))
				}
				if string(lines[len(lines)-1]) != `{"summary":{"ok":true}}` {
					return fmt.Errorf("trailer %s is not the ok summary", lines[len(lines)-1])
				}
				var rec struct {
					Result json.RawMessage `json:"result"`
				}
				if err := json.Unmarshal(lines[len(lines)-2], &rec); err != nil || rec.Result == nil {
					return fmt.Errorf("missing result record")
				}
				if !bytes.Equal(rec.Result, want) {
					return fmt.Errorf("streamed result differs from the direct computation")
				}
				return nil
			}
		}
		tsBody := `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`
		tsDirect, err := oracle("/v1/tilesearch", tsBody)
		if err != nil {
			return err
		}
		optBody := `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`
		optDirect, err := oracle("/v1/optimize", optBody)
		if err != nil {
			return err
		}
		script := []loadtest.Request{
			{Path: "/v1/batch?stream=1", Body: bb, Want: sw, Items: 8, Check: ndjsonCheck, Tag: "batch-stream"},
			{Path: "/v1/tilesearch?stream=1", Body: []byte(tsBody), Tag: "tilesearch-stream",
				Check: resultStreamCheck(bytes.TrimSuffix(tsDirect, []byte{'\n'}))},
			{Path: "/v1/optimize?stream=1", Body: []byte(optBody), Tag: "optimize-stream",
				Check: resultStreamCheck(bytes.TrimSuffix(optDirect, []byte{'\n'}))},
		}
		res, err := runScript("stream", clients, script)
		if err != nil {
			return err
		}
		art.Stream = &Scenario{Script: []string{"/v1/batch?stream=1", "/v1/tilesearch?stream=1", "/v1/optimize?stream=1"}, Result: *res}
	}

	if want("storm") {
		// Interference: does batch traffic starve single requests? Measure
		// the singles-only p99 under 64 clients, then re-run with batch-64
		// sweeps mixed in and compare the tagged singles p99.
		const stormClients = 64
		pw, err := oracle(scenarios.predictHot[0].path, scenarios.predictHot[0].body)
		if err != nil {
			return err
		}
		single := loadtest.Request{
			Path: scenarios.predictHot[0].path, Body: []byte(scenarios.predictHot[0].body),
			Want: pw, Tag: "single",
		}
		baseRes, err := runScript("storm-base", stormClients, []loadtest.Request{single})
		if err != nil {
			return err
		}
		bb := batchBody(64)
		bw, err := oracle("/v1/batch", string(bb))
		if err != nil {
			return err
		}
		mixedScript := []loadtest.Request{
			single, single, single, single,
			{Path: "/v1/batch", Body: bb, Want: bw, Items: 64, Tag: "batch"},
		}
		stormRes, err := runScript("storm-mixed", stormClients, mixedScript)
		if err != nil {
			return err
		}
		st := &StormResult{
			Clients:          stormClients,
			BaselineP99Nanos: baseRes.Latency.P99Nanos,
			SinglesP99Nanos:  stormRes.ByTag["single"].P99Nanos,
			Result:           *stormRes,
		}
		if st.BaselineP99Nanos > 0 {
			st.P99Ratio = float64(st.SinglesP99Nanos) / float64(st.BaselineP99Nanos)
		}
		fmt.Printf("loadgen: storm       singles p99 %s vs baseline %s (%.2fx)\n",
			time.Duration(st.SinglesP99Nanos), time.Duration(st.BaselineP99Nanos), st.P99Ratio)
		art.Storm = st
	}

	if smoke {
		if art.PredictHot == nil || len(art.BatchHot) == 0 {
			return fmt.Errorf("smoke: need predict-hot and batch results")
		}
		pt := art.BatchHot[len(art.BatchHot)-1]
		floor := 3 * art.PredictHot.Result.Throughput
		if pt.ItemsPerSec < floor {
			return fmt.Errorf("smoke: batch-%d %.0f items/s < 3× predict-hot %.0f req/s",
				pt.BatchSize, pt.ItemsPerSec, art.PredictHot.Result.Throughput)
		}
		fmt.Printf("loadgen: smoke ok — batch-%d %.0f items/s ≥ 3× predict-hot %.0f req/s\n",
			pt.BatchSize, pt.ItemsPerSec, art.PredictHot.Result.Throughput)
	}

	if sv != nil {
		c := m.Counters()
		art.Server = map[string]int64{}
		for _, name := range []string{
			"service.requests",
			"service.cache.lookups", "service.cache.hits", "service.cache.misses",
			"service.cache.coalesced", "service.cache.evictions",
			"service.analyses.misses",
			"service.batch.items", "service.batch.items.ok", "service.batch.items.errors",
		} {
			art.Server[name] = c[name]
		}
		ctx, cancel := context.WithTimeout(context.Background(), service.DrainTimeout)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			return err
		}
	} else {
		svc.Close()
	}

	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %s\n", out)
	return nil
}
