// Command optbench measures the joint transformation-plan search against
// the tile-only baseline and writes the BENCH_opt.json artifact committed
// at the repository root. It runs exactly the workloads that the go-test
// benchmarks in internal/optbench measure, through the same helpers, so
// the artifact and `make bench-optimize` output cannot drift apart.
//
// Per workload the artifact records both searches' best predicted miss
// counts and wall times: what the structural axes (permutation, fusion,
// auto-tiling) buy, and what enumerating them costs.
//
// -smoke skips the artifact and instead trips if any workload's joint
// winner fails to strictly beat its tile-only baseline — the CI regression
// tripwire for the structural axes.
//
// Usage:
//
//	optbench [-o BENCH_opt.json] [-j N]
//	optbench -smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/optbench"
)

// Row is one workload's measurements.
type Row struct {
	Name    string `json:"name"`
	Kernel  string `json:"kernel"`
	N       int64  `json:"n"`
	CacheKB int64  `json:"cache_kb"`
	Ways    int64  `json:"ways,omitempty"`
	Line    int64  `json:"line,omitempty"`

	Variants  int    `json:"variants"`
	Skipped   int    `json:"skipped"`
	Evaluated int    `json:"evaluated"`
	BestPlan  string `json:"best_plan"`

	TileOnlyMisses int64   `json:"tile_only_misses"`
	JointMisses    int64   `json:"joint_misses"`
	MissRatio      float64 `json:"miss_ratio"` // joint / tile-only, < 1 is a win

	TileOnlyWallNs int64 `json:"tile_only_wall_ns"`
	JointWallNs    int64 `json:"joint_wall_ns"`
}

// Artifact is the BENCH_opt.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Rows []Row `json:"rows"`
}

func main() {
	out := flag.String("o", "BENCH_opt.json", "artifact output path (empty writes to stdout)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "tile-search parallelism inside each variant")
	smokeOnly := flag.Bool("smoke", false, "run the joint-beats-tile-only check instead of writing the artifact")
	flag.Parse()
	if err := run(*out, *jobs, *smokeOnly); err != nil {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}
}

func run(out string, jobs int, smokeOnly bool) error {
	if smokeOnly {
		return smoke(jobs)
	}
	var art Artifact
	art.Generated = time.Now().UTC().Format(time.RFC3339)
	art.Host.GOOS = runtime.GOOS
	art.Host.GOARCH = runtime.GOARCH
	art.Host.NumCPU = runtime.NumCPU()
	art.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	art.Host.GoVersion = runtime.Version()

	for _, wl := range optbench.Workloads() {
		row, err := measure(wl, jobs)
		if err != nil {
			return err
		}
		art.Rows = append(art.Rows, row)
		fmt.Printf("%-24s joint %d (%s, %v) vs tile-only %d (%v) — ratio %.3f\n",
			wl.Name, row.JointMisses, row.BestPlan, time.Duration(row.JointWallNs),
			row.TileOnlyMisses, time.Duration(row.TileOnlyWallNs), row.MissRatio)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("artifact written to %s\n", out)
	return nil
}

func measure(wl optbench.Workload, jobs int) (Row, error) {
	row := Row{Name: wl.Name, Kernel: wl.Kernel, N: wl.N, CacheKB: wl.CacheKB,
		Ways: wl.Ways, Line: wl.Line}

	start := time.Now()
	base, err := optbench.RunTileOnly(wl, jobs)
	if err != nil {
		return row, err
	}
	row.TileOnlyWallNs = time.Since(start).Nanoseconds()
	row.TileOnlyMisses = base.Best().Result.Best.Misses

	start = time.Now()
	joint, err := optbench.RunJoint(wl, jobs)
	if err != nil {
		return row, err
	}
	row.JointWallNs = time.Since(start).Nanoseconds()
	row.JointMisses = joint.Best().Result.Best.Misses
	row.BestPlan = joint.Best().Plan.String()
	row.Variants = len(joint.Variants)
	row.Skipped = joint.Skipped
	row.Evaluated = joint.Evaluated
	if row.TileOnlyMisses > 0 {
		row.MissRatio = float64(row.JointMisses) / float64(row.TileOnlyMisses)
	}
	return row, nil
}

// smoke trips if the structural axes stopped paying for themselves: every
// committed workload must see the joint winner strictly beat the tile-only
// baseline in predicted misses.
func smoke(jobs int) error {
	for _, wl := range optbench.Workloads() {
		row, err := measure(wl, jobs)
		if err != nil {
			return err
		}
		if row.JointMisses >= row.TileOnlyMisses {
			return fmt.Errorf("smoke: %s: joint %d misses (plan %s) does not beat tile-only %d",
				wl.Name, row.JointMisses, row.BestPlan, row.TileOnlyMisses)
		}
		fmt.Printf("smoke %s: joint %d (%s) < tile-only %d\n",
			wl.Name, row.JointMisses, row.BestPlan, row.TileOnlyMisses)
	}
	return nil
}
