// Command simbench measures the simulation pipelines and writes the
// BENCH_sim.json artifact committed at the repository root. It benchmarks
// exactly the workloads that the go-test benchmarks in internal/simbench
// measure, through the same helpers, so the artifact and `make bench-sim`
// output cannot drift apart:
//
//   - trace generation alone (per-access interpreter vs batched leaf-stride
//     walker feeding a no-op consumer),
//   - end-to-end simulation of the tiled matmul n=64 workload (frozen
//     Fenwick-tree scalar pipeline vs hierarchical-bitset batched pipeline),
//   - the validate differential sweep, sequential scalar vs the batched
//     pipeline on an 8-wide sharded worker pool,
//   - one end-to-end simulation of the workload per engine (exact,
//     sampled, analytic).
//
// -smoke skips the artifact and instead pins the engine asymmetry on a
// problem big enough to matter: the n=512 tiled matmul (~4.0e8 accesses)
// through the exact simulator once versus the analytic model, failing
// unless analytic is at least 100× faster.
//
// Usage:
//
//	simbench [-o BENCH_sim.json] [-benchtime 2s]
//	simbench -smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simbench"
)

// Measurement is one benchmarked configuration.
type Measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerAccess float64 `json:"ns_per_access,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Section pairs the scalar baseline with the batched pipeline.
type Section struct {
	Scalar  Measurement `json:"scalar"`
	Batched Measurement `json:"batched"`
	Speedup float64     `json:"speedup"`
}

// Artifact is the BENCH_sim.json schema.
type Artifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Workload struct {
		Name     string  `json:"name"`
		N        int64   `json:"n"`
		Tiles    []int64 `json:"tiles"`
		Accesses int64   `json:"accesses"`
		Watches  []int64 `json:"watches"`
	} `json:"workload"`
	// Generate isolates trace emission (no-op consumer); Simulate is the
	// end-to-end pipeline on the workload above; Sweep is the validate
	// differential sweep (scalar sequential vs batched on an 8-wide pool —
	// "sharded" in the sense of one simulation shard per worker).
	Generate   Section `json:"generate"`
	Simulate   Section `json:"simulate"`
	Sweep      Section `json:"sweep"`
	SweepCases int     `json:"sweep_cases"`
	SweepJ     int     `json:"sweep_parallelism"`
	// Engines measures one end-to-end run of the workload per simulation
	// engine: exact is the batched pipeline (the same measurement as
	// Simulate.Batched), sampled runs at the auto rate, analytic evaluates
	// the closed-form model and never touches the trace.
	Engines map[string]Measurement `json:"engines"`
}

func measure(f func(b *testing.B), accesses int64) Measurement {
	r := testing.Benchmark(f)
	m := Measurement{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if accesses > 0 {
		m.NsPerAccess = float64(r.NsPerOp()) / float64(accesses)
	}
	return m
}

func section(scalar, batched func(b *testing.B), accesses int64) Section {
	s := Section{
		Scalar:  measure(scalar, accesses),
		Batched: measure(batched, accesses),
	}
	if s.Batched.NsPerOp > 0 {
		s.Speedup = float64(s.Scalar.NsPerOp) / float64(s.Batched.NsPerOp)
	}
	return s
}

func mainE() error {
	out := flag.String("o", "BENCH_sim.json", "output artifact path")
	benchtime := flag.String("benchtime", "2s", "per-measurement benchmark time (testing -benchtime syntax)")
	smokeOnly := flag.Bool("smoke", false, "run the exact-vs-analytic speedup check instead of writing the artifact")
	assoc := flag.Bool("assoc", false, "write the set-associative accuracy artifact (BENCH_assoc.json schema) instead of BENCH_sim.json")
	flag.Parse()
	if *smokeOnly {
		return smoke()
	}
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}
	if *assoc {
		return assocArtifact(*out)
	}

	var a Artifact
	a.Generated = time.Now().UTC().Format(time.RFC3339)
	a.Host.GOOS = runtime.GOOS
	a.Host.GOARCH = runtime.GOARCH
	a.Host.NumCPU = runtime.NumCPU()
	a.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	a.Host.GoVersion = runtime.Version()

	w, err := simbench.Matmul(64, []int64{8, 8, 8})
	if err != nil {
		return err
	}
	a.Workload.Name = w.Name
	a.Workload.N = 64
	a.Workload.Tiles = []int64{8, 8, 8}
	a.Workload.Accesses = w.Accesses
	a.Workload.Watches = w.Watches

	fmt.Fprintln(os.Stderr, "measuring trace generation ...")
	a.Generate = section(
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Prog.RunScalar(func(int, int64) {})
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Prog.RunBlocks(0, func([]int32, []int64) {})
			}
		},
		w.Accesses)

	fmt.Fprintln(os.Stderr, "measuring end-to-end simulation ...")
	a.Simulate = section(
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.RunScalar()
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.RunBatched(0)
			}
		},
		w.Accesses)

	fmt.Fprintln(os.Stderr, "measuring per-engine simulation ...")
	a.Engines = map[string]Measurement{
		"exact": a.Simulate.Batched,
		"sampled": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.RunSampled(-1, 0)
			}
		}, w.Accesses),
		"analytic": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunAnalytic(); err != nil {
					b.Fatal(err)
				}
			}
		}, w.Accesses),
	}

	fmt.Fprintln(os.Stderr, "measuring differential sweep ...")
	cases, err := simbench.SweepCases()
	if err != nil {
		return err
	}
	a.SweepCases = len(cases)
	a.SweepJ = 8
	var sweepErr error
	run := func(parallelism int, scalar bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := simbench.RunSweep(cases, parallelism, scalar); err != nil {
					sweepErr = err
					b.Fatal(err)
				}
			}
		}
	}
	// Total accesses across the sweep, for the per-access rate.
	all, err := simbench.RunSweep(cases, 1, false)
	if err != nil {
		return err
	}
	var sweepAccesses int64
	for _, cmps := range all {
		sweepAccesses += cmps[0].Accesses
	}
	a.Sweep = section(run(1, true), run(a.SweepJ, false), sweepAccesses)
	if sweepErr != nil {
		return sweepErr
	}

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  generate: %.2f -> %.2f ns/access (%.2fx)\n",
		a.Generate.Scalar.NsPerAccess, a.Generate.Batched.NsPerAccess, a.Generate.Speedup)
	fmt.Printf("  simulate: %.2f -> %.2f ns/access (%.2fx)\n",
		a.Simulate.Scalar.NsPerAccess, a.Simulate.Batched.NsPerAccess, a.Simulate.Speedup)
	fmt.Printf("  sweep:    %.1f -> %.1f ms (%.2fx at -j%d, %d cases)\n",
		float64(a.Sweep.Scalar.NsPerOp)/1e6, float64(a.Sweep.Batched.NsPerOp)/1e6, a.Sweep.Speedup, a.SweepJ, a.SweepCases)
	fmt.Printf("  engines:  exact %.2f ns/access, sampled %.2f ns/access, analytic %d ns/op\n",
		a.Engines["exact"].NsPerAccess, a.Engines["sampled"].NsPerAccess, a.Engines["analytic"].NsPerOp)
	return nil
}

// AssocRow is one geometry of the set-associative accuracy table: the
// AssocCache ground truth against both models.
type AssocRow struct {
	Ways              int64   `json:"ways"`
	CacheElems        int64   `json:"cache_elems"`
	Simulated         int64   `json:"simulated"`
	PredictedFA       int64   `json:"predicted_fa"`
	PredictedConflict int64   `json:"predicted_conflict"`
	RelErrFA          float64 `json:"rel_err_fa"`
	RelErrConflict    float64 `json:"rel_err_conflict"`
}

// AssocArtifact is the BENCH_assoc.json schema: the accuracy table over
// the associativity sweep plus the cost of one prediction through each
// model and of the simulated ground truth.
type AssocArtifact struct {
	Generated string `json:"generated"`
	Host      struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	Workload struct {
		Name       string  `json:"name"`
		N          int64   `json:"n"`
		Tiles      []int64 `json:"tiles"`
		Accesses   int64   `json:"accesses"`
		Capacities []int64 `json:"capacities"`
		Ways       []int64 `json:"ways"`
	} `json:"workload"`
	Rows               []AssocRow `json:"rows"`
	MeanRelErrFA       float64    `json:"mean_rel_err_fa"`
	MeanRelErrConflict float64    `json:"mean_rel_err_conflict"`
	// PredictFA/PredictConflict time one model evaluation at the
	// direct-mapped 512-element geometry (ns/prediction); SimulateAssoc is
	// the AssocCache ground truth for the same geometry.
	PredictFA       Measurement `json:"predict_fa"`
	PredictConflict Measurement `json:"predict_conflict"`
	SimulateAssoc   Measurement `json:"simulate_assoc"`
}

// assocArtifact writes the BENCH_assoc.json artifact: model-vs-AssocCache
// accuracy across the associativity sweep and the per-prediction cost of
// the conflict-aware model next to its fully-associative baseline.
func assocArtifact(out string) error {
	var a AssocArtifact
	a.Generated = time.Now().UTC().Format(time.RFC3339)
	a.Host.GOOS = runtime.GOOS
	a.Host.GOARCH = runtime.GOARCH
	a.Host.NumCPU = runtime.NumCPU()
	a.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	a.Host.GoVersion = runtime.Version()

	w, err := simbench.Matmul(64, []int64{8, 8, 8})
	if err != nil {
		return err
	}
	a.Workload.Name = w.Name
	a.Workload.N = 64
	a.Workload.Tiles = []int64{8, 8, 8}
	a.Workload.Accesses = w.Accesses
	a.Workload.Capacities = simbench.AssocCapacities()
	a.Workload.Ways = simbench.AssocWays()

	fmt.Fprintln(os.Stderr, "measuring model-vs-simulator accuracy ...")
	var sumFA, sumConf float64
	for _, ways := range a.Workload.Ways {
		cmps, err := w.RunAssocAccuracy(ways)
		if err != nil {
			return err
		}
		for _, c := range cmps {
			a.Rows = append(a.Rows, AssocRow{
				Ways:              c.Ways,
				CacheElems:        c.CacheElems,
				Simulated:         c.Simulated,
				PredictedFA:       c.PredictedFA,
				PredictedConflict: c.PredictedConflict,
				RelErrFA:          c.RelErrFA(),
				RelErrConflict:    c.RelErrConflict(),
			})
			sumFA += c.RelErrFA()
			sumConf += c.RelErrConflict()
		}
	}
	a.MeanRelErrFA = sumFA / float64(len(a.Rows))
	a.MeanRelErrConflict = sumConf / float64(len(a.Rows))

	fmt.Fprintln(os.Stderr, "measuring prediction cost ...")
	dm := core.CacheConfig{CapacityElems: 512, Ways: 1, LineElems: 1}
	a.PredictFA = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.PredictFA(dm.CapacityElems); err != nil {
				b.Fatal(err)
			}
		}
	}, 0)
	a.PredictConflict = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.PredictConflict(dm); err != nil {
				b.Fatal(err)
			}
		}
	}, 0)
	a.SimulateAssoc = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.RunAssocAccuracy(1); err != nil {
				b.Fatal(err)
			}
		}
	}, w.Accesses)

	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("  accuracy: mean rel err %.4f (fully-assoc) -> %.4f (conflict-aware) over %d rows\n",
		a.MeanRelErrFA, a.MeanRelErrConflict, len(a.Rows))
	fmt.Printf("  cost:     %d ns/prediction (fully-assoc) -> %d ns/prediction (conflict-aware), ground truth %.1f ms\n",
		a.PredictFA.NsPerOp, a.PredictConflict.NsPerOp, float64(a.SimulateAssoc.NsPerOp)/1e6)
	return nil
}

// smoke times the exact simulator against the analytic model on the n=512
// tiled matmul and fails below a 100× analytic advantage. The bar is
// deliberately far under the observed gap (around four orders of
// magnitude), so it trips on a real regression — the analytic engine
// accidentally walking a trace — and not on machine noise.
func smoke() error {
	w, err := simbench.Matmul(512, []int64{64, 64, 64})
	if err != nil {
		return err
	}
	start := time.Now()
	exact := w.RunBatched(0)
	exactD := time.Since(start)

	best := time.Duration(1 << 62)
	res := exact
	for i := 0; i < 3; i++ {
		start = time.Now()
		if res, err = w.RunAnalytic(); err != nil {
			return err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if res.Accesses != exact.Accesses || res.Distinct != exact.Distinct {
		return fmt.Errorf("smoke: analytic totals %d/%d differ from exact %d/%d",
			res.Accesses, res.Distinct, exact.Accesses, exact.Distinct)
	}
	speedup := float64(exactD) / float64(best)
	fmt.Printf("smoke matmul n=512 (%d accesses): exact %v, analytic %v — %.0fx\n",
		w.Accesses, exactD.Round(time.Millisecond), best, speedup)
	if speedup < 100 {
		return fmt.Errorf("smoke: analytic speedup %.1fx is below the 100x bar", speedup)
	}
	return nil
}

func main() {
	if err := mainE(); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}
