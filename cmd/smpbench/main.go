// Command smpbench regenerates Figures 10 and 11: parallel execution time
// of the tiled two-index transform on a shared-memory multiprocessor, for
// equi-sized tiles versus the model-predicted tile, across processor counts
// {1, 2, 4, 8}.
//
// The machine model is the §7 analysis: each processor executes the
// sequential subproblem with the partitioned bound scaled by 1/P; time is
// flops·flopCost + misses·missPenalty under the infinite-bandwidth limit
// (per-processor misses) and the bus-limited limit (summed misses). With
// -run the native Go kernel is also executed with goroutines and wall-clock
// timed (meaningful only on a multi-core host).
//
// Usage:
//
//	smpbench -n 1024        # Figure 10
//	smpbench -n 2048        # Figure 11
//	smpbench -n 512 -run    # include real goroutine execution
//	smpbench -sim -sim-n 256 -j 8   # exact sharded per-processor simulation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/smp"
)

func toEnv(m map[string]int64) expr.Env {
	out := expr.Env{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

func main() {
	var (
		n         = flag.Int64("n", 1024, "loop range (1024 = Fig. 10, 2048 = Fig. 11)")
		run       = flag.Bool("run", false, "also execute the native kernel with goroutines")
		speedup   = flag.Bool("speedup", false, "print the speedup/efficiency table for the predicted tile")
		report    = flag.String("report", "", "write a RunReport JSON artifact to this path")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		sim       = flag.Bool("sim", false, "also run the exact sharded per-processor simulation figure")
		simN      = flag.Int64("sim-n", 256, "loop range for the -sim figure (full N is too slow to simulate)")
		par       = flag.Int("j", -1, "worker pool width for -sim shards (-1 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := mainE(os.Stdout, os.Args[1:], *n, *run, *speedup, *report, *debugAddr, *sim, *simN, *par); err != nil {
		fmt.Fprintln(os.Stderr, "smpbench:", err)
		os.Exit(1)
	}
}

func mainE(w io.Writer, args []string, n int64, run, speedup bool, reportPath, debugAddr string, sim bool, simN int64, par int) error {
	var m *obs.Metrics
	var rep *obs.RunReport
	if reportPath != "" || debugAddr != "" {
		m = obs.New()
	}
	if reportPath != "" {
		rep = obs.NewRunReport("smpbench", args)
	}
	if debugAddr != "" {
		srv, err := obs.StartDebugServer(debugAddr, m)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug server listening on %s\n", srv.Addr)
	}
	finish := func() error {
		if rep == nil {
			return nil
		}
		rep.AddMetrics(m)
		if err := rep.WriteFile(reportPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", reportPath)
		return nil
	}
	fig := "Figure 10"
	if n == 2048 {
		fig = "Figure 11"
	} else if n != 1024 {
		fig = fmt.Sprintf("Figure 10/11 analogue at N=%d", n)
	}
	figSW := m.Timer("smpbench.figure").Start()
	pts, err := experiments.RunFigure(n)
	figSW.Stop()
	if err != nil {
		return err
	}
	fmt.Fprint(w, experiments.FormatFigure(
		fmt.Sprintf("%s: two-index transform, loop range %d, 64 KB cache, model time", fig, n), pts))
	if rep != nil {
		rep.SetExtra("n", n)
		rep.SetExtra("figure", fig)
		rep.SetExtra("points", len(pts))
	}

	if speedup {
		a, err := experiments.AnalyzedKernel("twoindex", m)
		if err != nil {
			return err
		}
		model := smp.DefaultCostModel()
		env := map[string]int64{
			"NI": n, "NJ": n, "NM": n, "NN": n,
			"TI": 64, "TJ": 16, "TM": 16, "TN": 64,
		}
		eenv := make(map[string]int64, len(env))
		for k, v := range env {
			eenv[k] = v
		}
		var preds []*smp.Prediction
		for _, p := range []int64{1, 2, 4, 8, 16} {
			cfg := smp.Config{Procs: p, SplitSymbol: "NN", CacheElems: 8192, Model: model}
			pred, err := smp.Predict(a, toEnv(eenv), cfg)
			if err != nil {
				return err
			}
			preds = append(preds, pred)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, smp.FormatPredictions(
			"speedup/efficiency (infinite-bandwidth limit, predicted tile):", preds, model))
	}

	if sim {
		simSW := m.Timer("smpbench.sim_figure").Start()
		spts, err := experiments.RunFigureSimulatedParallel(simN, []int64{1, 2, 4, 8}, par, m)
		simSW.Stop()
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, experiments.FormatFigure(
			fmt.Sprintf("exact sharded simulation: loop range %d, 64 KB private caches, pool width %d", simN, par), spts))
		if rep != nil {
			rep.SetExtra("sim_n", simN)
			rep.SetExtra("sim_points", len(spts))
		}
	}

	if !run {
		return finish()
	}
	fmt.Fprintln(w, "\nnative goroutine execution (wall clock):")
	a := kernels.NewMatrix(int(n), int(n))
	c1 := kernels.NewMatrix(int(n), int(n))
	c2 := kernels.NewMatrix(int(n), int(n))
	a.FillSequential(0.001)
	c1.FillSequential(0.002)
	c2.FillSequential(0.003)
	for _, procs := range []int{1, 2, 4, 8} {
		b := kernels.NewMatrix(int(n), int(n))
		start := time.Now()
		if err := smp.RunParallelTwoIndex(a, c1, c2, b, 64, 16, 16, 64, procs); err != nil {
			return err
		}
		fmt.Fprintf(w, "  P=%d tiles=(64,16,16,64): %v\n", procs, time.Since(start))
	}
	return finish()
}
