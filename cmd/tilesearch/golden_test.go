package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenSearchText pins the human-readable output of a small known-
// bounds search. Sequential (-j 1) so the result, the frontier ordering and
// the cache accounting are all deterministic.
func TestGoldenSearchText(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, nil, false, "matmul", 64, 4, 1, false, 0, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "search_matmul_n64.txt", buf.Bytes())
}

// TestGoldenSearchDirectMappedText pins the -ways output: the same search
// against a direct-mapped geometry, where the conflict-aware scores differ
// from the fully-associative golden above.
func TestGoldenSearchDirectMappedText(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, nil, false, "matmul", 64, 4, 1, false, 1, 4, "", "")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "search_matmul_n64_dm.txt", buf.Bytes())
}

// TestGoldenJointText pins the -joint output: the variant table for the
// unfused two-index chain, where fusion beats the tile-only baseline.
// Sequential so the per-variant tile counts are deterministic.
func TestGoldenJointText(t *testing.T) {
	var buf bytes.Buffer
	if err := runJoint(&buf, "twoindexchain", 32, 2, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	golden(t, "joint_twoindexchain_n32.txt", buf.Bytes())
}

// TestGoldenExhaustiveText pins the exhaustive-baseline output on a grid
// small enough to score in milliseconds.
func TestGoldenExhaustiveText(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, nil, false, "matmul", 24, 4, 1, true, 0, 0, "", "")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "exhaustive_matmul_n24.txt", buf.Bytes())
}

// TestGoldenRunReport pins the normalized RunReport JSON of a sequential
// search: tool name, args, every deterministic counter/gauge, timer
// observation counts, span structure and the tool extras. Normalize zeroes
// the wall-clock fields first; -j 1 keeps the nondeterministic worker.*
// family out of the report entirely.
func TestGoldenRunReport(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	args := []string{"-kernel", "matmul", "-n", "64", "-cache-kb", "4", "-j", "1", "-report", "report.json"}
	if err := run(&buf, args, false, "matmul", 64, 4, 1, false, 0, 0, reportPath, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReportFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallNanos <= 0 {
		t.Errorf("report wall time %d, want positive", rep.WallNanos)
	}
	rep.Normalize()
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "report_search_matmul_n64.json", b)
}
