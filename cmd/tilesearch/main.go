// Command tilesearch runs the paper's §6 tile-size search and regenerates
// Table 4 (best tile sizes with known and unknown loop bounds).
//
// Usage:
//
//	tilesearch -table4                      # the full Table 4 sweep
//	tilesearch -kernel twoindex -n 1024     # one known-bounds search
//	tilesearch -kernel matmul -n 512 -cache-kb 16
//	tilesearch -kernel twoindex -n 1024 -j 8 -exhaustive
//
// -j spreads candidate evaluation over a worker pool; results are
// byte-identical at every parallelism level. -exhaustive scores the full
// divisor grid instead of the pruned §6 search (the baseline the search is
// measured against).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/tilesearch"
)

func main() {
	var (
		table4     = flag.Bool("table4", false, "regenerate Table 4")
		kernel     = flag.String("kernel", "twoindex", "kernel: matmul | twoindex")
		n          = flag.Int64("n", 256, "loop bound")
		cacheKB    = flag.Int64("cache-kb", 64, "cache size in KB of doubles")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel evaluation workers (1 = sequential)")
		exhaustive = flag.Bool("exhaustive", false, "score the full divisor grid instead of the pruned search")
	)
	flag.Parse()
	if err := run(*table4, *kernel, *n, *cacheKB, *jobs, *exhaustive); err != nil {
		fmt.Fprintln(os.Stderr, "tilesearch:", err)
		os.Exit(1)
	}
}

func run(table4 bool, kernel string, n, cacheKB int64, jobs int, exhaustive bool) error {
	if table4 {
		res, err := experiments.RunTable4Parallel([]int64{32, 64, 128, 256, 512, 1024}, jobs)
		if err != nil {
			return err
		}
		fmt.Println("Table 4: best tile sizes, two-index transform, 64 KB cache")
		fmt.Printf("%-8s %-28s %-28s\n", "N", "best with known bounds", "best with unknown bounds")
		unk := renderTiles(res.UnknownBest)
		for _, row := range res.Rows {
			fmt.Printf("%-8d %-28s %-28s\n", row.N, renderTiles(row.KnownBest), unk)
		}
		return nil
	}

	var (
		a    *core.Analysis
		dims []tilesearch.Dim
		base expr.Env
		err  error
	)
	switch kernel {
	case "twoindex":
		a, err = experiments.TwoIndexAnalysis()
		dims = []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n}}
		base = expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
	case "matmul":
		a, err = experiments.MatmulAnalysis()
		dims = []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n}, {Symbol: "TK", Max: n}}
		base = expr.Env{"N": n}
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	if err != nil {
		return err
	}
	opt := tilesearch.Options{
		Dims:        dims,
		CacheElems:  experiments.KB(cacheKB),
		BaseEnv:     base,
		DivisorOf:   n,
		Parallelism: jobs,
	}
	var res *tilesearch.Result
	if exhaustive {
		opt.MinTile = 2
		res, err = tilesearch.Exhaustive(a, opt)
	} else {
		res, err = tilesearch.Search(a, opt)
	}
	if err != nil {
		return err
	}
	mode := "search"
	if exhaustive {
		mode = "exhaustive"
	}
	fmt.Printf("kernel %s, N=%d, cache %d KB, %s, %d workers\n", kernel, n, cacheKB, mode, jobs)
	fmt.Printf("best: %s\n", res.Best)
	if len(res.Frontier) > 0 {
		fmt.Printf("frontier candidates (coarse phase):\n")
		for _, c := range res.Frontier {
			fmt.Printf("  %s\n", c)
		}
	}
	fmt.Printf("model evaluations: %d candidates, %d component evaluations (cache hit rate %.1f%%)\n",
		res.Evaluated, res.Cache.Computed, 100*res.Cache.HitRate())
	return nil
}

func renderTiles(t map[string]int64) string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "("
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%d", k, t[k])
	}
	return out + ")"
}
