// Command tilesearch runs the paper's §6 tile-size search and regenerates
// Table 4 (best tile sizes with known and unknown loop bounds).
//
// Usage:
//
//	tilesearch -table4                      # the full Table 4 sweep
//	tilesearch -kernel twoindex -n 1024     # one known-bounds search
//	tilesearch -kernel matmul -n 512 -cache-kb 16
//	tilesearch -kernel twoindex -n 1024 -j 8 -exhaustive
//	tilesearch -kernel matmul -n 256 -cache-kb 4 -ways 1 -line 4
//	tilesearch -kernel matmul -n 256 -report run.json
//	tilesearch -table4 -debug-addr localhost:8080
//	tilesearch -joint -kernel twoindexchain -n 32 -cache-kb 2
//	tilesearch -joint -kernel matmul-naive -n 128 -cache-kb 16 -ways 8 -line 4
//
// -joint switches from the tile-only search to the joint transformation-
// plan search: structural variants of the kernel (loop permutations, legal
// fusions, auto-tiled forms) are enumerated under the dependence legality
// checks and each is scored by its own tile search; the untiled kernel
// kinds (matmul-naive, twoindexchain) are the natural inputs. -max-variants
// caps the structural enumeration.
//
// -j spreads candidate evaluation over a worker pool; results are
// byte-identical at every parallelism level. -exhaustive scores the full
// divisor grid instead of the pruned §6 search (the baseline the search is
// measured against). -ways scores candidates against a set-associative
// geometry through the conflict-aware model (with -line as the line size in
// elements), steering the search away from resonant power-of-two strides;
// omitting it keeps the fully-associative model and its exact output. -report writes a RunReport JSON artifact (analysis
// stage timings, per-phase candidate counts, evaluation-cache accounting,
// search phase spans — see README.md, Observability). -debug-addr serves
// /metrics, /debug/vars and /debug/pprof on the given address for the
// duration of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/tilesearch"
)

func main() {
	var (
		table4     = flag.Bool("table4", false, "regenerate Table 4")
		kernel     = flag.String("kernel", "twoindex", "kernel: matmul | twoindex")
		n          = flag.Int64("n", 256, "loop bound")
		cacheKB    = flag.Int64("cache-kb", 64, "cache size in KB of doubles")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel evaluation workers (1 = sequential)")
		exhaustive = flag.Bool("exhaustive", false, "score the full divisor grid instead of the pruned search")
		ways       = flag.Int64("ways", 0, "score against a set-associative geometry with this associativity (0 = fully associative)")
		line       = flag.Int64("line", 0, "line size in elements for -ways (0 = one-element lines)")
		report     = flag.String("report", "", "write a RunReport JSON artifact to this path")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		joint      = flag.Bool("joint", false, "run the joint permutation × fusion × tiling plan search")
		maxVar     = flag.Int("max-variants", 0, "cap on structural variants for -joint (0 = default)")
	)
	flag.Parse()
	var err error
	if *joint {
		err = runJoint(os.Stdout, *kernel, *n, *cacheKB, *jobs, *ways, *line, *maxVar)
	} else {
		err = run(os.Stdout, os.Args[1:], *table4, *kernel, *n, *cacheKB, *jobs, *exhaustive, *ways, *line, *report, *debugAddr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tilesearch:", err)
		os.Exit(1)
	}
}

// runJoint executes one -joint invocation: build the kernel, enumerate and
// score its legal transformation plans, and print the variant table with
// the winner marked.
func runJoint(w io.Writer, kernel string, n, cacheKB int64, jobs int, ways, line int64, maxVariants int) error {
	nest, env, err := experiments.BuildKernel(kernel, n, nil)
	if err != nil {
		return err
	}
	pr, err := tilesearch.SearchPlans(nest, tilesearch.PlanOptions{
		Options: tilesearch.Options{
			CacheElems:  experiments.KB(cacheKB),
			Ways:        ways,
			LineElems:   line,
			BaseEnv:     env,
			Parallelism: jobs,
		},
		Permute:     true,
		Fuse:        true,
		AutoTile:    true,
		MaxVariants: maxVariants,
	})
	if err != nil {
		return err
	}
	geom := ""
	if ways > 0 {
		l := line
		if l <= 0 {
			l = 1
		}
		geom = fmt.Sprintf(" (%d-way, %d-element lines)", ways, l)
	}
	fmt.Fprintf(w, "joint plan search: kernel %s, N=%d, cache %d KB%s, %d workers\n", kernel, n, cacheKB, geom, jobs)
	fmt.Fprintf(w, "variants scored: %d (%d skipped), %d tile candidates\n", len(pr.Variants), pr.Skipped, pr.Evaluated)
	for i, v := range pr.Variants {
		mark := ' '
		if i == pr.BestIndex {
			mark = '*'
		}
		tiles := ""
		if len(v.Result.Best.Tiles) > 0 {
			tiles = " tiles " + renderTiles(v.Result.Best.Tiles)
		}
		fmt.Fprintf(w, "%c [%d] %-40s misses %d%s\n", mark, i, v.Plan.String(), v.Result.Best.Misses, tiles)
	}
	best, base := pr.Best(), pr.Baseline()
	fmt.Fprintf(w, "best: %s — misses %d (tile-only baseline %d)\n",
		best.Plan.String(), best.Result.Best.Misses, base.Result.Best.Misses)
	return nil
}

// run executes one tool invocation. args is recorded verbatim in the run
// report (main passes os.Args[1:]; tests pass a fixed slice so golden
// reports stay stable).
func run(w io.Writer, args []string, table4 bool, kernel string, n, cacheKB int64, jobs int,
	exhaustive bool, ways, line int64, reportPath, debugAddr string) error {
	// Observability is active whenever anything consumes it; a nil registry
	// disables every instrument downstream.
	var m *obs.Metrics
	var tr *obs.Trace
	var rep *obs.RunReport
	if reportPath != "" || debugAddr != "" {
		m = obs.New()
		tr = obs.NewTrace()
	}
	if reportPath != "" {
		rep = obs.NewRunReport("tilesearch", args)
	}
	if debugAddr != "" {
		srv, err := obs.StartDebugServer(debugAddr, m)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug server listening on %s\n", srv.Addr)
	}
	finish := func() error {
		if rep == nil {
			return nil
		}
		rep.AddMetrics(m)
		rep.AddTrace(tr)
		if err := rep.WriteFile(reportPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", reportPath)
		return nil
	}

	if table4 {
		res, err := experiments.RunTable4Observed([]int64{32, 64, 128, 256, 512, 1024}, jobs, m)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 4: best tile sizes, two-index transform, 64 KB cache")
		fmt.Fprintf(w, "%-8s %-28s %-28s\n", "N", "best with known bounds", "best with unknown bounds")
		unk := renderTiles(res.UnknownBest)
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%-8d %-28s %-28s\n", row.N, renderTiles(row.KnownBest), unk)
		}
		return finish()
	}

	var (
		a    *core.Analysis
		dims []tilesearch.Dim
		base expr.Env
		err  error
	)
	// With observability on, analyze fresh so the report carries this run's
	// analyze.* stage timings; otherwise reuse the process-cached analyses.
	if m != nil {
		a, err = experiments.AnalyzedKernel(kernel, m)
	} else {
		switch kernel {
		case "twoindex":
			a, err = experiments.TwoIndexAnalysis()
		case "matmul":
			a, err = experiments.MatmulAnalysis()
		default:
			err = fmt.Errorf("unknown kernel %q", kernel)
		}
	}
	if err != nil {
		return err
	}
	switch kernel {
	case "twoindex":
		dims = []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n}}
		base = expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
	case "matmul":
		dims = []tilesearch.Dim{{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n}, {Symbol: "TK", Max: n}}
		base = expr.Env{"N": n}
	default:
		return fmt.Errorf("unknown kernel %q", kernel)
	}
	opt := tilesearch.Options{
		Dims:        dims,
		CacheElems:  experiments.KB(cacheKB),
		Ways:        ways,
		LineElems:   line,
		BaseEnv:     base,
		DivisorOf:   n,
		Parallelism: jobs,
		Obs:         m,
		Trace:       tr,
	}
	var res *tilesearch.Result
	if exhaustive {
		opt.MinTile = 2
		res, err = tilesearch.Exhaustive(a, opt)
	} else {
		res, err = tilesearch.Search(a, opt)
	}
	if err != nil {
		return err
	}
	mode := "search"
	if exhaustive {
		mode = "exhaustive"
	}
	geom := ""
	if ways > 0 {
		l := line
		if l <= 0 {
			l = 1
		}
		geom = fmt.Sprintf(" (%d-way, %d-element lines)", ways, l)
	}
	fmt.Fprintf(w, "kernel %s, N=%d, cache %d KB%s, %s, %d workers\n", kernel, n, cacheKB, geom, mode, jobs)
	fmt.Fprintf(w, "best: %s\n", res.Best)
	if len(res.Frontier) > 0 {
		fmt.Fprintf(w, "frontier candidates (coarse phase):\n")
		for _, c := range res.Frontier {
			fmt.Fprintf(w, "  %s\n", c)
		}
	}
	fmt.Fprintf(w, "model evaluations: %d candidates, %d component evaluations (cache hit rate %.1f%%)\n",
		res.Evaluated, res.Cache.Computed, 100*res.Cache.HitRate())
	if rep != nil {
		rep.SetExtra("kernel", kernel)
		rep.SetExtra("n", n)
		rep.SetExtra("cacheKB", cacheKB)
		rep.SetExtra("mode", mode)
		rep.SetExtra("bestTiles", res.Best.Tiles)
		rep.SetExtra("bestMisses", res.Best.Misses)
		rep.SetExtra("evaluated", res.Evaluated)
	}
	return finish()
}

func renderTiles(t map[string]int64) string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "("
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%d", k, t[k])
	}
	return out + ")"
}
