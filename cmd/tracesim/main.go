// Command tracesim is the generic trace/cache-simulation tool: it generates
// the exact reference trace of a kernel (or replays a stored one) and plays
// it through the exact fully-associative LRU stack simulator (one pass
// yields miss counts for every requested cache size plus the stack-distance
// histogram), optionally through set-associative and direct-mapped caches
// for sensitivity analysis beyond the paper's fully-associative model, and
// optionally through a two-level cache hierarchy.
//
// Usage:
//
//	tracesim -kernel twoindex -n 256 -tiles 64,16,16,64 -cache-kb 16,64,256
//	tracesim -kernel matmul -n 256 -tiles 32,32,32 -cache-kb 16 -assoc 4 -line 8
//	tracesim -kernel matmul -n 64 -tiles 8,8,8 -l1-kb 4 -l2-kb 64
//	tracesim -kernel matmul -n 64 -tiles 8,8,8 -dump trace.bin
//	tracesim -replay trace.bin -cache-kb 16,64
//	tracesim -kernel matmul -n 512 -tiles 64,64,64 -cache-kb 64 -engine analytic
//	tracesim -replay trace.bin -cache-kb 16 -engine sampled -sample-log2 4
//
// -engine selects how miss counts are produced: exact (the default) walks
// the trace through the full stack simulator, sampled walks it through the
// SHARDS-style spatial sampler and reports estimates with a confidence
// half-width, and analytic skips the trace entirely and evaluates the
// compiled closed-form model — so it needs a generated kernel, not a
// -replay file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/trace"
)

func main() {
	var (
		kernel  = flag.String("kernel", "matmul", "kernel: matmul | twoindex | fourindex")
		n       = flag.Int64("n", 128, "loop bound")
		tiles   = flag.String("tiles", "", "comma-separated tile sizes")
		cacheKB = flag.String("cache-kb", "64", "comma-separated cache sizes in KB")
		assoc   = flag.Int("assoc", 0, "additionally simulate a set-associative cache with this many ways")
		line    = flag.Int64("line", 1, "line size in elements for the set-associative cache")
		l1KB    = flag.Int64("l1-kb", 0, "two-level mode: L1 size in KB (requires -l2-kb)")
		l2KB    = flag.Int64("l2-kb", 0, "two-level mode: L2 size in KB")
		dump    = flag.String("dump", "", "write the trace to this file and exit")
		replay  = flag.String("replay", "", "replay a stored trace instead of generating one")
		block   = flag.Int("block", 0, "trace block size in accesses (0 = default)")
		engine  = flag.String("engine", "exact", "simulation engine: exact | analytic | sampled")
		sLog2   = flag.Int("sample-log2", -1, "sampled engine: log2 of the sampling rate (-1 = auto from the address space)")
	)
	flag.Parse()
	if err := run(*kernel, *n, *tiles, *cacheKB, *assoc, *line, *l1KB, *l2KB, *dump, *replay, *block, *engine, *sLog2); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

// traceSource abstracts generated vs replayed traces. run streams
// per-access (for the dump path); runBlocks streams through the batched
// block pipeline (for simulation).
type traceSource struct {
	nSites    int
	addrSpace int64
	siteNames []string
	run       func(trace.Emit) error
	runBlocks func(blockSize int, emit trace.EmitBlock) error
	// analysis and env are set only for generated kernels; the analytic
	// engine needs the compiled model, which a stored trace does not carry.
	analysis *core.Analysis
	env      expr.Env
}

func openSource(kernel string, n int64, tiles, replay string) (*traceSource, error) {
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return nil, err
		}
		// Read the header once to size the simulators, then re-open per run.
		h, _, err := trace.ReadTrace(f, func(int, int64) {})
		f.Close()
		if err != nil {
			return nil, err
		}
		names := make([]string, h.NSites)
		for i := range names {
			names[i] = fmt.Sprintf("site#%d", i)
		}
		runScalar := func(emit trace.Emit) error {
			f, err := os.Open(replay)
			if err != nil {
				return err
			}
			defer f.Close()
			_, _, err = trace.ReadTrace(f, emit)
			return err
		}
		return &traceSource{
			nSites:    h.NSites,
			addrSpace: h.AddrSpace,
			siteNames: names,
			run:       runScalar,
			runBlocks: func(blockSize int, emit trace.EmitBlock) error {
				bb := trace.NewBlockBuffer(blockSize, emit)
				if err := runScalar(bb.Emit); err != nil {
					return err
				}
				bb.Flush()
				return nil
			},
		}, nil
	}
	ts, err := experiments.ParseTiles(tiles)
	if err != nil {
		return nil, err
	}
	nest, env, err := experiments.BuildKernel(kernel, n, ts)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(p.Sites))
	for i, s := range p.Sites {
		names[i] = s.String()
	}
	fmt.Printf("kernel %s env %v\n", kernel, env)
	return &traceSource{
		nSites:    len(p.Sites),
		addrSpace: p.Size,
		siteNames: names,
		run:       func(emit trace.Emit) error { p.Run(emit); return nil },
		runBlocks: func(blockSize int, emit trace.EmitBlock) error {
			p.RunBlocks(blockSize, emit)
			return nil
		},
		analysis: a,
		env:      env,
	}, nil
}

func run(kernel string, n int64, tiles, cacheKB string, assoc int, line, l1KB, l2KB int64, dump, replay string, block int, engine string, sampleLog2 int) error {
	eng, err := cachesim.ParseEngine(engine)
	if err != nil {
		return err
	}
	src, err := openSource(kernel, n, tiles, replay)
	if err != nil {
		return err
	}
	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err := trace.NewWriter(f, src.nSites, src.addrSpace)
		if err != nil {
			return err
		}
		if err := src.run(w.Emit); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", w.Records(), dump)
		return nil
	}
	if l1KB > 0 || l2KB > 0 {
		if l1KB <= 0 || l2KB <= 0 {
			return fmt.Errorf("two-level mode needs both -l1-kb and -l2-kb")
		}
		h, err := cachesim.NewHierarchy(src.addrSpace, experiments.KB(l1KB), experiments.KB(l2KB))
		if err != nil {
			return err
		}
		if err := src.runBlocks(block, func(_ []int32, addrs []int64) { h.AccessBlock(addrs) }); err != nil {
			return err
		}
		fmt.Printf("two-level hierarchy L1=%dKB L2=%dKB over %d accesses:\n", l1KB, l2KB, h.Accesses())
		fmt.Printf("  L1 hits %d (%.3f%%)  L2 hits %d (%.3f%%)  memory %d (%.3f%%)\n",
			h.L1Hits, pct(h.L1Hits, h.Accesses()),
			h.L2Hits, pct(h.L2Hits, h.Accesses()),
			h.MemAccesses, pct(h.MemAccesses, h.Accesses()))
		fmt.Printf("  AMAT (1/10/150 cycles): %.3f cycles\n", h.AMAT(1, 10, 150))
		return nil
	}

	var watches []int64
	for _, p := range strings.Split(cacheKB, ",") {
		kb, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return fmt.Errorf("bad cache size %q", p)
		}
		watches = append(watches, experiments.KB(kb))
	}

	switch eng {
	case cachesim.EngineAnalytic:
		if assoc > 0 {
			return fmt.Errorf("-assoc needs a trace walk; use -engine exact or sampled")
		}
		if src.analysis == nil {
			return fmt.Errorf("engine analytic requires a generated kernel: a stored trace carries no model to evaluate")
		}
		res, info, err := analytic.Simulate(src.analysis, src.env, watches)
		if err != nil {
			return err
		}
		fmt.Printf("analytic model: %d accesses, address space %d elements (no trace walked)\n",
			res.Accesses, src.addrSpace)
		fmt.Printf("accesses %d, distinct addresses (compulsory misses) %d\n", res.Accesses, res.Distinct)
		for i, w := range res.Watches {
			fmt.Printf("fully-assoc LRU %6d KB: %12d predicted misses (%.3f%%)\n",
				w*experiments.ElemBytes/1024, res.Misses[i], 100*res.MissRatio(i))
		}
		printPerSite(res, src.siteNames)
		fmt.Printf("model closed-form throughout: %v (%d stack-distance components)\n", info.Exact, info.Components)
		return nil

	case cachesim.EngineSampled:
		if assoc > 0 {
			return fmt.Errorf("-assoc needs the exact trace walk; use -engine exact")
		}
		k := sampleLog2
		if k < 0 {
			k = cachesim.DefaultLog2Rate(src.addrSpace)
		}
		ssim := cachesim.NewSampledSim(src.addrSpace, src.nSites, watches, k, 0)
		if err := src.runBlocks(block, ssim.AccessBlock); err != nil {
			return err
		}
		res, st := ssim.Results(), ssim.Stats()
		bound := ssim.MissBound(0.05)
		fmt.Printf("trace length %d, address space %d elements\n", res.Accesses, src.addrSpace)
		fmt.Printf("sampling rate 2^-%d: kept %d of %d accesses (%d sampled addresses)\n",
			st.Log2Rate, st.SampledAccesses, st.TotalAccesses, st.SampledDistinct)
		fmt.Printf("accesses %d, distinct addresses (compulsory misses, estimated) %d\n", res.Accesses, res.Distinct)
		for i, w := range res.Watches {
			fmt.Printf("fully-assoc LRU %6d KB: %12d ± %d estimated misses (%.3f%%, 95%% envelope)\n",
				w*experiments.ElemBytes/1024, res.Misses[i], bound, 100*res.MissRatio(i))
		}
		printPerSite(res, src.siteNames)
		return nil
	}

	sim := cachesim.NewStackSim(src.addrSpace, src.nSites, watches)
	var extra *cachesim.AssocCache
	if assoc > 0 {
		extra, err = cachesim.NewAssocCache(watches[0], assoc, line)
		if err != nil {
			return err
		}
	}
	if err := src.runBlocks(block, func(sites []int32, addrs []int64) {
		sim.AccessBlock(sites, addrs)
		if extra != nil {
			extra.AccessBlock(addrs)
		}
	}); err != nil {
		return err
	}
	res := sim.Results()
	fmt.Printf("trace length %d, address space %d elements\n", res.Accesses, src.addrSpace)
	fmt.Printf("accesses %d, distinct addresses (compulsory misses) %d\n", res.Accesses, res.Distinct)
	for i, w := range res.Watches {
		fmt.Printf("fully-assoc LRU %6d KB: %12d misses (%.3f%%)\n",
			w*experiments.ElemBytes/1024, res.Misses[i], 100*res.MissRatio(i))
	}
	if extra != nil {
		fmt.Printf("%d-way LRU (line %d elems) %d KB: %d misses (%.3f%%)\n",
			assoc, line, watches[0]*experiments.ElemBytes/1024, extra.Misses(), 100*extra.MissRatio())
	}
	printPerSite(res, src.siteNames)
	fmt.Println("stack-distance histogram:")
	fmt.Print(res.SDHistogramString())
	return nil
}

func printPerSite(res cachesim.Results, names []string) {
	fmt.Println("per-site misses (first watched size):")
	for i, name := range names {
		ps := res.PerSite[i]
		if ps.Accesses == 0 {
			continue
		}
		fmt.Printf("  %-40s %12d / %12d\n", name, ps.Misses[0], ps.Accesses)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
