package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the core loop of the paper: analyze a tiled kernel
// symbolically once, then predict its cache misses for concrete parameters
// and check the prediction against exact simulation.
func Example() {
	nest, err := repro.TiledMatmul()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	env := repro.Env{"N": 128, "TI": 16, "TJ": 16, "TK": 16}
	const cacheElems = 2048 // 16 KB of doubles

	report, err := repro.PredictMisses(analysis, env, cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := repro.SimulateMisses(nest, env, []int64{cacheElems})
	if err != nil {
		log.Fatal(err)
	}
	actual, err := sim.MissesFor(cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted %d misses, simulated %d\n", report.Total, actual)
	// Output:
	// predicted 278528 misses, simulated 278528
}

// ExampleSearchTiles runs the §6 tile-size search for the tiled matmul.
func ExampleSearchTiles() {
	nest, err := repro.TiledMatmul()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.SearchTiles(analysis, repro.TileSearchOptions{
		Dims: []repro.TileDim{
			{Symbol: "TI", Max: 128}, {Symbol: "TJ", Max: 128}, {Symbol: "TK", Max: 128},
		},
		CacheElems: 2048,
		BaseEnv:    repro.Env{"N": 128},
		DivisorOf:  128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best tiles found:", res.Best.String())
	// Output:
	// best tiles found: (TI=32, TJ=32, TK=8) misses=147456
}

// ExampleAnalyze prints the symbolic component inventory of a reference —
// the paper's Table 1 content for A in the tiled matmul.
func ExampleAnalyze() {
	nest, err := repro.TiledMatmul()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range analysis.ComponentsFor("S1#0") {
		sd := c.SD.Base.String()
		if c.SD.Base.IsInf() {
			sd = "inf"
		}
		fmt.Printf("%s: SD = %s\n", c.Kind, sd)
	}
	// Output:
	// self: SD = 3
	// self: SD = TI*TJ + TI*TK + 2*TJ*TK + TK
	// first-touch: SD = inf
}
