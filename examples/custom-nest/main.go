// Custom-nest example: define a loop nest in the textual format, analyze it
// with the paper's model, and audit the prediction per reference site
// against exact simulation — the workflow for programs that are not one of
// the built-in kernels.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/validate"
)

// A fused "transform one slice at a time" program in the paper's class:
// T is a column buffer reused across the outer loop.
const program = `
nest sliced_transform
array A[N, N]
array M[N, N]
array T[N]
array OUT[N, N]

for i = N {
  for k = N {
    S1: T[k] = 0
  }
  for j = N {
    for k = N {
      S2: T[k] += M[k, j] * A[j, i]
    }
  }
  for k = N {
    S3: OUT[k, i] += T[k]
  }
}
`

func main() {
	nest, err := loopir.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(loopir.Unparse(nest))

	analysis, err := core.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomponent inventory (symbolic):")
	fmt.Println(analysis.Table())

	env := expr.Env{"N": 96}
	caches := []int64{64, 512, 4096} // elements
	cmps, err := validate.Run(analysis, env, caches)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(validate.Format(cmps))
	if err := validate.CheckCompulsory(cmps); err != nil {
		log.Fatal(err)
	}
	fmt.Println("compulsory-miss invariant holds: model first touches == distinct addresses")
}
