// Quickstart: characterize the cache behaviour of a tiled matrix
// multiplication at compile time, then check the prediction against exact
// simulation — the core loop of the paper in ~40 lines of API use.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Build the kernel: the 6-deep tiled matmul of the paper's Fig. 2,
	//    with symbolic bound N and tile-size symbols TI, TJ, TK.
	nest, err := repro.TiledMatmul()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Analyze it once: the result is symbolic and reusable for any
	//    bounds, tile sizes, and cache capacity.
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.Table())

	// 3. Evaluate the model at concrete parameters: N=256, tiles 32³,
	//    16 KB of doubles (2048 elements).
	env := repro.Env{"N": 256, "TI": 32, "TJ": 32, "TK": 32}
	const cacheElems = 2048
	report, err := repro.PredictMisses(analysis, env, cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted: %d misses out of %d accesses (%.2f%%)\n",
		report.Total, report.Accesses, 100*float64(report.Total)/float64(report.Accesses))

	// 4. Validate against the exact fully-associative LRU simulator.
	sim, err := repro.SimulateMisses(nest, env, []int64{cacheElems})
	if err != nil {
		log.Fatal(err)
	}
	actual, err := sim.MissesFor(cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d misses (model off by %+.2f%%)\n",
		actual, 100*float64(report.Total-actual)/float64(actual))
}
