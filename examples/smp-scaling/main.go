// SMP scaling demo (§7 of the paper): partition the two-index transform's
// parallel n loop across processors, predict execution time under the two
// limit memory models, and run the real goroutine-parallel kernel.
//
// Each processor's subset of the iteration space is the same sequential
// problem with the n range scaled by 1/P (Fig. 9), so the sequential cache
// model applies directly per processor.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
	"repro/internal/kernels"
	"repro/internal/smp"
)

func main() {
	const n = 512
	nest, err := repro.TiledTwoIndex()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}

	tiles := map[string]int64{"TI": 64, "TJ": 16, "TM": 16, "TN": 64}
	env := repro.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
	for k, v := range tiles {
		env[k] = v
	}

	fmt.Printf("two-index transform, N=%d, tiles TI=64 TJ=16 TM=16 TN=64, 64 KB cache per CPU\n\n", n)
	fmt.Printf("%4s %16s %16s %16s\n", "P", "perproc misses", "time inf-BW (s)", "time bus-BW (s)")
	model := smp.DefaultCostModel()
	for _, procs := range []int64{1, 2, 4, 8} {
		pred, err := repro.PredictParallel(analysis, env, repro.SMPConfig{
			Procs:       procs,
			SplitSymbol: "NN",
			CacheElems:  8192,
			Model:       model,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %16d %16.3f %16.3f\n",
			procs, pred.PerProcMisses, pred.SecondsInfinite(model), pred.SecondsBus(model))
	}

	// Real execution with goroutines. On a single-core host the times will
	// not improve with P; on a real SMP they follow the infinite-BW curve
	// until the bus saturates.
	fmt.Printf("\nnative execution on %d CPU core(s):\n", runtime.NumCPU())
	a := kernels.NewMatrix(n, n)
	c1 := kernels.NewMatrix(n, n)
	c2 := kernels.NewMatrix(n, n)
	a.FillSequential(0.001)
	c1.FillSequential(0.002)
	c2.FillSequential(0.003)
	var serial *kernels.Matrix
	for _, procs := range []int{1, 2, 4} {
		b := kernels.NewMatrix(n, n)
		start := time.Now()
		if err := smp.RunParallelTwoIndex(a, c1, c2, b,
			int(tiles["TI"]), int(tiles["TJ"]), int(tiles["TM"]), int(tiles["TN"]), procs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P=%d: %v\n", procs, time.Since(start))
		if procs == 1 {
			serial = b
		} else if d := kernels.MaxAbsDiff(serial, b); d > 1e-6 {
			log.Fatalf("parallel result deviates by %g", d)
		}
	}
}
