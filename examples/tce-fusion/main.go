// TCE pipeline demo: take a tensor contraction expression the way the
// Tensor Contraction Engine does (§2 of the paper), minimize its operation
// count by binarization, lower it to an imperfectly nested loop program,
// fuse the producer and consumer of the intermediate (Fig. 1), and compare
// the memory footprint and the cache behaviour of the unfused and fused
// forms with the paper's stack-distance model.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/tce"
)

func main() {
	// B(m,n) = Σ_{i,j} C1(m,i) · C2(n,j) · A(i,j)  — the two-index
	// transform of a two-electron integral block.
	contraction, ranges := tce.TwoIndexTransform()
	fmt.Printf("contraction: %s = Σ Π %v\n\n", contraction.Result, contraction.Inputs)

	// Operation minimization: DP over input subsets.
	rank := expr.Env{"N": 100, "V": 100}
	plan, err := tce.OpMin(contraction, ranges, rank)
	if err != nil {
		log.Fatal(err)
	}
	naive, _ := contraction.NaiveFlops(ranges).Eval(rank)
	opt, _ := plan.TotalFlops().Eval(rank)
	fmt.Printf("plan: %s\n", plan)
	fmt.Printf("flops at N=V=100: naive %d -> optimized %d (%.0fx)\n\n",
		naive, opt, float64(naive)/float64(opt))

	// The same reduction for the four-index transform of §2.
	four, fourRanges := tce.FourIndexTransform()
	fourPlan, err := tce.OpMin(four, fourRanges, expr.Env{"N": 100, "V": 50})
	if err != nil {
		log.Fatal(err)
	}
	n4, _ := four.NaiveFlops(fourRanges).Eval(expr.Env{"N": 100, "V": 50})
	o4, _ := fourPlan.TotalFlops().Eval(expr.Env{"N": 100, "V": 50})
	fmt.Printf("four-index transform: O(N^8) %d -> O(VN^4) chain %d (%.0fx)\n\n", n4, o4, float64(n4)/float64(o4))

	// Lower the two-index plan to loops, unfused (Fig. 1a).
	steps := plan.Sequence()
	unfused, err := tce.GenLoopNest("two-index-unfused", steps, ranges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unfused program (intermediate materialized in full):")
	fmt.Println(unfused)

	// Fuse the common loops (Fig. 1c): the intermediate becomes a scalar.
	fusable := tce.FusableIndices(steps[0], steps[1])
	fusedSet := map[string]bool{}
	for _, ix := range fusable {
		fusedSet[ix] = true
	}
	env := expr.Env{"N": 128, "V": 96}
	before, _ := tce.IntermediateSize(steps[0].Out, nil, ranges).Eval(env)
	after, _ := tce.IntermediateSize(steps[0].Out, fusedSet, ranges).Eval(env)
	fmt.Printf("intermediate %s: %d elements unfused -> %d after fusing %v\n\n",
		steps[0].Out, before, after, fusable)

	fused, err := tce.FusedTwoIndex(ranges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fused program (Fig. 1c):")
	fmt.Println(fused)

	// Cache behaviour of both forms under the paper's model.
	const cacheElems = 1024 // 8 KB of doubles
	uA, err := core.Analyze(unfused)
	if err != nil {
		log.Fatal(err)
	}
	fA, err := core.Analyze(fused)
	if err != nil {
		log.Fatal(err)
	}
	uM, err := uA.PredictTotal(env, cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	fM, err := fA.PredictTotal(env, cacheElems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted misses at N=128, V=96, 8 KB cache: unfused %d, fused %d\n", uM, fM)
}
