// Tile advisor: pick tile sizes for the tiled fused two-index transform
// with the paper's §6 search, then verify the choice against exact cache
// simulation — the workflow a quantum-chemistry code generator would run at
// compile time.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n          = 256  // all four index ranges (AO and MO)
		cacheElems = 8192 // 64 KB of doubles
	)

	nest, err := repro.TiledTwoIndex()
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := repro.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}

	// Search guided by the symbolic stack distances. The frontier/refine
	// strategy evaluates a few hundred model points instead of the ~n^4
	// exhaustive tile space.
	res, err := repro.SearchTiles(analysis, repro.TileSearchOptions{
		Dims: []repro.TileDim{
			{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n},
			{Symbol: "TM", Max: n}, {Symbol: "TN", Max: n},
		},
		CacheElems: cacheElems,
		BaseEnv:    repro.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
		DivisorOf:  n,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: %d model evaluations\n", res.Evaluated)
	fmt.Printf("best tiles: %s\n\n", res.Best)

	// Validate against exact simulation: the chosen tiles versus the
	// common practice of equal tile sizes in every dimension.
	candidates := []map[string]int64{
		res.Best.Tiles,
		{"TI": 32, "TJ": 32, "TM": 32, "TN": 32},
		{"TI": 64, "TJ": 64, "TM": 64, "TN": 64},
	}
	for _, tiles := range candidates {
		env := repro.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
		for k, v := range tiles {
			env[k] = v
		}
		sim, err := repro.SimulateMisses(nest, env, []int64{cacheElems})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.MissesFor(cacheElems)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tiles TI=%-3d TJ=%-3d TM=%-3d TN=%-3d -> %10d simulated misses (%.3f%% of %d accesses)\n",
			tiles["TI"], tiles["TJ"], tiles["TM"], tiles["TN"],
			m, 100*float64(m)/float64(sim.Accesses), sim.Accesses)
	}
}
