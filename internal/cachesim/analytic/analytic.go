// Package analytic is the closed-form simulation engine: it answers the
// same question as cachesim.StackSim — misses per watched capacity, per
// reference site, plus compulsory counts — without generating a single
// access. Following Gysi et al.'s symbolic stack-distance counting, the
// paper's component inventory (core.Analysis) already expresses every
// reference's stack distance in closed form over the structured subscript
// class (index and tile-pair subscripts), so a per-capacity evaluation of
// the compiled component programs is a complete substitute for the O(n³)
// trace walk: microseconds at any problem size.
//
// Fidelity is tiered and self-reporting. Accesses and compulsory
// (first-touch) counts are always exact. Info.Exact reports whether every
// component's span cost is exact (the structured class with no documented
// over-approximation); even then, per-capacity totals can deviate from the
// simulator at degenerate capacities of a few elements, where one-iteration
// boundary effects in a span dominate — the same regime the model-vs-
// simulator harness bounds loosely. The cross-engine differential harness
// in internal/validate calibrates and enforces both tiers against ground
// truth: exact at capacity >= the footprint, tight in the paper's regime,
// loose only below 64 elements.
package analytic

import (
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
)

// Info reports the provenance of an analytic result.
type Info struct {
	// Exact is true when every component's stack distance is exact — the
	// structured subscript class. Totals are then simulator-exact outside
	// the degenerate few-element capacity regime (see the package doc);
	// when false, the model's accuracy envelope applies everywhere.
	Exact bool
	// Components is the number of closed-form components evaluated.
	Components int
}

// Simulate evaluates the analysis at env for every watched capacity and
// returns the results in the exact engine's shape: Misses[i] is the
// predicted miss count at watches[i], Distinct the predicted compulsory
// (first-touch) count, and PerSite follows a.Nest.Sites() order — the same
// site ids a trace.Program of the nest would use.
func Simulate(a *core.Analysis, env expr.Env, watches []int64) (cachesim.Results, Info, error) {
	f := a.SymTab().FrameOf(env)
	return SimulateFrame(a, f, watches)
}

// SimulateFrame is Simulate on a caller-owned frame (see
// core.Analysis.GetFrame); the serving layer uses it to keep the per-
// request steady state allocation-free up to the result slices.
func SimulateFrame(a *core.Analysis, f *expr.Frame, watches []int64) (cachesim.Results, Info, error) {
	return simulateFrame(a, f, watches, a.PredictMissesFrame)
}

// SimulateAssoc is Simulate for an explicit set-associative geometry: each
// watched capacity c is classified under core.CacheConfig{c, ways,
// lineElems} through the conflict-aware prediction path. ways == 0 is the
// fully-associative default, byte-identical to Simulate.
func SimulateAssoc(a *core.Analysis, env expr.Env, watches []int64, ways, lineElems int64) (cachesim.Results, Info, error) {
	f := a.SymTab().FrameOf(env)
	return SimulateFrameAssoc(a, f, watches, ways, lineElems)
}

// SimulateFrameAssoc is SimulateAssoc on a caller-owned frame.
func SimulateFrameAssoc(a *core.Analysis, f *expr.Frame, watches []int64, ways, lineElems int64) (cachesim.Results, Info, error) {
	for _, c := range watches {
		cfg := core.CacheConfig{CapacityElems: c, Ways: ways, LineElems: lineElems}
		if err := cfg.Validate(); err != nil {
			return cachesim.Results{}, Info{}, err
		}
	}
	return simulateFrame(a, f, watches, func(f *expr.Frame, cap int64) (*core.MissReport, error) {
		return a.PredictMissesFrameConfig(f, core.CacheConfig{CapacityElems: cap, Ways: ways, LineElems: lineElems})
	})
}

func simulateFrame(a *core.Analysis, f *expr.Frame, watches []int64, predict func(*expr.Frame, int64) (*core.MissReport, error)) (cachesim.Results, Info, error) {
	sites := a.Nest.Sites()
	siteIdx := make(map[string]int, len(sites))
	for i, s := range sites {
		siteIdx[s.Key()] = i
	}
	res := cachesim.Results{
		Watches: append([]int64(nil), watches...),
		Misses:  make([]int64, len(watches)),
		PerSite: make([]cachesim.SiteStats, len(sites)),
	}
	for i := range res.PerSite {
		res.PerSite[i].Misses = make([]int64, len(watches))
	}
	info := Info{Exact: true, Components: len(a.Components)}
	for _, c := range a.Components {
		if !c.Exact {
			info.Exact = false
		}
	}
	for wi, cap := range watches {
		rep, err := predict(f, cap)
		if err != nil {
			return cachesim.Results{}, info, err
		}
		res.Misses[wi] = rep.Total
		// Accesses, compulsory counts and the per-site totals are capacity-
		// independent; fill them from the first report.
		if wi == 0 {
			res.Accesses = rep.Accesses
			for _, d := range rep.Detail {
				si := siteIdx[d.Component.Site.Key()]
				res.PerSite[si].Accesses += d.Count
				if d.Component.SD.Base.IsInf() {
					res.PerSite[si].FirstTouch += d.Count
					res.Distinct += d.Count
				}
			}
		}
		for si, s := range sites {
			res.PerSite[si].Misses[wi] = rep.BySite[s.Key()]
		}
	}
	if len(watches) == 0 {
		// No capacities to predict at: still report accesses/compulsory,
		// which are geometry-independent — use the plain frame path.
		rep, err := a.PredictMissesFrame(f, 1)
		if err != nil {
			return cachesim.Results{}, info, err
		}
		res.Accesses = rep.Accesses
		for _, d := range rep.Detail {
			si := siteIdx[d.Component.Site.Key()]
			res.PerSite[si].Accesses += d.Count
			if d.Component.SD.Base.IsInf() {
				res.PerSite[si].FirstTouch += d.Count
				res.Distinct += d.Count
			}
		}
	}
	return res, info, nil
}

// SiteLabels returns the site keys of the nest in site-id order, the
// labels Results.JSON expects.
func SiteLabels(nest *loopir.Nest) []string {
	sites := nest.Sites()
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = s.Key()
	}
	return out
}
