package analytic

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// matmulEnv binds the tiled matmul's symbols for a small concrete run.
func matmulEnv(n, tile int64) expr.Env {
	return expr.Env{"N": n, "TI": tile, "TJ": tile, "TK": tile}
}

// TestAnalyticMatchesExactMatmul runs the analytic engine and the exact
// simulator side by side on a small tiled matmul and checks the tiered
// fidelity contract: accesses and compulsory counts exact, misses exact at
// capacity 1 and at any capacity covering the footprint, and within the
// model envelope in between.
func TestAnalyticMatchesExactMatmul(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := matmulEnv(24, 8)
	watches := []int64{1, 64, 256, 4096}

	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(0, sim.AccessBlock)
	er := sim.Results()

	ar, info, err := Simulate(a, env, watches)
	if err != nil {
		t.Fatal(err)
	}
	if info.Components != len(a.Components) || info.Components == 0 {
		t.Errorf("info.Components = %d, want %d (non-zero)", info.Components, len(a.Components))
	}
	if ar.Accesses != er.Accesses {
		t.Errorf("accesses: analytic %d vs exact %d", ar.Accesses, er.Accesses)
	}
	if ar.Distinct != er.Distinct {
		t.Errorf("compulsory: analytic %d vs exact %d", ar.Distinct, er.Distinct)
	}
	for wi, w := range watches {
		am, em := ar.Misses[wi], er.Misses[wi]
		switch {
		case w == 1:
			// Capacity 1: every non-repeat access misses; the closed form has
			// no boundary terms to get wrong.
			if am != em {
				t.Errorf("capacity 1: analytic %d vs exact %d", am, em)
			}
		case w >= 3*24*24:
			// Footprint fits: misses are exactly the compulsory count.
			if am != em || am != er.Distinct {
				t.Errorf("capacity %d covers footprint: analytic %d, exact %d, distinct %d",
					w, am, em, er.Distinct)
			}
		default:
			d := float64(am - em)
			if d < 0 {
				d = -d
			}
			if rel := d / float64(em); rel > 0.20 {
				t.Errorf("capacity %d: analytic %d vs exact %d (rel err %.3f > 0.20)", w, am, em, rel)
			}
		}
	}
}

// TestAnalyticPerSite checks the per-site decomposition: site totals add up
// to the global totals and the per-site vectors match the exact simulator's
// capacity-independent columns.
func TestAnalyticPerSite(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := matmulEnv(16, 8)
	watches := []int64{32, 1024}

	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(0, sim.AccessBlock)
	er := sim.Results()

	ar, _, err := Simulate(a, env, watches)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.PerSite) != len(p.Sites) {
		t.Fatalf("per-site stats for %d sites, want %d", len(ar.PerSite), len(p.Sites))
	}
	labels := SiteLabels(a.Nest)
	if len(labels) != len(p.Sites) {
		t.Fatalf("SiteLabels returned %d labels for %d sites", len(labels), len(p.Sites))
	}
	var accSum, ftSum int64
	missSum := make([]int64, len(watches))
	for si, ps := range ar.PerSite {
		if labels[si] != p.Sites[si].Key() {
			t.Errorf("site %d label %q, trace key %q", si, labels[si], p.Sites[si].Key())
		}
		if ps.Accesses != er.PerSite[si].Accesses {
			t.Errorf("site %s accesses: analytic %d vs exact %d", labels[si], ps.Accesses, er.PerSite[si].Accesses)
		}
		if ps.FirstTouch != er.PerSite[si].FirstTouch {
			t.Errorf("site %s first touches: analytic %d vs exact %d", labels[si], ps.FirstTouch, er.PerSite[si].FirstTouch)
		}
		accSum += ps.Accesses
		ftSum += ps.FirstTouch
		for wi := range watches {
			missSum[wi] += ps.Misses[wi]
		}
	}
	if accSum != ar.Accesses {
		t.Errorf("per-site accesses sum %d != total %d", accSum, ar.Accesses)
	}
	if ftSum != ar.Distinct {
		t.Errorf("per-site first touches sum %d != distinct %d", ftSum, ar.Distinct)
	}
	for wi, w := range watches {
		if missSum[wi] != ar.Misses[wi] {
			t.Errorf("capacity %d: per-site misses sum %d != total %d", w, missSum[wi], ar.Misses[wi])
		}
	}
}

// TestAnalyticNoWatches: an empty watch list still reports accesses and
// compulsory counts (the capacity-independent half of the result).
func TestAnalyticNoWatches(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	ar, _, err := Simulate(a, matmulEnv(16, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Misses) != 0 || len(ar.Watches) != 0 {
		t.Errorf("no watches requested, got misses %v watches %v", ar.Misses, ar.Watches)
	}
	want := int64(3 * 16 * 16 * 16) // 3 reference sites in the innermost body
	if ar.Accesses != want {
		t.Errorf("accesses = %d, want %d", ar.Accesses, want)
	}
	if ar.Distinct != 3*16*16 {
		t.Errorf("distinct = %d, want %d", ar.Distinct, 3*16*16)
	}
}

// TestAnalyticFrameReuse: SimulateFrame on a pooled frame equals Simulate,
// and the frame survives for a second evaluation (the serving-layer usage).
func TestAnalyticFrameReuse(t *testing.T) {
	a := testutil.AnalyzedMatmul(t)
	env := matmulEnv(16, 4)
	watches := []int64{128}

	want, _, err := Simulate(a, env, watches)
	if err != nil {
		t.Fatal(err)
	}
	f := a.GetFrame()
	defer a.PutFrame(f)
	for name, v := range env {
		f.Set(a.SymTab().Slot(name), v)
	}
	for round := 0; round < 2; round++ {
		got, _, err := SimulateFrame(a, f, watches)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Accesses != want.Accesses || got.Misses[0] != want.Misses[0] || got.Distinct != want.Distinct {
			t.Fatalf("round %d: frame result %+v differs from env result %+v", round, got, want)
		}
	}
}
