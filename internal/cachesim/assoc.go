package cachesim

import "fmt"

// AssocCache is a set-associative LRU cache simulator over element-granular
// addresses. With Ways == NumSets*Ways capacity and NumSets == 1 it
// degenerates to the fully-associative cache modeled by StackSim; with
// Ways == 1 it is direct-mapped. LineElems groups consecutive element
// addresses into one cache line, modeling spatial locality that the paper's
// element-granular analysis deliberately abstracts away.
type AssocCache struct {
	numSets   int64
	ways      int
	lineElems int64
	// sets[s] holds line tags MRU-first.
	sets     [][]int64
	accesses int64
	misses   int64
}

// NewAssocCache builds a cache with the given total capacity in elements,
// associativity, and line size in elements. capacityElems must be divisible
// by ways*lineElems.
func NewAssocCache(capacityElems int64, ways int, lineElems int64) (*AssocCache, error) {
	if capacityElems <= 0 || ways <= 0 || lineElems <= 0 {
		return nil, fmt.Errorf("cachesim: invalid cache geometry (%d, %d, %d)", capacityElems, ways, lineElems)
	}
	lines := capacityElems / lineElems
	if lines*lineElems != capacityElems {
		return nil, fmt.Errorf("cachesim: capacity %d not divisible by line size %d", capacityElems, lineElems)
	}
	numSets := lines / int64(ways)
	if numSets == 0 || numSets*int64(ways) != lines {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, ways)
	}
	c := &AssocCache{numSets: numSets, ways: ways, lineElems: lineElems}
	c.sets = make([][]int64, numSets)
	return c, nil
}

// NewFullyAssoc builds a fully-associative cache of the given capacity with
// one-element lines — the configuration the paper's model targets.
func NewFullyAssoc(capacityElems int64) (*AssocCache, error) {
	return NewAssocCache(capacityElems, int(capacityElems), 1)
}

// NewDirectMapped builds a direct-mapped cache.
func NewDirectMapped(capacityElems int64, lineElems int64) (*AssocCache, error) {
	lines := capacityElems / lineElems
	if lines == 0 {
		return nil, fmt.Errorf("cachesim: capacity %d smaller than line %d", capacityElems, lineElems)
	}
	return NewAssocCache(capacityElems, 1, lineElems)
}

// Access simulates one element access; it returns true on hit.
func (c *AssocCache) Access(addr int64) bool {
	c.accesses++
	line := addr / c.lineElems
	set := line % c.numSets
	s := c.sets[set]
	for i, tag := range s {
		if tag == line {
			copy(s[1:i+1], s[0:i])
			s[0] = line
			return true
		}
	}
	c.misses++
	if len(s) < c.ways {
		s = append(s, 0)
	}
	copy(s[1:], s[0:len(s)-1])
	s[0] = line
	c.sets[set] = s
	return false
}

// AccessBlock simulates a batch of element accesses, hoisting the geometry
// fields and the counter updates out of the per-access path. Results are
// identical to calling Access per element.
func (c *AssocCache) AccessBlock(addrs []int64) {
	lineElems, numSets, ways := c.lineElems, c.numSets, c.ways
	sets := c.sets
	var misses int64
	for _, addr := range addrs {
		line := addr / lineElems
		set := line % numSets
		s := sets[set]
		hit := false
		for i, tag := range s {
			if tag == line {
				copy(s[1:i+1], s[0:i])
				s[0] = line
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		misses++
		if len(s) < ways {
			s = append(s, 0)
		}
		copy(s[1:], s[0:len(s)-1])
		s[0] = line
		sets[set] = s
	}
	c.accesses += int64(len(addrs))
	c.misses += misses
}

// Accesses returns the number of accesses simulated so far.
func (c *AssocCache) Accesses() int64 { return c.accesses }

// Misses returns the number of misses so far.
func (c *AssocCache) Misses() int64 { return c.misses }

// MissRatio returns misses/accesses.
func (c *AssocCache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
