package cachesim

import (
	"math/rand"
	"testing"
)

// assocPropTrace builds a trace mixing random accesses with power-of-two
// strided sweeps — the access shapes where set mapping matters.
func assocPropTrace(r *rand.Rand, space int64, n int) []int64 {
	addrs := make([]int64, 0, n)
	for len(addrs) < n {
		switch r.Intn(3) {
		case 0: // random burst
			for i := 0; i < 64; i++ {
				addrs = append(addrs, r.Int63n(space))
			}
		case 1: // contiguous sweep
			base := r.Int63n(space / 2)
			for i := int64(0); i < 128 && base+i < space; i++ {
				addrs = append(addrs, base+i)
			}
		default: // resonant strided sweep
			stride := int64(8 << r.Intn(4))
			base := r.Int63n(stride)
			for i := 0; i < 64; i++ {
				a := base + int64(i)*stride
				addrs = append(addrs, a%space)
			}
		}
	}
	return addrs[:n]
}

// With ways == capacity/line there is a single set, so the simulator is the
// fully-associative LRU cache StackSim models: misses must bit-match the
// stack-distance count at the same line granularity (addresses mapped to
// lines before entering the stack).
func TestAssocFullWaysMatchesStackSimAtLineSize(t *testing.T) {
	r := rand.New(rand.NewSource(20260807))
	const space, capacity = 1 << 10, 64
	for _, line := range []int64{1, 2, 8} {
		lines := capacity / line
		c, err := NewAssocCache(capacity, int(lines), line)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewStackSim(space/line+1, 1, []int64{lines})
		for _, addr := range assocPropTrace(r, space, 30000) {
			c.Access(addr)
			sim.Access(0, addr/line)
		}
		m, err := sim.Results().MissesFor(lines)
		if err != nil {
			t.Fatal(err)
		}
		if m != c.Misses() {
			t.Fatalf("line %d: stack-distance misses %d != single-set assoc misses %d", line, m, c.Misses())
		}
	}
}

// The LRU inclusion property holds per set: at a fixed set count, a cache
// with more ways holds a superset of every set's contents at every step, so
// misses never increase as ways grow. (This is the correct monotonicity
// statement — see TestAssocWaysAnomalyAtFixedCapacity for why the capacity
// must scale with the ways.)
func TestAssocMissesMonotoneInWaysFixedSets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const sets = 16
	for _, line := range []int64{1, 4} {
		trace := assocPropTrace(r, 1<<11, 20000)
		prev := int64(-1)
		for _, ways := range []int{1, 2, 4, 8, 16} {
			c, err := NewAssocCache(sets*int64(ways)*line, ways, line)
			if err != nil {
				t.Fatal(err)
			}
			c.AccessBlock(trace)
			if prev >= 0 && c.Misses() > prev {
				t.Fatalf("line %d: misses grew from %d to %d when ways doubled to %d", line, prev, c.Misses(), ways)
			}
			prev = c.Misses()
		}
	}
}

// At a FIXED capacity, growing the associativity is not monotone: a cyclic
// sweep of capacity+1 lines thrashes the fully-associative LRU cache (every
// access misses) while the direct-mapped split confines the conflict to one
// set. This pins the counterexample that forces the monotonicity guard
// above to hold the set count, not the capacity, fixed.
func TestAssocWaysAnomalyAtFixedCapacity(t *testing.T) {
	const capacity = 16
	direct, err := NewDirectMapped(capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullyAssoc(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 100; rep++ {
		for a := int64(0); a <= capacity; a++ { // 17 distinct lines, cyclic
			direct.Access(a)
			full.Access(a)
		}
	}
	if full.Misses() != full.Accesses() {
		t.Fatalf("fully-associative LRU should thrash the cyclic sweep: %d misses of %d", full.Misses(), full.Accesses())
	}
	if direct.Misses() >= full.Misses()/2 {
		t.Fatalf("direct-mapped misses %d not well below fully-associative %d", direct.Misses(), full.Misses())
	}
}

// FuzzAssocBlockVsScalar cross-checks AccessBlock against a loop of Access
// on fuzz-generated traces and geometries; the two paths must agree bit for
// bit on miss and access counts. Wired into `make check`'s fuzz smoke.
func FuzzAssocBlockVsScalar(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 16, 4, 4, 0, 0, 1, 1}, uint8(2), uint8(1), uint8(0))
	f.Add([]byte{7, 7, 7, 7, 7, 7}, uint8(0), uint8(0), uint8(2))
	f.Add([]byte{1, 2, 4, 8, 16, 32, 64, 128}, uint8(4), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, setSel, waySel, lineSel uint8) {
		// Geometry valid by construction: capacity = sets·ways·line.
		sets := int64(1) << (setSel % 6)
		ways := 1 << (waySel % 4)
		line := int64(1) << (lineSel % 3)
		scalar, err := NewAssocCache(sets*int64(ways)*line, ways, line)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := NewAssocCache(sets*int64(ways)*line, ways, line)
		if err != nil {
			t.Fatal(err)
		}
		addrs := make([]int64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			addrs = append(addrs, int64(data[i])<<8|int64(data[i+1]))
		}
		for _, a := range addrs {
			scalar.Access(a)
		}
		// Uneven block boundaries, including empty blocks.
		for lo := 0; lo < len(addrs); {
			hi := lo + 1 + (lo*7)%13
			if hi > len(addrs) {
				hi = len(addrs)
			}
			batched.AccessBlock(addrs[lo:hi])
			lo = hi
		}
		if scalar.Misses() != batched.Misses() || scalar.Accesses() != batched.Accesses() {
			t.Fatalf("scalar %d/%d vs batched %d/%d (sets %d ways %d line %d)",
				scalar.Misses(), scalar.Accesses(), batched.Misses(), batched.Accesses(), sets, ways, line)
		}
	})
}
