package cachesim

import (
	"math/rand"
	"testing"
)

func TestFullyAssocMatchesStackSim(t *testing.T) {
	// A fully-associative LRU cache must miss exactly when sd > capacity.
	r := rand.New(rand.NewSource(21))
	const space, capacity = 64, 12
	c, err := NewFullyAssoc(capacity)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewStackSim(space, 1, []int64{capacity})
	var assocMisses int64
	for i := 0; i < 30000; i++ {
		addr := int64(r.Intn(space))
		if !c.Access(addr) {
			assocMisses++
		}
		sim.Access(0, addr)
	}
	m, _ := sim.Results().MissesFor(capacity)
	if m != assocMisses {
		t.Fatalf("stack-distance misses %d != fully-assoc misses %d", m, assocMisses)
	}
	if c.Misses() != assocMisses {
		t.Fatalf("internal miss counter mismatch")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// Capacity 4, line 1, direct-mapped: addresses 0 and 4 conflict.
	c, err := NewDirectMapped(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Access(0)
		c.Access(4)
	}
	if c.Misses() != 20 {
		t.Fatalf("direct-mapped ping-pong misses = %d want 20", c.Misses())
	}
	// Same trace in a 2-way cache of the same capacity: only compulsory.
	c2, err := NewAssocCache(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c2.Access(0)
		c2.Access(4)
	}
	if c2.Misses() != 2 {
		t.Fatalf("2-way misses = %d want 2", c2.Misses())
	}
}

func TestLineSizeSpatialLocality(t *testing.T) {
	// Sequential scan with 8-element lines: 1 miss per 8 accesses.
	c, err := NewAssocCache(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < 800; a++ {
		c.Access(a)
	}
	if c.Misses() != 100 {
		t.Fatalf("sequential scan misses = %d want 100", c.Misses())
	}
	if got := c.MissRatio(); got != 0.125 {
		t.Fatalf("miss ratio %v want 0.125", got)
	}
}

func TestCacheGeometryErrors(t *testing.T) {
	if _, err := NewAssocCache(0, 1, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewAssocCache(10, 1, 3); err == nil {
		t.Error("non-dividing line size accepted")
	}
	if _, err := NewAssocCache(8, 16, 1); err == nil {
		t.Error("more ways than lines accepted")
	}
	if _, err := NewDirectMapped(2, 4); err == nil {
		t.Error("capacity smaller than line accepted")
	}
}

func TestSetAssocBetweenDirectAndFull(t *testing.T) {
	// On a random trace, misses(direct) >= misses(2-way) is not a theorem
	// (Belady anomalies exist for non-LRU, and set hashing matters), but
	// fully-associative LRU must not miss more than direct-mapped on a
	// trace with heavy conflict structure: strided accesses.
	full, _ := NewFullyAssoc(16)
	direct, _ := NewDirectMapped(16, 1)
	for i := 0; i < 1000; i++ {
		addr := int64((i % 8) * 16) // 8 distinct addresses, all conflict direct-mapped
		full.Access(addr)
		direct.Access(addr)
	}
	if full.Misses() != 8 {
		t.Fatalf("fully assoc misses %d want 8", full.Misses())
	}
	if direct.Misses() != 1000 {
		t.Fatalf("direct mapped misses %d want 1000", direct.Misses())
	}
}
