package cachesim

import (
	"math/rand"
	"reflect"
	"testing"
)

// randTrace draws n accesses over the given address space with a skewed
// reuse pattern (mixing hot and cold addresses) so all stack-distance
// regimes appear.
func randTrace(r *rand.Rand, space int64, n int) []int64 {
	addrs := make([]int64, n)
	for i := range addrs {
		if r.Intn(3) == 0 {
			addrs[i] = int64(r.Intn(8)) % space // hot set
		} else {
			addrs[i] = int64(r.Int63n(space))
		}
	}
	return addrs
}

// TestAccessBlockMatchesScalar is the consumption half of the batched
// pipeline's exactness guarantee: feeding the same trace through Access
// per-reference and through AccessBlock in odd-sized batches must yield
// byte-identical Results — misses per watch, histogram, per-site stats —
// and identical internal operation counts (so obs counters agree too).
func TestAccessBlockMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	watches := []int64{64, 1, 16, 4, 256} // deliberately unsorted
	for trial := 0; trial < 10; trial++ {
		space := int64(r.Intn(300) + 4)
		n := r.Intn(20000) + 500
		addrs := randTrace(r, space, n)
		nSites := 3
		sites := make([]int32, n)
		for i := range sites {
			sites[i] = int32(i % nSites)
		}

		scalar := NewStackSim(space, nSites, watches)
		for i, a := range addrs {
			scalar.Access(int(sites[i]), a)
		}
		batched := NewStackSim(space, nSites, watches)
		for lo := 0; lo < n; {
			hi := lo + r.Intn(777) + 1
			if hi > n {
				hi = n
			}
			batched.AccessBlock(sites[lo:hi], addrs[lo:hi])
			lo = hi
		}

		sr, br := scalar.Results(), batched.Results()
		if !reflect.DeepEqual(sr, br) {
			t.Fatalf("trial %d (space %d, n %d): results diverge\nscalar  %+v\nbatched %+v",
				trial, space, n, sr, br)
		}
		if scalar.ops != batched.ops || scalar.compactions != batched.compactions {
			t.Fatalf("trial %d: op counters diverge: ops %d vs %d, compactions %d vs %d",
				trial, scalar.ops, batched.ops, scalar.compactions, batched.compactions)
		}
	}
}

// TestAccessBlockOnSD checks the per-access hook still fires in order from
// the batched path.
func TestAccessBlockOnSD(t *testing.T) {
	s := NewStackSim(16, 1, nil)
	var sds []int64
	s.OnSD = func(_ int, sd int64) { sds = append(sds, sd) }
	s.AccessBlock([]int32{0, 0, 0, 0}, []int64{3, 5, 3, 5})
	want := []int64{InfSD, InfSD, 2, 2}
	if !reflect.DeepEqual(sds, want) {
		t.Fatalf("OnSD saw %v want %v", sds, want)
	}
}

// TestAccessBlockCompaction drives the batched path through many timeline
// compactions and cross-checks against the naive stack.
func TestAccessBlockCompaction(t *testing.T) {
	const space = 8
	r := rand.New(rand.NewSource(13))
	sim := NewStackSim(space, 1, nil)
	naive := &NaiveStack{}
	var got []int64
	sim.OnSD = func(_ int, sd int64) { got = append(got, sd) }
	sites := make([]int32, 64)
	addrs := make([]int64, 64)
	for round := 0; round < 1500; round++ {
		for i := range addrs {
			addrs[i] = int64(r.Intn(space))
		}
		got = got[:0]
		sim.AccessBlock(sites, addrs)
		for i, a := range addrs {
			if want := naive.Access(a); got[i] != want {
				t.Fatalf("round %d access %d: sd %d naive %d", round, i, got[i], want)
			}
		}
	}
	if sim.compactions == 0 {
		t.Fatal("trace never compacted; test is not exercising the compaction path")
	}
}

// TestCapacitiesCrossed covers the documented behavior: the capacities
// whose miss counts differ from the largest watched capacity's, ascending.
func TestCapacitiesCrossed(t *testing.T) {
	// Trace: a b c a b c — at capacity >= 3 only the 3 compulsory misses;
	// below 3 every access misses.
	s := NewStackSim(8, 1, []int64{4, 1, 3, 2}) // unsorted watches
	for _, a := range []int64{0, 1, 2, 0, 1, 2} {
		s.Access(0, a)
	}
	res := s.Results()
	got := res.CapacitiesCrossed()
	want := []int64{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CapacitiesCrossed = %v want %v (misses %v for watches %v)",
			got, want, res.Misses, res.Watches)
	}

	// Flat curve: all watches large enough -> nothing crossed.
	s2 := NewStackSim(8, 1, []int64{3, 5})
	for _, a := range []int64{0, 1, 2, 0, 1, 2} {
		s2.Access(0, a)
	}
	if got := s2.Results().CapacitiesCrossed(); len(got) != 0 {
		t.Fatalf("flat curve crossed %v, want none", got)
	}

	// No watches -> nil.
	if got := (Results{}).CapacitiesCrossed(); got != nil {
		t.Fatalf("empty watches crossed %v", got)
	}
}

// TestMissesAtLeastProperty is the property test for the histogram lower
// bound: for random traces and any capacity c, MissesAtLeast(c) never
// exceeds the exact miss count, and equals it exactly when c+1 is a power
// of two (the histogram's bucket boundaries).
func TestMissesAtLeastProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	// Mix of bucket-aligned capacities (c+1 a power of two) and interior ones.
	capacities := []int64{0, 1, 3, 5, 7, 12, 15, 31, 40, 63, 100, 127, 200, 255}
	for trial := 0; trial < 12; trial++ {
		space := int64(r.Intn(400) + 8)
		n := r.Intn(30000) + 1000
		sim := NewStackSim(space, 1, capacities)
		zero := make([]int32, 512)
		addrs := randTrace(r, space, n)
		for lo := 0; lo < n; lo += 512 {
			hi := lo + 512
			if hi > n {
				hi = n
			}
			sim.AccessBlock(zero[:hi-lo], addrs[lo:hi])
		}
		res := sim.Results()
		for _, c := range capacities {
			exact, err := res.MissesFor(c)
			if err != nil {
				t.Fatal(err)
			}
			lower := res.MissesAtLeast(c)
			if lower > exact {
				t.Fatalf("trial %d: MissesAtLeast(%d) = %d exceeds exact %d", trial, c, lower, exact)
			}
			if (c+1)&c == 0 && lower != exact { // c+1 is a power of two
				t.Fatalf("trial %d: MissesAtLeast(%d) = %d not exact (%d) at bucket boundary",
					trial, c, lower, exact)
			}
		}
	}
}

// TestAssocAccessBlockMatchesScalar pins AssocCache.AccessBlock to Access.
func TestAssocAccessBlockMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, geom := range []struct {
		capElems int64
		ways     int
		line     int64
	}{{64, 4, 2}, {32, 1, 4}, {16, 16, 1}} {
		a, err := NewAssocCache(geom.capElems, geom.ways, geom.line)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewAssocCache(geom.capElems, geom.ways, geom.line)
		if err != nil {
			t.Fatal(err)
		}
		addrs := randTrace(r, 512, 20000)
		for _, x := range addrs {
			a.Access(x)
		}
		for lo := 0; lo < len(addrs); lo += 333 {
			hi := lo + 333
			if hi > len(addrs) {
				hi = len(addrs)
			}
			b.AccessBlock(addrs[lo:hi])
		}
		if a.Misses() != b.Misses() || a.Accesses() != b.Accesses() {
			t.Fatalf("geometry %+v: scalar %d/%d vs batched %d/%d",
				geom, a.Misses(), a.Accesses(), b.Misses(), b.Accesses())
		}
	}
}

// TestHierarchyAccessBlockMatchesScalar pins Hierarchy.AccessBlock to
// Access.
func TestHierarchyAccessBlockMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a, err := NewHierarchy(256, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHierarchy(256, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	addrs := randTrace(r, 256, 25000)
	for _, x := range addrs {
		a.Access(x)
	}
	for lo := 0; lo < len(addrs); lo += 1000 {
		hi := lo + 1000
		if hi > len(addrs) {
			hi = len(addrs)
		}
		b.AccessBlock(addrs[lo:hi])
	}
	if a.L1Hits != b.L1Hits || a.L2Hits != b.L2Hits || a.MemAccesses != b.MemAccesses {
		t.Fatalf("hierarchy diverges: scalar (%d,%d,%d) batched (%d,%d,%d)",
			a.L1Hits, a.L2Hits, a.MemAccesses, b.L1Hits, b.L2Hits, b.MemAccesses)
	}
}
