package cachesim

import "fmt"

// Engine names one of the simulation strategies the pipeline can answer a
// miss-count question with. The exact engine walks every access through the
// LRU stack (StackSim); the sampled engine walks every access but pays
// stack-distance bookkeeping only for a seeded hash-sample of the address
// space (SampledSim), reporting estimates with a confidence bound; the
// analytic engine (internal/cachesim/analytic) never touches the trace and
// evaluates the paper's closed-form stack-distance model instead.
//
// The three engines answer the same question at different cost/fidelity
// points, and the cross-engine differential harness in internal/validate
// enforces their agreement: exact is ground truth, analytic must match it
// exactly on the structured subscript class (and within the model's
// published envelope elsewhere), and sampled must land inside its own
// reported confidence interval.
type Engine string

const (
	// EngineExact is the exact stack simulator: every access, every
	// capacity, zero error. O(accesses) time.
	EngineExact Engine = "exact"
	// EngineAnalytic is the closed-form model: milliseconds regardless of
	// trace length, exact on the structured class, bounded error elsewhere.
	EngineAnalytic Engine = "analytic"
	// EngineSampled is the hash-sampled simulator: O(accesses) trace walk
	// but stack bookkeeping on a 2^-k address sample, with a Hoeffding-style
	// bound on the estimate.
	EngineSampled Engine = "sampled"
)

// Engines returns every engine, in the order they should be listed to
// users: ground truth first, then the approximations.
func Engines() []Engine {
	return []Engine{EngineExact, EngineAnalytic, EngineSampled}
}

// ParseEngine validates an engine name from a request or flag. The empty
// string selects the exact engine, preserving pre-engine request formats.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "":
		return EngineExact, nil
	case EngineExact, EngineAnalytic, EngineSampled:
		return Engine(s), nil
	}
	return "", fmt.Errorf("cachesim: unknown engine %q (valid: exact, analytic, sampled)", s)
}
