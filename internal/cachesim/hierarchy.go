package cachesim

import "fmt"

// Hierarchy simulates a two-level inclusive cache hierarchy in one pass
// over the trace. Both levels are fully associative with LRU replacement,
// the model of the paper extended one level down: an access that misses L1
// probes L2; an access that misses both goes to memory.
//
// For fully-associative LRU caches, inclusion holds automatically
// (L2 ⊇ L1 whenever capL2 ≥ capL1), so a single stack-distance computation
// classifies each access: sd ≤ capL1 → L1 hit; capL1 < sd ≤ capL2 → L2
// hit; otherwise memory access.
type Hierarchy struct {
	capL1, capL2 int64
	sim          *StackSim
	zeroSites    []int32 // reusable all-zero site buffer for AccessBlock

	L1Hits      int64
	L2Hits      int64
	MemAccesses int64
}

// NewHierarchy builds a two-level hierarchy over a dense address space.
func NewHierarchy(addrSpace, capL1, capL2 int64) (*Hierarchy, error) {
	if capL1 <= 0 || capL2 < capL1 {
		return nil, fmt.Errorf("cachesim: invalid hierarchy capacities %d/%d", capL1, capL2)
	}
	h := &Hierarchy{capL1: capL1, capL2: capL2}
	h.sim = NewStackSim(addrSpace, 1, nil)
	h.sim.OnSD = func(_ int, sd int64) {
		switch {
		case sd != InfSD && sd <= h.capL1:
			h.L1Hits++
		case sd != InfSD && sd <= h.capL2:
			h.L2Hits++
		default:
			h.MemAccesses++
		}
	}
	return h, nil
}

// Access classifies one reference.
func (h *Hierarchy) Access(addr int64) { h.sim.Access(0, addr) }

// AccessBlock classifies a batch of references through the underlying
// batched stack simulator. All accesses share site 0; the zero-site buffer
// is grown on demand and reused between blocks.
func (h *Hierarchy) AccessBlock(addrs []int64) {
	if cap(h.zeroSites) < len(addrs) {
		h.zeroSites = make([]int32, len(addrs))
	}
	h.sim.AccessBlock(h.zeroSites[:len(addrs)], addrs)
}

// Accesses returns the total reference count.
func (h *Hierarchy) Accesses() int64 { return h.L1Hits + h.L2Hits + h.MemAccesses }

// AMAT returns the average memory access time for the given per-level hit
// costs (in arbitrary time units).
func (h *Hierarchy) AMAT(costL1, costL2, costMem float64) float64 {
	n := h.Accesses()
	if n == 0 {
		return 0
	}
	return (float64(h.L1Hits)*costL1 + float64(h.L2Hits)*costL2 + float64(h.MemAccesses)*costMem) / float64(n)
}
