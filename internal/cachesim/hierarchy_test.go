package cachesim

import (
	"math/rand"
	"testing"
)

func TestHierarchyClassification(t *testing.T) {
	h, err := NewHierarchy(64, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Trace: a b c d a  — distances: inf inf inf inf, then a at depth 4.
	for _, addr := range []int64{0, 1, 2, 3, 0} {
		h.Access(addr)
	}
	if h.MemAccesses != 4 {
		t.Errorf("mem accesses %d want 4", h.MemAccesses)
	}
	if h.L2Hits != 1 {
		t.Errorf("L2 hits %d want 1 (sd 4 fits L2 not L1)", h.L2Hits)
	}
	if h.L1Hits != 0 {
		t.Errorf("L1 hits %d want 0", h.L1Hits)
	}
	h.Access(0) // immediate re-access: sd 1 → L1
	if h.L1Hits != 1 {
		t.Errorf("L1 hits %d want 1", h.L1Hits)
	}
	if h.Accesses() != 6 {
		t.Errorf("accesses %d", h.Accesses())
	}
}

func TestHierarchyConsistentWithSeparateSims(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const space = 96
	h, err := NewHierarchy(space, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewStackSim(space, 1, []int64{8, 32})
	for i := 0; i < 40000; i++ {
		addr := int64(r.Intn(space))
		h.Access(addr)
		flat.Access(0, addr)
	}
	res := flat.Results()
	m1, _ := res.MissesFor(8)
	m2, _ := res.MissesFor(32)
	if h.L1Hits != res.Accesses-m1 {
		t.Errorf("L1 hits %d vs %d", h.L1Hits, res.Accesses-m1)
	}
	if h.MemAccesses != m2 {
		t.Errorf("memory accesses %d vs L2 misses %d", h.MemAccesses, m2)
	}
	if h.L2Hits != m1-m2 {
		t.Errorf("L2 hits %d vs %d", h.L2Hits, m1-m2)
	}
}

func TestHierarchyAMAT(t *testing.T) {
	h, _ := NewHierarchy(8, 1, 2)
	h.Access(0)
	h.Access(0)
	// One memory access (compulsory), one L1 hit.
	amat := h.AMAT(1, 10, 100)
	if amat != (100+1)/2.0 {
		t.Errorf("AMAT %v", amat)
	}
	if _, err := NewHierarchy(8, 4, 2); err == nil {
		t.Error("L2 smaller than L1 accepted")
	}
	if _, err := NewHierarchy(8, 0, 2); err == nil {
		t.Error("zero L1 accepted")
	}
}
