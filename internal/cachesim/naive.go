package cachesim

// NaiveStack is a straightforward O(n·d) LRU stack used as the reference
// implementation in tests: a slice ordered most-recently-used first. Its
// results must match StackSim exactly on any trace.
type NaiveStack struct {
	stack []int64
}

// Access returns the stack distance of the access (1-based depth, InfSD for
// a first touch) and updates the stack.
func (n *NaiveStack) Access(addr int64) int64 {
	for i, a := range n.stack {
		if a == addr {
			copy(n.stack[1:i+1], n.stack[0:i])
			n.stack[0] = addr
			return int64(i + 1)
		}
	}
	n.stack = append(n.stack, 0)
	copy(n.stack[1:], n.stack[0:len(n.stack)-1])
	n.stack[0] = addr
	return InfSD
}

// Depth returns the number of distinct addresses seen.
func (n *NaiveStack) Depth() int { return len(n.stack) }
