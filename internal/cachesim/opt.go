package cachesim

import (
	"container/heap"
	"fmt"
)

// OptMisses computes the miss count of Belady's offline-optimal replacement
// policy (evict the resident line whose next use is farthest in the future)
// on a materialized trace. It bounds from below what any replacement policy
// — including the LRU the paper models — can achieve, quantifying how much
// of the miss count is intrinsic to the access pattern versus the policy.
func OptMisses(addrs []int64, capacity int64) (int64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("cachesim: non-positive capacity %d", capacity)
	}
	n := len(addrs)
	// Pass 1: next-use index for every access (n = never used again).
	nextUse := make([]int, n)
	last := map[int64]int{}
	for i := n - 1; i >= 0; i-- {
		a := addrs[i]
		if j, ok := last[a]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = n
		}
		last[a] = i
	}
	// Pass 2: simulate with a lazy max-heap of (nextUse, addr).
	resident := map[int64]int{} // addr -> its current next use
	h := &optHeap{}
	var misses int64
	for i, a := range addrs {
		if _, ok := resident[a]; ok {
			resident[a] = nextUse[i]
			heap.Push(h, optEntry{nextUse[i], a})
			continue
		}
		misses++
		if int64(len(resident)) == capacity {
			// Evict the farthest-next-use resident; skip stale heap entries.
			for {
				e := heap.Pop(h).(optEntry)
				cur, ok := resident[e.addr]
				if ok && cur == e.next {
					delete(resident, e.addr)
					break
				}
			}
		}
		resident[a] = nextUse[i]
		heap.Push(h, optEntry{nextUse[i], a})
	}
	return misses, nil
}

type optEntry struct {
	next int
	addr int64
}

type optHeap []optEntry

func (h optHeap) Len() int            { return len(h) }
func (h optHeap) Less(i, j int) bool  { return h[i].next > h[j].next } // max-heap
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
