package cachesim

import (
	"math/rand"
	"testing"
)

func lruMisses(addrs []int64, capacity int64, space int64) int64 {
	sim := NewStackSim(space, 1, []int64{capacity})
	for _, a := range addrs {
		sim.Access(0, a)
	}
	m, _ := sim.Results().MissesFor(capacity)
	return m
}

func TestOptKnownExample(t *testing.T) {
	// Classic: capacity 3, trace 0 1 2 3 0 1 4 0 1 2 3 4 (Belady example
	// family). OPT keeps 0 and 1 on the first eviction.
	addrs := []int64{0, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4}
	opt, err := OptMisses(addrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	lru := lruMisses(addrs, 3, 8)
	if opt > lru {
		t.Fatalf("OPT %d worse than LRU %d", opt, lru)
	}
	// Belady on this trace: misses 0,1,2 (compulsory), 3 (evict 2),
	// 4 (evict 3), then 2 and 3 miss (evicting the never-reused 0 and 1)
	// while the final 4 hits — 7 total.
	if opt != 7 {
		t.Fatalf("OPT = %d, want 7", opt)
	}
}

func TestOptNeverWorseThanLRU(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		space := int64(8 + r.Intn(40))
		n := 500 + r.Intn(4000)
		addrs := make([]int64, n)
		for i := range addrs {
			addrs[i] = int64(r.Intn(int(space)))
		}
		for _, cap := range []int64{2, 5, 11, 23} {
			opt, err := OptMisses(addrs, cap)
			if err != nil {
				t.Fatal(err)
			}
			lru := lruMisses(addrs, cap, space)
			if opt > lru {
				t.Fatalf("trial %d cap %d: OPT %d > LRU %d", trial, cap, opt, lru)
			}
			// Compulsory floor.
			distinct := map[int64]bool{}
			for _, a := range addrs {
				distinct[a] = true
			}
			if opt < int64(len(distinct)) {
				t.Fatalf("OPT %d below distinct %d", opt, len(distinct))
			}
		}
	}
}

func TestOptSequentialScan(t *testing.T) {
	// A non-repeating scan: every access misses under any policy.
	addrs := make([]int64, 100)
	for i := range addrs {
		addrs[i] = int64(i)
	}
	opt, err := OptMisses(addrs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 100 {
		t.Fatalf("OPT %d want 100", opt)
	}
	if _, err := OptMisses(addrs, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
