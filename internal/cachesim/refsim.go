package cachesim

import (
	"math/bits"
	"sort"

	"repro/internal/obs"
)

// ReferenceSim is the original per-access stack simulator: a Fenwick
// (binary indexed) tree over timeline slots, walked once per query and once
// per update. It is kept verbatim for two jobs. First, it is the
// differential ground truth for StackSim's hierarchical-bitset engine — a
// structurally independent implementation of the same specification, so a
// bug would have to be made twice to go unnoticed. Second, it is the
// pre-batching baseline that the committed benchmarks (and BENCH_sim.json)
// measure the batched pipeline against.
//
// It deliberately has no AccessBlock: it is the scalar pipeline, frozen.
// All counters (accesses, distinct, logical stack ops, compactions) and
// Results match StackSim exactly on the same trace.
type ReferenceSim struct {
	watches []int64
	sortedW []int64
	sortIdx []int
	missK   []int64
	siteK   [][]int64
	slotOf  []int64
	addrAt  []int64
	fen     []int64 // Fenwick tree over slots 1..cap
	clock   int64
	cap     int64
	active  int64
	res     Results

	ops         int64
	compactions int64
	flushed     struct{ accesses, distinct, ops, compactions int64 }

	// OnSD, if non-nil, receives every access's site and stack distance
	// (InfSD for first touches), exactly as StackSim.OnSD does.
	OnSD func(site int, sd int64)
}

// NewReferenceSim creates a reference simulator with the same contract as
// NewStackSim.
func NewReferenceSim(addrSpace int64, nSites int, watches []int64) *ReferenceSim {
	if addrSpace <= 0 {
		panic("cachesim: non-positive address space")
	}
	w := append([]int64(nil), watches...)
	capSlots := 2*addrSpace + 2
	s := &ReferenceSim{
		watches: w,
		slotOf:  make([]int64, addrSpace),
		addrAt:  make([]int64, capSlots+1),
		fen:     make([]int64, capSlots+1),
		clock:   1,
		cap:     capSlots,
	}
	for i := range s.addrAt {
		s.addrAt[i] = -1
	}
	s.sortIdx = make([]int, len(w))
	for i := range s.sortIdx {
		s.sortIdx[i] = i
	}
	sort.SliceStable(s.sortIdx, func(i, j int) bool { return w[s.sortIdx[i]] < w[s.sortIdx[j]] })
	s.sortedW = make([]int64, len(w))
	for k, idx := range s.sortIdx {
		s.sortedW[k] = w[idx]
	}
	s.missK = make([]int64, len(w)+1)
	s.siteK = make([][]int64, nSites)
	for i := range s.siteK {
		s.siteK[i] = make([]int64, len(w)+1)
	}
	s.res.Watches = w
	s.res.PerSite = make([]SiteStats, nSites)
	return s
}

func (s *ReferenceSim) fenAdd(i, delta int64) {
	s.ops++
	for ; i <= s.cap; i += i & (-i) {
		s.fen[i] += delta
	}
}

func (s *ReferenceSim) fenPrefix(i int64) int64 {
	s.ops++
	var sum int64
	for ; i > 0; i -= i & (-i) {
		sum += s.fen[i]
	}
	return sum
}

// Access processes one reference, exactly as StackSim.Access does.
func (s *ReferenceSim) Access(site int, addr int64) {
	s.res.Accesses++
	st := &s.res.PerSite[site]
	st.Accesses++

	old := s.slotOf[addr]
	var sd int64
	k := len(s.sortedW)
	if old == 0 {
		sd = InfSD
		s.active++
		s.res.Distinct++
		st.FirstTouch++
	} else {
		sd = s.active - s.fenPrefix(old) + 1
		s.fenAdd(old, -1)
		s.addrAt[old] = -1
		s.res.Hist[bits.Len64(uint64(sd))]++
		k = watchPrefix(s.sortedW, sd)
	}
	s.missK[k]++
	s.siteK[site][k]++
	if s.OnSD != nil {
		s.OnSD(site, sd)
	}

	if s.clock > s.cap {
		s.compact()
	}
	s.slotOf[addr] = s.clock
	s.addrAt[s.clock] = addr
	s.fenAdd(s.clock, 1)
	s.clock++
}

// compact renumbers active slots to 1..active and rebuilds the Fenwick tree
// with one fenAdd per surviving slot — the original formulation, whose
// per-slot fenAdd calls also produce the same ops total as StackSim's
// arithmetic rebuild.
func (s *ReferenceSim) compact() {
	s.compactions++
	for i := range s.fen {
		s.fen[i] = 0
	}
	next := int64(1)
	for slot := int64(1); slot <= s.cap; slot++ {
		addr := s.addrAt[slot]
		s.addrAt[slot] = -1
		if addr >= 0 && s.slotOf[addr] == slot {
			s.slotOf[addr] = next
			s.addrAt[next] = addr
			next++
		}
	}
	for slot := int64(1); slot < next; slot++ {
		s.fenAdd(slot, 1)
	}
	s.clock = next
}

// Results returns the accumulated results, in the same form as
// StackSim.Results.
func (s *ReferenceSim) Results() Results {
	out := s.res
	out.Watches = append([]int64(nil), s.res.Watches...)
	out.Misses = s.materialize(s.missK)
	out.PerSite = make([]SiteStats, len(s.res.PerSite))
	for i, ps := range s.res.PerSite {
		out.PerSite[i] = SiteStats{
			Accesses:   ps.Accesses,
			FirstTouch: ps.FirstTouch,
			Misses:     s.materialize(s.siteK[i]),
		}
	}
	return out
}

func (s *ReferenceSim) materialize(k []int64) []int64 {
	out := make([]int64, len(s.watches))
	var suffix int64
	for j := len(s.sortedW) - 1; j >= 0; j-- {
		suffix += k[j+1]
		out[s.sortIdx[j]] = suffix
	}
	return out
}

// FlushMetrics publishes counter deltas into the same "cachesim.*" counters
// StackSim.FlushMetrics uses, so a scalar sweep and a batched sweep report
// identical totals.
func (s *ReferenceSim) FlushMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.Counter("cachesim.accesses").Add(s.res.Accesses - s.flushed.accesses)
	m.Counter("cachesim.distinct").Add(s.res.Distinct - s.flushed.distinct)
	m.Counter("cachesim.stack_ops").Add(s.ops - s.flushed.ops)
	m.Counter("cachesim.compactions").Add(s.compactions - s.flushed.compactions)
	s.flushed.accesses = s.res.Accesses
	s.flushed.distinct = s.res.Distinct
	s.flushed.ops = s.ops
	s.flushed.compactions = s.compactions
}
