package cachesim

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestStackSimMatchesReference drives identical random traces through
// ReferenceSim (Fenwick tree, per-access) and StackSim (hierarchical
// bitset, both per-access and batched) and requires identical Results and
// identical flushed counters. The two engines share no counting code, so
// agreement here is the strongest correctness evidence in the package.
func TestStackSimMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	watches := []int64{128, 2, 16, 1024}
	for trial := 0; trial < 8; trial++ {
		space := int64(16 + rng.Intn(600))
		n := 3000 + rng.Intn(3000)
		nSites := 1 + rng.Intn(4)
		sites := make([]int32, n)
		addrs := make([]int64, n)
		for i := range addrs {
			sites[i] = int32(rng.Intn(nSites))
			addrs[i] = rng.Int63n(space)
		}

		ref := NewReferenceSim(space, nSites, watches)
		scalar := NewStackSim(space, nSites, watches)
		batched := NewStackSim(space, nSites, watches)
		for i := range addrs {
			ref.Access(int(sites[i]), addrs[i])
			scalar.Access(int(sites[i]), addrs[i])
		}
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(300)
			if hi > n {
				hi = n
			}
			batched.AccessBlock(sites[lo:hi], addrs[lo:hi])
			lo = hi
		}

		want := ref.Results()
		for name, sim := range map[string]*StackSim{"scalar": scalar, "batched": batched} {
			got := sim.Results()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d: %s StackSim diverges from reference\nref %+v\ngot %+v", trial, name, got, want)
			}
			if sim.ops != ref.ops || sim.compactions != ref.compactions {
				t.Fatalf("trial %d: %s counters diverge: ops %d vs %d, compactions %d vs %d",
					trial, name, sim.ops, ref.ops, sim.compactions, ref.compactions)
			}
		}
		if ref.compactions == 0 && trial == 0 {
			t.Log("warning: first trial saw no compaction")
		}
	}
}
