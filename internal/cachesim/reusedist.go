package cachesim

// ReuseTracker measures *reuse distance* in the §3 sense the paper argues
// against: the number of accesses (time) between two consecutive touches of
// the same address, as opposed to the number of *distinct* addresses (the
// stack distance). A cache model thresholding on reuse distance
// over-predicts misses whenever the intervening accesses repeat a small
// working set — the gap this tracker exposes is precisely the paper's
// reason for building on stack distances.
type ReuseTracker struct {
	lastTime []int64
	clock    int64
	// Hist[b] counts accesses whose reuse distance d has bits.Len(d) == b.
	Hist      [64]int64
	First     int64 // first touches
	Accesses  int64
	misses    map[int64]int64 // threshold -> misses under the reuse-distance model
	watchList []int64
}

// NewReuseTracker tracks a dense address space, predicting misses under a
// reuse-distance threshold model for each watched threshold.
func NewReuseTracker(addrSpace int64, watches []int64) *ReuseTracker {
	r := &ReuseTracker{
		lastTime:  make([]int64, addrSpace),
		misses:    map[int64]int64{},
		watchList: append([]int64(nil), watches...),
	}
	return r
}

// Access records one reference and returns its reuse distance (-1 for a
// first touch).
func (r *ReuseTracker) Access(addr int64) int64 {
	r.clock++
	r.Accesses++
	last := r.lastTime[addr]
	r.lastTime[addr] = r.clock
	if last == 0 {
		r.First++
		for _, w := range r.watchList {
			r.misses[w]++
		}
		return -1
	}
	d := r.clock - last // accesses since the previous touch, inclusive
	b := bitsLen(d)
	r.Hist[b]++
	for _, w := range r.watchList {
		if d > w {
			r.misses[w]++
		}
	}
	return d
}

// MissesUnderThreshold returns the miss count the reuse-distance model
// predicts for the watched threshold (an access "misses" when more than
// threshold accesses passed since its previous touch).
func (r *ReuseTracker) MissesUnderThreshold(threshold int64) (int64, bool) {
	m, ok := r.misses[threshold]
	return m, ok
}

func bitsLen(v int64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
