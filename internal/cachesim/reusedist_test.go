package cachesim

import "testing"

func TestReuseTrackerBasics(t *testing.T) {
	r := NewReuseTracker(8, []int64{2})
	if d := r.Access(0); d != -1 {
		t.Errorf("first touch distance %d", d)
	}
	r.Access(1)
	if d := r.Access(0); d != 2 {
		t.Errorf("reuse distance %d want 2", d)
	}
	m, ok := r.MissesUnderThreshold(2)
	if !ok || m != 2 { // two first touches; the reuse at distance 2 fits
		t.Errorf("misses %d ok=%v", m, ok)
	}
	if _, ok := r.MissesUnderThreshold(99); ok {
		t.Error("unwatched threshold reported")
	}
}

// TestReuseDistanceOverpredicts reproduces §3's argument: a trace that
// repeatedly sweeps a tiny buffer between touches of a cold element has a
// huge reuse distance but a tiny stack distance; the reuse-distance model
// predicts misses that LRU (stack distance) correctly calls hits.
func TestReuseDistanceOverpredicts(t *testing.T) {
	const buf = 4      // tiny working set
	const sweeps = 100 // accesses between X touches: 4·100 = 400
	const capacity = 8 // cache comfortably holds buf + X

	reuse := NewReuseTracker(16, []int64{capacity})
	stack := NewStackSim(16, 1, []int64{capacity})
	touch := func(addr int64) {
		reuse.Access(addr)
		stack.Access(0, addr)
	}
	for rep := 0; rep < 10; rep++ {
		touch(15) // the reused element X
		for s := 0; s < sweeps; s++ {
			for b := int64(0); b < buf; b++ {
				touch(b)
			}
		}
	}
	stackMisses, _ := stack.Results().MissesFor(capacity)
	reuseMisses, _ := reuse.MissesUnderThreshold(capacity)
	// Stack distance: only compulsory misses (5 distinct addresses).
	if stackMisses != 5 {
		t.Errorf("stack-distance misses %d want 5 (compulsory only)", stackMisses)
	}
	// Reuse distance: every X touch after the first looks like a miss
	// (distance ~400 > 8), plus all re-touches of the buffer across sweeps
	// are hits (distance 4 <= 8). So ≥ 9 extra false misses.
	if reuseMisses < stackMisses+9 {
		t.Errorf("reuse-distance model predicted %d misses, expected to over-predict vs %d",
			reuseMisses, stackMisses)
	}
}

func TestReuseTrackerHistogram(t *testing.T) {
	r := NewReuseTracker(4, nil)
	r.Access(0)
	r.Access(0) // distance 1 -> bucket 1
	r.Access(1)
	r.Access(0) // distance 2 -> bucket 2
	if r.Hist[1] != 1 || r.Hist[2] != 1 {
		t.Errorf("hist %v", r.Hist[:4])
	}
	if r.First != 2 || r.Accesses != 4 {
		t.Errorf("first %d accesses %d", r.First, r.Accesses)
	}
}
