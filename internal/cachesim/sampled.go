package cachesim

import (
	"math"

	"repro/internal/obs"
)

// SampledSim estimates the exact simulator's results from a spatial sample
// of the address space, after SHARDS (Waldspurger et al.): an address is
// sampled when a seeded hash of it falls in the lowest 2^-k fraction of the
// hash range, every access to a sampled address is played through an inner
// StackSim, and a sampled stack distance d stands for a full-trace distance
// of d·2^k — so the inner simulator watches capacity c>>k to decide misses
// at capacity c. Miss counts are scaled back up by the observed sampling
// ratio and first-touch counts by 2^k (address sampling is uniform over
// addresses, so distinct-address counts scale exactly by the rate).
//
// The estimator is deterministic: the sample is a pure function of
// (address, Seed), so results are identical across block sizes and runs,
// and Log2Rate 0 degenerates to the exact simulator bit-for-bit.
//
// MissBound reports a Hoeffding-style half-width on the estimated miss
// counts: treating the s sampled accesses as draws of the miss indicator,
// the miss ratio is off by more than sqrt(ln(2/δ)/2s) with probability at
// most δ. Sampled accesses are not independent draws, so the bound is a
// calibrated envelope rather than a theorem; the differential harness in
// internal/validate measures how often the exact count actually falls
// inside it (≥95% over the corpus) and CI enforces that rate.
type SampledSim struct {
	inner   *StackSim
	k       uint
	seed    uint64
	watches []int64 // caller's capacities, unscaled

	total     int64   // all accesses, sampled or not
	siteTotal []int64 // per site: all accesses

	scratchSites []int32
	scratchAddrs []int64

	flushedTotal, flushedKept int64
}

// DefaultSampleSeed seeds the sampling hash when the caller has no
// preference; a fixed odd constant keeps served results reproducible.
const DefaultSampleSeed = 0x9E3779B97F4A7C15

// DefaultLog2Rate picks the sampling rate for an address space: the
// smallest k for which the expected sampled address count fits a ~64K
// budget (the regime where the inner simulator's state is L2-resident).
// Address spaces at or below the budget return 0 — exact simulation.
func DefaultLog2Rate(addrSpace int64) int {
	k := 0
	for addrSpace>>uint(k) > 1<<16 {
		k++
	}
	return k
}

// NewSampledSim creates a sampled simulator with the same contract as
// NewStackSim plus the sampling rate 2^-log2Rate and hash seed. log2Rate
// below 1 samples everything; seed 0 selects DefaultSampleSeed.
func NewSampledSim(addrSpace int64, nSites int, watches []int64, log2Rate int, seed uint64) *SampledSim {
	if log2Rate < 0 {
		log2Rate = 0
	}
	if seed == 0 {
		seed = DefaultSampleSeed
	}
	w := append([]int64(nil), watches...)
	scaled := make([]int64, len(w))
	for i, c := range w {
		scaled[i] = c >> uint(log2Rate)
	}
	return &SampledSim{
		inner:     NewStackSim(addrSpace, nSites, scaled),
		k:         uint(log2Rate),
		seed:      seed,
		watches:   w,
		siteTotal: make([]int64, nSites),
	}
}

// sampleHash is splitmix64's finalizer over the seeded address: a cheap
// statistically uniform mixer, so the top k bits select an unbiased 2^-k
// address sample.
func sampleHash(x, seed uint64) uint64 {
	x += seed
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Access processes one reference (the scalar path; AccessBlock is the hot
// one). Unsampled accesses only bump the totals.
func (s *SampledSim) Access(site int, addr int64) {
	s.total++
	s.siteTotal[site]++
	if sampleHash(uint64(addr), s.seed)>>(64-s.k) == 0 {
		s.inner.Access(site, addr)
	}
}

// AccessBlock filters one trace block down to the sampled addresses and
// plays the survivors through the inner simulator's batched path. A shift
// by 64 is defined as 0 in Go, so k == 0 keeps every access.
func (s *SampledSim) AccessBlock(sites []int32, addrs []int64) {
	if cap(s.scratchAddrs) < len(addrs) {
		s.scratchSites = make([]int32, len(addrs))
		s.scratchAddrs = make([]int64, len(addrs))
	}
	seed, k := s.seed, s.k
	siteTotal := s.siteTotal
	n := 0
	for i, addr := range addrs {
		siteTotal[sites[i]]++
		if sampleHash(uint64(addr), seed)>>(64-k) == 0 {
			s.scratchSites[n] = sites[i]
			s.scratchAddrs[n] = addr
			n++
		}
	}
	s.total += int64(len(addrs))
	if n > 0 {
		s.inner.AccessBlock(s.scratchSites[:n], s.scratchAddrs[:n])
	}
}

// scaleRatio estimates a full-population count from a sampled count by the
// observed sampling ratio (population/sample), rounding to nearest.
func scaleRatio(sampled, sampleSize, population int64) int64 {
	if sampleSize <= 0 || sampled <= 0 {
		return 0
	}
	if sampleSize == population {
		return sampled
	}
	return int64(math.Round(float64(sampled) / float64(sampleSize) * float64(population)))
}

// Results returns the estimated full-trace results in the exact engine's
// shape: miss counts are sampled counts scaled by the observed access
// ratio, distinct/first-touch counts scale by the exact address-sampling
// rate 2^k, and the histogram shifts each sampled bucket up by k (a
// sampled distance d stands for d·2^k). With Log2Rate 0 the output equals
// StackSim's exactly.
func (s *SampledSim) Results() Results {
	in := s.inner.Results()
	if s.k == 0 {
		return in
	}
	out := Results{
		Accesses: s.total,
		Distinct: in.Distinct << s.k,
		Watches:  append([]int64(nil), s.watches...),
		Misses:   make([]int64, len(in.Misses)),
	}
	for i, m := range in.Misses {
		out.Misses[i] = scaleRatio(m, in.Accesses, s.total)
	}
	for b, c := range in.Hist {
		if c == 0 {
			continue
		}
		nb := b + int(s.k)
		if nb > 63 {
			nb = 63
		}
		out.Hist[nb] += c << s.k
	}
	out.PerSite = make([]SiteStats, len(in.PerSite))
	for i, ps := range in.PerSite {
		st := SiteStats{
			Accesses:   s.siteTotal[i],
			FirstTouch: ps.FirstTouch << s.k,
			Misses:     make([]int64, len(ps.Misses)),
		}
		for wi, m := range ps.Misses {
			st.Misses[wi] = scaleRatio(m, ps.Accesses, s.siteTotal[i])
		}
		out.PerSite[i] = st
	}
	return out
}

// SampleStats reports the sampling telemetry behind an estimate.
type SampleStats struct {
	Log2Rate        int
	Rate            float64 // 2^-Log2Rate
	Seed            uint64
	TotalAccesses   int64
	SampledAccesses int64
	SampledDistinct int64
}

// Stats returns the sampling telemetry accumulated so far.
func (s *SampledSim) Stats() SampleStats {
	in := s.inner.Results()
	return SampleStats{
		Log2Rate:        int(s.k),
		Rate:            1 / float64(int64(1)<<s.k),
		Seed:            s.seed,
		TotalAccesses:   s.total,
		SampledAccesses: in.Accesses,
		SampledDistinct: in.Distinct,
	}
}

// MissBound returns the Hoeffding-style half-width, in misses, around each
// per-capacity estimate at confidence 1-delta: total · sqrt(ln(2/δ)/2s)
// for s sampled accesses. With no sampled accesses the bound is the whole
// trace (no information); with Log2Rate 0 it is 0 (the result is exact).
func (s *SampledSim) MissBound(delta float64) int64 {
	if s.k == 0 {
		return 0
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.05
	}
	sa := s.inner.Results().Accesses
	if sa == 0 {
		return s.total
	}
	eps := math.Sqrt(math.Log(2/delta) / (2 * float64(sa)))
	b := int64(math.Ceil(eps * float64(s.total)))
	if b > s.total {
		b = s.total
	}
	return b
}

// FlushMetrics publishes the inner simulator's counters plus the sampling
// totals ("cachesim.sampled.total" / ".kept") since the previous flush.
func (s *SampledSim) FlushMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	s.inner.FlushMetrics(m)
	kept := s.inner.Results().Accesses
	m.Counter("cachesim.sampled.total").Add(s.total - s.flushedTotal)
	m.Counter("cachesim.sampled.kept").Add(kept - s.flushedKept)
	s.flushedTotal, s.flushedKept = s.total, kept
}
