package cachesim

import (
	"math/rand"
	"testing"
)

// synthTrace builds a deterministic synthetic trace with reuse at several
// scales: a working set swept repeatedly plus random accesses over a larger
// space.
func synthTrace(r *rand.Rand, addrSpace int64, n int) []int64 {
	out := make([]int64, 0, n)
	for len(out) < n {
		// A sequential sweep of a small working set (short stack distances)…
		ws := int64(64 + r.Intn(256))
		base := r.Int63n(addrSpace - ws)
		for i := int64(0); i < ws && len(out) < n; i++ {
			out = append(out, base+i)
		}
		// …interleaved with uniform accesses (long distances).
		for i := 0; i < 128 && len(out) < n; i++ {
			out = append(out, r.Int63n(addrSpace))
		}
	}
	return out
}

func feed(sim interface{ AccessBlock([]int32, []int64) }, addrs []int64, blockSize int) {
	sites := make([]int32, blockSize)
	for i := 0; i < len(addrs); i += blockSize {
		end := i + blockSize
		if end > len(addrs) {
			end = len(addrs)
		}
		sim.AccessBlock(sites[:end-i], addrs[i:end])
	}
}

// TestSampledRateOneIsExact: Log2Rate 0 must reproduce the exact simulator
// bit for bit — results, stats, and a zero bound.
func TestSampledRateOneIsExact(t *testing.T) {
	addrs := synthTrace(rand.New(rand.NewSource(1)), 1<<14, 50000)
	watches := []int64{1, 64, 1024, 1 << 13}

	exact := NewStackSim(1<<14, 1, watches)
	feed(exact, addrs, 4096)
	sampled := NewSampledSim(1<<14, 1, watches, 0, 0)
	feed(sampled, addrs, 4096)

	er, sr := exact.Results(), sampled.Results()
	if er.Accesses != sr.Accesses || er.Distinct != sr.Distinct {
		t.Fatalf("rate-1 totals differ: exact %d/%d sampled %d/%d",
			er.Accesses, er.Distinct, sr.Accesses, sr.Distinct)
	}
	for i := range watches {
		if er.Misses[i] != sr.Misses[i] {
			t.Fatalf("rate-1 misses differ at watch %d: %d vs %d", watches[i], er.Misses[i], sr.Misses[i])
		}
	}
	if b := sampled.MissBound(0.05); b != 0 {
		t.Fatalf("rate-1 bound = %d, want 0", b)
	}
	if st := sampled.Stats(); st.SampledAccesses != st.TotalAccesses {
		t.Fatalf("rate-1 sampled %d of %d accesses", st.SampledAccesses, st.TotalAccesses)
	}
}

// TestSampledDeterministicAcrossBlockSizes: the estimate is a pure function
// of the trace and seed, independent of how accesses are batched.
func TestSampledDeterministicAcrossBlockSizes(t *testing.T) {
	addrs := synthTrace(rand.New(rand.NewSource(2)), 1<<16, 80000)
	watches := []int64{128, 4096}
	var ref Results
	for i, bs := range []int{1, 7, 512, 65536} {
		s := NewSampledSim(1<<16, 1, watches, 3, 0)
		feed(s, addrs, bs)
		r := s.Results()
		if i == 0 {
			ref = r
			continue
		}
		if r.Accesses != ref.Accesses || r.Distinct != ref.Distinct {
			t.Fatalf("block size %d changed totals: %+v vs %+v", bs, r, ref)
		}
		for wi := range watches {
			if r.Misses[wi] != ref.Misses[wi] {
				t.Fatalf("block size %d changed misses[%d]: %d vs %d", bs, wi, r.Misses[wi], ref.Misses[wi])
			}
		}
	}
	// The scalar Access path must agree with the batched one too.
	s := NewSampledSim(1<<16, 1, watches, 3, 0)
	for _, a := range addrs {
		s.Access(0, a)
	}
	r := s.Results()
	if r.Accesses != ref.Accesses || r.Misses[0] != ref.Misses[0] || r.Misses[1] != ref.Misses[1] {
		t.Fatalf("scalar path diverged from batched: %+v vs %+v", r, ref)
	}
}

// TestSampledWithinBound: on a trace large enough for the estimator to
// engage, every per-capacity estimate must land inside the reported
// Hoeffding envelope around the exact count (fixed seed — deterministic).
func TestSampledWithinBound(t *testing.T) {
	addrs := synthTrace(rand.New(rand.NewSource(3)), 1<<18, 400000)
	watches := []int64{256, 4096, 1 << 15}

	exact := NewStackSim(1<<18, 1, watches)
	feed(exact, addrs, 8192)
	k := DefaultLog2Rate(1 << 18)
	if k == 0 {
		t.Fatalf("expected a non-trivial sampling rate for a %d-element space", 1<<18)
	}
	sampled := NewSampledSim(1<<18, 1, watches, k, 0)
	feed(sampled, addrs, 8192)

	er, sr := exact.Results(), sampled.Results()
	bound := sampled.MissBound(0.05)
	if bound <= 0 || bound >= er.Accesses {
		t.Fatalf("degenerate bound %d for %d accesses", bound, er.Accesses)
	}
	for i, w := range watches {
		diff := er.Misses[i] - sr.Misses[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			t.Errorf("watch %d: exact %d vs estimate %d differ by %d > bound %d",
				w, er.Misses[i], sr.Misses[i], diff, bound)
		}
	}
	// Distinct-address estimate: unbiased by the address-sampling rate;
	// allow the same envelope.
	if diff := er.Distinct - sr.Distinct; diff > bound || -diff > bound {
		t.Errorf("distinct: exact %d vs estimate %d beyond bound %d", er.Distinct, sr.Distinct, bound)
	}
	// Per-site totals are exact counts, never estimates.
	if sr.PerSite[0].Accesses != er.Accesses {
		t.Errorf("per-site access total %d, want exact %d", sr.PerSite[0].Accesses, er.Accesses)
	}
}

// TestParseEngine pins the engine taxonomy.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineExact, true},
		{"exact", EngineExact, true},
		{"analytic", EngineAnalytic, true},
		{"sampled", EngineSampled, true},
		{"Exact", "", false},
		{"bogus", "", false},
	} {
		got, err := ParseEngine(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseEngine(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if len(Engines()) != 3 {
		t.Errorf("Engines() = %v, want 3 entries", Engines())
	}
}
