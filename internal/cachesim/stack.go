// Package cachesim provides exact cache simulation for element-granular
// reference traces. It substitutes for the SimpleScalar sim-cache simulator
// the paper validates against: StackSim computes the exact LRU stack
// distance of every access in a fully-associative cache (one pass, O(log d)
// per access), which simultaneously yields the miss count for every cache
// capacity. Set-associative and direct-mapped simulators are provided for
// sensitivity studies beyond the paper's fully-associative setting.
//
// Stack distance convention (matching the paper): the stack distance of an
// access is the number of distinct addresses touched since the previous
// access to the same address, *including the address itself* — i.e. the
// 1-based LRU stack depth. A first touch has infinite distance. An access is
// a miss in a fully-associative LRU cache of capacity C exactly when its
// stack distance is greater than C.
package cachesim

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/obs"
)

// InfSD is the sentinel stack distance reported for first touches.
const InfSD = int64(-1)

// SiteStats accumulates per-reference-site simulation results.
type SiteStats struct {
	Accesses   int64
	FirstTouch int64   // compulsory (infinite-distance) accesses
	Misses     []int64 // per watched capacity, same order as Results.Watches
}

// Results summarizes a completed simulation.
type Results struct {
	Accesses int64
	Distinct int64 // number of distinct addresses = compulsory misses
	Watches  []int64
	Misses   []int64 // total misses per watched capacity (incl. compulsory)
	// Hist[b] counts accesses whose stack distance sd satisfies
	// bits.Len(sd) == b, i.e. 2^(b-1) <= sd < 2^b. First touches are not in
	// the histogram; they are counted by Distinct.
	Hist [64]int64
	// PerSite is indexed by the site id given to Access; sized by the
	// nSites argument of NewStackSim.
	PerSite []SiteStats
}

// MissRatio returns misses/accesses for the i-th watched capacity.
func (r Results) MissRatio(i int) float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses[i]) / float64(r.Accesses)
}

// MissesAtLeast returns a lower bound on misses for capacity c derived from
// the histogram alone (exact when c+1 is a power of two).
func (r Results) MissesAtLeast(c int64) int64 {
	total := r.Distinct
	for b := 63; b >= 1; b-- {
		if int64(1)<<uint(b-1) > c { // whole bucket has sd > c
			total += r.Hist[b]
		}
	}
	return total
}

// StackSim is the exact fully-associative LRU stack simulator.
//
// It tracks, for every address in a dense address space, the "slot" of its
// most recent access on a virtual timeline. A Fenwick (binary indexed) tree
// over slots supports counting how many addresses were touched more recently
// than a given slot in O(log cap). The timeline is periodically compacted so
// that memory stays proportional to the address-space size regardless of
// trace length.
type StackSim struct {
	watches []int64
	slotOf  []int64 // per address: current slot, 0 = never accessed
	addrAt  []int64 // per slot: address occupying it, -1 = free
	fen     []int64 // Fenwick tree over slots 1..cap
	clock   int64   // next slot to assign
	cap     int64
	active  int64 // number of distinct addresses seen
	res     Results
	// Plain (non-atomic) operation counters: the simulator is single-
	// threaded and the hot path must not pay for synchronization. ops
	// counts Fenwick-tree operations (one per fenAdd/fenPrefix call);
	// compactions counts timeline rebuilds. FlushMetrics publishes them.
	ops         int64
	compactions int64
	flushed     struct{ accesses, distinct, ops, compactions int64 }
	// OnSD, if non-nil, receives every access's site and stack distance
	// (InfSD for first touches). Used by tests and model validation.
	OnSD func(site int, sd int64)
}

// NewStackSim creates a simulator for a dense address space of the given
// size (addresses 0..addrSpace-1), reporting per-site stats for site ids
// 0..nSites-1 and exact miss counts for each watched capacity.
func NewStackSim(addrSpace int64, nSites int, watches []int64) *StackSim {
	if addrSpace <= 0 {
		panic("cachesim: non-positive address space")
	}
	w := append([]int64(nil), watches...)
	capSlots := 2*addrSpace + 2
	s := &StackSim{
		watches: w,
		slotOf:  make([]int64, addrSpace),
		addrAt:  make([]int64, capSlots+1),
		fen:     make([]int64, capSlots+1),
		clock:   1,
		cap:     capSlots,
	}
	for i := range s.addrAt {
		s.addrAt[i] = -1
	}
	s.res.Watches = w
	s.res.Misses = make([]int64, len(w))
	s.res.PerSite = make([]SiteStats, nSites)
	for i := range s.res.PerSite {
		s.res.PerSite[i].Misses = make([]int64, len(w))
	}
	return s
}

func (s *StackSim) fenAdd(i, delta int64) {
	s.ops++
	for ; i <= s.cap; i += i & (-i) {
		s.fen[i] += delta
	}
}

func (s *StackSim) fenPrefix(i int64) int64 {
	s.ops++
	var sum int64
	for ; i > 0; i -= i & (-i) {
		sum += s.fen[i]
	}
	return sum
}

// Access processes one reference. site indexes the per-site stats; pass 0
// if per-site stats are not needed.
func (s *StackSim) Access(site int, addr int64) {
	s.res.Accesses++
	st := &s.res.PerSite[site]
	st.Accesses++

	old := s.slotOf[addr]
	var sd int64
	if old == 0 {
		sd = InfSD
		s.active++
		s.res.Distinct++
		st.FirstTouch++
	} else {
		// Distinct addresses accessed strictly after old, plus the address
		// itself.
		sd = s.active - s.fenPrefix(old) + 1
		s.fenAdd(old, -1)
		s.addrAt[old] = -1
		b := bits.Len64(uint64(sd))
		s.res.Hist[b]++
	}
	for i, c := range s.watches {
		if sd == InfSD || sd > c {
			s.res.Misses[i]++
			st.Misses[i]++
		}
	}
	if s.OnSD != nil {
		s.OnSD(site, sd)
	}

	if s.clock > s.cap {
		s.compact()
	}
	s.slotOf[addr] = s.clock
	s.addrAt[s.clock] = addr
	s.fenAdd(s.clock, 1)
	s.clock++
}

// compact renumbers active slots to 1..active, preserving order, and
// rebuilds the Fenwick tree. Runs O(cap) but only once per ~addrSpace
// accesses, so the amortized cost per access is O(1).
func (s *StackSim) compact() {
	s.compactions++
	next := int64(1)
	for slot := int64(1); slot <= s.cap; slot++ {
		addr := s.addrAt[slot]
		s.addrAt[slot] = -1
		s.fen[slot] = 0
		if addr >= 0 && s.slotOf[addr] == slot {
			s.slotOf[addr] = next
			// addrAt for the new position is filled in the second pass
			// below; next <= slot always holds so no overwrite hazard.
			s.addrAt[next] = addr
			next++
		}
	}
	s.clock = next
	for slot := int64(1); slot < next; slot++ {
		s.fenAdd(slot, 1)
	}
}

// Results returns the accumulated results. The simulator may continue to be
// used afterwards; the returned struct is a snapshot.
func (s *StackSim) Results() Results {
	out := s.res
	out.Watches = append([]int64(nil), s.res.Watches...)
	out.Misses = append([]int64(nil), s.res.Misses...)
	out.PerSite = make([]SiteStats, len(s.res.PerSite))
	for i, ps := range s.res.PerSite {
		out.PerSite[i] = SiteStats{
			Accesses:   ps.Accesses,
			FirstTouch: ps.FirstTouch,
			Misses:     append([]int64(nil), ps.Misses...),
		}
	}
	return out
}

// FlushMetrics publishes the simulator's operation totals accumulated since
// the previous flush into the registry's "cachesim.*" counters: accesses,
// distinct addresses, Fenwick-tree stack operations and timeline
// compactions. Counters (not gauges) so that several simulator instances in
// one run — e.g. a multi-capacity validation sweep — aggregate naturally.
// Nil registry is a no-op. The simulator itself never touches the registry
// on its access path, keeping the hot loop synchronization-free.
func (s *StackSim) FlushMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.Counter("cachesim.accesses").Add(s.res.Accesses - s.flushed.accesses)
	m.Counter("cachesim.distinct").Add(s.res.Distinct - s.flushed.distinct)
	m.Counter("cachesim.stack_ops").Add(s.ops - s.flushed.ops)
	m.Counter("cachesim.compactions").Add(s.compactions - s.flushed.compactions)
	s.flushed.accesses = s.res.Accesses
	s.flushed.distinct = s.res.Distinct
	s.flushed.ops = s.ops
	s.flushed.compactions = s.compactions
}

// MissesFor returns the exact miss count for the watched capacity c.
func (r Results) MissesFor(c int64) (int64, error) {
	for i, w := range r.Watches {
		if w == c {
			return r.Misses[i], nil
		}
	}
	return 0, fmt.Errorf("cachesim: capacity %d was not watched (watches: %v)", c, r.Watches)
}

// SDHistogramString renders the non-empty histogram buckets, for reports.
func (r Results) SDHistogramString() string {
	out := ""
	for b := 1; b < 64; b++ {
		if r.Hist[b] == 0 {
			continue
		}
		lo := int64(1) << uint(b-1)
		hi := int64(1)<<uint(b) - 1
		out += fmt.Sprintf("  sd %8d..%-8d : %d\n", lo, hi, r.Hist[b])
	}
	out += fmt.Sprintf("  sd        inf       : %d\n", r.Distinct)
	return out
}

// CapacitiesCrossed returns, from the histogram, the smallest watched
// capacity whose miss count differs from the largest watched capacity's, a
// convenience for sanity checks in reports.
func (r Results) CapacitiesCrossed() []int64 {
	sorted := append([]int64(nil), r.Watches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}
