// Package cachesim provides exact cache simulation for element-granular
// reference traces. It substitutes for the SimpleScalar sim-cache simulator
// the paper validates against: StackSim computes the exact LRU stack
// distance of every access in a fully-associative cache (one pass, O(log d)
// per access), which simultaneously yields the miss count for every cache
// capacity. Set-associative and direct-mapped simulators are provided for
// sensitivity studies beyond the paper's fully-associative setting.
//
// Stack distance convention (matching the paper): the stack distance of an
// access is the number of distinct addresses touched since the previous
// access to the same address, *including the address itself* — i.e. the
// 1-based LRU stack depth. A first touch has infinite distance. An access is
// a miss in a fully-associative LRU cache of capacity C exactly when its
// stack distance is greater than C.
package cachesim

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/obs"
)

// InfSD is the sentinel stack distance reported for first touches.
const InfSD = int64(-1)

// SiteStats accumulates per-reference-site simulation results.
type SiteStats struct {
	Accesses   int64
	FirstTouch int64   // compulsory (infinite-distance) accesses
	Misses     []int64 // per watched capacity, same order as Results.Watches
}

// Results summarizes a completed simulation.
type Results struct {
	Accesses int64
	Distinct int64 // number of distinct addresses = compulsory misses
	Watches  []int64
	Misses   []int64 // total misses per watched capacity (incl. compulsory)
	// Hist[b] counts accesses whose stack distance sd satisfies
	// bits.Len(sd) == b, i.e. 2^(b-1) <= sd < 2^b. First touches are not in
	// the histogram; they are counted by Distinct.
	Hist [64]int64
	// PerSite is indexed by the site id given to Access; sized by the
	// nSites argument of NewStackSim.
	PerSite []SiteStats
}

// MissRatio returns misses/accesses for the i-th watched capacity.
func (r Results) MissRatio(i int) float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses[i]) / float64(r.Accesses)
}

// MissesAtLeast returns a lower bound on misses for capacity c derived from
// the histogram alone (exact when c+1 is a power of two).
func (r Results) MissesAtLeast(c int64) int64 {
	total := r.Distinct
	for b := 63; b >= 1; b-- {
		if int64(1)<<uint(b-1) > c { // whole bucket has sd > c
			total += r.Hist[b]
		}
	}
	return total
}

// StackSim is the exact fully-associative LRU stack simulator.
//
// It tracks, for every address in a dense address space, the "slot" of its
// most recent access on a virtual timeline, and counts how many addresses
// were touched more recently than a given slot with a two-level structure: a
// bitset of live slots (popcount answers the within-block part of a prefix
// count) under a small Fenwick tree over 256-slot blocks. For the address
// spaces of tiled kernels the bitset is a few KB — L1-resident — and a
// prefix count costs a handful of popcounts plus a walk over a ~100-entry
// tree, where the classic Fenwick-tree-over-slots it replaces walked
// O(log cap) cache lines of a tree hundreds of KB wide. ReferenceSim keeps
// that original implementation as the differential ground truth. The
// timeline is periodically compacted so that memory stays proportional to
// the address-space size regardless of trace length.
type StackSim struct {
	watches []int64
	// Watched capacities in ascending order with the permutation back to the
	// caller's order. An access with stack distance sd misses exactly the
	// watches below sd — a prefix of sortedW — so per access the simulator
	// records only the prefix length k (one binary search, one increment)
	// and Results materializes per-watch miss counts by suffix-summing.
	sortedW []int64
	sortIdx []int
	missK   []int64   // missK[k]: accesses missing exactly the first k sorted watches
	siteK   [][]int64 // per site: same prefix-length counts
	slotOf  []int64   // per address: current slot, 0 = never accessed
	addrAt  []int64   // per slot: address occupying it, -1 = free
	live    []uint64  // bitset over slots: 1 = slot holds a live address
	blkFen  []int64   // Fenwick tree of live counts over 256-slot blocks
	nBlk    int64     // number of blocks (Fenwick index of block B is B+1)
	clock   int64     // next slot to assign
	cap     int64
	active  int64 // number of distinct addresses seen
	res     Results
	// Plain (non-atomic) operation counters: the simulator is single-
	// threaded and the hot path must not pay for synchronization. ops
	// counts logical stack operations (one per timeline prefix query or
	// live-slot update — a unit independent of the counting structure, so
	// totals are comparable across engines and stable in golden files);
	// compactions counts timeline rebuilds. FlushMetrics publishes them.
	ops         int64
	compactions int64
	flushed     struct{ accesses, distinct, ops, compactions int64 }
	// OnSD, if non-nil, receives every access's site and stack distance
	// (InfSD for first touches). Used by tests and model validation.
	OnSD func(site int, sd int64)
}

// NewStackSim creates a simulator for a dense address space of the given
// size (addresses 0..addrSpace-1), reporting per-site stats for site ids
// 0..nSites-1 and exact miss counts for each watched capacity.
func NewStackSim(addrSpace int64, nSites int, watches []int64) *StackSim {
	if addrSpace <= 0 {
		panic("cachesim: non-positive address space")
	}
	w := append([]int64(nil), watches...)
	capSlots := 2*addrSpace + 2
	s := &StackSim{
		watches: w,
		slotOf:  make([]int64, addrSpace),
		addrAt:  make([]int64, capSlots+1),
		live:    make([]uint64, capSlots>>6+2),
		nBlk:    capSlots>>blkShift + 1,
		clock:   1,
		cap:     capSlots,
	}
	s.blkFen = make([]int64, s.nBlk+1)
	for i := range s.addrAt {
		s.addrAt[i] = -1
	}
	s.sortIdx = make([]int, len(w))
	for i := range s.sortIdx {
		s.sortIdx[i] = i
	}
	sort.SliceStable(s.sortIdx, func(i, j int) bool { return w[s.sortIdx[i]] < w[s.sortIdx[j]] })
	s.sortedW = make([]int64, len(w))
	for k, idx := range s.sortIdx {
		s.sortedW[k] = w[idx]
	}
	s.missK = make([]int64, len(w)+1)
	s.siteK = make([][]int64, nSites)
	for i := range s.siteK {
		s.siteK[i] = make([]int64, len(w)+1)
	}
	s.res.Watches = w
	s.res.PerSite = make([]SiteStats, nSites)
	return s
}

// watchPrefix returns the number of sorted watches strictly below sd — the
// length of the missed-watch prefix for a finite stack distance. The usual
// watch list is a handful of capacities, where a predictable linear scan
// beats binary search's data-dependent branches; longer lists fall back to
// binary search so the per-access cost stays O(log #watches).
func watchPrefix(sorted []int64, sd int64) int {
	if len(sorted) <= 8 {
		k := 0
		for k < len(sorted) && sorted[k] < sd {
			k++
		}
		return k
	}
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < sd {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// blkShift sets the block granularity of the live-slot structure: 2^8 slots
// (four bitset words) per Fenwick-tree block. Smaller blocks shift cost from
// popcounts to tree walks and vice versa; 256 keeps the within-block scan at
// most four popcounts while the block tree for typical tiled-kernel address
// spaces stays around a hundred entries.
const blkShift = 8

// livePrefix counts live slots at positions <= slot: a block-tree prefix
// walk, then popcounts over the partial block.
func (s *StackSim) livePrefix(slot int64) int64 {
	b := slot >> blkShift
	var sum int64
	for j := b; j > 0; j -= j & (-j) {
		sum += s.blkFen[j]
	}
	w := slot >> 6
	for j := b << (blkShift - 6); j < w; j++ {
		sum += int64(bits.OnesCount64(s.live[j]))
	}
	// Shifting left by 63-r discards bits above r, so the popcount covers
	// exactly bit positions 0..slot%64 of the final word.
	return sum + int64(bits.OnesCount64(s.live[w]<<(63-uint(slot&63))))
}

func (s *StackSim) markLive(slot int64) {
	s.live[slot>>6] |= 1 << uint(slot&63)
	for j := slot>>blkShift + 1; j <= s.nBlk; j += j & (-j) {
		s.blkFen[j]++
	}
}

func (s *StackSim) clearLive(slot int64) {
	s.live[slot>>6] &^= 1 << uint(slot&63)
	for j := slot>>blkShift + 1; j <= s.nBlk; j += j & (-j) {
		s.blkFen[j]--
	}
}

// Access processes one reference. site indexes the per-site stats; pass 0
// if per-site stats are not needed. Streaming consumers should prefer
// AccessBlock, which amortizes the per-call overhead over whole blocks;
// both paths maintain the same state and produce identical Results (pinned
// by TestAccessBlockMatchesScalar).
func (s *StackSim) Access(site int, addr int64) {
	s.res.Accesses++
	st := &s.res.PerSite[site]
	st.Accesses++

	old := s.slotOf[addr]
	var sd int64
	k := len(s.sortedW)
	if old == 0 {
		sd = InfSD
		s.active++
		s.res.Distinct++
		st.FirstTouch++
		s.ops++
	} else {
		// Distinct addresses accessed strictly after old, plus the address
		// itself.
		sd = s.active - s.livePrefix(old) + 1
		s.clearLive(old)
		s.addrAt[old] = -1
		s.res.Hist[bits.Len64(uint64(sd))]++
		k = watchPrefix(s.sortedW, sd)
		s.ops += 3 // prefix query, removal, insertion
	}
	s.missK[k]++
	s.siteK[site][k]++
	if s.OnSD != nil {
		s.OnSD(site, sd)
	}

	if s.clock > s.cap {
		s.compact()
	}
	s.slotOf[addr] = s.clock
	s.addrAt[s.clock] = addr
	s.markLive(s.clock)
	s.clock++
}

// AccessBlock processes one batch of references (the trace.EmitBlock
// shape). It is the hot path of the batched simulation pipeline: slice
// headers and the per-site stats base are hoisted out of the loop, the
// live-slot structure is inlined (the helper walks are too large for the
// compiler to inline as calls), the operation/access counters are committed
// once per block, and the per-access watch scan is replaced by the
// missed-prefix length.
//
// Beyond hoisting, the removal and insertion exploit block locality: when
// the vacated slot and the new slot fall in the same 256-slot block — the
// common case for the short reuse distances of tiled kernels — the two
// block-tree updates cancel and the whole update is two bitset writes. Every
// counter (including ops, which counts logical operations: one query plus
// two updates per hit) and all Results are identical to issuing every
// access through Access, and to ReferenceSim.
func (s *StackSim) AccessBlock(sites []int32, addrs []int64) {
	if len(addrs) == 0 {
		return
	}
	live := s.live
	blkFen := s.blkFen
	nBlk := s.nBlk
	slotOf := s.slotOf
	addrAt := s.addrAt
	sortedW := s.sortedW
	missK := s.missK
	siteK := s.siteK
	perSite := s.res.PerSite
	hist := &s.res.Hist
	onSD := s.OnSD
	clock, active := s.clock, s.active
	nw := len(sortedW)
	var ops, distinct int64
	for i, addr := range addrs {
		site := sites[i]
		st := &perSite[site]
		st.Accesses++
		old := slotOf[addr]
		var sd int64
		k := nw
		if old == 0 {
			sd = InfSD
			active++
			distinct++
			st.FirstTouch++
			ops++ // the insertion
			if clock > s.cap {
				s.clock, s.active = clock, active
				s.compact()
				clock = s.clock
			}
			slotOf[addr] = clock
			addrAt[clock] = addr
			live[clock>>6] |= 1 << uint(clock&63)
			for j := clock>>blkShift + 1; j <= nBlk; j += j & (-j) {
				blkFen[j]++
			}
			clock++
		} else {
			b := old >> blkShift
			var sum int64
			for j := b; j > 0; j -= j & (-j) {
				sum += blkFen[j]
			}
			w := old >> 6
			for j := b << (blkShift - 6); j < w; j++ {
				sum += int64(bits.OnesCount64(live[j]))
			}
			sum += int64(bits.OnesCount64(live[w] << (63 - uint(old&63))))
			sd = active - sum + 1
			(*hist)[bits.Len64(uint64(sd))]++
			k = watchPrefix(sortedW, sd)
			ops += 3 // prefix query, removal, insertion
			addrAt[old] = -1
			live[w] &^= 1 << uint(old&63)
			if clock > s.cap {
				// Finish the removal, then compact, then insert — the
				// scalar order, so the trigger index and resulting state
				// match Access exactly.
				for j := b + 1; j <= nBlk; j += j & (-j) {
					blkFen[j]--
				}
				s.clock, s.active = clock, active
				s.compact()
				clock = s.clock
				slotOf[addr] = clock
				addrAt[clock] = addr
				live[clock>>6] |= 1 << uint(clock&63)
				for j := clock>>blkShift + 1; j <= nBlk; j += j & (-j) {
					blkFen[j]++
				}
				clock++
			} else {
				live[clock>>6] |= 1 << uint(clock&63)
				if nb := clock >> blkShift; nb != b {
					for j := b + 1; j <= nBlk; j += j & (-j) {
						blkFen[j]--
					}
					for j := nb + 1; j <= nBlk; j += j & (-j) {
						blkFen[j]++
					}
				}
				slotOf[addr] = clock
				addrAt[clock] = addr
				clock++
			}
		}
		missK[k]++
		siteK[site][k]++
		if onSD != nil {
			onSD(int(site), sd)
		}
	}
	s.clock, s.active = clock, active
	s.ops += ops
	s.res.Accesses += int64(len(addrs))
	s.res.Distinct += distinct
}

// compact renumbers active slots to 1..active, preserving order, and
// rebuilds the live-slot structure. Runs O(cap) but only once per
// ~addrSpace accesses, so the amortized cost per access is O(1).
func (s *StackSim) compact() {
	s.compactions++
	next := int64(1)
	for slot := int64(1); slot <= s.cap; slot++ {
		addr := s.addrAt[slot]
		s.addrAt[slot] = -1
		if addr >= 0 && s.slotOf[addr] == slot {
			s.slotOf[addr] = next
			// addrAt for the new position is rewritten in place;
			// next <= slot always holds so no overwrite hazard.
			s.addrAt[next] = addr
			next++
		}
	}
	s.clock = next
	// After renumbering, exactly slots 1..occupied are live: fill the
	// bitset prefix and derive the per-block counts arithmetically, then
	// build the block tree bottom-up in O(nBlk). ops still counts the
	// logical per-slot insertions so stack_ops totals do not depend on the
	// rebuild strategy.
	occupied := next - 1
	for i := range s.live {
		s.live[i] = 0
	}
	lastW := occupied >> 6
	for w := int64(0); w < lastW; w++ {
		s.live[w] = ^uint64(0)
	}
	s.live[lastW] = ^uint64(0) >> (63 - uint(occupied&63))
	s.live[0] &^= 1 // slot 0 is never assigned
	for b := int64(0); b < s.nBlk; b++ {
		lo := b << blkShift
		if lo == 0 {
			lo = 1
		}
		hi := (b+1)<<blkShift - 1
		if hi > occupied {
			hi = occupied
		}
		if hi >= lo {
			s.blkFen[b+1] = hi - lo + 1
		} else {
			s.blkFen[b+1] = 0
		}
	}
	for i := int64(1); i <= s.nBlk; i++ {
		if j := i + i&(-i); j <= s.nBlk {
			s.blkFen[j] += s.blkFen[i]
		}
	}
	s.ops += occupied
}

// Results returns the accumulated results. The simulator may continue to be
// used afterwards; the returned struct is a snapshot. Per-watch miss counts
// are materialized here from the missed-prefix-length counters the access
// paths maintain.
func (s *StackSim) Results() Results {
	out := s.res
	out.Watches = append([]int64(nil), s.res.Watches...)
	out.Misses = s.materialize(s.missK)
	out.PerSite = make([]SiteStats, len(s.res.PerSite))
	for i, ps := range s.res.PerSite {
		out.PerSite[i] = SiteStats{
			Accesses:   ps.Accesses,
			FirstTouch: ps.FirstTouch,
			Misses:     s.materialize(s.siteK[i]),
		}
	}
	return out
}

// materialize converts missed-prefix-length counts into per-watch miss
// counts in the caller's original watch order: the misses at the j-th
// sorted watch are the accesses whose missed prefix extends beyond j.
func (s *StackSim) materialize(k []int64) []int64 {
	out := make([]int64, len(s.watches))
	var suffix int64
	for j := len(s.sortedW) - 1; j >= 0; j-- {
		suffix += k[j+1]
		out[s.sortIdx[j]] = suffix
	}
	return out
}

// FlushMetrics publishes the simulator's operation totals accumulated since
// the previous flush into the registry's "cachesim.*" counters: accesses,
// distinct addresses, logical stack operations and timeline compactions. Counters (not gauges) so that several simulator instances in
// one run — e.g. a multi-capacity validation sweep — aggregate naturally.
// Nil registry is a no-op. The simulator itself never touches the registry
// on its access path, keeping the hot loop synchronization-free.
func (s *StackSim) FlushMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.Counter("cachesim.accesses").Add(s.res.Accesses - s.flushed.accesses)
	m.Counter("cachesim.distinct").Add(s.res.Distinct - s.flushed.distinct)
	m.Counter("cachesim.stack_ops").Add(s.ops - s.flushed.ops)
	m.Counter("cachesim.compactions").Add(s.compactions - s.flushed.compactions)
	s.flushed.accesses = s.res.Accesses
	s.flushed.distinct = s.res.Distinct
	s.flushed.ops = s.ops
	s.flushed.compactions = s.compactions
}

// MissesFor returns the exact miss count for the watched capacity c.
func (r Results) MissesFor(c int64) (int64, error) {
	for i, w := range r.Watches {
		if w == c {
			return r.Misses[i], nil
		}
	}
	return 0, fmt.Errorf("cachesim: capacity %d was not watched (watches: %v)", c, r.Watches)
}

// SDHistogramString renders the non-empty histogram buckets, for reports.
func (r Results) SDHistogramString() string {
	out := ""
	for b := 1; b < 64; b++ {
		if r.Hist[b] == 0 {
			continue
		}
		lo := int64(1) << uint(b-1)
		hi := int64(1)<<uint(b) - 1
		out += fmt.Sprintf("  sd %8d..%-8d : %d\n", lo, hi, r.Hist[b])
	}
	out += fmt.Sprintf("  sd        inf       : %d\n", r.Distinct)
	return out
}

// CapacitiesCrossed returns the watched capacities, in ascending order,
// whose miss counts differ from the largest watched capacity's — the
// capacities at which growing the cache still changes the outcome. An empty
// result means every watched capacity behaves like the largest (the miss
// curve is flat across the watch set), a convenience for sanity checks in
// reports.
func (r Results) CapacitiesCrossed() []int64 {
	if len(r.Watches) == 0 {
		return nil
	}
	order := make([]int, len(r.Watches))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return r.Watches[order[i]] < r.Watches[order[j]] })
	largest := r.Misses[order[len(order)-1]]
	var out []int64
	for _, idx := range order {
		if r.Misses[idx] != largest {
			out = append(out, r.Watches[idx])
		}
	}
	return out
}
