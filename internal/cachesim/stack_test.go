package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStackSimBasic(t *testing.T) {
	s := NewStackSim(16, 1, []int64{2})
	var sds []int64
	s.OnSD = func(_ int, sd int64) { sds = append(sds, sd) }
	// Trace: a b a b c a
	for _, addr := range []int64{0, 1, 0, 1, 2, 0} {
		s.Access(0, addr)
	}
	want := []int64{InfSD, InfSD, 2, 2, InfSD, 3}
	if len(sds) != len(want) {
		t.Fatalf("got %d SDs", len(sds))
	}
	for i := range want {
		if sds[i] != want[i] {
			t.Fatalf("sd[%d] = %d want %d (all %v)", i, sds[i], want[i], sds)
		}
	}
	r := s.Results()
	if r.Accesses != 6 || r.Distinct != 3 {
		t.Fatalf("accesses=%d distinct=%d", r.Accesses, r.Distinct)
	}
	// Capacity 2: misses = 3 compulsory + final access with sd 3.
	m, err := r.MissesFor(2)
	if err != nil || m != 4 {
		t.Fatalf("misses@2 = %d, %v", m, err)
	}
}

func TestStackSimRepeatedSameAddress(t *testing.T) {
	s := NewStackSim(4, 1, []int64{1})
	for i := 0; i < 5; i++ {
		s.Access(0, 2)
	}
	r := s.Results()
	m, _ := r.MissesFor(1)
	if m != 1 {
		t.Fatalf("repeated access misses = %d want 1 (compulsory only)", m)
	}
	if r.Hist[1] != 4 { // four accesses at sd == 1
		t.Fatalf("hist[1] = %d want 4", r.Hist[1])
	}
}

func TestStackSimMatchesNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		space := int64(r.Intn(40) + 2)
		n := r.Intn(3000) + 10
		sim := NewStackSim(space, 1, nil)
		naive := &NaiveStack{}
		ok := true
		var badAt int
		var got, want int64
		i := 0
		sim.OnSD = func(_ int, sd int64) {
			if !ok {
				return
			}
			got = sd
		}
		for ; i < n; i++ {
			addr := int64(r.Intn(int(space)))
			want = naive.Access(addr)
			sim.Access(0, addr)
			if got != want {
				ok = false
				badAt = i
				break
			}
		}
		if !ok {
			t.Fatalf("trial %d: access %d sd=%d naive=%d", trial, badAt, got, want)
		}
		if int(sim.Results().Distinct) != naive.Depth() {
			t.Fatalf("trial %d: distinct %d vs naive %d", trial, sim.Results().Distinct, naive.Depth())
		}
	}
}

// TestStackSimCompaction forces many timeline compactions by running a trace
// much longer than the address space and cross-checks against the naive
// stack.
func TestStackSimCompaction(t *testing.T) {
	const space = 8
	r := rand.New(rand.NewSource(11))
	sim := NewStackSim(space, 1, nil)
	naive := &NaiveStack{}
	var got int64
	sim.OnSD = func(_ int, sd int64) { got = sd }
	for i := 0; i < 100000; i++ {
		addr := int64(r.Intn(space))
		want := naive.Access(addr)
		sim.Access(0, addr)
		if got != want {
			t.Fatalf("access %d: sd=%d naive=%d", i, got, want)
		}
	}
}

func TestMissesMonotoneInCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	watches := []int64{1, 2, 4, 8, 16, 32}
	sim := NewStackSim(64, 1, watches)
	for i := 0; i < 20000; i++ {
		sim.Access(0, int64(r.Intn(64)))
	}
	res := sim.Results()
	for i := 1; i < len(watches); i++ {
		if res.Misses[i] > res.Misses[i-1] {
			t.Fatalf("misses not monotone: %v", res.Misses)
		}
	}
	// Histogram accounts for every non-compulsory access.
	var histSum int64
	for _, h := range res.Hist {
		histSum += h
	}
	if histSum+res.Distinct != res.Accesses {
		t.Fatalf("hist sum %d + distinct %d != accesses %d", histSum, res.Distinct, res.Accesses)
	}
}

func TestPerSiteStats(t *testing.T) {
	sim := NewStackSim(8, 2, []int64{1})
	sim.Access(0, 0)
	sim.Access(1, 1)
	sim.Access(0, 0) // sd 2 -> miss at cap 1
	sim.Access(1, 1) // sd 2 -> miss at cap 1
	sim.Access(1, 1) // sd 1 -> hit at cap 1
	res := sim.Results()
	if res.PerSite[0].Accesses != 2 || res.PerSite[1].Accesses != 3 {
		t.Fatalf("per-site accesses %+v", res.PerSite)
	}
	if res.PerSite[0].Misses[0] != 2 || res.PerSite[1].Misses[0] != 2 {
		t.Fatalf("per-site misses %+v", res.PerSite)
	}
	if res.PerSite[0].FirstTouch != 1 || res.PerSite[1].FirstTouch != 1 {
		t.Fatalf("per-site first touches %+v", res.PerSite)
	}
}

func TestQuickStackSimEqualsNaive(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sim := NewStackSim(256, 1, nil)
		naive := &NaiveStack{}
		var got int64
		sim.OnSD = func(_ int, sd int64) { got = sd }
		for _, b := range raw {
			want := naive.Access(int64(b))
			sim.Access(0, int64(b))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMissesForUnknownCapacity(t *testing.T) {
	sim := NewStackSim(4, 1, []int64{2})
	sim.Access(0, 1)
	res := sim.Results()
	if _, err := res.MissesFor(99); err == nil {
		t.Fatal("expected error for unwatched capacity")
	}
}

func TestMissesAtLeastBound(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sim := NewStackSim(128, 1, []int64{16})
	for i := 0; i < 50000; i++ {
		sim.Access(0, int64(r.Intn(128)))
	}
	res := sim.Results()
	exact, _ := res.MissesFor(16)
	lower := res.MissesAtLeast(16)
	if lower > exact {
		t.Fatalf("MissesAtLeast(16)=%d exceeds exact %d", lower, exact)
	}
}

func TestSDHistogramString(t *testing.T) {
	sim := NewStackSim(4, 1, nil)
	sim.Access(0, 0)
	sim.Access(0, 0)
	out := sim.Results().SDHistogramString()
	if out == "" {
		t.Fatal("empty histogram rendering")
	}
}
