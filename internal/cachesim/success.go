package cachesim

import "sort"

// SuccessFunction is Mattson's success function: the exact number of misses
// as a function of cache capacity, recoverable for every capacity at once
// from a single simulation pass. Enable collection with
// StackSim.CollectExact; the map holds the exact count of accesses at each
// stack-distance value.
type SuccessFunction struct {
	// Counts[sd] = number of accesses with that exact stack distance.
	Counts map[int64]int64
	// Compulsory is the number of first touches (infinite distance).
	Compulsory int64
	Accesses   int64
}

// CollectExact attaches an exact stack-distance counter to the simulator.
// Memory grows with the number of distinct stack-distance values (bounded
// by the number of distinct addresses). Call before the first Access.
func (s *StackSim) CollectExact() *SuccessFunction {
	sf := &SuccessFunction{Counts: map[int64]int64{}}
	prev := s.OnSD
	s.OnSD = func(site int, sd int64) {
		sf.Accesses++
		if sd == InfSD {
			sf.Compulsory++
		} else {
			sf.Counts[sd]++
		}
		if prev != nil {
			prev(site, sd)
		}
	}
	return sf
}

// MissesFor returns the exact miss count for any capacity: misses are the
// accesses whose stack distance exceeds the capacity, plus first touches.
func (sf *SuccessFunction) MissesFor(capacity int64) int64 {
	total := sf.Compulsory
	for sd, n := range sf.Counts {
		if sd > capacity {
			total += n
		}
	}
	return total
}

// Knees returns the capacities at which the miss count changes: the sorted
// distinct stack-distance values. A cache one element smaller than a knee
// misses every access counted at that knee. These are exactly the tile-size
// phase transitions §6 of the paper builds its search on.
func (sf *SuccessFunction) Knees() []int64 {
	out := make([]int64, 0, len(sf.Counts))
	for sd := range sf.Counts {
		out = append(out, sd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MissCurve evaluates the success function at the given capacities,
// returning one miss count per capacity.
func (sf *SuccessFunction) MissCurve(capacities []int64) []int64 {
	// Sort (sd, count) descending once, then sweep capacities ascending.
	type kv struct {
		sd, n int64
	}
	pairs := make([]kv, 0, len(sf.Counts))
	for sd, n := range sf.Counts {
		pairs = append(pairs, kv{sd, n})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].sd < pairs[j].sd })
	idx := make([]int, len(capacities))
	for i := range capacities {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return capacities[idx[a]] < capacities[idx[b]] })

	out := make([]int64, len(capacities))
	var above int64
	for _, p := range pairs {
		above += p.n
	}
	pi := 0
	for _, i := range idx {
		c := capacities[i]
		for pi < len(pairs) && pairs[pi].sd <= c {
			above -= pairs[pi].n
			pi++
		}
		out[i] = sf.Compulsory + above
	}
	return out
}
