package cachesim

import (
	"math/rand"
	"testing"
)

func TestSuccessFunctionMatchesWatches(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	watches := []int64{1, 3, 7, 15, 40, 100}
	sim := NewStackSim(128, 1, watches)
	sf := sim.CollectExact()
	for i := 0; i < 50000; i++ {
		sim.Access(0, int64(r.Intn(128)))
	}
	res := sim.Results()
	for i, c := range watches {
		if got := sf.MissesFor(c); got != res.Misses[i] {
			t.Errorf("capacity %d: success function %d vs watch %d", c, got, res.Misses[i])
		}
	}
	curve := sf.MissCurve(watches)
	for i := range watches {
		if curve[i] != res.Misses[i] {
			t.Errorf("curve[%d]=%d vs watch %d", i, curve[i], res.Misses[i])
		}
	}
	if sf.Accesses != res.Accesses || sf.Compulsory != res.Distinct {
		t.Errorf("totals %d/%d vs %d/%d", sf.Accesses, sf.Compulsory, res.Accesses, res.Distinct)
	}
}

func TestSuccessFunctionKnees(t *testing.T) {
	sim := NewStackSim(16, 1, nil)
	sf := sim.CollectExact()
	// Trace a b a b: sds inf inf 2 2.
	for _, a := range []int64{0, 1, 0, 1} {
		sim.Access(0, a)
	}
	knees := sf.Knees()
	if len(knees) != 1 || knees[0] != 2 {
		t.Fatalf("knees %v", knees)
	}
	if sf.MissesFor(1) != 4 || sf.MissesFor(2) != 2 {
		t.Fatalf("misses: %d, %d", sf.MissesFor(1), sf.MissesFor(2))
	}
}

func TestSuccessFunctionChainedHook(t *testing.T) {
	sim := NewStackSim(8, 1, nil)
	var seen int
	sim.OnSD = func(_ int, _ int64) { seen++ }
	sf := sim.CollectExact()
	for i := 0; i < 10; i++ {
		sim.Access(0, int64(i%4))
	}
	if seen != 10 {
		t.Errorf("previous hook called %d times, want 10", seen)
	}
	if sf.Accesses != 10 {
		t.Errorf("success function saw %d accesses", sf.Accesses)
	}
}

func TestMissCurveUnsortedCapacities(t *testing.T) {
	sim := NewStackSim(32, 1, nil)
	sf := sim.CollectExact()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		sim.Access(0, int64(r.Intn(32)))
	}
	caps := []int64{50, 2, 17, 9}
	curve := sf.MissCurve(caps)
	for i, c := range caps {
		if curve[i] != sf.MissesFor(c) {
			t.Errorf("curve[%d] (cap %d) = %d, want %d", i, c, curve[i], sf.MissesFor(c))
		}
	}
}
