package cachesim

// SiteStatsJSON is the serializable per-site view of a simulation.
type SiteStatsJSON struct {
	Site       string  `json:"site"`
	Accesses   int64   `json:"accesses"`
	FirstTouch int64   `json:"firstTouch"`
	Misses     []int64 `json:"misses"` // per watched capacity
}

// ResultsJSON is the serializable form of Results: the whole-trace totals
// plus per-watched-capacity miss counts. The serving layer returns it from
// /v1/simulate; every field is deterministic for a deterministic trace.
type ResultsJSON struct {
	Accesses int64   `json:"accesses"`
	Distinct int64   `json:"distinct"` // distinct addresses = compulsory misses
	Watches  []int64 `json:"watches"`
	Misses   []int64 `json:"misses"`
	// PerSite is emitted only when the caller supplies site labels; order
	// follows the site ids of the simulation.
	PerSite []SiteStatsJSON `json:"perSite,omitempty"`
}

// JSON converts the results into their serializable form. siteLabels, when
// non-nil, must be indexed by site id and enables the per-site breakdown.
func (r Results) JSON(siteLabels []string) ResultsJSON {
	out := ResultsJSON{
		Accesses: r.Accesses,
		Distinct: r.Distinct,
		Watches:  append([]int64(nil), r.Watches...),
		Misses:   append([]int64(nil), r.Misses...),
	}
	if siteLabels != nil {
		out.PerSite = make([]SiteStatsJSON, 0, len(r.PerSite))
		for i, s := range r.PerSite {
			label := ""
			if i < len(siteLabels) {
				label = siteLabels[i]
			}
			out.PerSite = append(out.PerSite, SiteStatsJSON{
				Site:       label,
				Accesses:   s.Accesses,
				FirstTouch: s.FirstTouch,
				Misses:     append([]int64(nil), s.Misses...),
			})
		}
	}
	return out
}
