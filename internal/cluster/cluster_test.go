package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// trafficRequest is one scripted request: path, optional raw query, body.
type trafficRequest struct {
	path, query, body string
}

// mixedTraffic covers every endpoint through the router: single lookups
// across enough distinct specs to land on all replicas, batches (explicit
// items, candidates, both, streamed), streaming searches, a pretty-printed
// response, and requests that fail planning.
func mixedTraffic() []trafficRequest {
	reqs := []trafficRequest{
		{"/v1/analyze", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`},
		{"/v1/analyze", "", `{"kernel":"twoindexchain","n":32}`},
		{"/v1/simulate", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`},
		{"/v1/simulate", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"analytic"}`},
		{"/v1/tilesearch", "", `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`},
		{"/v1/tilesearch", "stream=1", `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`},
		{"/v1/optimize", "", `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`},
		{"/v1/optimize", "stream=1", `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`},
		{"/v1/predict", "pretty=1", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`},
		{"/v1/predict", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4,"detail":true}`},
		// Planning failures must answer identically through the router.
		{"/v1/predict", "", `{"kernel":"matmul","n":16}`},
		{"/v1/analyze", "", `{"nest":"this is not a nest"}`},
		// Batches: explicit items (mixed good and bad), candidates, both.
		{"/v1/batch", "", `{"items":[` +
			`{"path":"/v1/analyze","request":{"kernel":"matmul","n":16,"tiles":[4,4,4]}},` +
			`{"path":"/v1/predict","request":{"kernel":"matmul","n":20,"tiles":[4,4,4],"cacheKB":4}},` +
			`{"path":"/v1/nope","request":{}},` +
			`{"path":"/v1/predict","request":{"kernel":"matmul","n":16}},` +
			`{"path":"/v1/simulate","request":{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1]}}]}`},
		{"/v1/batch", "", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8],[4,2,8]]}}`},
		{"/v1/batch", "stream=1", `{"items":[{"path":"/v1/analyze","request":{"kernel":"matmul","n":24,"tiles":[4,4,4]}}],"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4,"dims":["TI","TJ"],"sets":[[2,4],[4,8],[0,1]]}}`},
		// Batch-level failures.
		{"/v1/batch", "", `{}`},
	}
	// A spread of distinct predict keys so every replica owns some.
	for n := 8; n <= 28; n += 2 {
		reqs = append(reqs, trafficRequest{
			"/v1/predict", "",
			fmt.Sprintf(`{"kernel":"matmul","n":%d,"tiles":[4,4,4],"cacheKB":4}`, n),
		})
	}
	return reqs
}

func post(t *testing.T, client *http.Client, base string, req trafficRequest) (int, []byte) {
	t.Helper()
	url := base + req.path
	if req.query != "" {
		url += "?" + req.query
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(req.body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// expectedResponses computes the oracle: every scripted request answered by
// a single standalone replica, the bytes the cluster must reproduce.
func expectedResponses(t *testing.T, reqs []trafficRequest) map[string]struct {
	status int
	body   []byte
} {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	sv, err := service.Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sv.Drain(ctx)
	}()
	client := &http.Client{}
	want := map[string]struct {
		status int
		body   []byte
	}{}
	for _, rq := range reqs {
		status, body := post(t, client, "http://"+sv.Addr(), rq)
		want[rq.path+"?"+rq.query+"\x00"+rq.body] = struct {
			status int
			body   []byte
		}{status, body}
	}
	return want
}

// TestClusterByteIdentity is the tentpole acceptance test: a 4-replica
// in-process cluster answers mixed single/batch/stream traffic, under
// client concurrency, with exactly the status and bytes one standalone
// backend produces — routing is invisible in the payload. It also asserts
// sharding did its job: no response key was cached on two replicas.
func TestClusterByteIdentity(t *testing.T) {
	reqs := mixedTraffic()
	want := expectedResponses(t, reqs)

	lc, err := StartLocal(4, service.Config{Workers: 2},
		Config{ProbeInterval: 25 * time.Millisecond, Hedge: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		lc.Close(ctx)
	}()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			client := &http.Client{}
			for round := 0; round < 3; round++ {
				for i := range reqs {
					rq := reqs[(i+offset)%len(reqs)]
					status, body := post(t, client, lc.URL(), rq)
					w := want[rq.path+"?"+rq.query+"\x00"+rq.body]
					if status != w.status || !bytes.Equal(body, w.body) {
						errs <- fmt.Errorf("%s?%s %s:\n got %d %q\nwant %d %q",
							rq.path, rq.query, rq.body, status, body, w.status, w.body)
						return
					}
				}
			}
			errs <- nil
		}(c * 5)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// No key was computed-and-cached on two replicas: the per-replica
	// response cache populations sum to the number of distinct cached keys
	// a single backend would hold. (Streamed responses bypass the cache on
	// both sides, so they don't count.)
	total := 0
	client := &http.Client{}
	for _, sv := range lc.replicaServers {
		total += int(sv.Service.Health().FlightCacheEntries)
		_ = client // keep the import shape stable
	}
	distinct := map[string]bool{}
	for _, rq := range reqs {
		if rq.path == "/v1/batch" && rq.query == "stream=1" {
			continue // records come from item keys below
		}
		if rq.query == "stream=1" {
			continue
		}
		if rq.path == "/v1/batch" {
			exp, err := service.ExpandBatch([]byte(rq.body), 256)
			if err != nil {
				continue
			}
			for _, it := range exp.Items {
				if it.Err == nil {
					distinct[it.Key] = true
				}
			}
			continue
		}
		if key, err := service.CanonicalKeyForRequest(rq.path, []byte(rq.body)); err == nil {
			distinct[key] = true
		}
	}
	// Streamed batch items share keys with the aggregated forms, so add
	// them too (they do populate the cache).
	for _, rq := range reqs {
		if rq.path == "/v1/batch" && rq.query == "stream=1" {
			if exp, err := service.ExpandBatch([]byte(rq.body), 256); err == nil {
				for _, it := range exp.Items {
					if it.Err == nil {
						distinct[it.Key] = true
					}
				}
			}
		}
	}
	if total != len(distinct) {
		t.Errorf("replica caches hold %d entries in total, want %d distinct keys (a key was duplicated or lost)", total, len(distinct))
	}
}

// TestClusterDrainMidTraffic drains one of four replicas while clients
// hammer the cluster: every request must still answer 200 with the exact
// oracle bytes — the drained replica's key range falls to its ring
// successors without one failed or duplicated item.
func TestClusterDrainMidTraffic(t *testing.T) {
	var reqs []trafficRequest
	for n := 8; n <= 30; n++ {
		reqs = append(reqs, trafficRequest{
			"/v1/predict", "",
			fmt.Sprintf(`{"kernel":"matmul","n":%d,"tiles":[4,4,4],"cacheKB":4}`, n),
		})
	}
	reqs = append(reqs, trafficRequest{"/v1/batch", "",
		`{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8]]}}`})
	want := expectedResponses(t, reqs)

	lc, err := StartLocal(4, service.Config{Workers: 2},
		Config{ProbeInterval: 20 * time.Millisecond, Hedge: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		lc.Close(ctx)
	}()

	stop := make(chan struct{})
	var failures atomic.Int64
	var requests atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rq := reqs[(i+offset)%len(reqs)]
				status, body := post(t, client, lc.URL(), rq)
				requests.Add(1)
				w := want[rq.path+"?"+rq.query+"\x00"+rq.body]
				if status != w.status || !bytes.Equal(body, w.body) {
					failures.Add(1)
					t.Errorf("%s %s: got %d %q, want %d", rq.path, rq.body, status, body, w.status)
					return
				}
			}
		}(c * 7)
	}

	time.Sleep(150 * time.Millisecond) // let traffic warm up
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lc.DrainReplica(drainCtx, 0); err != nil {
		t.Errorf("drain replica 0: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // traffic continues against 3 replicas
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across the drain", n, requests.Load())
	}
	if n := requests.Load(); n < 50 {
		t.Fatalf("only %d requests ran — not a meaningful drain window", n)
	}
	t.Logf("%d requests, 0 failures across replica drain", requests.Load())
}

// TestRouterNoHealthyReplica pins the all-backends-down answer: once every
// replica is drained the router rejects with 503 — first by relaying the
// replicas' own draining 503, then, after the prober notices, with its own
// "no healthy replica".
func TestRouterNoHealthyReplica(t *testing.T) {
	lc, err := StartLocal(2, service.Config{Workers: 1},
		Config{ProbeInterval: 20 * time.Millisecond, Hedge: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		lc.Close(ctx)
	}()

	client := &http.Client{}
	rq := trafficRequest{"/v1/analyze", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`}
	if status, body := post(t, client, lc.URL(), rq); status != 200 {
		t.Fatalf("healthy cluster answered %d %s", status, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if err := lc.DrainReplica(ctx, i); err != nil {
			t.Fatalf("drain replica %d: %v", i, err)
		}
	}
	// Whatever the prober has noticed so far, the client answer is 503.
	if status, body := post(t, client, lc.URL(), rq); status != 503 {
		t.Fatalf("all-backends-down answered %d %s, want 503", status, body)
	}
	// After a probe round the router knows and says so itself; /v1/batch
	// takes the same path.
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, body := post(t, client, lc.URL(), rq)
		if status == 503 && bytes.Contains(body, []byte("no healthy replica")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never reported no healthy replica: %d %s", status, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	status, body := post(t, client, lc.URL(), trafficRequest{"/v1/batch", "",
		`{"items":[{"path":"/v1/analyze","request":{"kernel":"matmul","n":16,"tiles":[4,4,4]}}]}`})
	if status != 503 || !bytes.Contains(body, []byte("no healthy replica")) {
		t.Fatalf("batch on dead cluster answered %d %s, want 503 no healthy replica", status, body)
	}
}

// TestRouterDrainAndAdmission covers the router's own lifecycle half: the
// draining flag answers 503 on /v1/* and fails /healthz (bare and ?v=1),
// and a full in-flight bound answers 429 with Retry-After.
func TestRouterDrainAndAdmission(t *testing.T) {
	lc, err := StartLocal(2, service.Config{Workers: 1},
		Config{ProbeInterval: 25 * time.Millisecond, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		lc.Close(ctx)
	}()
	client := &http.Client{}
	rt := lc.Router()

	// Fill the single admission slot; the next request bounces with 429.
	rt.inflight <- struct{}{}
	status, body := post(t, client, lc.URL(), trafficRequest{"/v1/analyze", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`})
	if status != 429 || !bytes.Contains(body, []byte("capacity")) {
		t.Fatalf("over-capacity router answered %d %s, want 429", status, body)
	}
	<-rt.inflight

	resp, err := client.Get(lc.URL() + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz on live router: %v %v", resp, err)
	}
	resp.Body.Close()

	// The draining flag flips every answer to 503 while the listener is
	// still up — exactly the window Server.Drain creates.
	rt.draining.Store(true)
	status, body = post(t, client, lc.URL(), trafficRequest{"/v1/analyze", "", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`})
	if status != 503 || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("draining router answered %d %s, want 503 draining", status, body)
	}
	resp, err = client.Get(lc.URL() + "/healthz")
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("healthz on draining router: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = client.Get(lc.URL() + "/healthz?v=1")
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("healthz?v=1 on draining router: %v %v", resp, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(b, []byte(`"draining":true`)) || !bytes.Contains(b, []byte(`"replicas"`)) {
		t.Fatalf("enriched router health missing fields: %s", b)
	}
	rt.draining.Store(false)
}

// TestKeyMemo pins the router-side key memo: hits return the memoized key
// (including memoized planning errors), the LRU stays bounded, oversized
// bodies bypass it.
func TestKeyMemo(t *testing.T) {
	km := newKeyMemo(nil)
	body := []byte(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`)
	k1, err := km.lookup("/v1/predict", body)
	if err != nil || k1 == "" {
		t.Fatalf("lookup: %q %v", k1, err)
	}
	k2, err := km.lookup("/v1/predict", body)
	if err != nil || k2 != k1 {
		t.Fatalf("memoized lookup diverged: %q vs %q (%v)", k2, k1, err)
	}
	if km.len() != 1 {
		t.Fatalf("memo holds %d entries, want 1", km.len())
	}
	// Same body, different path → different memo entry and key.
	k3, err := km.lookup("/v1/analyze", []byte(`{"kernel":"matmul","n":16,"tiles":[4,4,4]}`))
	if err != nil || k3 == k1 {
		t.Fatalf("analyze key: %q %v", k3, err)
	}
	// Errors memoize too.
	if _, err := km.lookup("/v1/predict", []byte(`{"kernel":"matmul","n":16}`)); err == nil {
		t.Fatal("bad predict accepted")
	}
	if _, err := km.lookup("/v1/predict", []byte(`{"kernel":"matmul","n":16}`)); err == nil {
		t.Fatal("memoized bad predict accepted")
	}
	if km.len() != 3 {
		t.Fatalf("memo holds %d entries, want 3", km.len())
	}
	// Oversized bodies still resolve but are not memoized.
	big := append([]byte(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"env":{}} `), bytes.Repeat([]byte(" "), maxKeyMemoBody)...)
	if _, err := km.lookup("/v1/predict", big); err != nil {
		t.Fatalf("oversized body: %v", err)
	}
	if km.len() != 3 {
		t.Fatalf("oversized body was memoized: %d entries", km.len())
	}
	// The LRU bound holds.
	for i := 0; i < keyMemoCap+50; i++ {
		km.lookup("/v1/predict", []byte(fmt.Sprintf(`{"kernel":"matmul","n":%d,"tiles":[4,4,4],"cacheKB":4}`, i%64+8)))
	}
	if km.len() > keyMemoCap {
		t.Fatalf("memo grew past its cap: %d > %d", km.len(), keyMemoCap)
	}
}
