package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/service"
)

// Local is an in-process cluster: K analysisd replicas plus a router, all
// on loopback listeners. It is the harness behind the byte-identity tests
// and cmd/clusterbench — the same Service and Router code production runs,
// minus process boundaries.
type Local struct {
	replicaServers []*service.Server
	routerServer   *Server

	mu      sync.Mutex
	drained []bool
}

// StartLocal starts n replicas with identical service configs and a router
// over them. scfg.Obs, if set, is shared by every replica — pass nil (or a
// per-run registry) and read per-replica state over /healthz?v=1 instead
// when per-replica numbers matter. Stop with Close.
func StartLocal(n int, scfg service.Config, rcfg Config) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one replica, got %d", n)
	}
	lc := &Local{drained: make([]bool, n)}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sv, err := service.Serve("127.0.0.1:0", service.New(scfg))
		if err != nil {
			lc.Close(context.Background())
			return nil, err
		}
		lc.replicaServers = append(lc.replicaServers, sv)
		urls = append(urls, "http://"+sv.Addr())
	}
	rcfg.Replicas = urls
	rt, err := New(rcfg)
	if err != nil {
		lc.Close(context.Background())
		return nil, err
	}
	rsv, err := Serve("127.0.0.1:0", rt)
	if err != nil {
		rt.Close()
		lc.Close(context.Background())
		return nil, err
	}
	lc.routerServer = rsv
	return lc, nil
}

// URL is the router's base URL — the cluster's single client-facing
// address.
func (lc *Local) URL() string { return "http://" + lc.routerServer.Addr() }

// Router returns the router instance (metrics, health).
func (lc *Local) Router() *Router { return lc.routerServer.Router }

// Replicas returns the replica base URLs in start order.
func (lc *Local) Replicas() []string {
	urls := make([]string, len(lc.replicaServers))
	for i, sv := range lc.replicaServers {
		urls[i] = "http://" + sv.Addr()
	}
	return urls
}

// ReplicaServer returns replica i's server (its Service field reaches the
// underlying service).
func (lc *Local) ReplicaServer(i int) *service.Server { return lc.replicaServers[i] }

// DrainReplica gracefully drains replica i while the cluster keeps
// serving: the replica finishes its in-flight work, starts answering 503,
// the prober notices, and the replica's key range remaps to its ring
// successors. Idempotent per replica.
func (lc *Local) DrainReplica(ctx context.Context, i int) error {
	lc.mu.Lock()
	if lc.drained[i] {
		lc.mu.Unlock()
		return nil
	}
	lc.drained[i] = true
	lc.mu.Unlock()
	return lc.replicaServers[i].Drain(ctx)
}

// Close drains the router first (no new client work), then every
// still-running replica. Safe after partial startup and after
// DrainReplica.
func (lc *Local) Close(ctx context.Context) error {
	var first error
	if lc.routerServer != nil {
		if err := lc.routerServer.Drain(ctx); err != nil && first == nil {
			first = err
		}
		lc.routerServer = nil
	}
	for i, sv := range lc.replicaServers {
		lc.mu.Lock()
		skip := lc.drained[i]
		lc.drained[i] = true
		lc.mu.Unlock()
		if skip {
			continue
		}
		if err := sv.Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
