package cluster

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/service"
)

// keyMemoCap bounds the router's (path, body) → canonical-key memo; 1024
// entries mirrors the service's own plan memo, and a steady-state load
// usually cycles far fewer distinct bodies than that.
const keyMemoCap = 1024

// maxKeyMemoBody bounds memoized bodies: a pathological client sending
// megabyte bodies must not evict the whole memo with one request. Larger
// bodies still route — they just re-derive the key each time.
const maxKeyMemoBody = 4096

// keyMemo memoizes canonical shard keys per exact (path, body) byte pair —
// the router-side twin of the service's plan memo. Deriving a canonical key
// means decoding the body and canonicalizing the spec; a hot client
// replaying the same bytes should pay that once. Planning errors are
// memoized too: a malformed body is malformed forever, and re-rejecting it
// should not cost a re-parse.
type keyMemo struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List

	hits, misses *obs.Counter
}

type keyMemoEntry struct {
	memoKey string
	key     string
	err     error
}

func newKeyMemo(m *obs.Metrics) *keyMemo {
	return &keyMemo{
		entries: make(map[string]*list.Element, keyMemoCap),
		lru:     list.New(),
		hits:    m.Counter("router.keymemo.hits"),
		misses:  m.Counter("router.keymemo.misses"),
	}
}

// lookup returns the canonical key for (path, body), consulting the memo
// first. The memo key is path NUL body — the same framing the service's
// plan memo uses.
func (km *keyMemo) lookup(path string, body []byte) (string, error) {
	if len(body) > maxKeyMemoBody {
		km.misses.Inc()
		return service.CanonicalKeyForRequest(path, body)
	}
	memoKey := path + "\x00" + string(body)
	km.mu.Lock()
	if el, ok := km.entries[memoKey]; ok {
		km.lru.MoveToFront(el)
		e := el.Value.(*keyMemoEntry)
		km.mu.Unlock()
		km.hits.Inc()
		return e.key, e.err
	}
	km.mu.Unlock()
	km.misses.Inc()

	key, err := service.CanonicalKeyForRequest(path, body)

	km.mu.Lock()
	if _, ok := km.entries[memoKey]; !ok {
		km.entries[memoKey] = km.lru.PushFront(&keyMemoEntry{memoKey: memoKey, key: key, err: err})
		if km.lru.Len() > keyMemoCap {
			oldest := km.lru.Back()
			km.lru.Remove(oldest)
			delete(km.entries, oldest.Value.(*keyMemoEntry).memoKey)
		}
	}
	km.mu.Unlock()
	return key, err
}

// len reports the memo population (tests).
func (km *keyMemo) len() int {
	km.mu.Lock()
	defer km.mu.Unlock()
	return km.lru.Len()
}
