package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// ReplicaHealth is the prober's view of one backend replica.
type ReplicaHealth struct {
	// Healthy is true when the last probe answered 200: the replica is up
	// and not draining.
	Healthy bool `json:"healthy"`
	// Draining is true when the replica answered its drain 503 — it is
	// finishing in-flight work and its key range has fallen to its ring
	// successors.
	Draining bool `json:"draining"`
	// QueueDepth and FlightCacheEntries echo the replica's enriched
	// /healthz?v=1 body (zero when the replica is unreachable).
	QueueDepth         int64 `json:"queueDepth"`
	FlightCacheEntries int64 `json:"flightCacheEntries"`
	// Probes and Failures count this replica's probe outcomes.
	Probes   int64 `json:"probes"`
	Failures int64 `json:"failures"`
	// Error is the last probe failure ("" while healthy).
	Error string `json:"error,omitempty"`
}

// prober tracks backend replica health by polling /healthz?v=1. Between
// polls, the router feeds transport failures back through markDown so a
// dead replica stops receiving traffic immediately instead of after the
// next probe tick.
type prober struct {
	replicas []string
	client   *http.Client
	interval time.Duration

	mu    sync.RWMutex
	state map[string]*ReplicaHealth

	stop chan struct{}
	done chan struct{}

	probes, failures *obs.Counter
	healthyGauge     *obs.Gauge
}

// newProber creates a prober for the replica set; start launches the poll
// loop after one synchronous round, so the router never routes on an empty
// health picture.
func newProber(replicas []string, interval, timeout time.Duration, m *obs.Metrics) *prober {
	p := &prober{
		replicas:     replicas,
		client:       &http.Client{Timeout: timeout},
		interval:     interval,
		state:        make(map[string]*ReplicaHealth, len(replicas)),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		probes:       m.Counter("router.probes"),
		failures:     m.Counter("router.probe.failures"),
		healthyGauge: m.Gauge("router.replicas.healthy"),
	}
	for _, r := range replicas {
		p.state[r] = &ReplicaHealth{}
	}
	return p
}

func (p *prober) start() {
	p.probeAll()
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.probeAll()
			case <-p.stop:
				return
			}
		}
	}()
}

func (p *prober) close() {
	close(p.stop)
	<-p.done
}

// probeAll probes every replica once, sequentially — the set is small and
// the client timeout bounds each probe.
func (p *prober) probeAll() {
	for _, r := range p.replicas {
		p.probe(r)
	}
}

// probe polls one replica's enriched health endpoint and records the
// outcome. A 200 is healthy; the drain 503 marks the replica draining; any
// other answer (or a transport failure) is plain unhealthy.
func (p *prober) probe(replica string) {
	p.probes.Inc()
	var h service.HealthStatus
	healthy, errStr := false, ""
	resp, err := p.client.Get(replica + "/healthz?v=1")
	if err != nil {
		errStr = err.Error()
	} else {
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch {
		case rerr != nil:
			errStr = rerr.Error()
		case resp.StatusCode == http.StatusOK:
			healthy = true
			_ = json.Unmarshal(body, &h)
		default:
			_ = json.Unmarshal(body, &h)
			errStr = resp.Status
		}
	}
	if !healthy {
		p.failures.Inc()
	}
	p.mu.Lock()
	st := p.state[replica]
	st.Healthy = healthy
	st.Draining = h.Draining
	st.QueueDepth = h.QueueDepth
	st.FlightCacheEntries = h.FlightCacheEntries
	st.Probes++
	if !healthy {
		st.Failures++
	}
	st.Error = errStr
	p.updateGaugeLocked()
	p.mu.Unlock()
}

// markDown records a router-observed transport failure: the replica is
// unhealthy right now, whatever the last probe said. The next probe tick
// re-evaluates, so a transient failure costs at most one probe interval of
// exclusion.
func (p *prober) markDown(replica string, err error) {
	p.mu.Lock()
	if st, ok := p.state[replica]; ok {
		st.Healthy = false
		st.Error = err.Error()
		p.updateGaugeLocked()
	}
	p.mu.Unlock()
}

func (p *prober) updateGaugeLocked() {
	n := int64(0)
	for _, st := range p.state {
		if st.Healthy {
			n++
		}
	}
	p.healthyGauge.Set(n)
}

// healthy reports whether a replica is currently routable.
func (p *prober) healthy(replica string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.state[replica]
	return ok && st.Healthy
}

// snapshot copies the current health picture (the /healthz?v=1 body of the
// router itself).
func (p *prober) snapshot() map[string]ReplicaHealth {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]ReplicaHealth, len(p.state))
	for r, st := range p.state {
		out[r] = *st
	}
	return out
}
