// Package cluster is the horizontal scale-out tier above internal/service:
// a consistent-hash router that shards canonical request keys across a set
// of analysisd replica backends.
//
// The design leans entirely on the spec canonicalization the serving layer
// already performs: every request resolves to one canonical key
// (service.CanonicalKeyForRequest — the same code path the replicas key
// their response caches with), the ring maps each key to one owning
// replica, and therefore each replica's singleflight LRU and analysis
// cache stay hot for exactly its key range. The cluster's aggregate cache
// capacity — not per-machine parallelism — is what the router buys: a
// working set that thrashes one replica's LRU fits in the union of N.
//
// Correctness never depends on routing: every replica computes the same
// bytes for the same request (responses are pure functions of the
// canonical spec), so hedged retries, drain-time remapping to ring
// successors and spillover under overload are always lossless. Routing
// only decides which caches get warm.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the default number of virtual nodes per replica. 512
// points per replica keeps the max/min key-load ratio across replicas
// within ~1.3 (pinned by TestRingUniformity) while ring construction stays
// cheap enough to rebuild on membership changes.
const DefaultVNodes = 512

// Ring is an immutable consistent-hash ring over replica base URLs.
// Construct with NewRing; derive membership changes with Add/Remove (the
// ring is small — points are rebuilt, keys move minimally by construction).
type Ring struct {
	replicas []string
	vnodes   int
	points   []ringPoint // sorted by hash, ties broken by replica index
}

// ringPoint is one virtual node: a hash position owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int32
}

// hashKey positions a key (or virtual node label) on the ring: FNV-1a over
// the bytes, then a splitmix64 finalizer for avalanche — FNV alone
// correlates nearby inputs ("vnode 1" vs "vnode 2"), and the finalizer is
// what makes 512 vnodes spread evenly. Pure arithmetic on the bytes, so
// ring placement is deterministic across processes and runs (the router
// and any observer agree on ownership forever).
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given replica addresses with vnodes
// virtual nodes per replica (0 means DefaultVNodes). Replica order is
// irrelevant — addresses are sorted and deduplicated, so two routers
// configured with the same replica set in any order agree on every key's
// owner.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), replicas...)
	sort.Strings(sorted)
	uniq := sorted[:1]
	for _, r := range sorted[1:] {
		if r != uniq[len(uniq)-1] {
			uniq = append(uniq, r)
		}
	}
	r := &Ring{replicas: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, rep := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey(fmt.Sprintf("%s\x00%d", rep, v)),
				replica: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas returns the ring's members, sorted.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Add returns a new ring with one more replica. Only keys falling into the
// new replica's arcs change owner — the consistent-hashing minimal-movement
// property, pinned by TestRingMinimalMovement.
func (r *Ring) Add(replica string) (*Ring, error) {
	return NewRing(append(r.Replicas(), replica), r.vnodes)
}

// Remove returns a new ring without the given replica. Keys the removed
// replica owned remap to their ring successors; every other key keeps its
// owner.
func (r *Ring) Remove(replica string) (*Ring, error) {
	var rest []string
	for _, rep := range r.replicas {
		if rep != replica {
			rest = append(rest, rep)
		}
	}
	if len(rest) == len(r.replicas) {
		return nil, fmt.Errorf("cluster: replica %q is not in the ring", replica)
	}
	return NewRing(rest, r.vnodes)
}

// Owner returns the replica owning key: the replica of the first virtual
// node at or clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.replicas[r.points[r.search(hashKey(key))].replica]
}

// search finds the index of the first point at or after h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Successors returns up to n distinct replicas for key in ring order: the
// owner first, then each subsequent distinct replica clockwise. This is
// the hedging and drain-handoff order — when the owner is slow, down or
// draining, its key range falls to exactly these successors, the same
// replicas that would own the keys if the owner left the ring.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.search(hashKey(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
