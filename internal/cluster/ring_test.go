package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testReplicas(n int) []string {
	reps := make([]string, n)
	for i := range reps {
		reps[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return reps
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real shard keys: a canonical nest text plus packed
		// env bindings.
		keys[i] = fmt.Sprintf("loop i 0 N { A[i]; }\x00N=%d;T=%d", i, i%7)
	}
	return keys
}

// TestRingUniformity pins the load-spread guarantee 512 vnodes buys: across
// 2, 4 and 8 replicas the busiest replica sees at most ~1.35x the quietest
// one's keys. The assertion is deterministic — same hash, same keys, same
// counts on every run and platform.
func TestRingUniformity(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{2, 4, 8} {
		ring, err := NewRing(testReplicas(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d replicas own keys", n, len(counts))
		}
		min, max := len(keys), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d: min=%d max=%d ratio=%.3f", n, min, max, ratio)
		if ratio > 1.35 {
			t.Errorf("n=%d: max/min load ratio %.3f exceeds 1.35 (min=%d max=%d)", n, ratio, min, max)
		}
	}
}

// TestRingMinimalMovement pins consistent hashing's point: growing N→N+1
// remaps about 1/(N+1) of keys, all of them onto the new replica; shrinking
// remaps only the removed replica's keys, all onto survivors.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{2, 4, 8} {
		reps := testReplicas(n)
		ring, err := NewRing(reps, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		added := fmt.Sprintf("http://replica-%d:8080", n)
		grown, err := ring.Add(added)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			was, is := ring.Owner(k), grown.Owner(k)
			if was == is {
				continue
			}
			moved++
			if is != added {
				t.Fatalf("n=%d: key moved %s -> %s, not to the added replica", n, was, is)
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		t.Logf("n=%d add: moved=%d ideal=%.0f", n, moved, ideal)
		if float64(moved) > 1.5*ideal {
			t.Errorf("n=%d: add moved %d keys, ideal %.0f — more than 1.5x minimal", n, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: add moved no keys", n)
		}

		// Removing what we added must restore the original assignment
		// exactly — membership changes are invertible.
		back, err := grown.Remove(added)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if ring.Owner(k) != back.Owner(k) {
				t.Fatalf("n=%d: add+remove changed owner of %q", n, k)
			}
		}

		// Shrinking: only the removed replica's keys move.
		victim := reps[0]
		shrunk, err := ring.Remove(victim)
		if err != nil {
			t.Fatal(err)
		}
		moved = 0
		for _, k := range keys {
			was, is := ring.Owner(k), shrunk.Owner(k)
			if was != is {
				moved++
				if was != victim {
					t.Fatalf("n=%d: remove moved a key owned by %s", n, was)
				}
				if is == victim {
					t.Fatalf("n=%d: removed replica still owns a key", n)
				}
			} else if was == victim {
				t.Fatalf("n=%d: removed replica kept a key", n)
			}
		}
		if moved == 0 {
			t.Errorf("n=%d: remove moved no keys", n)
		}
	}
}

// TestRingDeterminism pins that ownership is a pure function of the
// replica set and the key — independent of configuration order and of the
// process computing it (two independently built rings agree on everything).
func TestRingDeterminism(t *testing.T) {
	keys := testKeys(2000)
	reps := testReplicas(5)
	shuffled := append([]string(nil), reps...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := NewRing(reps, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("replica order changed owner of %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
		sa, sb := a.Successors(k, 3), b.Successors(k, 3)
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("replica order changed successors of %q: %v vs %v", k, sa, sb)
		}
	}
	// The hash itself is pinned: a changed hash silently remaps every key in
	// a mixed-version cluster, so a change must be deliberate.
	if got := hashKey("cluster determinism probe"); got != 0xf08eb0f94e9d63c4 {
		t.Errorf("hashKey changed: got %#x", got)
	}
}

// TestRingSuccessors pins the hedge/handoff order contract: the owner
// first, then distinct replicas, never more than the membership.
func TestRingSuccessors(t *testing.T) {
	ring, err := NewRing(testReplicas(4), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		succ := ring.Successors(k, 10)
		if len(succ) != 4 {
			t.Fatalf("Successors returned %d replicas for a 4-replica ring", len(succ))
		}
		if succ[0] != ring.Owner(k) {
			t.Fatalf("Successors[0] %s is not the owner %s", succ[0], ring.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor %s", s)
			}
			seen[s] = true
		}
		if got := ring.Successors(k, 2); len(got) != 2 || got[0] != succ[0] || got[1] != succ[1] {
			t.Fatalf("Successors(k,2) = %v, want prefix of %v", got, succ)
		}
	}
}

// TestRingValidation covers the constructor's edges: empty set, duplicate
// replicas, unknown removal.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("NewRing accepted an empty replica set")
	}
	ring, err := NewRing([]string{"http://a", "http://a", "http://b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Replicas(); len(got) != 2 {
		t.Errorf("duplicates not collapsed: %v", got)
	}
	if _, err := ring.Remove("http://zzz"); err == nil {
		t.Error("Remove accepted an unknown replica")
	}
	if _, err := ring.Remove("http://a"); err != nil {
		t.Errorf("Remove failed: %v", err)
	}
}
