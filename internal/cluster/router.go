package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// routerMaxBody bounds proxied request bodies, matching the replicas' own
// limit — a body the backend would reject as oversized is cut off here.
const routerMaxBody = 1 << 20

// Config sizes the router. The zero value of every field except Replicas
// selects a sensible default.
type Config struct {
	// Replicas are the backend base URLs ("http://host:port"). Required.
	Replicas []string
	// VNodes is the virtual-node count per replica; 0 means DefaultVNodes.
	VNodes int
	// Attempts caps how many distinct replicas one request may try (owner
	// plus hedges/retries); 0 means all replicas.
	Attempts int
	// Hedge is how long to wait on a replica before also asking the key's
	// next ring successor; 0 means 100ms. The first completed answer wins.
	Hedge time.Duration
	// MaxInFlight bounds concurrently proxied requests; 0 means 256. At the
	// bound the router answers 429 immediately, mirroring the replicas'
	// admission taxonomy.
	MaxInFlight int
	// MaxBatchItems caps one /v1/batch request's expanded item count; 0
	// means 256. Must not exceed the replicas' own cap: the router re-sends
	// sub-batches, never splits beyond per-replica grouping.
	MaxBatchItems int
	// RequestTimeout bounds one proxied request end to end, hedges
	// included; 0 means 30s. Expiry answers 504.
	RequestTimeout time.Duration
	// ProbeInterval is the health-poll period; 0 means 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; 0 means 2s.
	ProbeTimeout time.Duration
	// Obs receives the router instruments; nil disables instrumentation.
	Obs *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Attempts <= 0 || c.Attempts > len(c.Replicas) {
		c.Attempts = len(c.Replicas)
	}
	if c.Hedge <= 0 {
		c.Hedge = 100 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// Router shards /v1/* requests across analysisd replicas by canonical
// request key. Construct with New, mount via Handler (or serve via Serve),
// stop via Server.Drain (or Close when unmounted).
type Router struct {
	cfg      Config
	ring     *Ring
	prober   *prober
	keys     *keyMemo
	client   *http.Client
	inflight chan struct{}
	draining atomic.Bool
	started  time.Time

	total, ok, errs, rejected  *obs.Counter
	hedges, retries, noReplica *obs.Counter
	inflightGauge              *obs.Gauge
	latency                    *obs.Timer
}

// New builds a router over the configured replica set and starts its
// health prober (one synchronous probe round happens before New returns,
// so the first request already routes on real health).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	m := cfg.Obs
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		keys:   newKeyMemo(m),
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},

		inflight:      make(chan struct{}, cfg.MaxInFlight),
		started:       time.Now(),
		total:         m.Counter("router.requests"),
		ok:            m.Counter("router.ok"),
		errs:          m.Counter("router.errors"),
		rejected:      m.Counter("router.rejected"),
		hedges:        m.Counter("router.hedges"),
		retries:       m.Counter("router.retries"),
		noReplica:     m.Counter("router.noreplica"),
		inflightGauge: m.Gauge("router.inflight"),
		latency:       m.Timer("router.latency"),
	}
	rt.prober = newProber(ring.Replicas(), cfg.ProbeInterval, cfg.ProbeTimeout, m)
	rt.prober.start()
	return rt, nil
}

// Close stops the prober. Handler must no longer be receiving requests
// (production goes through Server.Drain, which orders this correctly).
func (rt *Router) Close() { rt.prober.close() }

// RouterHealth is the JSON body of the router's /healthz?v=1: the router's
// own readiness plus its view of every replica.
type RouterHealth struct {
	Status         string                   `json:"status"` // "ok" or "draining"
	Draining       bool                     `json:"draining"`
	UptimeSec      float64                  `json:"uptimeSec"`
	InFlight       int                      `json:"inFlight"`
	KeyMemoEntries int                      `json:"keyMemoEntries"`
	Replicas       map[string]ReplicaHealth `json:"replicas"`
}

// Health reports the router's current health snapshot.
func (rt *Router) Health() RouterHealth {
	h := RouterHealth{
		Status:         "ok",
		Draining:       rt.draining.Load(),
		UptimeSec:      time.Since(rt.started).Seconds(),
		InFlight:       len(rt.inflight),
		KeyMemoEntries: rt.keys.len(),
		Replicas:       rt.prober.snapshot(),
	}
	if h.Draining {
		h.Status = "draining"
	}
	return h
}

// Handler returns the router's HTTP mux: /v1/batch (split and fanned out),
// every other /v1/* endpoint (proxied whole to the key's owner), and
// /healthz with the same bare/enriched contract the replicas expose.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.serveHealth)
	mux.HandleFunc("/v1/batch", rt.serveBatch)
	mux.HandleFunc("/v1/", rt.serveProxy)
	return mux
}

func (rt *Router) serveHealth(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("v") == "1" {
		h := rt.Health()
		code := http.StatusOK
		if h.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
		return
	}
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// admit runs the shared request prologue: counting, method check, drain
// check, bounded admission, body read. It returns the body and a release
// func, or ok=false after having written the response. finish must be
// called with the final status exactly once when ok.
func (rt *Router) admit(w http.ResponseWriter, r *http.Request) (body []byte, release func(), ok bool) {
	rt.total.Inc()
	if r.Method != http.MethodPost {
		rt.errs.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return nil, nil, false
	}
	if rt.draining.Load() {
		rt.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return nil, nil, false
	}
	select {
	case rt.inflight <- struct{}{}:
	default:
		rt.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "router at capacity"})
		return nil, nil, false
	}
	rt.inflightGauge.Set(int64(len(rt.inflight)))
	release = func() {
		<-rt.inflight
		rt.inflightGauge.Set(int64(len(rt.inflight)))
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, routerMaxBody))
	if err != nil {
		release()
		rt.errs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return nil, nil, false
	}
	return body, release, true
}

// finish settles the requests == ok + errors + rejected invariant for a
// proxied response: 200 is ok, the admission statuses (429/503) count as
// rejected wherever they were produced, everything else is an error.
func (rt *Router) finish(status int) {
	switch {
	case status == http.StatusOK:
		rt.ok.Inc()
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		rt.rejected.Inc()
	default:
		rt.errs.Inc()
	}
}

// serveProxy handles every single-spec endpoint: derive the canonical key
// (memoized), pick the owner and its hedge successors, relay the winning
// replica's response verbatim — status, content type and body bytes are the
// replica's own, so a routed response is byte-identical to a direct one.
func (rt *Router) serveProxy(w http.ResponseWriter, r *http.Request) {
	sw := rt.latency.Start()
	defer sw.Stop()
	body, release, ok := rt.admit(w, r)
	if !ok {
		return
	}
	defer release()

	key, err := rt.keys.lookup(r.URL.Path, body)
	if err != nil {
		rt.errs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.noReplica.Inc()
		rt.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no healthy replica"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	resp, done, err := rt.hedgedDo(ctx, r.URL.Path, r.URL.RawQuery, body, cands)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			rt.errs.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "timed out waiting for replica"})
		case errors.Is(err, errNoReplica):
			rt.noReplica.Inc()
			rt.rejected.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no healthy replica"})
		default:
			rt.errs.Inc()
			writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
		}
		return
	}
	defer done()
	rt.finish(resp.StatusCode)
	relayResponse(w, resp)
}

// relayResponse copies a replica response to the client, flushing after
// each read so NDJSON streams pass through incrementally.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
}

func copyFlush(w http.ResponseWriter, r io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// candidates returns the replicas to try for a key, in order: the owner
// first, then its ring successors, healthy ones only, capped at Attempts.
// An empty result means no replica is routable right now.
func (rt *Router) candidates(key string) []string {
	succ := rt.ring.Successors(key, len(rt.ring.replicas))
	out := succ[:0]
	for _, rep := range succ {
		if rt.prober.healthy(rep) {
			out = append(out, rep)
		}
	}
	if len(out) > rt.cfg.Attempts {
		out = out[:rt.cfg.Attempts]
	}
	return out
}

// errNoReplica is the every-candidate-transport-failed outcome: whatever
// the last probe believed, no replica is reachable right now, which is the
// same client-facing condition as an empty candidate list — a retryable
// 503, not a 502.
var errNoReplica = errors.New("no healthy replica")

// retryableStatus reports whether a replica's answer should move the
// request along the successor list: 503 is a draining (or restarting)
// replica whose key range has fallen to its successors, 429 is a full
// queue worth spilling past. Both are safe to retry anywhere because every
// replica computes identical bytes for the same canonical key.
func retryableStatus(code int) bool {
	return code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests
}

// attempt is one replica try's outcome.
type attempt struct {
	resp    *http.Response
	replica string
	err     error
	cancel  context.CancelFunc
}

// hedgedDo races the candidate replicas: the first is asked immediately;
// every Hedge interval without an answer (or immediately on a transport
// error or retryable status) the next candidate is asked too. The first
// non-retryable answer wins; losers are canceled. If every candidate is
// exhausted the freshest retryable answer is relayed (all draining → 503,
// all overloaded → 429), and only an all-transport-errors outcome surfaces
// as an error. The returned func releases the winning attempt (close body
// first).
func (rt *Router) hedgedDo(ctx context.Context, path, rawQuery string, body []byte, cands []string) (*http.Response, context.CancelFunc, error) {
	results := make(chan attempt, len(cands))
	launched, pending := 0, 0
	launch := func() {
		rep := cands[launched]
		launched++
		pending++
		actx, cancel := context.WithCancel(ctx)
		go func() {
			url := rep + path
			if rawQuery != "" {
				url += "?" + rawQuery
			}
			req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				cancel()
				results <- attempt{replica: rep, err: err}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := rt.client.Do(req)
			if err != nil {
				cancel()
				results <- attempt{replica: rep, err: err}
				return
			}
			results <- attempt{replica: rep, resp: resp, cancel: cancel}
		}()
	}
	launch()
	timer := time.NewTimer(rt.cfg.Hedge)
	defer timer.Stop()

	var fallback attempt // freshest retryable response, held in reserve
	var lastErr error
	settle := func(a attempt) (*http.Response, context.CancelFunc, error) {
		if pending > 0 {
			go drainAttempts(results, pending)
		}
		if fallback.resp != nil && fallback.resp != a.resp {
			fallback.resp.Body.Close()
			fallback.cancel()
		}
		if a.resp != nil {
			return a.resp, a.cancel, nil
		}
		return nil, nil, a.err
	}
	for {
		select {
		case <-ctx.Done():
			return settle(attempt{err: ctx.Err()})
		case <-timer.C:
			if launched < len(cands) {
				rt.hedges.Inc()
				launch()
				timer.Reset(rt.cfg.Hedge)
			}
		case a := <-results:
			pending--
			if a.err != nil {
				if ctx.Err() == nil && !errors.Is(a.err, context.Canceled) {
					rt.prober.markDown(a.replica, a.err)
				}
				lastErr = a.err
			} else if retryableStatus(a.resp.StatusCode) {
				if fallback.resp != nil {
					fallback.resp.Body.Close()
					fallback.cancel()
				}
				fallback = a
			} else {
				return settle(a)
			}
			if launched < len(cands) {
				rt.retries.Inc()
				launch()
				timer.Reset(rt.cfg.Hedge)
			} else if pending == 0 {
				if fallback.resp != nil {
					return settle(fallback)
				}
				if lastErr == nil {
					lastErr = fmt.Errorf("no replica answered")
				}
				return settle(attempt{err: fmt.Errorf("%w: %v", errNoReplica, lastErr)})
			}
		}
	}
}

// drainAttempts releases straggler attempts after a winner was chosen; the
// channel is buffered for every launch, so senders never block.
func drainAttempts(results chan attempt, pending int) {
	for i := 0; i < pending; i++ {
		a := <-results
		if a.resp != nil {
			a.resp.Body.Close()
		}
		if a.cancel != nil {
			a.cancel()
		}
	}
}

// errorBody mirrors the replicas' JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

// Server is a Router bound to a listener, with the same drain contract the
// replica server has: flip draining, stop accepting, finish in-flight.
type Server struct {
	Router *Router
	http   *http.Server
	addr   string
	done   chan error
}

// Serve binds addr (":0" picks a free port) and serves the router in a
// background goroutine. Stop with Drain.
func Serve(addr string, rt *Router) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sv := &Server{
		Router: rt,
		http:   &http.Server{Handler: rt.Handler()},
		addr:   ln.Addr().String(),
		done:   make(chan error, 1),
	}
	go func() {
		err := sv.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		sv.done <- err
	}()
	return sv, nil
}

// Addr returns the bound listen address.
func (sv *Server) Addr() string { return sv.addr }

// Drain gracefully stops the router: new requests are answered 503 and
// /healthz fails, the listener closes, in-flight proxied requests run to
// completion (each finishes against its replica), then the prober stops.
// The backends are not touched — a router drain is invisible to them.
func (sv *Server) Drain(ctx context.Context) error {
	sv.Router.draining.Store(true)
	err := sv.http.Shutdown(ctx)
	if err != nil {
		sv.http.Close()
	}
	sv.Router.Close()
	if serveErr := <-sv.done; serveErr != nil && err == nil {
		err = serveErr
	}
	if err != nil {
		return fmt.Errorf("cluster: drain: %w", err)
	}
	return nil
}
