package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/service"
)

// batchGroup is one replica's share of a split batch: the original combined
// indices it owns, the synthesized sub-batch body, and the candidate list
// (owner plus successors) to send it through.
type batchGroup struct {
	replica string
	indices []int
	body    []byte
	cands   []string
}

// serveBatch splits a /v1/batch request by item key: each expanded item
// (explicit items and candidate rows alike, via service.ExpandBatch — the
// same expansion the replicas run) goes to the replica owning its canonical
// key, the per-replica sub-batches fan out concurrently, and the item
// records come back spliced into one envelope in the original combined
// order — byte-identical to what a single backend would have served,
// because records, summary, and error rendering all reuse the service's own
// exported renderers.
func (rt *Router) serveBatch(w http.ResponseWriter, r *http.Request) {
	sw := rt.latency.Start()
	defer sw.Stop()
	body, release, ok := rt.admit(w, r)
	if !ok {
		return
	}
	defer release()

	exp, err := service.ExpandBatch(body, rt.cfg.MaxBatchItems)
	if err != nil {
		// Same batch-level taxonomy as the backend: an over-cap batch is
		// rejected whole with 429, anything else malformed is a 400.
		if errors.Is(err, service.ErrOverload) {
			rt.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
			return
		}
		rt.errs.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	groups, gerr := rt.groupItems(exp)
	if gerr != nil {
		rt.noReplica.Inc()
		rt.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no healthy replica"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	type groupResult struct {
		status int
		body   []byte
		ra     string // Retry-After of a relayed failure
		err    error
	}
	results := make([]groupResult, len(groups))
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			resp, done, err := rt.hedgedDo(ctx, "/v1/batch", "", groups[gi].body, groups[gi].cands)
			if err != nil {
				results[gi] = groupResult{err: err}
				return
			}
			defer done()
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				results[gi] = groupResult{err: rerr}
				return
			}
			results[gi] = groupResult{status: resp.StatusCode, body: b, ra: resp.Header.Get("Retry-After")}
		}(gi)
	}
	wg.Wait()

	// Splice sub-responses back into combined order. Any whole-group failure
	// fails the whole batch — the alternative (fabricating per-item error
	// records for one group) would make the envelope depend on routing, and
	// the envelope must be a pure function of the request.
	records := make([][]byte, len(exp.Items))
	oks := make([]bool, len(exp.Items))
	for gi := range groups {
		res, g := &results[gi], &groups[gi]
		if res.err != nil {
			switch {
			case errors.Is(res.err, context.DeadlineExceeded):
				rt.errs.Inc()
				writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "timed out waiting for replica"})
			case errors.Is(res.err, errNoReplica):
				rt.noReplica.Inc()
				rt.rejected.Inc()
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no healthy replica"})
			default:
				rt.errs.Inc()
				writeJSON(w, http.StatusBadGateway, errorBody{Error: res.err.Error()})
			}
			return
		}
		if res.status != http.StatusOK {
			// Relay the replica's own failure verbatim (e.g. every candidate
			// overloaded → its 429 body and Retry-After).
			rt.finish(res.status)
			if res.ra != "" {
				w.Header().Set("Retry-After", res.ra)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			w.Write(res.body)
			return
		}
		if err := spliceGroup(records, oks, g, res.body); err != nil {
			rt.errs.Inc()
			writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
			return
		}
	}

	rt.finish(http.StatusOK)
	if r.URL.Query().Get("stream") == "1" {
		rt.writeBatchStream(w, exp, records, oks)
		return
	}
	rt.writeBatchEnvelope(w, exp, records, oks)
}

// groupItems assigns every valid item to its owning replica (the first
// healthy successor of its key — during a replica's drain its keys land on
// the next successor, losslessly) and builds each group's sub-batch body.
// Items with planning errors are rendered locally and join no group. The
// error return means no replica is healthy at all.
func (rt *Router) groupItems(exp *service.BatchExpansion) ([]batchGroup, error) {
	byReplica := map[string]*batchGroup{}
	for i := range exp.Items {
		it := &exp.Items[i]
		if it.Err != nil {
			continue
		}
		cands := rt.candidates(it.Key)
		if len(cands) == 0 {
			return nil, fmt.Errorf("cluster: no healthy replica")
		}
		g, ok := byReplica[cands[0]]
		if !ok {
			g = &batchGroup{replica: cands[0], cands: cands}
			byReplica[g.replica] = g
		}
		g.indices = append(g.indices, i)
	}
	groups := make([]batchGroup, 0, len(byReplica))
	for _, g := range byReplica {
		groups = append(groups, *g)
	}
	// Deterministic group order so a multi-group failure relays a
	// deterministic replica's answer.
	sort.Slice(groups, func(a, b int) bool { return groups[a].replica < groups[b].replica })
	for gi := range groups {
		groups[gi].body = subBatchBody(exp, groups[gi].indices)
	}
	return groups, nil
}

// subBatchBody renders one group's items as an explicit-items /v1/batch
// body. Candidate rows travel as their synthesized single-predict bodies —
// ExpandBatch guarantees those plan to the row's exact key and bytes on the
// receiving replica.
func subBatchBody(exp *service.BatchExpansion, indices []int) []byte {
	var sb bytes.Buffer
	sb.WriteString(`{"items":[`)
	for j, idx := range indices {
		if j > 0 {
			sb.WriteByte(',')
		}
		it := &exp.Items[idx]
		sb.WriteString(`{"path":`)
		p, _ := json.Marshal(it.Path)
		sb.Write(p)
		sb.WriteString(`,"request":`)
		sb.Write(it.Body)
		sb.WriteByte('}')
	}
	sb.WriteString(`]}`)
	return sb.Bytes()
}

// spliceGroup distributes one sub-batch envelope's records back to their
// original combined indices, rewriting each record's leading item index.
// Everything after the index is relayed byte-for-byte.
func spliceGroup(records [][]byte, oks []bool, g *batchGroup, envelope []byte) error {
	var env struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(envelope, &env); err != nil {
		return fmt.Errorf("cluster: replica %s sent a malformed batch envelope: %w", g.replica, err)
	}
	if len(env.Items) != len(g.indices) {
		return fmt.Errorf("cluster: replica %s answered %d records for %d items", g.replica, len(env.Items), len(g.indices))
	}
	for j, raw := range env.Items {
		idx := g.indices[j]
		rec, err := reindexRecord(raw, idx)
		if err != nil {
			return fmt.Errorf("cluster: replica %s: %w", g.replica, err)
		}
		records[idx] = rec
		var flag struct {
			OK bool `json:"ok"`
		}
		if err := json.Unmarshal(raw, &flag); err != nil {
			return fmt.Errorf("cluster: replica %s sent a malformed item record: %w", g.replica, err)
		}
		oks[idx] = flag.OK
	}
	return nil
}

// recordPrefix is how every batch item record begins; reindexRecord relies
// on it (and the backend's appendItemRecord guarantees it).
const recordPrefix = `{"item":`

// reindexRecord rewrites a record's item index from the sub-batch's local
// numbering to the original combined index.
func reindexRecord(rec []byte, idx int) ([]byte, error) {
	if !bytes.HasPrefix(rec, []byte(recordPrefix)) {
		return nil, fmt.Errorf("item record %q lacks the item prefix", truncate(rec, 40))
	}
	j := len(recordPrefix)
	for j < len(rec) && rec[j] >= '0' && rec[j] <= '9' {
		j++
	}
	if j == len(recordPrefix) {
		return nil, fmt.Errorf("item record %q has no index", truncate(rec, 40))
	}
	out := make([]byte, 0, len(rec)+4)
	out = append(out, recordPrefix...)
	out = strconv.AppendInt(out, int64(idx), 10)
	out = append(out, rec[j:]...)
	return out, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// writeBatchEnvelope assembles the aggregated batch response: remote
// records verbatim (reindexed), local planning errors rendered with the
// service's own record renderer, the summary with the service's own
// summary renderer — the exact bytes one backend would have served.
func (rt *Router) writeBatchEnvelope(w http.ResponseWriter, exp *service.BatchExpansion, records [][]byte, oks []bool) {
	var out bytes.Buffer
	out.WriteString(`{"items":[`)
	okN, errN := 0, 0
	var rec []byte
	for i := range exp.Items {
		if i > 0 {
			out.WriteByte(',')
		}
		if it := &exp.Items[i]; it.Err != nil {
			rec = service.AppendBatchItemRecord(rec[:0], i, nil, it.Err)
			out.Write(rec)
			errN++
			continue
		}
		out.Write(records[i])
		if oks[i] {
			okN++
		} else {
			errN++
		}
	}
	out.WriteString(`],"summary":`)
	rec = service.AppendBatchSummary(rec[:0], len(exp.Items), okN, errN)
	out.Write(rec)
	out.WriteString("}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(out.Bytes())
}

// writeBatchStream emits the assembled batch as NDJSON with the same line
// shapes as a backend's ?stream=1: one record line per item in combined
// order, then the {"summary":...} trailer. The router buffers the split
// anyway (records arrive per replica, not in combined order), so the
// stream's value here is the framing contract, not incrementality.
func (rt *Router) writeBatchStream(w http.ResponseWriter, exp *service.BatchExpansion, records [][]byte, oks []bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	okN, errN := 0, 0
	var rec []byte
	for i := range exp.Items {
		if it := &exp.Items[i]; it.Err != nil {
			rec = service.AppendBatchItemRecord(rec[:0], i, nil, it.Err)
			errN++
		} else {
			rec = append(rec[:0], records[i]...)
			if oks[i] {
				okN++
			} else {
				errN++
			}
		}
		rec = append(rec, '\n')
		if _, err := w.Write(rec); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
	rec = append(rec[:0], `{"summary":`...)
	rec = service.AppendBatchSummary(rec, len(exp.Items), okN, errN)
	rec = append(rec, '}', '\n')
	if _, err := w.Write(rec); err != nil {
		return
	}
	if fl != nil {
		fl.Flush()
	}
}
