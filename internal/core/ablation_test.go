package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// TestAblationCarrierCorrection: without the carrier correction, the
// wrap-carried span cost of the untiled matmul drops (A loses the +1
// staircase, C loses the doubling), changing the SD expressions.
func TestAblationCarrierCorrection(t *testing.T) {
	nest := matmulNest(t)
	full, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := AnalyzeWithOptions(nest, Options{CarrierCorrection: false, ComplementRule: true})
	if err != nil {
		t.Fatal(err)
	}
	n := expr.Var("N")
	// Full model: C carried by j has SD 2N+3 (A doubled to 2, B staircase
	// N+1). Bare model: A contributes 1, B contributes N: SD = 2N+1... the
	// exact expressions:
	fullC := findComp(t, full, "S1#2", SelfCarried, "j")
	bareC := findComp(t, bare, "S1#2", SelfCarried, "j")
	wantFull := expr.Add(expr.Mul(expr.Const(2), n), expr.Const(3))
	wantBare := expr.Add(expr.Mul(expr.Const(2), n), expr.Const(1))
	if !fullC.SD.Base.Equal(wantFull) {
		t.Errorf("full C SD = %s want %s", fullC.SD, wantFull)
	}
	if !bareC.SD.Base.Equal(wantBare) {
		t.Errorf("bare C SD = %s want %s", bareC.SD, wantBare)
	}
	// The bare model must under-estimate (or equal) the full model's SDs.
	env := expr.Env{"N": 16}
	for i, c := range full.Components {
		if c.SD.Base.IsInf() {
			continue
		}
		fv, err := c.SD.Base.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := bare.Components[i].SD.Base.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		if bv > fv {
			t.Errorf("component %d: bare SD %d exceeds full SD %d", i, bv, fv)
		}
	}
}

// TestAblationComplementRule: without the complement rule, the imperfect
// nest's cross-statement components over-count the reused array (suffix +
// prefix summed instead of unified).
func TestAblationComplementRule(t *testing.T) {
	nest := imperfectNest(t)
	full, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := AnalyzeWithOptions(nest, Options{CarrierCorrection: true, ComplementRule: false})
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 16}
	cFull := findComp(t, full, "S2#0", CrossStmt, "")
	cBare := findComp(t, bare, "S2#0", CrossStmt, "")
	fv, _ := cFull.SD.Eval(env, 0)
	bv, _ := cBare.SD.Eval(env, 0)
	if bv < fv {
		t.Errorf("complement-off SD %d below full-model SD %d (should over-count or tie)", bv, fv)
	}
	// At the top of the free range the over-count is strict for spans with
	// a partial reused-array box on both sides.
	fvHi, _ := cFull.SD.Eval(env, 15)
	bvHi, _ := cBare.SD.Eval(env, 15)
	if bvHi < fvHi {
		t.Errorf("complement-off SD %d below full SD %d at range top", bvHi, fvHi)
	}
}

// TestAblationTailToHeadWrap: the wrap refinement tightens the SD of
// self-reuse whose source lies in an earlier branch (the imperfect nest's
// B-buffer pattern), and must never increase any component's SD.
func TestAblationTailToHeadWrap(t *testing.T) {
	nest := slicedNest(t)
	full, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	if !DefaultOptions().TailToHeadWrap {
		t.Fatal("TailToHeadWrap should be on by default")
	}
	bare, err := AnalyzeWithOptions(nest, Options{CarrierCorrection: true, ComplementRule: true})
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 16}
	// T@S1's self reuse carried by i: the previous access to the buffer
	// T[k] is in S3 (the last branch of the previous i iteration), so the
	// wrap span (suffix of S3's branch + prefix up to S1) is much shorter
	// than a full i-body iteration (which would include all of A and M).
	fullT := findComp(t, full, "S1#0", SelfCarried, "i")
	bareT := findComp(t, bare, "S1#0", SelfCarried, "i")
	fv, err := fullT.SD.Eval(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := bareT.SD.Eval(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fv >= bv {
		t.Errorf("wrap SD %d not tighter than body SD %d", fv, bv)
	}
	if fullT.Source.Stmt == nil || fullT.Source.Stmt.Label != "S3" {
		t.Errorf("wrap source = %v, want S3", fullT.Source)
	}
	// Never larger, on any component (evaluate variable SDs at both ends).
	for i := range full.Components {
		fc, bc := full.Components[i], bare.Components[i]
		if fc.SD.Base.IsInf() {
			continue
		}
		for _, pos := range []int64{0, 7} {
			fvv, err1 := fc.SD.Eval(env, pos)
			bvv, err2 := bc.SD.Eval(env, pos)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if fvv > bvv {
				t.Errorf("component %d at a=%d: wrap SD %d exceeds body SD %d", i, pos, fvv, bvv)
			}
		}
	}
}

// slicedNest builds the buffer-recycling nest of examples/custom-nest:
// for i { S1: T[k]=0; S2: T[k] += M[k,j]·A[j,i]; S3: OUT[k,i] += T[k] }.
func slicedNest(t *testing.T) *loopir.Nest {
	t.Helper()
	n := expr.Var("N")
	arrays := []*loopir.Array{
		{Name: "A", Dims: []*expr.Expr{n, n}},
		{Name: "M", Dims: []*expr.Expr{n, n}},
		{Name: "T", Dims: []*expr.Expr{n}},
		{Name: "OUT", Dims: []*expr.Expr{n, n}},
	}
	s1 := &loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
		{Array: "T", Mode: loopir.Write, Subs: []loopir.Subscript{loopir.Idx("k")}},
	}}
	s2 := &loopir.Stmt{Label: "S2", Refs: []loopir.Ref{
		{Array: "M", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("k2"), loopir.Idx("j")}},
		{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("i")}},
		{Array: "T", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("k2")}},
	}}
	s3 := &loopir.Stmt{Label: "S3", Refs: []loopir.Ref{
		{Array: "T", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("k3")}},
		{Array: "OUT", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("k3"), loopir.Idx("i")}},
	}}
	nest, err := loopir.NewNest("sliced", arrays, []loopir.Node{
		&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
			&loopir.Loop{Index: "k", Trip: n, Body: []loopir.Node{s1}},
			&loopir.Loop{Index: "j", Trip: n, Body: []loopir.Node{
				&loopir.Loop{Index: "k2", Trip: n, Body: []loopir.Node{s2}},
			}},
			&loopir.Loop{Index: "k3", Trip: n, Body: []loopir.Node{s3}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

// TestAblationAccuracy quantifies the refinements on the tiled matmul: the
// full model's predictions must be at least as close to exact simulation as
// the ablated model's, summed across cache capacities.
func TestAblationAccuracy(t *testing.T) {
	nest := matmulNest(t)
	full, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := AnalyzeWithOptions(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const N = 20
	env := expr.Env{"N": N}
	watches := []int64{3, 43, 461} // at the SD regime boundaries ±0
	res := simulateMisses(t, nest, env, watches)
	var fullErr, bareErr int64
	for i, c := range watches {
		fp, err := full.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := bare.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		fd, bd := fp-res.Misses[i], bp-res.Misses[i]
		if fd < 0 {
			fd = -fd
		}
		if bd < 0 {
			bd = -bd
		}
		fullErr += fd
		bareErr += bd
	}
	if fullErr > bareErr {
		t.Errorf("full model total error %d exceeds ablated model %d", fullErr, bareErr)
	}
}
