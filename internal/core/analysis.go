package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/obs"
)

// Analysis is the compile-time cache model of a nest: the full component
// inventory of every reference site. It is env-independent; evaluate it
// against concrete loop bounds, tile sizes and cache capacities with
// PredictMisses.
type Analysis struct {
	Nest       *loopir.Nest
	Components []*Component

	sc *spanCoster
	// ca is the compiled layer (compiled.go): every trip, extent and
	// component expression flattened into expr.Programs over one
	// analysis-wide SymTab. Built at the end of AnalyzeWithOptions.
	ca *compiledAnalysis
	// framePool recycles frames over ca.tab for request-scoped evaluation
	// (GetFrame/PutFrame). Long-lived workers should keep their own frame
	// from NewFrame instead; the pool exists for callers whose frame
	// lifetime is one short operation, like one served prediction.
	framePool sync.Pool
}

// Options toggles the model's span-cost refinements, for ablation studies.
// The zero value disables everything; DefaultOptions enables the full
// model, which Analyze uses.
type Options struct {
	// CarrierCorrection enables the boundary-crossing correction for
	// self-reuse spans: subscript dimensions naming the carrier loop take
	// values from two adjacent carrier iterations (staircase/doubling
	// rules). Without it, a span is costed as one carrier-body iteration
	// with the carrier frozen.
	CarrierCorrection bool
	// ComplementRule enables the exact-union rule for the reused array in
	// cross-statement spans: the source suffix and target prefix jointly
	// sweep the array in full. Without it, the two partial boxes are
	// summed, over-counting by up to the array's footprint.
	ComplementRule bool
	// TailToHeadWrap refines self-reuse carried by a loop L when the last
	// access to the array within L's body belongs to a different statement
	// than the target: the span then runs from that statement's suffix in
	// the previous iteration to the target's prefix in the current one
	// (the geometry the paper's Fig. 3 source selection implies), instead
	// of being costed as one complete body iteration.
	TailToHeadWrap bool
	// Obs, when non-nil, receives the analysis-stage instruments: the
	// "analyze.class", "analyze.partition", "analyze.span" and
	// "analyze.total" timers (the first three are disjoint and sum to at
	// most the total) and the "analyze.sites" / "analyze.components"
	// counters. Nil disables instrumentation at no cost.
	Obs *obs.Metrics
}

// DefaultOptions is the full model: all refinements enabled.
func DefaultOptions() Options {
	return Options{CarrierCorrection: true, ComplementRule: true, TailToHeadWrap: true}
}

// Analyze partitions every reference of the nest and computes symbolic
// stack distances with the full model. It rejects programs outside the
// supported class.
func Analyze(nest *loopir.Nest) (*Analysis, error) {
	return AnalyzeWithOptions(nest, DefaultOptions())
}

// AnalyzeWithOptions is Analyze with explicit model refinements, for
// ablation experiments.
//
// With opts.Obs set, the run is decomposed into three disjoint timed
// stages — "analyze.class" (class validation), "analyze.span" (span/stack-
// distance costing inside the span coster) and "analyze.partition" (the
// Fig. 3 partition walk minus the span costing it triggers) — plus the
// enclosing "analyze.total".
func AnalyzeWithOptions(nest *loopir.Nest, opts Options) (*Analysis, error) {
	m := opts.Obs
	total := m.Timer("analyze.total").Start()
	defer total.Stop()

	classSW := m.Timer("analyze.class").Start()
	err := checkClass(nest)
	classSW.Stop()
	if err != nil {
		return nil, err
	}

	a := &Analysis{Nest: nest, sc: newSpanCoster(nest, opts)}
	spanTimer := m.Timer("analyze.span")
	partStart := time.Time{}
	if m != nil {
		partStart = time.Now()
	}
	spanBefore := spanTimer.Stats().Nanos
	for _, site := range nest.Sites() {
		comps, err := a.partition(site)
		if err != nil {
			return nil, err
		}
		a.Components = append(a.Components, comps...)
		m.Counter("analyze.sites").Inc()
		m.Counter("analyze.components").Add(int64(len(comps)))
	}
	if m != nil {
		// The span coster accounts its own time; report the walk without it
		// so the stage timers stay disjoint.
		walk := time.Since(partStart) - time.Duration(spanTimer.Stats().Nanos-spanBefore)
		if walk < 0 {
			walk = 0
		}
		m.Timer("analyze.partition").Observe(walk)
	}
	compileSW := m.Timer("analyze.compile").Start()
	a.ca = compileAnalysis(a)
	compileSW.Stop()
	m.Gauge("expr.programs").Set(a.ca.programCount())
	return a, nil
}

// checkClass validates the paper's class constraints beyond what loopir
// already enforces: at most one reference per array per statement (so "the
// previous access to the same element" is unambiguous at statement
// granularity).
func checkClass(nest *loopir.Nest) error {
	for _, s := range nest.Stmts() {
		seen := map[string]bool{}
		for _, r := range s.Refs {
			if seen[r.Array] {
				return fmt.Errorf("core: statement %s references array %s more than once (outside the supported class)", s.Label, r.Array)
			}
			seen[r.Array] = true
		}
	}
	return nil
}

// ComponentsFor returns the components of one reference site.
func (a *Analysis) ComponentsFor(siteKey string) []*Component {
	var out []*Component
	for _, c := range a.Components {
		if c.Site.Key() == siteKey {
			out = append(out, c)
		}
	}
	return out
}

// ComponentMisses records the evaluation of one component at a concrete
// environment and cache capacity.
type ComponentMisses struct {
	Component *Component
	Count     int64
	SDMin     int64 // -1 means infinite
	SDMax     int64 // -1 means infinite
	Misses    int64
}

// MissReport is the result of PredictMisses.
type MissReport struct {
	CacheElems int64
	Accesses   int64
	Total      int64
	BySite     map[string]int64
	Detail     []ComponentMisses
}

// PredictMisses evaluates the analysis at concrete loop bounds and tile
// sizes and predicts the number of misses in a fully-associative LRU cache
// with the given capacity in elements. A component misses when its stack
// distance exceeds the capacity; components with position-dependent stack
// distance (§5.2) contribute the exact number of positions whose distance
// exceeds it.
func (a *Analysis) PredictMisses(env expr.Env, cacheElems int64) (*MissReport, error) {
	if err := a.Nest.ValidateEnv(env); err != nil {
		return nil, err
	}
	rep := &MissReport{CacheElems: cacheElems, BySite: map[string]int64{}}
	for _, c := range a.Components {
		cm, err := evalComponent(c, env, cacheElems)
		if err != nil {
			return nil, err
		}
		rep.Detail = append(rep.Detail, cm)
		rep.Total += cm.Misses
		rep.BySite[c.Site.Key()] += cm.Misses
		rep.Accesses += cm.Count
	}
	return rep, nil
}

// componentValues are the environment-dependent numbers of one component
// evaluation. They are independent of the cache capacity, so an evaluation
// cache can compute them once per binding of the component's symbols and
// classify them against any number of capacities (classifyComponent).
type componentValues struct {
	Count int64
	Inf   bool  // first touch: infinite stack distance
	Const bool  // constant stack distance (SD below)
	SD    int64 // constant stack distance value
	// Variable stack distance: SD(a) = Base + Slope*a for a in [0, Range).
	Base, Slope, Range int64
}

// evalComponentValues evaluates the component's expressions under env.
func evalComponentValues(c *Component, env expr.Env) (componentValues, error) {
	var v componentValues
	count, err := c.Count.Eval(env)
	if err != nil {
		return v, err
	}
	if count < 0 {
		count = 0 // e.g. (trip-1) when a loop has a single iteration
	}
	v.Count = count
	if c.SD.Base.IsInf() {
		v.Inf = true
		return v, nil
	}
	if count == 0 {
		// No instances: the component contributes nothing at any capacity.
		// Short-circuit before the SD/range expressions, which may be
		// degenerate (e.g. a zero free range) in the same boundary regimes
		// that zero the count.
		v.Const = true
		return v, nil
	}
	if c.SD.IsConst() {
		v.Const = true
		v.SD, err = c.SD.Base.Eval(env)
		return v, err
	}
	if v.Base, err = c.SD.Base.Eval(env); err != nil {
		return v, err
	}
	if v.Slope, err = c.SD.Slope.Eval(env); err != nil {
		return v, err
	}
	if v.Range, err = c.FreeRange.Eval(env); err != nil {
		return v, err
	}
	if v.Range <= 0 {
		return v, fmt.Errorf("core: non-positive free range for %s", c.Site.Key())
	}
	return v, nil
}

// classifyComponent compares evaluated component values against a cache
// capacity: pure arithmetic, no expression evaluation.
func classifyComponent(c *Component, v componentValues, cache int64) ComponentMisses {
	cm := ComponentMisses{Component: c, Count: v.Count}
	if v.Inf {
		cm.SDMin, cm.SDMax = -1, -1
		cm.Misses = v.Count
		return cm
	}
	if v.Const {
		cm.SDMin, cm.SDMax = v.SD, v.SD
		if v.SD > cache {
			cm.Misses = v.Count
		}
		return cm
	}
	base, slope, rng := v.Base, v.Slope, v.Range
	lo, hi := base, base+slope*(rng-1)
	if lo > hi {
		lo, hi = hi, lo
	}
	cm.SDMin, cm.SDMax = lo, hi
	var missPositions int64
	switch {
	case lo > cache:
		missPositions = rng
	case hi <= cache:
		missPositions = 0
	case slope > 0:
		// positions a with base + slope*a > cache  <=>  a > (cache-base)/slope
		firstHitUpTo := (cache - base) / slope // last a that still hits
		missPositions = rng - 1 - firstHitUpTo
		if missPositions < 0 {
			missPositions = 0
		}
	case slope < 0:
		// misses at the low-a end: base + slope*a > cache <=> a < (base-cache)/(-slope)
		m := (base - cache + (-slope) - 1) / (-slope)
		missPositions = m
		if missPositions > rng {
			missPositions = rng
		}
	}
	// count is divisible by rng (the free loop's trip is one of its
	// factors); each position contributes count/rng instances.
	cm.Misses = v.Count / rng * missPositions
	return cm
}

func evalComponent(c *Component, env expr.Env, cache int64) (ComponentMisses, error) {
	v, err := evalComponentValues(c, env)
	if err != nil {
		return ComponentMisses{Component: c, Count: v.Count}, err
	}
	return classifyComponent(c, v, cache), nil
}

// MissCurve evaluates the predicted miss count at each capacity, reusing
// one pass of component evaluation per capacity. The curve is the model's
// counterpart of the simulator's success function.
func (a *Analysis) MissCurve(env expr.Env, capacities []int64) ([]int64, error) {
	out := make([]int64, len(capacities))
	for i, c := range capacities {
		total, err := a.PredictTotal(env, c)
		if err != nil {
			return nil, err
		}
		out[i] = total
	}
	return out, nil
}

// PredictTotal is a convenience wrapper returning only the total.
func (a *Analysis) PredictTotal(env expr.Env, cacheElems int64) (int64, error) {
	rep, err := a.PredictMisses(env, cacheElems)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}

// StackDistances returns every distinct symbolic stack-distance expression
// of the analysis (excluding first touches), optionally filtering out those
// that mention any of the given symbols (the paper's "expressions which do
// not involve loop bounds" mode for unknown-bound tile search).
func (a *Analysis) StackDistances(exclude map[string]bool) []LinForm {
	var out []LinForm
	seen := map[string]bool{}
	for _, c := range a.Components {
		if c.SD.Base.IsInf() {
			continue
		}
		if exclude != nil {
			if c.SD.Base.HasAnyVar(exclude) {
				continue
			}
			if c.SD.Slope != nil && c.SD.Slope.HasAnyVar(exclude) {
				continue
			}
		}
		key := c.SD.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, c.SD)
		}
	}
	return out
}

// Table renders the component inventory in the style of the paper's
// Table 1: one row per component with its pattern, instance count and stack
// distance.
func (a *Analysis) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Component inventory for %s\n", a.Nest.Name)
	byRef := map[string][]*Component{}
	var order []string
	for _, c := range a.Components {
		k := c.Site.Key()
		if len(byRef[k]) == 0 {
			order = append(order, k)
		}
		byRef[k] = append(byRef[k], c)
	}
	sort.Strings(order)
	for _, k := range order {
		comps := byRef[k]
		fmt.Fprintf(&b, "%s %s\n", k, comps[0].Site.Ref())
		for _, c := range comps {
			sd := c.SD.String()
			if c.SD.Base.IsInf() {
				sd = "inf"
			}
			mark := ""
			if !c.Exact {
				mark = " ~"
			}
			fmt.Fprintf(&b, "  %-12s %-28s #refs = %-28s SD = %s%s\n", c.Kind, c.Pattern, c.Count, sd, mark)
			if len(c.Breakdown) > 0 {
				parts := make([]string, len(c.Breakdown))
				for i, bc := range c.Breakdown {
					parts[i] = bc.Array + ": " + bc.Size.String()
				}
				fmt.Fprintf(&b, "               per-array: %s\n", strings.Join(parts, ", "))
			}
		}
	}
	return b.String()
}

// SummaryBySite returns, for each site, the total symbolic instance count —
// a consistency check against the trip-count product.
func (a *Analysis) SummaryBySite() map[string]*expr.Expr {
	out := map[string]*expr.Expr{}
	for _, c := range a.Components {
		k := c.Site.Key()
		if out[k] == nil {
			out[k] = expr.Zero()
		}
		out[k] = expr.Add(out[k], c.Count)
	}
	return out
}
