package core

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/trace"
)

// matmulNest builds the untiled i-j-k matrix multiplication.
func matmulNest(t *testing.T) *loopir.Nest {
	t.Helper()
	n := expr.Var("N")
	nest, err := loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt: &loopir.Stmt{
			Label: "S1",
			Refs: []loopir.Ref{
				{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
				{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
				{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

// simulateMisses runs the exact trace through the stack simulator.
func simulateMisses(t *testing.T, nest *loopir.Nest, env expr.Env, watches []int64) cachesim.Results {
	t.Helper()
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	return sim.Results()
}

func findComp(t *testing.T, a *Analysis, siteKey string, kind ComponentKind, carrier string) *Component {
	t.Helper()
	for _, c := range a.ComponentsFor(siteKey) {
		if c.Kind != kind {
			continue
		}
		if kind == SelfCarried && c.Carrier.Index != carrier {
			continue
		}
		return c
	}
	t.Fatalf("no component %s/%v/%s; have:\n%s", siteKey, kind, carrier, a.Table())
	return nil
}

func TestMatmulComponentInventory(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	n := expr.Var("N")
	n2 := expr.Mul(n, n)

	// A[i,j]: self reuse carried by k with SD 3 (one element each of A, B,
	// C per innermost iteration), plus N^2 first touches.
	selfA := findComp(t, a, "S1#0", SelfCarried, "k")
	if !selfA.SD.Base.Equal(expr.Const(3)) || !selfA.SD.IsConst() {
		t.Errorf("A self SD = %s, want 3", selfA.SD)
	}
	if want := expr.Mul(n2, expr.Sub(n, expr.One())); !selfA.Count.Equal(want) {
		t.Errorf("A self count = %s, want %s", selfA.Count, want)
	}
	ftA := findComp(t, a, "S1#0", FirstTouch, "")
	if !ftA.Count.Equal(n2) {
		t.Errorf("A first-touch count = %s, want N^2", ftA.Count)
	}

	// B[j,k]: carried by outermost i: SD = N^2 + 3N + 1
	// (B: N^2, A: N+1 staircase, C: 2N).
	selfB := findComp(t, a, "S1#1", SelfCarried, "i")
	wantB := expr.Add(n2, expr.Mul(expr.Const(3), n), expr.One())
	if !selfB.SD.Base.Equal(wantB) || !selfB.SD.IsConst() {
		t.Errorf("B self SD = %s, want %s", selfB.SD, wantB)
	}

	// C[i,k]: carried by middle j: SD = 2N + 3 (A: 2, B: N+1, C: N).
	selfC := findComp(t, a, "S1#2", SelfCarried, "j")
	wantC := expr.Add(expr.Mul(expr.Const(2), n), expr.Const(3))
	if !selfC.SD.Base.Equal(wantC) || !selfC.SD.IsConst() {
		t.Errorf("C self SD = %s, want %s", selfC.SD, wantC)
	}

	// Instance counts per site must sum to the iteration total N^3.
	for site, sum := range a.SummaryBySite() {
		if !sum.Equal(expr.Mul(n, n, n)) {
			t.Errorf("site %s count sum = %s, want N^3", site, sum)
		}
	}

	// Per-array breakdowns (the paper's Table 1 itemization): for the
	// innermost-carried A reuse each array contributes one element; for
	// C's j-carried reuse A contributes 2, B the staircase N+1, C itself N.
	wantABrk := map[string]string{"A": "1", "B": "1", "C": "1"}
	for _, bc := range selfA.Breakdown {
		if got := bc.Size.String(); got != wantABrk[bc.Array] {
			t.Errorf("A self breakdown %s = %s, want %s", bc.Array, got, wantABrk[bc.Array])
		}
	}
	wantCBrk := map[string]string{"A": "2", "B": "N + 1", "C": "N"}
	for _, bc := range selfC.Breakdown {
		if got := bc.Size.String(); got != wantCBrk[bc.Array] {
			t.Errorf("C self breakdown %s = %s, want %s", bc.Array, got, wantCBrk[bc.Array])
		}
	}
	if len(selfC.Breakdown) != 3 {
		t.Errorf("C self breakdown has %d arrays", len(selfC.Breakdown))
	}
}

// TestMatmulPredictionVsSimulation is the heart of the reproduction: the
// analytical model's miss counts must track the exact simulator across cache
// capacities spanning all the stack-distance regimes.
func TestMatmulPredictionVsSimulation(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 20
	env := expr.Env{"N": N}
	// SD values: 3, 2N+3=43, N^2+3N+1=461. Capacities probe each regime.
	watches := []int64{2, 3, 10, 43, 100, 461, 2000}
	res := simulateMisses(t, nest, env, watches)
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		sim := res.Misses[i]
		diff := pred - sim
		if diff < 0 {
			diff = -diff
		}
		// Boundary instances deviate by O(N^2) out of O(N^3) accesses.
		tol := int64(3*N*N) + sim/20
		if diff > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d (diff %d > tol %d)",
				c, pred, sim, diff, tol)
		}
	}
	// Compulsory misses must be exact: 3 arrays of N^2 elements.
	predInf, _ := a.PredictTotal(env, 1<<40)
	if predInf != 3*N*N {
		t.Errorf("compulsory misses %d want %d", predInf, 3*N*N)
	}
	if res.Distinct != 3*N*N {
		t.Errorf("simulator distinct %d want %d", res.Distinct, 3*N*N)
	}
}

// imperfectNest mirrors the fused two-index structure in miniature:
// for i { S1: T[i]=0; for j { S2: T[i]+=A[i,j] }; for m { S3: B[m]+=T[i] } }
func imperfectNest(t *testing.T) *loopir.Nest {
	t.Helper()
	n := expr.Var("N")
	arrays := []*loopir.Array{
		{Name: "T", Dims: []*expr.Expr{n}},
		{Name: "A", Dims: []*expr.Expr{n, n}},
		{Name: "B", Dims: []*expr.Expr{n}},
	}
	s1 := &loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
		{Array: "T", Mode: loopir.Write, Subs: []loopir.Subscript{loopir.Idx("i")}},
	}}
	s2 := &loopir.Stmt{Label: "S2", Refs: []loopir.Ref{
		{Array: "T", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i")}},
		{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
	}}
	s3 := &loopir.Stmt{Label: "S3", Refs: []loopir.Ref{
		{Array: "B", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("m")}},
		{Array: "T", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i")}},
	}}
	nest, err := loopir.NewNest("twoidx-mini", arrays, []loopir.Node{
		&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
			s1,
			&loopir.Loop{Index: "j", Trip: n, Body: []loopir.Node{s2}},
			&loopir.Loop{Index: "m", Trip: n, Body: []loopir.Node{s3}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

func TestImperfectComponentInventory(t *testing.T) {
	nest := imperfectNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	n := expr.Var("N")

	// T@S2 (site S2#0): self carried by j with SD 2 (T and A), plus a
	// cross-statement component from S1 with SD 2 (T itself + A prefix is
	// empty at j=0; span covers T[i] and A[i,0]).
	selfT2 := findComp(t, a, "S2#0", SelfCarried, "j")
	if !selfT2.SD.Base.Equal(expr.Const(2)) {
		t.Errorf("T@S2 self SD = %s, want 2", selfT2.SD)
	}
	crossT2 := findComp(t, a, "S2#0", CrossStmt, "")
	if !crossT2.Count.Equal(n) {
		t.Errorf("T@S2 cross count = %s, want N", crossT2.Count)
	}
	if crossT2.Source.Stmt.Label != "S1" {
		t.Errorf("T@S2 cross source = %s, want S1", crossT2.Source.Key())
	}
	if !crossT2.SD.IsConst() || !crossT2.SD.Base.Equal(expr.Const(2)) {
		t.Errorf("T@S2 cross SD = %s, want 2", crossT2.SD)
	}

	// T@S3 (site S3#1): self carried by m (SD 2: B element + T), cross from
	// S2 with SD 3 (T, A[i,N-1], B[0]).
	crossT3 := findComp(t, a, "S3#1", CrossStmt, "")
	if crossT3.Source.Stmt.Label != "S2" {
		t.Errorf("T@S3 cross source = %s, want S2", crossT3.Source.Key())
	}
	if !crossT3.SD.IsConst() || !crossT3.SD.Base.Equal(expr.Const(3)) {
		t.Errorf("T@S3 cross SD = %s, want 3", crossT3.SD)
	}

	// B@S3 (site S3#0): self carried by i with SD 2N+3 (T: 2, A: N+1
	// staircase approx of N, B: N).
	selfB := findComp(t, a, "S3#0", SelfCarried, "i")
	wantB := expr.Add(expr.Mul(expr.Const(2), n), expr.Const(3))
	if !selfB.SD.Base.Equal(wantB) {
		t.Errorf("B@S3 self SD = %s, want %s", selfB.SD, wantB)
	}

	// A@S2: all instances compulsory.
	ftA := findComp(t, a, "S2#1", FirstTouch, "")
	if !ftA.Count.Equal(expr.Mul(n, n)) {
		t.Errorf("A first-touch count = %s, want N^2", ftA.Count)
	}
}

func TestImperfectPredictionVsSimulation(t *testing.T) {
	nest := imperfectNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 30
	env := expr.Env{"N": N}
	watches := []int64{1, 2, 3, 5, 2*N + 3, 100, 10000}
	res := simulateMisses(t, nest, env, watches)
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		sim := res.Misses[i]
		diff := pred - sim
		if diff < 0 {
			diff = -diff
		}
		tol := int64(4*N) + sim/20
		if diff > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d (diff %d > tol %d)",
				c, pred, sim, diff, tol)
		}
	}
}

func TestTiledMatmulPredictionVsSimulation(t *testing.T) {
	n := expr.Var("N")
	spec := loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt: &loopir.Stmt{
			Label: "S1",
			Refs: []loopir.Ref{
				{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
				{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
				{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
			},
		},
	}
	tiles := []loopir.TileSpec{
		loopir.DefaultTileSpec("i", n),
		loopir.DefaultTileSpec("j", n),
		loopir.DefaultTileSpec("k", n),
	}
	nest, err := loopir.TilePerfect(spec, tiles)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 24
	env := expr.Env{"N": N, "TI": 4, "TJ": 6, "TK": 8}
	watches := []int64{3, 24, 60, 150, 400, 1200, 5000}
	res := simulateMisses(t, nest, env, watches)
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		sim := res.Misses[i]
		diff := pred - sim
		if diff < 0 {
			diff = -diff
		}
		tol := int64(4*N*N) + sim/10
		if diff > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d (diff %d > tol %d)\n%s",
				c, pred, sim, diff, tol, a.Table())
		}
	}
}

func TestAnalyzeRejectsDuplicateArrayRefs(t *testing.T) {
	n := expr.Var("N")
	nest, err := loopir.NewNest("dup",
		[]*loopir.Array{{Name: "A", Dims: []*expr.Expr{n, n}}},
		[]loopir.Node{
			&loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{
				&loopir.Loop{Index: "j", Trip: n, Body: []loopir.Node{
					&loopir.Stmt{Refs: []loopir.Ref{
						{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
						{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("i")}},
					}},
				}},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(nest); err == nil {
		t.Fatal("expected class violation error")
	}
}

func TestStackDistancesFilter(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	all := a.StackDistances(nil)
	if len(all) == 0 {
		t.Fatal("no stack distances")
	}
	// Excluding N must drop the SDs that mention it (all but the constant 3).
	filtered := a.StackDistances(map[string]bool{"N": true})
	if len(filtered) >= len(all) {
		t.Fatalf("filter did not drop anything: %d vs %d", len(filtered), len(all))
	}
	for _, f := range filtered {
		if f.Base.HasAnyVar(map[string]bool{"N": true}) {
			t.Errorf("filtered SD %s still mentions N", f)
		}
	}
}

func TestTableRendering(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Table()
	for _, want := range []string{"S1#0", "first-touch", "self", "SD ="} {
		if !containsStr(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && indexStr(s, sub) >= 0
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
