package core

import (
	"fmt"

	"repro/internal/expr"
)

// The compiled layer of an Analysis: every environment-dependent expression
// the miss estimator evaluates — loop trips, array extents, and each
// component's Count/SD/FreeRange — flattened once into expr.Programs over a
// single analysis-wide SymTab. PredictMissesFrame then runs the whole
// prediction through a Frame without allocating an Env map or walking a
// tree, which is what makes per-candidate evaluation in the tile search
// cheap enough for the ROADMAP's "millions of evaluations" target.
//
// Slot assignment is deterministic: nest symbols first (sorted, as
// SymbolNames returns them), then any remaining symbols in the order the
// trip, extent and component programs are compiled. Re-analyzing the same
// nest therefore reproduces the same name→slot mapping, which keeps the
// EvalCache's packed binary keys stable (symtab_test.go pins the property).
type compiledAnalysis struct {
	tab      *expr.SymTab
	symbols  []string // nest.SymbolNames(), sorted
	symSlots []int    // slot of symbols[i]
	trips    []tripProg
	dims     []dimProg
	comps    []compiledComponent
	// conf is the associativity-aware stride-lattice layer (conflict.go).
	// Its programs are excluded from programCount so the "expr.programs"
	// gauge keeps measuring the fully-associative prediction pipeline.
	conf *conflictLayer
}

type tripProg struct {
	index string
	src   *expr.Expr
	prog  *expr.Program
}

type dimProg struct {
	array string
	di    int
	src   *expr.Expr
	prog  *expr.Program
}

type compiledComponent struct {
	count   *expr.Program
	inf     bool // first touch: SD.Base is the Inf sentinel
	constSD bool
	base    *expr.Program // nil when inf
	slope   *expr.Program // nil when inf or constSD
	rng     *expr.Program // nil when inf or constSD
	site    string        // Site.Key(), for the non-positive-range error
}

// compileAnalysis builds the compiled layer. Called once from
// AnalyzeWithOptions; the analysis must not be mutated afterwards.
func compileAnalysis(a *Analysis) *compiledAnalysis {
	ca := &compiledAnalysis{tab: expr.NewSymTab()}
	ca.symbols = a.Nest.SymbolNames()
	ca.symSlots = make([]int, len(ca.symbols))
	for i, name := range ca.symbols {
		ca.symSlots[i] = ca.tab.Slot(name)
	}
	for _, l := range a.Nest.Loops() {
		ca.trips = append(ca.trips, tripProg{
			index: l.Index, src: l.Trip, prog: expr.Compile(l.Trip, ca.tab),
		})
	}
	for _, arr := range a.Nest.Arrays {
		for di, d := range arr.Dims {
			ca.dims = append(ca.dims, dimProg{
				array: arr.Name, di: di, src: d, prog: expr.Compile(d, ca.tab),
			})
		}
	}
	ca.comps = make([]compiledComponent, len(a.Components))
	for i, c := range a.Components {
		cc := compiledComponent{
			count: expr.Compile(c.Count, ca.tab),
			site:  c.Site.Key(),
		}
		switch {
		case c.SD.Base.IsInf():
			cc.inf = true
		case c.SD.IsConst():
			cc.constSD = true
			cc.base = expr.Compile(c.SD.Base, ca.tab)
		default:
			cc.base = expr.Compile(c.SD.Base, ca.tab)
			cc.slope = expr.Compile(c.SD.Slope, ca.tab)
			cc.rng = expr.Compile(c.FreeRange, ca.tab)
		}
		ca.comps[i] = cc
	}
	ca.conf = buildConflictLayer(a, ca)
	return ca
}

// programCount reports how many programs the compiled layer holds (the
// "expr.programs" gauge).
func (ca *compiledAnalysis) programCount() int64 {
	n := int64(len(ca.trips) + len(ca.dims))
	for _, cc := range ca.comps {
		n++ // count
		if cc.base != nil {
			n++
		}
		if cc.slope != nil {
			n++
		}
		if cc.rng != nil {
			n++
		}
	}
	return n
}

// SymTab returns the analysis-wide symbol table every compiled program and
// Frame of this analysis indexes.
func (a *Analysis) SymTab() *expr.SymTab { return a.ca.tab }

// NewFrame returns an empty frame over the analysis symbol table. Frames are
// single-goroutine; give each worker its own and reuse it across candidates.
func (a *Analysis) NewFrame() *expr.Frame { return a.ca.tab.NewFrame() }

// GetFrame returns an empty frame over the analysis symbol table, recycled
// through a pool. The caller owns the frame exclusively until PutFrame; the
// serving layer evaluates each request on a pooled frame so the per-request
// steady state allocates no frame storage. Frames remain single-goroutine
// scratch between Get and Put.
func (a *Analysis) GetFrame() *expr.Frame {
	if f, ok := a.framePool.Get().(*expr.Frame); ok {
		return f
	}
	return a.NewFrame()
}

// PutFrame resets the frame and returns it to the pool. The frame must have
// come from GetFrame (or NewFrame over the same analysis) and must not be
// used after the call.
func (a *Analysis) PutFrame(f *expr.Frame) {
	if f == nil {
		return
	}
	f.Reset()
	a.framePool.Put(f)
}

// validateFrame is loopir.Nest.ValidateEnv over a frame: same checks, same
// error messages, same order, but evaluated through the compiled trip and
// extent programs.
func (ca *compiledAnalysis) validateFrame(f *expr.Frame) error {
	for i, name := range ca.symbols {
		v, ok := f.Get(ca.symSlots[i])
		if !ok {
			return fmt.Errorf("loopir: env missing symbol %s", name)
		}
		if v <= 0 {
			return fmt.Errorf("loopir: symbol %s must be positive, got %d", name, v)
		}
	}
	for _, t := range ca.trips {
		v, err := t.prog.Eval(f)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("loopir: loop %s trip %s evaluates to %d", t.index, t.src, v)
		}
	}
	for _, d := range ca.dims {
		v, err := d.prog.Eval(f)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("loopir: array %s dim %d extent %s evaluates to %d", d.array, d.di, d.src, v)
		}
	}
	return nil
}

// evalComponentValuesFrame is evalComponentValues through the compiled
// programs: identical values, identical errors, no Env map.
func (cc *compiledComponent) evalComponentValuesFrame(f *expr.Frame) (componentValues, error) {
	var v componentValues
	count, err := cc.count.Eval(f)
	if err != nil {
		return v, err
	}
	if count < 0 {
		count = 0 // e.g. (trip-1) when a loop has a single iteration
	}
	v.Count = count
	if cc.inf {
		v.Inf = true
		return v, nil
	}
	if count == 0 {
		// Mirror evalComponentValues: a zero-instance component is constant
		// zero regardless of its (possibly degenerate) SD expressions.
		v.Const = true
		return v, nil
	}
	if cc.constSD {
		v.Const = true
		v.SD, err = cc.base.Eval(f)
		return v, err
	}
	if v.Base, err = cc.base.Eval(f); err != nil {
		return v, err
	}
	if v.Slope, err = cc.slope.Eval(f); err != nil {
		return v, err
	}
	if v.Range, err = cc.rng.Eval(f); err != nil {
		return v, err
	}
	if v.Range <= 0 {
		return v, fmt.Errorf("core: non-positive free range for %s", cc.site)
	}
	return v, nil
}

// PredictMissesFrame is PredictMisses evaluated through the compiled layer:
// byte-identical reports, no Env map, no tree walks. The frame must stem
// from a.SymTab() and carry the same bindings an Env would.
func (a *Analysis) PredictMissesFrame(f *expr.Frame, cacheElems int64) (*MissReport, error) {
	if err := a.ca.validateFrame(f); err != nil {
		return nil, err
	}
	rep := &MissReport{CacheElems: cacheElems, BySite: map[string]int64{}}
	for i, c := range a.Components {
		v, err := a.ca.comps[i].evalComponentValuesFrame(f)
		if err != nil {
			return nil, err
		}
		cm := classifyComponent(c, v, cacheElems)
		rep.Detail = append(rep.Detail, cm)
		rep.Total += cm.Misses
		rep.BySite[c.Site.Key()] += cm.Misses
		rep.Accesses += cm.Count
	}
	return rep, nil
}

// PredictTotalFrame is PredictMissesFrame returning only the total.
func (a *Analysis) PredictTotalFrame(f *expr.Frame, cacheElems int64) (int64, error) {
	rep, err := a.PredictMissesFrame(f, cacheElems)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}
