package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
)

// The frame path must be a byte-identical re-expression of the env path:
// same reports from Analysis.PredictMissesFrame and EvalCache's frame
// lookups as from the tree-walking originals, at every environment and
// capacity, including the error cases.
func TestPredictMissesFrameMatchesEnv(t *testing.T) {
	a := cachedMatmul(t)
	f := a.NewFrame()
	for _, n := range []int64{32, 64, 100} {
		for _, tile := range []int64{4, 8, 16} {
			env := expr.Env{"N": n, "TI": tile, "TJ": tile, "TK": tile}
			f.Reset()
			f.Bind(env)
			for _, cache := range []int64{64, 512, 4096} {
				want, err := a.PredictMisses(env, cache)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.PredictMissesFrame(f, cache)
				if err != nil {
					t.Fatal(err)
				}
				diffReports(t, got, want)
			}
		}
	}
}

func TestEvalCacheFrameMatchesEnv(t *testing.T) {
	a := cachedMatmul(t)
	ecEnv := NewEvalCache(a)
	ecFrame := NewEvalCache(a)
	f := a.NewFrame()
	for _, tile := range []int64{4, 8, 12} {
		env := expr.Env{"N": 64, "TI": tile, "TJ": tile, "TK": tile}
		f.Reset()
		f.Bind(env)
		for _, cache := range []int64{128, 1024} {
			want, err := ecEnv.PredictMisses(env, cache)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ecFrame.PredictMissesFrame(f, cache)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, got, want)
		}
	}
	// Both paths must memoize identically: same lookup/computed counts for
	// the same query pattern, whichever representation carried the bindings.
	if ecEnv.Stats() != ecFrame.Stats() {
		t.Fatalf("cache stats diverge: env %+v vs frame %+v", ecEnv.Stats(), ecFrame.Stats())
	}
	// And the key encodings must be interchangeable: an env-path lookup
	// after a frame-path fill is all hits.
	pre := ecFrame.Stats()
	if _, err := ecFrame.PredictMisses(expr.Env{"N": 64, "TI": 4, "TJ": 4, "TK": 4}, 128); err != nil {
		t.Fatal(err)
	}
	post := ecFrame.Stats()
	if post.Computed != pre.Computed {
		t.Fatalf("env lookup recomputed %d entries already cached by the frame path", post.Computed-pre.Computed)
	}
}

func diffReports(t *testing.T, got, want *MissReport) {
	t.Helper()
	if got.Total != want.Total || got.Accesses != want.Accesses || got.CacheElems != want.CacheElems {
		t.Fatalf("report header diverges: got %d/%d/%d want %d/%d/%d",
			got.Total, got.Accesses, got.CacheElems, want.Total, want.Accesses, want.CacheElems)
	}
	if len(got.Detail) != len(want.Detail) {
		t.Fatalf("detail length %d vs %d", len(got.Detail), len(want.Detail))
	}
	for i := range want.Detail {
		g, w := got.Detail[i], want.Detail[i]
		if g.Misses != w.Misses || g.Count != w.Count || g.SDMin != w.SDMin || g.SDMax != w.SDMax {
			t.Fatalf("component %d diverges: %+v vs %+v", i, g, w)
		}
	}
	for k, v := range want.BySite {
		if got.BySite[k] != v {
			t.Fatalf("site %s: %d vs %d", k, got.BySite[k], v)
		}
	}
}

// Frame validation must reproduce loopir.ValidateEnv's errors verbatim.
func TestValidateFrameErrorsMatchEnv(t *testing.T) {
	a := cachedMatmul(t)
	cases := []expr.Env{
		{},                                   // everything missing
		{"N": 64},                            // tiles missing
		{"N": 64, "TI": 0, "TJ": 4, "TK": 4}, // non-positive symbol
		{"N": -3, "TI": 4, "TJ": 4, "TK": 4},
		{"N": 64, "TI": 4, "TJ": 4, "TK": 4}, // valid
	}
	for _, env := range cases {
		wantErr := a.Nest.ValidateEnv(env)
		f := a.SymTab().FrameOf(env)
		_, gotErr := a.PredictMissesFrame(f, 1024)
		switch {
		case wantErr == nil && gotErr == nil:
		case wantErr == nil || gotErr == nil:
			t.Fatalf("env %v: error occurrence mismatch: env=%v frame=%v", env, wantErr, gotErr)
		case wantErr.Error() != gotErr.Error():
			t.Fatalf("env %v: error text mismatch:\nenv:   %v\nframe: %v", env, wantErr, gotErr)
		}
	}
}

// Re-analyzing the same nest must reproduce the same name→slot mapping:
// the property that keeps packed cache keys and any serialized slot data
// stable across runs.
func TestAnalysisSymTabStableUnderReanalysis(t *testing.T) {
	build := func() []string {
		nest, err := kernels.TiledMatmul()
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(nest)
		if err != nil {
			t.Fatal(err)
		}
		return a.SymTab().Names()
	}
	first := build()
	if len(first) == 0 {
		t.Fatalf("empty symbol table after analysis")
	}
	for trial := 0; trial < 3; trial++ {
		again := build()
		if len(again) != len(first) {
			t.Fatalf("slot count changed across re-analysis: %v vs %v", again, first)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("slot %d changed across re-analysis: %q vs %q", i, again[i], first[i])
			}
		}
	}
}
