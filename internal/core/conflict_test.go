package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func TestCacheConfigValidate(t *testing.T) {
	valid := []CacheConfig{
		{CapacityElems: 64},                             // fully associative, element lines
		{CapacityElems: 64, LineElems: 8},               // fully associative, 8-elem lines
		{CapacityElems: 64, Ways: 1},                    // direct-mapped
		{CapacityElems: 64, Ways: 4, LineElems: 8},      // 2 sets
		{CapacityElems: 64, Ways: 8, LineElems: 8},      // 1 set: degenerate but legal
		{CapacityElems: 1 << 20, Ways: 8, LineElems: 8}, // large
	}
	for _, cfg := range valid {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	invalid := []struct {
		cfg  CacheConfig
		frag string
	}{
		{CacheConfig{CapacityElems: 0, Ways: 1}, "invalid cache geometry"},
		{CacheConfig{CapacityElems: -64, Ways: 1}, "invalid cache geometry"},
		{CacheConfig{CapacityElems: 64, Ways: -1}, "invalid cache geometry"},
		{CacheConfig{CapacityElems: 64, LineElems: -8}, "invalid cache geometry"},
		{CacheConfig{CapacityElems: 64, LineElems: 7}, "must divide capacity"},
		{CacheConfig{CapacityElems: 64, Ways: 3}, "not divisible"},
		{CacheConfig{CapacityElems: 64, Ways: 128}, "not divisible"},
		{CacheConfig{CapacityElems: 64, Ways: 16, LineElems: 8}, "not divisible"},
	}
	for _, tc := range invalid {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", tc.cfg, err, tc.frag)
		}
	}
}

func TestCacheConfigSets(t *testing.T) {
	for _, tc := range []struct {
		cfg  CacheConfig
		sets int64
		fa   bool
	}{
		{CacheConfig{CapacityElems: 64}, 1, true},
		{CacheConfig{CapacityElems: 64, Ways: 1}, 64, false},
		{CacheConfig{CapacityElems: 64, Ways: 4, LineElems: 4}, 4, false},
		{CacheConfig{CapacityElems: 64, Ways: 64}, 1, true},
		{CacheConfig{CapacityElems: 64, Ways: 8, LineElems: 8}, 1, true},
	} {
		if got := tc.cfg.Sets(); got != tc.sets {
			t.Errorf("Sets(%+v) = %d, want %d", tc.cfg, got, tc.sets)
		}
		if got := tc.cfg.FullyAssociative(); got != tc.fa {
			t.Errorf("FullyAssociative(%+v) = %v, want %v", tc.cfg, got, tc.fa)
		}
	}
}

// A fully-associative CacheConfig — whether by the zero-Ways default or by a
// geometry that degenerates to one set — must reproduce the cacheElems paths
// byte for byte.
func TestPredictMissesConfigFullyAssociativeIdentity(t *testing.T) {
	a := cachedMatmul(t)
	f := a.NewFrame()
	for _, n := range []int64{32, 64, 100} {
		env := expr.Env{"N": n, "TI": 8, "TJ": 8, "TK": 8}
		f.Reset()
		f.Bind(env)
		for _, cache := range []int64{64, 512, 4096} {
			want, err := a.PredictMisses(env, cache)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []CacheConfig{
				{CapacityElems: cache},                                // zero ways
				{CapacityElems: cache, LineElems: 8},                  // zero ways, explicit line
				{CapacityElems: cache, Ways: cache},                   // one set
				{CapacityElems: cache, Ways: cache / 8, LineElems: 8}, // one set, lines
			} {
				got, err := a.PredictMissesConfig(env, cfg)
				if err != nil {
					t.Fatalf("config %+v: %v", cfg, err)
				}
				diffReports(t, got, want)
				gotF, err := a.PredictMissesFrameConfig(f, cfg)
				if err != nil {
					t.Fatalf("frame config %+v: %v", cfg, err)
				}
				diffReports(t, gotF, want)
			}
		}
	}
}

// The EvalCache config path must be a pure memoization of the Analysis
// config path, and the total-only variant must agree with the full report.
func TestPredictMissesConfigEvalCacheParity(t *testing.T) {
	a := cachedMatmul(t)
	ec := NewEvalCache(a)
	f := a.NewFrame()
	for _, n := range []int64{32, 64} {
		env := expr.Env{"N": n, "TI": 8, "TJ": 8, "TK": 8}
		f.Reset()
		f.Bind(env)
		for _, cfg := range []CacheConfig{
			{CapacityElems: 512, Ways: 1},
			{CapacityElems: 512, Ways: 4},
			{CapacityElems: 4096, Ways: 2, LineElems: 8},
			{CapacityElems: 4096}, // fully associative through the cache too
		} {
			want, err := a.PredictMissesConfig(env, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ec.PredictMissesFrameConfig(f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, got, want)
			total, err := ec.PredictTotalFrameConfig(f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if total != want.Total {
				t.Errorf("cfg %+v: PredictTotalFrameConfig = %d, want %d", cfg, total, want.Total)
			}
		}
	}
}

// When the combined array footprint fits one lap of the set space no two
// addresses can collide, so the conflict-aware prediction must degenerate to
// the fully-associative one even under a set-associative geometry.
func TestPredictMissesConfigSmallFootprintMatchesFA(t *testing.T) {
	a := cachedMatmul(t)
	env := expr.Env{"N": 16, "TI": 4, "TJ": 4, "TK": 4} // footprint 3·256 = 768
	for _, cfg := range []CacheConfig{
		{CapacityElems: 2048, Ways: 2}, // S·L = 1024 ≥ 768
		{CapacityElems: 4096, Ways: 4}, // S·L = 1024 ≥ 768
		{CapacityElems: 8192, Ways: 1}, // S·L = 8192 ≥ 768
	} {
		want, err := a.PredictMisses(env, cfg.CapacityElems)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.PredictMissesConfig(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		diffReports(t, got, want)
	}
}

// A power-of-two leading dimension makes the matmul column walk resonate:
// the stride-N lattice reaches only S/gcd(S, N) sets, so a direct-mapped
// geometry must predict strictly more misses than the fully-associative
// model at a capacity that comfortably holds the fully-associative span.
func TestPredictMissesConfigResonance(t *testing.T) {
	a := cachedMatmul(t)
	env := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	fa, err := a.PredictTotal(env, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := a.PredictTotalConfig(env, CacheConfig{CapacityElems: 1024, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dm <= fa {
		t.Errorf("direct-mapped prediction %d not above fully-associative %d at resonant stride", dm, fa)
	}
}

func TestPredictMissesConfigInvalidGeometry(t *testing.T) {
	a := cachedMatmul(t)
	env := expr.Env{"N": 32, "TI": 4, "TJ": 4, "TK": 4}
	f := a.NewFrame()
	f.Bind(env)
	ec := NewEvalCache(a)
	bad := CacheConfig{CapacityElems: 64, Ways: 3}
	if _, err := a.PredictMissesConfig(env, bad); err == nil {
		t.Error("PredictMissesConfig accepted invalid geometry")
	}
	if _, err := a.PredictMissesFrameConfig(f, bad); err == nil {
		t.Error("PredictMissesFrameConfig accepted invalid geometry")
	}
	if _, err := a.PredictTotalConfig(env, bad); err == nil {
		t.Error("PredictTotalConfig accepted invalid geometry")
	}
	if _, err := ec.PredictMissesFrameConfig(f, bad); err == nil {
		t.Error("EvalCache.PredictMissesFrameConfig accepted invalid geometry")
	}
}
