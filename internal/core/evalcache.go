package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/obs"
)

// EvalCache memoizes the per-component evaluations of an Analysis so that
// repeated PredictMisses calls — the inner loop of the §6 tile search, which
// evaluates thousands of nearby environments — compute each distinct
// (component, relevant bindings) pair exactly once.
//
// The key insight is that a component's evaluation depends only on the
// symbols its Count, SD and FreeRange expressions actually mention, not on
// the whole environment: a component whose stack distance mentions only TI
// is re-evaluated only when TI changes, no matter how many other tile sizes
// the search is varying. Shared subexpressions across candidates therefore
// collapse into cache hits. The cache stores the capacity-independent
// componentValues; the comparison against a concrete capacity is a few
// integer operations done per call, so capacity sweeps over one environment
// are almost entirely cache hits.
//
// EvalCache is safe for concurrent use. Duplicate concurrent evaluations of
// the same key are coalesced through a per-entry sync.Once, which keeps the
// Computed statistic deterministic for a deterministic set of queries.
type EvalCache struct {
	a        *Analysis
	comps    []compCache
	lookups  atomic.Int64
	computed atomic.Int64

	// Observability instruments (nil when constructed without metrics; the
	// hot path then pays one nil test per event). hits+misses == lookups
	// always; coalesced counts the subset of hits that had to wait for a
	// concurrent computation of the same key and is therefore zero in
	// sequential use; entries tracks the number of distinct keys stored.
	// frameEvals counts the misses computed through compiled programs on a
	// Frame (the frame path) rather than by tree-walking an Env.
	mLookups, mHits, mMisses, mCoalesced *obs.Counter
	mFrameEvals                          *obs.Counter
	mEntries                             *obs.Gauge
}

// CacheStats reports EvalCache effectiveness. For a deterministic query
// pattern the counters are deterministic regardless of concurrency.
type CacheStats struct {
	Lookups  int64 // total component evaluations requested
	Computed int64 // distinct (component, bindings) pairs computed
}

// HitRate is the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return 1 - float64(s.Computed)/float64(s.Lookups)
}

type compCache struct {
	c       *Component
	cc      *compiledComponent
	vars    []string // sorted symbols mentioned by the component's expressions
	slots   []int    // slots of vars in the analysis SymTab, same order
	entries sync.Map // packed binary key (string) -> *compEntry
}

type compEntry struct {
	once sync.Once
	done atomic.Bool // set inside once, after v/err are assigned
	v    componentValues
	err  error
}

// NewEvalCache builds a cache over the analysis. The analysis must not be
// mutated afterwards.
func NewEvalCache(a *Analysis) *EvalCache {
	return NewEvalCacheWithMetrics(a, nil)
}

// NewEvalCacheWithMetrics is NewEvalCache with observability: lookups,
// hits, misses and coalesced waits are recorded under "evalcache.*"
// counters and the distinct-entry count under the "evalcache.entries"
// gauge. A nil registry disables recording.
func NewEvalCacheWithMetrics(a *Analysis, m *obs.Metrics) *EvalCache {
	ec := &EvalCache{
		a:           a,
		comps:       make([]compCache, len(a.Components)),
		mLookups:    m.Counter("evalcache.lookups"),
		mHits:       m.Counter("evalcache.hits"),
		mMisses:     m.Counter("evalcache.misses"),
		mCoalesced:  m.Counter("evalcache.coalesced"),
		mFrameEvals: m.Counter("evalcache.frame_evals"),
		mEntries:    m.Gauge("evalcache.entries"),
	}
	tab := a.ca.tab
	for i, c := range a.Components {
		vars := map[string]bool{}
		c.Count.Vars(vars)
		c.SD.Base.Vars(vars)
		if c.SD.Slope != nil {
			c.SD.Slope.Vars(vars)
		}
		if c.FreeRange != nil {
			c.FreeRange.Vars(vars)
		}
		names := make([]string, 0, len(vars))
		for n := range vars {
			names = append(names, n)
		}
		sort.Strings(names)
		slots := make([]int, len(names))
		for j, n := range names {
			slots[j] = tab.Slot(n)
		}
		ec.comps[i] = compCache{c: c, cc: &a.ca.comps[i], vars: names, slots: slots}
	}
	return ec
}

// Analysis returns the underlying analysis.
func (ec *EvalCache) Analysis() *Analysis { return ec.a }

// Stats returns a snapshot of the cache counters.
func (ec *EvalCache) Stats() CacheStats {
	return CacheStats{Lookups: ec.lookups.Load(), Computed: ec.computed.Load()}
}

// PredictMisses is Analysis.PredictMisses through the cache: identical
// results, memoized component evaluations.
func (ec *EvalCache) PredictMisses(env expr.Env, cacheElems int64) (*MissReport, error) {
	if err := ec.a.Nest.ValidateEnv(env); err != nil {
		return nil, err
	}
	rep := &MissReport{CacheElems: cacheElems, BySite: map[string]int64{}}
	for i := range ec.comps {
		cm, err := ec.comps[i].eval(ec, env, cacheElems)
		if err != nil {
			return nil, err
		}
		rep.Detail = append(rep.Detail, cm)
		rep.Total += cm.Misses
		rep.BySite[cm.Component.Site.Key()] += cm.Misses
		rep.Accesses += cm.Count
	}
	return rep, nil
}

// PredictTotal is a convenience wrapper returning only the total.
func (ec *EvalCache) PredictTotal(env expr.Env, cacheElems int64) (int64, error) {
	rep, err := ec.PredictMisses(env, cacheElems)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}

// packKey appends one bound byte and 8 little-endian value bytes: the
// fixed-width binary element of the cache key. It replaces the decimal
// "name=value" rendering the cache used before the compiled layer existed —
// no formatting, one string allocation per lookup, equal-length keys.
func packKey(buf []byte, bound bool, v int64) []byte {
	if !bound {
		return append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	return append(buf, 1,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// envKey and frameKey produce identical bytes for identical bindings (both
// walk the component's relevant symbols in sorted order), so env-path and
// frame-path lookups share cache entries.
func (cc *compCache) envKey(env expr.Env) string {
	var arr [9 * 8]byte
	buf := arr[:0]
	for _, name := range cc.vars {
		v, ok := env[name]
		buf = packKey(buf, ok, v)
	}
	return string(buf)
}

func (cc *compCache) frameKey(f *expr.Frame) string {
	var arr [9 * 8]byte
	buf := arr[:0]
	for _, slot := range cc.slots {
		v, ok := f.Get(slot)
		buf = packKey(buf, ok, v)
	}
	return string(buf)
}

// lookup runs the memoized-entry protocol for key, calling compute exactly
// once per distinct key across all goroutines.
func (ec *EvalCache) lookup(cc *compCache, key string, compute func() (componentValues, error)) *compEntry {
	ec.lookups.Add(1)
	ec.mLookups.Inc()
	// Fast path: a completed entry costs no allocation (LoadOrStore would
	// build a throwaway compEntry per hit).
	if v, ok := cc.entries.Load(key); ok {
		e := v.(*compEntry)
		if e.done.Load() {
			ec.mHits.Inc()
			return e
		}
	}
	v, loaded := cc.entries.LoadOrStore(key, &compEntry{})
	e := v.(*compEntry)
	if !loaded {
		ec.mEntries.Add(1)
	}
	if e.done.Load() {
		ec.mHits.Inc()
		return e
	}
	mine := false
	e.once.Do(func() {
		ec.computed.Add(1)
		e.v, e.err = compute()
		e.done.Store(true)
		mine = true
	})
	if mine {
		ec.mMisses.Inc()
	} else {
		// Another goroutine computed this key while we waited on (or
		// raced with) its sync.Once: a hit, but a coalesced one.
		ec.mHits.Inc()
		ec.mCoalesced.Inc()
	}
	return e
}

func (cc *compCache) eval(ec *EvalCache, env expr.Env, cacheElems int64) (ComponentMisses, error) {
	e := ec.lookup(cc, cc.envKey(env), func() (componentValues, error) {
		return evalComponentValues(cc.c, env)
	})
	if e.err != nil {
		return ComponentMisses{Component: cc.c, Count: e.v.Count}, e.err
	}
	return classifyComponent(cc.c, e.v, cacheElems), nil
}

// valuesFrame returns the memoized capacity-independent componentValues for
// the frame's bindings — the shared substrate of the cacheElems and
// CacheConfig classification paths.
func (cc *compCache) valuesFrame(ec *EvalCache, f *expr.Frame) (componentValues, error) {
	e := ec.lookup(cc, cc.frameKey(f), func() (componentValues, error) {
		ec.mFrameEvals.Inc()
		return cc.cc.evalComponentValuesFrame(f)
	})
	return e.v, e.err
}

func (cc *compCache) evalFrame(ec *EvalCache, f *expr.Frame, cacheElems int64) (ComponentMisses, error) {
	v, err := cc.valuesFrame(ec, f)
	if err != nil {
		return ComponentMisses{Component: cc.c, Count: v.Count}, err
	}
	return classifyComponent(cc.c, v, cacheElems), nil
}

// PredictMissesFrame is PredictMisses through the frame path: memoized
// compiled-program evaluation over packed slot values, no Env map, no tree
// walks. The frame must stem from the analysis SymTab (Analysis.NewFrame).
func (ec *EvalCache) PredictMissesFrame(f *expr.Frame, cacheElems int64) (*MissReport, error) {
	if err := ec.a.ca.validateFrame(f); err != nil {
		return nil, err
	}
	rep := &MissReport{CacheElems: cacheElems, BySite: map[string]int64{}}
	for i := range ec.comps {
		cm, err := ec.comps[i].evalFrame(ec, f, cacheElems)
		if err != nil {
			return nil, err
		}
		rep.Detail = append(rep.Detail, cm)
		rep.Total += cm.Misses
		rep.BySite[cm.Component.Site.Key()] += cm.Misses
		rep.Accesses += cm.Count
	}
	return rep, nil
}

// PredictTotalFrame is PredictMissesFrame reduced to the total, without
// materializing a report — the tile search scores every candidate through
// this, so the per-call allocation (report, detail slice, site map) matters.
func (ec *EvalCache) PredictTotalFrame(f *expr.Frame, cacheElems int64) (int64, error) {
	if err := ec.a.ca.validateFrame(f); err != nil {
		return 0, err
	}
	var total int64
	for i := range ec.comps {
		cm, err := ec.comps[i].evalFrame(ec, f, cacheElems)
		if err != nil {
			return 0, err
		}
		total += cm.Misses
	}
	return total, nil
}

// PredictMissesFrameConfig is Analysis.PredictMissesFrameConfig through the
// cache: the capacity-independent component values are memoized exactly as
// in the cacheElems paths (sharing their entries), while the conflict
// penalty — a function of the cache geometry — is recomputed per call.
func (ec *EvalCache) PredictMissesFrameConfig(f *expr.Frame, cfg CacheConfig) (*MissReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.norm()
	if cfg.FullyAssociative() {
		return ec.PredictMissesFrame(f, cfg.CapacityElems)
	}
	if err := ec.a.ca.validateFrame(f); err != nil {
		return nil, err
	}
	ce := ec.a.ca.newConflictEval(f, cfg)
	rep := &MissReport{CacheElems: cfg.CapacityElems, BySite: map[string]int64{}}
	for i := range ec.comps {
		v, err := ec.comps[i].valuesFrame(ec, f)
		if err != nil {
			return nil, err
		}
		cm, err := ce.classify(i, ec.comps[i].c, v, cfg.CapacityElems)
		if err != nil {
			return nil, err
		}
		rep.Detail = append(rep.Detail, cm)
		rep.Total += cm.Misses
		rep.BySite[cm.Component.Site.Key()] += cm.Misses
		rep.Accesses += cm.Count
	}
	return rep, nil
}

// PredictTotalFrameConfig is PredictMissesFrameConfig reduced to the total,
// allocation-light for the tile search's per-candidate scoring. cfg must be
// valid (the search validates once up front).
func (ec *EvalCache) PredictTotalFrameConfig(f *expr.Frame, cfg CacheConfig) (int64, error) {
	cfg = cfg.norm()
	if cfg.FullyAssociative() {
		return ec.PredictTotalFrame(f, cfg.CapacityElems)
	}
	if err := ec.a.ca.validateFrame(f); err != nil {
		return 0, err
	}
	ce := ec.a.ca.newConflictEval(f, cfg)
	var total int64
	for i := range ec.comps {
		v, err := ec.comps[i].valuesFrame(ec, f)
		if err != nil {
			return 0, err
		}
		cm, err := ce.classify(i, ec.comps[i].c, v, cfg.CapacityElems)
		if err != nil {
			return 0, err
		}
		total += cm.Misses
	}
	return total, nil
}
