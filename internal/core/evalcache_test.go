package core

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
)

func cachedMatmul(t *testing.T) *Analysis {
	t.Helper()
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestEvalCacheMatchesDirect: the cache must be a pure memoization —
// identical reports to Analysis.PredictMisses at every environment and
// capacity.
func TestEvalCacheMatchesDirect(t *testing.T) {
	a := cachedMatmul(t)
	ec := NewEvalCache(a)
	for _, n := range []int64{32, 64} {
		for _, tile := range []int64{4, 8, 16} {
			env := expr.Env{"N": n, "TI": tile, "TJ": tile, "TK": tile}
			for _, cache := range []int64{64, 512, 4096} {
				want, err := a.PredictMisses(env, cache)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ec.PredictMisses(env, cache)
				if err != nil {
					t.Fatal(err)
				}
				if got.Total != want.Total || got.Accesses != want.Accesses {
					t.Fatalf("env %v cache %d: cached total %d/%d vs direct %d/%d",
						env, cache, got.Total, got.Accesses, want.Total, want.Accesses)
				}
				for i := range want.Detail {
					if got.Detail[i].Misses != want.Detail[i].Misses ||
						got.Detail[i].Count != want.Detail[i].Count ||
						got.Detail[i].SDMin != want.Detail[i].SDMin ||
						got.Detail[i].SDMax != want.Detail[i].SDMax {
						t.Fatalf("component %d diverges: %+v vs %+v",
							i, got.Detail[i], want.Detail[i])
					}
				}
				for k, v := range want.BySite {
					if got.BySite[k] != v {
						t.Fatalf("site %s: cached %d vs direct %d", k, got.BySite[k], v)
					}
				}
			}
		}
	}
}

// TestEvalCacheHitsOnIrrelevantChanges: a component that mentions only a
// subset of the symbols must not be recomputed when an irrelevant symbol
// changes, so sweeping one tile dimension leaves most of the inventory
// cached.
func TestEvalCacheHitsOnIrrelevantChanges(t *testing.T) {
	a := cachedMatmul(t)
	ec := NewEvalCache(a)
	env := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	if _, err := ec.PredictTotal(env, 512); err != nil {
		t.Fatal(err)
	}
	afterFirst := ec.Stats()
	if afterFirst.Computed != int64(len(a.Components)) {
		t.Fatalf("first evaluation computed %d of %d components",
			afterFirst.Computed, len(a.Components))
	}
	// Identical environment: all hits.
	if _, err := ec.PredictTotal(env, 512); err != nil {
		t.Fatal(err)
	}
	if s := ec.Stats(); s.Computed != afterFirst.Computed {
		t.Fatalf("repeated evaluation recomputed: %d -> %d", afterFirst.Computed, s.Computed)
	}
	// Different capacities, same environment: entries store the capacity-
	// independent component values, so a capacity sweep computes nothing new.
	for _, capacity := range []int64{8, 64, 4096} {
		if _, err := ec.PredictTotal(env, capacity); err != nil {
			t.Fatal(err)
		}
	}
	if s := ec.Stats(); s.Computed != afterFirst.Computed {
		t.Fatalf("capacity sweep recomputed: %d -> %d", afterFirst.Computed, s.Computed)
	}
	// Vary one tile: only components mentioning TI may recompute.
	env2 := env.Clone()
	env2["TI"] = 16
	if _, err := ec.PredictTotal(env2, 512); err != nil {
		t.Fatal(err)
	}
	s := ec.Stats()
	recomputed := s.Computed - afterFirst.Computed
	var mentionTI int64
	for i := range ec.comps {
		for _, v := range ec.comps[i].vars {
			if v == "TI" {
				mentionTI++
				break
			}
		}
	}
	if recomputed > mentionTI {
		t.Errorf("varying TI recomputed %d components, only %d mention TI", recomputed, mentionTI)
	}
	if recomputed == 0 {
		t.Error("varying TI recomputed nothing — key ignores the environment?")
	}
	if s.HitRate() <= 0 {
		t.Errorf("hit rate %.3f after repeated evaluations", s.HitRate())
	}
}

// TestEvalCacheConcurrent hammers one cache from many goroutines (run under
// -race) and checks the deterministic Computed count: duplicate concurrent
// evaluations of the same key must coalesce.
func TestEvalCacheConcurrent(t *testing.T) {
	a := cachedMatmul(t)
	ec := NewEvalCache(a)
	envs := []expr.Env{
		{"N": 64, "TI": 8, "TJ": 8, "TK": 8},
		{"N": 64, "TI": 16, "TJ": 8, "TK": 8},
		{"N": 64, "TI": 8, "TJ": 16, "TK": 8},
		{"N": 64, "TI": 8, "TJ": 8, "TK": 16},
	}
	want := make([]int64, len(envs))
	for i, env := range envs {
		var err error
		want[i], err = a.PredictTotal(env, 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, env := range envs {
					got, err := ec.PredictTotal(env, 512)
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[i] {
						t.Errorf("env %v: concurrent total %d, want %d", env, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	s := ec.Stats()
	// Computed must equal the number of distinct keys, independent of the
	// interleaving: 4 envs differing in one tile each.
	direct := NewEvalCache(a)
	for _, env := range envs {
		if _, err := direct.PredictTotal(env, 512); err != nil {
			t.Fatal(err)
		}
	}
	if s.Computed != direct.Stats().Computed {
		t.Errorf("concurrent Computed %d != sequential Computed %d",
			s.Computed, direct.Stats().Computed)
	}
}

// TestEvalCacheErrorPropagation: environments rejected by the nest (missing
// bindings) must error through the cache, not panic or return stale values.
func TestEvalCacheErrorPropagation(t *testing.T) {
	a := cachedMatmul(t)
	ec := NewEvalCache(a)
	if _, err := ec.PredictMisses(expr.Env{"N": 64}, 512); err == nil {
		t.Fatal("missing tile bindings accepted")
	}
	// A good environment after the failure still works.
	env := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": 8}
	want, err := a.PredictTotal(env, 512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ec.PredictTotal(env, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after error: %d vs %d", got, want)
	}
}
