package core

import (
	"testing"

	"repro/internal/kernels"
)

// TestFramePool: pooled frames come back reset, and a prediction through a
// pooled frame matches the Env path exactly.
func TestFramePool(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulEnv(64, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.PredictTotal(env, 512)
	if err != nil {
		t.Fatal(err)
	}

	f := a.GetFrame()
	f.Bind(env)
	got, err := a.PredictTotalFrame(f, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pooled-frame prediction %d, want %d", got, want)
	}
	a.PutFrame(f)

	// The recycled frame must carry no stale bindings.
	f2 := a.GetFrame()
	defer a.PutFrame(f2)
	for _, name := range nest.SymbolNames() {
		if v, ok := f2.GetName(name); ok {
			t.Errorf("recycled frame still binds %s=%d", name, v)
		}
	}
	if _, err := a.PredictTotalFrame(f2, 512); err == nil {
		t.Error("empty pooled frame validated, want missing-symbol error")
	}

	// Nil put is a no-op.
	a.PutFrame(nil)
}

// TestFramePoolSharesSymTab: frames from the pool evaluate compiled
// programs of the same analysis (slot identity holds across recycling).
func TestFramePoolSharesSymTab(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	f := a.GetFrame()
	if f.Tab() != a.SymTab() {
		t.Fatal("pooled frame is over a different symbol table")
	}
	f.SetName("N", 16)
	if v, _ := f.GetName("N"); v != 16 {
		t.Fatalf("SetName/GetName through pooled frame: got %d", v)
	}
	a.PutFrame(f)
}
