package core

import (
	"fmt"

	"repro/internal/expr"
)

// HierarchyReport is the analytical two-level classification of a nest's
// accesses: hits in a first-level cache, hits in a second-level cache, and
// accesses that reach memory. It is the compile-time counterpart of
// cachesim.Hierarchy and extends the paper's single-level model toward the
// deep memory hierarchies (including out-of-core execution) that §7
// motivates.
type HierarchyReport struct {
	Accesses    int64
	L1Hits      int64
	L2Hits      int64
	MemAccesses int64
}

// AMAT returns the predicted average memory access time under the given
// per-level costs.
func (h *HierarchyReport) AMAT(costL1, costL2, costMem float64) float64 {
	if h.Accesses == 0 {
		return 0
	}
	return (float64(h.L1Hits)*costL1 + float64(h.L2Hits)*costL2 +
		float64(h.MemAccesses)*costMem) / float64(h.Accesses)
}

// PredictHierarchy classifies every access against two cache capacities:
// a component hits in the smallest level whose capacity its stack distance
// does not exceed. Requires capL1 <= capL2.
func (a *Analysis) PredictHierarchy(env expr.Env, capL1, capL2 int64) (*HierarchyReport, error) {
	if capL1 <= 0 || capL2 < capL1 {
		return nil, fmt.Errorf("core: invalid hierarchy capacities %d/%d", capL1, capL2)
	}
	rep1, err := a.PredictMisses(env, capL1)
	if err != nil {
		return nil, err
	}
	rep2, err := a.PredictMisses(env, capL2)
	if err != nil {
		return nil, err
	}
	return &HierarchyReport{
		Accesses:    rep1.Accesses,
		L1Hits:      rep1.Accesses - rep1.Total,
		L2Hits:      rep1.Total - rep2.Total,
		MemAccesses: rep2.Total,
	}, nil
}
