package core

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/trace"
)

func TestPredictHierarchyAgainstSimulator(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 20
	env := expr.Env{"N": N}
	const capL1, capL2 = 43, 461 // the matmul SD regime boundaries

	pred, err := a.PredictHierarchy(env, capL1, capL2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cachesim.NewHierarchy(p.Size, capL1, capL2)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(func(_ int, addr int64) { h.Access(addr) })

	if pred.Accesses != h.Accesses() {
		t.Fatalf("accesses %d vs %d", pred.Accesses, h.Accesses())
	}
	tol := int64(3 * N * N)
	check := func(name string, got, want int64) {
		d := got - want
		if d < 0 {
			d = -d
		}
		if d > tol+want/20 {
			t.Errorf("%s: predicted %d vs simulated %d", name, got, want)
		}
	}
	check("L1 hits", pred.L1Hits, h.L1Hits)
	check("L2 hits", pred.L2Hits, h.L2Hits)
	check("memory", pred.MemAccesses, h.MemAccesses)

	// Conservation.
	if pred.L1Hits+pred.L2Hits+pred.MemAccesses != pred.Accesses {
		t.Error("hierarchy report does not conserve accesses")
	}
	// AMAT sanity: between costL1 and costMem.
	amat := pred.AMAT(1, 10, 200)
	if amat < 1 || amat > 200 {
		t.Errorf("AMAT %v out of range", amat)
	}
}

func TestPredictHierarchyErrors(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PredictHierarchy(expr.Env{"N": 4}, 8, 4); err == nil {
		t.Error("L2 < L1 accepted")
	}
	if _, err := a.PredictHierarchy(expr.Env{"N": 4}, 0, 4); err == nil {
		t.Error("zero L1 accepted")
	}
	empty := &HierarchyReport{}
	if empty.AMAT(1, 2, 3) != 0 {
		t.Error("empty AMAT should be 0")
	}
}
