package core

import (
	"encoding/json"

	"repro/internal/expr"
)

// ComponentJSON is the serializable form of a Component: symbolic fields
// are rendered as canonical expression strings.
type ComponentJSON struct {
	Site      string `json:"site"`
	Array     string `json:"array"`
	Kind      string `json:"kind"`
	Carrier   string `json:"carrier,omitempty"`
	Source    string `json:"source,omitempty"`
	Pattern   string `json:"pattern"`
	Count     string `json:"count"`
	SD        string `json:"sd"`
	SDSlope   string `json:"sdSlope,omitempty"`
	FreeVar   string `json:"freeVar,omitempty"`
	FreeRange string `json:"freeRange,omitempty"`
	Exact     bool   `json:"exact"`
	// Breakdown itemizes the stack distance per array (Table 1 style).
	Breakdown map[string]string `json:"breakdown,omitempty"`
}

// ReportJSON is the serializable evaluation of an analysis.
type ReportJSON struct {
	Nest       string                `json:"nest"`
	Env        map[string]int64      `json:"env"`
	CacheElems int64                 `json:"cacheElems"`
	Accesses   int64                 `json:"accesses"`
	Misses     int64                 `json:"misses"`
	BySite     map[string]int64      `json:"bySite"`
	Components []ComponentMissesJSON `json:"components"`
}

// ComponentMissesJSON pairs a component with its concrete evaluation.
type ComponentMissesJSON struct {
	ComponentJSON
	CountValue int64 `json:"countValue"`
	SDMin      int64 `json:"sdMin"` // -1 = infinite
	SDMax      int64 `json:"sdMax"`
	MissValue  int64 `json:"missValue"`
}

func componentJSON(c *Component) ComponentJSON {
	out := ComponentJSON{
		Site:    c.Site.Key(),
		Array:   c.Site.Ref().Array,
		Kind:    c.Kind.String(),
		Pattern: c.Pattern,
		Count:   c.Count.String(),
		Exact:   c.Exact,
	}
	if c.SD.Base.IsInf() {
		out.SD = "inf"
	} else {
		out.SD = c.SD.Base.String()
	}
	if c.SD.Slope != nil && !c.SD.Slope.IsZero() {
		out.SDSlope = c.SD.Slope.String()
		out.FreeVar = c.FreeVar
		out.FreeRange = c.FreeRange.String()
	}
	if c.Carrier != nil {
		out.Carrier = c.Carrier.Index
	}
	if c.Source.Stmt != nil {
		out.Source = c.Source.Key()
	}
	if len(c.Breakdown) > 0 {
		out.Breakdown = map[string]string{}
		for _, bc := range c.Breakdown {
			out.Breakdown[bc.Array] = bc.Size.String()
		}
	}
	return out
}

// ComponentsJSON returns the serializable form of every component, in
// analysis order. The serving layer embeds this in /v1/analyze responses;
// InventoryJSON is the same data pre-marshalled.
func (a *Analysis) ComponentsJSON() []ComponentJSON {
	out := make([]ComponentJSON, len(a.Components))
	for i, c := range a.Components {
		out[i] = componentJSON(c)
	}
	return out
}

// InventoryJSON serializes the symbolic component inventory.
func (a *Analysis) InventoryJSON() ([]byte, error) {
	return json.MarshalIndent(a.ComponentsJSON(), "", "  ")
}

// ReportToJSON serializes a concrete miss report together with its
// component-level detail.
func (a *Analysis) ReportToJSON(env expr.Env, rep *MissReport) ([]byte, error) {
	r := ReportJSON{
		Nest:       a.Nest.Name,
		Env:        map[string]int64(env),
		CacheElems: rep.CacheElems,
		Accesses:   rep.Accesses,
		Misses:     rep.Total,
		BySite:     rep.BySite,
	}
	for _, d := range rep.Detail {
		r.Components = append(r.Components, ComponentMissesJSON{
			ComponentJSON: componentJSON(d.Component),
			CountValue:    d.Count,
			SDMin:         d.SDMin,
			SDMax:         d.SDMax,
			MissValue:     d.Misses,
		})
	}
	return json.MarshalIndent(r, "", "  ")
}
