package core

import (
	"encoding/json"
	"testing"

	"repro/internal/expr"
)

func TestInventoryJSON(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.InventoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	var comps []ComponentJSON
	if err := json.Unmarshal(data, &comps); err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(a.Components) {
		t.Fatalf("%d components in JSON, %d in analysis", len(comps), len(a.Components))
	}
	kinds := map[string]int{}
	for _, c := range comps {
		kinds[c.Kind]++
		if c.Site == "" || c.Count == "" || c.SD == "" {
			t.Errorf("incomplete component %+v", c)
		}
	}
	if kinds["first-touch"] != 3 || kinds["self"] == 0 {
		t.Errorf("kinds %v", kinds)
	}
}

func TestReportToJSON(t *testing.T) {
	nest := imperfectNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 12}
	rep, err := a.PredictMisses(env, 16)
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.ReportToJSON(env, rep)
	if err != nil {
		t.Fatal(err)
	}
	var r ReportJSON
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Misses != rep.Total || r.Accesses != rep.Accesses || r.CacheElems != 16 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", r, rep)
	}
	var sum int64
	for _, c := range r.Components {
		sum += c.MissValue
	}
	if sum != r.Misses {
		t.Errorf("component misses sum %d != total %d", sum, r.Misses)
	}
	// Cross components carry their source.
	foundCross := false
	for _, c := range r.Components {
		if c.Kind == "cross" {
			foundCross = true
			if c.Source == "" {
				t.Errorf("cross component without source: %+v", c)
			}
		}
	}
	if !foundCross {
		t.Error("no cross component serialized")
	}
}
