package core

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// The paper's model is element-granular (its experiments use
// one-element lines). This file extends it with a first-order spatial
// locality model for caches with multi-element lines:
//
//   - a component's stack distance in LINES divides each array's span
//     footprint by the line size when that array is swept densely (its
//     last dimension has a stride-1 subscript term — row-major adjacency);
//   - a reference site enjoys a spatial rescue factor of L when its
//     innermost appearing loop strides the referenced array's last
//     dimension by 1: consecutive iterations touch the same line, so only
//     one access per line can miss.
//
// The model is approximate by design (edge lines, partial sweeps, and
// alignment are ignored); tests bound its error against the exact
// line-granular simulator.

// LineMissReport extends MissReport with the line-model classification.
type LineMissReport struct {
	CacheElems int64
	LineElems  int64
	Accesses   int64
	Total      int64
	BySite     map[string]int64
}

// PredictLineMisses evaluates the spatial model: capacity cacheElems and
// lines of lineElems elements (lineElems must divide cacheElems).
func (a *Analysis) PredictLineMisses(env expr.Env, cacheElems, lineElems int64) (*LineMissReport, error) {
	if lineElems <= 0 || cacheElems%lineElems != 0 {
		return nil, fmt.Errorf("core: line size %d must divide capacity %d", lineElems, cacheElems)
	}
	if err := a.Nest.ValidateEnv(env); err != nil {
		return nil, err
	}
	cacheLines := cacheElems / lineElems
	dense := a.denseArrays()

	rep := &LineMissReport{CacheElems: cacheElems, LineElems: lineElems, BySite: map[string]int64{}}
	for _, c := range a.Components {
		count, err := c.Count.Eval(env)
		if err != nil {
			return nil, err
		}
		if count < 0 {
			count = 0
		}
		rep.Accesses += count

		// Spatial rescue: only the first access per line can miss.
		rescue := int64(1)
		if a.siteStridesLastDim(c.Site) {
			rescue = lineElems
		}

		var missAccesses int64
		if c.SD.Base.IsInf() {
			missAccesses = count
		} else {
			sdLines, err := a.lineSD(c, env, lineElems, dense)
			if err != nil {
				return nil, err
			}
			if sdLines > cacheLines {
				missAccesses = count
			}
		}
		m := missAccesses / rescue
		if missAccesses > 0 && m == 0 {
			m = 1
		}
		rep.Total += m
		rep.BySite[c.Site.Key()] += m
	}
	return rep, nil
}

// denseArrays reports, per array, whether every reference's last dimension
// has a stride-1 term (so a span sweeping it covers whole lines).
func (a *Analysis) denseArrays() map[string]bool {
	out := map[string]bool{}
	for name := range a.Nest.Arrays {
		out[name] = true
	}
	for _, s := range a.Nest.Stmts() {
		for _, r := range s.Refs {
			if len(r.Subs) == 0 {
				continue
			}
			last := r.Subs[len(r.Subs)-1]
			hasUnit := false
			for _, t := range last.Terms {
				if t.Stride == nil {
					hasUnit = true
				}
			}
			if !hasUnit && len(last.Terms) > 0 {
				out[r.Array] = false
			}
		}
	}
	return out
}

// siteStridesLastDim reports whether the site's innermost appearing loop
// indexes the referenced array's last dimension with stride 1.
func (a *Analysis) siteStridesLastDim(site loopir.RefSite) bool {
	ref := site.Ref()
	if len(ref.Subs) == 0 {
		return false
	}
	last := ref.Subs[len(ref.Subs)-1]
	// Find the innermost enclosing loop whose index appears anywhere in
	// the reference.
	appears := map[string]bool{}
	for _, sub := range ref.Subs {
		for _, t := range sub.Terms {
			appears[t.Index] = true
		}
	}
	encl := a.Nest.Enclosing(site.Stmt)
	for i := len(encl) - 1; i >= 0; i-- {
		if appears[encl[i].Index] {
			for _, t := range last.Terms {
				if t.Index == encl[i].Index && t.Stride == nil {
					return true
				}
			}
			return false
		}
	}
	return false
}

// lineSD converts a component's stack distance into lines via its per-array
// breakdown; arrays without a breakdown entry fall back to SD/L.
func (a *Analysis) lineSD(c *Component, env expr.Env, lineElems int64, dense map[string]bool) (int64, error) {
	// Evaluate at the free-variable midpoint for variable components.
	at := int64(0)
	if !c.SD.IsConst() && c.FreeRange != nil {
		rng, err := c.FreeRange.Eval(env)
		if err != nil {
			return 0, err
		}
		at = rng / 2
	}
	if len(c.Breakdown) == 0 {
		sd, err := c.SD.Eval(env, at)
		if err != nil {
			return 0, err
		}
		return (sd + lineElems - 1) / lineElems, nil
	}
	var total int64
	for _, bc := range c.Breakdown {
		size, err := bc.Size.Eval(env, at)
		if err != nil {
			return 0, err
		}
		if size < 0 {
			size = 0
		}
		if dense[bc.Array] {
			total += (size + lineElems - 1) / lineElems
		} else {
			total += size
		}
	}
	return total, nil
}
