package core

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/trace"
)

// simulateLineMisses plays the exact trace through a fully-associative LRU
// cache with multi-element lines.
func simulateLineMisses(t *testing.T, a *Analysis, env expr.Env, capacity, line int64) (int64, int64) {
	t.Helper()
	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cachesim.NewAssocCache(capacity, int(capacity/line), line)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(func(_ int, addr int64) { c.Access(addr) })
	return c.Misses(), c.Accesses()
}

func TestPredictLineMissesMatmul(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 24
	env := expr.Env{"N": N}
	for _, tc := range []struct{ capacity, line int64 }{
		{64, 4},
		{256, 8},
		{2048, 8},
	} {
		rep, err := a.PredictLineMisses(env, tc.capacity, tc.line)
		if err != nil {
			t.Fatal(err)
		}
		sim, accesses := simulateLineMisses(t, a, env, tc.capacity, tc.line)
		if rep.Accesses != accesses {
			t.Fatalf("accesses %d vs %d", rep.Accesses, accesses)
		}
		d := rep.Total - sim
		if d < 0 {
			d = -d
		}
		// First-order spatial model: allow 30% relative + boundary slack.
		tol := sim*3/10 + int64(4*N*N)
		if d > tol {
			t.Errorf("cap=%d line=%d: predicted %d vs simulated %d (tol %d)",
				tc.capacity, tc.line, rep.Total, sim, tol)
		}
	}
}

func TestPredictLineMissesDegeneratesToElementModel(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 16}
	const capacity = 128
	lineRep, err := a.PredictLineMisses(env, capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	elemTotal, err := a.PredictTotal(env, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if lineRep.Total != elemTotal {
		t.Fatalf("line model at L=1 gives %d, element model %d", lineRep.Total, elemTotal)
	}
}

func TestPredictLineMissesValidation(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PredictLineMisses(expr.Env{"N": 8}, 100, 3); err == nil {
		t.Error("non-dividing line accepted")
	}
	if _, err := a.PredictLineMisses(expr.Env{"N": 8}, 100, 0); err == nil {
		t.Error("zero line accepted")
	}
}

// TestSpatialRescueDirection: with growing line size the predicted misses
// of the dense matmul must not increase (spatial locality only helps here).
func TestSpatialRescueDirection(t *testing.T) {
	nest := matmulNest(t)
	a, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.Env{"N": 32}
	var prev int64 = 1 << 62
	for _, line := range []int64{1, 2, 4, 8} {
		rep, err := a.PredictLineMisses(env, 512, line)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total > prev {
			t.Errorf("line %d: misses %d exceed smaller-line %d", line, rep.Total, prev)
		}
		prev = rep.Total
	}
}
