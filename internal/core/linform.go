// Package core implements the paper's contribution: compile-time
// characterization of cache misses for imperfectly nested loops via symbolic
// stack distances.
//
// The analysis proceeds in two phases, mirroring §5 of the paper:
//
//  1. Partitioning (partition.go): the instances of every static array
//     reference are split into components such that all instances of a
//     component have the same incoming reuse dependence — first touch,
//     self-reuse carried by a specific enclosing loop, or cross-statement
//     reuse from an earlier statement.
//
//  2. Stack-distance computation (span.go): for each component, the number
//     of distinct elements of every array accessed over the reuse span is
//     computed symbolically; their sum is the component's stack distance.
//     Cross-statement components may have a stack distance that varies
//     linearly with the position of the target instance (§5.2); these are
//     represented as linear forms and resolved by the miss estimator.
//
// Misses for a fully-associative LRU cache of capacity C are then the total
// instance count of components whose stack distance exceeds C (misses.go).
package core

import (
	"fmt"

	"repro/internal/expr"
)

// LinForm is a symbolic quantity Base + Slope·a in one free position
// variable a (the value of the component's distinguished appearing loop
// index). Slope == nil means the quantity is constant.
type LinForm struct {
	Base  *expr.Expr
	Slope *expr.Expr
}

// LFConst wraps a constant (a-free) expression.
func LFConst(e *expr.Expr) LinForm { return LinForm{Base: e} }

// IsConst reports whether the form has no dependence on the free variable.
func (f LinForm) IsConst() bool { return f.Slope == nil || f.Slope.IsZero() }

// Add returns f + g.
func (f LinForm) Add(g LinForm) LinForm {
	out := LinForm{Base: expr.Add(f.Base, g.Base)}
	switch {
	case f.IsConst() && g.IsConst():
	case f.IsConst():
		out.Slope = g.Slope
	case g.IsConst():
		out.Slope = f.Slope
	default:
		out.Slope = expr.Add(f.Slope, g.Slope)
	}
	return out
}

// MulConst returns f scaled by an a-free expression.
func (f LinForm) MulConst(e *expr.Expr) LinForm {
	out := LinForm{Base: expr.Mul(f.Base, e)}
	if !f.IsConst() {
		out.Slope = expr.Mul(f.Slope, e)
	}
	return out
}

// Mul multiplies two linear forms. The model only ever multiplies forms of
// which at most one is non-constant (a reference has at most one subscript
// dimension containing the distinguished loop); if both are linear the
// product would be quadratic, and we conservatively keep the dominant linear
// structure (base product, combined slope) and report inexactness.
func (f LinForm) Mul(g LinForm) (LinForm, bool) {
	if f.IsConst() {
		return g.MulConst(f.Base), true
	}
	if g.IsConst() {
		return f.MulConst(g.Base), true
	}
	return LinForm{
		Base:  expr.Mul(f.Base, g.Base),
		Slope: expr.Add(expr.Mul(f.Slope, g.Base), expr.Mul(g.Slope, f.Base)),
	}, false
}

// Eval evaluates the form at a concrete free-variable value.
func (f LinForm) Eval(env expr.Env, a int64) (int64, error) {
	b, err := f.Base.Eval(env)
	if err != nil {
		return 0, err
	}
	if f.IsConst() {
		return b, nil
	}
	s, err := f.Slope.Eval(env)
	if err != nil {
		return 0, err
	}
	return b + s*a, nil
}

func (f LinForm) String() string {
	if f.IsConst() {
		return f.Base.String()
	}
	return fmt.Sprintf("%s + a*(%s)", f.Base, f.Slope)
}
