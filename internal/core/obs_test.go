package core

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/obs"
)

func analyzedMatmulObs(t *testing.T, m *obs.Metrics) *Analysis {
	t.Helper()
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Obs = m
	a, err := AnalyzeWithOptions(nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAnalyzeStageTimings ties the analysis-stage timers to behavior: every
// stage is non-negative, the disjoint stages sum to at most the total, and
// the stage counters equal the analysis' actual site/component counts.
func TestAnalyzeStageTimings(t *testing.T) {
	m := obs.New()
	a := analyzedMatmulObs(t, m)

	timers := m.Timers()
	for _, name := range []string{"analyze.class", "analyze.partition", "analyze.span", "analyze.total"} {
		ts, ok := timers[name]
		if !ok {
			t.Fatalf("timer %s not recorded (have %v)", name, m.Names())
		}
		if ts.Nanos < 0 {
			t.Errorf("timer %s negative: %d ns", name, ts.Nanos)
		}
		if ts.Count <= 0 {
			t.Errorf("timer %s has no observations", name)
		}
	}
	sum := timers["analyze.class"].Nanos + timers["analyze.partition"].Nanos + timers["analyze.span"].Nanos
	if total := timers["analyze.total"].Nanos; sum > total {
		t.Errorf("stage sum %d ns exceeds total %d ns", sum, total)
	}

	counters := m.Counters()
	if got, want := counters["analyze.components"], int64(len(a.Components)); got != want {
		t.Errorf("analyze.components = %d, want %d", got, want)
	}
	if got, want := counters["analyze.sites"], int64(len(a.Nest.Sites())); got != want {
		t.Errorf("analyze.sites = %d, want %d", got, want)
	}
}

// TestAnalyzeNilObsIsFree: the uninstrumented path must record nothing and
// still produce the identical analysis.
func TestAnalyzeNilObsIsFree(t *testing.T) {
	nest, err := kernels.TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	observed := analyzedMatmulObs(t, m)
	if len(plain.Components) != len(observed.Components) {
		t.Fatalf("instrumentation changed the analysis: %d vs %d components",
			len(plain.Components), len(observed.Components))
	}
	for i := range plain.Components {
		if plain.Components[i].String() != observed.Components[i].String() {
			t.Errorf("component %d differs: %s vs %s",
				i, plain.Components[i], observed.Components[i])
		}
	}
}

// TestEvalCacheMetricsInvariant: hits+misses == lookups exactly, misses
// equals the distinct-key computation count, the entry gauge equals the
// number of distinct keys, and no coalesced waits occur sequentially.
func TestEvalCacheMetricsInvariant(t *testing.T) {
	m := obs.New()
	a := analyzedMatmulObs(t, nil)
	ec := NewEvalCacheWithMetrics(a, m)

	envs := []expr.Env{
		{"N": 64, "TI": 8, "TJ": 8, "TK": 8},
		{"N": 64, "TI": 8, "TJ": 8, "TK": 16}, // shares TI/TJ-only components
		{"N": 64, "TI": 8, "TJ": 8, "TK": 8},  // full repeat: all hits
	}
	for _, env := range envs {
		for _, cache := range []int64{256, 512, 1024} {
			if _, err := ec.PredictMisses(env, cache); err != nil {
				t.Fatal(err)
			}
		}
	}

	c := m.Counters()
	if c["evalcache.lookups"] == 0 {
		t.Fatal("no lookups recorded")
	}
	if c["evalcache.hits"]+c["evalcache.misses"] != c["evalcache.lookups"] {
		t.Errorf("hits %d + misses %d != lookups %d",
			c["evalcache.hits"], c["evalcache.misses"], c["evalcache.lookups"])
	}
	st := ec.Stats()
	if c["evalcache.lookups"] != st.Lookups {
		t.Errorf("lookups counter %d != Stats().Lookups %d", c["evalcache.lookups"], st.Lookups)
	}
	if c["evalcache.misses"] != st.Computed {
		t.Errorf("misses counter %d != Stats().Computed %d", c["evalcache.misses"], st.Computed)
	}
	if c["evalcache.coalesced"] != 0 {
		t.Errorf("sequential use recorded %d coalesced waits", c["evalcache.coalesced"])
	}
	if got := m.Gauge("evalcache.entries").Load(); got != st.Computed {
		t.Errorf("entries gauge %d != distinct computations %d", got, st.Computed)
	}
	// The repeated environment and capacity sweep must actually hit.
	if c["evalcache.hits"] == 0 {
		t.Error("workload designed for reuse recorded zero hits")
	}
}

// TestEvalCacheMetricsConcurrent: under concurrent lookups the accounting
// identity and the determinism of hits/misses (guaranteed by per-entry
// coalescing) must hold.
func TestEvalCacheMetricsConcurrent(t *testing.T) {
	a := analyzedMatmulObs(t, nil)
	run := func(workers int) (hits, misses, lookups, entries int64) {
		m := obs.New()
		ec := NewEvalCacheWithMetrics(a, m)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for rep := 0; rep < 8; rep++ {
					for _, tk := range []int64{4, 8, 16, 32} {
						env := expr.Env{"N": 64, "TI": 8, "TJ": 8, "TK": tk}
						if _, err := ec.PredictMisses(env, 512); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		c := m.Counters()
		return c["evalcache.hits"], c["evalcache.misses"], c["evalcache.lookups"],
			m.Gauge("evalcache.entries").Load()
	}
	h1, m1, l1, e1 := run(1)
	h8, m8, l8, e8 := run(8)
	if h1+m1 != l1 || h8+m8 != l8 {
		t.Errorf("accounting identity violated: seq %d+%d vs %d, par %d+%d vs %d",
			h1, m1, l1, h8, m8, l8)
	}
	// The query multiset is identical, so every deterministic counter must
	// match across parallelism (8 workers issue 8x the lookups of 1).
	if l8 != 8*l1 {
		t.Errorf("lookups: par %d != 8 * seq %d", l8, l1)
	}
	if m8 != m1 || e8 != e1 {
		t.Errorf("distinct computations must not depend on concurrency: misses %d vs %d, entries %d vs %d",
			m1, m8, e1, e8)
	}
}
