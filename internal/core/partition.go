package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// ComponentKind classifies the incoming reuse dependence shared by all
// reference instances of a component.
type ComponentKind int

const (
	// FirstTouch instances have no incoming dependence: infinite stack
	// distance, compulsory misses.
	FirstTouch ComponentKind = iota
	// SelfCarried instances reuse data accessed one iteration earlier of a
	// specific enclosing loop (the Carrier), all deeper non-appearing loops
	// being at their first iteration.
	SelfCarried
	// CrossStmt instances reuse data last touched by an earlier statement
	// under a common enclosing loop (the paper's imperfectly-nested case).
	CrossStmt
)

func (k ComponentKind) String() string {
	switch k {
	case FirstTouch:
		return "first-touch"
	case SelfCarried:
		return "self"
	case CrossStmt:
		return "cross"
	}
	return "invalid"
}

// Component is one partition of a reference's instances, with its symbolic
// instance count and stack distance.
type Component struct {
	Site    loopir.RefSite
	Kind    ComponentKind
	Carrier *loopir.Loop   // SelfCarried: the loop whose step carries reuse
	Source  loopir.RefSite // CrossStmt: the source reference

	// Count is the number of reference instances in this component.
	Count *expr.Expr
	// SD is the stack distance: Base + Slope·a where a ranges over
	// [0, FreeRange). Constant components have SD.Slope == nil. FirstTouch
	// components have SD.Base == expr.Inf().
	SD        LinForm
	FreeVar   string     // name of the loop index the free variable tracks
	FreeRange *expr.Expr // trip count of that loop; nil if SD constant

	// Pattern is a human-readable source→target iteration-vector sketch in
	// the style of the paper's Table 1.
	Pattern string
	// Exact is false when the span cost used a documented over-
	// approximation (non-nested overlapping boxes summed, or a quadratic
	// free-variable product linearized).
	Exact bool
	// Breakdown itemizes the stack distance by array, in the style of the
	// paper's Table 1 ("A: 2, B: Tk, C: Tk"). Empty for first touches.
	Breakdown []ArrayCost
}

func (c *Component) String() string {
	sd := c.SD.String()
	if c.SD.Base.IsInf() {
		sd = "inf"
	}
	return fmt.Sprintf("%s %s %s  count=%s  sd=%s", c.Site.Key(), c.Kind, c.Pattern, c.Count, sd)
}

// partition enumerates the components of reference site R, walking from the
// statement up the loop tree exactly as the paper's Fig. 3 algorithm does:
// at each level, reuse comes from the nearest preceding sibling subtree
// referencing the array if one exists (cross-statement, terminal); otherwise
// a non-appearing parent loop carries self-reuse and the walk continues with
// that loop pinned to its first iteration.
func (a *Analysis) partition(site loopir.RefSite) ([]*Component, error) {
	nest := a.Nest
	ref := site.Ref()
	array := ref.Array
	appears := map[string]bool{}
	for _, sub := range ref.Subs {
		for _, t := range sub.Terms {
			appears[t.Index] = true
		}
	}
	encl := nest.Enclosing(site.Stmt)

	// countWith computes the instance count given the pinned set and an
	// optional carrier (which contributes trip-1 instead of trip).
	countWith := func(pinned map[string]bool, carrier *loopir.Loop) *expr.Expr {
		cnt := expr.One()
		for _, l := range encl {
			switch {
			case carrier != nil && l == carrier:
				cnt = expr.Mul(cnt, expr.Sub(l.Trip, expr.One()))
			case pinned[l.Index]:
				// contributes a single iteration
			default:
				cnt = expr.Mul(cnt, l.Trip)
			}
		}
		return cnt
	}

	var comps []*Component
	pinned := map[string]bool{} // non-appearing loops pinned at iteration 0
	var node loopir.Node = site.Stmt

	for {
		parent := nest.Parent(node)
		siblings := a.siblingsOf(node, parent)
		// Nearest preceding sibling whose subtree references the array.
		pIdx := -1
		self := a.indexOf(siblings, node)
		for i := self - 1; i >= 0; i-- {
			if a.sc.arrayIn(siblings[i], array) {
				pIdx = i
				break
			}
		}
		if pIdx >= 0 {
			P := siblings[pIdx]
			src, ok := a.sc.lastSiteFor(P, array)
			if !ok {
				return nil, fmt.Errorf("core: internal error: no %s site in source branch", array)
			}
			comp, err := a.crossComponent(site, src, P, node, siblings[pIdx+1:self], pinned, countWith(pinned, nil))
			if err != nil {
				return nil, err
			}
			comps = append(comps, comp)
			return comps, nil
		}
		if parent == nil {
			comps = append(comps, &Component{
				Site:    site,
				Kind:    FirstTouch,
				Count:   countWith(pinned, nil),
				SD:      LFConst(expr.Inf()),
				Pattern: a.pattern(site, nil, pinned, "first"),
				Exact:   true,
			})
			return comps, nil
		}
		if !appears[parent.Index] {
			comp, err := a.selfComponent(site, parent, pinned, countWith(pinned, parent))
			if err != nil {
				return nil, err
			}
			comps = append(comps, comp)
			pinned[parent.Index] = true
		}
		node = parent
	}
}

// selfComponent builds the self-reuse component carried by loop `parent`.
// The span is one complete body iteration of the carrier; with the
// TailToHeadWrap option, when the most recent access to the array in the
// previous iteration belongs to a different branch of the carrier's body,
// the tighter tail-to-head span is used instead.
func (a *Analysis) selfComponent(site loopir.RefSite, parent *loopir.Loop, pinned map[string]bool, count *expr.Expr) (*Component, error) {
	array := site.Ref().Array
	sd, exact, costs := a.sc.bodySpanCost(parent)
	comp := &Component{
		Site:      site,
		Kind:      SelfCarried,
		Carrier:   parent,
		Count:     count,
		SD:        sd,
		Pattern:   a.pattern(site, parent, pinned, "step"),
		Exact:     exact,
		Breakdown: costs,
	}
	if a.sc.opts.TailToHeadWrap {
		if src, ok := a.sc.lastSiteFor(parent, array); ok && src.Stmt != site.Stmt {
			P := a.sc.childContaining(parent, src.Stmt)
			X := a.sc.childContaining(parent, site.Stmt)
			if P != nil && X != nil && P != X {
				pinnedTgt := map[string]bool{}
				for l := range pinned {
					if a.sc.loopsIn[X][l] {
						pinnedTgt[l] = true
					}
				}
				piTgt := a.outermostAppearing(site, X, pinnedTgt)
				var costs []ArrayCost
				sd, exact, costs = a.sc.wrapSpanCost(src, P, site, X, parent, pinnedTgt, piTgt)
				comp.Source = src
				comp.SD = sd
				comp.Exact = exact
				comp.Breakdown = costs
				comp.Pattern = a.pattern(site, parent, pinned, "step:"+src.Key())
				if !sd.IsConst() {
					if piTgt == "" {
						return nil, fmt.Errorf("core: variable wrap SD without a distinguished loop for %s", site.Key())
					}
					comp.FreeVar = piTgt
					comp.FreeRange = a.Nest.Loop(piTgt).Trip
				}
			}
		}
	}
	return comp, nil
}

// crossComponent builds the cross-statement component for target tgt inside
// branch X, source src inside branch P, with `between` branches executed in
// full between them.
func (a *Analysis) crossComponent(
	tgt, src loopir.RefSite,
	P, X loopir.Node,
	between []loopir.Node,
	pinnedTgt map[string]bool,
	count *expr.Expr,
) (*Component, error) {
	nest := a.Nest
	// Source-side pins: the source's non-appearing loops inside P sit at
	// their final iteration (it is the last access in P).
	srcAppears := map[string]bool{}
	for _, sub := range src.Ref().Subs {
		for _, t := range sub.Terms {
			srcAppears[t.Index] = true
		}
	}
	pinnedSrc := map[string]bool{}
	for _, l := range nest.Enclosing(src.Stmt) {
		if a.sc.loopsIn[P][l.Index] && !srcAppears[l.Index] {
			pinnedSrc[l.Index] = true
		}
	}
	// Distinguished appearing loops: outermost appearing inside each branch.
	piTgt := a.outermostAppearing(tgt, X, pinnedTgt)
	piSrc := a.outermostAppearing(src, P, pinnedSrc)

	sd, exact, costs := a.sc.crossSpanCost(src, P, tgt, X, between, pinnedSrc, pinnedTgt, piSrc, piTgt)
	comp := &Component{
		Site:      tgt,
		Kind:      CrossStmt,
		Source:    src,
		Count:     count,
		SD:        sd,
		Pattern:   a.pattern(tgt, nil, pinnedTgt, "cross:"+src.Key()),
		Exact:     exact,
		Breakdown: costs,
	}
	if !sd.IsConst() {
		if piTgt == "" {
			return nil, fmt.Errorf("core: variable SD without a distinguished loop for %s", tgt.Key())
		}
		comp.FreeVar = piTgt
		comp.FreeRange = nest.Loop(piTgt).Trip
	}
	return comp, nil
}

// outermostAppearing returns the outermost loop inside branch B that appears
// in the reference and is not pinned, or "".
func (a *Analysis) outermostAppearing(site loopir.RefSite, B loopir.Node, pinned map[string]bool) string {
	appears := map[string]bool{}
	for _, sub := range site.Ref().Subs {
		for _, t := range sub.Terms {
			appears[t.Index] = true
		}
	}
	for _, l := range a.Nest.Enclosing(site.Stmt) {
		if a.sc.loopsIn[B][l.Index] && appears[l.Index] && !pinned[l.Index] {
			return l.Index
		}
	}
	return ""
}

// siblingsOf returns the ordered node list containing node: the parent's
// body, or the nest root list.
func (a *Analysis) siblingsOf(node loopir.Node, parent *loopir.Loop) []loopir.Node {
	if parent == nil {
		return a.Nest.Root
	}
	return parent.Body
}

func (a *Analysis) indexOf(list []loopir.Node, node loopir.Node) int {
	for i, nd := range list {
		if nd == node {
			return i
		}
	}
	return -1
}

// pattern renders an iteration-vector sketch for the component in the style
// of the paper's Table 1: appearing indices as letters, the carrier as
// "x→x+1", pinned non-appearing indices as 0, free non-appearing indices
// as *.
func (a *Analysis) pattern(site loopir.RefSite, carrier *loopir.Loop, pinned map[string]bool, tag string) string {
	appears := map[string]bool{}
	for _, sub := range site.Ref().Subs {
		for _, t := range sub.Terms {
			appears[t.Index] = true
		}
	}
	letters := "abcdefgh"
	li := 0
	var parts []string
	for _, l := range a.Nest.Enclosing(site.Stmt) {
		switch {
		case carrier != nil && l == carrier:
			parts = append(parts, "x+1")
		case appears[l.Index]:
			if li < len(letters) {
				parts = append(parts, string(letters[li]))
				li++
			} else {
				parts = append(parts, "?")
			}
		case pinned[l.Index]:
			parts = append(parts, "0")
		default:
			parts = append(parts, "*")
		}
	}
	return "(" + strings.Join(parts, ",") + ") " + tag
}
