package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/trace"
)

// randomImperfectNest builds a random imperfect loop tree: an outer loop
// containing 2–3 branches, each a sub-nest with its own statement. Arrays
// are shared across branches so that cross-statement reuse arises.
func randomImperfectNest(r *rand.Rand, id int) (*loopir.Nest, expr.Env, error) {
	env := expr.Env{}
	trip := func(name string, lo, hi int) *expr.Expr {
		env["N"+name] = int64(lo + r.Intn(hi-lo+1))
		return expr.Var("N" + name)
	}
	outerIdx := "o"
	outerTrip := trip("o", 2, 5)

	// Shared arrays: S indexed by the outer loop, plus per-branch arrays.
	arrays := []*loopir.Array{
		{Name: "S", Dims: []*expr.Expr{outerTrip}},
	}
	var branches []loopir.Node
	nBranches := 2 + r.Intn(2)
	for bi := 0; bi < nBranches; bi++ {
		idx := fmt.Sprintf("b%d", bi)
		btrip := trip(idx, 2, 5)
		aname := fmt.Sprintf("A%d", bi)
		var dims []*expr.Expr
		var subs []loopir.Subscript
		switch r.Intn(3) {
		case 0: // A[inner]
			dims = []*expr.Expr{btrip}
			subs = []loopir.Subscript{loopir.Idx(idx)}
		case 1: // A[outer, inner]
			dims = []*expr.Expr{outerTrip, btrip}
			subs = []loopir.Subscript{loopir.Idx(outerIdx), loopir.Idx(idx)}
		default: // A[inner, outer]
			dims = []*expr.Expr{btrip, outerTrip}
			subs = []loopir.Subscript{loopir.Idx(idx), loopir.Idx(outerIdx)}
		}
		arrays = append(arrays, &loopir.Array{Name: aname, Dims: dims})
		refs := []loopir.Ref{
			{Array: aname, Mode: loopir.Read, Subs: subs},
		}
		// Half the branches also touch the shared array S.
		if r.Intn(2) == 0 {
			refs = append(refs, loopir.Ref{
				Array: "S", Mode: loopir.Update,
				Subs: []loopir.Subscript{loopir.Idx(outerIdx)},
			})
		}
		branches = append(branches, &loopir.Loop{
			Index: idx, Trip: btrip,
			Body: []loopir.Node{&loopir.Stmt{Label: fmt.Sprintf("S%d", bi+1), Refs: refs}},
		})
	}
	root := []loopir.Node{&loopir.Loop{Index: outerIdx, Trip: outerTrip, Body: branches}}
	nest, err := loopir.NewNest(fmt.Sprintf("randimp-%d", id), arrays, root)
	return nest, env, err
}

// TestQuickImperfectNestsPredictVsSim fuzzes the cross-statement machinery:
// random imperfect nests with shared arrays across branches.
func TestQuickImperfectNestsPredictVsSim(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for id := 0; id < 80; id++ {
		nest, env, err := randomImperfectNest(r, id)
		if err != nil {
			t.Fatalf("nest %d: %v", id, err)
		}
		a, err := Analyze(nest)
		if err != nil {
			t.Fatalf("nest %d: %v\n%s", id, err, nest)
		}
		p, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		watches := []int64{1, 2, 4, 8, 16, 1000}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.Run(sim.Access)
		res := sim.Results()

		// Compulsory misses must be exact.
		predInf, err := a.PredictTotal(env, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if predInf != res.Distinct {
			t.Errorf("nest %d: compulsory %d vs distinct %d\nenv=%v\n%s\n%s",
				id, predInf, res.Distinct, env, nest, a.Table())
			continue
		}
		// Totals within boundary slack.
		total := res.Accesses
		slack := total/3 + 30
		for i, cap := range watches {
			pred, err := a.PredictTotal(env, cap)
			if err != nil {
				t.Fatal(err)
			}
			diff := pred - res.Misses[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > slack {
				t.Errorf("nest %d cap %d: predicted %d vs simulated %d (slack %d)\nenv=%v\n%s\n%s",
					id, cap, pred, res.Misses[i], slack, env, nest, a.Table())
			}
		}
		// Count conservation per site.
		for site, sum := range a.SummaryBySite() {
			var want *expr.Expr
			for _, s := range nest.Sites() {
				if s.Key() == site {
					want = expr.One()
					for _, l := range nest.Enclosing(s.Stmt) {
						want = expr.Mul(want, l.Trip)
					}
				}
			}
			if want == nil || !sum.Equal(want) {
				t.Errorf("nest %d site %s: count sum %s want %s", id, site, sum, want)
			}
		}
	}
}
