package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/trace"
)

// randomNest generates a random nest within the supported class: a loop
// tree of depth 2–4 with 1–3 statements, each referencing 1–3 arrays whose
// subscripts are distinct enclosing loop indices.
func randomNest(r *rand.Rand, id int) (*loopir.Nest, expr.Env, error) {
	nLoops := 2 + r.Intn(3)
	idxNames := []string{"i", "j", "k", "l"}[:nLoops]
	env := expr.Env{}
	var trips []*expr.Expr
	for _, nm := range idxNames {
		v := expr.Var("N" + nm)
		trips = append(trips, v)
		env["N"+nm] = int64(2 + r.Intn(5))
	}

	arrNames := []string{"A", "B", "C"}[:1+r.Intn(3)]
	// Pick dimensions for each array as random subsets of loops (1..2 dims).
	dimsOf := map[string][]int{} // loop positions per dim
	var arrays []*loopir.Array
	for _, an := range arrNames {
		nd := 1 + r.Intn(2)
		perm := r.Perm(nLoops)
		var dims []int
		for _, p := range perm[:nd] {
			dims = append(dims, p)
		}
		dimsOf[an] = dims
		var extents []*expr.Expr
		for _, p := range dims {
			extents = append(extents, trips[p])
		}
		arrays = append(arrays, &loopir.Array{Name: an, Dims: extents})
	}

	mkStmt := func(label string, avail []string) *loopir.Stmt {
		st := &loopir.Stmt{Label: label}
		// Each statement references a random non-empty subset of arrays.
		for _, an := range arrNames {
			if r.Intn(2) == 0 && len(st.Refs) > 0 {
				continue
			}
			var subs []loopir.Subscript
			usable := true
			for _, p := range dimsOf[an] {
				if p >= len(avail) || avail[p] == "" {
					usable = false
					break
				}
				subs = append(subs, loopir.Idx(avail[p]))
			}
			if !usable {
				continue
			}
			st.Refs = append(st.Refs, loopir.Ref{Array: an, Mode: loopir.Read, Subs: subs})
		}
		if len(st.Refs) == 0 {
			return nil
		}
		return st
	}

	// Build either a perfect nest or an imperfect one with a sub-loop split.
	avail := make([]string, nLoops)
	copy(avail, idxNames)
	var body []loopir.Node
	if s := mkStmt("S1", avail); s != nil {
		body = append(body, s)
	}
	var node loopir.Node
	if len(body) == 0 {
		return nil, nil, fmt.Errorf("empty statement")
	}
	node = body[0]
	for i := nLoops - 1; i >= 0; i-- {
		l := &loopir.Loop{Index: idxNames[i], Trip: trips[i], Body: []loopir.Node{node}}
		node = l
	}
	nest, err := loopir.NewNest(fmt.Sprintf("rand-%d", id), arrays, []loopir.Node{node})
	return nest, env, err
}

// TestQuickRandomNestsPredictVsSim fuzzes the model against the exact
// simulator on random in-class nests and random cache capacities. Spans use
// generic-position representatives, so boundary instances may deviate; the
// tolerance scales with the sub-dominant iteration count.
func TestQuickRandomNestsPredictVsSim(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tried := 0
	for id := 0; tried < 60; id++ {
		nest, env, err := randomNest(r, id)
		if err != nil {
			continue
		}
		a, err := Analyze(nest)
		if err != nil {
			t.Fatalf("nest %d: %v\n%s", id, err, nest)
		}
		tried++
		p, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		watches := []int64{1, 2, 3, 5, 9, 17, 40, 1000}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.Run(sim.Access)
		res := sim.Results()

		total, _ := nest.TotalIterations().Eval(env)
		// Boundary slack: one sub-dominant slice per loop level per site.
		maxTrip := int64(1)
		for _, l := range nest.Loops() {
			v, _ := l.Trip.Eval(env)
			if v > maxTrip {
				maxTrip = v
			}
		}
		slack := int64(len(nest.Sites())) * (total/maxTrip + maxTrip + 4)

		for i, cap := range watches {
			pred, err := a.PredictTotal(env, cap)
			if err != nil {
				t.Fatal(err)
			}
			diff := pred - res.Misses[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > slack {
				t.Errorf("nest %d cap %d: predicted %d vs simulated %d (slack %d)\nenv=%v\n%s\n%s",
					id, cap, pred, res.Misses[i], slack, env, nest, a.Table())
			}
		}
		// First-touch totals are exact by construction.
		predInf, _ := a.PredictTotal(env, 1<<40)
		if predInf != res.Distinct {
			// Every element touched is a compulsory miss; the model's
			// first-touch counts must sum to the distinct address count.
			t.Errorf("nest %d: compulsory %d vs distinct %d\nenv=%v\n%s\n%s",
				id, predInf, res.Distinct, env, nest, a.Table())
		}
	}
}

// TestQuickCountConservation: per site, component counts must sum to the
// site's total instance count, symbolically.
func TestQuickCountConservation(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tried := 0
	for id := 0; tried < 40; id++ {
		nest, _, err := randomNest(r, id)
		if err != nil {
			continue
		}
		a, err := Analyze(nest)
		if err != nil {
			t.Fatal(err)
		}
		tried++
		sums := a.SummaryBySite()
		for _, site := range nest.Sites() {
			want := expr.One()
			for _, l := range nest.Enclosing(site.Stmt) {
				want = expr.Mul(want, l.Trip)
			}
			got := sums[site.Key()]
			if got == nil || !got.Equal(want) {
				t.Errorf("nest %d site %s: count sum %s want %s", id, site.Key(), got, want)
			}
		}
	}
}
