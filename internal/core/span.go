package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/obs"
)

// A reuse span is the set of iterations executed between the source and the
// target of a reuse. Its cost — the component's stack distance — is the
// number of distinct array elements accessed within it, summed over all
// arrays (§4 of the paper: "the cost of an array with respect to a reuse
// [is] the number of distinct memory locations of that array accessed from
// the source iteration vector to the target iteration vector").
//
// Spans are represented as a list of regions. A region is a subtree of the
// loop tree together with a geometry describing which of its loops run
// fully, which are pinned to a single iteration, and which run partially up
// to (or from) the free position variable a:
//
//   - a full region covers every iteration of its subtree;
//   - a prefix region covers the iterations up to the target instance
//     (pinned loops at their first iteration, the distinguished loop π
//     covering a+1 values);
//   - a suffix region covers the iterations from the source instance to the
//     end (pinned loops at their last iteration, π covering trip−a values).
//
// Self-reuse carried by loop L uses a single full region (L's body) with L
// itself as the "carrier": subscript dimensions that mention L take values
// from two adjacent iterations of L, contributing one extra distinct value
// (or exactly 2 values when no deeper term shares the dimension). This is
// the paper's "cost of one complete iteration of the m loop" with the
// boundary-crossing correction visible in Table 1.

type roleKind int

const (
	roleFull roleKind = iota
	rolePinned
	rolePi
)

type region struct {
	node  loopir.Node
	kind  regionKind
	roles map[string]roleKind // loops inside node; absent = roleFull
	// phase distinguishes the two carrier iterations a wrap span crosses:
	// 0 = not a wrap region, 1 = previous iteration (tail), 2 = current
	// iteration (head). Subscript terms naming the carrier are fixed at
	// the phase's iteration, so same-shaped boxes from different phases
	// denote different elements.
	phase int
}

type regionKind int

const (
	regionFull regionKind = iota
	regionPrefix
	regionSuffix
)

// box is the set of elements of one array touched by one reference within
// one region: a product of per-dimension value sets.
type box struct {
	array string
	size  LinForm
	sig   string       // dedupe signature
	dims  []dimProfile // for containment checks
}

type dimProfile struct {
	// entries maps loop index -> effective role in this dimension.
	// roleFull dominates rolePi dominates rolePinned for containment.
	entries map[string]roleKind
	size    LinForm
}

// spanCoster computes box sets; it is owned by an Analysis.
type spanCoster struct {
	nest *loopir.Nest
	opts Options
	// spanTimer accumulates time spent in the three span-costing entry
	// points (nil when Options.Obs is nil — timing then costs one nil test
	// per call).
	spanTimer *obs.Timer
	// subtree caches
	loopsIn map[loopir.Node]map[string]bool
	refsIn  map[loopir.Node][]loopir.RefSite
}

func newSpanCoster(nest *loopir.Nest, opts Options) *spanCoster {
	sc := &spanCoster{
		nest:      nest,
		opts:      opts,
		spanTimer: opts.Obs.Timer("analyze.span"),
		loopsIn:   map[loopir.Node]map[string]bool{},
		refsIn:    map[loopir.Node][]loopir.RefSite{},
	}
	var walk func(nd loopir.Node) (map[string]bool, []loopir.RefSite)
	walk = func(nd loopir.Node) (map[string]bool, []loopir.RefSite) {
		loops := map[string]bool{}
		var refs []loopir.RefSite
		switch v := nd.(type) {
		case *loopir.Loop:
			loops[v.Index] = true
			for _, c := range v.Body {
				cl, cr := walk(c)
				for k := range cl {
					loops[k] = true
				}
				refs = append(refs, cr...)
			}
		case *loopir.Stmt:
			for i := range v.Refs {
				refs = append(refs, loopir.RefSite{Stmt: v, RefIdx: i})
			}
		}
		sc.loopsIn[nd] = loops
		sc.refsIn[nd] = refs
		return loops, refs
	}
	for _, nd := range nest.Root {
		walk(nd)
	}
	return sc
}

// arraysIn reports whether the subtree references the array.
func (sc *spanCoster) arrayIn(nd loopir.Node, array string) bool {
	for _, r := range sc.refsIn[nd] {
		if r.Ref().Array == array {
			return true
		}
	}
	return false
}

// lastSiteFor returns the last (program-order) reference to array within the
// subtree.
func (sc *spanCoster) lastSiteFor(nd loopir.Node, array string) (loopir.RefSite, bool) {
	refs := sc.refsIn[nd]
	for i := len(refs) - 1; i >= 0; i-- {
		if refs[i].Ref().Array == array {
			return refs[i], true
		}
	}
	return loopir.RefSite{}, false
}

func (sc *spanCoster) trip(index string) *expr.Expr {
	return sc.nest.Loop(index).Trip
}

// refBox computes the element set touched by reference site q within the
// given region. carrier, when non-nil, is the loop whose single step the
// span crosses (self-reuse spans): the span consists of the tail of the
// carrier's body at iteration x plus the head at iteration x+1.
//
// Carrier geometry (derived in DESIGN.md §3 and validated against the exact
// simulator): let w1 be the outermost loop inside the carrier that encloses
// q, and S the set of inside loops appearing in q.
//
//   - q has no subscript term naming the carrier: the two half-bodies'
//     projections onto S jointly cover the full sweep → size = Π_S trips.
//   - q names the carrier and the carrier is innermost (no inside loops):
//     the span touches q exactly once → no adjustment.
//   - q names the carrier and w1 ∈ S: the sweep splits complementarily
//     along w1 across the two carrier values (staircase) → size = Π_S
//     trips + Π_{S∖w1} trips.
//   - q names the carrier and w1 ∉ S: both half-bodies project onto the
//     full sweep, in two different carrier positions → size = 2·Π_S trips.
func (sc *spanCoster) refBox(q loopir.RefSite, reg region, carrier *loopir.Loop) (box, bool) {
	inside := sc.loopsIn[reg.node]
	ref := q.Ref()
	b := box{array: ref.Array, size: LFConst(expr.One())}
	exact := true
	carrierHere := false
	// rest accumulates the box size excluding the w1 factor.
	rest := LFConst(expr.One())
	w1 := ""
	if carrier != nil {
		encl := sc.nest.Enclosing(q.Stmt)
		for i, l := range encl {
			if l == carrier && i+1 < len(encl) {
				w1 = encl[i+1].Index
				break
			}
		}
	}
	w1InS := false
	var sigParts []string
	for _, sub := range ref.Subs {
		dp := dimProfile{entries: map[string]roleKind{}, size: LFConst(expr.One())}
		var dimSig []string
		for _, t := range sub.Terms {
			if carrier != nil && t.Index == carrier.Index {
				if reg.phase != 0 {
					// Wrap region: the carrier is pinned to this phase's
					// iteration; the phase tag keeps boxes from the two
					// iterations distinct.
					dimSig = append(dimSig, fmt.Sprintf("%s:carrier@%d", t.Index, reg.phase))
				} else {
					carrierHere = true
					dimSig = append(dimSig, t.Index+":carrier")
				}
				continue
			}
			if !inside[t.Index] {
				dimSig = append(dimSig, t.Index+":fixed")
				continue
			}
			role := roleFull
			if r, ok := reg.roles[t.Index]; ok {
				role = r
			}
			switch role {
			case roleFull:
				dp.entries[t.Index] = roleFull
				dp.size = dp.size.MulConst(sc.trip(t.Index))
				dimSig = append(dimSig, t.Index+":full")
				if t.Index == w1 {
					w1InS = true
				} else {
					rest = rest.MulConst(sc.trip(t.Index))
				}
			case rolePinned:
				dimSig = append(dimSig, t.Index+":pinned")
			case rolePi:
				dp.entries[t.Index] = rolePi
				var lf LinForm
				if reg.kind == regionSuffix {
					lf = LinForm{Base: sc.trip(t.Index), Slope: expr.Const(-1)}
					dimSig = append(dimSig, t.Index+":piS")
				} else {
					lf = LinForm{Base: expr.One(), Slope: expr.One()}
					dimSig = append(dimSig, t.Index+":piP")
				}
				var ok bool
				dp.size, ok = dp.size.Mul(lf)
				exact = exact && ok
			}
		}
		sort.Strings(dimSig)
		sigParts = append(sigParts, strings.Join(dimSig, ","))
		b.dims = append(b.dims, dp)
		var ok bool
		b.size, ok = b.size.Mul(dp.size)
		exact = exact && ok
	}
	if sc.opts.CarrierCorrection && carrierHere && w1 != "" {
		if w1InS {
			b.size = b.size.Add(rest) // staircase split along w1
		} else {
			b.size = b.size.MulConst(expr.Const(2))
		}
	}
	b.sig = b.array + "[" + strings.Join(sigParts, ";") + "]"
	return b, exact
}

// regionBoxes computes the boxes of every reference inside the region.
func (sc *spanCoster) regionBoxes(reg region, carrier *loopir.Loop) ([]box, bool) {
	var out []box
	exact := true
	for _, q := range sc.refsIn[reg.node] {
		b, ok := sc.refBox(q, reg, carrier)
		out = append(out, b)
		exact = exact && ok
	}
	return out, exact
}

// ArrayCost is one array's contribution to a span's stack distance — the
// per-array costs the paper's Table 1 itemizes ("A: 2, B: Tk, C: Tk").
type ArrayCost struct {
	Array string
	Size  LinForm
}

// mergeBoxesDetailed is mergeBoxes plus the per-array breakdown.
func mergeBoxesDetailed(boxes []box) (LinForm, bool, []ArrayCost) {
	total, exact, kept := mergeBoxesKept(boxes)
	perArray := map[string]LinForm{}
	var order []string
	for _, b := range kept {
		if _, ok := perArray[b.array]; !ok {
			order = append(order, b.array)
			perArray[b.array] = LFConst(expr.Zero())
		}
		perArray[b.array] = perArray[b.array].Add(b.size)
	}
	sort.Strings(order)
	costs := make([]ArrayCost, len(order))
	for i, name := range order {
		costs[i] = ArrayCost{Array: name, Size: perArray[name]}
	}
	return total, exact, costs
}

// mergeBoxes deduplicates identical boxes and removes boxes contained in
// another; remaining boxes are summed. The bool result reports whether the
// union was computed without the additive over-approximation (it is false
// only when two overlapping, non-nested boxes of the same array are summed).
func mergeBoxes(boxes []box) (LinForm, bool) {
	total, exact, _ := mergeBoxesKept(boxes)
	return total, exact
}

func mergeBoxesKept(boxes []box) (LinForm, bool, []box) {
	exact := true
	seen := map[string]int{}
	var uniq []box
	for _, b := range boxes {
		if i, ok := seen[b.sig]; ok {
			// Same element set described twice; sizes may differ by a small
			// carrier correction — keep the larger to stay conservative.
			if larger(b.size, uniq[i].size) {
				uniq[i] = b
			}
			continue
		}
		seen[b.sig] = len(uniq)
		uniq = append(uniq, b)
	}
	// Containment pass within each array.
	kept := make([]bool, len(uniq))
	for i := range kept {
		kept[i] = true
	}
	for i := range uniq {
		if !kept[i] {
			continue
		}
		for j := range uniq {
			if i == j || !kept[j] || !kept[i] {
				continue
			}
			if contains(uniq[i], uniq[j]) {
				kept[j] = false
			}
		}
	}
	total := LFConst(expr.Zero())
	byArray := map[string]int{}
	var survivors []box
	for i, b := range uniq {
		if !kept[i] {
			continue
		}
		total = total.Add(b.size)
		byArray[b.array]++
		survivors = append(survivors, b)
	}
	// Two surviving boxes of the same array with different shapes are summed;
	// if their shapes are not provably disjoint this is an over-approximation.
	for _, n := range byArray {
		if n > 1 {
			exact = false
		}
	}
	return total, exact, survivors
}

// contains reports whether box a's element set provably contains box b's:
// same array, same dimension structure, and per dimension every loop of b
// present in a with at-least-as-large a role (full > pi > pinned/absent),
// with a allowed to vary extra loops fully.
func contains(a, b box) bool {
	if a.array != b.array || len(a.dims) != len(b.dims) {
		return false
	}
	for d := range a.dims {
		for l, rb := range b.dims[d].entries {
			ra, ok := a.dims[d].entries[l]
			if !ok || roleRank(ra) < roleRank(rb) {
				return false
			}
		}
		// Loops varying only in a must be full to guarantee coverage of b's
		// fixed position — which we cannot verify symbolically, so require
		// that a has no extra varying loops in this dimension unless b has
		// none at all (then a is a superset sweep of a single point only if
		// the fixed positions coincide, which we cannot prove). Be strict:
		for l := range a.dims[d].entries {
			if _, ok := b.dims[d].entries[l]; !ok {
				return false
			}
		}
	}
	return true
}

// larger reports whether linear form a is provably at least b (their
// difference is a non-negative constant polynomial); used only to pick
// between two descriptions of the same element set.
func larger(a, b LinForm) bool {
	d := expr.Sub(a.Base, b.Base)
	if v, ok := d.ConstVal(); ok && v >= 0 {
		return true
	}
	return false
}

func roleRank(r roleKind) int {
	switch r {
	case roleFull:
		return 2
	case rolePi:
		return 1
	default:
		return 0
	}
}

// bodySpanCost returns the stack distance of a self-reuse carried by loop L:
// the union of the boxes of every reference within one complete iteration of
// L's body, with L as the carrier.
func (sc *spanCoster) bodySpanCost(L *loopir.Loop) (LinForm, bool, []ArrayCost) {
	sw := sc.spanTimer.Start()
	defer sw.Stop()
	boxes, exact1 := sc.regionBoxes(region{node: L, kind: regionFull}, L)
	total, exact2, costs := mergeBoxesDetailed(boxes)
	return total, exact1 && exact2, costs
}

// crossSpanCost returns the stack distance of a cross-statement reuse whose
// source is the last access to the array in subtree P (at reference src) and
// whose target is reference tgt inside subtree X; between holds the sibling
// subtrees executed in full between P and X. pinned lists the loops on the
// path inside X (respectively inside P) that are non-appearing in the target
// (resp. source) reference and hence pinned. pi is the distinguished
// appearing loop index ("" if none), whose trip bounds the free variable.
func (sc *spanCoster) crossSpanCost(
	src loopir.RefSite, P loopir.Node,
	tgt loopir.RefSite, X loopir.Node,
	between []loopir.Node,
	pinnedSrc, pinnedTgt map[string]bool,
	piSrc, piTgt string,
) (LinForm, bool, []ArrayCost) {
	sw := sc.spanTimer.Start()
	defer sw.Stop()
	array := tgt.Ref().Array
	exact := true

	// Role geometry of a partial region: walking the reference's enclosing
	// chain outermost-first, loops before the distinguished loop π that are
	// pinned stay pinned for the whole region (they sit at the endpoint's
	// position); π itself covers a partial range; loops deeper than π run
	// fully in the bulk of the region regardless of pinning (only the final
	// partial slice pins them, which is a lower-order effect).
	mkRoles := func(site loopir.RefSite, branch loopir.Node, pinned map[string]bool, pi string) map[string]roleKind {
		roles := map[string]roleKind{}
		seenPi := false
		for _, l := range sc.nest.Enclosing(site.Stmt) {
			if !sc.loopsIn[branch][l.Index] {
				continue
			}
			switch {
			case l.Index == pi:
				roles[l.Index] = rolePi
				seenPi = true
			case pinned[l.Index] && !seenPi:
				roles[l.Index] = rolePinned
			default:
				// full (either unpinned, or pinned but deeper than π)
			}
		}
		if pi == "" {
			// No appearing loop inside the branch: the endpoint pins every
			// non-appearing loop; the region is a single slice.
			for l := range pinned {
				roles[l] = rolePinned
			}
		}
		return roles
	}

	var boxes []box
	// Suffix of the source branch.
	sufReg := region{node: P, kind: regionSuffix, roles: mkRoles(src, P, pinnedSrc, piSrc)}
	sufBoxes, ok := sc.regionBoxes(sufReg, nil)
	exact = exact && ok
	// Prefix of the target branch.
	preReg := region{node: X, kind: regionPrefix, roles: mkRoles(tgt, X, pinnedTgt, piTgt)}
	preBoxes, ok := sc.regionBoxes(preReg, nil)
	exact = exact && ok

	// Complement rule: the reused array's suffix and prefix boxes jointly
	// cover exactly the full sweep of the common structure (the source's
	// high side plus the target's low side of the π dimension). Replace them
	// with a single full box derived from the target reference.
	if sc.opts.ComplementRule {
		dropReused := func(bs []box) []box {
			var out []box
			for _, b := range bs {
				if b.array == array {
					continue // replaced by the full-common box below
				}
				out = append(out, b)
			}
			return out
		}
		// Build the full box for the reused array from both endpoints:
		// every loop inside the respective branch runs fully. The suffix
		// (high side) and prefix (low side) of the π dimension are jointly
		// a complete sweep, so the full box is the exact union; duplicate
		// and contained boxes are folded by mergeBoxes.
		fullTgt, ok2 := sc.refBox(tgt, region{node: X, kind: regionFull}, nil)
		exact = exact && ok2
		fullSrc, ok3 := sc.refBox(src, region{node: P, kind: regionFull}, nil)
		exact = exact && ok3
		boxes = append(boxes, dropReused(sufBoxes)...)
		boxes = append(boxes, dropReused(preBoxes)...)
		boxes = append(boxes, fullTgt, fullSrc)
	} else {
		boxes = append(boxes, sufBoxes...)
		boxes = append(boxes, preBoxes...)
	}
	// Fully executed in-between branches.
	for _, nd := range between {
		bs, ok2 := sc.regionBoxes(region{node: nd, kind: regionFull, roles: nil}, nil)
		exact = exact && ok2
		boxes = append(boxes, bs...)
	}
	total, ok3, costs := mergeBoxesDetailed(boxes)
	return total, exact && ok3, costs
}

// childContaining returns the child of loop L whose subtree contains the
// statement, or nil.
func (sc *spanCoster) childContaining(L *loopir.Loop, s *loopir.Stmt) loopir.Node {
	for _, child := range L.Body {
		for _, r := range sc.refsIn[child] {
			if r.Stmt == s {
				return child
			}
		}
	}
	return nil
}

// wrapSpanCost computes the stack distance of a self-reuse carried by loop
// L whose source is the last access to the array in a *different* branch of
// L's body (the TailToHeadWrap refinement). The span runs from the source's
// position in iteration x to the target's position in iteration x+1:
//
//	tail (phase 1, L = x):   suffix of the source branch, then every branch
//	                         after it, in full;
//	head (phase 2, L = x+1): every branch before the target branch in full,
//	                         then the prefix of the target branch.
//
// Subscript dimensions naming L take the phase's single iteration value.
// The reused array's suffix/prefix boxes merge into full-branch sweeps by
// the complement rule (when enabled).
func (sc *spanCoster) wrapSpanCost(
	src loopir.RefSite, P loopir.Node,
	tgt loopir.RefSite, X loopir.Node,
	L *loopir.Loop,
	pinnedTgt map[string]bool,
	piTgt string,
) (LinForm, bool, []ArrayCost) {
	sw := sc.spanTimer.Start()
	defer sw.Stop()
	array := tgt.Ref().Array
	exact := true

	srcAppears := map[string]bool{}
	for _, sub := range src.Ref().Subs {
		for _, t := range sub.Terms {
			srcAppears[t.Index] = true
		}
	}
	pinnedSrc := map[string]bool{}
	for _, l := range sc.nest.Enclosing(src.Stmt) {
		if sc.loopsIn[P][l.Index] && !srcAppears[l.Index] {
			pinnedSrc[l.Index] = true
		}
	}
	piSrc := ""
	for _, l := range sc.nest.Enclosing(src.Stmt) {
		if sc.loopsIn[P][l.Index] && srcAppears[l.Index] && !pinnedSrc[l.Index] {
			piSrc = l.Index
			break
		}
	}

	mkRoles := func(site loopir.RefSite, branch loopir.Node, pinned map[string]bool, pi string) map[string]roleKind {
		roles := map[string]roleKind{}
		seenPi := false
		for _, l := range sc.nest.Enclosing(site.Stmt) {
			if !sc.loopsIn[branch][l.Index] {
				continue
			}
			switch {
			case l.Index == pi:
				roles[l.Index] = rolePi
				seenPi = true
			case pinned[l.Index] && !seenPi:
				roles[l.Index] = rolePinned
			}
		}
		if pi == "" {
			for l := range pinned {
				roles[l] = rolePinned
			}
		}
		return roles
	}

	var boxes []box
	add := func(bs []box, ok bool) {
		boxes = append(boxes, bs...)
		exact = exact && ok
	}

	// Tail: suffix of P, then every branch after P, all at phase 1.
	sufReg := region{node: P, kind: regionSuffix, roles: mkRoles(src, P, pinnedSrc, piSrc), phase: 1}
	sufBoxes, ok := sc.regionBoxes(sufReg, L)
	exact = exact && ok
	// Head: every branch before X, then the prefix of X, at phase 2.
	preReg := region{node: X, kind: regionPrefix, roles: mkRoles(tgt, X, pinnedTgt, piTgt), phase: 2}
	preBoxes, ok := sc.regionBoxes(preReg, L)
	exact = exact && ok

	if sc.opts.ComplementRule {
		drop := func(bs []box) []box {
			var out []box
			for _, b := range bs {
				if b.array != array {
					out = append(out, b)
				}
			}
			return out
		}
		fullTgt, ok2 := sc.refBox(tgt, region{node: X, kind: regionFull, phase: 2}, L)
		fullSrc, ok3 := sc.refBox(src, region{node: P, kind: regionFull, phase: 1}, L)
		exact = exact && ok2 && ok3
		boxes = append(boxes, drop(sufBoxes)...)
		boxes = append(boxes, drop(preBoxes)...)
		boxes = append(boxes, fullTgt, fullSrc)
	} else {
		boxes = append(boxes, sufBoxes...)
		boxes = append(boxes, preBoxes...)
	}

	seenP := false
	for _, child := range L.Body {
		if child == P {
			seenP = true
			continue
		}
		if seenP {
			add(sc.regionBoxes(region{node: child, kind: regionFull, phase: 1}, L))
		}
	}
	for _, child := range L.Body {
		if child == X {
			break
		}
		add(sc.regionBoxes(region{node: child, kind: regionFull, phase: 2}, L))
	}

	total, ok4, costs := mergeBoxesDetailed(boxes)
	return total, exact && ok4, costs
}

// describeRegion is used by diagnostics.
func describeRegion(r region) string {
	k := "full"
	switch r.kind {
	case regionPrefix:
		k = "prefix"
	case regionSuffix:
		k = "suffix"
	}
	return fmt.Sprintf("%s region", k)
}
