// Package evalbench defines the symbolic-evaluation benchmark workloads
// shared by the committed benchmark suite (evalbench_test.go) and
// cmd/evalbench, which writes the BENCH_eval.json artifact. Keeping the
// workload definitions in one place guarantees the artifact measures
// exactly what the go-test benchmarks measure — the same discipline
// internal/simbench applies to the simulation pipelines.
//
// Two things are measured, one per layer of the compiled symbolic stack:
//
//   - raw expression evaluation: every component expression of the tiled
//     matmul analysis (counts, stack-distance bases and slopes, free
//     ranges), evaluated by tree walking an Env versus running the
//     compiled op-slice programs against a slot frame;
//   - the §6 tile search end to end, scored through the legacy Env path
//     (tilesearch.Options.TreeEval) versus the per-worker frame path.
package evalbench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/tilesearch"
)

// Workload is the expression-evaluation corpus: the component expressions
// of one analysis together with their compiled forms and a bound frame.
type Workload struct {
	Name string
	A    *core.Analysis
	Env  expr.Env

	exprs []*expr.Expr
	progs []*expr.Program
	frame *expr.Frame
}

// Matmul builds the standard workload: every component expression of the
// tiled-matmul analysis at bound n with the given TI/TJ/TK tiles. n=64
// with 8×8×8 tiles is the configuration committed in BENCH_eval.json.
func Matmul(n int64, tiles []int64) (*Workload, error) {
	a, err := experiments.MatmulAnalysis()
	if err != nil {
		return nil, err
	}
	if len(tiles) != 3 {
		return nil, fmt.Errorf("evalbench: want 3 tile sizes, got %d", len(tiles))
	}
	w := &Workload{
		Name: fmt.Sprintf("matmul-n%d", n),
		A:    a,
		Env:  expr.Env{"N": n, "TI": tiles[0], "TJ": tiles[1], "TK": tiles[2]},
	}
	for _, c := range a.Components {
		w.add(c.Count)
		w.add(c.SD.Base)
		if c.SD.Slope != nil {
			w.add(c.SD.Slope)
		}
		if c.FreeRange != nil {
			w.add(c.FreeRange)
		}
	}
	tab := a.SymTab()
	for _, e := range w.exprs {
		w.progs = append(w.progs, expr.Compile(e, tab))
	}
	w.frame = tab.FrameOf(w.Env)
	return w, nil
}

func (w *Workload) add(e *expr.Expr) { w.exprs = append(w.exprs, e) }

// NumExprs is the number of expressions one Eval* pass evaluates.
func (w *Workload) NumExprs() int { return len(w.exprs) }

// EvalTree evaluates every expression by tree walking the Env and returns
// a wrapping checksum of the results (so the compiler cannot discard the
// work and correctness tests can compare the two paths).
func (w *Workload) EvalTree() (int64, error) {
	var sum int64
	for _, e := range w.exprs {
		v, err := e.Eval(w.Env)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// EvalCompiled evaluates every compiled program against the bound frame
// and returns the same checksum as EvalTree.
func (w *Workload) EvalCompiled() (int64, error) {
	var sum int64
	for _, p := range w.progs {
		v, err := p.Eval(w.frame)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// SearchOptions is the tile-search configuration both end-to-end paths
// run: the same matmul n=64 search the tilesearch tests and goldens pin.
func SearchOptions(n int64, treeEval bool) tilesearch.Options {
	return tilesearch.Options{
		Dims: []tilesearch.Dim{
			{Symbol: "TI", Max: n}, {Symbol: "TJ", Max: n}, {Symbol: "TK", Max: n},
		},
		CacheElems: experiments.KB(16),
		BaseEnv:    expr.Env{"N": n},
		DivisorOf:  n,
		TreeEval:   treeEval,
	}
}

// RunSearch runs the end-to-end search through the chosen scoring path.
// Each call builds a fresh evaluator and caches, so repeated calls measure
// the full per-search cost.
func (w *Workload) RunSearch(n int64, treeEval bool) (*tilesearch.Result, error) {
	return tilesearch.Search(w.A, SearchOptions(n, treeEval))
}
