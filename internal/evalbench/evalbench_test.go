package evalbench

import "testing"

func workload(tb testing.TB) *Workload {
	tb.Helper()
	w, err := Matmul(64, []int64{8, 8, 8})
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// TestTreeCompiledChecksumsMatch: the two evaluation paths must agree on
// every expression — the property the benchmark pair depends on to be a
// fair comparison (same inputs, same outputs, different machinery).
func TestTreeCompiledChecksumsMatch(t *testing.T) {
	w := workload(t)
	tree, err := w.EvalTree()
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := w.EvalCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if tree != compiled {
		t.Errorf("tree checksum %d != compiled checksum %d over %d exprs", tree, compiled, w.NumExprs())
	}
	if w.NumExprs() == 0 {
		t.Error("workload has no expressions")
	}
}

// TestSearchPathsAgree: the end-to-end searches the artifact compares must
// find the same best candidate.
func TestSearchPathsAgree(t *testing.T) {
	w := workload(t)
	tree, err := w.RunSearch(64, true)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := w.RunSearch(64, false)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Best.Misses != frame.Best.Misses {
		t.Errorf("tree path best %v, frame path best %v", tree.Best, frame.Best)
	}
}

func BenchmarkExprTree(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.EvalTree(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExprCompiled(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.EvalCompiled(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTree(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunSearch(64, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchFrame(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunSearch(64, false); err != nil {
			b.Fatal(err)
		}
	}
}
