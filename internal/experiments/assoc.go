package experiments

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/trace"
)

// AssocPoint records miss counts for one cache organization on the same
// trace — the sensitivity study that bounds how far real set-associative
// caches deviate from the paper's fully-associative model. The paper's
// experiments side-step conflict misses by copying tiles ("which will also
// be the case in fully-associative caches", §7.1); this experiment
// quantifies what that copying buys.
type AssocPoint struct {
	Ways      int // 0 = fully associative
	LineElems int64
	Misses    int64
	Accesses  int64
	// Predicted is the analytic model's miss count for this organization:
	// the paper's fully-associative model on the ways-0 row, the
	// conflict-aware model (core.PredictMissesConfig) on every other.
	Predicted int64
}

// RunAssocSensitivity simulates the kernel's trace against a fully
// associative cache and against each of the given associativities, at the
// same capacity and line size, with the matching analytic prediction next
// to each simulated count.
func RunAssocSensitivity(kind string, n int64, tiles []int64, cacheKB int64, ways []int, lineElems int64) ([]AssocPoint, error) {
	nest, env, err := BuildKernel(kind, n, tiles)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return nil, err
	}
	capacity := KB(cacheKB)

	full := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{capacity})
	var assoc []*cachesim.AssocCache
	for _, w := range ways {
		c, err := cachesim.NewAssocCache(capacity, w, lineElems)
		if err != nil {
			return nil, fmt.Errorf("ways %d: %w", w, err)
		}
		assoc = append(assoc, c)
	}
	p.RunBlocks(trace.DefaultBlockSize, func(sites []int32, addrs []int64) {
		full.AccessBlock(sites, addrs)
		for _, c := range assoc {
			c.AccessBlock(addrs)
		}
	})
	res := full.Results()
	m, err := res.MissesFor(capacity)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return nil, err
	}
	faRep, err := a.PredictMisses(env, capacity)
	if err != nil {
		return nil, err
	}
	out := []AssocPoint{{Ways: 0, LineElems: 1, Misses: m, Accesses: res.Accesses, Predicted: faRep.Total}}
	for i, w := range ways {
		cfg := core.CacheConfig{CapacityElems: capacity, Ways: int64(w), LineElems: lineElems}
		crep, err := a.PredictMissesConfig(env, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AssocPoint{
			Ways:      w,
			LineElems: lineElems,
			Misses:    assoc[i].Misses(),
			Accesses:  assoc[i].Accesses(),
			Predicted: crep.Total,
		})
	}
	return out, nil
}
