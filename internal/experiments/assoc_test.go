package experiments

import "testing"

func TestAssocSensitivityMatmul(t *testing.T) {
	pts, err := RunAssocSensitivity("matmul", 32, []int64{8, 8, 8}, 1, []int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	full := pts[0]
	if full.Ways != 0 || full.Misses <= 0 {
		t.Fatalf("full-assoc point %+v", full)
	}
	// All organizations see the same trace, and each row carries a
	// prediction from the matching model.
	for _, p := range pts {
		if p.Accesses != full.Accesses {
			t.Errorf("ways %d saw %d accesses, full saw %d", p.Ways, p.Accesses, full.Accesses)
		}
		if p.Predicted <= 0 {
			t.Errorf("ways %d: no prediction attached (%d)", p.Ways, p.Predicted)
		}
	}
	// Direct-mapped must miss at least as much as fully-associative LRU on
	// this unit-line configuration (LRU inclusion holds per capacity; with
	// identical capacity and line size, conflicts only add misses for these
	// regular traces).
	direct := pts[1]
	if direct.Misses < full.Misses {
		t.Errorf("direct-mapped misses %d < fully-associative %d", direct.Misses, full.Misses)
	}
}

func TestAssocSensitivityBadConfig(t *testing.T) {
	if _, err := RunAssocSensitivity("matmul", 32, []int64{8, 8, 8}, 1, []int{7}, 1); err == nil {
		t.Fatal("non-dividing ways accepted")
	}
	if _, err := RunAssocSensitivity("nope", 32, nil, 1, nil, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
