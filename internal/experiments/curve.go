package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

// CurvePoint compares the model's predicted misses against the exact
// success function at one capacity.
type CurvePoint struct {
	CacheElems int64
	Predicted  int64
	Simulated  int64
}

// RunMissCurve evaluates the model and the exact success function at a
// geometric ladder of capacities from 1 to the full footprint — the
// whole-curve agreement check (Tables 2/3 probe single capacities; this
// probes them all).
func RunMissCurve(a *core.Analysis, env expr.Env, points int) ([]CurvePoint, error) {
	p, err := trace.Compile(a.Nest, env)
	if err != nil {
		return nil, err
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), nil)
	sf := sim.CollectExact()
	p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)

	footprint, err := a.Nest.Footprint().Eval(env)
	if err != nil {
		return nil, err
	}
	if points < 2 {
		points = 2
	}
	var caps []int64
	c := int64(1)
	for len(caps) < points && c < 2*footprint {
		caps = append(caps, c)
		next := c * 2
		if next == c {
			break
		}
		c = next
	}
	pred, err := a.MissCurve(env, caps)
	if err != nil {
		return nil, err
	}
	simCurve := sf.MissCurve(caps)
	out := make([]CurvePoint, len(caps))
	for i := range caps {
		out[i] = CurvePoint{CacheElems: caps[i], Predicted: pred[i], Simulated: simCurve[i]}
	}
	return out, nil
}

// CurveMaxRelErr returns the worst relative error across the curve,
// ignoring capacities where both counts are tiny.
func CurveMaxRelErr(pts []CurvePoint, floor int64) float64 {
	var worst float64
	for _, p := range pts {
		if p.Simulated < floor {
			continue
		}
		d := float64(p.Predicted - p.Simulated)
		if d < 0 {
			d = -d
		}
		if r := d / float64(p.Simulated); r > worst {
			worst = r
		}
	}
	return worst
}

// FormatCurve renders the comparison with a crude log-scale bar per point.
func FormatCurve(pts []CurvePoint, accesses int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-8s %s\n", "capacity", "predicted", "simulated", "rel-err", "miss ratio")
	for _, p := range pts {
		rel := "-"
		if p.Simulated > 0 {
			d := float64(p.Predicted-p.Simulated) / float64(p.Simulated)
			rel = fmt.Sprintf("%+.2f%%", 100*d)
		}
		bar := ""
		if accesses > 0 {
			width := int(40 * float64(p.Simulated) / float64(accesses))
			bar = strings.Repeat("#", width)
		}
		fmt.Fprintf(&b, "%-12d %-14d %-14d %-8s %s\n", p.CacheElems, p.Predicted, p.Simulated, rel, bar)
	}
	return b.String()
}
