package experiments

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

// TestMissCurveAgreementMatmul: the model's whole miss curve tracks the
// exact success function on the tiled matmul — not just at the paper's
// probed capacities.
func TestMissCurveAgreementMatmul(t *testing.T) {
	a, err := MatmulAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.MatmulEnv(32, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunMissCurve(a, env, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("only %d curve points", len(pts))
	}
	// Monotone non-increasing in capacity (both series).
	for i := 1; i < len(pts); i++ {
		if pts[i].Simulated > pts[i-1].Simulated {
			t.Errorf("simulated curve not monotone at %d", pts[i].CacheElems)
		}
		if pts[i].Predicted > pts[i-1].Predicted {
			t.Errorf("predicted curve not monotone at %d", pts[i].CacheElems)
		}
	}
	// Largest capacity: compulsory only, both sides.
	last := pts[len(pts)-1]
	if last.Predicted != last.Simulated {
		t.Errorf("compulsory tail: predicted %d vs %d", last.Predicted, last.Simulated)
	}
	// Worst relative error across the curve stays modest (the power-of-two
	// ladder lands near SD boundaries at a few points).
	if worst := CurveMaxRelErr(pts, 1000); worst > 0.25 {
		t.Errorf("worst curve error %.3f:\n%s", worst, FormatCurve(pts, 0))
	}
}

func TestMissCurveAgreementTwoIndex(t *testing.T) {
	a, err := TwoIndexAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	env, err := kernels.TwoIndexEnv(32, 8, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunMissCurve(a, env, 14)
	if err != nil {
		t.Fatal(err)
	}
	if worst := CurveMaxRelErr(pts, 2000); worst > 0.35 {
		t.Errorf("worst curve error %.3f:\n%s", worst, FormatCurve(pts, 0))
	}
	out := FormatCurve(pts, pts[0].Simulated)
	if !strings.Contains(out, "rel-err") {
		t.Fatal("bad rendering")
	}
}
