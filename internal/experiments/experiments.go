// Package experiments defines every table and figure of the paper's
// evaluation as a runnable experiment, shared by the command-line tools
// (cmd/cachechar, cmd/tilesearch, cmd/smpbench) and the benchmark harness
// (bench_test.go at the repository root). Each runner returns structured
// rows so that callers can render, assert, or benchmark them uniformly.
//
// Units: the paper reports cache sizes in bytes of double-precision data;
// internally everything is element-granular, so 64 KB = 8192 elements and
// 256 KB = 32768 elements.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/obs"
	"repro/internal/smp"
	"repro/internal/tilesearch"
	"repro/internal/trace"
)

// ElemBytes is the size of one array element (double precision).
const ElemBytes = 8

// KB converts a kilobyte count into a cache capacity in elements.
func KB(kb int64) int64 { return kb * 1024 / ElemBytes }

// MissRow is one row of Tables 2 and 3: predicted vs simulated misses.
type MissRow struct {
	Label      string
	Bounds     string
	Tiles      string
	CacheBytes int64
	Predicted  int64
	Simulated  int64 // -1 when simulation was skipped
	PaperPred  int64 // the paper's reported prediction (0 if n/a)
	PaperSim   int64 // the paper's reported sim-cache count (0 if n/a)
}

// RelErr returns |Predicted-Simulated|/Simulated.
func (r MissRow) RelErr() float64 {
	if r.Simulated <= 0 {
		return 0
	}
	d := r.Predicted - r.Simulated
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(r.Simulated)
}

// Table2Config is one row's parameters for the two-index transform.
type Table2Config struct {
	NI, NJ, NM, NN int64
	TI, TJ, TM, TN int64
	CacheKB        int64
	PaperPred      int64
	PaperSim       int64
}

// Table2Configs reproduces the six rows of Table 2.
func Table2Configs() []Table2Config {
	return []Table2Config{
		{256, 256, 256, 256, 128, 64, 64, 128, 256, 1048576, 1066774},
		{256, 256, 256, 256, 64, 128, 128, 64, 256, 1114112, 1119659},
		{512, 512, 512, 512, 128, 128, 128, 128, 256, 6815744, 6822800},
		{256, 256, 256, 256, 64, 64, 64, 128, 64, 34471936, 34472689},
		{256, 256, 256, 256, 128, 64, 64, 128, 64, 34471936, 34472209},
		{512, 256, 256, 512, 128, 64, 64, 128, 64, 137232384, 137761584},
	}
}

// Table3Config is one row's parameters for the tiled matmul.
type Table3Config struct {
	N          int64
	TI, TJ, TK int64
	CacheKB    int64
	PaperPred  int64
	PaperSim   int64
}

// Table3Configs reproduces the six rows of Table 3. The fourth row's tile
// tuple is (64,32,32) in our loop order; the paper's text renders it as
// "(32 64 32)", but only the (64,32,32) assignment reproduces the paper's
// own predicted count (1310720), so we take the rendering as a transposition
// (see EXPERIMENTS.md).
func Table3Configs() []Table3Config {
	return []Table3Config{
		{512, 32, 32, 32, 64, 8650752, 8655485},
		{512, 64, 64, 64, 64, 6291456, 6238845},
		{512, 128, 128, 128, 64, 136314880, 136319615},
		{256, 64, 32, 32, 16, 1310720, 1312382},
		{256, 64, 64, 64, 16, 17301504, 17303166},
		{256, 32, 64, 128, 16, 17170432, 17172096},
	}
}

// analyzedTwoIndex and analyzedMatmul cache the analyses.
var (
	twoIndexAnalysis *core.Analysis
	matmulAnalysis   *core.Analysis
)

// TwoIndexAnalysis returns the (cached) analysis of the tiled two-index
// transform.
func TwoIndexAnalysis() (*core.Analysis, error) {
	if twoIndexAnalysis == nil {
		nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
		if err != nil {
			return nil, err
		}
		twoIndexAnalysis, err = core.Analyze(nest)
		if err != nil {
			return nil, err
		}
	}
	return twoIndexAnalysis, nil
}

// AnalyzedKernel builds a fresh (uncached) full-model analysis of the named
// symbolic kernel with observability attached. The cmd tools use it when
// emitting run reports: the cached TwoIndexAnalysis/MatmulAnalysis variants
// would skip the analyze stage entirely on a warm cache, leaving the
// "analyze.*" timers empty for the run being reported.
func AnalyzedKernel(kind string, m *obs.Metrics) (*core.Analysis, error) {
	var (
		nest *loopir.Nest
		err  error
	)
	switch kind {
	case "twoindex":
		nest, err = kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	case "matmul":
		nest, err = kernels.TiledMatmul()
	default:
		return nil, fmt.Errorf("experiments: unknown symbolic kernel %q", kind)
	}
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Obs = m
	return core.AnalyzeWithOptions(nest, opts)
}

// MatmulAnalysis returns the (cached) analysis of the tiled matmul.
func MatmulAnalysis() (*core.Analysis, error) {
	if matmulAnalysis == nil {
		nest, err := kernels.TiledMatmul()
		if err != nil {
			return nil, err
		}
		matmulAnalysis, err = core.Analyze(nest)
		if err != nil {
			return nil, err
		}
	}
	return matmulAnalysis, nil
}

// RunTable2 evaluates Table 2. With simulate=false only the analytical
// predictions are computed (fast); with simulate=true the exact trace is
// run through the stack simulator (minutes at the paper's sizes).
func RunTable2(simulate bool) ([]MissRow, error) {
	a, err := TwoIndexAnalysis()
	if err != nil {
		return nil, err
	}
	var rows []MissRow
	for i, c := range Table2Configs() {
		env, err := kernels.TwoIndexEnvDims(c.NI, c.NJ, c.NM, c.NN, c.TI, c.TJ, c.TM, c.TN)
		if err != nil {
			return nil, err
		}
		row, err := missRow(a, env, KB(c.CacheKB), simulate)
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("T2.%d", i+1)
		row.Bounds = fmt.Sprintf("(%d,%d,%d,%d)", c.NI, c.NJ, c.NM, c.NN)
		row.Tiles = fmt.Sprintf("(%d,%d,%d,%d)", c.TI, c.TJ, c.TM, c.TN)
		row.CacheBytes = c.CacheKB * 1024
		row.PaperPred, row.PaperSim = c.PaperPred, c.PaperSim
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable3 evaluates Table 3 (tiled matmul).
func RunTable3(simulate bool) ([]MissRow, error) {
	a, err := MatmulAnalysis()
	if err != nil {
		return nil, err
	}
	var rows []MissRow
	for i, c := range Table3Configs() {
		env, err := kernels.MatmulEnv(c.N, c.TI, c.TJ, c.TK)
		if err != nil {
			return nil, err
		}
		row, err := missRow(a, env, KB(c.CacheKB), simulate)
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("T3.%d", i+1)
		row.Bounds = fmt.Sprintf("(%d)", c.N)
		row.Tiles = fmt.Sprintf("(%d,%d,%d)", c.TI, c.TJ, c.TK)
		row.CacheBytes = c.CacheKB * 1024
		row.PaperPred, row.PaperSim = c.PaperPred, c.PaperSim
		rows = append(rows, row)
	}
	return rows, nil
}

func missRow(a *core.Analysis, env expr.Env, cacheElems int64, simulate bool) (MissRow, error) {
	row := MissRow{Simulated: -1}
	pred, err := a.PredictTotal(env, cacheElems)
	if err != nil {
		return row, err
	}
	row.Predicted = pred
	if simulate {
		p, err := trace.Compile(a.Nest, env)
		if err != nil {
			return row, err
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cacheElems})
		p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
		m, err := sim.Results().MissesFor(cacheElems)
		if err != nil {
			return row, err
		}
		row.Simulated = m
	}
	return row, nil
}

// Table4Row is one row of Table 4: best tile size at a bound.
type Table4Row struct {
	N           int64
	KnownBest   map[string]int64
	KnownMisses int64
}

// Table4Result holds the unknown-bounds pick and the per-bound rows.
type Table4Result struct {
	UnknownBest map[string]int64
	Rows        []Table4Row
}

// RunTable4 reproduces Table 4: tile selection for the two-index transform
// with a 64 KB cache, with known bounds N ∈ bounds and with unknown bounds
// (scored on bound-free stack distances with a large surrogate).
func RunTable4(bounds []int64) (*Table4Result, error) {
	return RunTable4Parallel(bounds, 1)
}

// RunTable4Parallel is RunTable4 with the searches spread over the given
// number of evaluation workers (see tilesearch.Options.Parallelism). The
// result is identical at every parallelism level.
func RunTable4Parallel(bounds []int64, parallelism int) (*Table4Result, error) {
	return RunTable4Observed(bounds, parallelism, nil)
}

// RunTable4Observed is RunTable4Parallel with observability: every search
// of the sweep records into m (nil disables, making this exactly
// RunTable4Parallel). The analysis is built fresh when m is non-nil so the
// analyze.* stage timers describe this run.
func RunTable4Observed(bounds []int64, parallelism int, m *obs.Metrics) (*Table4Result, error) {
	var a *core.Analysis
	var err error
	if m != nil {
		a, err = AnalyzedKernel("twoindex", m)
	} else {
		a, err = TwoIndexAnalysis()
	}
	if err != nil {
		return nil, err
	}
	cache := KB(64)
	dims := func(max int64) []tilesearch.Dim {
		return []tilesearch.Dim{{Symbol: "TI", Max: max}, {Symbol: "TJ", Max: max},
			{Symbol: "TM", Max: max}, {Symbol: "TN", Max: max}}
	}
	surrogate := int64(1 << 12)
	unk, err := tilesearch.Search(a, tilesearch.Options{
		Dims:       dims(512),
		CacheElems: cache,
		BaseEnv: expr.Env{"NI": surrogate, "NJ": surrogate,
			"NM": surrogate, "NN": surrogate},
		UnknownBounds: map[string]bool{"NI": true, "NJ": true, "NM": true, "NN": true},
		DivisorOf:     surrogate,
		Parallelism:   parallelism,
		Obs:           m,
	})
	if err != nil {
		return nil, err
	}
	res := &Table4Result{UnknownBest: unk.Best.Tiles}
	for _, n := range bounds {
		max := n
		if max > 512 {
			max = 512
		}
		known, err := tilesearch.Search(a, tilesearch.Options{
			Dims:        dims(max),
			CacheElems:  cache,
			BaseEnv:     expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n},
			DivisorOf:   n,
			Parallelism: parallelism,
			Obs:         m,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{
			N:           n,
			KnownBest:   known.Best.Tiles,
			KnownMisses: known.Best.Misses,
		})
	}
	return res, nil
}

// FigurePoint is one (tile choice, P) cell of Figures 10 and 11.
type FigurePoint struct {
	Label       string
	Procs       int64
	SecondsInf  float64
	SecondsBus  float64
	PerProcMiss int64
}

// RunFigure reproduces Figure 10 (n = 1024) or Figure 11 (n = 2048): the
// simulated parallel execution time of the two-index transform for
// equi-sized tiles {32, 64, 128, 256} and the model-predicted tile
// (64, 16, 16, 128), across processor counts {1, 2, 4, 8}.
func RunFigure(n int64) ([]FigurePoint, error) {
	a, err := TwoIndexAnalysis()
	if err != nil {
		return nil, err
	}
	model := smp.DefaultCostModel()
	cfg := smp.Config{SplitSymbol: "NN", CacheElems: KB(64), Model: model}
	choices := []smp.TileChoice{
		{Label: "equi-32", Tiles: map[string]int64{"TI": 32, "TJ": 32, "TM": 32, "TN": 32}},
		{Label: "equi-64", Tiles: map[string]int64{"TI": 64, "TJ": 64, "TM": 64, "TN": 64}},
		{Label: "equi-128", Tiles: map[string]int64{"TI": 128, "TJ": 128, "TM": 128, "TN": 128}},
		{Label: "equi-256", Tiles: map[string]int64{"TI": 256, "TJ": 256, "TM": 256, "TN": 256}},
		// The tile our model's search selects (§6). The paper reports
		// (64,16,16,128); under exact fully-associative simulation our
		// (64,16,16,64) incurs strictly fewer misses — see EXPERIMENTS.md.
		{Label: "predicted-64x16x16x64", Tiles: map[string]int64{"TI": 64, "TJ": 16, "TM": 16, "TN": 64}},
		{Label: "paper-64x16x16x128", Tiles: map[string]int64{"TI": 64, "TJ": 16, "TM": 16, "TN": 128}},
	}
	base := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
	pts, err := smp.Sweep(a, base, cfg, []int64{1, 2, 4, 8}, choices)
	if err != nil {
		return nil, err
	}
	var out []FigurePoint
	for _, p := range pts {
		out = append(out, FigurePoint{
			Label:       p.Choice.Label,
			Procs:       p.Pred.Procs,
			SecondsInf:  p.Pred.SecondsInfinite(model),
			SecondsBus:  p.Pred.SecondsBus(model),
			PerProcMiss: p.Pred.PerProcMisses,
		})
	}
	return out, nil
}

// RunFigureSimulated is the exact-simulation counterpart of RunFigure at a
// reduced scale: per-processor misses come from the trace simulator instead
// of the analytical model. It exists to verify that the figure's orderings
// (which tile wins at each P) are properties of the program, not artifacts
// of the model.
func RunFigureSimulated(n int64, procs []int64) ([]FigurePoint, error) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		return nil, err
	}
	model := smp.DefaultCostModel()
	cfg := smp.Config{SplitSymbol: "NN", CacheElems: KB(64), Model: model}
	choices := []smp.TileChoice{
		{Label: "equi-32", Tiles: map[string]int64{"TI": 32, "TJ": 32, "TM": 32, "TN": 32}},
		{Label: "equi-64", Tiles: map[string]int64{"TI": 64, "TJ": 64, "TM": 64, "TN": 64}},
		{Label: "predicted-64x16x16x64", Tiles: map[string]int64{"TI": 64, "TJ": 16, "TM": 16, "TN": 64}},
	}
	var out []FigurePoint
	for _, ch := range choices {
		env := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
		for k, v := range ch.Tiles {
			env[k] = v
		}
		for _, p := range procs {
			c := cfg
			c.Procs = p
			pred, err := smp.Simulate(nest, env, c)
			if err != nil {
				return nil, err
			}
			out = append(out, FigurePoint{
				Label:       ch.Label,
				Procs:       p,
				SecondsInf:  pred.SecondsInfinite(model),
				SecondsBus:  pred.SecondsBus(model),
				PerProcMiss: pred.PerProcMisses,
			})
		}
	}
	return out, nil
}

// RunFigureSimulatedParallel is RunFigureSimulated with every processor's
// private cache simulated explicitly (smp.SimulateShards) on a worker pool
// of the given parallelism. For the figure's even splits the points equal
// RunFigureSimulated's exactly; m receives the per-shard cachesim counter
// flushes. Points whose n-tile exceeds the per-processor split bound n/P
// are skipped: the tiled kernel has no partial-tile clamping, so such a
// combination would index past the arrays (at the paper's scales, n = 1024
// and 2048, every figure point is valid).
func RunFigureSimulatedParallel(n int64, procs []int64, parallelism int, m *obs.Metrics) ([]FigurePoint, error) {
	nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
	if err != nil {
		return nil, err
	}
	model := smp.DefaultCostModel()
	cfg := smp.Config{SplitSymbol: "NN", CacheElems: KB(64), Model: model}
	opt := smp.ShardOptions{Parallelism: parallelism, Obs: m}
	choices := []smp.TileChoice{
		{Label: "equi-32", Tiles: map[string]int64{"TI": 32, "TJ": 32, "TM": 32, "TN": 32}},
		{Label: "equi-64", Tiles: map[string]int64{"TI": 64, "TJ": 64, "TM": 64, "TN": 64}},
		{Label: "predicted-64x16x16x64", Tiles: map[string]int64{"TI": 64, "TJ": 16, "TM": 16, "TN": 64}},
	}
	var out []FigurePoint
	for _, ch := range choices {
		env := expr.Env{"NI": n, "NJ": n, "NM": n, "NN": n}
		for k, v := range ch.Tiles {
			env[k] = v
		}
		for _, p := range procs {
			if ch.Tiles["TN"] > n/p {
				continue
			}
			c := cfg
			c.Procs = p
			pred, err := smp.SimulateShards(nest, env, c, opt)
			if err != nil {
				return nil, err
			}
			out = append(out, FigurePoint{
				Label:       ch.Label,
				Procs:       p,
				SecondsInf:  pred.SecondsInfinite(model),
				SecondsBus:  pred.SecondsBus(model),
				PerProcMiss: pred.PerProcMisses,
			})
		}
	}
	return out, nil
}

// FormatMissRows renders miss rows as an aligned text table.
func FormatMissRows(title string, rows []MissRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %-22s %-20s %-8s %14s %14s %14s %14s %8s\n",
		"row", "bounds", "tiles", "cache", "predicted", "simulated", "paper-pred", "paper-sim", "rel-err")
	for _, r := range rows {
		simStr := "-"
		relStr := "-"
		if r.Simulated >= 0 {
			simStr = fmt.Sprint(r.Simulated)
			relStr = fmt.Sprintf("%.2f%%", 100*r.RelErr())
		}
		fmt.Fprintf(&b, "%-6s %-22s %-20s %-8s %14d %14s %14d %14d %8s\n",
			r.Label, r.Bounds, r.Tiles, fmt.Sprintf("%dKB", r.CacheBytes/1024),
			r.Predicted, simStr, r.PaperPred, r.PaperSim, relStr)
	}
	return b.String()
}

// FormatFigure renders figure points as series.
func FormatFigure(title string, pts []FigurePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-26s %5s %16s %16s %16s\n", "tiles", "P", "time-inf(s)", "time-bus(s)", "perproc-misses")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-26s %5d %16.3f %16.3f %16d\n",
			p.Label, p.Procs, p.SecondsInf, p.SecondsBus, p.PerProcMiss)
	}
	return b.String()
}
