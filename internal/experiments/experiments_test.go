package experiments

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

func TestKB(t *testing.T) {
	if KB(64) != 8192 {
		t.Fatalf("KB(64) = %d", KB(64))
	}
	if KB(256) != 32768 {
		t.Fatalf("KB(256) = %d", KB(256))
	}
}

// TestTable3PredictionsMatchPaper asserts the headline reproduction result:
// our from-scratch model reproduces the paper's predicted miss counts
// exactly on every Table 3 row.
func TestTable3PredictionsMatchPaper(t *testing.T) {
	rows, err := RunTable3(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Predicted != r.PaperPred {
			t.Errorf("%s %s %s: predicted %d, paper predicted %d",
				r.Label, r.Bounds, r.Tiles, r.Predicted, r.PaperPred)
		}
	}
}

// TestTable2PredictionsNearPaper: three of the six rows match the paper's
// predictions exactly; the others differ by a single boundary component and
// must stay within 7% of the paper's simulated counts.
func TestTable2PredictionsNearPaper(t *testing.T) {
	rows, err := RunTable2(false)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, r := range rows {
		if r.Predicted == r.PaperPred {
			exact++
		}
		diff := r.Predicted - r.PaperSim
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.07*float64(r.PaperSim) {
			t.Errorf("%s %s %s: predicted %d vs paper sim %d (>7%%)",
				r.Label, r.Bounds, r.Tiles, r.Predicted, r.PaperSim)
		}
	}
	if exact < 3 {
		t.Errorf("only %d/6 Table 2 rows match the paper's predictions exactly", exact)
	}
}

// TestTable2SimulatedSmall runs one scaled-down simulated row end to end.
func TestTable2SimulatedRowSmall(t *testing.T) {
	a, err := TwoIndexAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	rows, err := RunTable3(false)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMissRows("Table 3", rows)
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestRunTable4SmallBounds(t *testing.T) {
	res, err := RunTable4([]int64{64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].N != 64 {
		t.Fatalf("rows %+v", res.Rows)
	}
	if len(res.UnknownBest) != 4 {
		t.Fatalf("unknown best %v", res.UnknownBest)
	}
	// With N=64 and a 64KB cache everything fits: tiles should allow the
	// full bound (misses dominated by compulsory).
	if res.Rows[0].KnownMisses <= 0 {
		t.Fatalf("known misses %d", res.Rows[0].KnownMisses)
	}
}

// TestFigureShape asserts the headline claim of Figures 10/11: the
// model-predicted tile (64,16,16,128) beats every equi-sized tiling at every
// processor count, and time decreases with P.
func TestFigureShape(t *testing.T) {
	pts, err := RunFigure(1024)
	if err != nil {
		t.Fatal(err)
	}
	best := map[int64]float64{}
	pred := map[int64]float64{}
	for _, p := range pts {
		if p.Label == "predicted-64x16x16x64" {
			pred[p.Procs] = p.SecondsInf
			continue
		}
		if p.Label == "paper-64x16x16x128" {
			continue
		}
		if v, ok := best[p.Procs]; !ok || p.SecondsInf < v {
			best[p.Procs] = p.SecondsInf
		}
	}
	for _, procs := range []int64{1, 2, 4, 8} {
		if pred[procs] > best[procs] {
			t.Errorf("P=%d: predicted tile %.3fs worse than best equi %.3fs",
				procs, pred[procs], best[procs])
		}
	}
	// Scaling: P=8 must be faster than P=1 for the predicted tile.
	if !(pred[8] < pred[1]) {
		t.Errorf("no speedup: P=1 %.3fs, P=8 %.3fs", pred[1], pred[8])
	}
	if FormatFigure("Fig 10", pts) == "" {
		t.Fatal("empty figure rendering")
	}
}

// TestFigureOrderingSurvivesExactSimulation: at a reduced scale, the exact
// simulator must agree with the model that the predicted tile beats the
// equi-sized tiles at every processor count — the figure's headline
// ordering is a property of the program, not of the model.
func TestFigureOrderingSurvivesExactSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figure is slow")
	}
	pts, err := RunFigureSimulated(128, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	best := map[int64]float64{}
	pred := map[int64]float64{}
	for _, p := range pts {
		if p.Label == "predicted-64x16x16x64" {
			pred[p.Procs] = p.SecondsInf
			continue
		}
		if v, ok := best[p.Procs]; !ok || p.SecondsInf < v {
			best[p.Procs] = p.SecondsInf
		}
	}
	for _, procs := range []int64{1, 2} {
		if pred[procs] > best[procs] {
			t.Errorf("P=%d: predicted tile %.4fs worse than best equi %.4fs (simulated)",
				procs, pred[procs], best[procs])
		}
	}
}

// TestRunFigureSimulatedParallelMatches pins the sharded-pool figure to the
// sequential symmetry-shortcut one: at a scale where no point is skipped,
// the two must produce identical points at any pool width, and the shard
// counter flushes must aggregate identically.
func TestRunFigureSimulatedParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figure is slow")
	}
	procs := []int64{1, 2}
	seq, err := RunFigureSimulated(128, procs)
	if err != nil {
		t.Fatal(err)
	}
	// RunFigureSimulated carries the same first three choices; filter to them.
	keep := map[string]bool{"equi-32": true, "equi-64": true, "predicted-64x16x16x64": true}
	var want []FigurePoint
	for _, p := range seq {
		if keep[p.Label] {
			want = append(want, p)
		}
	}
	var counters []map[string]int64
	for _, j := range []int{1, 8} {
		m := obs.New()
		got, err := RunFigureSimulatedParallel(128, procs, j, m)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("j=%d: sharded figure diverges\ngot  %+v\nwant %+v", j, got, want)
		}
		counters = append(counters, m.Counters())
	}
	if !reflect.DeepEqual(counters[0], counters[1]) {
		t.Fatalf("shard counters vary with pool width:\nj=1 %v\nj=8 %v", counters[0], counters[1])
	}
}
