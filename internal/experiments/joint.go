package experiments

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/tilesearch"
)

// JointResult is the outcome of the compound model-driven optimization: for
// each loop order of the matmul, strip-mine it and search tile sizes; the
// globally best (order, tiles) pair is what a model-driven compiler would
// emit. This composes the two transformations the paper's introduction
// motivates ("accurate cache models that can be effectively used by
// compilers in performing loop transformations").
type JointResult struct {
	Order  string
	Tiles  map[string]int64
	Misses int64
	// PerOrder records each order's best, for inspection.
	PerOrder map[string]tilesearch.Candidate
}

// RunJointOptimization evaluates all six matmul loop orders, tiling each.
// It is a view over the general plan search (tilesearch.SearchPlans with
// the permutation and auto-tiling axes enabled): the tiled permutation
// variants are exactly the old hand-rolled permute-then-strip-mine sweep.
func RunJointOptimization(n int64, cacheElems int64) (*JointResult, error) {
	base, err := kernels.Matmul()
	if err != nil {
		return nil, err
	}
	pr, err := tilesearch.SearchPlans(base, tilesearch.PlanOptions{
		Options: tilesearch.Options{
			CacheElems: cacheElems,
			BaseEnv:    expr.Env{"N": n},
			DivisorOf:  n,
		},
		Permute:  true,
		AutoTile: true,
	})
	if err != nil {
		return nil, err
	}
	res := &JointResult{PerOrder: map[string]tilesearch.Candidate{}, Misses: 1 << 62}
	for _, v := range pr.Variants {
		if len(v.Result.Best.Tiles) == 0 {
			continue // untiled structural variant; PerOrder compares tiled optima
		}
		order := []string{"i", "j", "k"}
		for _, st := range v.Plan {
			if st.Op == "permute" {
				order = st.Order
			}
		}
		key := strings.Join(order, "-")
		res.PerOrder[key] = v.Result.Best
		if v.Result.Best.Misses < res.Misses {
			res.Misses = v.Result.Best.Misses
			res.Order = key
			res.Tiles = v.Result.Best.Tiles
		}
	}
	return res, nil
}
