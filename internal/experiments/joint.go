package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/tilesearch"
)

// JointResult is the outcome of the compound model-driven optimization: for
// each loop order of the matmul, strip-mine it and search tile sizes; the
// globally best (order, tiles) pair is what a model-driven compiler would
// emit. This composes the two transformations the paper's introduction
// motivates ("accurate cache models that can be effectively used by
// compilers in performing loop transformations").
type JointResult struct {
	Order  string
	Tiles  map[string]int64
	Misses int64
	// PerOrder records each order's best, for inspection.
	PerOrder map[string]tilesearch.Candidate
}

// RunJointOptimization evaluates all six matmul loop orders, tiling each.
func RunJointOptimization(n int64, cacheElems int64) (*JointResult, error) {
	base, err := kernels.Matmul()
	if err != nil {
		return nil, err
	}
	orders := [][]string{
		{"i", "j", "k"}, {"i", "k", "j"}, {"j", "i", "k"},
		{"j", "k", "i"}, {"k", "i", "j"}, {"k", "j", "i"},
	}
	res := &JointResult{PerOrder: map[string]tilesearch.Candidate{}, Misses: 1 << 62}
	for _, ord := range orders {
		perm, err := loopir.PermutePerfect(base, ord)
		if err != nil {
			return nil, err
		}
		chain, stmt, ok := perm.IsPerfect()
		if !ok {
			return nil, fmt.Errorf("experiments: permuted nest not perfect")
		}
		// Strip-mine the permuted order.
		var indices []string
		var trips []*expr.Expr
		var tiles []loopir.TileSpec
		var arrays []*loopir.Array
		for _, a := range perm.Arrays {
			arrays = append(arrays, a)
		}
		for _, l := range chain {
			indices = append(indices, l.Index)
			trips = append(trips, l.Trip)
			tiles = append(tiles, loopir.DefaultTileSpec(l.Index, l.Trip))
		}
		spec := loopir.PerfectNestSpec{
			Name:    perm.Name,
			Arrays:  arrays,
			Indices: indices,
			Trips:   trips,
			Stmt:    stmt,
		}
		tiled, err := loopir.TilePerfect(spec, tiles)
		if err != nil {
			return nil, err
		}
		a, err := core.Analyze(tiled)
		if err != nil {
			return nil, err
		}
		var dims []tilesearch.Dim
		for _, ts := range tiles {
			dims = append(dims, tilesearch.Dim{Symbol: ts.TileVar, Max: n})
		}
		sr, err := tilesearch.Search(a, tilesearch.Options{
			Dims:       dims,
			CacheElems: cacheElems,
			BaseEnv:    expr.Env{"N": n},
			DivisorOf:  n,
		})
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s-%s-%s", ord[0], ord[1], ord[2])
		res.PerOrder[key] = sr.Best
		if sr.Best.Misses < res.Misses {
			res.Misses = sr.Best.Misses
			res.Order = key
			res.Tiles = sr.Best.Tiles
		}
	}
	return res, nil
}
