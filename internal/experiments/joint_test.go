package experiments

import "testing"

func TestJointOptimization(t *testing.T) {
	const n, cache = 64, 512
	res, err := RunJointOptimization(n, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOrder) != 6 {
		t.Fatalf("%d orders evaluated", len(res.PerOrder))
	}
	if res.Order == "" || len(res.Tiles) != 3 {
		t.Fatalf("degenerate result %+v", res)
	}
	// The global best is no worse than any per-order best.
	for ord, cand := range res.PerOrder {
		if res.Misses > cand.Misses {
			t.Errorf("global best %d worse than order %s's %d", res.Misses, ord, cand.Misses)
		}
	}
	// Tiling equalizes the orders: every order's tiled optimum must be
	// within 2x of the best (tiling absorbs most of the order sensitivity).
	for ord, cand := range res.PerOrder {
		if cand.Misses > 2*res.Misses {
			t.Errorf("order %s optimum %d more than 2x the best %d — tiling failed to absorb order",
				ord, cand.Misses, res.Misses)
		}
	}
}
