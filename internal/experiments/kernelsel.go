package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/tce"
)

// BuildKernel constructs one of the built-in kernels with a common loop
// bound and tile sizes:
//
//	matmul     — 6-deep tiled matrix multiplication (3 tiles)
//	twoindex   — tiled fused two-index transform, Fig. 6 (4 tiles)
//	fourindex  — fully fused four-index transform chain (no tiles; n is the
//	             AO range, the MO range is n/2)
//	ccsd       — tiled CCSD doubles contraction R += W·T2 (6 tiles; n is
//	             the virtual range, the occupied range is n/2)
//
// Two untiled kinds exist for the joint transformation search, which wants
// structural freedom rather than pre-baked tiling:
//
//	matmul-naive  — the plain 3-loop matmul (no tiles)
//	twoindexchain — the unfused two-index transform chain, Fig. 5 (no
//	                tiles; n is the AO range, the MO range is n/2)
func BuildKernel(kind string, n int64, tiles []int64) (*loopir.Nest, expr.Env, error) {
	switch kind {
	case "matmul-naive":
		if len(tiles) != 0 {
			return nil, nil, fmt.Errorf("matmul-naive takes no tile sizes (untiled form)")
		}
		nest, err := kernels.Matmul()
		if err != nil {
			return nil, nil, err
		}
		return nest, expr.Env{"N": n}, nil
	case "twoindexchain":
		if len(tiles) != 0 {
			return nil, nil, fmt.Errorf("twoindexchain takes no tile sizes (untiled form)")
		}
		nest, err := tce.UnfusedTwoIndex(nil)
		if err != nil {
			return nil, nil, err
		}
		v := n / 2
		if v < 1 {
			v = 1
		}
		return nest, expr.Env{"N": n, "V": v}, nil
	case "matmul":
		if len(tiles) == 0 {
			tiles = []int64{32, 32, 32}
		}
		if len(tiles) != 3 {
			return nil, nil, fmt.Errorf("matmul needs 3 tile sizes, got %d", len(tiles))
		}
		nest, err := kernels.TiledMatmul()
		if err != nil {
			return nil, nil, err
		}
		env, err := kernels.MatmulEnv(n, tiles[0], tiles[1], tiles[2])
		return nest, env, err
	case "twoindex":
		if len(tiles) == 0 {
			tiles = []int64{64, 16, 16, 64}
		}
		if len(tiles) != 4 {
			return nil, nil, fmt.Errorf("twoindex needs 4 tile sizes, got %d", len(tiles))
		}
		nest, err := kernels.TiledTwoIndex(kernels.SymbolicTwoIndexBounds())
		if err != nil {
			return nil, nil, err
		}
		env, err := kernels.TwoIndexEnv(n, tiles[0], tiles[1], tiles[2], tiles[3])
		return nest, env, err
	case "fourindex":
		if len(tiles) != 0 {
			return nil, nil, fmt.Errorf("fourindex takes no tile sizes (fully fused form)")
		}
		c, r := tce.FourIndexTransform()
		tree, err := tce.OpMin(c, r, expr.Env{"N": 64, "V": 32})
		if err != nil {
			return nil, nil, err
		}
		nest, err := tce.GenFusedTransformChain("four-index-fused", tree.Sequence(), r)
		if err != nil {
			return nil, nil, err
		}
		v := n / 2
		if v < 1 {
			v = 1
		}
		return nest, expr.Env{"N": n, "V": v}, nil
	case "ccsd":
		o := n / 2
		if o < 1 {
			o = 1
		}
		if len(tiles) == 0 {
			tiles = []int64{n / 4, n / 4, o / 2, o / 2, n / 4, n / 4}
			for i, tv := range tiles {
				if tv < 1 {
					tiles[i] = 1
				}
			}
		}
		if len(tiles) != 6 {
			return nil, nil, fmt.Errorf("ccsd needs 6 tile sizes (TA,TB,TI,TJ,TC,TD), got %d", len(tiles))
		}
		nest, err := kernels.TiledCCSD()
		if err != nil {
			return nil, nil, err
		}
		env, err := kernels.CCSDEnv(n, o, tiles[0], tiles[1], tiles[2], tiles[3], tiles[4], tiles[5])
		return nest, env, err
	}
	return nil, nil, fmt.Errorf("unknown kernel %q (want matmul, matmul-naive, twoindex, twoindexchain, fourindex or ccsd)", kind)
}

// LoadNestFile parses a loop nest from the textual format (see
// loopir.Parse) and binds its symbols from defines.
func LoadNestFile(path string, defines map[string]int64) (*loopir.Nest, expr.Env, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	nest, err := loopir.Parse(string(src))
	if err != nil {
		return nil, nil, err
	}
	env := expr.Env{}
	for k, v := range defines {
		env[k] = v
	}
	if err := nest.ValidateEnv(env); err != nil {
		return nil, nil, fmt.Errorf("%w (bind symbols with -D name=value)", err)
	}
	return nest, env, nil
}

// ParseDefines parses repeated "name=value" definitions.
func ParseDefines(defs []string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, d := range defs {
		parts := strings.SplitN(d, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad define %q (want name=value)", d)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad define value %q", d)
		}
		out[strings.TrimSpace(parts[0])] = v
	}
	return out, nil
}

// ParseTiles parses a comma-separated tile list ("" yields nil).
func ParseTiles(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad tile size %q", p)
		}
		out[i] = v
	}
	return out, nil
}
