package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildKernelVariants(t *testing.T) {
	cases := []struct {
		kind  string
		n     int64
		tiles []int64
	}{
		{"matmul", 64, nil},
		{"matmul", 64, []int64{8, 16, 32}},
		{"twoindex", 64, nil},
		{"twoindex", 64, []int64{16, 16, 16, 16}},
		{"fourindex", 16, nil},
		{"ccsd", 8, nil},
		{"ccsd", 8, []int64{2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		nest, env, err := BuildKernel(c.kind, c.n, c.tiles)
		if err != nil {
			t.Errorf("%s: %v", c.kind, err)
			continue
		}
		if err := nest.ValidateEnv(env); err != nil {
			t.Errorf("%s env: %v", c.kind, err)
		}
	}
}

func TestBuildKernelErrors(t *testing.T) {
	if _, _, err := BuildKernel("nope", 64, nil); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, _, err := BuildKernel("matmul", 64, []int64{1, 2}); err == nil {
		t.Error("wrong tile count accepted")
	}
	if _, _, err := BuildKernel("fourindex", 16, []int64{4}); err == nil {
		t.Error("fourindex with tiles accepted")
	}
	if _, _, err := BuildKernel("ccsd", 8, []int64{3, 2, 2, 2, 2, 2}); err == nil {
		t.Error("non-dividing ccsd tile accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	ts, err := ParseTiles("4, 8,16")
	if err != nil || len(ts) != 3 || ts[2] != 16 {
		t.Fatalf("tiles %v %v", ts, err)
	}
	if _, err := ParseTiles("4,x"); err == nil {
		t.Error("bad tile accepted")
	}
	if ts, err := ParseTiles(""); err != nil || ts != nil {
		t.Error("empty tiles should be nil")
	}
	defs, err := ParseDefines([]string{"N=64", " TI = 8 "})
	if err != nil || defs["N"] != 64 || defs["TI"] != 8 {
		t.Fatalf("defines %v %v", defs, err)
	}
	if _, err := ParseDefines([]string{"N"}); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := ParseDefines([]string{"N=x"}); err == nil {
		t.Error("bad value accepted")
	}
}

func TestLoadNestFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "n.loop")
	src := `
nest filetest
array A[N]
for i = N {
  S1: A[i] = 0
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	nest, env, err := LoadNestFile(path, map[string]int64{"N": 8})
	if err != nil {
		t.Fatal(err)
	}
	if nest.Name != "filetest" || env["N"] != 8 {
		t.Fatalf("nest %s env %v", nest.Name, env)
	}
	// Missing symbol binding is reported.
	if _, _, err := LoadNestFile(path, nil); err == nil {
		t.Error("unbound symbols accepted")
	}
	// Missing file.
	if _, _, err := LoadNestFile(filepath.Join(dir, "absent"), nil); err == nil {
		t.Error("missing file accepted")
	}
	// Unparsable file.
	bad := filepath.Join(dir, "bad.loop")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadNestFile(bad, nil); err == nil {
		t.Error("garbage accepted")
	}
}
