package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/validate"
)

// LoopOrderPoint records the model's and the simulator's miss counts for
// one loop order of the untiled matmul — an extension experiment showing
// the model ranks loop permutations correctly (the enabling property for
// using it inside a transforming compiler, the paper's motivation in §1).
type LoopOrderPoint struct {
	Order     string
	Predicted int64
	Simulated int64
}

// RunLoopOrder evaluates all six orders of the untiled i-j-k matmul at
// bound n and cache capacity cacheElems. simulate=false skips the exact
// traces.
func RunLoopOrder(n int64, cacheElems int64, simulate bool) ([]LoopOrderPoint, error) {
	base, err := kernels.Matmul()
	if err != nil {
		return nil, err
	}
	env := expr.Env{"N": n}
	orders := [][]string{
		{"i", "j", "k"}, {"i", "k", "j"}, {"j", "i", "k"},
		{"j", "k", "i"}, {"k", "i", "j"}, {"k", "j", "i"},
	}
	var out []LoopOrderPoint
	for _, ord := range orders {
		nest, err := loopir.PermutePerfect(base, ord)
		if err != nil {
			return nil, err
		}
		a, err := core.Analyze(nest)
		if err != nil {
			return nil, err
		}
		pt := LoopOrderPoint{
			Order:     fmt.Sprintf("%s-%s-%s", ord[0], ord[1], ord[2]),
			Simulated: -1,
		}
		pt.Predicted, err = a.PredictTotalFrame(a.SymTab().FrameOf(env), cacheElems)
		if err != nil {
			return nil, err
		}
		if simulate {
			cmps, err := validate.Run(a, env, []int64{cacheElems})
			if err != nil {
				return nil, err
			}
			pt.Simulated = cmps[0].SimulatedTotal
		}
		out = append(out, pt)
	}
	return out, nil
}
