package experiments

import (
	"sort"
	"testing"
)

// TestLoopOrderRanking: the model's ranking of the six matmul loop orders
// must agree with exact simulation on which orders tie and which extremes
// win (permutation pairs that only swap the outer two loops of a reuse
// pattern behave identically at this scale).
func TestLoopOrderRanking(t *testing.T) {
	const n = 48
	const cache = 256
	pts, err := RunLoopOrder(n, cache, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	// Model tracks the simulator within 10% + boundary slack on each order.
	for _, p := range pts {
		diff := p.Predicted - p.Simulated
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.10*float64(p.Simulated)+4*n*n {
			t.Errorf("%s: predicted %d vs simulated %d", p.Order, p.Predicted, p.Simulated)
		}
	}
	// The order minimizing predicted misses must also minimize (or tie
	// within slack) the simulated misses.
	byPred := append([]LoopOrderPoint(nil), pts...)
	sort.Slice(byPred, func(i, j int) bool { return byPred[i].Predicted < byPred[j].Predicted })
	bySim := append([]LoopOrderPoint(nil), pts...)
	sort.Slice(bySim, func(i, j int) bool { return bySim[i].Simulated < bySim[j].Simulated })
	bestPred := byPred[0]
	bestSim := bySim[0].Simulated
	if float64(bestPred.Simulated) > 1.1*float64(bestSim)+float64(4*n*n) {
		t.Errorf("model's best order %s simulates to %d, true best is %d",
			bestPred.Order, bestPred.Simulated, bestSim)
	}
}

func TestLoopOrderPredictionOnly(t *testing.T) {
	pts, err := RunLoopOrder(64, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Simulated != -1 {
			t.Errorf("unexpected simulation for %s", p.Order)
		}
		if p.Predicted <= 0 {
			t.Errorf("no prediction for %s", p.Order)
		}
	}
}
