package experiments

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/trace"
)

// OptGapPoint compares LRU (the paper's model) with Belady's offline
// optimum on the same trace — how much of the miss count is intrinsic to
// the access pattern versus attributable to the LRU policy. For well-tiled
// code the gap should be small (most misses are compulsory or capacity
// misses no policy can avoid); a large gap would mean tiling left policy
// head-room on the table.
type OptGapPoint struct {
	CacheKB   int64
	LRUMisses int64
	OptMisses int64
	Accesses  int64
}

// Gap returns (LRU − OPT) / OPT.
func (p OptGapPoint) Gap() float64 {
	if p.OptMisses == 0 {
		return 0
	}
	return float64(p.LRUMisses-p.OptMisses) / float64(p.OptMisses)
}

// RunOptGap materializes the kernel's trace once and evaluates both
// policies at each cache size. Sizes must keep the trace in memory — use
// reduced bounds.
func RunOptGap(kind string, n int64, tiles []int64, cacheKBs []int64) ([]OptGapPoint, error) {
	nest, env, err := BuildKernel(kind, n, tiles)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return nil, err
	}
	length, err := p.Length()
	if err != nil {
		return nil, err
	}
	if length > 1<<27 {
		return nil, fmt.Errorf("experiments: trace of %d accesses too large to materialize for OPT", length)
	}
	addrs := make([]int64, 0, length)
	var watches []int64
	for _, kb := range cacheKBs {
		watches = append(watches, KB(kb))
	}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.RunBlocks(trace.DefaultBlockSize, func(sites []int32, block []int64) {
		sim.AccessBlock(sites, block)
		addrs = append(addrs, block...)
	})
	res := sim.Results()

	var out []OptGapPoint
	for i, kb := range cacheKBs {
		opt, err := cachesim.OptMisses(addrs, watches[i])
		if err != nil {
			return nil, err
		}
		out = append(out, OptGapPoint{
			CacheKB:   kb,
			LRUMisses: res.Misses[i],
			OptMisses: opt,
			Accesses:  res.Accesses,
		})
	}
	return out, nil
}
