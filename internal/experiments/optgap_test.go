package experiments

import "testing"

func TestOptGapTiledMatmul(t *testing.T) {
	pts, err := RunOptGap("matmul", 48, []int64{8, 8, 8}, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.OptMisses > p.LRUMisses {
			t.Errorf("cache %dKB: OPT %d exceeds LRU %d", p.CacheKB, p.OptMisses, p.LRUMisses)
		}
		if p.OptMisses <= 0 || p.Accesses <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
		if g := p.Gap(); g < 0 {
			t.Errorf("negative gap %f", g)
		}
	}
}

func TestOptGapRejectsHugeTraces(t *testing.T) {
	if _, err := RunOptGap("matmul", 1024, []int64{64, 64, 64}, []int64{64}); err == nil {
		t.Fatal("huge trace accepted")
	}
}
