package experiments

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// PhasePoint is one point of the §6 phase curve: predicted misses of the
// tiled matmul as a uniform tile size grows at a fixed cache capacity. The
// curve exhibits the paper's four-phase structure — misses decrease
// monotonically within a phase and jump when a stack distance crosses the
// cache capacity.
type PhasePoint struct {
	Tile   int64
	Misses int64
}

// RunPhaseCurve sweeps uniform tile sizes (divisors of n) for the tiled
// matmul at the given cache capacity.
func RunPhaseCurve(n int64, cacheElems int64) ([]PhasePoint, error) {
	a, err := MatmulAnalysis()
	if err != nil {
		return nil, err
	}
	// One reused frame across the sweep: each tile size is three slot stores.
	tab := a.SymTab()
	f := tab.FrameOf(expr.Env{"N": n})
	slots := []int{tab.Slot("TI"), tab.Slot("TJ"), tab.Slot("TK")}
	var out []PhasePoint
	for t := int64(2); t <= n; t++ {
		if n%t != 0 {
			continue
		}
		for _, s := range slots {
			f.Set(s, t)
		}
		m, err := a.PredictTotalFrame(f, cacheElems)
		if err != nil {
			return nil, err
		}
		out = append(out, PhasePoint{Tile: t, Misses: m})
	}
	return out, nil
}

// PhaseJumps returns the indices where the miss count increases from one
// tile size to the next — the phase transitions.
func PhaseJumps(pts []PhasePoint) []int {
	var jumps []int
	for i := 1; i < len(pts); i++ {
		if pts[i].Misses > pts[i-1].Misses {
			jumps = append(jumps, i)
		}
	}
	return jumps
}

// FormatPhaseCurve renders the curve with transition markers.
func FormatPhaseCurve(pts []PhasePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s\n", "tile", "misses")
	prev := int64(-1)
	for _, p := range pts {
		marker := ""
		if prev >= 0 && p.Misses > prev {
			marker = "  <- phase transition (a stack distance crossed the cache)"
		}
		fmt.Fprintf(&b, "%-8d %-14d%s\n", p.Tile, p.Misses, marker)
		prev = p.Misses
	}
	return b.String()
}
