package experiments

import (
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/expr"

	"repro/internal/trace"
)

// TestPhaseCurveStructure verifies the §6 claims about the miss count as a
// function of tile size: the curve has at least one upward jump (a stack
// distance crossing the cache), and between jumps the misses are
// non-increasing.
func TestPhaseCurveStructure(t *testing.T) {
	const n, cache = 240, 2048
	pts, err := RunPhaseCurve(n, cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 8 {
		t.Fatalf("only %d points", len(pts))
	}
	jumps := PhaseJumps(pts)
	if len(jumps) == 0 {
		t.Fatalf("no phase transitions found:\n%s", FormatPhaseCurve(pts))
	}
	// Monotone non-increasing within phases.
	jumpSet := map[int]bool{}
	for _, j := range jumps {
		jumpSet[j] = true
	}
	for i := 1; i < len(pts); i++ {
		if jumpSet[i] {
			continue
		}
		if pts[i].Misses > pts[i-1].Misses {
			t.Errorf("non-monotone within a phase at tile %d", pts[i].Tile)
		}
	}
	out := FormatPhaseCurve(pts)
	if !strings.Contains(out, "phase transition") {
		t.Fatalf("missing transition marker:\n%s", out)
	}
}

// TestPhaseCurveMatchesSimulation: the jump positions predicted by the
// model must appear in the exact simulation as well (same direction of
// change between consecutive divisor tile sizes), at a reduced size.
func TestPhaseCurveMatchesSimulation(t *testing.T) {
	const n, cache = 48, 256
	a, err := MatmulAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	nest := a.Nest
	type pt struct {
		tile      int64
		pred, sim int64
	}
	var pts []pt
	for _, tile := range []int64{2, 4, 8, 16, 24, 48} {
		env := expr.Env{"N": n, "TI": tile, "TJ": tile, "TK": tile}
		pred, err := a.PredictTotal(env, cache)
		if err != nil {
			t.Fatal(err)
		}
		p, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), []int64{cache})
		p.Run(sim.Access)
		m, _ := sim.Results().MissesFor(cache)
		pts = append(pts, pt{tile, pred, m})
	}
	for i := 1; i < len(pts); i++ {
		predUp := pts[i].pred > pts[i-1].pred
		simUp := pts[i].sim > pts[i-1].sim
		if predUp != simUp {
			t.Errorf("tile %d→%d: model says %v, simulation says %v (pred %d→%d, sim %d→%d)",
				pts[i-1].tile, pts[i].tile, predUp, simUp,
				pts[i-1].pred, pts[i].pred, pts[i-1].sim, pts[i].sim)
		}
	}
}
