package expr

// This file provides sound-but-incomplete symbolic comparisons under the
// assumption that every symbol is a positive integer — which holds for all
// the model's symbols (loop bounds, tile sizes, trip counts). They are used
// to order stack-distance expressions without concrete bindings, e.g. to
// prove that one tiling's distances dominate another's.

// NonNegativeForPositive reports whether e is provably >= 0 whenever every
// symbol is >= 1. The check is sound, not complete: it returns true when
// the polynomial part, rewritten at the lower bound of each monomial,
// cannot be negative, treating opaque nodes conservatively.
func (e *Expr) NonNegativeForPositive() bool {
	switch e.kind {
	case KindInf:
		return true
	case KindPoly:
		// Sum of coefficients where negative monomials are taken at their
		// minimum (each variable = 1) and positive monomials likewise at
		// their minimum (each variable = 1): a lower bound of the value is
		// then the plain coefficient sum only when no positive coefficient
		// multiplies a variable... To stay sound we require: the constant
		// term plus the sum of negative coefficients (at minimum magnitude
		// it is -|c| times at least 1) is >= 0 when each negative monomial
		// is dominated pointwise. The simplest sound rule: all
		// coefficients non-negative, OR every negative monomial's key is
		// also present with a dominating positive coefficient on a
		// superset monomial. We implement the first plus the N*X - X >= 0
		// pattern (a negative monomial whose variables are a subset of a
		// positive monomial's with coefficient at least as large).
		type mono struct {
			key  string
			coef int64
		}
		var negs, poss []mono
		for k, c := range e.poly {
			if c < 0 {
				negs = append(negs, mono{k, c})
			} else if c > 0 {
				poss = append(poss, mono{k, c})
			}
		}
		if len(negs) == 0 {
			return true
		}
		// Try to cover each negative monomial with a distinct share of a
		// positive monomial that contains all its factors.
		remaining := map[string]int64{}
		for _, p := range poss {
			remaining[p.key] = p.coef
		}
		for _, n := range negs {
			covered := false
			for _, p := range poss {
				if remaining[p.key] >= -n.coef && containsFactors(p.key, n.key) {
					remaining[p.key] += n.coef // consume coverage
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	case KindDiv, KindCeilDiv:
		// floor/ceil of nonneg/positive stays nonneg.
		return e.args[0].NonNegativeForPositive() && e.args[1].NonNegativeForPositive()
	case KindMin, KindMax, KindSum, KindProd:
		for _, a := range e.args {
			if !a.NonNegativeForPositive() {
				return false
			}
		}
		return true
	}
	return false
}

// GEForPositive reports whether a >= b is provable for all positive integer
// bindings (sound, not complete): it checks a - b when both are polynomial,
// and falls back to structural equality otherwise.
func GEForPositive(a, b *Expr) bool {
	if a.IsInf() {
		return true
	}
	if b.IsInf() {
		return false
	}
	if a.kind == KindPoly && b.kind == KindPoly {
		return Sub(a, b).NonNegativeForPositive()
	}
	return a.Equal(b)
}

// containsFactors reports whether the monomial key `sup` contains every
// factor (with multiplicity) of `sub`.
func containsFactors(sup, sub string) bool {
	_, ok := removeFactors(splitKey(sup), splitKey(sub))
	return ok
}
