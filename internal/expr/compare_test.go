package expr

import (
	"math"
	"math/rand"
	"testing"
)

func TestNonNegativeForPositive(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	cases := []struct {
		e    *Expr
		want bool
	}{
		{Const(0), true},
		{Const(5), true},
		{Const(-1), false},
		{n, true},
		{Mul(n, ti), true},
		{Sub(n, Const(1000)), false}, // N could be 1
		{Sub(Mul(n, ti), ti), true},  // N·TI − TI = TI(N−1) >= 0
		{Sub(Mul(n, ti), n), true},
		{Sub(Mul(n, ti), Mul(Const(2), ti)), false}, // N·TI − 2TI < 0 at N=1
		{Sub(Mul(Const(2), n, ti), Mul(Const(2), ti)), true},
		{Sub(ti, Mul(n, ti)), false},
		{Add(Mul(n, ti), Const(-1)), true}, // N·TI >= 1 for positive ints
		{Inf(), true},
		{Div(Mul(n, ti), ti), true},
		{Min(n, ti), true},
		{Max(n, Const(0)), true},
	}
	for i, c := range cases {
		if got := c.e.NonNegativeForPositive(); got != c.want {
			t.Errorf("case %d (%s): got %v want %v", i, c.e, got, c.want)
		}
	}
}

// TestNonNegativeSound: whenever the check says yes, random positive
// bindings must agree.
func TestNonNegativeSound(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		e, _ := randExpr(r, 4)
		if !e.NonNegativeForPositive() {
			continue
		}
		for k := 0; k < 30; k++ {
			env := Env{
				"a": int64(1 + r.Intn(9)),
				"b": int64(1 + r.Intn(9)),
				"c": int64(1 + r.Intn(9)),
			}
			v, err := e.Eval(env)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 {
				t.Fatalf("claimed nonneg but %s = %d at %v", e, v, env)
			}
		}
	}
}

func TestGEForPositive(t *testing.T) {
	n, ti, tj := Var("N"), Var("TI"), Var("TJ")
	if !GEForPositive(Mul(n, ti), ti) {
		t.Error("N·TI >= TI should hold")
	}
	if GEForPositive(ti, Mul(n, ti)) {
		t.Error("TI >= N·TI should not be provable")
	}
	if !GEForPositive(Inf(), Mul(n, ti, tj)) {
		t.Error("inf >= anything")
	}
	if GEForPositive(Mul(n, ti), Inf()) {
		t.Error("finite >= inf should fail")
	}
	// SD dominance example: TI·TN + TN·TJ + TJ >= TN·TJ.
	tn := Var("TN")
	big := Add(Mul(ti, tn), Mul(tn, tj), tj)
	if !GEForPositive(big, Mul(tn, tj)) {
		t.Error("SD dominance failed")
	}
	// Opaque nodes: only equality.
	d := Div(n, ti)
	if !GEForPositive(d, d) {
		t.Error("x >= x for opaque")
	}
	if GEForPositive(d, Div(n, tj)) {
		t.Error("incomparable opaques accepted")
	}
}

// Edge cases around the Inf sentinel: Inf >= Inf must hold (both arms of
// the a/b Inf checks fire, a's wins), and nothing finite dominates Inf.
func TestGEForPositiveInfEdges(t *testing.T) {
	if !GEForPositive(Inf(), Inf()) {
		t.Error("inf >= inf should hold")
	}
	if GEForPositive(Zero(), Inf()) || GEForPositive(Const(math.MaxInt64), Inf()) {
		t.Error("finite constants must not dominate inf")
	}
	if !GEForPositive(Inf(), Zero()) {
		t.Error("inf >= 0 should hold")
	}
}

// Mixed polynomial/division comparisons fall back to structural equality:
// sound-but-incomplete means every true answer must be justified, and
// obviously-true-but-opaque orderings are allowed to come back false.
func TestGEForPositiveMixedPolyDiv(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	d := Div(n, ti)
	// floor(N/TI) <= N pointwise, but the comparison cannot prove it:
	// incomparable kinds fall back to Equal, which is false — sound.
	if GEForPositive(n, d) {
		t.Error("poly vs div must not be proven without polynomial reasoning")
	}
	if GEForPositive(d, n) {
		t.Error("div vs poly must not be proven")
	}
	// Sums mixing polys and divisions: identical structure is provable...
	s := Add(Mul(n, ti), Div(n, ti))
	if !GEForPositive(s, s) {
		t.Error("mixed sum >= itself should hold")
	}
	// ...but a strictly-smaller variant is not (opaque kinds, no Sub).
	s2 := Add(Mul(n, ti), Div(n, Mul(ti, ti)))
	if GEForPositive(s, s2) || GEForPositive(s2, s) {
		t.Error("distinct mixed sums must be incomparable")
	}
	// CeilDiv vs Div of the same operands are distinct nodes.
	if GEForPositive(CeilDiv(n, ti), Div(n, ti)) {
		t.Error("ceil vs floor must not compare equal")
	}
}

// NonNegativeForPositive on division nodes requires both operands
// nonnegative; a possibly-negative numerator poisons the division.
func TestNonNegativeForPositiveDivEdges(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	if !Div(Add(n, Const(1)), ti).NonNegativeForPositive() {
		t.Error("(N+1)/TI should be provably nonnegative")
	}
	if Div(Sub(n, Const(5)), ti).NonNegativeForPositive() {
		t.Error("(N-5)/TI must not be provable")
	}
	if Div(n, Sub(ti, Const(5))).NonNegativeForPositive() {
		t.Error("N/(TI-5) must not be provable")
	}
	if !CeilDiv(Mul(n, ti), Add(ti, Const(1))).NonNegativeForPositive() {
		t.Error("ceil(N*TI/(TI+1)) should be provably nonnegative")
	}
}
