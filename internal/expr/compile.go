package expr

import (
	"fmt"
	"math"
	"sort"
)

// Compilation of expressions into flat op-slice programs.
//
// The tree-walking Eval pays an interface-free but still branchy and
// map-heavy price per node: every polynomial term looks its variables up in
// a map[string]int64, every opaque node recurses. The §6 tile search and
// the SMP sweeps evaluate the same few hundred expressions under millions
// of environments, so the per-evaluation constant matters more than
// anything else. Compile flattens an expression once into a linear
// instruction slice over SymTab slots; Program.Eval then runs it as a small
// stack machine over a Frame — no maps, no recursion, no allocation (the
// scratch stack lives in the Frame and is reused).
//
// Semantics are bit-for-bit those of (*Expr).Eval, including the quirks the
// differential fuzz test pins down:
//
//   - Inf evaluates to math.MaxInt64 and is absorbed by sums, products and
//     divisions exactly as the tree walk absorbs it — including the
//     short-circuit: a sum or product stops evaluating at its first
//     MaxInt64 operand, so errors lurking in later operands never surface.
//     Jump instructions reproduce that control flow.
//   - An unbound slot yields *ErrUnbound with the symbol's name.
//   - Division by zero yields the same "division by zero evaluating E"
//     error, rendered from the same subexpression.
//   - Polynomial arithmetic is plain wrapping int64 arithmetic with no Inf
//     checks, exactly like the tree walk's poly case. Monomials are
//     evaluated in sorted-key order; wrapping addition is commutative, so
//     the result matches the tree walk's map-order iteration.

type opcode uint8

const (
	opConst          opcode = iota // push imm
	opLoad                         // push frame value of slot a; ErrUnbound if unbound
	opInf                          // push math.MaxInt64
	opAdd                          // pop y, x; push x+y
	opMul                          // pop y, x; push x*y
	opDiv                          // pop y, x; floor(x/y); zero check, Inf propagation
	opCeilDiv                      // pop y, x; ceil(x/y); zero check, Inf propagation
	opMin                          // pop y, x; push min(x, y)
	opMax                          // pop y, x; push max(x, y)
	opJmpIfMax                     // if top == MaxInt64: pc = a (top stays as result)
	opJmpIfMaxSquash               // if top == MaxInt64: pop the accumulator under it, pc = a
)

type instr struct {
	op  opcode
	a   int32 // slot (opLoad), jump target, or aux string index (divisions)
	imm int64 // constant (opConst)
}

// Program is one expression compiled against a SymTab. Programs are
// immutable and safe for concurrent evaluation as long as each goroutine
// brings its own Frame.
type Program struct {
	tab      *SymTab
	code     []instr
	divs     []string // rendering of each division node, for error messages
	maxStack int
	src      *Expr
}

// Compile flattens e into a program over tab's slots, assigning slots for
// any symbols tab has not seen yet (compile order therefore fixes the
// name→slot mapping). Compiling nil returns nil; a nil *Program is not
// evaluable.
func Compile(e *Expr, tab *SymTab) *Program {
	if e == nil {
		return nil
	}
	c := &compiler{tab: tab}
	c.emit(e)
	return &Program{tab: tab, code: c.code, divs: c.divs, maxStack: c.maxDepth, src: e}
}

// Src returns the expression the program was compiled from.
func (p *Program) Src() *Expr { return p.src }

// Tab returns the symbol table the program's slots index.
func (p *Program) Tab() *SymTab { return p.tab }

type compiler struct {
	tab      *SymTab
	code     []instr
	divs     []string
	depth    int
	maxDepth int
}

func (c *compiler) push(op opcode, a int32, imm int64) {
	c.code = append(c.code, instr{op: op, a: a, imm: imm})
}

// note tracks stack depth: d is the net effect of the last instruction.
func (c *compiler) note(d int) {
	c.depth += d
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *compiler) emit(e *Expr) {
	switch e.kind {
	case KindInf:
		c.push(opInf, 0, 0)
		c.note(1)
	case KindPoly:
		c.emitPoly(e.poly)
	case KindDiv, KindCeilDiv:
		c.emit(e.args[0])
		c.emit(e.args[1])
		op := opDiv
		if e.kind == KindCeilDiv {
			op = opCeilDiv
		}
		c.divs = append(c.divs, e.str)
		c.push(op, int32(len(c.divs)-1), 0)
		c.note(-1)
	case KindMin, KindMax:
		op := opMin
		if e.kind == KindMax {
			op = opMax
		}
		c.emit(e.args[0])
		for _, a := range e.args[1:] {
			c.emit(a)
			c.push(op, 0, 0)
			c.note(-1)
		}
	case KindSum, KindProd:
		// Fold left with the tree walk's per-operand Inf short-circuit:
		// check each operand as it is produced, before accumulating it.
		op := opAdd
		if e.kind == KindProd {
			op = opMul
		}
		var jumps []int // indices of jump instructions to patch to the end
		c.emit(e.args[0])
		jumps = append(jumps, len(c.code))
		c.push(opJmpIfMax, 0, 0)
		for _, a := range e.args[1:] {
			c.emit(a)
			jumps = append(jumps, len(c.code))
			c.push(opJmpIfMaxSquash, 0, 0)
			c.push(op, 0, 0)
			c.note(-1)
		}
		end := int32(len(c.code))
		for _, j := range jumps {
			c.code[j].a = end
		}
	default:
		panic("expr: unknown kind")
	}
}

// emitPoly emits the sum-of-monomials evaluation in sorted-key order:
// for each monomial, push the coefficient and multiply in each factor,
// then fold the terms with plain additions (no Inf checks — matching the
// tree walk's poly case, which uses raw wrapping arithmetic).
func (c *compiler) emitPoly(p poly) {
	if len(p) == 0 {
		c.push(opConst, 0, 0)
		c.note(1)
		return
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		c.push(opConst, 0, p[k])
		c.note(1)
		for _, name := range splitKey(k) {
			c.push(opLoad, int32(c.tab.Slot(name)), 0)
			c.note(1)
			c.push(opMul, 0, 0)
			c.note(-1)
		}
		if i > 0 {
			c.push(opAdd, 0, 0)
			c.note(-1)
		}
	}
}

// Eval runs the program against f, which must stem from the same SymTab the
// program was compiled against. It allocates nothing once f's scratch stack
// has grown to the program's depth.
func (p *Program) Eval(f *Frame) (int64, error) {
	if f.tab != p.tab {
		panic("expr: Program.Eval with a Frame from a different SymTab")
	}
	if cap(f.stack) < p.maxStack {
		f.stack = make([]int64, p.maxStack)
	}
	stack := f.stack[:cap(f.stack)]
	vals, bound := f.vals, f.bound
	sp := 0
	code := p.code
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opConst:
			stack[sp] = in.imm
			sp++
		case opLoad:
			slot := int(in.a)
			if slot >= len(vals) || !bound[slot] {
				return 0, &ErrUnbound{p.tab.Name(slot)}
			}
			stack[sp] = vals[slot]
			sp++
		case opInf:
			stack[sp] = math.MaxInt64
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv, opCeilDiv:
			sp--
			b := stack[sp]
			a := stack[sp-1]
			if b == 0 {
				return 0, fmt.Errorf("expr: division by zero evaluating %s", p.divs[in.a])
			}
			if a == math.MaxInt64 {
				stack[sp-1] = math.MaxInt64
			} else if in.op == opCeilDiv {
				stack[sp-1] = ceilDiv64(a, b)
			} else {
				stack[sp-1] = floorDiv64(a, b)
			}
		case opMin:
			sp--
			if stack[sp] < stack[sp-1] {
				stack[sp-1] = stack[sp]
			}
		case opMax:
			sp--
			if stack[sp] > stack[sp-1] {
				stack[sp-1] = stack[sp]
			}
		case opJmpIfMax:
			if stack[sp-1] == math.MaxInt64 {
				pc = int(in.a) - 1
			}
		case opJmpIfMaxSquash:
			if stack[sp-1] == math.MaxInt64 {
				sp--
				stack[sp-1] = math.MaxInt64
				pc = int(in.a) - 1
			}
		}
	}
	return stack[0], nil
}

// EvalEnv evaluates the program under an Env by way of a throwaway frame —
// the compatibility adapter for callers not yet holding a Frame. Hot paths
// should hold a Frame and call Eval.
func (p *Program) EvalEnv(env Env) (int64, error) {
	return p.Eval(p.tab.FrameOf(env))
}
