package expr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Differential testing of compiled programs against the tree-walking Eval.
//
// The property: for any expression and any (possibly partial) environment,
// Program.Eval and Expr.Eval agree on the value when both succeed, and on
// the *class* of failure otherwise. Exact error equality holds for division
// by zero (deterministic rendering); for unbound symbols only the type is
// compared, because the tree walk discovers the missing symbol in Go map
// iteration order while the compiled form uses sorted monomial order — the
// same evaluations fail, but possibly blaming a different symbol of the
// same polynomial.

var fuzzSyms = []string{"N", "M", "TI", "TJ", "TK", "P"}

// genExpr derives a random expression from r, exercising every node kind
// including Inf (which the constructors may fold away) and divisions that
// can hit zero at evaluation time.
func genExpr(r *rand.Rand, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return Const(int64(r.Intn(9) - 3))
		case 1:
			return Const(int64(math.MaxInt64)) // drive the short-circuit paths
		case 2:
			return Inf()
		default:
			return Var(fuzzSyms[r.Intn(len(fuzzSyms))])
		}
	}
	a := genExpr(r, depth-1)
	b := genExpr(r, depth-1)
	switch r.Intn(7) {
	case 0:
		return Add(a, b)
	case 1:
		return Sub(a, b)
	case 2:
		return Mul(a, b)
	case 3:
		return Div(a, nonConstZero(b))
	case 4:
		return CeilDiv(a, nonConstZero(b))
	case 5:
		return Min(a, b, genExpr(r, depth-1))
	default:
		return Max(a, b, genExpr(r, depth-1))
	}
}

// nonConstZero swaps a constant-zero divisor for 1: Div panics on a constant
// zero denominator at construction, which is not the behavior under test.
// Symbolic divisors that *evaluate* to zero stay, deliberately.
func nonConstZero(e *Expr) *Expr {
	if v, ok := e.ConstVal(); ok && v == 0 {
		return One()
	}
	return e
}

func genEnv(r *rand.Rand) Env {
	env := Env{}
	for _, s := range fuzzSyms {
		switch r.Intn(6) {
		case 0: // leave unbound
		case 1:
			env[s] = 0 // provoke division by zero
		case 2:
			env[s] = math.MaxInt64
		default:
			env[s] = int64(r.Intn(13) - 4)
		}
	}
	return env
}

func checkCompiledVsTree(t *testing.T, e *Expr, env Env) {
	t.Helper()
	tab := NewSymTab()
	p := Compile(e, tab)
	f := tab.FrameOf(env)

	tv, tErr := e.Eval(env)
	cv, cErr := p.Eval(f)

	switch {
	case tErr == nil && cErr == nil:
		if tv != cv {
			t.Fatalf("value mismatch for %s under %v: tree=%d compiled=%d", e, env, tv, cv)
		}
	case tErr != nil && cErr != nil:
		var tu, cu *ErrUnbound
		tIsU, cIsU := errors.As(tErr, &tu), errors.As(cErr, &cu)
		if tIsU != cIsU {
			t.Fatalf("error class mismatch for %s under %v: tree=%v compiled=%v", e, env, tErr, cErr)
		}
		if !tIsU && tErr.Error() != cErr.Error() {
			t.Fatalf("error text mismatch for %s under %v:\ntree:     %v\ncompiled: %v", e, env, tErr, cErr)
		}
		if tIsU {
			if _, bound := env[cu.Name]; bound {
				t.Fatalf("compiled blamed bound symbol %q for %s under %v", cu.Name, e, env)
			}
		}
	default:
		t.Fatalf("error occurrence mismatch for %s under %v: tree=%v compiled=%v", e, env, tErr, cErr)
	}

	// Re-evaluating on the same frame must be stable (the scratch stack is
	// reused; stale state must not leak between runs).
	cv2, cErr2 := p.Eval(f)
	if (cErr2 == nil) != (cErr == nil) || cv2 != cv {
		t.Fatalf("compiled eval not idempotent for %s: first=(%d,%v) second=(%d,%v)", e, cv, cErr, cv2, cErr2)
	}
}

// TestCompiledVsTreeRandom is the always-on property test: a few thousand
// random (expression, environment) pairs per run of go test.
func TestCompiledVsTreeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		e := genExpr(r, 4)
		checkCompiledVsTree(t, e, genEnv(r))
	}
}

// FuzzCompiledVsTree lets the fuzzer drive the generator seed and depth for
// longer explorations (make fuzz-smoke style).
func FuzzCompiledVsTree(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(5))
	f.Add(int64(-7), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, depth uint8) {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, int(depth%6))
		checkCompiledVsTree(t, e, genEnv(r))
	})
}
