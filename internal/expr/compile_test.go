package expr

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCompilePolyMatchesEval(t *testing.T) {
	n, ti, tj := Var("N"), Var("TI"), Var("TJ")
	e := Add(Mul(n, ti), Mul(Const(3), ti, tj), Mul(Const(-2), n), Const(7))
	env := Env{"N": 11, "TI": 5, "TJ": 4}

	tab := NewSymTab()
	p := Compile(e, tab)
	want := e.MustEval(env)
	got, err := p.Eval(tab.FrameOf(env))
	if err != nil {
		t.Fatalf("compiled eval: %v", err)
	}
	if got != want {
		t.Fatalf("compiled %s = %d, tree = %d", e, got, want)
	}
}

func TestCompileNil(t *testing.T) {
	if p := Compile(nil, NewSymTab()); p != nil {
		t.Fatalf("Compile(nil) = %v, want nil", p)
	}
}

func TestCompileDivisionByZero(t *testing.T) {
	e := Div(Var("N"), Sub(Var("D"), Const(1)))
	tab := NewSymTab()
	p := Compile(e, tab)
	f := tab.FrameOf(Env{"N": 10, "D": 1})
	_, cErr := p.Eval(f)
	_, tErr := e.Eval(Env{"N": 10, "D": 1})
	if cErr == nil || tErr == nil {
		t.Fatalf("expected division-by-zero from both, got compiled=%v tree=%v", cErr, tErr)
	}
	if cErr.Error() != tErr.Error() {
		t.Fatalf("error mismatch:\ncompiled: %v\ntree:     %v", cErr, tErr)
	}
	if !strings.Contains(cErr.Error(), "division by zero evaluating") {
		t.Fatalf("unexpected error text %q", cErr)
	}
}

func TestCompileUnbound(t *testing.T) {
	e := Add(Var("N"), Var("M"))
	tab := NewSymTab()
	p := Compile(e, tab)
	f := tab.FrameOf(Env{"N": 4})
	_, err := p.Eval(f)
	var ub *ErrUnbound
	if !errors.As(err, &ub) {
		t.Fatalf("expected *ErrUnbound, got %v", err)
	}
	if ub.Name != "M" {
		t.Fatalf("unbound name = %q, want M", ub.Name)
	}
}

func TestCompileInfPropagation(t *testing.T) {
	tab := NewSymTab()
	cases := []*Expr{
		Inf(),
		Add(Inf(), Var("N")),
		Min(Inf(), Var("N")),
		Max(Inf(), Var("N")),
		Div(Inf(), Var("N")),
		Min(Div(Var("N"), Var("T")), Inf()),
	}
	env := Env{"N": 9, "T": 2}
	for _, e := range cases {
		p := Compile(e, tab)
		want := e.MustEval(env)
		got, err := p.Eval(tab.FrameOf(env))
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if got != want {
			t.Fatalf("%s: compiled %d, tree %d", e, got, want)
		}
	}
}

// The tree walk short-circuits sums and products at the first MaxInt64
// operand, never evaluating — and never erroring on — later operands. The
// compiled form must reproduce that control flow, not just the value.
func TestCompileSumShortCircuitSkipsLaterErrors(t *testing.T) {
	// Inf folds at construction (Add/Mul absorb it), so build a Sum/Prod
	// whose first operand *evaluates* to MaxInt64 at runtime — a variable
	// bound to MaxInt64 — and whose second operand divides by zero. The
	// sorted canonical order puts "HUGE" before "floor(...)", so the tree
	// walk hits MaxInt64 first and never sees the division.
	big := Var("HUGE")
	boom := Div(Var("N"), Sub(Var("Z"), Var("Z2"))) // zero denominator when Z==Z2
	for _, mk := range []func() *Expr{
		func() *Expr { return Add(big, boom) },
		func() *Expr { return Mul(big, boom) },
	} {
		e := mk()
		if e.Kind() != KindSum && e.Kind() != KindProd {
			t.Fatalf("test expression folded to %v; want opaque sum/prod", e.Kind())
		}
		env := Env{"HUGE": math.MaxInt64, "N": 5, "Z": 2, "Z2": 2}
		want, tErr := e.Eval(env)
		if tErr != nil {
			t.Fatalf("tree eval of %s errored: %v (short-circuit broken in tree walk?)", e, tErr)
		}
		if want != math.MaxInt64 {
			t.Fatalf("tree eval of %s = %d, want MaxInt64", e, want)
		}
		tab := NewSymTab()
		p := Compile(e, tab)
		got, cErr := p.Eval(tab.FrameOf(env))
		if cErr != nil {
			t.Fatalf("compiled eval of %s errored: %v; tree short-circuited", e, cErr)
		}
		if got != want {
			t.Fatalf("compiled %s = %d, tree = %d", e, got, want)
		}
	}
}

func TestCompileSumLaterOperandInf(t *testing.T) {
	// MaxInt64 arriving in a non-first operand must squash the accumulator.
	// "floor(N / T)" sorts before "floor(ZBIG / P)", so the huge value is
	// the second operand of the canonical sum.
	big := Div(Var("ZBIG"), Var("P"))
	e := Add(Div(Var("N"), Var("T")), big)
	if e.Kind() != KindSum {
		t.Fatalf("expression folded to %v; want KindSum", e.Kind())
	}
	env := Env{"N": 12, "T": 5, "ZBIG": math.MaxInt64, "P": 1}
	tab := NewSymTab()
	p := Compile(e, tab)
	want := e.MustEval(env)
	got, err := p.Eval(tab.FrameOf(env))
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if got != want || got != math.MaxInt64 {
		t.Fatalf("compiled %s = %d, tree = %d, want MaxInt64", e, got, want)
	}
}

func TestCompileFrameMismatchPanics(t *testing.T) {
	p := Compile(Var("N"), NewSymTab())
	other := NewSymTab().NewFrame()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on frame from a different SymTab")
		}
	}()
	p.Eval(other)
}

func TestCompileEvalEnvAdapter(t *testing.T) {
	e := Min(Mul(Var("N"), Var("N")), CeilDiv(Var("N"), Const(3)))
	tab := NewSymTab()
	p := Compile(e, tab)
	env := Env{"N": 10}
	got, err := p.EvalEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	if want := e.MustEval(env); got != want {
		t.Fatalf("EvalEnv = %d, want %d", got, want)
	}
}

func TestCompiledEvalAllocFree(t *testing.T) {
	n, ti, tj := Var("N"), Var("TI"), Var("TJ")
	e := Min(Add(Mul(n, ti), Mul(ti, tj), Const(1)), CeilDiv(Mul(n, n), tj))
	tab := NewSymTab()
	p := Compile(e, tab)
	f := tab.NewFrame()
	f.Bind(Env{"N": 64, "TI": 8, "TJ": 4})
	if _, err := p.Eval(f); err != nil { // warm the scratch stack
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Eval(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled eval allocates %.1f objects/op, want 0", allocs)
	}
}

func TestProgramAccessors(t *testing.T) {
	e := Add(Var("N"), Const(1))
	tab := NewSymTab()
	p := Compile(e, tab)
	if p.Src() != e {
		t.Fatalf("Src mismatch")
	}
	if p.Tab() != tab {
		t.Fatalf("Tab mismatch")
	}
}
