package expr

import (
	"sort"
	"strconv"
	"strings"
)

// Key renders the bindings of the given symbols as a canonical, hashable
// string, e.g. "TI=32 TJ=8". Symbols are rendered in the order given (pass a
// sorted slice for a canonical key); a symbol with no binding renders as
// "name=?" so that partial environments never collide with complete ones.
//
// Key is the substrate of the model's evaluation caches: a component whose
// expressions mention only a subset of the symbols can be memoized on the
// key of that subset, so that re-evaluations under environments that differ
// only in irrelevant symbols hit the cache.
func (env Env) Key(names []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
		b.WriteByte('=')
		if v, ok := env[n]; ok {
			b.WriteString(strconv.FormatInt(v, 10))
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// FullKey is Key over every bound symbol, in sorted order.
func (env Env) FullKey() string {
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	return env.Key(names)
}

// Clone returns an independent copy of the environment.
func (env Env) Clone() Env {
	out := make(Env, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Merged returns a copy of env with the bindings of over applied on top.
// Neither input is modified.
func (env Env) Merged(over Env) Env {
	out := make(Env, len(env)+len(over))
	for k, v := range env {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}
