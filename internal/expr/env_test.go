package expr

import "testing"

func TestEnvKey(t *testing.T) {
	env := Env{"TI": 32, "TJ": 8, "N": 256}
	if got := env.Key([]string{"TI", "TJ"}); got != "TI=32 TJ=8" {
		t.Errorf("Key = %q", got)
	}
	if got := env.Key(nil); got != "" {
		t.Errorf("empty Key = %q", got)
	}
	// Missing bindings must not collide with bound ones.
	bound := Env{"TI": 32, "TK": 1}
	if env.Key([]string{"TI", "TK"}) == bound.Key([]string{"TI", "TK"}) {
		t.Error("missing binding collides with a bound value")
	}
	if got := env.Key([]string{"TK"}); got != "TK=?" {
		t.Errorf("missing Key = %q", got)
	}
}

func TestEnvFullKeySorted(t *testing.T) {
	a := Env{"B": 2, "A": 1}
	b := Env{"A": 1, "B": 2}
	if a.FullKey() != b.FullKey() {
		t.Errorf("FullKey not canonical: %q vs %q", a.FullKey(), b.FullKey())
	}
	if got := a.FullKey(); got != "A=1 B=2" {
		t.Errorf("FullKey = %q", got)
	}
}

func TestEnvCloneAndMerged(t *testing.T) {
	base := Env{"N": 8, "T": 2}
	c := base.Clone()
	c["N"] = 99
	if base["N"] != 8 {
		t.Error("Clone aliases the original")
	}
	m := base.Merged(Env{"T": 4, "X": 1})
	if m["N"] != 8 || m["T"] != 4 || m["X"] != 1 {
		t.Errorf("Merged = %v", m)
	}
	if base["T"] != 2 {
		t.Error("Merged modified the receiver")
	}
}
