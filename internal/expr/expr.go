// Package expr implements a small exact symbolic expression engine over
// 64-bit integers. It is the algebraic substrate of the cache-miss model:
// loop trip counts, reference instance counts, and stack-distance formulas
// are all values of type Expr, built from integer constants, named symbols
// (loop bounds such as N, tile sizes such as TI), addition, multiplication,
// exact and ceiling division, and min/max. A distinguished Inf value
// represents the infinite stack distance of a first-touch reference.
//
// Expressions are immutable. The package canonicalizes polynomial parts into
// a sum-of-monomials normal form so that structurally different but
// algebraically equal polynomial expressions compare equal and print
// identically. Non-polynomial operations (division, min, max) are kept as
// opaque nodes whose operands are themselves normalized.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind discriminates the node type of an Expr.
type Kind int

const (
	// KindPoly is a polynomial: a constant, a variable, or any sum of
	// products of those.
	KindPoly Kind = iota
	// KindDiv is integer division (floor) of two subexpressions.
	KindDiv
	// KindCeilDiv is ceiling integer division of two subexpressions.
	KindCeilDiv
	// KindMin is the minimum of two or more subexpressions.
	KindMin
	// KindMax is the maximum of two or more subexpressions.
	KindMax
	// KindInf is the positive infinity sentinel (first-touch stack
	// distance). Arithmetic with Inf yields Inf.
	KindInf
	// KindSum is a sum whose operands are not all polynomial (for
	// example N*TI + floor(N/TJ)). Purely polynomial sums collapse into
	// KindPoly.
	KindSum
	// KindProd is a product whose operands are not all polynomial.
	KindProd
)

// Expr is an immutable symbolic integer expression.
//
// The zero value of *Expr is not meaningful; construct values with Const,
// Var, Add, Mul, Sub, Div, CeilDiv, Min, Max and Inf.
type Expr struct {
	kind Kind
	// poly holds the canonical monomial form when kind == KindPoly.
	poly poly
	// args holds operands for Div, CeilDiv, Min, Max, Sum, Prod.
	args []*Expr
	// str caches the canonical rendering, used for equality and ordering.
	str string
}

// Env binds symbol names to concrete integer values for evaluation.
type Env map[string]int64

// monomial is a product of variables (with multiplicity), identified by the
// sorted, "*"-joined list of factor names. The empty key is the constant
// monomial.
type poly map[string]int64 // monomial key -> coefficient

// ErrUnbound is returned by Eval when a symbol has no binding in the Env.
type ErrUnbound struct{ Name string }

func (e *ErrUnbound) Error() string { return "expr: unbound symbol " + e.Name }

var (
	infExpr  = &Expr{kind: KindInf, str: "inf"}
	zeroExpr = newPoly(poly{})
	oneExpr  = newPoly(poly{"": 1})
)

// Inf returns the infinity sentinel.
func Inf() *Expr { return infExpr }

// Zero returns the constant 0.
func Zero() *Expr { return zeroExpr }

// One returns the constant 1.
func One() *Expr { return oneExpr }

// Const returns a constant expression.
func Const(v int64) *Expr {
	switch v {
	case 0:
		return zeroExpr
	case 1:
		return oneExpr
	}
	return newPoly(poly{"": v})
}

// Var returns the named symbol as an expression. The name must be non-empty
// and must not contain the characters '*', '+', or whitespace, which are
// reserved by the canonical printer.
func Var(name string) *Expr {
	if name == "" || strings.ContainsAny(name, "*+ \t\n") {
		panic("expr: invalid variable name " + fmt.Sprintf("%q", name))
	}
	return newPoly(poly{name: 1})
}

func newPoly(p poly) *Expr {
	for k, c := range p {
		if c == 0 {
			delete(p, k)
		}
	}
	e := &Expr{kind: KindPoly, poly: p}
	e.str = e.render()
	return intern(e)
}

// Kind reports the node kind of e.
func (e *Expr) Kind() Kind { return e.kind }

// IsInf reports whether e is the infinity sentinel.
func (e *Expr) IsInf() bool { return e.kind == KindInf }

// IsZero reports whether e is the constant zero.
func (e *Expr) IsZero() bool { return e.kind == KindPoly && len(e.poly) == 0 }

// ConstVal reports the constant value of e, if e is a constant polynomial.
func (e *Expr) ConstVal() (int64, bool) {
	if e.kind != KindPoly {
		return 0, false
	}
	switch len(e.poly) {
	case 0:
		return 0, true
	case 1:
		if c, ok := e.poly[""]; ok {
			return c, true
		}
	}
	return 0, false
}

// Equal reports structural equality of the canonical forms of e and o.
// Because every constructor hash-conses its result (intern.go), equal
// canonical forms are the same node and the comparison is a pointer test;
// the rendering comparison remains only as a safety net for nodes of
// distinct kinds that happen to share a rendering (which the intern key
// keeps distinct on purpose).
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return false
	}
	return e.kind == o.kind && e.str == o.str
}

// String returns the canonical rendering of e. Monomials print in
// lexicographic order, e.g. "TI*TN + 2*TI + 1".
func (e *Expr) String() string { return e.str }

// Vars adds every symbol appearing in e to the set vars.
func (e *Expr) Vars(vars map[string]bool) {
	switch e.kind {
	case KindPoly:
		for key := range e.poly {
			if key == "" {
				continue
			}
			for _, name := range strings.Split(key, "*") {
				vars[name] = true
			}
		}
	case KindInf:
	default:
		for _, a := range e.args {
			a.Vars(vars)
		}
	}
}

// HasAnyVar reports whether e mentions any of the given symbol names.
func (e *Expr) HasAnyVar(names map[string]bool) bool {
	vars := map[string]bool{}
	e.Vars(vars)
	for n := range vars {
		if names[n] {
			return true
		}
	}
	return false
}

// Add returns the sum of the given expressions. Polynomial operands are
// merged into canonical form; Inf absorbs everything.
func Add(xs ...*Expr) *Expr {
	acc := poly{}
	var rest []*Expr
	for _, x := range xs {
		if x == nil {
			panic("expr: Add of nil")
		}
		switch x.kind {
		case KindInf:
			return infExpr
		case KindPoly:
			for k, c := range x.poly {
				acc[k] += c
			}
		case KindSum:
			// Flatten nested non-poly sums.
			for _, a := range x.args {
				if a.kind == KindPoly {
					for k, c := range a.poly {
						acc[k] += c
					}
				} else {
					rest = append(rest, a)
				}
			}
		default:
			rest = append(rest, x)
		}
	}
	p := newPoly(acc)
	if len(rest) == 0 {
		return p
	}
	args := rest
	if !p.IsZero() {
		args = append([]*Expr{p}, rest...)
	} else if len(rest) == 1 {
		return rest[0]
	}
	sortArgs(args)
	return newOpaque(KindSum, args)
}

// Sub returns a - b.
func Sub(a, b *Expr) *Expr {
	return Add(a, Mul(Const(-1), b))
}

// Mul returns the product of the given expressions. Products of polynomials
// are expanded into canonical form; Inf absorbs non-zero operands; zero
// annihilates.
func Mul(xs ...*Expr) *Expr {
	accum := poly{"": 1}
	var rest []*Expr
	sawInf := false
	for _, x := range xs {
		if x == nil {
			panic("expr: Mul of nil")
		}
		switch x.kind {
		case KindInf:
			sawInf = true
		case KindPoly:
			if len(x.poly) == 0 {
				return zeroExpr
			}
			accum = mulPoly(accum, x.poly)
		case KindProd:
			for _, a := range x.args {
				if a.kind == KindPoly {
					accum = mulPoly(accum, a.poly)
				} else {
					rest = append(rest, a)
				}
			}
		default:
			rest = append(rest, x)
		}
	}
	if sawInf {
		return infExpr
	}
	p := newPoly(accum)
	if len(rest) == 0 {
		return p
	}
	if p.IsZero() {
		return zeroExpr
	}
	args := rest
	if !p.Equal(oneExpr) {
		args = append([]*Expr{p}, rest...)
	} else if len(rest) == 1 {
		return rest[0]
	}
	sortArgs(args)
	return newOpaque(KindProd, args)
}

// Div returns floor(a/b). Constant operands fold; a/1 simplifies to a;
// 0/b simplifies to 0. Division of a polynomial by a single monomial that
// divides every term exactly also folds (e.g. (N*TI)/TI -> N).
func Div(a, b *Expr) *Expr {
	return divLike(KindDiv, a, b)
}

// CeilDiv returns ceil(a/b), folding constants and exact divisions.
func CeilDiv(a, b *Expr) *Expr {
	return divLike(KindCeilDiv, a, b)
}

func divLike(kind Kind, a, b *Expr) *Expr {
	if a.kind == KindInf {
		return infExpr
	}
	if bv, ok := b.ConstVal(); ok {
		if bv == 0 {
			panic("expr: division by constant zero")
		}
		if bv == 1 {
			return a
		}
		if av, ok := a.ConstVal(); ok {
			if kind == KindCeilDiv {
				return Const(ceilDiv64(av, bv))
			}
			return Const(floorDiv64(av, bv))
		}
	}
	if a.IsZero() {
		return zeroExpr
	}
	if q, ok := exactPolyDiv(a, b); ok {
		return q
	}
	return newOpaque(kind, []*Expr{a, b})
}

// exactPolyDiv attempts a/b where a and b are polynomials and b is a single
// monomial dividing every term of a. This keeps expressions like
// (N*TI + TI*TJ)/TI in the simple form N + TJ.
func exactPolyDiv(a, b *Expr) (*Expr, bool) {
	if a.kind != KindPoly || b.kind != KindPoly || len(b.poly) != 1 {
		return nil, false
	}
	var bKey string
	var bCoef int64
	for k, c := range b.poly {
		bKey, bCoef = k, c
	}
	if bCoef == 0 {
		return nil, false
	}
	bFactors := splitKey(bKey)
	out := poly{}
	for k, c := range a.poly {
		if c%bCoef != 0 {
			return nil, false
		}
		rem, ok := removeFactors(splitKey(k), bFactors)
		if !ok {
			return nil, false
		}
		out[joinKey(rem)] += c / bCoef
	}
	return newPoly(out), true
}

// Min returns the minimum of the given expressions, folding constants and
// identical operands.
func Min(xs ...*Expr) *Expr { return minMax(KindMin, xs) }

// Max returns the maximum of the given expressions, folding constants and
// identical operands. Inf dominates Max and is absorbed by Min only when it
// is the sole operand.
func Max(xs ...*Expr) *Expr { return minMax(KindMax, xs) }

func minMax(kind Kind, xs []*Expr) *Expr {
	if len(xs) == 0 {
		panic("expr: min/max of nothing")
	}
	seen := map[string]bool{}
	var args []*Expr
	var cst *int64
	for _, x := range xs {
		if x.kind == KindInf {
			if kind == KindMax {
				return infExpr
			}
			continue // Inf never wins a Min with other operands present.
		}
		if v, ok := x.ConstVal(); ok {
			if cst == nil {
				cst = &v
			} else if kind == KindMin && v < *cst {
				cst = &v
			} else if kind == KindMax && v > *cst {
				cst = &v
			}
			continue
		}
		if !seen[x.str] {
			seen[x.str] = true
			args = append(args, x)
		}
	}
	if cst != nil {
		args = append(args, Const(*cst))
	}
	if len(args) == 0 {
		return infExpr // Min of only Infs.
	}
	if len(args) == 1 {
		return args[0]
	}
	sortArgs(args)
	return newOpaque(kind, args)
}

func newOpaque(kind Kind, args []*Expr) *Expr {
	e := &Expr{kind: kind, args: args}
	e.str = e.render()
	return intern(e)
}

// Eval evaluates e under env. It returns ErrUnbound if a symbol is missing.
// The infinity sentinel evaluates to math.MaxInt64.
func (e *Expr) Eval(env Env) (int64, error) {
	switch e.kind {
	case KindInf:
		return math.MaxInt64, nil
	case KindPoly:
		var total int64
		for key, coef := range e.poly {
			term := coef
			if key != "" {
				for _, name := range strings.Split(key, "*") {
					v, ok := env[name]
					if !ok {
						return 0, &ErrUnbound{name}
					}
					term *= v
				}
			}
			total += term
		}
		return total, nil
	case KindDiv, KindCeilDiv:
		a, err := e.args[0].Eval(env)
		if err != nil {
			return 0, err
		}
		b, err := e.args[1].Eval(env)
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return 0, fmt.Errorf("expr: division by zero evaluating %s", e)
		}
		if a == math.MaxInt64 {
			return math.MaxInt64, nil
		}
		if e.kind == KindCeilDiv {
			return ceilDiv64(a, b), nil
		}
		return floorDiv64(a, b), nil
	case KindMin, KindMax:
		best, err := e.args[0].Eval(env)
		if err != nil {
			return 0, err
		}
		for _, a := range e.args[1:] {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			if (e.kind == KindMin && v < best) || (e.kind == KindMax && v > best) {
				best = v
			}
		}
		return best, nil
	case KindSum:
		var total int64
		for _, a := range e.args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			if v == math.MaxInt64 {
				return math.MaxInt64, nil
			}
			total += v
		}
		return total, nil
	case KindProd:
		total := int64(1)
		for _, a := range e.args {
			v, err := a.Eval(env)
			if err != nil {
				return 0, err
			}
			if v == math.MaxInt64 {
				return math.MaxInt64, nil
			}
			total *= v
		}
		return total, nil
	}
	panic("expr: unknown kind")
}

// MustEval evaluates e and panics on error. It is intended for callers that
// have already validated the environment (e.g. benchmark tables).
func (e *Expr) MustEval(env Env) int64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Subst returns e with every occurrence of the named symbols replaced by the
// given expressions. Substitution re-normalizes the result.
func (e *Expr) Subst(bind map[string]*Expr) *Expr {
	switch e.kind {
	case KindInf:
		return e
	case KindPoly:
		total := Zero()
		for key, coef := range e.poly {
			term := Const(coef)
			if key != "" {
				for _, name := range strings.Split(key, "*") {
					if r, ok := bind[name]; ok {
						term = Mul(term, r)
					} else {
						term = Mul(term, Var(name))
					}
				}
			}
			total = Add(total, term)
		}
		return total
	case KindDiv:
		return Div(e.args[0].Subst(bind), e.args[1].Subst(bind))
	case KindCeilDiv:
		return CeilDiv(e.args[0].Subst(bind), e.args[1].Subst(bind))
	case KindMin, KindMax, KindSum, KindProd:
		args := make([]*Expr, len(e.args))
		for i, a := range e.args {
			args[i] = a.Subst(bind)
		}
		switch e.kind {
		case KindMin:
			return Min(args...)
		case KindMax:
			return Max(args...)
		case KindSum:
			return Add(args...)
		default:
			return Mul(args...)
		}
	}
	panic("expr: unknown kind")
}

func mulPoly(a, b poly) poly {
	out := poly{}
	for ka, ca := range a {
		for kb, cb := range b {
			out[mergeKeys(ka, kb)] += ca * cb
		}
	}
	return out
}

func splitKey(k string) []string {
	if k == "" {
		return nil
	}
	return strings.Split(k, "*")
}

func joinKey(parts []string) string {
	sort.Strings(parts)
	return strings.Join(parts, "*")
}

func mergeKeys(a, b string) string {
	parts := append(splitKey(a), splitKey(b)...)
	return joinKey(parts)
}

// removeFactors removes each factor in sub from from (with multiplicity),
// reporting failure if some factor is missing.
func removeFactors(from, sub []string) ([]string, bool) {
	out := append([]string(nil), from...)
	for _, s := range sub {
		found := -1
		for i, f := range out {
			if f == s {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		out = append(out[:found], out[found+1:]...)
	}
	return out, true
}

func floorDiv64(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv64(a, b int64) int64 {
	return -floorDiv64(-a, b)
}

func sortArgs(args []*Expr) {
	sort.Slice(args, func(i, j int) bool { return args[i].str < args[j].str })
}
