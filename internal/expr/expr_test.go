package expr

import (
	"math"
	"strings"
	"testing"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  *Expr
		want int64
	}{
		{Add(Const(2), Const(3)), 5},
		{Mul(Const(2), Const(3), Const(4)), 24},
		{Sub(Const(2), Const(5)), -3},
		{Div(Const(7), Const(2)), 3},
		{Div(Const(-7), Const(2)), -4},
		{CeilDiv(Const(7), Const(2)), 4},
		{CeilDiv(Const(-7), Const(2)), -3},
		{CeilDiv(Const(8), Const(2)), 4},
		{Min(Const(3), Const(7)), 3},
		{Max(Const(3), Const(7)), 7},
		{Mul(Const(0), Var("N")), 0},
		{Mul(Const(1), Const(9)), 9},
	}
	for i, c := range cases {
		v, ok := c.got.ConstVal()
		if !ok {
			t.Fatalf("case %d: %s did not fold to a constant", i, c.got)
		}
		if v != c.want {
			t.Errorf("case %d: got %d want %d", i, v, c.want)
		}
	}
}

func TestCanonicalEquality(t *testing.T) {
	n, ti, tj := Var("N"), Var("TI"), Var("TJ")
	a := Add(Mul(n, ti), Mul(ti, tj), Const(1))
	b := Add(Const(1), Mul(tj, ti), Mul(ti, n))
	if !a.Equal(b) {
		t.Fatalf("expected %s == %s", a, b)
	}
	c := Add(Mul(n, ti), Mul(ti, tj))
	if a.Equal(c) {
		t.Fatalf("expected %s != %s", a, c)
	}
	// (N+1)*(N-1) == N*N - 1 after expansion.
	l := Mul(Add(n, Const(1)), Sub(n, Const(1)))
	r := Sub(Mul(n, n), Const(1))
	if !l.Equal(r) {
		t.Fatalf("expected %s == %s", l, r)
	}
}

func TestAddCancellation(t *testing.T) {
	n := Var("N")
	e := Sub(Mul(Const(3), n), Mul(Const(3), n))
	if !e.IsZero() {
		t.Fatalf("3N - 3N = %s, want 0", e)
	}
}

func TestExactPolyDiv(t *testing.T) {
	n, ti, tj := Var("N"), Var("TI"), Var("TJ")
	q := Div(Add(Mul(n, ti), Mul(ti, tj)), ti)
	want := Add(n, tj)
	if !q.Equal(want) {
		t.Fatalf("got %s want %s", q, want)
	}
	// Non-exact division stays opaque but evaluates correctly.
	d := Div(n, ti)
	if d.Kind() != KindDiv {
		t.Fatalf("N/TI should stay a Div node, got %v", d.Kind())
	}
	v, err := d.Eval(Env{"N": 100, "TI": 32})
	if err != nil || v != 3 {
		t.Fatalf("Eval(N/TI)=%d,%v want 3", v, err)
	}
	cd := CeilDiv(n, ti)
	v, err = cd.Eval(Env{"N": 100, "TI": 32})
	if err != nil || v != 4 {
		t.Fatalf("Eval(ceil(N/TI))=%d,%v want 4", v, err)
	}
}

func TestEvalPolynomial(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	e := Add(Mul(n, n, ti), Mul(Const(-2), ti), Const(7))
	v, err := e.Eval(Env{"N": 10, "TI": 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(10*10*3 - 2*3 + 7); v != want {
		t.Fatalf("got %d want %d", v, want)
	}
}

func TestEvalUnbound(t *testing.T) {
	e := Var("Q")
	if _, err := e.Eval(Env{}); err == nil {
		t.Fatal("expected unbound error")
	} else if ub, ok := err.(*ErrUnbound); !ok || ub.Name != "Q" {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestInfPropagation(t *testing.T) {
	if !Add(Const(1), Inf()).IsInf() {
		t.Error("1 + inf should be inf")
	}
	if !Mul(Var("N"), Inf()).IsInf() {
		t.Error("N * inf should be inf")
	}
	if !Max(Const(5), Inf()).IsInf() {
		t.Error("max(5, inf) should be inf")
	}
	if got := Min(Const(5), Inf()); !got.Equal(Const(5)) {
		t.Errorf("min(5, inf) = %s, want 5", got)
	}
	v, err := Inf().Eval(Env{})
	if err != nil || v != math.MaxInt64 {
		t.Fatalf("inf eval = %d, %v", v, err)
	}
	if !Div(Inf(), Const(2)).IsInf() {
		t.Error("inf / 2 should be inf")
	}
}

func TestMinMaxSimplify(t *testing.T) {
	n := Var("N")
	if got := Min(n, n); !got.Equal(n) {
		t.Errorf("min(N,N) = %s", got)
	}
	m := Min(n, Const(4), Const(9))
	v, err := m.Eval(Env{"N": 7})
	if err != nil || v != 4 {
		t.Fatalf("min eval got %d %v", v, err)
	}
	mx := Max(n, Const(4))
	v, err = mx.Eval(Env{"N": 7})
	if err != nil || v != 7 {
		t.Fatalf("max eval got %d %v", v, err)
	}
}

func TestVars(t *testing.T) {
	e := Add(Mul(Var("N"), Var("TI")), Div(Var("M"), Var("TK")))
	vars := map[string]bool{}
	e.Vars(vars)
	for _, want := range []string{"N", "TI", "M", "TK"} {
		if !vars[want] {
			t.Errorf("missing var %s in %v", want, vars)
		}
	}
	if len(vars) != 4 {
		t.Errorf("got %d vars, want 4", len(vars))
	}
	if !e.HasAnyVar(map[string]bool{"M": true}) {
		t.Error("HasAnyVar(M) should be true")
	}
	if e.HasAnyVar(map[string]bool{"ZZ": true}) {
		t.Error("HasAnyVar(ZZ) should be false")
	}
}

func TestSubst(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	e := Add(Mul(n, ti), Const(3))
	s := e.Subst(map[string]*Expr{"N": Mul(Const(2), ti)})
	want := Add(Mul(Const(2), ti, ti), Const(3))
	if !s.Equal(want) {
		t.Fatalf("got %s want %s", s, want)
	}
	// Subst into opaque nodes.
	d := Div(n, ti).Subst(map[string]*Expr{"N": Const(64), "TI": Const(8)})
	if v, ok := d.ConstVal(); !ok || v != 8 {
		t.Fatalf("subst div got %s", d)
	}
}

func TestStringDeterministic(t *testing.T) {
	a := Add(Var("B"), Var("A"), Const(2))
	if a.String() != "A + B + 2" {
		t.Fatalf("got %q", a.String())
	}
	m := Mul(Var("B"), Var("A"))
	if m.String() != "A*B" {
		t.Fatalf("got %q", m.String())
	}
	neg := Sub(Var("A"), Mul(Const(2), Var("B")))
	if neg.String() != "A - 2*B" {
		t.Fatalf("got %q", neg.String())
	}
}

func TestMixedOpaqueSum(t *testing.T) {
	n, ti := Var("N"), Var("TI")
	e := Add(Mul(n, ti), Div(n, ti))
	v, err := e.Eval(Env{"N": 10, "TI": 4})
	if err != nil {
		t.Fatal(err)
	}
	if v != 10*4+2 {
		t.Fatalf("got %d", v)
	}
	if !strings.Contains(e.String(), "floor(") {
		t.Fatalf("rendering lost div: %s", e)
	}
	p := Mul(Div(n, ti), ti)
	v, err = p.Eval(Env{"N": 10, "TI": 4})
	if err != nil || v != 8 {
		t.Fatalf("prod eval got %d %v", v, err)
	}
}

func TestInvalidVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid var name")
		}
	}()
	Var("a*b")
}

func TestDivByZeroEval(t *testing.T) {
	e := Div(Var("N"), Var("T"))
	if _, err := e.Eval(Env{"N": 4, "T": 0}); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}
