package expr

import "sync"

// Hash-consing. Every Expr constructor routes its result through intern, so
// at any time the process holds at most one *Expr per (kind, canonical
// rendering) pair. Structural equality of canonical forms is therefore
// pointer equality, which is what lets Equal, the candidate caches and the
// op-slice compiler compare and key expressions without touching their
// string renderings on hot paths.
//
// The table is global and append-only: expressions are immutable, so a
// node interned once can be shared by every analysis in the process. The
// key includes the kind, not just the rendering, because two nodes of
// different kinds can share a rendering (e.g. Var("inf") and Inf() both
// render "inf") and must not be conflated.
type internKey struct {
	kind Kind
	str  string
}

var internTab sync.Map // internKey -> *Expr

func init() {
	// infExpr is constructed as a package var rather than through a
	// constructor; publish it so the table is complete.
	internTab.Store(internKey{KindInf, infExpr.str}, infExpr)
}

// intern returns the canonical node for e, publishing e if it is the first
// of its (kind, rendering) pair. e must be fully constructed (str rendered)
// and must never be mutated afterwards.
func intern(e *Expr) *Expr {
	k := internKey{e.kind, e.str}
	if got, ok := internTab.Load(k); ok {
		return got.(*Expr)
	}
	got, _ := internTab.LoadOrStore(k, e)
	return got.(*Expr)
}
