package expr

import "testing"

// Structurally equal canonical forms must be the same node: hash-consing
// makes pointer identity the equality test on hot paths.
func TestInternPointerIdentity(t *testing.T) {
	a := Add(Mul(Var("N"), Var("TI")), Const(1))
	b := Add(Const(1), Mul(Var("TI"), Var("N")))
	if a != b {
		t.Fatalf("structurally equal expressions are distinct nodes: %p vs %p (%s)", a, b, a)
	}
	c := Min(CeilDiv(Var("N"), Var("TI")), Var("N"))
	d := Min(Var("N"), CeilDiv(Var("N"), Var("TI")))
	if c != d {
		t.Fatalf("commutative min interned to distinct nodes: %s", c)
	}
}

func TestInternConstIdentity(t *testing.T) {
	if Const(0) != Zero() || Const(1) != One() {
		t.Fatalf("constant singletons not shared")
	}
	if Const(17) != Const(17) {
		t.Fatalf("equal constants interned to distinct nodes")
	}
}

// Var("inf") and Inf() share the rendering "inf" but are different kinds;
// the intern key must keep them distinct.
func TestInternKindDisambiguatesRendering(t *testing.T) {
	v := Var("inf")
	if v == Inf() {
		t.Fatalf("Var(inf) interned onto the Inf sentinel")
	}
	if v.Equal(Inf()) || Inf().Equal(v) {
		t.Fatalf("Var(inf) compares equal to Inf")
	}
	if v.Kind() != KindPoly || !Inf().IsInf() {
		t.Fatalf("kinds wrong: %v %v", v.Kind(), Inf().Kind())
	}
	if v.String() != "inf" || Inf().String() != "inf" {
		t.Fatalf("renderings diverged: %q %q", v, Inf())
	}
}
