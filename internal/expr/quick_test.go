package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr builds a random expression over the symbols a, b, c with small
// integer constants, together with a direct evaluator over int64 so that the
// symbolic engine can be cross-checked against straightforward arithmetic.
func randExpr(r *rand.Rand, depth int) (*Expr, func(a, b, c int64) int64) {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			v := int64(r.Intn(7) - 3)
			return Const(v), func(_, _, _ int64) int64 { return v }
		case 1:
			return Var("a"), func(a, _, _ int64) int64 { return a }
		case 2:
			return Var("b"), func(_, b, _ int64) int64 { return b }
		default:
			return Var("c"), func(_, _, c int64) int64 { return c }
		}
	}
	l, lf := randExpr(r, depth-1)
	rr, rf := randExpr(r, depth-1)
	switch r.Intn(5) {
	case 0:
		return Add(l, rr), func(a, b, c int64) int64 { return lf(a, b, c) + rf(a, b, c) }
	case 1:
		return Sub(l, rr), func(a, b, c int64) int64 { return lf(a, b, c) - rf(a, b, c) }
	case 2:
		return Mul(l, rr), func(a, b, c int64) int64 { return lf(a, b, c) * rf(a, b, c) }
	case 3:
		return Min(l, rr), func(a, b, c int64) int64 { return min64(lf(a, b, c), rf(a, b, c)) }
	default:
		return Max(l, rr), func(a, b, c int64) int64 { return max64(lf(a, b, c), rf(a, b, c)) }
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestQuickEvalMatchesDirect checks that symbolic construction plus Eval is
// observationally identical to direct integer arithmetic, no matter what
// simplifications the constructors applied.
func TestQuickEvalMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(a, b, c int8) bool {
		e, direct := randExpr(r, 4)
		env := Env{"a": int64(a), "b": int64(b), "c": int64(c)}
		got, err := e.Eval(env)
		if err != nil {
			return false
		}
		return got == direct(int64(a), int64(b), int64(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalStringIsEvalInvariant: two random expressions with the
// same canonical string must evaluate identically on random environments.
func TestQuickCanonicalStringIsEvalInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	byStr := map[string]*Expr{}
	for i := 0; i < 400; i++ {
		e, _ := randExpr(r, 4)
		if prev, ok := byStr[e.String()]; ok {
			for j := 0; j < 20; j++ {
				env := Env{
					"a": int64(r.Intn(11) - 5),
					"b": int64(r.Intn(11) - 5),
					"c": int64(r.Intn(11) - 5),
				}
				v1, err1 := e.Eval(env)
				v2, err2 := prev.Eval(env)
				if err1 != nil || err2 != nil || v1 != v2 {
					t.Fatalf("same canonical string %q but eval %d vs %d", e, v1, v2)
				}
			}
		} else {
			byStr[e.String()] = e
		}
	}
}

// TestQuickAddCommutesAssociates exercises the polynomial normal form.
func TestQuickAddCommutesAssociates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x, _ := randExpr(r, 3)
		y, _ := randExpr(r, 3)
		z, _ := randExpr(r, 3)
		if !Add(x, y).Equal(Add(y, x)) {
			t.Fatalf("Add not commutative for %s, %s", x, y)
		}
		if !Add(Add(x, y), z).Equal(Add(x, Add(y, z))) {
			t.Fatalf("Add not associative for %s, %s, %s", x, y, z)
		}
		if !Mul(x, y).Equal(Mul(y, x)) {
			t.Fatalf("Mul not commutative for %s, %s", x, y)
		}
	}
}

// TestQuickDistributivity checks x*(y+z) == x*y + x*z for polynomial-only
// expressions (opaque min/max nodes do not distribute symbolically, so this
// generator avoids them).
func TestQuickDistributivity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var polyExpr func(depth int) *Expr
	polyExpr = func(depth int) *Expr {
		if depth == 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return Const(int64(r.Intn(5) - 2))
			case 1:
				return Var("a")
			default:
				return Var("b")
			}
		}
		if r.Intn(2) == 0 {
			return Add(polyExpr(depth-1), polyExpr(depth-1))
		}
		return Mul(polyExpr(depth-1), polyExpr(depth-1))
	}
	for i := 0; i < 300; i++ {
		x, y, z := polyExpr(3), polyExpr(3), polyExpr(3)
		l := Mul(x, Add(y, z))
		rr := Add(Mul(x, y), Mul(x, z))
		if !l.Equal(rr) {
			t.Fatalf("distributivity failed: %s vs %s", l, rr)
		}
	}
}
