package expr

import (
	"sort"
	"strconv"
	"strings"
)

// render produces the canonical textual form of an expression. The form is
// deterministic: polynomials print monomials in lexicographic key order with
// explicit coefficients, and opaque nodes print with a fixed operator
// spelling and sorted (where commutative) operands. Equal canonical strings
// imply algebraically equal expressions for the polynomial fragment.
func (e *Expr) render() string {
	switch e.kind {
	case KindInf:
		return "inf"
	case KindPoly:
		return renderPoly(e.poly)
	case KindDiv:
		return "floor(" + e.args[0].str + " / " + e.args[1].str + ")"
	case KindCeilDiv:
		return "ceil(" + e.args[0].str + " / " + e.args[1].str + ")"
	case KindMin, KindMax:
		name := "min"
		if e.kind == KindMax {
			name = "max"
		}
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = a.str
		}
		return name + "(" + strings.Join(parts, ", ") + ")"
	case KindSum:
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = maybeParen(a)
		}
		return strings.Join(parts, " + ")
	case KindProd:
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = maybeParen(a)
		}
		return strings.Join(parts, "*")
	}
	panic("expr: unknown kind")
}

func maybeParen(a *Expr) string {
	if a.kind == KindSum || (a.kind == KindPoly && len(a.poly) > 1) {
		return "(" + a.str + ")"
	}
	return a.str
}

func renderPoly(p poly) string {
	if len(p) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	// Variables first (lexicographic), constant term last.
	sort.Slice(keys, func(i, j int) bool {
		if (keys[i] == "") != (keys[j] == "") {
			return keys[j] == ""
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for i, k := range keys {
		c := p[k]
		if i == 0 {
			if c < 0 {
				b.WriteString("-")
				c = -c
			}
		} else {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
		}
		switch {
		case k == "":
			b.WriteString(strconv.FormatInt(c, 10))
		case c == 1:
			b.WriteString(k)
		default:
			b.WriteString(strconv.FormatInt(c, 10))
			b.WriteString("*")
			b.WriteString(k)
		}
	}
	return b.String()
}
