package expr

import "sync"

// SymTab maps symbol names to dense slot indices. It is the bridge between
// the name-based world of expression construction and the slot-based world
// of compiled evaluation: a Program compiled against a SymTab refers to
// symbols by slot, and a Frame built from the same SymTab is the register
// file those slots index.
//
// Slots are assigned in first-intern order and never change, so any
// deterministic compilation order yields a stable name→slot mapping (the
// property the per-component cache keys and golden tests rely on). A SymTab
// is safe for concurrent use; in practice all slots are assigned during
// analysis and later use is read-only.
type SymTab struct {
	mu    sync.RWMutex
	names []string
	index map[string]int
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	return &SymTab{index: map[string]int{}}
}

// Slot returns the slot of name, assigning the next free slot on first use.
func (t *SymTab) Slot(name string) int {
	t.mu.RLock()
	i, ok := t.index[name]
	t.mu.RUnlock()
	if ok {
		return i
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.index[name]; ok {
		return i
	}
	i = len(t.names)
	t.names = append(t.names, name)
	t.index[name] = i
	return i
}

// Lookup returns the slot of name without assigning one.
func (t *SymTab) Lookup(name string) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[name]
	return i, ok
}

// Name returns the name owning the given slot.
func (t *SymTab) Name(slot int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.names[slot]
}

// Len returns the number of assigned slots.
func (t *SymTab) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Names returns a copy of the names in slot order.
func (t *SymTab) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.names...)
}

// Frame is a flat register file of symbol bindings indexed by SymTab slot:
// the hot-path replacement for Env maps. A Frame belongs to one goroutine
// at a time (it is deliberately not synchronized — give each worker its
// own) and is reused across evaluations: Set overwrites a slot in place,
// Reset clears every binding, and the embedded scratch stack makes compiled
// Program evaluation allocation-free after first use.
type Frame struct {
	tab   *SymTab
	vals  []int64
	bound []bool
	stack []int64 // Program evaluation scratch, grown on demand
}

// NewFrame returns an empty frame sized for the table's current slots. The
// frame grows transparently if further slots are assigned later.
func (t *SymTab) NewFrame() *Frame {
	n := t.Len()
	return &Frame{tab: t, vals: make([]int64, n), bound: make([]bool, n)}
}

// Tab returns the symbol table the frame indexes.
func (f *Frame) Tab() *SymTab { return f.tab }

// Reset clears every binding (the slots stay allocated).
func (f *Frame) Reset() {
	for i := range f.bound {
		f.bound[i] = false
	}
}

func (f *Frame) grow(slot int) {
	for len(f.vals) <= slot {
		f.vals = append(f.vals, 0)
		f.bound = append(f.bound, false)
	}
}

// Set binds the slot to v.
func (f *Frame) Set(slot int, v int64) {
	if slot >= len(f.vals) {
		f.grow(slot)
	}
	f.vals[slot] = v
	f.bound[slot] = true
}

// SetName binds the named symbol, reporting false if the table has no slot
// for it (the symbol then cannot appear in any compiled program, so there
// is nothing to bind).
func (f *Frame) SetName(name string, v int64) bool {
	slot, ok := f.tab.Lookup(name)
	if !ok {
		return false
	}
	f.Set(slot, v)
	return true
}

// Get returns the slot's value and whether it is bound. Slots beyond the
// frame's current size read as unbound.
func (f *Frame) Get(slot int) (int64, bool) {
	if slot >= len(f.vals) || !f.bound[slot] {
		return 0, false
	}
	return f.vals[slot], true
}

// GetName is Get by symbol name.
func (f *Frame) GetName(name string) (int64, bool) {
	slot, ok := f.tab.Lookup(name)
	if !ok {
		return 0, false
	}
	return f.Get(slot)
}

// Bind sets every binding of env whose name has a slot; names unknown to
// the table are ignored (no compiled program can read them). Existing
// bindings not mentioned by env are left in place — call Reset first for a
// from-scratch load.
func (f *Frame) Bind(env Env) {
	for name, v := range env {
		f.SetName(name, v)
	}
}

// FrameOf builds a fresh frame bound to env: the Env→Frame adapter used by
// the compatibility entry points.
func (t *SymTab) FrameOf(env Env) *Frame {
	f := t.NewFrame()
	f.Bind(env)
	return f
}
