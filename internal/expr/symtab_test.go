package expr

import (
	"sync"
	"testing"
)

func TestSymTabSlotAssignment(t *testing.T) {
	tab := NewSymTab()
	if got := tab.Slot("N"); got != 0 {
		t.Fatalf("first slot = %d, want 0", got)
	}
	if got := tab.Slot("TI"); got != 1 {
		t.Fatalf("second slot = %d, want 1", got)
	}
	if got := tab.Slot("N"); got != 0 {
		t.Fatalf("repeat Slot(N) = %d, want 0", got)
	}
	if got := tab.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := tab.Name(1); got != "TI" {
		t.Fatalf("Name(1) = %q, want TI", got)
	}
	if _, ok := tab.Lookup("TJ"); ok {
		t.Fatalf("Lookup of unassigned symbol reported a slot")
	}
	if got := tab.Names(); len(got) != 2 || got[0] != "N" || got[1] != "TI" {
		t.Fatalf("Names = %v", got)
	}
}

// Slots must be stable under re-compilation: compiling the same expressions
// against the same table in the same order yields identical slot numbers, and
// compiling *more* expressions later never renumbers existing slots. This is
// the property the per-component binary cache keys rely on.
func TestSymTabSlotStabilityUnderRecompile(t *testing.T) {
	e1 := Add(Mul(Var("N"), Var("TI")), Var("TJ"))
	e2 := CeilDiv(Var("N"), Var("TK"))

	tab := NewSymTab()
	Compile(e1, tab)
	first := tab.Names()

	Compile(e1, tab) // recompile: no new slots
	if got := tab.Len(); got != len(first) {
		t.Fatalf("recompile grew table from %d to %d slots", len(first), got)
	}

	Compile(e2, tab) // new symbols append, old slots unchanged
	for i, name := range first {
		if tab.Name(i) != name {
			t.Fatalf("slot %d changed from %q to %q after later compile", i, name, tab.Name(i))
		}
	}
	if _, ok := tab.Lookup("TK"); !ok {
		t.Fatalf("new symbol TK not assigned")
	}
}

func TestSymTabConcurrentSlot(t *testing.T) {
	tab := NewSymTab()
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tab.Slot(names[i%len(names)])
			}
		}()
	}
	wg.Wait()
	if got := tab.Len(); got != len(names) {
		t.Fatalf("Len = %d, want %d", got, len(names))
	}
	seen := map[int]string{}
	for _, n := range names {
		s, ok := tab.Lookup(n)
		if !ok {
			t.Fatalf("missing slot for %s", n)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("slot %d assigned to both %s and %s", s, prev, n)
		}
		seen[s] = n
	}
}

func TestFrameBasics(t *testing.T) {
	tab := NewSymTab()
	n := tab.Slot("N")
	f := tab.NewFrame()
	if _, ok := f.Get(n); ok {
		t.Fatalf("fresh frame has a bound slot")
	}
	f.Set(n, 42)
	if v, ok := f.Get(n); !ok || v != 42 {
		t.Fatalf("Get = %d,%v want 42,true", v, ok)
	}
	if v, ok := f.GetName("N"); !ok || v != 42 {
		t.Fatalf("GetName = %d,%v want 42,true", v, ok)
	}
	if _, ok := f.GetName("nope"); ok {
		t.Fatalf("GetName of unknown symbol reported a value")
	}
	if f.SetName("nope", 1) {
		t.Fatalf("SetName of unknown symbol reported success")
	}
	f.Reset()
	if _, ok := f.Get(n); ok {
		t.Fatalf("Reset left slot bound")
	}
	if f.Tab() != tab {
		t.Fatalf("Tab mismatch")
	}
}

func TestFrameGrowsForLateSlots(t *testing.T) {
	tab := NewSymTab()
	tab.Slot("N")
	f := tab.NewFrame()
	late := tab.Slot("LATE") // assigned after the frame was built
	if _, ok := f.Get(late); ok {
		t.Fatalf("out-of-range slot read as bound")
	}
	f.Set(late, 7)
	if v, ok := f.Get(late); !ok || v != 7 {
		t.Fatalf("Get(late) = %d,%v want 7,true", v, ok)
	}
}

func TestFrameBindIgnoresUnknownNames(t *testing.T) {
	tab := NewSymTab()
	tab.Slot("N")
	f := tab.NewFrame()
	f.Bind(Env{"N": 3, "GHOST": 9})
	if v, ok := f.GetName("N"); !ok || v != 3 {
		t.Fatalf("N = %d,%v want 3,true", v, ok)
	}
	if _, ok := tab.Lookup("GHOST"); ok {
		t.Fatalf("Bind assigned a slot for an unknown name")
	}
}
