package kernels

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// TiledCCSD builds a coupled-cluster doubles-style contraction — the kind
// of term the paper's introduction motivates ("accurate electronic
// structure calculations, such as the coupled cluster models"):
//
//	R(a,b,i,j) += Σ_{c,d} W(a,b,c,d) · T2(c,d,i,j)
//
// with virtual indices a,b,c,d of range V and occupied indices i,j of
// range O, all six loops tiled (12-deep perfect compute nest preceded by
// the initialization of R — an imperfectly nested program overall). Tile
// symbols are TA, TB, TI, TJ, TC, TD.
func TiledCCSD() (*loopir.Nest, error) {
	v := expr.Var("V")
	o := expr.Var("O")
	arrays := []*loopir.Array{
		{Name: "R", Dims: []*expr.Expr{v, v, o, o}},
		{Name: "W", Dims: []*expr.Expr{v, v, v, v}},
		{Name: "T2", Dims: []*expr.Expr{v, v, o, o}},
	}
	stmt := &loopir.Stmt{
		Label: "S2",
		Flops: 2,
		Refs: []loopir.Ref{
			{Array: "W", Mode: loopir.Read, Subs: []loopir.Subscript{
				loopir.Idx("a"), loopir.Idx("b"), loopir.Idx("c"), loopir.Idx("d"),
			}},
			{Array: "T2", Mode: loopir.Read, Subs: []loopir.Subscript{
				loopir.Idx("c"), loopir.Idx("d"), loopir.Idx("i"), loopir.Idx("j"),
			}},
			{Array: "R", Mode: loopir.Update, Subs: []loopir.Subscript{
				loopir.Idx("a"), loopir.Idx("b"), loopir.Idx("i"), loopir.Idx("j"),
			}},
		},
	}
	spec := loopir.PerfectNestSpec{
		Name:    "ccsd-doubles",
		Arrays:  arrays,
		Indices: []string{"a", "b", "i", "j", "c", "d"},
		Trips:   []*expr.Expr{v, v, o, o, v, v},
		Stmt:    stmt,
	}
	tiles := []loopir.TileSpec{
		loopir.DefaultTileSpec("a", v),
		loopir.DefaultTileSpec("b", v),
		loopir.DefaultTileSpec("i", o),
		loopir.DefaultTileSpec("j", o),
		loopir.DefaultTileSpec("c", v),
		loopir.DefaultTileSpec("d", v),
	}
	tiled, err := loopir.TilePerfect(spec, tiles)
	if err != nil {
		return nil, err
	}
	// Prepend the initialization of R as a sibling nest (plain indices).
	init := &loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
		{Array: "R", Mode: loopir.Write, Subs: []loopir.Subscript{
			loopir.Idx("a0"), loopir.Idx("b0"), loopir.Idx("i0"), loopir.Idx("j0"),
		}},
	}}
	initNest := &loopir.Loop{Index: "a0", Trip: v, Body: []loopir.Node{
		&loopir.Loop{Index: "b0", Trip: v, Body: []loopir.Node{
			&loopir.Loop{Index: "i0", Trip: o, Body: []loopir.Node{
				&loopir.Loop{Index: "j0", Trip: o, Body: []loopir.Node{init}},
			}},
		}},
	}}
	root := append([]loopir.Node{initNest}, tiled.Root...)
	return loopir.NewNest("ccsd-doubles-tiled", arrays, root)
}

// CCSDEnv binds the CCSD kernel's symbols: virtual range v, occupied range
// o, and tile sizes (ta, tb, ti, tj, tc, td) which must divide their
// ranges.
func CCSDEnv(v, o, ta, tb, ti, tj, tc, td int64) (expr.Env, error) {
	checks := [][2]int64{{v, ta}, {v, tb}, {o, ti}, {o, tj}, {v, tc}, {v, td}}
	for _, c := range checks {
		if c[1] <= 0 || c[0]%c[1] != 0 {
			return nil, fmt.Errorf("kernels: tile %d does not divide bound %d", c[1], c[0])
		}
	}
	return expr.Env{
		"V": v, "O": o,
		"TA": ta, "TB": tb, "TI": ti, "TJ": tj, "TC": tc, "TD": td,
	}, nil
}
