package kernels

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/trace"
)

func TestTiledCCSDBuilds(t *testing.T) {
	nest, err := TiledCCSD()
	if err != nil {
		t.Fatal(err)
	}
	// 4 init loops + 12 tiled loops.
	if got := len(nest.Loops()); got != 16 {
		t.Fatalf("%d loops, want 16", got)
	}
	if got := len(nest.Stmts()); got != 2 {
		t.Fatalf("%d statements, want 2", got)
	}
	env, err := CCSDEnv(8, 4, 2, 4, 2, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	// Trace: init V²O² + compute 3·V⁴O².
	want := int64(8*8*4*4 + 3*8*8*8*8*4*4)
	n, _ := p.Length()
	if n != want {
		t.Fatalf("trace length %d want %d", n, want)
	}
}

func TestCCSDEnvValidation(t *testing.T) {
	if _, err := CCSDEnv(8, 4, 3, 4, 2, 2, 4, 2); err == nil {
		t.Error("non-dividing virtual tile accepted")
	}
	if _, err := CCSDEnv(8, 4, 2, 4, 3, 2, 4, 2); err == nil {
		t.Error("non-dividing occupied tile accepted")
	}
}

// TestCCSDModelVsSimulation validates the model on the 12-deep tiled
// contraction across cache regimes.
func TestCCSDModelVsSimulation(t *testing.T) {
	nest, err := TiledCCSD()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	env, err := CCSDEnv(8, 4, 2, 4, 2, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	watches := []int64{8, 64, 512, 4096, 1 << 30}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()

	predInf, _ := a.PredictTotal(env, 1<<40)
	if predInf != res.Distinct {
		t.Errorf("compulsory %d vs distinct %d", predInf, res.Distinct)
	}
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		d := pred - res.Misses[i]
		if d < 0 {
			d = -d
		}
		tol := res.Misses[i]/6 + res.Accesses/50 + 100
		if d > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d (tol %d)", c, pred, res.Misses[i], tol)
		}
	}
}

// TestCCSDComponentScale: the 12-deep nest's component inventory stays
// tractable (the model is O(depth) components per reference, not
// exponential).
func TestCCSDComponentScale(t *testing.T) {
	nest, err := TiledCCSD()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	// 4 sites (R-init, W, T2, R-update); each has at most
	// #non-appearing-loops + 1 components (+1 for a cross component).
	if got := len(a.Components); got > 4*14 {
		t.Fatalf("%d components — blow-up", got)
	}
	if got := len(a.Components); got < 8 {
		t.Fatalf("only %d components — partitioning incomplete", got)
	}
}
