package kernels

import (
	"repro/internal/expr"
	"repro/internal/loopir"
)

// TiledMatmulCopied builds the tiled matrix multiplication with tile
// copying (§7.1 of the paper: "We used copying of tiles to avoid conflict
// misses"): the A and B tiles are first copied into contiguous buffers,
// then the compute loops read the buffers:
//
//	for iT, jT, kT {
//	  S1: Abuf[iI, jI]  = A[iT+iI, jT+jI]
//	  S2: Bbuf[jI2,kI2] = B[jT+jI2, kT+kI2]
//	  S3: C[iT+iI, kT+kI] += Abuf[iI, jI] · Bbuf[jI, kI]
//	}
//
// In a fully-associative cache the copies only add their own traffic; in a
// direct-mapped or low-associativity cache they remove the conflict misses
// caused by tile rows spaced N elements apart — which is exactly why the
// paper's measurements copy tiles and can then be compared against the
// fully-associative model.
func TiledMatmulCopied() (*loopir.Nest, error) {
	n := expr.Var("N")
	ti, tj, tk := expr.Var("TI"), expr.Var("TJ"), expr.Var("TK")
	arrays := []*loopir.Array{
		{Name: "A", Dims: []*expr.Expr{n, n}},
		{Name: "B", Dims: []*expr.Expr{n, n}},
		{Name: "C", Dims: []*expr.Expr{n, n}},
		{Name: "Abuf", Dims: []*expr.Expr{ti, tj}},
		{Name: "Bbuf", Dims: []*expr.Expr{tj, tk}},
	}
	copyA := &loopir.Stmt{Label: "S1", Refs: []loopir.Ref{
		{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.TilePair("iT", ti, "iI"), loopir.TilePair("jT", tj, "jI"),
		}},
		{Array: "Abuf", Mode: loopir.Write, Subs: []loopir.Subscript{
			loopir.Idx("iI"), loopir.Idx("jI"),
		}},
	}}
	copyB := &loopir.Stmt{Label: "S2", Refs: []loopir.Ref{
		{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.TilePair("jT", tj, "jI2"), loopir.TilePair("kT", tk, "kI2"),
		}},
		{Array: "Bbuf", Mode: loopir.Write, Subs: []loopir.Subscript{
			loopir.Idx("jI2"), loopir.Idx("kI2"),
		}},
	}}
	compute := &loopir.Stmt{Label: "S3", Flops: 2, Refs: []loopir.Ref{
		{Array: "Abuf", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.Idx("iI3"), loopir.Idx("jI3"),
		}},
		{Array: "Bbuf", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.Idx("jI3"), loopir.Idx("kI3"),
		}},
		{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{
			loopir.TilePair("iT", ti, "iI3"), loopir.TilePair("kT", tk, "kI3"),
		}},
	}}
	loop := func(idx string, trip *expr.Expr, body ...loopir.Node) *loopir.Loop {
		return &loopir.Loop{Index: idx, Trip: trip, Body: body}
	}
	root := []loopir.Node{
		loop("iT", expr.CeilDiv(n, ti),
			loop("jT", expr.CeilDiv(n, tj),
				loop("kT", expr.CeilDiv(n, tk),
					loop("iI", ti, loop("jI", tj, copyA)),
					loop("jI2", tj, loop("kI2", tk, copyB)),
					loop("iI3", ti, loop("jI3", tj, loop("kI3", tk, compute)))))),
	}
	return loopir.NewNest("matmul-tiled-copied", arrays, root)
}
