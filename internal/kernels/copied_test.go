package kernels

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/trace"
)

func TestTiledMatmulCopiedBuildsAndComputes(t *testing.T) {
	nest, err := TiledMatmulCopied()
	if err != nil {
		t.Fatal(err)
	}
	const N = 16
	env := expr.Env{"N": N, "TI": 4, "TJ": 4, "TK": 4}
	ex, err := trace.NewExecutor(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	a := NewMatrix(N, N)
	b := NewMatrix(N, N)
	a.FillSequential(0.25)
	b.FillSequential(0.5)
	if err := ex.SetArray("A", a.Data); err != nil {
		t.Fatal(err)
	}
	if err := ex.SetArray("B", b.Data); err != nil {
		t.Fatal(err)
	}
	ex.Run()
	got, err := ex.Array("C")
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(N, N)
	if err := MatmulNaive(a, b, want); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		d := got[i] - want.Data[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Fatalf("C[%d] = %g want %g", i, got[i], want.Data[i])
		}
	}
}

func TestCopiedModelVsSimulation(t *testing.T) {
	nest, err := TiledMatmulCopied()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 32
	env := expr.Env{"N": N, "TI": 8, "TJ": 8, "TK": 8}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	watches := []int64{16, 128, 1024, 1 << 30}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	predInf, _ := a.PredictTotal(env, 1<<40)
	if predInf != res.Distinct {
		t.Errorf("compulsory %d vs distinct %d", predInf, res.Distinct)
	}
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		d := pred - res.Misses[i]
		if d < 0 {
			d = -d
		}
		tol := res.Misses[i]/5 + res.Accesses/30 + 100
		if d > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d", c, pred, res.Misses[i])
		}
	}
}

// TestCopyingRemovesConflictMisses is the §7.1 rationale: in a direct-mapped
// cache the uncopied tiled matmul thrashes on tile rows spaced N apart,
// while the copied version's contiguous buffers conflict far less. In a
// fully-associative cache the copies only add their own (small) traffic.
func TestCopyingRemovesConflictMisses(t *testing.T) {
	plain, err := TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	copied, err := TiledMatmulCopied()
	if err != nil {
		t.Fatal(err)
	}
	// N a multiple of the cache size makes rows conflict maximally.
	const N, tile = 64, 8
	const capacity = 256 // elements; N*4 rows alias heavily
	env := expr.Env{"N": N, "TI": tile, "TJ": tile, "TK": tile}

	run := func(nest *loopir.Nest) (direct float64, full float64, accesses int64) {
		t.Helper()
		p, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := cachesim.NewDirectMapped(capacity, 1)
		if err != nil {
			t.Fatal(err)
		}
		fa, err := cachesim.NewFullyAssoc(capacity)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(func(_ int, addr int64) {
			dm.Access(addr)
			fa.Access(addr)
		})
		return dm.MissRatio(), fa.MissRatio(), dm.Accesses()
	}
	dPlain, fPlain, _ := run(plain)
	dCopied, fCopied, _ := run(copied)

	// Direct-mapped: copying must cut the miss ratio substantially.
	if dCopied >= dPlain*0.7 {
		t.Errorf("copying did not reduce direct-mapped conflicts: %.4f -> %.4f", dPlain, dCopied)
	}
	// Fully associative: both small; copying costs a little extra traffic
	// but must stay in the same regime.
	if fCopied > 5*fPlain+0.05 {
		t.Errorf("copied fully-assoc ratio %.4f unreasonable vs %.4f", fCopied, fPlain)
	}
}
