// Package kernels builds the paper's concrete workloads as loopir nests and
// provides native Go implementations of the same computations.
//
// Two workloads carry the paper's entire evaluation:
//
//   - tiled matrix multiplication (Fig. 2, Tables 1 and 3), a 6-deep perfect
//     nest;
//   - the tiled fused two-index transform (Fig. 6, Tables 2 and 4,
//     Figs. 10–11), the TCE-generated imperfectly nested loop structure
//     B[m,n] = Σ_i C1[m,i] · (Σ_j C2[n,j] · A[i,j]) with the intermediate
//     contracted to a tile-local buffer T[TI,TN].
//
// The IR builders use the symbol conventions of the paper: loop bounds NI,
// NJ, NM, NN (or a single N), tile sizes TI, TJ, TM, TN. The native
// implementations exist so that examples and the SMP executor can run the
// real floating-point computation.
package kernels

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// Matmul returns the untiled i-j-k matrix multiplication nest
// C[i,k] += A[i,j] * B[j,k], with symbolic bound N.
func Matmul() (*loopir.Nest, error) {
	n := expr.Var("N")
	return loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt:    matmulStmt(),
	})
}

func matmulStmt() *loopir.Stmt {
	return &loopir.Stmt{
		Label: "S1",
		Flops: 2,
		Refs: []loopir.Ref{
			{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("j")}},
			{Array: "B", Mode: loopir.Read, Subs: []loopir.Subscript{loopir.Idx("j"), loopir.Idx("k")}},
			{Array: "C", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx("i"), loopir.Idx("k")}},
		},
	}
}

// TiledMatmul returns the 6-deep tiled matrix multiplication of Fig. 2:
// loops (iT, jT, kT, iI, jI, kI) with tile-size symbols TI, TJ, TK.
func TiledMatmul() (*loopir.Nest, error) {
	n := expr.Var("N")
	spec := loopir.PerfectNestSpec{
		Name: "matmul",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt:    matmulStmt(),
	}
	return loopir.TilePerfect(spec, []loopir.TileSpec{
		loopir.DefaultTileSpec("i", n),
		loopir.DefaultTileSpec("j", n),
		loopir.DefaultTileSpec("k", n),
	})
}

// TiledMatmulDims returns the tiled matmul with independent bounds NI, NJ,
// NK per index — the form §7 partitions across processors (Figs. 8 and 9:
// the I loop is split, giving each processor a row block of C and A and all
// of B).
func TiledMatmulDims() (*loopir.Nest, error) {
	ni, nj, nk := expr.Var("NI"), expr.Var("NJ"), expr.Var("NK")
	spec := loopir.PerfectNestSpec{
		Name: "matmul-dims",
		Arrays: []*loopir.Array{
			{Name: "A", Dims: []*expr.Expr{ni, nj}},
			{Name: "B", Dims: []*expr.Expr{nj, nk}},
			{Name: "C", Dims: []*expr.Expr{ni, nk}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{ni, nj, nk},
		Stmt:    matmulStmt(),
	}
	return loopir.TilePerfect(spec, []loopir.TileSpec{
		loopir.DefaultTileSpec("i", ni),
		loopir.DefaultTileSpec("j", nj),
		loopir.DefaultTileSpec("k", nk),
	})
}

// MatmulDimsEnv binds the per-dimension matmul symbols.
func MatmulDimsEnv(ni, nj, nk, ti, tj, tk int64) (expr.Env, error) {
	for _, p := range [][2]int64{{ni, ti}, {nj, tj}, {nk, tk}} {
		if p[1] <= 0 || p[0]%p[1] != 0 {
			return nil, fmt.Errorf("kernels: tile %d does not divide bound %d", p[1], p[0])
		}
	}
	return expr.Env{"NI": ni, "NJ": nj, "NK": nk, "TI": ti, "TJ": tj, "TK": tk}, nil
}

// TwoIndexBounds names the four index ranges of the two-index transform.
// The paper's experiments use NI = NJ = NM = NN.
type TwoIndexBounds struct {
	NI, NJ, NM, NN *expr.Expr
}

// SymbolicTwoIndexBounds returns bounds as the symbols NI, NJ, NM, NN.
func SymbolicTwoIndexBounds() TwoIndexBounds {
	return TwoIndexBounds{
		NI: expr.Var("NI"), NJ: expr.Var("NJ"),
		NM: expr.Var("NM"), NN: expr.Var("NN"),
	}
}

// TiledTwoIndex builds the tiled fused two-index transform of Fig. 6:
//
//	S2: FOR mT, nT { FOR mI, nI:          B[mT+mI, nT+nI] = 0 }
//	    FOR iT, nT {
//	S5:     FOR iI, nI:                   T[iI, nI] = 0
//	S7:     FOR jT { FOR iI, nI, jI:      T[iI,nI] += A[iT+iI, jT+jI] * C2[nT+nI, jT+jI] }
//	S9:     FOR mT { FOR iI, nI, mI:      B[mT+mI, nT+nI] += T[iI,nI] * C1[mT+mI, iT+iI] }
//	    }
//
// Tile-size symbols are TI, TJ, TM, TN; the intermediate T is a tile-local
// TI×TN buffer. Statement labels match the paper's numbering.
func TiledTwoIndex(b TwoIndexBounds) (*loopir.Nest, error) {
	ti, tj, tm, tn := expr.Var("TI"), expr.Var("TJ"), expr.Var("TM"), expr.Var("TN")
	arrays := []*loopir.Array{
		{Name: "A", Dims: []*expr.Expr{b.NI, b.NJ}},
		{Name: "B", Dims: []*expr.Expr{b.NM, b.NN}},
		{Name: "C1", Dims: []*expr.Expr{b.NM, b.NI}},
		{Name: "C2", Dims: []*expr.Expr{b.NN, b.NJ}},
		{Name: "T", Dims: []*expr.Expr{ti, tn}},
	}
	bRef := func(mode loopir.AccessMode) loopir.Ref {
		return loopir.Ref{Array: "B", Mode: mode, Subs: []loopir.Subscript{
			loopir.TilePair("mT", tm, "mI"),
			loopir.TilePair("nT", tn, "nI"),
		}}
	}
	tRef := func(mode loopir.AccessMode) loopir.Ref {
		return loopir.Ref{Array: "T", Mode: mode, Subs: []loopir.Subscript{
			loopir.Idx("iI"), loopir.Idx("nI"),
		}}
	}
	s2 := &loopir.Stmt{Label: "S2", Refs: []loopir.Ref{bRef(loopir.Write)}}
	s5 := &loopir.Stmt{Label: "S5", Refs: []loopir.Ref{tRef(loopir.Write)}}
	s7 := &loopir.Stmt{Label: "S7", Flops: 2, Refs: []loopir.Ref{
		tRef(loopir.Update),
		{Array: "A", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.TilePair("iT", ti, "iI"),
			loopir.TilePair("jT", tj, "jI"),
		}},
		{Array: "C2", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.TilePair("nT", tn, "nI"),
			loopir.TilePair("jT", tj, "jI"),
		}},
	}}
	s9 := &loopir.Stmt{Label: "S9", Flops: 2, Refs: []loopir.Ref{
		bRef(loopir.Update),
		tRef(loopir.Read),
		{Array: "C1", Mode: loopir.Read, Subs: []loopir.Subscript{
			loopir.TilePair("mT", tm, "mI"),
			loopir.TilePair("iT", ti, "iI"),
		}},
	}}

	loop := func(idx string, trip *expr.Expr, body ...loopir.Node) *loopir.Loop {
		return &loopir.Loop{Index: idx, Trip: trip, Body: body}
	}
	nTiles := func(n *expr.Expr, t *expr.Expr) *expr.Expr { return expr.CeilDiv(n, t) }

	root := []loopir.Node{
		loop("mT", nTiles(b.NM, tm),
			loop("nT", nTiles(b.NN, tn),
				loop("mI", tm,
					loop("nI", tn, s2)))),
		loop("iT", nTiles(b.NI, ti),
			loop("nT", nTiles(b.NN, tn),
				loop("iI", ti, loop("nI", tn, s5)),
				loop("jT", nTiles(b.NJ, tj),
					loop("iI", ti, loop("nI", tn, loop("jI", tj, s7)))),
				loop("mT", nTiles(b.NM, tm),
					loop("iI", ti, loop("nI", tn, loop("mI", tm, s9)))))),
	}
	return loopir.NewNest("two-index-tiled", arrays, root)
}

// TwoIndexEnv builds the evaluation environment for the two-index transform
// with a common bound n and tile sizes (ti, tj, tm, tn). It returns an error
// if a tile size does not divide the bound (the model assumes exact tiling,
// as does the paper).
func TwoIndexEnv(n, ti, tj, tm, tn int64) (expr.Env, error) {
	for _, t := range []int64{ti, tj, tm, tn} {
		if t <= 0 || n%t != 0 {
			return nil, fmt.Errorf("kernels: tile %d does not divide bound %d", t, n)
		}
	}
	return expr.Env{
		"NI": n, "NJ": n, "NM": n, "NN": n,
		"TI": ti, "TJ": tj, "TM": tm, "TN": tn,
	}, nil
}

// TwoIndexEnvDims builds the environment with distinct per-index bounds
// (Table 2's last row uses bounds (512, 256, 256, 512)).
func TwoIndexEnvDims(ni, nj, nm, nn, ti, tj, tm, tn int64) (expr.Env, error) {
	for _, p := range [][2]int64{{ni, ti}, {nj, tj}, {nm, tm}, {nn, tn}} {
		if p[1] <= 0 || p[0]%p[1] != 0 {
			return nil, fmt.Errorf("kernels: tile %d does not divide bound %d", p[1], p[0])
		}
	}
	return expr.Env{
		"NI": ni, "NJ": nj, "NM": nm, "NN": nn,
		"TI": ti, "TJ": tj, "TM": tm, "TN": tn,
	}, nil
}

// MatmulEnv builds the environment for the tiled matmul.
func MatmulEnv(n, ti, tj, tk int64) (expr.Env, error) {
	for _, t := range []int64{ti, tj, tk} {
		if t <= 0 || n%t != 0 {
			return nil, fmt.Errorf("kernels: tile %d does not divide bound %d", t, n)
		}
	}
	return expr.Env{"N": n, "TI": ti, "TJ": tj, "TK": tk}, nil
}
