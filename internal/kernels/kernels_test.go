package kernels

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/trace"
)

func TestTiledMatmulBuilds(t *testing.T) {
	nest, err := TiledMatmul()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nest.Loops()); got != 6 {
		t.Fatalf("tiled matmul has %d loops, want 6", got)
	}
	env, err := MatmulEnv(32, 4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	n, err := p.Length()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3*32*32*32 {
		t.Fatalf("trace length %d want %d", n, 3*32*32*32)
	}
}

func TestMatmulEnvValidation(t *testing.T) {
	if _, err := MatmulEnv(32, 5, 8, 16); err == nil {
		t.Error("non-dividing tile accepted")
	}
	if _, err := TwoIndexEnv(64, 16, 0, 8, 8); err == nil {
		t.Error("zero tile accepted")
	}
}

func TestTiledTwoIndexBuildsAndTraces(t *testing.T) {
	nest, err := TiledTwoIndex(SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	env, err := TwoIndexEnv(16, 4, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	// Trace length: init N^2 + S5 N^2·NJ/TJ?? — compute directly instead:
	// S2: NM·NN = 256; S5: (NI/TI·NN/TN)·TI·TN = NI·NN = 256;
	// S7: 3·NI·NN·NJ = 3·4096; S9: 3·NI·NN·NM = 3·4096.
	want := int64(256 + 256 + 3*16*16*16 + 3*16*16*16)
	n, err := p.Length()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("trace length %d want %d", n, want)
	}
}

// TestTwoIndexModelVsSimulation validates the analytical model on the
// paper's flagship imperfect nest across cache-size regimes.
func TestTwoIndexModelVsSimulation(t *testing.T) {
	nest, err := TiledTwoIndex(SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	const N = 32
	env, err := TwoIndexEnv(N, 8, 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		t.Fatal(err)
	}
	watches := []int64{4, 16, 64, 150, 400, 1200, 4000, 100000}
	sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
	p.Run(sim.Access)
	res := sim.Results()
	for i, c := range watches {
		pred, err := a.PredictTotal(env, c)
		if err != nil {
			t.Fatal(err)
		}
		simM := res.Misses[i]
		diff := pred - simM
		if diff < 0 {
			diff = -diff
		}
		// Boundary and representative-span slack: a few sub-dominant
		// slices of the N^3-scale trace.
		tol := int64(8*N*N) + simM/8
		if diff > tol {
			t.Errorf("cache %d: predicted %d vs simulated %d (diff %d > tol %d)",
				c, pred, simM, diff, tol)
		}
	}
	// Compulsory misses: 4 N×N arrays + the TI×TN buffer.
	predInf, _ := a.PredictTotal(env, 1<<40)
	wantInf := int64(4*N*N + 8*4)
	if predInf != wantInf {
		t.Errorf("compulsory %d want %d", predInf, wantInf)
	}
	if res.Distinct != wantInf {
		t.Errorf("simulator distinct %d want %d", res.Distinct, wantInf)
	}
}

func TestNativeMatmulTiledMatchesNaive(t *testing.T) {
	const n = 24
	a, b := NewMatrix(n, n), NewMatrix(n, n)
	a.FillSequential(0.5)
	b.FillSequential(0.25)
	c1, c2 := NewMatrix(n, n), NewMatrix(n, n)
	if err := MatmulNaive(a, b, c1); err != nil {
		t.Fatal(err)
	}
	if err := MatmulTiled(a, b, c2, 4, 6, 8); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(c1, c2); d > 1e-9 {
		t.Fatalf("tiled matmul deviates by %g", d)
	}
	if err := MatmulTiled(a, b, c2, 5, 6, 8); err == nil {
		t.Fatal("non-dividing tile accepted")
	}
}

func TestNativeTwoIndexVariantsAgree(t *testing.T) {
	const n = 16
	a, c1, c2 := NewMatrix(n, n), NewMatrix(n, n), NewMatrix(n, n)
	a.FillSequential(0.1)
	c1.FillSequential(0.2)
	c2.FillSequential(0.3)

	bNaive, tFull, err := TwoIndexNaive(a, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if tFull.Rows != n || tFull.Cols != n {
		t.Fatalf("intermediate shape %dx%d", tFull.Rows, tFull.Cols)
	}
	bFused, err := TwoIndexFused(a, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(bNaive, bFused); d > 1e-6 {
		t.Fatalf("fused deviates by %g", d)
	}
	bTiled := NewMatrix(n, n)
	if err := TwoIndexTiled(a, c1, c2, bTiled, 4, 8, 4, 8, 0, n); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(bNaive, bTiled); d > 1e-6 {
		t.Fatalf("tiled deviates by %g", d)
	}
	// Partitioned execution over the iT range accumulates to the same B.
	bPart := NewMatrix(n, n)
	if err := TwoIndexTiled(a, c1, c2, bPart, 4, 8, 4, 8, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := TwoIndexTiled(a, c1, c2, bPart, 4, 8, 4, 8, 8, n); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(bNaive, bPart); d > 1e-6 {
		t.Fatalf("partitioned execution deviates by %g", d)
	}
}

func TestTiledTwoIndexStatementLabels(t *testing.T) {
	nest, err := TiledTwoIndex(SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, s := range nest.Stmts() {
		labels = append(labels, s.Label)
	}
	want := []string{"S2", "S5", "S7", "S9"}
	if len(labels) != len(want) {
		t.Fatalf("labels %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels %v want %v", labels, want)
		}
	}
}

// TestTwoIndexCrossComponentShape checks the §5.2 example: the reuse of
// T between S5 and S7 has a position-dependent stack distance
// TI·TN + TN·TJ + TJ + a·TJ for a in [0, TI).
func TestTwoIndexCrossComponentShape(t *testing.T) {
	nest, err := TiledTwoIndex(SymbolicTwoIndexBounds())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(nest)
	if err != nil {
		t.Fatal(err)
	}
	var cross *core.Component
	for _, c := range a.Components {
		if c.Kind == core.CrossStmt && c.Site.Stmt.Label == "S7" &&
			c.Site.Ref().Array == "T" && c.Source.Stmt.Label == "S5" {
			cross = c
			break
		}
	}
	if cross == nil {
		t.Fatalf("no S5→S7 cross component for T:\n%s", a.Table())
	}
	if cross.SD.IsConst() {
		t.Fatalf("S5→S7 T reuse should have variable SD, got %s", cross.SD)
	}
	ti, tj, tn := expr.Var("TI"), expr.Var("TJ"), expr.Var("TN")
	wantBase := expr.Add(expr.Mul(ti, tn), expr.Mul(tn, tj), tj)
	if !cross.SD.Base.Equal(wantBase) {
		t.Errorf("S5→S7 base SD = %s, want %s", cross.SD.Base, wantBase)
	}
	if !cross.SD.Slope.Equal(tj) {
		t.Errorf("S5→S7 SD slope = %s, want TJ", cross.SD.Slope)
	}
	if cross.FreeVar != "iI" || !cross.FreeRange.Equal(ti) {
		t.Errorf("free var %s range %s, want iI range TI", cross.FreeVar, cross.FreeRange)
	}
}
