package kernels

import "fmt"

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// FillSequential initializes the matrix with a deterministic pattern, useful
// for reproducible correctness checks.
func (m *Matrix) FillSequential(scale float64) {
	for i := range m.Data {
		m.Data[i] = scale * float64(i%97+1)
	}
}

// MatmulNaive computes C += A·B with the plain i-j-k loop order.
func MatmulNaive(a, b, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("kernels: shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			aij := a.At(i, j)
			for k := 0; k < b.Cols; k++ {
				c.Data[i*c.Cols+k] += aij * b.At(j, k)
			}
		}
	}
	return nil
}

// MatmulTiled computes C += A·B with the 6-deep tiled loop order of Fig. 2.
// Tile sizes must divide the corresponding extents.
func MatmulTiled(a, b, c *Matrix, ti, tj, tk int) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("kernels: shape mismatch")
	}
	if ti <= 0 || tj <= 0 || tk <= 0 ||
		a.Rows%ti != 0 || a.Cols%tj != 0 || b.Cols%tk != 0 {
		return fmt.Errorf("kernels: tiles (%d,%d,%d) must divide (%d,%d,%d)",
			ti, tj, tk, a.Rows, a.Cols, b.Cols)
	}
	for iT := 0; iT < a.Rows; iT += ti {
		for jT := 0; jT < a.Cols; jT += tj {
			for kT := 0; kT < b.Cols; kT += tk {
				for i := iT; i < iT+ti; i++ {
					for j := jT; j < jT+tj; j++ {
						aij := a.At(i, j)
						for k := kT; k < kT+tk; k++ {
							c.Data[i*c.Cols+k] += aij * b.At(j, k)
						}
					}
				}
			}
		}
	}
	return nil
}

// TwoIndexNaive computes the unfused two-index transform
// B[m,n] = Σ_i C1[m,i] · T[n,i] with T[n,i] = Σ_j C2[n,j] · A[i,j],
// materializing the full intermediate T (NN×NI) — the memory-hungry
// baseline of Fig. 1(a).
func TwoIndexNaive(a, c1, c2 *Matrix) (*Matrix, *Matrix, error) {
	ni, nj := a.Rows, a.Cols
	nm := c1.Rows
	nn := c2.Rows
	if c1.Cols != ni || c2.Cols != nj {
		return nil, nil, fmt.Errorf("kernels: shape mismatch in two-index transform")
	}
	t := NewMatrix(nn, ni)
	for i := 0; i < ni; i++ {
		for n := 0; n < nn; n++ {
			var s float64
			for j := 0; j < nj; j++ {
				s += c2.At(n, j) * a.At(i, j)
			}
			t.Set(n, i, s)
		}
	}
	b := NewMatrix(nm, nn)
	for i := 0; i < ni; i++ {
		for n := 0; n < nn; n++ {
			tni := t.At(n, i)
			for m := 0; m < nm; m++ {
				b.Data[m*nn+n] += c1.At(m, i) * tni
			}
		}
	}
	return b, t, nil
}

// TwoIndexFused computes the fused two-index transform of Fig. 1(c): the
// intermediate is contracted to a scalar, using O(1) extra memory.
func TwoIndexFused(a, c1, c2 *Matrix) (*Matrix, error) {
	ni, nj := a.Rows, a.Cols
	nm := c1.Rows
	nn := c2.Rows
	if c1.Cols != ni || c2.Cols != nj {
		return nil, fmt.Errorf("kernels: shape mismatch in two-index transform")
	}
	b := NewMatrix(nm, nn)
	for i := 0; i < ni; i++ {
		for n := 0; n < nn; n++ {
			var t float64
			for j := 0; j < nj; j++ {
				t += c2.At(n, j) * a.At(i, j)
			}
			for m := 0; m < nm; m++ {
				b.Data[m*nn+n] += c1.At(m, i) * t
			}
		}
	}
	return b, nil
}

// TwoIndexTiled computes the tiled fused two-index transform of Fig. 6 with
// a tile-local intermediate buffer T[ti][tn]. nLo/nHi restrict the nT range
// so that the SMP executor can partition the parallel n loop (each processor
// then owns a disjoint column slice of B, making parallel execution
// write-conflict-free); pass 0, NN for the full computation. The result is
// accumulated into b.
func TwoIndexTiled(a, c1, c2, b *Matrix, ti, tj, tm, tn, nLo, nHi int) error {
	ni, nj := a.Rows, a.Cols
	nm := c1.Rows
	nn := c2.Rows
	if c1.Cols != ni || c2.Cols != nj || b.Rows != nm || b.Cols != nn {
		return fmt.Errorf("kernels: shape mismatch in tiled two-index transform")
	}
	if ti <= 0 || tj <= 0 || tm <= 0 || tn <= 0 ||
		ni%ti != 0 || nj%tj != 0 || nm%tm != 0 || nn%tn != 0 {
		return fmt.Errorf("kernels: tiles (%d,%d,%d,%d) must divide (%d,%d,%d,%d)",
			ti, tj, tm, tn, ni, nj, nm, nn)
	}
	if nLo < 0 || nHi > nn || nLo%tn != 0 {
		return fmt.Errorf("kernels: invalid nT range [%d,%d)", nLo, nHi)
	}
	t := make([]float64, ti*tn)
	for iT := 0; iT < ni; iT += ti {
		for nT := nLo; nT < nHi; nT += tn {
			for x := range t {
				t[x] = 0
			}
			for jT := 0; jT < nj; jT += tj {
				for iI := 0; iI < ti; iI++ {
					for nI := 0; nI < tn; nI++ {
						var s float64
						for jI := 0; jI < tj; jI++ {
							s += a.At(iT+iI, jT+jI) * c2.At(nT+nI, jT+jI)
						}
						t[iI*tn+nI] += s
					}
				}
			}
			for mT := 0; mT < nm; mT += tm {
				for iI := 0; iI < ti; iI++ {
					for nI := 0; nI < tn; nI++ {
						tv := t[iI*tn+nI]
						for mI := 0; mI < tm; mI++ {
							b.Data[(mT+mI)*nn+(nT+nI)] += tv * c1.At(mT+mI, iT+iI)
						}
					}
				}
			}
		}
	}
	return nil
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// matrices of identical shape.
func MaxAbsDiff(x, y *Matrix) float64 {
	var worst float64
	for i := range x.Data {
		d := x.Data[i] - y.Data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
