// Package loadtest is the closed-loop load harness for the serving layer:
// N client goroutines, each issuing the request script back-to-back (one
// outstanding request per client — throughput is determined by service
// latency, not an open-loop arrival rate), verifying every successful
// response byte-for-byte against the expected bytes derived from direct
// library calls, and reporting throughput plus latency percentiles.
//
// cmd/loadgen drives it to produce BENCH_serve.json; the CI smoke runs it
// for one second against an in-process server.
package loadtest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request is one scripted call. Want, when non-nil, is the expected
// response body of a 200; any deviation counts as a mismatch.
type Request struct {
	Path string
	Body []byte
	Want []byte
}

// Options configures a run. Exactly one of Rounds and Duration selects the
// stopping rule: Rounds is deterministic (every client walks the script
// that many times), Duration is wall-clock (the bench mode).
type Options struct {
	BaseURL  string
	Clients  int
	Rounds   int
	Duration time.Duration
	Script   []Request
}

// Result aggregates a run.
type Result struct {
	Requests   int64          `json:"requests"`
	Verified   int64          `json:"verified"`   // 200s checked against Want
	Mismatches int64          `json:"mismatches"` // 200s whose bytes differed
	Errors     int64          `json:"errors"`     // transport failures
	Status     map[int]int64  `json:"status"`     // responses by HTTP status
	Elapsed    time.Duration  `json:"-"`
	ElapsedSec float64        `json:"elapsed_sec"`
	Throughput float64        `json:"requests_per_sec"` // 200s per second
	Latency    LatencySummary `json:"latency"`
}

// LatencySummary reports request-latency percentiles in nanoseconds,
// measured per request across all clients.
type LatencySummary struct {
	P50Nanos int64 `json:"p50_nanos"`
	P90Nanos int64 `json:"p90_nanos"`
	P99Nanos int64 `json:"p99_nanos"`
	MaxNanos int64 `json:"max_nanos"`
	Samples  int64 `json:"samples"`
}

// Run executes the load test and aggregates the per-client observations.
func (o Options) Run() (*Result, error) {
	if o.Clients <= 0 {
		return nil, fmt.Errorf("loadtest: need at least one client")
	}
	if len(o.Script) == 0 {
		return nil, fmt.Errorf("loadtest: empty script")
	}
	if (o.Rounds > 0) == (o.Duration > 0) {
		return nil, fmt.Errorf("loadtest: set exactly one of Rounds and Duration")
	}

	type clientStats struct {
		requests, verified, mismatches, errors int64
		status                                 map[int]int64
		latencies                              []time.Duration
	}
	stats := make([]clientStats, o.Clients)
	var stop atomic.Bool
	if o.Duration > 0 {
		timer := time.AfterFunc(o.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.status = map[int]int64{}
			client := &http.Client{Timeout: 60 * time.Second}
			// Stagger each client's starting offset so concurrent clients
			// exercise the whole script at once instead of marching in
			// lockstep.
			for i := c; ; i++ {
				if o.Duration > 0 && stop.Load() {
					return
				}
				if o.Rounds > 0 && i-c >= o.Rounds*len(o.Script) {
					return
				}
				req := o.Script[i%len(o.Script)]
				t0 := time.Now()
				resp, err := client.Post(o.BaseURL+req.Path, "application/json", strings.NewReader(string(req.Body)))
				if err != nil {
					st.errors++
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					st.errors++
					continue
				}
				st.latencies = append(st.latencies, time.Since(t0))
				st.requests++
				st.status[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK && req.Want != nil {
					st.verified++
					if !bytes.Equal(body, req.Want) {
						st.mismatches++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Status: map[int]int64{}, Elapsed: elapsed, ElapsedSec: elapsed.Seconds()}
	var all []time.Duration
	for c := range stats {
		st := &stats[c]
		res.Requests += st.requests
		res.Verified += st.verified
		res.Mismatches += st.mismatches
		res.Errors += st.errors
		for code, n := range st.status {
			res.Status[code] += n
		}
		all = append(all, st.latencies...)
	}
	res.Throughput = float64(res.Status[http.StatusOK]) / elapsed.Seconds()
	res.Latency = summarize(all)
	return res, nil
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return int64(lat[i])
	}
	return LatencySummary{
		P50Nanos: pick(0.50),
		P90Nanos: pick(0.90),
		P99Nanos: pick(0.99),
		MaxNanos: int64(lat[len(lat)-1]),
		Samples:  int64(len(lat)),
	}
}
