// Package loadtest is the closed-loop load harness for the serving layer:
// N client goroutines, each issuing the request script back-to-back (one
// outstanding request per client — throughput is determined by service
// latency, not an open-loop arrival rate), verifying every successful
// response byte-for-byte against the expected bytes derived from direct
// library calls, and reporting throughput plus latency percentiles.
//
// cmd/loadgen drives it to produce BENCH_serve.json; the CI smoke runs it
// for one second against an in-process server.
package loadtest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request is one scripted call. Want, when non-nil, is the expected
// response body of a 200; any deviation counts as a mismatch.
type Request struct {
	Path string
	Body []byte
	Want []byte
	// Items is the number of work items a 200 of this request represents
	// (0 means 1): a batch of 64 counts 64 toward Result.Items, which is
	// what makes items/sec comparable across batch sizes.
	Items int
	// Tag, when non-empty, groups this request's latency samples under
	// Result.ByTag — how the storm scenario separates single-request
	// latency from batch latency inside one mixed script.
	Tag string
	// Check, when non-nil, validates every response of this request beyond
	// the byte comparison (e.g. NDJSON framing rules); a non-nil return
	// counts toward Result.CheckFailures.
	Check func(status int, body []byte) error
}

// Options configures a run. Exactly one of Rounds and Duration selects the
// stopping rule: Rounds is deterministic (every client walks the script
// that many times), Duration is wall-clock (the bench mode).
type Options struct {
	BaseURL  string
	Clients  int
	Rounds   int
	Duration time.Duration
	Script   []Request
}

// Result aggregates a run.
type Result struct {
	Requests      int64          `json:"requests"`
	Verified      int64          `json:"verified"`   // 200s checked against Want
	Mismatches    int64          `json:"mismatches"` // 200s whose bytes differed
	Errors        int64          `json:"errors"`     // transport failures
	CheckFailures int64          `json:"check_failures,omitempty"`
	Status        map[int]int64  `json:"status"` // responses by HTTP status
	Elapsed       time.Duration  `json:"-"`
	ElapsedSec    float64        `json:"elapsed_sec"`
	Throughput    float64        `json:"requests_per_sec"` // 200s per second
	Items         int64          `json:"items,omitempty"`  // work items in 200s
	ItemsPerSec   float64        `json:"items_per_sec,omitempty"`
	Latency       LatencySummary `json:"latency"`
	// ByTag holds per-tag latency summaries for scripts that tag requests.
	ByTag map[string]LatencySummary `json:"by_tag,omitempty"`
}

// LatencySummary reports request-latency percentiles in nanoseconds,
// measured per request across all clients.
type LatencySummary struct {
	P50Nanos int64 `json:"p50_nanos"`
	P90Nanos int64 `json:"p90_nanos"`
	P99Nanos int64 `json:"p99_nanos"`
	MaxNanos int64 `json:"max_nanos"`
	Samples  int64 `json:"samples"`
}

// Run executes the load test and aggregates the per-client observations.
func (o Options) Run() (*Result, error) {
	if o.Clients <= 0 {
		return nil, fmt.Errorf("loadtest: need at least one client")
	}
	if len(o.Script) == 0 {
		return nil, fmt.Errorf("loadtest: empty script")
	}
	if (o.Rounds > 0) == (o.Duration > 0) {
		return nil, fmt.Errorf("loadtest: set exactly one of Rounds and Duration")
	}

	type clientStats struct {
		requests, verified, mismatches, errors int64
		items, checkFails                      int64
		status                                 map[int]int64
		latencies                              []time.Duration
		byTag                                  map[string][]time.Duration
	}
	stats := make([]clientStats, o.Clients)
	var stop atomic.Bool
	if o.Duration > 0 {
		timer := time.AfterFunc(o.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.status = map[int]int64{}
			client := &http.Client{Timeout: 60 * time.Second}
			// Stagger each client's starting offset so concurrent clients
			// exercise the whole script at once instead of marching in
			// lockstep.
			for i := c; ; i++ {
				if o.Duration > 0 && stop.Load() {
					return
				}
				if o.Rounds > 0 && i-c >= o.Rounds*len(o.Script) {
					return
				}
				req := o.Script[i%len(o.Script)]
				t0 := time.Now()
				resp, err := client.Post(o.BaseURL+req.Path, "application/json", strings.NewReader(string(req.Body)))
				if err != nil {
					st.errors++
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					st.errors++
					continue
				}
				lat := time.Since(t0)
				st.latencies = append(st.latencies, lat)
				if req.Tag != "" {
					if st.byTag == nil {
						st.byTag = map[string][]time.Duration{}
					}
					st.byTag[req.Tag] = append(st.byTag[req.Tag], lat)
				}
				st.requests++
				st.status[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					if req.Items > 1 {
						st.items += int64(req.Items)
					} else {
						st.items++
					}
					if req.Want != nil {
						st.verified++
						if !bytes.Equal(body, req.Want) {
							st.mismatches++
						}
					}
				}
				if req.Check != nil {
					if err := req.Check(resp.StatusCode, body); err != nil {
						st.checkFails++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Status: map[int]int64{}, Elapsed: elapsed, ElapsedSec: elapsed.Seconds()}
	var all []time.Duration
	tagged := map[string][]time.Duration{}
	for c := range stats {
		st := &stats[c]
		res.Requests += st.requests
		res.Verified += st.verified
		res.Mismatches += st.mismatches
		res.Errors += st.errors
		res.Items += st.items
		res.CheckFailures += st.checkFails
		for code, n := range st.status {
			res.Status[code] += n
		}
		all = append(all, st.latencies...)
		for tag, lats := range st.byTag {
			tagged[tag] = append(tagged[tag], lats...)
		}
	}
	res.Throughput = float64(res.Status[http.StatusOK]) / elapsed.Seconds()
	res.ItemsPerSec = float64(res.Items) / elapsed.Seconds()
	res.Latency = summarize(all)
	if len(tagged) > 0 {
		res.ByTag = make(map[string]LatencySummary, len(tagged))
		for tag, lats := range tagged {
			res.ByTag[tag] = summarize(lats)
		}
	}
	return res, nil
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return int64(lat[i])
	}
	return LatencySummary{
		P50Nanos: pick(0.50),
		P90Nanos: pick(0.90),
		P99Nanos: pick(0.99),
		MaxNanos: int64(lat[len(lat)-1]),
		Samples:  int64(len(lat)),
	}
}
