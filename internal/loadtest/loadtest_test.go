package loadtest

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestClosedLoopByteIdentical is the serving acceptance criterion run as a
// unit test: 32 concurrent closed-loop clients against a live server, every
// 200 verified byte-for-byte against the direct library computation.
func TestClosedLoopByteIdentical(t *testing.T) {
	m := obs.New()
	svc := service.New(service.Config{Obs: m, QueueDepth: 128})
	sv, err := service.Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	bodies := []struct{ path, body string }{
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[8,8,8],"cacheKB":64}`},
		{"/v1/predict", `{"kernel":"matmul","n":64,"tiles":[16,16,16],"cacheKB":64}`},
		{"/v1/analyze", `{"kernel":"matmul","n":64,"tiles":[8,8,8]}`},
		{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`},
	}
	var script []Request
	for _, b := range bodies {
		want, err := svc.Compute(context.Background(), b.path, []byte(b.body))
		if err != nil {
			t.Fatalf("direct compute %s: %v", b.path, err)
		}
		script = append(script, Request{Path: b.path, Body: []byte(b.body), Want: want})
	}

	const clients, rounds = 32, 5
	res, err := Options{
		BaseURL: "http://" + sv.Addr(),
		Clients: clients,
		Rounds:  rounds,
		Script:  script,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantReqs := int64(clients * rounds * len(script))
	if res.Requests+res.Errors != wantReqs {
		t.Errorf("requests %d + errors %d, want %d total", res.Requests, res.Errors, wantReqs)
	}
	if res.Errors != 0 {
		t.Errorf("%d transport errors", res.Errors)
	}
	if res.Status[http.StatusOK] != wantReqs {
		t.Errorf("%d OKs, want %d (status map %v)", res.Status[http.StatusOK], wantReqs, res.Status)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d responses differed from the direct library call", res.Mismatches)
	}
	if res.Verified != wantReqs {
		t.Errorf("verified %d responses, want %d", res.Verified, wantReqs)
	}
	if res.Latency.Samples != wantReqs || res.Latency.P50Nanos <= 0 || res.Latency.P99Nanos < res.Latency.P50Nanos {
		t.Errorf("implausible latency summary %+v", res.Latency)
	}
}

// TestOptionsValidation pins the stopping-rule contract.
func TestOptionsValidation(t *testing.T) {
	script := []Request{{Path: "/healthz"}}
	for _, o := range []Options{
		{Clients: 0, Rounds: 1, Script: script},
		{Clients: 1, Script: script},
		{Clients: 1, Rounds: 1, Duration: time.Second, Script: script},
		{Clients: 1, Rounds: 1},
	} {
		if _, err := o.Run(); err == nil {
			t.Errorf("Options %+v: want error", o)
		}
	}
}
