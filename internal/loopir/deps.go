package loopir

import (
	"fmt"
	"sort"
	"strings"
)

// Dependence diagnostics for the supported class. The TCE guarantees that
// the loops it generates are fully permutable with no fusion-preventing
// dependences (§2 of the paper); for user-written nests these checks
// surface the places where that guarantee must be argued rather than
// assumed. They are conservative: an empty hazard list means the transform
// is provably safe under the class's semantics; a non-empty list means a
// human (or a cleverer analysis) must decide.

// FusionHazards inspects two sibling loops that FuseAdjacent would merge
// (same index name and trip) and reports the array/dimension pairs whose
// dependence structure fusion could violate:
//
//   - a write in one loop and any access in the other to the same array
//     where some dimension's use of the fused index differs (one side uses
//     it, the other does not, or with a different term structure): after
//     fusion the access at iteration i may see a different element state
//     than before;
//   - a read-modify-write (Update) in the producer paired with a read in
//     the consumer on a dimension not indexed by the fused loop: the
//     consumer would observe partial accumulations.
//
// Aligned dimensions — both sides using the fused index with identical
// term structure — are safe: iteration i touches the same elements on both
// sides before and after fusion.
func FusionHazards(n *Nest, a, b *Loop) []string {
	if a.Index != b.Index || !a.Trip.Equal(b.Trip) {
		return []string{fmt.Sprintf("loops %s and %s are not fusable siblings", a.Index, b.Index)}
	}
	type access struct {
		ref  *Ref
		site string
	}
	collect := func(l *Loop) map[string][]access {
		out := map[string][]access{}
		var walk func(nodes []Node)
		walk = func(nodes []Node) {
			for _, nd := range nodes {
				switch v := nd.(type) {
				case *Loop:
					walk(v.Body)
				case *Stmt:
					for i := range v.Refs {
						r := &v.Refs[i]
						out[r.Array] = append(out[r.Array], access{r, fmt.Sprintf("%s#%d", v.Label, i)})
					}
				}
			}
		}
		walk(l.Body)
		return out
	}
	accA := collect(a)
	accB := collect(b)

	var hazards []string
	arrays := map[string]bool{}
	for name := range accA {
		if _, ok := accB[name]; ok {
			arrays[name] = true
		}
	}
	names := make([]string, 0, len(arrays))
	for name := range arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, x := range accA[name] {
			for _, y := range accB[name] {
				if x.ref.Mode == Read && y.ref.Mode == Read {
					continue
				}
				if h := pairHazard(a.Index, x.ref, y.ref); h != "" {
					hazards = append(hazards,
						fmt.Sprintf("%s: %s vs %s: %s", name, x.site, y.site, h))
				}
			}
		}
	}
	return hazards
}

// pairHazard checks one writer/accessor pair dimension by dimension.
func pairHazard(fused string, w, r *Ref) string {
	usesFused := func(sub Subscript) (bool, string) {
		var terms []string
		uses := false
		for _, t := range sub.Terms {
			s := t.Index
			if t.Stride != nil {
				s += "*" + t.Stride.String()
			}
			terms = append(terms, s)
			if t.Index == fused {
				uses = true
			}
		}
		sort.Strings(terms)
		return uses, strings.Join(terms, "+")
	}
	anyAligned := false
	for d := range w.Subs {
		if d >= len(r.Subs) {
			break
		}
		wUses, wSig := usesFused(w.Subs[d])
		rUses, rSig := usesFused(r.Subs[d])
		switch {
		case wUses && rUses:
			if wSig != rSig {
				return fmt.Sprintf("dimension %d uses the fused index with different structure (%s vs %s)", d, wSig, rSig)
			}
			anyAligned = true
		case wUses != rUses:
			return fmt.Sprintf("dimension %d uses the fused index on one side only", d)
		}
	}
	if !anyAligned {
		// No dimension ties the two sides to the same fused iteration: the
		// consumer would see per-iteration intermediate states.
		if w.Mode == Update || r.Mode == Update {
			return "no dimension is indexed by the fused loop; accumulation order would be observable"
		}
	}
	return ""
}
