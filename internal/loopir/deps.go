package loopir

import (
	"fmt"
	"sort"
	"strings"
)

// Dependence diagnostics for the supported class. The TCE guarantees that
// the loops it generates are fully permutable with no fusion-preventing
// dependences (§2 of the paper); for user-written nests these checks
// surface the places where that guarantee must be argued rather than
// assumed. They are conservative: an empty hazard list means the transform
// is provably safe under the class's semantics; a non-empty list means a
// human (or a cleverer analysis) must decide.

// FusionHazards inspects two sibling loops that FuseAdjacent would merge
// (same index name and trip) and reports the array/dimension pairs whose
// dependence structure fusion could violate:
//
//   - a write in one loop and any access in the other to the same array
//     where some dimension's use of the fused index differs (one side uses
//     it, the other does not, or with a different term structure): after
//     fusion the access at iteration i may see a different element state
//     than before;
//   - a read-modify-write (Update) in the producer paired with a read in
//     the consumer on a dimension not indexed by the fused loop: the
//     consumer would observe partial accumulations.
//
// Aligned dimensions — both sides using the fused index with identical
// term structure — are safe: iteration i touches the same elements on both
// sides before and after fusion.
func FusionHazards(n *Nest, a, b *Loop) []string {
	if a.Index != b.Index || !a.Trip.Equal(b.Trip) {
		return []string{fmt.Sprintf("loops %s and %s are not fusable siblings", a.Index, b.Index)}
	}
	type access struct {
		ref  *Ref
		site string
	}
	collect := func(l *Loop) map[string][]access {
		out := map[string][]access{}
		var walk func(nodes []Node)
		walk = func(nodes []Node) {
			for _, nd := range nodes {
				switch v := nd.(type) {
				case *Loop:
					walk(v.Body)
				case *Stmt:
					for i := range v.Refs {
						r := &v.Refs[i]
						out[r.Array] = append(out[r.Array], access{r, fmt.Sprintf("%s#%d", v.Label, i)})
					}
				}
			}
		}
		walk(l.Body)
		return out
	}
	accA := collect(a)
	accB := collect(b)

	var hazards []string
	arrays := map[string]bool{}
	for name := range accA {
		if _, ok := accB[name]; ok {
			arrays[name] = true
		}
	}
	names := make([]string, 0, len(arrays))
	for name := range arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, x := range accA[name] {
			for _, y := range accB[name] {
				if x.ref.Mode == Read && y.ref.Mode == Read {
					continue
				}
				if h := pairHazard(a.Index, x.ref, y.ref); h != "" {
					hazards = append(hazards,
						fmt.Sprintf("%s: %s vs %s: %s", name, x.site, y.site, h))
				}
			}
		}
	}
	return hazards
}

// PermutationHazards decides whether a perfect nest is fully permutable
// under the class's statement semantics (the executable form: the written
// reference W and read references R1..Rk mean W (+)= R1·…·Rk). The check
// is order-independent — an empty list legalizes every loop order at once:
//
//   - an Update target is a reduction; reordering only reassociates the
//     accumulation, which the class treats as order-insensitive (§2);
//   - a Write target with no reads stores a constant, so repeated or
//     reordered stores land the same value;
//   - a Write target whose value varies with a loop the target's subscripts
//     do not mention is last-iteration-wins: reordering changes which
//     iteration's value survives — a hazard naming that loop;
//   - a read of the written array through different subscripts is a true
//     read/write dependence whose direction reordering can flip — a hazard.
//
// Like FusionHazards, the check is conservative: an empty list is a proof,
// a non-empty list is a request for human judgment.
func PermutationHazards(n *Nest) []string {
	_, stmt, ok := n.IsPerfect()
	if !ok {
		return []string{fmt.Sprintf("nest %s is not perfect: %s", n.Name, PerfectDefect(n))}
	}
	var hazards []string
	var target *Ref
	for i := range stmt.Refs {
		r := &stmt.Refs[i]
		if r.Mode != Write && r.Mode != Update {
			continue
		}
		if target != nil {
			hazards = append(hazards,
				fmt.Sprintf("%s writes both %s and %s; multi-store statements are outside the class", stmt.Label, target.Array, r.Array))
			continue
		}
		target = r
	}
	if target == nil {
		// A statement with no store changes no state; any order reads the
		// same values.
		return hazards
	}
	targetSig := refSignature(target)
	tUses := map[string]bool{}
	for _, sub := range target.Subs {
		for _, t := range sub.Terms {
			tUses[t.Index] = true
		}
	}
	for i := range stmt.Refs {
		r := &stmt.Refs[i]
		if r.Mode != Read {
			continue
		}
		if r.Array == target.Array && refSignature(r) != targetSig {
			hazards = append(hazards,
				fmt.Sprintf("%s reads %s[%s] while storing %s[%s]; the dependence direction depends on loop order",
					stmt.Label, r.Array, refSignature(r), target.Array, targetSig))
		}
		if target.Mode != Write {
			continue
		}
		for _, sub := range r.Subs {
			for _, t := range sub.Terms {
				if !tUses[t.Index] {
					hazards = append(hazards,
						fmt.Sprintf("loop %s varies the value assigned to %s but not its location; the last iteration in %s wins",
							t.Index, target.Array, t.Index))
				}
			}
		}
	}
	return dedupeStrings(hazards)
}

// refSignature renders a reference's subscripts canonically (terms sorted
// within each dimension) so aliasing checks compare structure, not term
// order.
func refSignature(r *Ref) string {
	subs := make([]string, len(r.Subs))
	for i, sub := range r.Subs {
		terms := make([]string, len(sub.Terms))
		for j, t := range sub.Terms {
			terms[j] = t.Index
			if t.Stride != nil {
				terms[j] += "*" + t.Stride.String()
			}
		}
		sort.Strings(terms)
		subs[i] = strings.Join(terms, "+")
	}
	return strings.Join(subs, ",")
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// pairHazard checks one writer/accessor pair dimension by dimension.
func pairHazard(fused string, w, r *Ref) string {
	usesFused := func(sub Subscript) (bool, string) {
		var terms []string
		uses := false
		for _, t := range sub.Terms {
			s := t.Index
			if t.Stride != nil {
				s += "*" + t.Stride.String()
			}
			terms = append(terms, s)
			if t.Index == fused {
				uses = true
			}
		}
		sort.Strings(terms)
		return uses, strings.Join(terms, "+")
	}
	anyAligned := false
	for d := range w.Subs {
		if d >= len(r.Subs) {
			break
		}
		wUses, wSig := usesFused(w.Subs[d])
		rUses, rSig := usesFused(r.Subs[d])
		switch {
		case wUses && rUses:
			if wSig != rSig {
				return fmt.Sprintf("dimension %d uses the fused index with different structure (%s vs %s)", d, wSig, rSig)
			}
			anyAligned = true
		case wUses != rUses:
			return fmt.Sprintf("dimension %d uses the fused index on one side only", d)
		}
	}
	if !anyAligned {
		// No dimension ties the two sides to the same fused iteration, so
		// fusion interleaves accesses that were fully ordered before: the
		// second loop's iteration k runs between the first loop's k and k+1,
		// and with a store on either side the interleaving is observable
		// (a read sees intermediate stores, an accumulation is consumed
		// half-done). This holds for plain writes too, not just updates —
		// the executor-based corpus cross-check catches the Write/Read case.
		return "no dimension is indexed by the fused loop; per-iteration interleaving would be observable"
	}
	return ""
}
