package loopir

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func mkLoop(idx string, trip *expr.Expr, stmts ...*Stmt) *Loop {
	body := make([]Node, len(stmts))
	for i, s := range stmts {
		body[i] = s
	}
	return &Loop{Index: idx, Trip: trip, Body: body}
}

func TestFusionHazardsAligned(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "X", Dims: []*expr.Expr{n}},
		{Name: "Y", Dims: []*expr.Expr{n}},
	}
	// for i { X[i]=0 } ; for i { Y[i] += X[i] }: aligned — safe.
	a := mkLoop("i", n, &Stmt{Label: "S1", Refs: []Ref{
		{Array: "X", Mode: Write, Subs: []Subscript{Idx("i")}},
	}})
	b := mkLoop("i", n, &Stmt{Label: "S2", Refs: []Ref{
		{Array: "X", Mode: Read, Subs: []Subscript{Idx("i")}},
		{Array: "Y", Mode: Update, Subs: []Subscript{Idx("i")}},
	}})
	nest, err := NewNest("ok", arrays, []Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if h := FusionHazards(nest, a, b); len(h) != 0 {
		t.Fatalf("aligned fusion flagged: %v", h)
	}
}

func TestFusionHazardsMisaligned(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "X", Dims: []*expr.Expr{n, n}},
		{Name: "Y", Dims: []*expr.Expr{n, n}},
	}
	// Writer uses X[i,j], reader uses X[j,i] (transposed): iteration i of
	// the fused loop would read elements written by other iterations.
	a := &Loop{Index: "i", Trip: n, Body: []Node{
		&Loop{Index: "j", Trip: n, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{
				{Array: "X", Mode: Write, Subs: []Subscript{Idx("i"), Idx("j")}},
			}},
		}},
	}}
	b := &Loop{Index: "i", Trip: n, Body: []Node{
		&Loop{Index: "j2", Trip: n, Body: []Node{
			&Stmt{Label: "S2", Refs: []Ref{
				{Array: "X", Mode: Read, Subs: []Subscript{Idx("j2"), Idx("i")}},
				{Array: "Y", Mode: Update, Subs: []Subscript{Idx("i"), Idx("j2")}},
			}},
		}},
	}}
	nest, err := NewNest("transposed", arrays, []Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	h := FusionHazards(nest, a, b)
	if len(h) == 0 {
		t.Fatal("transposed access not flagged")
	}
	if !strings.Contains(h[0], "X") {
		t.Fatalf("hazard does not name the array: %v", h)
	}
}

func TestFusionHazardsPartialAccumulation(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "T", Dims: []*expr.Expr{expr.One()}},
		{Name: "Y", Dims: []*expr.Expr{n}},
		{Name: "X", Dims: []*expr.Expr{n}},
	}
	// for i { T += X[i] } ; for i { Y[i] += T }: fusing exposes prefix sums.
	a := mkLoop("i", n, &Stmt{Label: "S1", Refs: []Ref{
		{Array: "X", Mode: Read, Subs: []Subscript{Idx("i")}},
		{Array: "T", Mode: Update, Subs: []Subscript{ConstIdx()}},
	}})
	b := mkLoop("i", n, &Stmt{Label: "S2", Refs: []Ref{
		{Array: "T", Mode: Read, Subs: []Subscript{ConstIdx()}},
		{Array: "Y", Mode: Update, Subs: []Subscript{Idx("i")}},
	}})
	nest, err := NewNest("prefix", arrays, []Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	h := FusionHazards(nest, a, b)
	if len(h) == 0 {
		t.Fatal("partial-accumulation hazard not flagged")
	}
	if !strings.Contains(strings.Join(h, " "), "interleaving") {
		t.Fatalf("unexpected hazard text: %v", h)
	}
}

func TestFusionHazardsNonSiblings(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{{Name: "X", Dims: []*expr.Expr{n}}}
	a := mkLoop("i", n, &Stmt{Refs: []Ref{{Array: "X", Mode: Write, Subs: []Subscript{Idx("i")}}}})
	b := mkLoop("k", n, &Stmt{Refs: []Ref{{Array: "X", Mode: Read, Subs: []Subscript{Idx("k")}}}})
	nest, err := NewNest("nf", arrays, []Node{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if h := FusionHazards(nest, a, b); len(h) == 0 {
		t.Fatal("non-fusable loops not flagged")
	}
}

// TestGeneratedTwoIndexFusionIsHazardFree: the nests GenLoopNest produces
// for the two-index transform fuse without hazards at the outermost level
// for the init/accumulate pair of the same tensor — the pairs FuseAdjacent
// actually merges.
func TestGeneratedFusionPairsHazardFree(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "T1", Dims: []*expr.Expr{n, n}},
		{Name: "A", Dims: []*expr.Expr{n, n}},
		{Name: "C1", Dims: []*expr.Expr{n, n}},
	}
	init := &Loop{Index: "j", Trip: n, Body: []Node{
		&Loop{Index: "m", Trip: n, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{
				{Array: "T1", Mode: Write, Subs: []Subscript{Idx("j"), Idx("m")}},
			}},
		}},
	}}
	acc := &Loop{Index: "j", Trip: n, Body: []Node{
		&Loop{Index: "m", Trip: n, Body: []Node{
			&Loop{Index: "i", Trip: n, Body: []Node{
				&Stmt{Label: "S2", Refs: []Ref{
					{Array: "C1", Mode: Read, Subs: []Subscript{Idx("m"), Idx("i")}},
					{Array: "A", Mode: Read, Subs: []Subscript{Idx("i"), Idx("j")}},
					{Array: "T1", Mode: Update, Subs: []Subscript{Idx("j"), Idx("m")}},
				}},
			}},
		}},
	}}
	nest, err := NewNest("gen", arrays, []Node{init, acc})
	if err != nil {
		t.Fatal(err)
	}
	if h := FusionHazards(nest, init, acc); len(h) != 0 {
		t.Fatalf("init/accumulate pair flagged: %v", h)
	}
}
