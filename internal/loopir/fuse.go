package loopir

// FuseAdjacent merges adjacent sibling loops that share an index name and a
// trip count into one loop with the concatenated bodies, recursively — the
// mechanical half of the TCE's loop fusion (Fig. 1 of the paper: the
// producer's and consumer's common loops become one). It is legal for the
// class handled here because the loops are fully permutable with no
// fusion-preventing dependences (§2); storage contraction of the
// intermediate is a separate step (see tce.GenFusedTransformChain).
//
// The input nest is not modified; a new nest is returned.
func FuseAdjacent(n *Nest) (*Nest, error) {
	nodes, _ := fuseNodes(n, n.Root, false)
	var arrays []*Array
	for _, a := range n.Arrays {
		arrays = append(arrays, a)
	}
	return NewNest(n.Name+"-fused", arrays, nodes)
}

// FuseLegal is FuseAdjacent gated by the dependence diagnostics: a pair of
// fusable siblings is merged only when FusionHazards proves the merge safe,
// so the result is a legal nest even outside the TCE-generated class. The
// returned count is the number of loop pairs actually merged — zero means
// fusion is a structural no-op on this nest (nothing fusable, or every
// fusable pair is hazardous), which plan enumeration uses to discard the
// step.
func FuseLegal(n *Nest) (*Nest, int, error) {
	nodes, merges := fuseNodes(n, n.Root, true)
	var arrays []*Array
	for _, a := range n.Arrays {
		arrays = append(arrays, a)
	}
	fused, err := NewNest(n.Name+"-fused", arrays, nodes)
	if err != nil {
		return nil, 0, err
	}
	return fused, merges, nil
}

// fuseNodes is the shared walk of FuseAdjacent and FuseLegal: clone the
// tree, merging adjacent same-index/same-trip sibling loops bottom-up. With
// check set, a merge happens only when FusionHazards is empty on the pair.
func fuseNodes(n *Nest, nodes []Node, check bool) ([]Node, int) {
	merges := 0
	tryMerge := func(prev, next *Loop) bool {
		if prev.Index != next.Index || !prev.Trip.Equal(next.Trip) {
			return false
		}
		if check && len(FusionHazards(n, prev, next)) > 0 {
			return false
		}
		return true
	}
	// refuse merges fusable adjacent loops in an already-fused node list
	// (used after concatenating two bodies exposes a new boundary).
	var refuse func(nodes []Node) []Node
	refuse = func(nodes []Node) []Node {
		var out []Node
		for _, nd := range nodes {
			if l, ok := nd.(*Loop); ok && len(out) > 0 {
				if prev, pok := out[len(out)-1].(*Loop); pok && tryMerge(prev, l) {
					merges++
					prev.Body = refuse(append(prev.Body, l.Body...))
					continue
				}
			}
			out = append(out, nd)
		}
		return out
	}
	var fuse func(nodes []Node) []Node
	fuse = func(nodes []Node) []Node {
		var out []Node
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *Stmt:
				out = append(out, cloneStmt(v))
			case *Loop:
				body := fuse(v.Body)
				if len(out) > 0 {
					if prev, ok := out[len(out)-1].(*Loop); ok && tryMerge(prev, &Loop{Index: v.Index, Trip: v.Trip, Body: body}) {
						merges++
						prev.Body = append(prev.Body, body...)
						// Re-fuse inside the merged body: the two bodies'
						// boundary may now have adjacent fusable loops.
						prev.Body = refuse(prev.Body)
						continue
					}
				}
				out = append(out, &Loop{Index: v.Index, Trip: v.Trip, Body: body})
			}
		}
		return out
	}
	return fuse(nodes), merges
}

// LoopCount returns the number of loop nodes in the nest — a simple
// structural metric for fusion tests.
func (n *Nest) LoopCount() int { return len(n.loops) }
