package loopir

// FuseAdjacent merges adjacent sibling loops that share an index name and a
// trip count into one loop with the concatenated bodies, recursively — the
// mechanical half of the TCE's loop fusion (Fig. 1 of the paper: the
// producer's and consumer's common loops become one). It is legal for the
// class handled here because the loops are fully permutable with no
// fusion-preventing dependences (§2); storage contraction of the
// intermediate is a separate step (see tce.GenFusedTransformChain).
//
// The input nest is not modified; a new nest is returned.
func FuseAdjacent(n *Nest) (*Nest, error) {
	var fuse func(nodes []Node) []Node
	fuse = func(nodes []Node) []Node {
		var out []Node
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *Stmt:
				out = append(out, cloneStmt(v))
			case *Loop:
				body := fuse(v.Body)
				if len(out) > 0 {
					if prev, ok := out[len(out)-1].(*Loop); ok &&
						prev.Index == v.Index && prev.Trip.Equal(v.Trip) {
						prev.Body = append(prev.Body, body...)
						// Re-fuse inside the merged body: the two bodies'
						// boundary may now have adjacent fusable loops.
						prev.Body = refuse(prev.Body)
						continue
					}
				}
				out = append(out, &Loop{Index: v.Index, Trip: v.Trip, Body: body})
			}
		}
		return out
	}
	var arrays []*Array
	for _, a := range n.Arrays {
		arrays = append(arrays, a)
	}
	return NewNest(n.Name+"-fused", arrays, fuse(n.Root))
}

// refuse merges fusable adjacent loops in an already-fused node list (used
// after concatenating two bodies).
func refuse(nodes []Node) []Node {
	var out []Node
	for _, nd := range nodes {
		if l, ok := nd.(*Loop); ok && len(out) > 0 {
			if prev, pok := out[len(out)-1].(*Loop); pok &&
				prev.Index == l.Index && prev.Trip.Equal(l.Trip) {
				prev.Body = refuse(append(prev.Body, l.Body...))
				continue
			}
		}
		out = append(out, nd)
	}
	return out
}

// LoopCount returns the number of loop nodes in the nest — a simple
// structural metric for fusion tests.
func (n *Nest) LoopCount() int { return len(n.loops) }
