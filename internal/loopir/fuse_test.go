package loopir

import (
	"testing"

	"repro/internal/expr"
)

func TestFuseAdjacentSimple(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "X", Dims: []*expr.Expr{n}},
		{Name: "Y", Dims: []*expr.Expr{n}},
	}
	// for i { X[i]=0 } ; for i { Y[i]=0 }  →  for i { X[i]=0; Y[i]=0 }
	nest, err := NewNest("two", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{{Array: "X", Mode: Write, Subs: []Subscript{Idx("i")}}}},
		}},
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Label: "S2", Refs: []Ref{{Array: "Y", Mode: Write, Subs: []Subscript{Idx("i")}}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseAdjacent(nest)
	if err != nil {
		t.Fatal(err)
	}
	if fused.LoopCount() != 1 {
		t.Fatalf("fused has %d loops, want 1:\n%s", fused.LoopCount(), fused)
	}
	if len(fused.Stmts()) != 2 {
		t.Fatalf("statements lost: %d", len(fused.Stmts()))
	}
	// Original untouched.
	if nest.LoopCount() != 2 {
		t.Fatal("original nest mutated")
	}
}

func TestFuseAdjacentNested(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "X", Dims: []*expr.Expr{n, n}},
		{Name: "Y", Dims: []*expr.Expr{n, n}},
	}
	// for i { for j {X} } ; for i { for j {Y} } fuses to for i { for j {X; Y} }
	mk := func(arr, label string) Node {
		return &Loop{Index: "i", Trip: n, Body: []Node{
			&Loop{Index: "j", Trip: n, Body: []Node{
				&Stmt{Label: label, Refs: []Ref{{Array: arr, Mode: Write, Subs: []Subscript{Idx("i"), Idx("j")}}}},
			}},
		}}
	}
	nest, err := NewNest("nested", arrays, []Node{mk("X", "S1"), mk("Y", "S2")})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseAdjacent(nest)
	if err != nil {
		t.Fatal(err)
	}
	if fused.LoopCount() != 2 {
		t.Fatalf("want fully fused (2 loops), got %d:\n%s", fused.LoopCount(), fused)
	}
}

func TestFuseAdjacentRespectsMismatch(t *testing.T) {
	n, m := expr.Var("N"), expr.Var("M")
	arrays := []*Array{
		{Name: "X", Dims: []*expr.Expr{n}},
		{Name: "Y", Dims: []*expr.Expr{m}},
	}
	// Same trip but different index names: no fusion (the IR requires
	// same-named siblings to share trips, so a name mismatch is the only
	// valid way adjacent loops can be unfusable).
	nest, err := NewNest("mismatch", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "X", Mode: Write, Subs: []Subscript{Idx("i")}}}},
		}},
		&Loop{Index: "i2", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i2")}}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := FuseAdjacent(nest)
	if err != nil {
		t.Fatal(err)
	}
	if fused.LoopCount() != 2 {
		t.Fatalf("different index names must not fuse: %d loops", fused.LoopCount())
	}
	// Non-adjacent same loops (statement in between at top level) do not
	// exist in this IR (top level holds loops and statements), but a
	// differently named loop blocks fusion:
	nest2, err := NewNest("blocked", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "X", Mode: Write, Subs: []Subscript{Idx("i")}}}},
		}},
		&Loop{Index: "k", Trip: m, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "Y", Mode: Write, Subs: []Subscript{Idx("k")}}}},
		}},
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i")}}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fused2, err := FuseAdjacent(nest2)
	if err != nil {
		t.Fatal(err)
	}
	if fused2.LoopCount() != 3 {
		t.Fatalf("non-adjacent loops fused: %d", fused2.LoopCount())
	}
}
