package loopir_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/nestgen"
	"repro/internal/tce"
	"repro/internal/trace"
)

// runNest executes a nest numerically with deterministic integer-valued
// initial data (exact in float64, so reassociated reductions compare
// bit-equal) and returns the final contents of every array, sorted by name.
func runNest(t *testing.T, n *loopir.Nest, env expr.Env) map[string][]float64 {
	t.Helper()
	e, err := trace.NewExecutor(n, env)
	if err != nil {
		t.Fatalf("%s: executor: %v", n.Name, err)
	}
	names := make([]string, 0, len(n.Arrays))
	for name := range n.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for ai, name := range names {
		elems, err := n.Arrays[name].Elements().Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]float64, elems)
		for i := range data {
			data[i] = float64((i+ai*3)%5 + 1)
		}
		if err := e.SetArray(name, data); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	out := map[string][]float64{}
	for _, name := range names {
		data, err := e.Array(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

func sameState(a, b map[string][]float64) (string, bool) {
	for name, av := range a {
		bv, ok := b[name]
		if !ok || len(av) != len(bv) {
			return name, false
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Sprintf("%s[%d]: %v vs %v", name, i, av[i], bv[i]), false
			}
		}
	}
	return "", true
}

func allOrders(indices []string) [][]string {
	var out [][]string
	var build func(prefix, rest []string)
	build = func(prefix, rest []string) {
		if len(rest) == 0 {
			out = append(out, append([]string(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]string(nil), rest[:i]...), rest[i+1:]...)
			build(append(prefix, rest[i]), next)
		}
	}
	build(nil, indices)
	return out
}

// TestPermutabilityCrossCheckCorpus is the deps.go ↔ executor cross-check:
// on a corpus of generated perfect nests, an empty PermutationHazards list
// must mean every loop order computes the same final memory state. The
// corpus nests are reductions (Update targets), so the diagnostics claim
// them fully permutable; the executor is the independent referee.
func TestPermutabilityCrossCheckCorpus(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for id := 0; id < 24; id++ {
		nest, env, err := nestgen.Generate(r, id, nestgen.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if hz := loopir.PermutationHazards(nest); len(hz) != 0 {
			t.Fatalf("%s: generated reduction reported hazards: %v", nest.Name, hz)
		}
		chain, _, ok := nest.IsPerfect()
		if !ok {
			t.Fatalf("%s: generated perfect nest is not perfect", nest.Name)
		}
		indices := make([]string, len(chain))
		for i, l := range chain {
			indices[i] = l.Index
		}
		want := runNest(t, nest, env)
		for _, order := range allOrders(indices) {
			perm, err := loopir.ApplyPlan(nest, loopir.Plan{{Op: "permute", Order: order}})
			if err != nil {
				t.Fatalf("%s: legal permutation %v rejected: %v", nest.Name, order, err)
			}
			got := runNest(t, perm, env)
			if where, ok := sameState(want, got); !ok {
				t.Fatalf("%s: order %v changes the result at %s — hazard analysis missed a dependence",
					nest.Name, order, where)
			}
		}
	}
}

// genFusableSiblings builds a nest of 2–3 sibling loops over a shared index
// i (optionally with an inner j), each statement storing to one random
// array and reading up to two — the shape FuseLegal must gate. nestgen's
// imperfect nests give every branch fresh index names, so fusable siblings
// are constructed here.
func genFusableSiblings(t *testing.T, r *rand.Rand, id int) (*loopir.Nest, expr.Env) {
	t.Helper()
	n := expr.Var("N")
	arrays := []*loopir.Array{
		{Name: "A0", Dims: []*expr.Expr{n}},
		{Name: "A1", Dims: []*expr.Expr{n}},
		{Name: "A2", Dims: []*expr.Expr{n, n}},
	}
	subsFor := func(name string, avail []string) []loopir.Subscript {
		if name == "A2" {
			// Two-dimensional: needs two distinct indices (the class forbids
			// one index in two subscripts), so A2 only appears in deep bodies.
			return []loopir.Subscript{loopir.Idx(avail[0]), loopir.Idx(avail[1])}
		}
		return []loopir.Subscript{loopir.Idx(avail[r.Intn(len(avail))])}
	}
	var siblings []loopir.Node
	stmtNo := 0
	for s := 0; s < 2+r.Intn(2); s++ {
		avail := []string{"i"}
		deep := r.Intn(2) == 1
		if deep {
			avail = append(avail, "j")
		}
		stmtNo++
		names := []string{"A0", "A1", "A2"}
		if !deep {
			names = names[:2]
		}
		store := names[r.Intn(len(names))]
		mode := loopir.Update
		if r.Intn(2) == 0 {
			mode = loopir.Write
		}
		refs := []loopir.Ref{}
		for _, rd := range names[:r.Intn(len(names))] {
			refs = append(refs, loopir.Ref{Array: rd, Mode: loopir.Read, Subs: subsFor(rd, avail)})
		}
		refs = append(refs, loopir.Ref{Array: store, Mode: mode, Subs: subsFor(store, avail)})
		var body loopir.Node = &loopir.Stmt{Label: fmt.Sprintf("S%d", stmtNo), Refs: refs}
		if deep {
			body = &loopir.Loop{Index: "j", Trip: n, Body: []loopir.Node{body}}
		}
		siblings = append(siblings, &loopir.Loop{Index: "i", Trip: n, Body: []loopir.Node{body}})
	}
	nest, err := loopir.NewNest(fmt.Sprintf("fusable-%d", id), arrays, siblings)
	if err != nil {
		t.Fatal(err)
	}
	return nest, expr.Env{"N": 5}
}

// TestFusionCrossCheckCorpus checks the fusion side of the dependence
// diagnostics: over a corpus of randomly generated fusable-sibling nests
// (plus the TCE unfused contraction chain), whenever FuseLegal merges
// loops the fused nest computes the same final state as the original; the
// corpus must exercise both merged and hazard-rejected cases.
func TestFusionCrossCheckCorpus(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	merged, rejected := 0, 0
	check := func(nest *loopir.Nest, env expr.Env) {
		fused, merges, err := loopir.FuseLegal(nest)
		if err != nil {
			t.Fatal(err)
		}
		if merges == 0 {
			rejected++
			return
		}
		merged++
		want := runNest(t, nest, env)
		got := runNest(t, fused, env)
		if where, ok := sameState(want, got); !ok {
			t.Fatalf("%s: legal fusion changes the result at %s", nest.Name, where)
		}
	}
	for id := 0; id < 60; id++ {
		nest, env := genFusableSiblings(t, r, id)
		check(nest, env)
	}
	chain, err := tce.UnfusedTwoIndex(nil)
	if err != nil {
		t.Fatal(err)
	}
	check(chain, expr.Env{"N": 6, "V": 3})
	if merged == 0 || rejected == 0 {
		t.Fatalf("corpus is one-sided: %d merged, %d rejected", merged, rejected)
	}
}
