// Package loopir defines the loop-nest intermediate representation analyzed
// by the cache-miss model. A nest is a tree whose internal nodes are loops
// and whose leaves are statements containing array references. The class of
// programs representable here is exactly the class the paper targets: loop
// bounds may be symbolic, nests may be imperfect (a loop body may contain
// several statements and sub-loops), and every array subscript is a linear
// combination of enclosing loop indices — in practice either one loop index
// (`A[i,j]`) or a tile pair (`A[iT*TI + iI, ...]`).
//
// Loops iterate from 0 to Trip-1; subscripts are 0-based. All symbolic
// quantities are expressions from internal/expr.
package loopir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Node is a loop-tree node: either *Loop or *Stmt.
type Node interface {
	isNode()
}

// Loop is a counted loop running its body Trip times with a named index.
type Loop struct {
	Index string     // loop index name, unique within a nest
	Trip  *expr.Expr // symbolic trip count; index ranges over [0, Trip)
	Body  []Node
}

func (*Loop) isNode() {}

// AccessMode describes how a reference touches memory. The cache model does
// not distinguish reads and writes (a += both reads and writes the same
// element and counts as a single touch), but trace consumers may.
type AccessMode int

const (
	// Read is a load.
	Read AccessMode = iota
	// Write is a store.
	Write
	// Update is a read-modify-write of a single element (+=).
	Update
)

func (m AccessMode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case Update:
		return "update"
	}
	return "invalid"
}

// Stmt is a leaf statement; executing it touches each Ref once, in order.
type Stmt struct {
	ID    int    // sequence number in program order, assigned by NewNest
	Label string // human-readable label, e.g. "S7"
	Refs  []Ref
	Flops int // floating-point operations per execution, for time models
}

func (*Stmt) isNode() {}

// Ref is a static array reference inside a statement.
type Ref struct {
	Array string
	Mode  AccessMode
	Subs  []Subscript
}

// Subscript is one array dimension's index expression: the sum over Terms of
// Stride * value(Index).
type Subscript struct {
	Terms []Term
}

// Term is one linear term of a subscript.
type Term struct {
	Index  string
	Stride *expr.Expr // nil means stride 1
}

// Idx builds the common single-index subscript with stride 1.
func Idx(index string) Subscript {
	return Subscript{Terms: []Term{{Index: index}}}
}

// ConstIdx builds the constant-zero subscript, used for scalars produced by
// loop fusion (an intermediate contracted to a single element).
func ConstIdx() Subscript {
	return Subscript{}
}

// TilePair builds the subscript tileIdx*stride + intraIdx used by tiled
// code: the tile loop contributes its index scaled by the tile size and the
// intra-tile loop contributes stride 1.
func TilePair(tileIdx string, tileSize *expr.Expr, intraIdx string) Subscript {
	return Subscript{Terms: []Term{
		{Index: tileIdx, Stride: tileSize},
		{Index: intraIdx},
	}}
}

// Array declares the extent of an array; extents are symbolic and row-major
// layout is assumed for address mapping.
type Array struct {
	Name string
	Dims []*expr.Expr
}

// Elements returns the symbolic element count of the array.
func (a *Array) Elements() *expr.Expr {
	n := expr.One()
	for _, d := range a.Dims {
		n = expr.Mul(n, d)
	}
	return n
}

// Nest is a complete analyzable program: array declarations plus a loop
// tree. Construct with NewNest, which assigns statement IDs, builds parent
// links, and validates the class constraints.
type Nest struct {
	Name   string
	Arrays map[string]*Array
	Root   []Node

	stmts   []*Stmt
	loops   []*Loop
	parent  map[Node]*Loop // nil parent = top level
	encl    map[*Stmt][]*Loop
	loopByI map[string]*Loop
	refStmt map[string][]*Stmt // array name -> statements touching it, program order
}

// NewNest builds and validates a nest. The arrays slice declares every array
// referenced anywhere in the tree.
func NewNest(name string, arrays []*Array, root []Node) (*Nest, error) {
	n := &Nest{
		Name:    name,
		Arrays:  map[string]*Array{},
		Root:    root,
		parent:  map[Node]*Loop{},
		encl:    map[*Stmt][]*Loop{},
		loopByI: map[string]*Loop{},
		refStmt: map[string][]*Stmt{},
	}
	for _, a := range arrays {
		if a == nil || a.Name == "" {
			return nil, fmt.Errorf("loopir: nil or unnamed array declaration")
		}
		if len(a.Dims) == 0 {
			return nil, fmt.Errorf("loopir: array %s has no dimensions", a.Name)
		}
		if _, dup := n.Arrays[a.Name]; dup {
			return nil, fmt.Errorf("loopir: duplicate array %s", a.Name)
		}
		n.Arrays[a.Name] = a
	}
	id := 0
	var walk func(nodes []Node, p *Loop, stack []*Loop) error
	walk = func(nodes []Node, p *Loop, stack []*Loop) error {
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *Loop:
				if v.Index == "" {
					return fmt.Errorf("loopir: loop with empty index")
				}
				if v.Trip == nil {
					return fmt.Errorf("loopir: loop %s has nil trip count", v.Index)
				}
				// Sibling subtrees may reuse an index name (the paper's
				// Fig. 6 reuses iI and nI across sub-nests), but shadowing
				// within one path is forbidden and same-named loops must
				// have identical trip counts so that symbolic treatment by
				// name is coherent.
				for _, anc := range stack {
					if anc.Index == v.Index {
						return fmt.Errorf("loopir: duplicate loop index %s nested within itself", v.Index)
					}
				}
				if prev, dup := n.loopByI[v.Index]; dup {
					if !prev.Trip.Equal(v.Trip) {
						return fmt.Errorf("loopir: loops named %s have different trip counts (%s vs %s)",
							v.Index, prev.Trip, v.Trip)
					}
				} else {
					n.loopByI[v.Index] = v
				}
				n.loops = append(n.loops, v)
				n.parent[v] = p
				if err := walk(v.Body, v, append(stack, v)); err != nil {
					return err
				}
			case *Stmt:
				v.ID = id
				id++
				if v.Label == "" {
					v.Label = fmt.Sprintf("S%d", v.ID)
				}
				n.stmts = append(n.stmts, v)
				n.parent[v] = p
				n.encl[v] = append([]*Loop(nil), stack...)
				for ri := range v.Refs {
					if err := n.checkRef(&v.Refs[ri], v, stack); err != nil {
						return err
					}
				}
				touched := map[string]bool{}
				for _, r := range v.Refs {
					if !touched[r.Array] {
						touched[r.Array] = true
						n.refStmt[r.Array] = append(n.refStmt[r.Array], v)
					}
				}
			default:
				return fmt.Errorf("loopir: unknown node type %T", nd)
			}
		}
		return nil
	}
	if err := walk(root, nil, nil); err != nil {
		return nil, err
	}
	if len(n.stmts) == 0 {
		return nil, fmt.Errorf("loopir: nest %s has no statements", name)
	}
	return n, nil
}

func (n *Nest) checkRef(r *Ref, s *Stmt, stack []*Loop) error {
	arr, ok := n.Arrays[r.Array]
	if !ok {
		return fmt.Errorf("loopir: %s references undeclared array %s", s.Label, r.Array)
	}
	if len(r.Subs) != len(arr.Dims) {
		return fmt.Errorf("loopir: %s reference to %s has %d subscripts, array has %d dims",
			s.Label, r.Array, len(r.Subs), len(arr.Dims))
	}
	inScope := map[string]bool{}
	for _, l := range stack {
		inScope[l.Index] = true
	}
	seen := map[string]bool{}
	for _, sub := range r.Subs {
		// An empty term list is the constant-zero subscript (fused scalar).
		for _, t := range sub.Terms {
			if !inScope[t.Index] {
				return fmt.Errorf("loopir: %s ref %s uses index %s not in scope", s.Label, r.Array, t.Index)
			}
			if seen[t.Index] {
				return fmt.Errorf("loopir: %s ref %s uses index %s in two subscripts", s.Label, r.Array, t.Index)
			}
			seen[t.Index] = true
		}
	}
	return nil
}

// Stmts returns the statements in program order.
func (n *Nest) Stmts() []*Stmt { return n.stmts }

// Loops returns all loops in depth-first order.
func (n *Nest) Loops() []*Loop { return n.loops }

// Loop returns the loop with the given index name, or nil.
func (n *Nest) Loop(index string) *Loop { return n.loopByI[index] }

// Enclosing returns the loops enclosing s, outermost first.
func (n *Nest) Enclosing(s *Stmt) []*Loop { return n.encl[s] }

// Parent returns the innermost loop containing nd (nil at top level).
func (n *Nest) Parent(nd Node) *Loop { return n.parent[nd] }

// StmtsTouching returns the statements referencing the array, in program
// order.
func (n *Nest) StmtsTouching(array string) []*Stmt { return n.refStmt[array] }

// Depth returns the nesting depth of s (number of enclosing loops).
func (n *Nest) Depth(s *Stmt) int { return len(n.encl[s]) }

// AppearingLoops returns, for reference r of statement s, the subset of
// enclosing loops whose index appears in r, outermost first, and the
// complementary non-appearing loops.
func (n *Nest) AppearingLoops(s *Stmt, r *Ref) (app, nonApp []*Loop) {
	used := map[string]bool{}
	for _, sub := range r.Subs {
		for _, t := range sub.Terms {
			used[t.Index] = true
		}
	}
	for _, l := range n.encl[s] {
		if used[l.Index] {
			app = append(app, l)
		} else {
			nonApp = append(nonApp, l)
		}
	}
	return app, nonApp
}

// SymbolNames returns every symbol mentioned by trip counts, strides, or
// array extents, sorted.
func (n *Nest) SymbolNames() []string {
	vars := map[string]bool{}
	for _, l := range n.loops {
		l.Trip.Vars(vars)
	}
	for _, a := range n.Arrays {
		for _, d := range a.Dims {
			d.Vars(vars)
		}
	}
	for _, s := range n.stmts {
		for _, r := range s.Refs {
			for _, sub := range r.Subs {
				for _, t := range sub.Terms {
					if t.Stride != nil {
						t.Stride.Vars(vars)
					}
				}
			}
		}
	}
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ValidateEnv checks that env binds every symbol of the nest to a positive
// value and that every trip count and array extent evaluates positive.
func (n *Nest) ValidateEnv(env expr.Env) error {
	for _, name := range n.SymbolNames() {
		v, ok := env[name]
		if !ok {
			return fmt.Errorf("loopir: env missing symbol %s", name)
		}
		if v <= 0 {
			return fmt.Errorf("loopir: symbol %s must be positive, got %d", name, v)
		}
	}
	for _, l := range n.loops {
		v, err := l.Trip.Eval(env)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("loopir: loop %s trip %s evaluates to %d", l.Index, l.Trip, v)
		}
	}
	for _, a := range n.Arrays {
		for di, d := range a.Dims {
			v, err := d.Eval(env)
			if err != nil {
				return err
			}
			if v <= 0 {
				return fmt.Errorf("loopir: array %s dim %d extent %s evaluates to %d", a.Name, di, d, v)
			}
		}
	}
	return nil
}

// Footprint returns the symbolic total memory footprint of the nest in
// elements: the sum of all array sizes. This is the quantity loop fusion
// reduces (Fig. 1 of the paper) and the bound that decides when a
// computation needs out-of-core treatment.
func (n *Nest) Footprint() *expr.Expr {
	total := expr.Zero()
	for _, a := range n.Arrays {
		total = expr.Add(total, a.Elements())
	}
	return total
}

// TotalIterations returns the symbolic total number of innermost statement
// executions, summed over all statements.
func (n *Nest) TotalIterations() *expr.Expr {
	total := expr.Zero()
	for _, s := range n.stmts {
		iter := expr.One()
		for _, l := range n.encl[s] {
			iter = expr.Mul(iter, l.Trip)
		}
		total = expr.Add(total, iter)
	}
	return total
}

// String renders the nest as indented pseudo-code, in the style of the
// paper's figures.
func (n *Nest) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nest %s\n", n.Name)
	names := make([]string, 0, len(n.Arrays))
	for name := range n.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := n.Arrays[name]
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&b, "  double %s[%s]\n", name, strings.Join(dims, ", "))
	}
	var walk func(nodes []Node, indent string)
	walk = func(nodes []Node, indent string) {
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *Loop:
				fmt.Fprintf(&b, "%sfor %s = 0, %s-1\n", indent, v.Index, v.Trip)
				walk(v.Body, indent+"  ")
			case *Stmt:
				refs := make([]string, len(v.Refs))
				for i := range v.Refs {
					refs[i] = v.Refs[i].String()
				}
				fmt.Fprintf(&b, "%s%s: %s\n", indent, v.Label, strings.Join(refs, ", "))
			}
		}
	}
	walk(n.Root, "  ")
	return b.String()
}

// String renders the reference, e.g. "A[iT*TI + iI, jT*TJ + jI] (read)".
func (r Ref) String() string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		terms := make([]string, len(s.Terms))
		for j, t := range s.Terms {
			if t.Stride == nil {
				terms[j] = t.Index
			} else {
				terms[j] = t.Index + "*" + t.Stride.String()
			}
		}
		subs[i] = strings.Join(terms, " + ")
	}
	return fmt.Sprintf("%s[%s] (%s)", r.Array, strings.Join(subs, ", "), r.Mode)
}
