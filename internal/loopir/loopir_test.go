package loopir

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// simpleMatmul builds an untiled i-j-k matrix multiplication nest.
func simpleMatmul(t *testing.T) *Nest {
	t.Helper()
	n := expr.Var("N")
	stmt := &Stmt{
		Label: "S1",
		Flops: 2,
		Refs: []Ref{
			{Array: "A", Mode: Read, Subs: []Subscript{Idx("i"), Idx("j")}},
			{Array: "B", Mode: Read, Subs: []Subscript{Idx("j"), Idx("k")}},
			{Array: "C", Mode: Update, Subs: []Subscript{Idx("i"), Idx("k")}},
		},
	}
	nest, err := BuildPerfect(PerfectNestSpec{
		Name: "matmul",
		Arrays: []*Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt:    stmt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

func TestBuildPerfectStructure(t *testing.T) {
	nest := simpleMatmul(t)
	if got := len(nest.Loops()); got != 3 {
		t.Fatalf("got %d loops, want 3", got)
	}
	if got := len(nest.Stmts()); got != 1 {
		t.Fatalf("got %d stmts, want 1", got)
	}
	s := nest.Stmts()[0]
	encl := nest.Enclosing(s)
	if len(encl) != 3 || encl[0].Index != "i" || encl[2].Index != "k" {
		t.Fatalf("bad enclosing loops %v", encl)
	}
	if nest.Parent(s) != encl[2] {
		t.Fatal("parent of stmt should be the k loop")
	}
	if nest.Parent(encl[0]) != nil {
		t.Fatal("outermost loop should have nil parent")
	}
}

func TestAppearingLoops(t *testing.T) {
	nest := simpleMatmul(t)
	s := nest.Stmts()[0]
	app, non := nest.AppearingLoops(s, &s.Refs[0]) // A[i,j]
	if len(app) != 2 || app[0].Index != "i" || app[1].Index != "j" {
		t.Fatalf("A appearing = %v", app)
	}
	if len(non) != 1 || non[0].Index != "k" {
		t.Fatalf("A non-appearing = %v", non)
	}
	app, non = nest.AppearingLoops(s, &s.Refs[2]) // C[i,k]
	if len(app) != 2 || app[0].Index != "i" || app[1].Index != "k" {
		t.Fatalf("C appearing = %v", app)
	}
	if len(non) != 1 || non[0].Index != "j" {
		t.Fatalf("C non-appearing = %v", non)
	}
}

func TestTilePerfect(t *testing.T) {
	n := expr.Var("N")
	base := PerfectNestSpec{
		Name: "matmul",
		Arrays: []*Array{
			{Name: "A", Dims: []*expr.Expr{n, n}},
			{Name: "B", Dims: []*expr.Expr{n, n}},
			{Name: "C", Dims: []*expr.Expr{n, n}},
		},
		Indices: []string{"i", "j", "k"},
		Trips:   []*expr.Expr{n, n, n},
		Stmt: &Stmt{
			Label: "S1",
			Refs: []Ref{
				{Array: "A", Mode: Read, Subs: []Subscript{Idx("i"), Idx("j")}},
				{Array: "B", Mode: Read, Subs: []Subscript{Idx("j"), Idx("k")}},
				{Array: "C", Mode: Update, Subs: []Subscript{Idx("i"), Idx("k")}},
			},
		},
	}
	tiles := []TileSpec{
		DefaultTileSpec("i", n),
		DefaultTileSpec("j", n),
		DefaultTileSpec("k", n),
	}
	nest, err := TilePerfect(base, tiles)
	if err != nil {
		t.Fatal(err)
	}
	loops := nest.Loops()
	if len(loops) != 6 {
		t.Fatalf("got %d loops want 6", len(loops))
	}
	wantOrder := []string{"iT", "jT", "kT", "iI", "jI", "kI"}
	for i, l := range loops {
		if l.Index != wantOrder[i] {
			t.Fatalf("loop %d = %s want %s", i, l.Index, wantOrder[i])
		}
	}
	// Intra loop trips are the tile symbols; tile loop trips are ceil(N/T).
	if !loops[3].Trip.Equal(expr.Var("TI")) {
		t.Fatalf("iI trip = %s", loops[3].Trip)
	}
	if loops[0].Trip.Kind() != expr.KindCeilDiv {
		t.Fatalf("iT trip = %s", loops[0].Trip)
	}
	// Subscripts became tile pairs.
	s := nest.Stmts()[0]
	a := s.Refs[0]
	if len(a.Subs[0].Terms) != 2 || a.Subs[0].Terms[0].Index != "iT" || a.Subs[0].Terms[1].Index != "iI" {
		t.Fatalf("A dim0 subscript = %v", a.Subs[0])
	}
	if !a.Subs[0].Terms[0].Stride.Equal(expr.Var("TI")) {
		t.Fatalf("A dim0 tile stride = %v", a.Subs[0].Terms[0].Stride)
	}
	// Environment with exact division validates.
	env := expr.Env{"N": 64, "TI": 16, "TJ": 8, "TK": 32}
	if err := nest.ValidateEnv(env); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	n := expr.Var("N")
	arrays := []*Array{{Name: "A", Dims: []*expr.Expr{n}}}
	// Out-of-scope index.
	_, err := NewNest("bad", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("z")}}}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "not in scope") {
		t.Fatalf("want out-of-scope error, got %v", err)
	}
	// Undeclared array.
	_, err = NewNest("bad2", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "Q", Subs: []Subscript{Idx("i")}}}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("want undeclared-array error, got %v", err)
	}
	// Wrong dimensionality.
	_, err = NewNest("bad3", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i"), Idx("i")}}}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "subscripts") {
		t.Fatalf("want dimensionality error, got %v", err)
	}
	// Duplicate loop index nested within itself (shadowing).
	_, err = NewNest("bad4", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Loop{Index: "i", Trip: n, Body: []Node{
				&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i")}}}},
			}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate loop index") {
		t.Fatalf("want duplicate-index error, got %v", err)
	}
	// Sibling loops with the same name and equal trips are allowed...
	_, err = NewNest("ok-dup", arrays, []Node{
		&Loop{Index: "o", Trip: n, Body: []Node{
			&Loop{Index: "i", Trip: n, Body: []Node{
				&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i")}}}},
			}},
			&Loop{Index: "i", Trip: n, Body: []Node{
				&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i")}}}},
			}},
		}},
	})
	if err != nil {
		t.Fatalf("sibling same-name loops should be accepted: %v", err)
	}
	// ...but not with different trip counts.
	_, err = NewNest("bad-dup", arrays, []Node{
		&Loop{Index: "o", Trip: n, Body: []Node{
			&Loop{Index: "i", Trip: n, Body: []Node{
				&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i")}}}},
			}},
			&Loop{Index: "i", Trip: expr.Const(2), Body: []Node{
				&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i")}}}},
			}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "different trip counts") {
		t.Fatalf("want trip-count mismatch error, got %v", err)
	}
	// Same index used in two subscripts of one reference.
	arrays2 := []*Array{{Name: "A", Dims: []*expr.Expr{n, n}}}
	_, err = NewNest("bad5", arrays2, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "A", Subs: []Subscript{Idx("i"), Idx("i")}}}},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "two subscripts") {
		t.Fatalf("want repeated-index error, got %v", err)
	}
	// No statements at all.
	_, err = NewNest("bad6", arrays, []Node{&Loop{Index: "i", Trip: n}})
	if err == nil || !strings.Contains(err.Error(), "no statements") {
		t.Fatalf("want no-statement error, got %v", err)
	}
}

func TestValidateEnv(t *testing.T) {
	nest := simpleMatmul(t)
	if err := nest.ValidateEnv(expr.Env{"N": 8}); err != nil {
		t.Fatal(err)
	}
	if err := nest.ValidateEnv(expr.Env{}); err == nil {
		t.Fatal("missing symbol should fail")
	}
	if err := nest.ValidateEnv(expr.Env{"N": 0}); err == nil {
		t.Fatal("non-positive symbol should fail")
	}
}

func TestTotalIterations(t *testing.T) {
	nest := simpleMatmul(t)
	got, err := nest.TotalIterations().Eval(expr.Env{"N": 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 125 {
		t.Fatalf("got %d want 125", got)
	}
}

func TestStmtsTouchingAndSites(t *testing.T) {
	nest := simpleMatmul(t)
	if got := nest.StmtsTouching("A"); len(got) != 1 {
		t.Fatalf("StmtsTouching(A) = %v", got)
	}
	sites := nest.Sites()
	if len(sites) != 3 {
		t.Fatalf("got %d sites want 3", len(sites))
	}
	if sites[0].Key() != "S1#0" {
		t.Fatalf("site key %s", sites[0].Key())
	}
	aSites := nest.SitesFor("A")
	if len(aSites) != 1 || aSites[0].Ref().Array != "A" {
		t.Fatalf("SitesFor(A) = %v", aSites)
	}
}

func TestStringRendering(t *testing.T) {
	nest := simpleMatmul(t)
	out := nest.String()
	for _, want := range []string{"for i = 0, N-1", "A[i, j] (read)", "C[i, k] (update)", "double A[N, N]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFootprint(t *testing.T) {
	nest := simpleMatmul(t)
	got, err := nest.Footprint().Eval(expr.Env{"N": 10})
	if err != nil || got != 300 {
		t.Fatalf("footprint %d, %v (want 300)", got, err)
	}
}

func TestArrayElements(t *testing.T) {
	n := expr.Var("N")
	a := &Array{Name: "A", Dims: []*expr.Expr{n, expr.Const(4)}}
	v, err := a.Elements().Eval(expr.Env{"N": 10})
	if err != nil || v != 40 {
		t.Fatalf("elements = %d, %v", v, err)
	}
}

func TestImperfectNestConstruction(t *testing.T) {
	// Mirror of the paper's Fig. 6 shape in miniature:
	// for i { S1; for j { S2 } ; for m { S3 } }
	n := expr.Var("N")
	arrays := []*Array{
		{Name: "T", Dims: []*expr.Expr{n}},
		{Name: "A", Dims: []*expr.Expr{n, n}},
		{Name: "B", Dims: []*expr.Expr{n, n}},
	}
	s1 := &Stmt{Label: "S1", Refs: []Ref{{Array: "T", Mode: Write, Subs: []Subscript{Idx("i")}}}}
	s2 := &Stmt{Label: "S2", Refs: []Ref{
		{Array: "T", Mode: Update, Subs: []Subscript{Idx("i")}},
		{Array: "A", Mode: Read, Subs: []Subscript{Idx("i"), Idx("j")}},
	}}
	s3 := &Stmt{Label: "S3", Refs: []Ref{
		{Array: "B", Mode: Update, Subs: []Subscript{Idx("m"), Idx("i")}},
		{Array: "T", Mode: Read, Subs: []Subscript{Idx("i")}},
	}}
	nest, err := NewNest("imperfect", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			s1,
			&Loop{Index: "j", Trip: n, Body: []Node{s2}},
			&Loop{Index: "m", Trip: n, Body: []Node{s3}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nest.Stmts()); got != 3 {
		t.Fatalf("got %d stmts", got)
	}
	if ids := []int{nest.Stmts()[0].ID, nest.Stmts()[1].ID, nest.Stmts()[2].ID}; ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("stmt IDs %v not in program order", ids)
	}
	tStmts := nest.StmtsTouching("T")
	if len(tStmts) != 3 {
		t.Fatalf("T touched by %d stmts, want 3", len(tStmts))
	}
	if d := nest.Depth(s2); d != 2 {
		t.Fatalf("depth(S2)=%d want 2", d)
	}
}
