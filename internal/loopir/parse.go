package loopir

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/expr"
)

// This file implements a small text format for loop nests, so that the
// command-line tools can characterize user-written programs without Go
// code. The format mirrors the paper's presentation:
//
//	nest twoindex
//	array A[NI, NJ]
//	array T[TI, TN]
//
//	for iT = ceil(NI/TI) {
//	  for nT = ceil(NN/TN) {
//	    for iI = TI { for nI = TN {
//	      S5: T[iI, nI] = 0
//	    } }
//	    for jT = ceil(NJ/TJ) {
//	      for iI = TI { for nI = TN { for jI = TJ {
//	        S7: T[iI, nI] += A[iT*TI + iI, jT*TJ + jI] * C2[nT*TN + nI, jT*TJ + jI]
//	      } } }
//	    }
//	  }
//	}
//
// Loops declare their trip count after '='; statements are either
// `LABEL: ref = 0` (initialization) or `LABEL: ref += ref * ref ...`
// (multiply-accumulate). Subscripts are sums of `index` or `index*Stride`
// terms; `T[]` is a scalar. '#' starts a comment. Trip counts and strides
// are expressions over integers and symbols with * / + - and ceil(x/y).

// Parse builds a Nest from the textual form.
func Parse(src string) (*Nest, error) {
	p := &parser{toks: lex(src)}
	return p.parseNest()
}

// Unparse renders a nest in the textual form accepted by Parse.
func Unparse(n *Nest) string {
	var b strings.Builder
	name := strings.Map(func(r rune) rune {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			return r
		}
		return '_'
	}, n.Name)
	fmt.Fprintf(&b, "nest %s\n", name)
	names := make([]string, 0, len(n.Arrays))
	for name := range n.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := n.Arrays[name]
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = unparseExpr(d)
		}
		fmt.Fprintf(&b, "array %s[%s]\n", name, strings.Join(dims, ", "))
	}
	var walk func(nodes []Node, indent string)
	walk = func(nodes []Node, indent string) {
		for _, nd := range nodes {
			switch v := nd.(type) {
			case *Loop:
				fmt.Fprintf(&b, "%sfor %s = %s {\n", indent, v.Index, unparseExpr(v.Trip))
				walk(v.Body, indent+"  ")
				fmt.Fprintf(&b, "%s}\n", indent)
			case *Stmt:
				fmt.Fprintf(&b, "%s%s: %s\n", indent, v.Label, unparseStmt(v))
			}
		}
	}
	walk(n.Root, "")
	return b.String()
}

func unparseStmt(s *Stmt) string {
	var target *Ref
	var reads []string
	for i := range s.Refs {
		r := &s.Refs[i]
		if r.Mode == Read {
			reads = append(reads, unparseRef(r))
		} else {
			target = r
		}
	}
	if target == nil {
		// Read-only statements are representable but unusual; render as a
		// degenerate accumulate into the first ref.
		return strings.Join(reads, " * ")
	}
	if len(reads) == 0 {
		return unparseRef(target) + " = 0"
	}
	return unparseRef(target) + " += " + strings.Join(reads, " * ")
}

func unparseRef(r *Ref) string {
	subs := make([]string, len(r.Subs))
	for i, sub := range r.Subs {
		var terms []string
		for _, t := range sub.Terms {
			if t.Stride == nil {
				terms = append(terms, t.Index)
			} else {
				terms = append(terms, t.Index+"*"+unparseExpr(t.Stride))
			}
		}
		subs[i] = strings.Join(terms, " + ")
	}
	return r.Array + "[" + strings.Join(subs, ", ") + "]"
}

// unparseExpr renders an expression in parser-compatible syntax. The expr
// package's canonical form ("ceil(N / TI)", "TI*TN + 2", …) is already in
// the grammar the parser accepts.
func unparseExpr(e *expr.Expr) string {
	return e.String()
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokPunct // one of [ ] { } ( ) , : = + - * / and "+="
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '+' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tokPunct, "+=", line})
			i += 2
		case strings.ContainsRune("[]{}(),:=+-*/", rune(c)):
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		default:
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("loopir: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("loopir: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) parseNest() (*Nest, error) {
	if err := p.expect("nest"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("loopir: line %d: nest name expected", nameTok.line)
	}
	var arrays []*Array
	for p.peek().text == "array" {
		p.next()
		a, err := p.parseArray()
		if err != nil {
			return nil, err
		}
		arrays = append(arrays, a)
	}
	var root []Node
	for p.peek().kind != tokEOF {
		nd, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		root = append(root, nd)
	}
	return NewNest(nameTok.text, arrays, root)
}

func (p *parser) parseArray() (*Array, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("loopir: line %d: array name expected", nameTok.line)
	}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	var dims []*expr.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		dims = append(dims, e)
		t := p.next()
		if t.text == "]" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("loopir: line %d: expected , or ] in array dims", t.line)
		}
	}
	return &Array{Name: nameTok.text, Dims: dims}, nil
}

func (p *parser) parseNode() (Node, error) {
	t := p.peek()
	if t.text == "for" {
		return p.parseFor()
	}
	if t.kind == tokIdent {
		return p.parseStmt()
	}
	return nil, p.errf("expected 'for' or a statement label, got %q", t.text)
}

func (p *parser) parseFor() (Node, error) {
	p.next() // for
	idx := p.next()
	if idx.kind != tokIdent {
		return nil, fmt.Errorf("loopir: line %d: loop index expected", idx.line)
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	trip, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var body []Node
	for p.peek().text != "}" {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unterminated loop body for %s", idx.text)
		}
		nd, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		body = append(body, nd)
	}
	p.next() // }
	return &Loop{Index: idx.text, Trip: trip, Body: body}, nil
}

func (p *parser) parseStmt() (Node, error) {
	label := p.next()
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	target, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	op := p.next()
	st := &Stmt{Label: label.text}
	switch op.text {
	case "=":
		// `ref = 0` initialization
		z := p.next()
		if z.text != "0" {
			return nil, fmt.Errorf("loopir: line %d: only '= 0' initialization is supported", z.line)
		}
		target.Mode = Write
		st.Refs = []Ref{*target}
	case "+=":
		var reads []Ref
		for {
			r, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			r.Mode = Read
			reads = append(reads, *r)
			if p.peek().text != "*" {
				break
			}
			p.next()
		}
		target.Mode = Update
		st.Refs = append(reads, *target)
		st.Flops = 2
	default:
		return nil, fmt.Errorf("loopir: line %d: expected = or += after reference", op.line)
	}
	return st, nil
}

func (p *parser) parseRef() (*Ref, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("loopir: line %d: array name expected", nameTok.line)
	}
	if err := p.expect("["); err != nil {
		return nil, err
	}
	ref := &Ref{Array: nameTok.text}
	if p.peek().text == "]" {
		p.next()
		ref.Subs = []Subscript{ConstIdx()}
		return ref, nil
	}
	for {
		sub, err := p.parseSubscript()
		if err != nil {
			return nil, err
		}
		ref.Subs = append(ref.Subs, sub)
		t := p.next()
		if t.text == "]" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("loopir: line %d: expected , or ] in subscripts", t.line)
		}
	}
	return ref, nil
}

// parseSubscript parses `idx` or `idx*stride` joined by '+'.
func (p *parser) parseSubscript() (Subscript, error) {
	var sub Subscript
	for {
		idTok := p.next()
		if idTok.kind != tokIdent {
			return sub, fmt.Errorf("loopir: line %d: subscript index expected, got %q", idTok.line, idTok.text)
		}
		term := Term{Index: idTok.text}
		if p.peek().text == "*" {
			p.next()
			stride, err := p.parseAtom()
			if err != nil {
				return sub, err
			}
			term.Stride = stride
		}
		sub.Terms = append(sub.Terms, term)
		if p.peek().text != "+" {
			return sub, nil
		}
		p.next()
	}
}

// --- expression grammar: sum -> product (('+'|'-') product)* ;
// product -> atom (('*'|'/') atom)* ; atom -> number | ident | ceil(e/e) |
// floor(e/e) | '(' sum ')'.

func (p *parser) parseExpr() (*expr.Expr, error) { return p.parseSum() }

func (p *parser) parseSum() (*expr.Expr, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().text {
		case "+":
			p.next()
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = expr.Add(left, right)
		case "-":
			p.next()
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = expr.Sub(left, right)
		default:
			return left, nil
		}
	}
}

// parseSumStopDiv parses a sum whose products do not consume '/': the
// numerator of ceil(x/y) and floor(x/y), whose dividing slash belongs to
// the enclosing construct.
func (p *parser) parseSumStopDiv() (*expr.Expr, error) {
	left, err := p.parseProductStopDiv()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().text {
		case "+":
			p.next()
			right, err := p.parseProductStopDiv()
			if err != nil {
				return nil, err
			}
			left = expr.Add(left, right)
		case "-":
			p.next()
			right, err := p.parseProductStopDiv()
			if err != nil {
				return nil, err
			}
			left = expr.Sub(left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseProductStopDiv() (*expr.Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" {
		p.next()
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		left = expr.Mul(left, right)
	}
	return left, nil
}

func (p *parser) parseProduct() (*expr.Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().text {
		case "*":
			p.next()
			right, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			left = expr.Mul(left, right)
		case "/":
			p.next()
			right, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			left = expr.Div(left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseAtom() (*expr.Expr, error) {
	t := p.next()
	switch {
	case t.text == "-":
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return expr.Mul(expr.Const(-1), a), nil
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("loopir: line %d: bad number %q", t.line, t.text)
		}
		return expr.Const(v), nil
	case t.text == "ceil" || t.text == "floor":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		a, err := p.parseSumStopDiv()
		if err != nil {
			return nil, err
		}
		if err := p.expect("/"); err != nil {
			return nil, err
		}
		b, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if t.text == "ceil" {
			return expr.CeilDiv(a, b), nil
		}
		return expr.Div(a, b), nil
	case t.kind == tokIdent:
		return expr.Var(t.text), nil
	case t.text == "(":
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("loopir: line %d: unexpected token %q in expression", t.line, t.text)
}
