package loopir

import (
	"testing"

	"repro/internal/expr"
)

const twoIndexText = `
nest twoindex_text
array A[NI, NJ]
array B[NM, NN]
array C1[NM, NI]
array C2[NN, NJ]
array T[TI, TN]

# initialization of the output
for mT = ceil(NM/TM) { for nT = ceil(NN/TN) {
  for mI = TM { for nI = TN {
    S2: B[mT*TM + mI, nT*TN + nI] = 0
  } }
} }

for iT = ceil(NI/TI) {
  for nT = ceil(NN/TN) {
    for iI = TI { for nI = TN {
      S5: T[iI, nI] = 0
    } }
    for jT = ceil(NJ/TJ) {
      for iI = TI { for nI = TN { for jI = TJ {
        S7: T[iI, nI] += A[iT*TI + iI, jT*TJ + jI] * C2[nT*TN + nI, jT*TJ + jI]
      } } }
    }
    for mT = ceil(NM/TM) {
      for iI = TI { for nI = TN { for mI = TM {
        S9: B[mT*TM + mI, nT*TN + nI] += T[iI, nI] * C1[mT*TM + mI, iT*TI + iI]
      } } }
    }
  }
}
`

func TestParseTwoIndex(t *testing.T) {
	nest, err := Parse(twoIndexText)
	if err != nil {
		t.Fatal(err)
	}
	if nest.Name != "twoindex_text" {
		t.Errorf("name %q", nest.Name)
	}
	if got := len(nest.Stmts()); got != 4 {
		t.Fatalf("%d statements", got)
	}
	if got := len(nest.Arrays); got != 5 {
		t.Fatalf("%d arrays", got)
	}
	s7 := nest.Stmts()[2]
	if s7.Label != "S7" || len(s7.Refs) != 3 {
		t.Fatalf("S7 = %+v", s7)
	}
	// Target is last, mode Update; reads first.
	if s7.Refs[2].Array != "T" || s7.Refs[2].Mode != Update {
		t.Errorf("S7 target %v", s7.Refs[2])
	}
	if s7.Refs[0].Array != "A" || s7.Refs[0].Mode != Read {
		t.Errorf("S7 first read %v", s7.Refs[0])
	}
	// Tile-pair subscript survived.
	a := s7.Refs[0]
	if len(a.Subs[0].Terms) != 2 || a.Subs[0].Terms[0].Index != "iT" {
		t.Errorf("A subscript %v", a.Subs[0])
	}
	if !a.Subs[0].Terms[0].Stride.Equal(expr.Var("TI")) {
		t.Errorf("A stride %v", a.Subs[0].Terms[0].Stride)
	}
	// Flops annotated on accumulations.
	if s7.Flops != 2 {
		t.Errorf("S7 flops %d", s7.Flops)
	}
}

func TestParseScalarRef(t *testing.T) {
	src := `
nest scalar
array T[1]
array A[N]
for i = N {
  S1: T[] = 0
  S2: T[] += A[i]
}
`
	nest, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s1 := nest.Stmts()[0]
	if len(s1.Refs[0].Subs) != 1 || len(s1.Refs[0].Subs[0].Terms) != 0 {
		t.Fatalf("scalar subscript %v", s1.Refs[0].Subs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"array A[N]",                                        // no nest header
		"nest x\nfor i = N { S1: A[i] = 0",                  // unterminated loop
		"nest x\narray A[N]\nfor i = N { S1: A[i] = 1 } }",  // init must be 0
		"nest x\narray A[N]\nfor i = N { S1: A[i] ** 0 } }", // bad operator
		"nest x\narray A[N]\nS1: A[z] = 0",                  // out-of-scope index
		"nest x\narray A[]\nfor i = N { S1: A[i] = 0 }",     // empty dims
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: parse accepted:\n%s", i, src)
		}
	}
}

func TestParseExpressionForms(t *testing.T) {
	src := `
nest exprs
array A[2*N + 1]
for i = ceil(N/4) {
  for j = floor(N/2) {
    S1: A[i*8 + j] = 0
  }
}
`
	nest, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := nest.ValidateEnv(expr.Env{"N": 16}); err != nil {
		t.Fatal(err)
	}
	l := nest.Loops()[0]
	v, err := l.Trip.Eval(expr.Env{"N": 15})
	if err != nil || v != 4 {
		t.Fatalf("ceil trip %d %v", v, err)
	}
}

// TestRoundTrip: Unparse then Parse must preserve the structure exactly —
// verified by comparing the rendered canonical forms.
func TestRoundTrip(t *testing.T) {
	orig, err := Parse(twoIndexText)
	if err != nil {
		t.Fatal(err)
	}
	text := Unparse(orig)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if got, want := back.String(), orig.String(); got != want {
		t.Fatalf("round trip changed structure:\n--- original\n%s\n--- round-tripped\n%s", want, got)
	}
	// Unparse is stable (idempotent after one round).
	if Unparse(back) != text {
		t.Fatal("Unparse not stable across round trip")
	}
}

func TestUnparseNegativeCoefficients(t *testing.T) {
	n := expr.Var("N")
	nest, err := NewNest("neg",
		[]*Array{{Name: "A", Dims: []*expr.Expr{expr.Sub(expr.Mul(expr.Const(2), n), expr.One())}}},
		[]Node{&Loop{Index: "i", Trip: expr.Sub(n, expr.One()), Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{{Array: "A", Mode: Write, Subs: []Subscript{Idx("i")}}}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(Unparse(nest))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Loops()[0].Trip.Equal(expr.Sub(n, expr.One())) {
		t.Fatalf("trip %s", back.Loops()[0].Trip)
	}
}
