package loopir

import (
	"fmt"
	"strings"
)

// IsPerfect reports whether the nest is a single perfectly nested loop
// chain with one statement, and returns the chain outermost-first.
func (n *Nest) IsPerfect() ([]*Loop, *Stmt, bool) {
	if len(n.Root) != 1 {
		return nil, nil, false
	}
	var chain []*Loop
	node := n.Root[0]
	for {
		switch v := node.(type) {
		case *Loop:
			if len(v.Body) != 1 {
				return nil, nil, false
			}
			chain = append(chain, v)
			node = v.Body[0]
		case *Stmt:
			return chain, v, true
		default:
			return nil, nil, false
		}
	}
}

// PerfectDefect explains why a nest is not perfect: it names the first
// offending node on the walk from the root (a loop with several body nodes,
// a statement above the innermost level, several top-level nodes). It
// returns "" for a perfect nest. Transform error messages embed it so a
// rejected permutation or tiling says which loop broke the chain.
func PerfectDefect(n *Nest) string {
	if len(n.Root) != 1 {
		return fmt.Sprintf("has %d top-level nodes", len(n.Root))
	}
	node := n.Root[0]
	for {
		switch v := node.(type) {
		case *Loop:
			if len(v.Body) != 1 {
				return fmt.Sprintf("loop %s has %d body nodes", v.Index, len(v.Body))
			}
			node = v.Body[0]
		case *Stmt:
			return ""
		default:
			return fmt.Sprintf("has an unknown node type %T", node)
		}
	}
}

// PermutePerfect returns a new nest with the loops of a perfect nest
// reordered to the given index order (outermost first). All loops of the
// nest must appear exactly once in order. The statement is cloned, so the
// original nest is left untouched. For the fully permutable nests of the
// paper's class (no loop-carried dependences other than reductions, which
// are insensitive to order), every permutation computes the same result,
// but their cache behaviour differs — which is exactly what the model
// quantifies. Whether a given nest is in that class is what
// PermutationHazards (deps.go) decides; PermutePerfect itself is purely
// structural.
func PermutePerfect(n *Nest, order []string) (*Nest, error) {
	chain, stmt, ok := n.IsPerfect()
	if !ok {
		return nil, fmt.Errorf("loopir: %s is not a perfect nest: %s", n.Name, PerfectDefect(n))
	}
	if len(order) != len(chain) {
		have := map[string]bool{}
		for _, ix := range order {
			have[ix] = true
		}
		var missing []string
		for _, l := range chain {
			if !have[l.Index] {
				missing = append(missing, l.Index)
			}
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("loopir: order names %d loops, nest has %d (missing %s)",
				len(order), len(chain), strings.Join(missing, ", "))
		}
		return nil, fmt.Errorf("loopir: order names %d loops, nest has %d", len(order), len(chain))
	}
	byIndex := map[string]*Loop{}
	for _, l := range chain {
		byIndex[l.Index] = l
	}
	used := map[string]bool{}
	var node Node = cloneStmt(stmt)
	for i := len(order) - 1; i >= 0; i-- {
		l, ok := byIndex[order[i]]
		if !ok {
			return nil, fmt.Errorf("loopir: unknown loop %s in permutation", order[i])
		}
		if used[order[i]] {
			return nil, fmt.Errorf("loopir: loop %s repeated in permutation", order[i])
		}
		used[order[i]] = true
		node = &Loop{Index: l.Index, Trip: l.Trip, Body: []Node{node}}
	}
	var arrays []*Array
	for _, a := range n.Arrays {
		arrays = append(arrays, a)
	}
	return NewNest(n.Name+"-perm", arrays, []Node{node})
}

func cloneStmt(s *Stmt) *Stmt {
	out := &Stmt{Label: s.Label, Flops: s.Flops}
	for _, r := range s.Refs {
		nr := Ref{Array: r.Array, Mode: r.Mode}
		for _, sub := range r.Subs {
			ns := Subscript{Terms: append([]Term(nil), sub.Terms...)}
			nr.Subs = append(nr.Subs, ns)
		}
		out.Refs = append(out.Refs, nr)
	}
	return out
}
