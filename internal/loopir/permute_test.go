package loopir

import (
	"testing"

	"repro/internal/expr"
)

func TestIsPerfect(t *testing.T) {
	nest := simpleMatmul(t)
	chain, stmt, ok := nest.IsPerfect()
	if !ok || len(chain) != 3 || stmt.Label != "S1" {
		t.Fatalf("IsPerfect = %v/%v/%v", chain, stmt, ok)
	}
	// An imperfect nest is rejected.
	n := expr.Var("N")
	arrays := []*Array{{Name: "X", Dims: []*expr.Expr{n}}}
	imp, err := NewNest("imp", arrays, []Node{
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Refs: []Ref{{Array: "X", Subs: []Subscript{Idx("i")}}}},
			&Stmt{Refs: []Ref{{Array: "X", Subs: []Subscript{Idx("i")}}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := imp.IsPerfect(); ok {
		t.Fatal("imperfect nest reported perfect")
	}
}

func TestPermutePerfect(t *testing.T) {
	nest := simpleMatmul(t)
	perm, err := PermutePerfect(nest, []string{"k", "i", "j"})
	if err != nil {
		t.Fatal(err)
	}
	loops := perm.Loops()
	if loops[0].Index != "k" || loops[1].Index != "i" || loops[2].Index != "j" {
		t.Fatalf("order %v", []string{loops[0].Index, loops[1].Index, loops[2].Index})
	}
	// Original untouched.
	if nest.Loops()[0].Index != "i" {
		t.Fatal("original nest mutated")
	}
	// Statement cloned, refs intact.
	if len(perm.Stmts()[0].Refs) != 3 {
		t.Fatal("refs lost")
	}
	// Errors: wrong count, unknown, repeated.
	if _, err := PermutePerfect(nest, []string{"i", "j"}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := PermutePerfect(nest, []string{"i", "j", "z"}); err == nil {
		t.Error("unknown loop accepted")
	}
	if _, err := PermutePerfect(nest, []string{"i", "i", "j"}); err == nil {
		t.Error("repeated loop accepted")
	}
}
