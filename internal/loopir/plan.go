package loopir

import (
	"fmt"
	"sort"
	"strings"
)

// A Plan is a sequence of structural loop transformations applied to a nest
// before tile-size search: the "structure" half of the joint (permutation ×
// fusion × tiling) optimization space. Plans are data — JSON-serializable,
// comparable by String — so the serving layer can echo the winning plan and
// a client can replay it.
//
// ApplyPlan gates every step on the dependence diagnostics in deps.go
// (PermutationHazards, FusionHazards): an illegal step fails with the
// hazard text instead of producing a nest that computes something else.
// "Apply cleanly or reject before evaluation" is the invariant the
// FuzzPlanLegality target pins.
type Plan []PlanStep

// PlanStep is one transformation. Op selects it:
//
//	"permute" — reorder a perfect nest's loops to Order (outermost first),
//	            legal only when PermutationHazards is empty;
//	"fuse"    — merge adjacent fusable sibling loops wherever FusionHazards
//	            proves the merge safe; rejected when nothing merges;
//	"tile"    — strip-mine every loop of a perfect nest with the
//	            conventional names (DefaultTileSpec: index i gains tile
//	            symbol TI and loops iT/iI).
type PlanStep struct {
	Op    string   `json:"op"`
	Order []string `json:"order,omitempty"`
}

// String renders a plan compactly: "fuse; permute(k,i,j); tile".
// The identity plan renders as "identity".
func (p Plan) String() string {
	if len(p) == 0 {
		return "identity"
	}
	parts := make([]string, len(p))
	for i, st := range p {
		if st.Op == "permute" {
			parts[i] = "permute(" + strings.Join(st.Order, ",") + ")"
		} else {
			parts[i] = st.Op
		}
	}
	return strings.Join(parts, "; ")
}

// ApplyPlan runs the plan's steps in order against n, checking each step's
// legality before applying it, and returns the transformed nest. The input
// nest is never modified. An error identifies the failing step and why —
// either a structural impossibility (tiling an imperfect nest) or a
// dependence hazard (the deps.go diagnostics, verbatim).
func ApplyPlan(n *Nest, p Plan) (*Nest, error) {
	cur := n
	for i, st := range p {
		next, err := applyStep(cur, st)
		if err != nil {
			return nil, fmt.Errorf("plan step %d (%s): %w", i, st.Op, err)
		}
		cur = next
	}
	return cur, nil
}

func applyStep(n *Nest, st PlanStep) (*Nest, error) {
	switch st.Op {
	case "permute":
		if hz := PermutationHazards(n); len(hz) > 0 {
			return nil, fmt.Errorf("illegal: %s", strings.Join(hz, "; "))
		}
		return PermutePerfect(n, st.Order)
	case "fuse":
		if len(st.Order) != 0 {
			return nil, fmt.Errorf("fuse takes no order")
		}
		fused, merges, err := FuseLegal(n)
		if err != nil {
			return nil, err
		}
		if merges == 0 {
			return nil, fmt.Errorf("no legal adjacent fusion in %s", n.Name)
		}
		return fused, nil
	case "tile":
		if len(st.Order) != 0 {
			return nil, fmt.Errorf("tile takes no order")
		}
		tiled, _, err := TileAll(n)
		return tiled, err
	}
	return nil, fmt.Errorf("unknown op %q (want permute, fuse or tile)", st.Op)
}

// TileAll strip-mines every loop of a perfect nest with the conventional
// tile names and returns the tiled nest plus the specs describing the
// introduced tile symbols (the search dimensions). It fails, naming the
// defect, on imperfect nests, on subscripts that are not plain single
// indices, and when a generated tile symbol collides with an existing
// symbol of the nest.
func TileAll(n *Nest) (*Nest, []TileSpec, error) {
	chain, stmt, ok := n.IsPerfect()
	if !ok {
		return nil, nil, fmt.Errorf("loopir: cannot tile %s: %s", n.Name, PerfectDefect(n))
	}
	taken := map[string]bool{}
	for _, s := range n.SymbolNames() {
		taken[s] = true
	}
	for _, l := range chain {
		taken[l.Index] = true
	}
	spec := PerfectNestSpec{Name: n.Name, Stmt: cloneStmt(stmt)}
	var names []string
	for name := range n.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec.Arrays = append(spec.Arrays, n.Arrays[name])
	}
	tiles := make([]TileSpec, len(chain))
	for i, l := range chain {
		spec.Indices = append(spec.Indices, l.Index)
		spec.Trips = append(spec.Trips, l.Trip)
		tiles[i] = DefaultTileSpec(l.Index, l.Trip)
		for _, gen := range []string{tiles[i].TileVar, tiles[i].TileIdx, tiles[i].IntraIdx} {
			if taken[gen] {
				return nil, nil, fmt.Errorf("loopir: cannot tile %s: generated name %s collides with an existing symbol", n.Name, gen)
			}
			taken[gen] = true
		}
	}
	nest, err := TilePerfect(spec, tiles)
	if err != nil {
		return nil, nil, err
	}
	return nest, tiles, nil
}
