package loopir

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func TestPlanString(t *testing.T) {
	cases := []struct {
		plan Plan
		want string
	}{
		{nil, "identity"},
		{Plan{{Op: "fuse"}}, "fuse"},
		{Plan{{Op: "permute", Order: []string{"k", "i", "j"}}}, "permute(k,i,j)"},
		{Plan{{Op: "fuse"}, {Op: "permute", Order: []string{"j", "i"}}, {Op: "tile"}},
			"fuse; permute(j,i); tile"},
	}
	for _, c := range cases {
		if got := c.plan.String(); got != c.want {
			t.Errorf("Plan%v.String() = %q, want %q", c.plan, got, c.want)
		}
	}
}

func TestApplyPlanIdentity(t *testing.T) {
	nest := simpleMatmul(t)
	got, err := ApplyPlan(nest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nest {
		t.Error("empty plan should return the input nest unchanged")
	}
}

func TestApplyPlanPermute(t *testing.T) {
	nest := simpleMatmul(t)
	got, err := ApplyPlan(nest, Plan{{Op: "permute", Order: []string{"k", "j", "i"}}})
	if err != nil {
		t.Fatal(err)
	}
	loops := got.Loops()
	if loops[0].Index != "k" || loops[1].Index != "j" || loops[2].Index != "i" {
		t.Errorf("permuted order %s,%s,%s", loops[0].Index, loops[1].Index, loops[2].Index)
	}
	if nest.Loops()[0].Index != "i" {
		t.Error("input nest mutated")
	}
}

func TestApplyPlanTile(t *testing.T) {
	nest := simpleMatmul(t)
	got, err := ApplyPlan(nest, Plan{{Op: "tile"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.LoopCount() != 6 {
		t.Errorf("tiled nest has %d loops, want 6", got.LoopCount())
	}
	syms := strings.Join(got.SymbolNames(), ",")
	for _, want := range []string{"TI", "TJ", "TK"} {
		if !strings.Contains(syms, want) {
			t.Errorf("tiled nest symbols %s miss %s", syms, want)
		}
	}
}

func TestApplyPlanStepErrorNamesStep(t *testing.T) {
	nest := simpleMatmul(t)
	_, err := ApplyPlan(nest, Plan{
		{Op: "permute", Order: []string{"k", "j", "i"}},
		{Op: "bogus"},
	})
	if err == nil || !strings.Contains(err.Error(), "plan step 1 (bogus)") {
		t.Errorf("error %v should name the failing step", err)
	}
	_, err = ApplyPlan(nest, Plan{{Op: "fuse"}})
	if err == nil || !strings.Contains(err.Error(), "no legal adjacent fusion") {
		t.Errorf("fusing a perfect nest should report a structural no-op, got %v", err)
	}
}

// lastWinsNest builds FOR i, j: A[i] = B[j] — a Write whose value varies
// with a loop (j) absent from the target's subscripts: the canonical
// last-iteration-wins permutation hazard.
func lastWinsNest(t *testing.T) *Nest {
	t.Helper()
	n := expr.Var("N")
	nest, err := NewNest("lastwins",
		[]*Array{
			{Name: "A", Dims: []*expr.Expr{n}},
			{Name: "B", Dims: []*expr.Expr{n}},
		},
		[]Node{&Loop{Index: "i", Trip: n, Body: []Node{
			&Loop{Index: "j", Trip: n, Body: []Node{
				&Stmt{Label: "S1", Refs: []Ref{
					{Array: "B", Mode: Read, Subs: []Subscript{Idx("j")}},
					{Array: "A", Mode: Write, Subs: []Subscript{Idx("i")}},
				}},
			}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	return nest
}

func TestPermutationHazards(t *testing.T) {
	// The matmul reduction (Update target) is fully permutable.
	if hz := PermutationHazards(simpleMatmul(t)); len(hz) != 0 {
		t.Errorf("matmul reported hazards: %v", hz)
	}
	// Last-iteration-wins Write: hazard naming the varying loop.
	hz := PermutationHazards(lastWinsNest(t))
	if len(hz) == 0 {
		t.Fatal("last-iteration-wins nest reported permutable")
	}
	if !strings.Contains(hz[0], "loop j") || !strings.Contains(hz[0], "A") {
		t.Errorf("hazard %q should name loop j and array A", hz[0])
	}
	// ApplyPlan refuses the permutation with the hazard text.
	_, err := ApplyPlan(lastWinsNest(t), Plan{{Op: "permute", Order: []string{"j", "i"}}})
	if err == nil || !strings.Contains(err.Error(), "last iteration") {
		t.Errorf("permute of hazardous nest: %v", err)
	}
	// An imperfect nest names its defect.
	n := expr.Var("N")
	imp, err := NewNest("imp",
		[]*Array{{Name: "X", Dims: []*expr.Expr{n}}},
		[]Node{&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i")}}}},
			&Stmt{Label: "S2", Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i")}}}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	hz = PermutationHazards(imp)
	if len(hz) == 0 || !strings.Contains(hz[0], "loop i has 2 body nodes") {
		t.Errorf("imperfect-nest hazard %v should carry the defect", hz)
	}
}

func TestPermutationHazardsReadWriteAlias(t *testing.T) {
	// FOR i, j: A[i] += A[j]·B[j] — the read of A through different
	// subscripts is a dependence whose direction flips with loop order.
	n := expr.Var("N")
	nest, err := NewNest("alias",
		[]*Array{
			{Name: "A", Dims: []*expr.Expr{n}},
			{Name: "B", Dims: []*expr.Expr{n}},
		},
		[]Node{&Loop{Index: "i", Trip: n, Body: []Node{
			&Loop{Index: "j", Trip: n, Body: []Node{
				&Stmt{Label: "S1", Refs: []Ref{
					{Array: "A", Mode: Read, Subs: []Subscript{Idx("j")}},
					{Array: "B", Mode: Read, Subs: []Subscript{Idx("j")}},
					{Array: "A", Mode: Update, Subs: []Subscript{Idx("i")}},
				}},
			}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	hz := PermutationHazards(nest)
	if len(hz) == 0 || !strings.Contains(hz[0], "dependence direction") {
		t.Errorf("aliasing read should be a hazard, got %v", hz)
	}
}

func TestPermutePerfectErrorNaming(t *testing.T) {
	// Imperfect input: the error names the loop that breaks the chain.
	n := expr.Var("N")
	imp, err := NewNest("imp",
		[]*Array{{Name: "X", Dims: []*expr.Expr{n}}},
		[]Node{&Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i")}}}},
			&Stmt{Label: "S2", Refs: []Ref{{Array: "X", Mode: Update, Subs: []Subscript{Idx("i")}}}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PermutePerfect(imp, []string{"i"}); err == nil ||
		!strings.Contains(err.Error(), "loop i has 2 body nodes") {
		t.Errorf("imperfect error should name loop i: %v", err)
	}
	// Short order: the error names the missing loops.
	if _, err := PermutePerfect(simpleMatmul(t), []string{"k"}); err == nil ||
		!strings.Contains(err.Error(), "missing i, j") {
		t.Errorf("short-order error should name missing loops: %v", err)
	}
}

func TestTileAllNameCollision(t *testing.T) {
	// A nest whose loop is named "ti" would generate tile symbol "TI"... use
	// an index whose generated TileVar collides with an existing bound
	// symbol: loop "i" with bound symbol TI.
	ti := expr.Var("TI")
	nest, err := NewNest("clash",
		[]*Array{{Name: "A", Dims: []*expr.Expr{ti}}},
		[]Node{&Loop{Index: "i", Trip: ti, Body: []Node{
			&Stmt{Label: "S1", Refs: []Ref{{Array: "A", Mode: Update, Subs: []Subscript{Idx("i")}}}},
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TileAll(nest); err == nil ||
		!strings.Contains(err.Error(), "generated name TI collides") {
		t.Errorf("collision error: %v", err)
	}
}

func TestFuseLegalCountsAndGates(t *testing.T) {
	n := expr.Var("N")
	mk := func(label, arr string, mode AccessMode) Node {
		return &Loop{Index: "i", Trip: n, Body: []Node{
			&Stmt{Label: label, Refs: []Ref{{Array: arr, Mode: mode, Subs: []Subscript{Idx("i")}}}},
		}}
	}
	arrays := []*Array{
		{Name: "A", Dims: []*expr.Expr{n}},
		{Name: "B", Dims: []*expr.Expr{n}},
	}
	nest, err := NewNest("pair", arrays, []Node{mk("S1", "A", Write), mk("S2", "B", Update)})
	if err != nil {
		t.Fatal(err)
	}
	fused, merges, err := FuseLegal(nest)
	if err != nil {
		t.Fatal(err)
	}
	if merges != 1 || fused.LoopCount() != 1 {
		t.Errorf("merges=%d loops=%d, want 1 and 1", merges, fused.LoopCount())
	}
	// A hazardous pair — writer A[i] then reader A[0]-style misalignment —
	// must not merge. Here the consumer reads A through a different index
	// dimension (scalar-broadcast shape): producer writes A[i], consumer
	// reads A[j] inside its own i loop.
	hazNest, err := NewNest("haz", arrays, []Node{
		mk("S1", "A", Write),
		&Loop{Index: "i", Trip: n, Body: []Node{
			&Loop{Index: "j", Trip: n, Body: []Node{
				&Stmt{Label: "S2", Refs: []Ref{
					{Array: "A", Mode: Read, Subs: []Subscript{Idx("j")}},
					{Array: "B", Mode: Update, Subs: []Subscript{Idx("i")}},
				}},
			}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, merges, err = FuseLegal(hazNest)
	if err != nil {
		t.Fatal(err)
	}
	if merges != 0 {
		t.Errorf("hazardous pair merged (%d merges)", merges)
	}
}
