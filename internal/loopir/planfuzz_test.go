package loopir_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/nestgen"
)

// FuzzPlanLegality pins the plan invariant: ApplyPlan either rejects a plan
// before evaluation or applies it cleanly — never a panic, and never a
// "legal" nest the executor contradicts. Fuzzed bytes decode into a plan
// over a generated nest (perfect or imperfect, fuzzer's choice); when the
// plan applies, the transformed nest must still analyze under the cache
// model and must compute the same final memory state as the original.
func FuzzPlanLegality(f *testing.F) {
	f.Add(int64(1), false, []byte{0, 0})       // permute, first order
	f.Add(int64(2), false, []byte{2, 0})       // tile
	f.Add(int64(3), true, []byte{1, 0})        // fuse an imperfect nest
	f.Add(int64(4), false, []byte{0, 5, 2, 0}) // permute then tile
	f.Add(int64(5), true, []byte{1, 0, 0, 3})  // fuse then permute
	f.Fuzz(func(t *testing.T, seed int64, imperfect bool, raw []byte) {
		r := rand.New(rand.NewSource(seed))
		nest, env, err := nestgen.Generate(r, int(seed&0xffff), nestgen.Config{Imperfect: imperfect})
		if err != nil {
			return
		}
		plan := decodePlan(nest, raw)
		if len(plan) == 0 {
			return
		}
		transformed, err := loopir.ApplyPlan(nest, plan)
		if err != nil {
			return // rejected before evaluation: the legal outcome for illegal plans
		}
		// A plan that applied must produce a nest the model accepts...
		if _, err := core.Analyze(transformed); err != nil {
			t.Fatalf("plan %q applied but the result is outside the class: %v", plan, err)
		}
		// ...and one that computes what the original computes. Tile symbols
		// introduced by the plan bind to 1, which divides every bound.
		xenv := expr.Env{}
		for k, v := range env {
			xenv[k] = v
		}
		for _, s := range transformed.SymbolNames() {
			if _, ok := xenv[s]; !ok {
				xenv[s] = 1
			}
		}
		want := runNest(t, nest, env)
		got := runNest(t, transformed, xenv)
		if where, ok := sameState(want, got); !ok {
			t.Fatalf("plan %q applied cleanly but changes the result at %s", plan, where)
		}
	})
}

// decodePlan turns fuzz bytes into a plan: pairs of (op selector, argument).
// Permutation orders are picked from the input nest's loop chain when it is
// perfect — covering both accepting and rejecting paths — and fall back to a
// bogus order otherwise, exercising rejection.
func decodePlan(nest *loopir.Nest, raw []byte) loopir.Plan {
	var indices []string
	if chain, _, ok := nest.IsPerfect(); ok {
		for _, l := range chain {
			indices = append(indices, l.Index)
		}
	}
	var plan loopir.Plan
	for i := 0; i+1 < len(raw) && len(plan) < 4; i += 2 {
		op, arg := raw[i]%3, int(raw[i+1])
		switch op {
		case 0:
			order := []string{"i0", "i1"}
			if len(indices) > 0 {
				perms := allOrders(indices)
				order = perms[arg%len(perms)]
			}
			plan = append(plan, loopir.PlanStep{Op: "permute", Order: order})
		case 1:
			plan = append(plan, loopir.PlanStep{Op: "fuse"})
		case 2:
			plan = append(plan, loopir.PlanStep{Op: "tile"})
		}
	}
	return plan
}
