package loopir

import "fmt"

// RefSite identifies a static reference: statement plus position within the
// statement's reference list. It is the unit at which the model reports
// partitions and at which the trace generator labels accesses.
type RefSite struct {
	Stmt   *Stmt
	RefIdx int
}

// Ref returns the referenced Ref.
func (s RefSite) Ref() *Ref { return &s.Stmt.Refs[s.RefIdx] }

// Key returns a stable identifier "S7#2" usable as a map key across the
// model and the simulator.
func (s RefSite) Key() string {
	return fmt.Sprintf("%s#%d", s.Stmt.Label, s.RefIdx)
}

func (s RefSite) String() string {
	return fmt.Sprintf("%s %s", s.Key(), s.Ref())
}

// Sites returns every static reference site of the nest in program order.
func (n *Nest) Sites() []RefSite {
	var out []RefSite
	for _, st := range n.stmts {
		for i := range st.Refs {
			out = append(out, RefSite{Stmt: st, RefIdx: i})
		}
	}
	return out
}

// SitesFor returns the reference sites touching the given array, in program
// order.
func (n *Nest) SitesFor(array string) []RefSite {
	var out []RefSite
	for _, st := range n.stmts {
		for i := range st.Refs {
			if st.Refs[i].Array == array {
				out = append(out, RefSite{Stmt: st, RefIdx: i})
			}
		}
	}
	return out
}
