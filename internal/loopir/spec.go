package loopir

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// Spec is the wire form of an analyzable problem: a loop nest in the
// textual format of parse.go plus concrete symbol bindings. It is the
// request vocabulary of the serving layer (internal/service): clients POST
// a Spec, the service canonicalizes it, and the canonical form keys the
// response cache so that syntactically different but equivalent requests
// coalesce onto one computation.
type Spec struct {
	// Nest is the nest source in the textual format accepted by Parse.
	Nest string `json:"nest"`
	// Env binds the nest's symbols (loop bounds, tile sizes) to values.
	Env map[string]int64 `json:"env,omitempty"`
}

// DecodeSpec parses the JSON encoding of a Spec and its nest text. The
// returned nest is the parsed (but not canonicalized) form.
func DecodeSpec(data []byte) (*Spec, *Nest, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, nil, fmt.Errorf("loopir: decode spec: %w", err)
	}
	if strings.TrimSpace(s.Nest) == "" {
		return nil, nil, fmt.Errorf("loopir: spec has empty nest source")
	}
	nest, err := Parse(s.Nest)
	if err != nil {
		return nil, nil, err
	}
	return &s, nest, nil
}

// Canonicalize returns the canonical form of the spec together with the
// parsed nest:
//
//   - the nest source is re-rendered by Unparse, which sorts array
//     declarations by name, prints every expression in its canonical form,
//     normalizes layout and drops comments;
//   - the environment is restricted to the symbols the nest actually
//     mentions (extra bindings cannot change any result, so they must not
//     differentiate cache keys).
//
// Canonicalization is a fixed point: canonicalizing a canonical spec
// reproduces it byte-for-byte (FuzzNestSpecJSONRoundTrip pins this), and
// two specs describing the same nest and relevant bindings — regardless of
// array declaration order, whitespace, comments, or env key order —
// canonicalize identically.
func (s *Spec) Canonicalize() (*Spec, *Nest, error) {
	nest, err := Parse(s.Nest)
	if err != nil {
		return nil, nil, err
	}
	out := &Spec{Nest: Unparse(nest)}
	if len(s.Env) > 0 {
		names := nest.SymbolNames()
		for _, name := range names {
			if v, ok := s.Env[name]; ok {
				if out.Env == nil {
					out.Env = map[string]int64{}
				}
				out.Env[name] = v
			}
		}
	}
	return out, nest, nil
}

// Encode renders the spec as deterministic JSON: encoding/json sorts the
// env map keys, so equal specs encode to equal bytes.
func (s *Spec) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// CanonicalKey canonicalizes the spec and packs it into a stable string
// key: the canonical nest text, a NUL separator, then the relevant
// bindings as sorted "name=value" pairs. Two specs produce the same key
// exactly when they canonicalize identically, so the key is insensitive to
// array declaration order, env ordering, whitespace and comments.
func (s *Spec) CanonicalKey() (string, error) {
	c, _, err := s.Canonicalize()
	if err != nil {
		return "", err
	}
	return c.packKey(), nil
}

// Key renders the spec's key without re-canonicalizing. It is only
// meaningful on a spec that is already canonical (the result of
// Canonicalize or SpecOf); the serving layer calls it on resolved requests
// so the per-request hot path parses the nest once, not twice. For an
// arbitrary spec use CanonicalKey.
func (c *Spec) Key() string { return c.packKey() }

// packKey renders an already-canonical spec's key.
func (c *Spec) packKey() string {
	names := make([]string, 0, len(c.Env))
	for name := range c.Env {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(c.Nest)
	b.WriteByte(0)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(c.Env[name], 10))
	}
	return b.String()
}

// ExprEnv converts the spec's bindings into an expr.Env.
func (s *Spec) ExprEnv() expr.Env {
	env := expr.Env{}
	for k, v := range s.Env {
		env[k] = v
	}
	return env
}

// SpecOf renders a nest and environment as a canonical Spec: the inverse
// boundary of DecodeSpec for callers that already hold a parsed nest (the
// load generator derives its expected responses this way).
func SpecOf(nest *Nest, env expr.Env) *Spec {
	s := &Spec{Nest: Unparse(nest)}
	if len(env) > 0 {
		s.Env = map[string]int64{}
		for _, name := range nest.SymbolNames() {
			if v, ok := env[name]; ok {
				s.Env[name] = v
			}
		}
	}
	return s
}
