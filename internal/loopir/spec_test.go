package loopir

import (
	"bytes"
	"encoding/json"
	"testing"
)

const specMatmulSrc = `nest matmul
array A[N, N]
array B[N, N]
array C[N, N]
for iT = ceil(N/TI) {
  for jT = ceil(N/TJ) {
    for kT = ceil(N/TK) {
      for iI = TI { for jI = TJ { for kI = TK {
        S0: C[iT*TI + iI, jT*TJ + jI] += A[iT*TI + iI, kT*TK + kI] * B[kT*TK + kI, jT*TJ + jI]
      } } }
    }
  }
}
`

// mustSpecJSON builds a spec JSON body for tests.
func mustSpecJSON(t testing.TB, nest string, env map[string]int64) []byte {
	t.Helper()
	b, err := json.Marshal(Spec{Nest: nest, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSpecDecodeCanonicalizeEncodeFixedPoint(t *testing.T) {
	data := mustSpecJSON(t, specMatmulSrc, map[string]int64{"N": 64, "TI": 8, "TJ": 8, "TK": 8})
	s, _, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := s.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := c1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := DecodeSpec(enc1)
	if err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
	c2, _, err := s2.Canonicalize()
	if err != nil {
		t.Fatalf("canonical encoding does not re-canonicalize: %v", err)
	}
	enc2, err := c2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("canonicalize is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
	}
}

// TestSpecCanonicalKeyOrderInsensitive: equivalent specs — same parsed nest
// and same relevant bindings, spelled with different array declaration
// order, whitespace, comments and irrelevant env entries — must share one
// canonical key.
func TestSpecCanonicalKeyOrderInsensitive(t *testing.T) {
	a := Spec{
		Nest: "nest small\narray A[N]\narray B[N]\nfor i = N {\n  S0: B[i] += A[i]\n}\n",
		Env:  map[string]int64{"N": 32},
	}
	b := Spec{
		// Arrays declared in the opposite order, extra whitespace, a
		// comment, and an env binding for a symbol the nest never mentions.
		Nest: "# comment\nnest small\narray B[N]\narray A[N]\n\nfor i = N {\n    S0:   B[i] += A[i]\n}\n",
		Env:  map[string]int64{"N": 32, "JUNK": 7},
	}
	ka, err := a.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("equivalent specs have different canonical keys:\n%q\n%q", ka, kb)
	}

	// A genuinely different binding must change the key.
	c := Spec{Nest: a.Nest, Env: map[string]int64{"N": 64}}
	kc, err := c.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("different env produced the same canonical key")
	}
}

func TestSpecDecodeRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"env":{"N":1}}`,                     // no nest source
		`{"nest":"not a nest"}`,               // parse failure
		`{"nest":"nest x\nfor i = N { }"}`,    // no statements
		`{"nest":"nest x","unknown":"field"}`, // unknown JSON field
	}
	for _, src := range cases {
		if _, _, err := DecodeSpec([]byte(src)); err == nil {
			t.Errorf("DecodeSpec(%q) succeeded, want error", src)
		}
	}
}

func TestSpecOfMatchesCanonicalize(t *testing.T) {
	s, _, err := DecodeSpec(mustSpecJSON(t, specMatmulSrc, map[string]int64{"N": 64, "TI": 8, "TJ": 8, "TK": 8, "X": 1}))
	if err != nil {
		t.Fatal(err)
	}
	c, nest, err := s.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	viaNest := SpecOf(nest, s.ExprEnv())
	if viaNest.packKey() != c.packKey() {
		t.Errorf("SpecOf key %q != Canonicalize key %q", viaNest.packKey(), c.packKey())
	}
}

// FuzzNestSpecJSONRoundTrip: for any decodable spec, decode → canonicalize
// → encode must be a fixed point (the canonical encoding decodes, its
// canonicalization is itself, and its encoding reproduces the same bytes),
// and the canonical key must be stable across the round trip.
func FuzzNestSpecJSONRoundTrip(f *testing.F) {
	f.Add(mustSpecJSON(f, specMatmulSrc, map[string]int64{"N": 64, "TI": 8, "TJ": 8, "TK": 8}))
	f.Add(mustSpecJSON(f, "nest small\narray A[N]\narray B[N]\nfor i = N {\n  S0: B[i] += A[i]\n}\n", map[string]int64{"N": 32}))
	f.Add(mustSpecJSON(f, "nest init\narray T[TI, TN]\nfor iI = TI { for nI = TN {\n  S5: T[iI, nI] = 0\n} }\n", nil))
	f.Add(mustSpecJSON(f, "nest scalar\narray T[M]\nfor i = ceil(M/2) {\n  S0: T[] += T[i*2]\n}\n", map[string]int64{"M": 16}))
	f.Add([]byte(`{"nest":"# junk"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, err := DecodeSpec(data)
		if err != nil {
			t.Skip() // undecodable inputs are out of scope
		}
		c1, _, err := s.Canonicalize()
		if err != nil {
			// DecodeSpec already parsed this source; Canonicalize re-parses
			// the same text, so failure here is a real bug.
			t.Fatalf("Canonicalize failed on decoded spec: %v", err)
		}
		enc1, err := c1.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		s2, _, err := DecodeSpec(enc1)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v\nencoding: %s", err, enc1)
		}
		c2, _, err := s2.Canonicalize()
		if err != nil {
			t.Fatalf("canonical encoding does not canonicalize: %v\nencoding: %s", err, enc1)
		}
		enc2, err := c2.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonicalize not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
		k1, err := s.CanonicalKey()
		if err != nil {
			t.Fatalf("CanonicalKey on original: %v", err)
		}
		if k2 := c2.packKey(); k1 != k2 {
			t.Fatalf("canonical key unstable across round trip:\n%q\n%q", k1, k2)
		}
	})
}
