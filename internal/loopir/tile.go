package loopir

import (
	"fmt"

	"repro/internal/expr"
)

// PerfectNestSpec describes a perfectly nested loop with a single statement,
// the starting point of the tiling transformation. Indices are listed
// outermost first.
type PerfectNestSpec struct {
	Name    string
	Arrays  []*Array
	Indices []string     // loop index names, outermost first
	Trips   []*expr.Expr // trip count per index
	Stmt    *Stmt        // the single innermost statement (IDs reassigned)
}

// BuildPerfect constructs the perfectly nested Nest described by the spec.
func BuildPerfect(spec PerfectNestSpec) (*Nest, error) {
	if len(spec.Indices) != len(spec.Trips) {
		return nil, fmt.Errorf("loopir: %d indices but %d trips", len(spec.Indices), len(spec.Trips))
	}
	if len(spec.Indices) == 0 {
		return nil, fmt.Errorf("loopir: perfect nest needs at least one loop")
	}
	var node Node = spec.Stmt
	for i := len(spec.Indices) - 1; i >= 0; i-- {
		node = &Loop{Index: spec.Indices[i], Trip: spec.Trips[i], Body: []Node{node}}
	}
	return NewNest(spec.Name, spec.Arrays, []Node{node})
}

// TileSpec names the tile-size symbol used for one index of a tiled nest.
type TileSpec struct {
	Index    string     // original loop index, e.g. "i"
	TileVar  string     // tile size symbol, e.g. "TI"
	TileIdx  string     // generated tile-loop index, e.g. "iT"
	IntraIdx string     // generated intra-tile index, e.g. "iI"
	Bound    *expr.Expr // original trip count N_i
}

// DefaultTileSpec derives conventional names: index "i" with bound N yields
// tile variable "TI", tile loop "iT", intra loop "iI".
func DefaultTileSpec(index string, bound *expr.Expr) TileSpec {
	return TileSpec{
		Index:    index,
		TileVar:  "T" + upperCase(index),
		TileIdx:  index + "T",
		IntraIdx: index + "I",
		Bound:    bound,
	}
}

func upperCase(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if 'a' <= r && r <= 'z' {
			r = r - 'a' + 'A'
		}
		out = append(out, r)
	}
	return string(out)
}

// TilePerfect strip-mines every loop of a perfect nest and interchanges so
// that all tile loops are outermost (in the original loop order), followed
// by all intra-tile loops (also in original order): (i, j, k) becomes
// (iT, jT, kT, iI, jI, kI). Each subscript index i is rewritten into the
// tile pair iT*TI + iI. Trip counts assume the tile sizes divide the bounds
// exactly (ceil-division is used so non-dividing sizes still execute, with
// the usual partial-tile caveat documented by the model).
func TilePerfect(spec PerfectNestSpec, tiles []TileSpec) (*Nest, error) {
	if len(tiles) != len(spec.Indices) {
		return nil, fmt.Errorf("loopir: %d tile specs for %d loops", len(tiles), len(spec.Indices))
	}
	byIndex := map[string]TileSpec{}
	for i, t := range tiles {
		if t.Index != spec.Indices[i] {
			return nil, fmt.Errorf("loopir: tile spec %d is for %s, loop is %s", i, t.Index, spec.Indices[i])
		}
		byIndex[t.Index] = t
	}
	// Rewrite the statement's subscripts.
	st := &Stmt{Label: spec.Stmt.Label, Flops: spec.Stmt.Flops}
	for _, r := range spec.Stmt.Refs {
		nr := Ref{Array: r.Array, Mode: r.Mode}
		for _, sub := range r.Subs {
			if len(sub.Terms) != 1 || sub.Terms[0].Stride != nil {
				return nil, fmt.Errorf("loopir: TilePerfect requires plain single-index subscripts, got %v", sub)
			}
			t := byIndex[sub.Terms[0].Index]
			nr.Subs = append(nr.Subs, TilePair(t.TileIdx, expr.Var(t.TileVar), t.IntraIdx))
		}
		st.Refs = append(st.Refs, nr)
	}
	var node Node = st
	for i := len(tiles) - 1; i >= 0; i-- {
		t := tiles[i]
		node = &Loop{Index: t.IntraIdx, Trip: expr.Var(t.TileVar), Body: []Node{node}}
	}
	for i := len(tiles) - 1; i >= 0; i-- {
		t := tiles[i]
		node = &Loop{
			Index: t.TileIdx,
			Trip:  expr.CeilDiv(t.Bound, expr.Var(t.TileVar)),
			Body:  []Node{node},
		}
	}
	return NewNest(spec.Name+"-tiled", spec.Arrays, []Node{node})
}
