// Package nestgen generates random loop nests within the model's supported
// class, for property-based testing and stress measurement. Generated nests
// are always valid (they pass loopir validation and core.Analyze's class
// check) and come with an environment binding every symbol to small
// concrete values, so they can be traced exactly.
package nestgen

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/loopir"
)

// Config bounds the generated shapes.
type Config struct {
	MaxDepth    int // maximum loop depth of any statement (default 4)
	MaxBranches int // maximum sibling branches under the outer loop (default 3)
	MaxArrays   int // maximum distinct arrays (default 4)
	MaxTrip     int // maximum concrete trip count per loop (default 6)
	MinTrip     int // minimum concrete trip count per loop (default 2)
	// Imperfect selects tree-shaped nests with multiple statements and
	// shared arrays; otherwise a perfect single-statement nest.
	Imperfect bool
	// Tiled strip-mines every loop of a perfect nest (tile-pair
	// subscripts), exercising the model's composite-index machinery.
	// Ignored when Imperfect is set.
	Tiled bool
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MaxBranches == 0 {
		c.MaxBranches = 3
	}
	if c.MaxArrays == 0 {
		c.MaxArrays = 4
	}
	if c.MaxTrip == 0 {
		c.MaxTrip = 6
	}
	if c.MinTrip == 0 {
		c.MinTrip = 2
	}
	return c
}

// Generate builds a random nest and its evaluation environment.
func Generate(r *rand.Rand, id int, cfg Config) (*loopir.Nest, expr.Env, error) {
	cfg = cfg.withDefaults()
	if cfg.Imperfect {
		return genImperfect(r, id, cfg)
	}
	if cfg.Tiled {
		return genTiled(r, id, cfg)
	}
	return genPerfect(r, id, cfg)
}

// genTiled builds a random perfect nest and strip-mines every loop with a
// random tile size dividing its bound.
func genTiled(r *rand.Rand, id int, cfg Config) (*loopir.Nest, expr.Env, error) {
	nLoops := 2 + r.Intn(2) // 2–3 original loops → 4–6 tiled loops
	env := expr.Env{}
	idxNames := make([]string, nLoops)
	trips := make([]*expr.Expr, nLoops)
	tileSpecs := make([]loopir.TileSpec, nLoops)
	for i := range idxNames {
		idxNames[i] = fmt.Sprintf("x%d", i)
		sym := fmt.Sprintf("N%d", i)
		// Keep trips out of the degenerate regime: with tiles of 2 every
		// instance is a boundary instance and the paper's generic-position
		// representative loses meaning.
		tile := int64(3 + r.Intn(3))  // 3..5
		mult := int64(3 + r.Intn(2))  // 3..4
		env[sym] = tile * mult        // bound divisible by tile
		env["T"+fmt.Sprint(i)] = tile // bound tile symbol below
		trips[i] = expr.Var(sym)
		tileSpecs[i] = loopir.TileSpec{
			Index:    idxNames[i],
			TileVar:  "T" + fmt.Sprint(i),
			TileIdx:  idxNames[i] + "T",
			IntraIdx: idxNames[i] + "I",
			Bound:    trips[i],
		}
	}
	nArr := 1 + r.Intn(cfg.MaxArrays)
	var arrays []*loopir.Array
	stmt := &loopir.Stmt{Label: "S1"}
	for ai := 0; ai < nArr; ai++ {
		name := fmt.Sprintf("A%d", ai)
		nd := 1 + r.Intn(2)
		perm := r.Perm(nLoops)
		var dims []*expr.Expr
		var subs []loopir.Subscript
		for d := 0; d < nd && d < len(perm); d++ {
			dims = append(dims, trips[perm[d]])
			subs = append(subs, loopir.Idx(idxNames[perm[d]]))
		}
		arrays = append(arrays, &loopir.Array{Name: name, Dims: dims})
		mode := loopir.Read
		if ai == 0 {
			mode = loopir.Update
		}
		stmt.Refs = append(stmt.Refs, loopir.Ref{Array: name, Mode: mode, Subs: subs})
	}
	spec := loopir.PerfectNestSpec{
		Name:    fmt.Sprintf("gen_tiled_%d", id),
		Arrays:  arrays,
		Indices: idxNames,
		Trips:   trips,
		Stmt:    stmt,
	}
	nest, err := loopir.TilePerfect(spec, tileSpecs)
	return nest, env, err
}

func genPerfect(r *rand.Rand, id int, cfg Config) (*loopir.Nest, expr.Env, error) {
	nLoops := 2 + r.Intn(cfg.MaxDepth-1)
	env := expr.Env{}
	idxNames := make([]string, nLoops)
	trips := make([]*expr.Expr, nLoops)
	for i := range idxNames {
		idxNames[i] = fmt.Sprintf("i%d", i)
		sym := fmt.Sprintf("N%d", i)
		env[sym] = int64(cfg.MinTrip + r.Intn(cfg.MaxTrip-cfg.MinTrip+1))
		trips[i] = expr.Var(sym)
	}
	nArr := 1 + r.Intn(cfg.MaxArrays)
	var arrays []*loopir.Array
	stmt := &loopir.Stmt{Label: "S1"}
	for ai := 0; ai < nArr; ai++ {
		name := fmt.Sprintf("A%d", ai)
		nd := 1 + r.Intn(2)
		perm := r.Perm(nLoops)
		var dims []*expr.Expr
		var subs []loopir.Subscript
		for d := 0; d < nd && d < len(perm); d++ {
			dims = append(dims, trips[perm[d]])
			subs = append(subs, loopir.Idx(idxNames[perm[d]]))
		}
		arrays = append(arrays, &loopir.Array{Name: name, Dims: dims})
		mode := loopir.Read
		if ai == 0 {
			// Exactly one written reference per statement keeps generated
			// nests expressible in the textual format and executable.
			mode = loopir.Update
		}
		stmt.Refs = append(stmt.Refs, loopir.Ref{Array: name, Mode: mode, Subs: subs})
	}
	nest, err := loopir.BuildPerfect(loopir.PerfectNestSpec{
		Name:    fmt.Sprintf("gen-perfect-%d", id),
		Arrays:  arrays,
		Indices: idxNames,
		Trips:   trips,
		Stmt:    stmt,
	})
	return nest, env, err
}

func genImperfect(r *rand.Rand, id int, cfg Config) (*loopir.Nest, expr.Env, error) {
	env := expr.Env{}
	mkTrip := func(name string) *expr.Expr {
		sym := "N" + name
		if _, ok := env[sym]; !ok {
			env[sym] = int64(cfg.MinTrip + r.Intn(cfg.MaxTrip-cfg.MinTrip+1))
		}
		return expr.Var(sym)
	}
	outerIdx := "o"
	outerTrip := mkTrip("o")

	arrays := []*loopir.Array{{Name: "S", Dims: []*expr.Expr{outerTrip}}}
	var branches []loopir.Node
	nBranches := 2 + r.Intn(cfg.MaxBranches-1)
	for bi := 0; bi < nBranches; bi++ {
		depth := 1 + r.Intn(cfg.MaxDepth-1)
		var idxs []string
		var trips []*expr.Expr
		for d := 0; d < depth; d++ {
			idx := fmt.Sprintf("b%d_%d", bi, d)
			idxs = append(idxs, idx)
			trips = append(trips, mkTrip(idx))
		}
		aname := fmt.Sprintf("A%d", bi)
		// Random subscript structure over {outer} ∪ branch loops.
		avail := append([]string{outerIdx}, idxs...)
		availTrips := append([]*expr.Expr{outerTrip}, trips...)
		nd := 1 + r.Intn(2)
		perm := r.Perm(len(avail))
		var dims []*expr.Expr
		var subs []loopir.Subscript
		for d := 0; d < nd; d++ {
			dims = append(dims, availTrips[perm[d]])
			subs = append(subs, loopir.Idx(avail[perm[d]]))
		}
		arrays = append(arrays, &loopir.Array{Name: aname, Dims: dims})
		var refs []loopir.Ref
		if r.Intn(2) == 0 {
			refs = []loopir.Ref{
				{Array: aname, Mode: loopir.Read, Subs: subs},
				{Array: "S", Mode: loopir.Update, Subs: []loopir.Subscript{loopir.Idx(outerIdx)}},
			}
		} else {
			// No shared-array access: the branch array itself is written.
			refs = []loopir.Ref{{Array: aname, Mode: loopir.Update, Subs: subs}}
		}
		var node loopir.Node = &loopir.Stmt{Label: fmt.Sprintf("S%d", bi+1), Refs: refs}
		for d := depth - 1; d >= 0; d-- {
			node = &loopir.Loop{Index: idxs[d], Trip: trips[d], Body: []loopir.Node{node}}
		}
		branches = append(branches, node)
	}
	root := []loopir.Node{&loopir.Loop{Index: outerIdx, Trip: outerTrip, Body: branches}}
	nest, err := loopir.NewNest(fmt.Sprintf("gen-imperfect-%d", id), arrays, root)
	return nest, env, err
}
