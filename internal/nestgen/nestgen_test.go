package nestgen

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/trace"
)

func TestGeneratedNestsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, imperfect := range []bool{false, true} {
		for i := 0; i < 50; i++ {
			nest, env, err := Generate(r, i, Config{Imperfect: imperfect})
			if err != nil {
				t.Fatalf("imperfect=%v id=%d: %v", imperfect, i, err)
			}
			if err := nest.ValidateEnv(env); err != nil {
				t.Fatalf("env invalid: %v", err)
			}
			if _, err := core.Analyze(nest); err != nil {
				t.Fatalf("not analyzable: %v\n%s", err, nest)
			}
			p, err := trace.Compile(nest, env)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.CheckBounds(); err != nil {
				t.Fatalf("bounds: %v\n%s", err, nest)
			}
		}
	}
}

// TestGeneratedNestsModelAccuracy is the package's raison d'être: on a
// broad random population, the model's compulsory misses are exact and the
// total misses stay within boundary slack of exact simulation.
func TestGeneratedNestsModelAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, imperfect := range []bool{false, true} {
		for i := 0; i < 60; i++ {
			nest, env, err := Generate(r, i, Config{Imperfect: imperfect})
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.Analyze(nest)
			if err != nil {
				t.Fatal(err)
			}
			p, err := trace.Compile(nest, env)
			if err != nil {
				t.Fatal(err)
			}
			watches := []int64{1, 3, 9, 27, 1 << 20}
			sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
			p.Run(sim.Access)
			res := sim.Results()

			predInf, err := a.PredictTotal(env, 1<<40)
			if err != nil {
				t.Fatal(err)
			}
			if predInf != res.Distinct {
				t.Errorf("imperfect=%v id=%d: compulsory %d vs %d\n%s\n%s",
					imperfect, i, predInf, res.Distinct, nest, a.Table())
				continue
			}
			slack := res.Accesses/3 + 30
			for wi, c := range watches {
				pred, err := a.PredictTotal(env, c)
				if err != nil {
					t.Fatal(err)
				}
				d := pred - res.Misses[wi]
				if d < 0 {
					d = -d
				}
				if d > slack {
					t.Errorf("imperfect=%v id=%d cap=%d: predicted %d vs %d (slack %d)\nenv=%v\n%s",
						imperfect, i, c, pred, res.Misses[wi], slack, env, nest)
				}
			}
		}
	}
}

// TestGeneratedNestsParseRoundTrip fuzzes the textual format: every
// generated nest must survive Unparse → Parse with identical structure.
func TestGeneratedNestsParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, imperfect := range []bool{false, true} {
		for i := 0; i < 60; i++ {
			nest, _, err := Generate(r, i, Config{Imperfect: imperfect})
			if err != nil {
				t.Fatal(err)
			}
			text := loopir.Unparse(nest)
			back, err := loopir.Parse(text)
			if err != nil {
				t.Fatalf("reparse failed for nest %d: %v\n%s", i, err, text)
			}
			// Compare via Unparse (which canonicalizes the nest name).
			if got := loopir.Unparse(back); got != text {
				t.Fatalf("round trip changed nest %d:\n--- original\n%s\n--- reparsed\n%s", i, text, got)
			}
		}
	}
}

// TestGeneratedNestsFuseSafely: fusing any generated nest preserves the
// per-site access counts and stays analyzable.
func TestGeneratedNestsFuseSafely(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		nest, env, err := Generate(r, i, Config{Imperfect: true})
		if err != nil {
			t.Fatal(err)
		}
		fused, err := loopir.FuseAdjacent(nest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Analyze(fused); err != nil {
			t.Fatalf("fused nest %d not analyzable: %v\n%s", i, err, fused)
		}
		pOrig, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		pFused, err := trace.Compile(fused, env)
		if err != nil {
			t.Fatal(err)
		}
		nOrig, _ := pOrig.Length()
		nFused, _ := pFused.Length()
		if nOrig != nFused {
			t.Fatalf("nest %d: fusion changed access count %d -> %d", i, nOrig, nFused)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxDepth != 4 || c.MaxBranches != 3 || c.MaxArrays != 4 || c.MaxTrip != 6 || c.MinTrip != 2 {
		t.Fatalf("defaults %+v", c)
	}
}
