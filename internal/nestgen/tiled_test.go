package nestgen

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestGeneratedTiledNests fuzzes the tile-pair (composite subscript)
// machinery: random strip-mined perfect nests, model vs exact simulation.
func TestGeneratedTiledNests(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 80; i++ {
		nest, env, err := Generate(r, i, Config{Tiled: true})
		if err != nil {
			t.Fatalf("id=%d: %v", i, err)
		}
		a, err := core.Analyze(nest)
		if err != nil {
			t.Fatalf("id=%d: %v\n%s", i, err, nest)
		}
		p, err := trace.Compile(nest, env)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckBounds(); err != nil {
			t.Fatalf("id=%d: %v\n%s", i, err, nest)
		}
		watches := []int64{1, 2, 4, 8, 16, 64, 1 << 20}
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.Run(sim.Access)
		res := sim.Results()

		predInf, err := a.PredictTotal(env, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if predInf != res.Distinct {
			t.Errorf("id=%d: compulsory %d vs distinct %d\nenv=%v\n%s\n%s",
				i, predInf, res.Distinct, env, nest, a.Table())
			continue
		}
		// Tiny trips make boundary effects relatively large, and a probe
		// capacity that lands exactly on a component's representative SD
		// flips that whole component — at micro scale one component can be
		// half the trace. The bound below still catches structural bugs
		// (wrong partitions, wrong counts, broken compulsory accounting)
		// while tolerating boundary flips.
		slack := res.Accesses/2 + 40
		for wi, c := range watches {
			pred, err := a.PredictTotal(env, c)
			if err != nil {
				t.Fatal(err)
			}
			d := pred - res.Misses[wi]
			if d < 0 {
				d = -d
			}
			if d > slack {
				t.Errorf("id=%d cap=%d: predicted %d vs simulated %d (slack %d)\nenv=%v\n%s",
					i, c, pred, res.Misses[wi], slack, env, nest)
			}
		}
	}
}
