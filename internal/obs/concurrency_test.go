package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one registry from 64 goroutines — counter
// adds, gauge sets, timer observations, and registry lookups under distinct
// and shared names — and asserts the shared counter's total is exact. Run
// under `go test -race` (the Makefile's check target does) this is the
// package's data-race gate.
func TestConcurrentCounters(t *testing.T) {
	const goroutines = 64
	const perG = 1000
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := m.Counter(fmt.Sprintf("own.%d", g))
			shared := m.Counter("shared")
			gauge := m.Gauge("gauge")
			timer := m.Timer("timer")
			for i := 0; i < perG; i++ {
				shared.Inc()
				own.Add(2)
				gauge.Set(int64(i))
				timer.Observe(time.Nanosecond)
				// Re-resolving by name concurrently must be safe and stable.
				if m.Counter("shared") != shared {
					t.Error("shared counter identity changed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Counter("shared").Load(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := m.Counter(fmt.Sprintf("own.%d", g)).Load(); got != 2*perG {
			t.Errorf("own.%d = %d, want %d", g, got, 2*perG)
		}
	}
	if got := m.Timer("timer").Stats().Count; got != goroutines*perG {
		t.Errorf("timer count = %d, want %d", got, goroutines*perG)
	}
}

// TestConcurrentTraceSpans opens, annotates and closes spans from many
// goroutines while another goroutine snapshots records.
func TestConcurrentTraceSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Records()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := root.Child("work")
				s.SetAttr("i", int64(i))
				s.End()
			}
		}(g)
	}
	wg.Wait()
	close(done)
	root.End()
	recs := tr.Records()
	if len(recs) != 1+16*100 {
		t.Errorf("got %d spans, want %d", len(recs), 1+16*100)
	}
}
