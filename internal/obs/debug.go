package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live observability endpoints for a running tool:
//
//	/metrics       JSON snapshot of the registry (counters, gauges, timers)
//	/debug/vars    expvar (includes cmdline and memstats)
//	/debug/pprof/  the standard pprof index, profile, trace, symbol pages
//
// The cmd tools start one behind -debug-addr for long runs (full-scale
// simulations, exhaustive sweeps); it uses its own mux so the process's
// http.DefaultServeMux is left untouched.
type DebugServer struct {
	Addr string // actual listen address (resolves ":0" requests)
	srv  *http.Server
	ln   net.Listener
}

// StartDebugServer listens on addr and serves the debug endpoints until
// Close. Metrics snapshots come from m (which may be nil, yielding empty
// snapshots).
func StartDebugServer(addr string, m *Metrics) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := struct {
			Counters map[string]int64      `json:"counters,omitempty"`
			Gauges   map[string]int64      `json:"gauges,omitempty"`
			Timers   map[string]TimerStats `json:"timers,omitempty"`
		}{m.Counters(), m.Gauges(), m.Timers()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Close shuts the server down immediately, dropping in-flight requests.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	return ds.srv.Close()
}

// Shutdown drains the server gracefully: the listener stops accepting, any
// in-flight /metrics or pprof request finishes, and the call returns when
// the server is idle or the context expires (in which case the remaining
// requests are dropped, as Close would). Nil-safe, like every obs entry
// point, so callers can drain an optional debug server unconditionally —
// analysisd's SIGTERM path relies on this.
func (ds *DebugServer) Shutdown(ctx context.Context) error {
	if ds == nil {
		return nil
	}
	if err := ds.srv.Shutdown(ctx); err != nil {
		// The deadline expired with requests still in flight; fall back to
		// an immediate close so the listener is freed regardless.
		_ = ds.srv.Close()
		return err
	}
	return nil
}
