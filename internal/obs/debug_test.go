package obs

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestDebugServerShutdown: a graceful shutdown stops the listener, returns
// nil when the server is idle, and is nil-safe.
func TestDebugServerShutdown(t *testing.T) {
	m := New()
	ds, err := StartDebugServer("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	if body, err := httpGet("http://" + ds.Addr + "/metrics"); err != nil || body == "" {
		t.Fatalf("pre-shutdown GET failed: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ds.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener must be released: a fresh dial fails.
	if conn, err := net.DialTimeout("tcp", ds.Addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting after Shutdown")
	}
	// Second shutdown and nil receiver are both harmless.
	if err := ds.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if err := (*DebugServer)(nil).Shutdown(ctx); err != nil {
		t.Errorf("nil server shutdown: %v", err)
	}
}
