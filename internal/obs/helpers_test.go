package obs

import (
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func httpGet(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
