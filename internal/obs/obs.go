// Package obs is the instrumentation layer of the pipeline: lightweight
// counters, gauges and timers, a span-style trace recorder for pipeline
// stages, and a RunReport JSON artifact that the cmd tools emit with
// -report so that every performance and accuracy claim is backed by a
// machine-readable run record.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every instrumented package accepts a nil
//     *Metrics (or nil *Trace); every method on every type is a no-op on a
//     nil receiver, and instruments fetched from a nil registry are
//     themselves nil. Hot paths therefore pay one predictable nil test per
//     event and never call the clock when observation is off.
//  2. Enabled must be cheap. Counters and gauges are single atomic words;
//     instrument handles are resolved once (by name) outside hot loops and
//     used without further map lookups or allocation.
//  3. Concurrency-safe. All instruments may be updated from any number of
//     goroutines; snapshots are consistent per instrument.
//
// Metric naming convention: dot-separated "<subsystem>.<detail>" strings,
// e.g. "evalcache.hits", "search.candidates.coarse", "analyze.partition".
// The names emitted by this repository are documented in README.md's
// Observability section.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on nil.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; 0 on nil.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument. A nil *Gauge is a valid no-op
// instrument.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d. No-op on nil.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value; 0 on nil.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates durations: a count of observations and their total
// nanoseconds. A nil *Timer is a valid no-op instrument.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration. No-op on nil.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Stopwatch is an in-flight timing started by Timer.Start. The zero value
// (returned by a nil Timer) is a no-op.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Start begins a stopwatch. On a nil Timer the zero Stopwatch is returned
// without reading the clock, so a disabled timing site costs one nil test.
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Stop records the elapsed time since Start. No-op on the zero Stopwatch.
func (sw Stopwatch) Stop() {
	if sw.t == nil {
		return
	}
	sw.t.Observe(time.Since(sw.start))
}

// TimerStats is a snapshot of one timer.
type TimerStats struct {
	Count int64 `json:"count"`
	Nanos int64 `json:"nanos"`
}

// Stats returns a snapshot; zero on nil.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	return TimerStats{Count: t.count.Load(), Nanos: t.nanos.Load()}
}

// Metrics is a registry of named instruments. The zero value is not usable;
// construct with New. A nil *Metrics means "observation disabled": every
// method returns a nil instrument (itself a no-op), so instrumented code
// needs no enabled/disabled branches beyond passing the pointer through.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// New creates an empty metrics registry.
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil on a nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns the timer with the given name, creating it on first use.
// Returns nil on a nil registry.
func (m *Metrics) Timer(name string) *Timer {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.timers[name]
	if !ok {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// Counters returns a name→value snapshot of every counter. Nil registry
// yields nil.
func (m *Metrics) Counters() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for n, c := range m.counters {
		out[n] = c.Load()
	}
	return out
}

// Gauges returns a name→value snapshot of every gauge. Nil registry yields
// nil.
func (m *Metrics) Gauges() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.gauges))
	for n, g := range m.gauges {
		out[n] = g.Load()
	}
	return out
}

// Timers returns a name→stats snapshot of every timer. Nil registry yields
// nil.
func (m *Metrics) Timers() map[string]TimerStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TimerStats, len(m.timers))
	for n, t := range m.timers {
		out[n] = t.Stats()
	}
	return out
}

// Names returns the sorted names of every registered instrument, prefixed
// by kind ("counter:", "gauge:", "timer:"). Mostly for tests and debug
// output.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counters)+len(m.gauges)+len(m.timers))
	for n := range m.counters {
		out = append(out, "counter:"+n)
	}
	for n := range m.gauges {
		out = append(out, "gauge:"+n)
	}
	for n := range m.timers {
		out = append(out, "timer:"+n)
	}
	sort.Strings(out)
	return out
}
