package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	m := New()
	c := m.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if m.Counter("c") != c {
		t.Error("same name returned a different counter")
	}

	g := m.Gauge("g")
	g.Set(7)
	g.Add(3)
	if got := g.Load(); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}

	tm := m.Timer("t")
	tm.Observe(5 * time.Millisecond)
	sw := tm.Start()
	sw.Stop()
	st := tm.Stats()
	if st.Count != 2 {
		t.Errorf("timer count = %d, want 2", st.Count)
	}
	if st.Nanos < int64(5*time.Millisecond) {
		t.Errorf("timer nanos = %d, want >= 5ms", st.Nanos)
	}
}

func TestSnapshots(t *testing.T) {
	m := New()
	m.Counter("a").Add(1)
	m.Counter("b").Add(2)
	m.Gauge("g").Set(3)
	m.Timer("t").Observe(time.Microsecond)

	if got := m.Counters(); !reflect.DeepEqual(got, map[string]int64{"a": 1, "b": 2}) {
		t.Errorf("counters snapshot = %v", got)
	}
	if got := m.Gauges(); !reflect.DeepEqual(got, map[string]int64{"g": 3}) {
		t.Errorf("gauges snapshot = %v", got)
	}
	ts := m.Timers()
	if len(ts) != 1 || ts["t"].Count != 1 {
		t.Errorf("timers snapshot = %v", ts)
	}
	want := []string{"counter:a", "counter:b", "gauge:g", "timer:t"}
	if got := m.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
}

// TestNilSafety: every method on every type must be a no-op (not a panic)
// when observation is disabled — instrumented packages pass nil registries
// through unconditionally.
func TestNilSafety(t *testing.T) {
	var m *Metrics
	c := m.Counter("x")
	c.Add(1)
	c.Inc()
	if c != nil || c.Load() != 0 {
		t.Error("nil registry must yield nil counter loading 0")
	}
	g := m.Gauge("x")
	g.Set(1)
	g.Add(1)
	if g != nil || g.Load() != 0 {
		t.Error("nil registry must yield nil gauge loading 0")
	}
	tm := m.Timer("x")
	tm.Observe(time.Second)
	sw := tm.Start()
	sw.Stop()
	if tm.Stats() != (TimerStats{}) {
		t.Error("nil timer stats must be zero")
	}
	if m.Counters() != nil || m.Gauges() != nil || m.Timers() != nil || m.Names() != nil {
		t.Error("nil registry snapshots must be nil")
	}

	var tr *Trace
	s := tr.Start("x")
	if s != nil {
		t.Error("nil trace must yield nil span")
	}
	s.SetAttr("k", 1)
	s.End()
	if c := s.Child("y"); c != nil {
		t.Error("nil span child must be nil")
	}
	if tr.Records() != nil {
		t.Error("nil trace records must be nil")
	}

	var r *RunReport
	r.AddTrace(nil) // appending nil records to a nil report must not panic
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	child := root.Child("child")
	child.SetAttr("items", 12)
	child.End()
	root.End()
	open := tr.Start("open") // never ended: reported with duration so far
	_ = open

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "root" || recs[1].Name != "child" || recs[2].Name != "open" {
		t.Errorf("record order: %v", recs)
	}
	if recs[1].Parent != recs[0].ID {
		t.Errorf("child parent = %d, want %d", recs[1].Parent, recs[0].ID)
	}
	if recs[1].Attrs["items"] != 12 {
		t.Errorf("child attrs = %v", recs[1].Attrs)
	}
	if recs[0].Nanos < recs[1].Nanos {
		t.Errorf("root (%d ns) should outlast child (%d ns)", recs[0].Nanos, recs[1].Nanos)
	}
	// Double End keeps the first duration.
	d := recs[1].Nanos
	time.Sleep(time.Millisecond)
	child.End()
	if got := tr.Records()[1].Nanos; got != d {
		t.Errorf("second End changed duration: %d -> %d", d, got)
	}
}

func TestDebugServer(t *testing.T) {
	m := New()
	m.Counter("hits").Add(3)
	ds, err := StartDebugServer("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := httpGet("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/metrics"); !contains(body, `"hits": 3`) {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/debug/vars"); !contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats: %.100s", body)
	}
	if body := get("/debug/pprof/"); !contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ missing index: %.100s", body)
	}
	if err := ds.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if (*DebugServer)(nil).Close() != nil {
		t.Error("nil server close must be nil")
	}
}
