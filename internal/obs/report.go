package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// RunReport is the machine-readable artifact of one tool run: which tool
// ran with which arguments, how long it took, every metric the pipeline
// recorded, and the stage spans. The cmd tools emit it with -report; tests
// compare it against golden files after Normalize.
//
// Schema stability: fields are only added, never renamed or removed, so
// downstream consumers can parse reports across versions. Counters, gauges
// and timer counts are deterministic for deterministic runs (including
// across -j parallelism levels, except the explicitly per-worker
// "worker.*" instruments); wall-clock fields are not and are zeroed by
// Normalize.
type RunReport struct {
	Tool      string                `json:"tool"`
	Args      []string              `json:"args,omitempty"`
	Start     string                `json:"start,omitempty"` // RFC3339
	WallNanos int64                 `json:"wallNanos"`
	Counters  map[string]int64      `json:"counters,omitempty"`
	Gauges    map[string]int64      `json:"gauges,omitempty"`
	Timers    map[string]TimerStats `json:"timers,omitempty"`
	Spans     []SpanRecord          `json:"spans,omitempty"`
	// Extra carries tool-specific results (e.g. the best tile vector) keyed
	// by tool-chosen names.
	Extra map[string]any `json:"extra,omitempty"`

	begun time.Time
}

// NewRunReport starts a report for the named tool, stamping the start time.
func NewRunReport(tool string, args []string) *RunReport {
	now := time.Now()
	return &RunReport{
		Tool:  tool,
		Args:  args,
		Start: now.Format(time.RFC3339),
		begun: now,
	}
}

// AddMetrics merges a snapshot of the registry into the report. Later calls
// overwrite same-named entries. Nil registry is a no-op.
func (r *RunReport) AddMetrics(m *Metrics) {
	if r == nil || m == nil {
		return
	}
	merge := func(dst *map[string]int64, src map[string]int64) {
		if len(src) == 0 {
			return
		}
		if *dst == nil {
			*dst = map[string]int64{}
		}
		for k, v := range src {
			(*dst)[k] = v
		}
	}
	merge(&r.Counters, m.Counters())
	merge(&r.Gauges, m.Gauges())
	if ts := m.Timers(); len(ts) > 0 {
		if r.Timers == nil {
			r.Timers = map[string]TimerStats{}
		}
		for k, v := range ts {
			r.Timers[k] = v
		}
	}
}

// AddTrace appends the trace's span records. Nil report or trace is a
// no-op.
func (r *RunReport) AddTrace(tr *Trace) {
	if r == nil {
		return
	}
	r.Spans = append(r.Spans, tr.Records()...)
}

// SetExtra attaches a tool-specific result value.
func (r *RunReport) SetExtra(key string, v any) {
	if r.Extra == nil {
		r.Extra = map[string]any{}
	}
	r.Extra[key] = v
}

// Finish stamps the total wall time. Call once, just before writing.
func (r *RunReport) Finish() {
	if !r.begun.IsZero() {
		r.WallNanos = int64(time.Since(r.begun))
	}
}

// Normalize zeroes every wall-clock-dependent field — start time, total
// wall time, timer nanos (observation counts are kept) and span intervals —
// so that two runs of the same deterministic workload produce byte-equal
// reports. Golden-file tests call it before comparison.
func (r *RunReport) Normalize() {
	r.Start = ""
	r.WallNanos = 0
	for k, t := range r.Timers {
		t.Nanos = 0
		r.Timers[k] = t
	}
	for i := range r.Spans {
		r.Spans[i].Start = 0
		r.Spans[i].Nanos = 0
	}
}

// MarshalIndent renders the report as indented JSON with a trailing
// newline (map keys sorted by encoding/json, so deterministic for
// deterministic contents).
func (r *RunReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile finishes the report and writes it to path as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	r.Finish()
	b, err := r.MarshalIndent()
	if err != nil {
		return fmt.Errorf("obs: marshal report: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

// ReadReportFile parses a report previously written by WriteFile.
func ReadReportFile(path string) (*RunReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("obs: parse report %s: %w", path, err)
	}
	return &r, nil
}
