package obs

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

func sampleReport() *RunReport {
	m := New()
	m.Counter("evalcache.hits").Add(10)
	m.Gauge("search.frontier.size").Set(4)
	m.Timer("analyze.total").Observe(3 * time.Millisecond)
	tr := NewTrace()
	s := tr.Start("search.coarse")
	s.SetAttr("candidates", 125)
	s.End()

	r := NewRunReport("tilesearch", []string{"-kernel", "matmul"})
	r.AddMetrics(m)
	r.AddTrace(tr)
	r.SetExtra("best", map[string]int64{"TI": 8})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if r.WallNanos <= 0 {
		t.Error("WriteFile must stamp wall time")
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "tilesearch" || back.Counters["evalcache.hits"] != 10 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Gauges["search.frontier.size"] != 4 {
		t.Errorf("gauges lost: %v", back.Gauges)
	}
	if len(back.Spans) != 1 || back.Spans[0].Attrs["candidates"] != 125 {
		t.Errorf("spans lost: %v", back.Spans)
	}
}

// TestNormalizeDeterminism: two runs of the same workload differ only in
// wall-clock fields, so normalized reports must be byte-equal.
func TestNormalizeDeterminism(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	a.Finish()
	time.Sleep(time.Millisecond)
	b.Finish()
	a.Normalize()
	b.Normalize()
	ab, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Errorf("normalized reports differ:\n%s\nvs\n%s", ab, bb)
	}
}

func TestNormalizeZeroesTimings(t *testing.T) {
	r := sampleReport()
	r.Finish()
	r.Normalize()
	if r.Start != "" || r.WallNanos != 0 {
		t.Errorf("start/wall not zeroed: %q %d", r.Start, r.WallNanos)
	}
	ts := r.Timers["analyze.total"]
	if ts.Nanos != 0 {
		t.Errorf("timer nanos not zeroed: %+v", ts)
	}
	if ts.Count != 1 {
		t.Errorf("timer count must survive normalization: %+v", ts)
	}
	for _, s := range r.Spans {
		if s.Start != 0 || s.Nanos != 0 {
			t.Errorf("span timings not zeroed: %+v", s)
		}
	}
	if r.Spans[0].Attrs["candidates"] != 125 {
		t.Error("span attrs must survive normalization")
	}
}

func TestReadReportFileErrors(t *testing.T) {
	if _, err := ReadReportFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportFile(bad); err == nil {
		t.Error("malformed JSON must error")
	}
}

// TestReportJSONShape pins the top-level field names — the schema contract
// documented in README.md.
func TestReportJSONShape(t *testing.T) {
	r := sampleReport()
	r.Finish()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tool", "args", "start", "wallNanos", "counters", "gauges", "timers", "spans", "extra"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q: %v", key, m)
		}
	}
}
