package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a span-style recorder for pipeline stages: a flat, ordered list
// of named intervals with optional integer attributes and parent links. It
// is deliberately not a distributed-tracing client — spans live in memory
// and are emitted into the RunReport artifact.
//
// A nil *Trace disables recording: Start returns a nil *Span, whose methods
// are all no-ops, so instrumented stages need no enabled/disabled branches.
type Trace struct {
	mu    sync.Mutex
	spans []*Span
	seq   atomic.Int64
}

// NewTrace creates an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

// Span is one recorded interval. Create with Trace.Start; close with End.
type Span struct {
	tr     *Trace
	id     int64
	parent int64 // 0 = root
	name   string
	start  time.Time
	mu     sync.Mutex
	dur    time.Duration
	ended  bool
	attrs  map[string]int64
}

// Start opens a root span. Returns nil on a nil trace.
func (tr *Trace) Start(name string) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{tr: tr, id: tr.seq.Add(1), name: name, start: time.Now()}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// Child opens a span nested under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.Start(name)
	c.parent = s.id
	return c
}

// SetAttr attaches an integer attribute to the span. No-op on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End closes the span, recording its duration. Ending twice keeps the first
// duration. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SpanRecord is the JSON form of one finished span.
type SpanRecord struct {
	ID     int64            `json:"id"`
	Parent int64            `json:"parent,omitempty"`
	Name   string           `json:"name"`
	Start  int64            `json:"startNanos"` // relative to the trace's first span
	Nanos  int64            `json:"nanos"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// Records snapshots every span in start order. Open spans are reported with
// their duration so far. Nil trace yields nil.
func (tr *Trace) Records() []SpanRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	tr.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	epoch := spans[0].start
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(s.start)
		}
		var attrs map[string]int64
		if len(s.attrs) > 0 {
			attrs = make(map[string]int64, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		s.mu.Unlock()
		out[i] = SpanRecord{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  int64(s.start.Sub(epoch)),
			Nanos:  int64(dur),
			Attrs:  attrs,
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
