// Package optbench defines the joint transformation-search benchmark
// workloads shared by the committed benchmark suite (optbench_test.go) and
// cmd/optbench, which writes the BENCH_opt.json artifact — the same
// one-place-for-workloads discipline internal/simbench and
// internal/evalbench apply.
//
// Each workload is an untiled kernel and a cache geometry. Two searches
// are measured per workload: the joint plan search (permutation × fusion ×
// auto-tiling, every axis on) and the tile-only baseline (the identity
// variant alone — exactly what the pre-plan search layer could express on
// an untiled nest). The artifact records both predicted miss counts and
// both wall times, so it documents what the structural axes buy and what
// they cost.
package optbench

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/tilesearch"
)

// Workload is one benchmarked configuration: a BuildKernel kind with a
// loop bound and cache geometry (Ways zero selects the fully-associative
// model).
type Workload struct {
	Name    string
	Kernel  string
	N       int64
	CacheKB int64
	Ways    int64
	Line    int64
}

// Workloads returns the committed BENCH_opt.json configurations:
//
//   - the unfused two-index transform chain at two sizes, where fusing
//     the chain is the win (Fig. 5 → Fig. 6 of the paper),
//   - the naive matmul against the set-associative geometry, where loop
//     order and tiling both matter (the SNIPPET 2 ranking regime).
func Workloads() []Workload {
	return []Workload{
		{Name: "twoindexchain-n32", Kernel: "twoindexchain", N: 32, CacheKB: 2},
		{Name: "twoindexchain-n64", Kernel: "twoindexchain", N: 64, CacheKB: 8},
		{Name: "matmul-naive-n128-8way", Kernel: "matmul-naive", N: 128, CacheKB: 16, Ways: 8, Line: 4},
	}
}

// options builds the search options for a workload.
func options(wl Workload, parallelism int) (tilesearch.Options, error) {
	_, env, err := experiments.BuildKernel(wl.Kernel, wl.N, nil)
	if err != nil {
		return tilesearch.Options{}, err
	}
	return tilesearch.Options{
		CacheElems:  experiments.KB(wl.CacheKB),
		Ways:        wl.Ways,
		LineElems:   wl.Line,
		BaseEnv:     env,
		Parallelism: parallelism,
	}, nil
}

// RunJoint runs the full joint search for a workload.
func RunJoint(wl Workload, parallelism int) (*tilesearch.PlanResult, error) {
	nest, _, err := experiments.BuildKernel(wl.Kernel, wl.N, nil)
	if err != nil {
		return nil, err
	}
	opt, err := options(wl, parallelism)
	if err != nil {
		return nil, err
	}
	return tilesearch.SearchPlans(nest, tilesearch.PlanOptions{
		Options:  opt,
		Permute:  true,
		Fuse:     true,
		AutoTile: true,
	})
}

// RunTileOnly runs the baseline: the identity variant alone, every
// structural axis off — the nest exactly as written, scored by the same
// machinery.
func RunTileOnly(wl Workload, parallelism int) (*tilesearch.PlanResult, error) {
	nest, _, err := experiments.BuildKernel(wl.Kernel, wl.N, nil)
	if err != nil {
		return nil, err
	}
	opt, err := options(wl, parallelism)
	if err != nil {
		return nil, err
	}
	return tilesearch.SearchPlans(nest, tilesearch.PlanOptions{Options: opt})
}

// Find returns the named workload.
func Find(name string) (Workload, error) {
	for _, wl := range Workloads() {
		if wl.Name == name {
			return wl, nil
		}
	}
	return Workload{}, fmt.Errorf("optbench: unknown workload %q", name)
}
