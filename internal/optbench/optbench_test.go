package optbench

import (
	"fmt"
	"testing"
)

// BenchmarkJoint measures the full joint plan search per workload — the
// numbers behind BENCH_opt.json's joint wall times.
func BenchmarkJoint(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunJoint(wl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTileOnly measures the identity-only baseline per workload.
func BenchmarkTileOnly(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunTileOnly(wl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWorkloadsImprove pins the artifact's headline claim: on every
// committed workload the joint search's winner strictly beats the
// tile-only baseline in predicted misses. This is the same tripwire
// cmd/optbench -smoke trips in CI.
func TestWorkloadsImprove(t *testing.T) {
	for _, wl := range Workloads() {
		t.Run(wl.Name, func(t *testing.T) {
			joint, err := RunJoint(wl, 0)
			if err != nil {
				t.Fatal(err)
			}
			base, err := RunTileOnly(wl, 0)
			if err != nil {
				t.Fatal(err)
			}
			jm := joint.Best().Result.Best.Misses
			bm := base.Best().Result.Best.Misses
			if jm >= bm {
				t.Errorf("joint %d misses (plan %s), tile-only %d — no structural win",
					jm, joint.Best().Plan, bm)
			}
			// The joint search's own identity variant must equal the
			// baseline run: same machinery, same score.
			if got := joint.Baseline().Result.Best.Misses; got != bm {
				t.Errorf("joint identity variant %d misses, standalone baseline %d", got, bm)
			}
			fmt.Printf("%s: joint %d (%s) vs tile-only %d\n", wl.Name, jm, joint.Best().Plan, bm)
		})
	}
}
