package service

import (
	"sync"

	"repro/internal/obs"
)

// workPool is the admission-control half of the service: a fixed set of
// workers draining a bounded task queue. Submission never blocks — when the
// queue is full the request is rejected immediately (the handler answers
// 429) instead of queueing unbounded work behind a slow client. The queue
// bound is therefore the service's entire overload policy: latency under
// load is capped at roughly queueDepth/workers compute slots.
type workPool struct {
	mu     sync.RWMutex // guards the closed/send race on tasks
	tasks  chan func()
	closed bool
	wg     sync.WaitGroup
	depth  *obs.Gauge // "service.queue.depth": tasks accepted but not started
}

func newWorkPool(workers, queueDepth int, depth *obs.Gauge) *workPool {
	p := &workPool{tasks: make(chan func(), queueDepth), depth: depth}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.depth.Add(-1)
				fn()
			}
		}()
	}
	return p
}

// trySubmit enqueues fn if the queue has room, reporting whether it was
// accepted. A false return is the overload signal; after close it is the
// only answer.
func (p *workPool) trySubmit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		p.depth.Add(1)
		return true
	default:
		return false
	}
}

// trySubmitBatch atomically enqueues all of fns or none of them: a batch
// must not partially enter the queue, or a rejected batch would still
// consume compute. The full lock excludes concurrent trySubmit senders
// (they hold the read lock) and other batches, so the free-slot check and
// the sends are one atomic step; workers only drain the channel, which can
// only widen the observed gap between the check and the sends.
func (p *workPool) trySubmitBatch(fns []func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(fns) > cap(p.tasks)-len(p.tasks) {
		return false
	}
	for _, fn := range fns {
		p.tasks <- fn
	}
	p.depth.Add(int64(len(fns)))
	return true
}

// close stops admission, runs every already-accepted task to completion,
// and waits for the workers to exit. Part of the drain path: the HTTP
// server is shut down first, so no handler can be mid-trySubmit here.
func (p *workPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
