package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/loopir"
)

// BatchRequest is the /v1/batch body: many computations in one request.
// Items carries heterogeneous single-endpoint requests verbatim;
// Candidates is the amortized form — one spec compiled once, many tile
// assignments predicted against it. The two forms compose: candidate rows
// are appended after the explicit items, and every entry is addressed by
// its zero-based position in that combined order.
type BatchRequest struct {
	Items      []BatchItem      `json:"items,omitempty"`
	Candidates *BatchCandidates `json:"candidates,omitempty"`
}

// BatchItem is one explicit batch entry: an endpoint path plus the exact
// body the endpoint would have received on its own. The response bytes are
// byte-identical to the single-request response, which is also why the
// item shares the single request's cache entry.
type BatchItem struct {
	Path    string          `json:"path"`
	Request json.RawMessage `json:"request"`
}

// BatchCandidates is the many-tile-candidates-per-spec form: the base
// problem (nest or kernel, capacity, optional set-associative geometry) is
// resolved and canonicalized once, then each row of Sets binds the Dims
// symbols on top of the base environment and predicts misses — the same
// computation as a /v1/predict per candidate, minus the per-request parse,
// canonicalization and key-packing tax.
type BatchCandidates struct {
	NestRequest
	CacheElems int64  `json:"cacheElems,omitempty"`
	CacheKB    int64  `json:"cacheKB,omitempty"`
	Ways       *int64 `json:"ways,omitempty"`
	Line       *int64 `json:"line,omitempty"`
	Detail     bool   `json:"detail,omitempty"`
	// Dims names the tile symbols each row binds, in row order; every name
	// must be a symbol of the resolved nest.
	Dims []string `json:"dims"`
	// Sets is one tile assignment per row, len(Dims) values each, all >= 1.
	Sets [][]int64 `json:"sets"`
}

// itemPlan is one planned batch entry: its response-cache key and
// computation, or the planning error that will become its item record.
type itemPlan struct {
	key     string
	compute func(context.Context) ([]byte, error)
	err     error
}

// batchPlan is a fully planned batch body. err is the batch-level error
// (malformed envelope, over-cap item count, invalid candidates header) that
// fails the whole request; item-level problems land in the items instead
// and the batch proceeds around them.
type batchPlan struct {
	items []itemPlan
	err   error
}

// BatchItemSpec is one expanded batch entry in combined (items-then-
// candidate-rows) order: the single-endpoint request it is equivalent to,
// its canonical cache/shard key, or the planning error that will become its
// item record. For explicit items Body is the request verbatim; for
// candidate rows it is a synthesized /v1/predict body over the canonical
// nest that plans to the same key and the same response bytes — which is
// what lets the cluster router re-route each row to the replica owning its
// key and still assemble a byte-identical envelope.
type BatchItemSpec struct {
	Path string
	Body []byte
	Key  string
	Err  error

	compute computeFn
}

// BatchExpansion is a decoded, per-item-planned /v1/batch body.
type BatchExpansion struct {
	Items []BatchItemSpec
}

// ExpandBatch decodes a /v1/batch body into its combined item list.
// Batch-level problems (malformed envelope, no items, an item count above
// maxItems — the latter wrapped in ErrOverload — or an invalid candidates
// header) are returned as the error; per-item problems land in the items.
// Deterministic, like every plan: the same body always yields the same
// keys, bodies and errors, which is what makes the result memoizable by
// body bytes and makes router-side and service-side batch views agree.
func ExpandBatch(body []byte, maxItems int) (*BatchExpansion, error) {
	var req BatchRequest
	if err := decodeInto(body, &req); err != nil {
		return nil, err
	}
	n := len(req.Items)
	if req.Candidates != nil {
		n += len(req.Candidates.Sets)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: batch needs items or candidates", errBadRequest)
	}
	if n > maxItems {
		return nil, fmt.Errorf("%w: batch of %d items exceeds cap %d", ErrOverload, n, maxItems)
	}
	exp := &BatchExpansion{Items: make([]BatchItemSpec, 0, n)}
	for i := range req.Items {
		it := &req.Items[i]
		switch it.Path {
		case "/v1/analyze", "/v1/predict", "/v1/simulate", "/v1/tilesearch", "/v1/optimize":
			key, compute, err := parseRequest(it.Path, it.Request)
			exp.Items = append(exp.Items, BatchItemSpec{
				Path: it.Path, Body: it.Request, Key: key, Err: err, compute: compute,
			})
		default:
			exp.Items = append(exp.Items, BatchItemSpec{
				Path: it.Path,
				Err:  fmt.Errorf("%w: path %q is not batchable", errBadRequest, it.Path),
			})
		}
	}
	if req.Candidates != nil {
		if err := expandCandidates(exp, req.Candidates); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

// expandCandidates expands the candidates form into per-row predict plans.
// Header problems (bad spec, bad capacity, bad dims) are batch-level
// errors — nothing sensible can be computed per row — while a malformed
// individual row only fails that row's item.
func expandCandidates(exp *BatchExpansion, c *BatchCandidates) error {
	spec, nest, err := c.resolve()
	if err != nil {
		return err
	}
	cacheElems, err := cacheElemsOf(c.CacheElems, c.CacheKB)
	if err != nil {
		return err
	}
	cfg, err := assocConfigOf(c.Ways, c.Line, cacheElems)
	if err != nil {
		return err
	}
	if len(c.Dims) == 0 {
		return fmt.Errorf("%w: candidates need dims", errBadRequest)
	}
	symbols := map[string]bool{}
	for _, name := range nest.SymbolNames() {
		symbols[name] = true
	}
	seen := map[string]bool{}
	for _, d := range c.Dims {
		if !symbols[d] {
			return fmt.Errorf("%w: dim %q is not a symbol of nest %s", errBadRequest, d, nest.Name)
		}
		if seen[d] {
			return fmt.Errorf("%w: duplicate dim %q", errBadRequest, d)
		}
		seen[d] = true
	}
	for _, set := range c.Sets {
		if len(set) != len(c.Dims) {
			exp.Items = append(exp.Items, BatchItemSpec{
				Path: "/v1/predict",
				Err:  fmt.Errorf("%w: candidate has %d values for %d dims", errBadRequest, len(set), len(c.Dims)),
			})
			continue
		}
		env := make(map[string]int64, len(spec.Env))
		for k, v := range spec.Env {
			env[k] = v
		}
		bad := false
		for j, v := range set {
			if v < 1 {
				exp.Items = append(exp.Items, BatchItemSpec{
					Path: "/v1/predict",
					Err:  fmt.Errorf("%w: tile size must be >= 1, got %s=%d", errBadRequest, c.Dims[j], v),
				})
				bad = true
				break
			}
			env[c.Dims[j]] = v
		}
		if bad {
			continue
		}
		// The overridden symbols are nest symbols, so the spec stays
		// canonical by construction and its predict key is byte-identical
		// to the equivalent single /v1/predict — candidate rows and single
		// requests share cache entries. The synthesized body inlines the
		// canonical nest with the row's environment and copies the header's
		// capacity/geometry/detail fields, so a replica planning it lands on
		// the same key and computes the same bytes as this row.
		rowSpec := &loopir.Spec{Nest: spec.Nest, Env: env}
		rowBody, merr := marshal(PredictRequest{
			NestRequest: NestRequest{Nest: rowSpec.Nest, Env: rowSpec.Env},
			CacheElems:  cfg.CapacityElems,
			Ways:        c.Ways,
			Line:        c.Line,
			Detail:      c.Detail,
		})
		if merr != nil {
			exp.Items = append(exp.Items, BatchItemSpec{Path: "/v1/predict", Err: merr})
			continue
		}
		exp.Items = append(exp.Items, BatchItemSpec{
			Path: "/v1/predict",
			Body: bytes.TrimSuffix(rowBody, []byte{'\n'}),
			Key:  predictKey(rowSpec, cfg, c.Detail),
			compute: func(s *Service, ctx context.Context) ([]byte, error) {
				return s.computePredict(ctx, rowSpec, cfg, c.Detail)
			},
		})
	}
	return nil
}

// planBatch binds ExpandBatch's outcome to this service instance, the
// batch counterpart of plan.
func (s *Service) planBatch(body []byte) *batchPlan {
	exp, err := ExpandBatch(body, s.cfg.MaxBatchItems)
	if err != nil {
		return &batchPlan{err: err}
	}
	plan := &batchPlan{items: make([]itemPlan, len(exp.Items))}
	for i := range exp.Items {
		it := &exp.Items[i]
		plan.items[i] = itemPlan{key: it.Key, err: it.Err}
		if it.Err == nil {
			fn := it.compute
			plan.items[i].compute = func(ctx context.Context) ([]byte, error) {
				return fn(s, ctx)
			}
		}
	}
	return plan
}

// batchScratch is the pooled per-request working set of the batch path:
// entry slices, the record scratch and the envelope buffer all reuse their
// previous capacity, which is what keeps the warm per-item cost at the
// cache probe plus the record append.
type batchScratch struct {
	entries []*flightEntry[[]byte]
	leaders []*flightEntry[[]byte]
	tasks   []func()
	rec     []byte
	out     bytes.Buffer
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch { return batchScratchPool.Get().(*batchScratch) }

func putBatchScratch(sc *batchScratch) {
	sc.entries = sc.entries[:0]
	sc.leaders = sc.leaders[:0]
	sc.tasks = sc.tasks[:0]
	batchScratchPool.Put(sc)
}

// batchRun acquires the response-cache entry for every valid item and
// schedules the leader computations as one atomic pool submission: either
// every needed task is enqueued or none is and the whole batch is rejected
// with ErrOverload (429) — a partially enqueued batch would bill the
// client for work it cannot get answers from. Cache-complete and coalesced
// items need no pool slot, so a warm batch schedules nothing.
func (s *Service) batchRun(plan *batchPlan, sc *batchScratch) error {
	sc.entries = sc.entries[:0]
	sc.leaders = sc.leaders[:0]
	sc.tasks = sc.tasks[:0]
	for i := range plan.items {
		it := &plan.items[i]
		if it.err != nil {
			sc.entries = append(sc.entries, nil)
			continue
		}
		e, leader := s.resp.acquire(it.key)
		sc.entries = append(sc.entries, e)
		if leader {
			compute, entry := it.compute, e
			sc.leaders = append(sc.leaders, e)
			sc.tasks = append(sc.tasks, func() {
				ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
				defer cancel()
				data, err := compute(ctx)
				s.resp.complete(entry, data, err)
			})
		}
	}
	if len(sc.tasks) > 0 && !s.pool.trySubmitBatch(sc.tasks) {
		// Complete the leader entries so coalesced waiters (and later
		// retries of these keys) see the overload instead of hanging.
		for _, e := range sc.leaders {
			s.resp.complete(e, nil, ErrOverload)
		}
		return ErrOverload
	}
	return nil
}

// entryResult waits for a cache entry's result under ctx. The fast path —
// a completed entry, i.e. every cache-hot item — never touches ctx.
func entryResult(ctx context.Context, e *flightEntry[[]byte]) ([]byte, error) {
	select {
	case <-e.done:
		return e.val, e.err
	default:
	}
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// appendItemRecord renders one per-item batch record into dst:
//
//	{"item":I,"ok":true,"response":<response JSON>}
//	{"item":I,"ok":false,"status":S,"error":"..."}
//
// The embedded response is the single-endpoint response body verbatim
// (minus its trailing newline), so batch items stay byte-comparable to
// direct Service.Compute results; status is the HTTP status the same
// request would have received on its own endpoint.
func appendItemRecord(dst []byte, idx int, data []byte, err error) []byte {
	dst = append(dst, `{"item":`...)
	dst = strconv.AppendInt(dst, int64(idx), 10)
	if err == nil {
		dst = append(dst, `,"ok":true,"response":`...)
		dst = append(dst, bytes.TrimSuffix(data, []byte{'\n'})...)
	} else {
		dst = append(dst, `,"ok":false,"status":`...)
		dst = strconv.AppendInt(dst, int64(statusOf(err)), 10)
		dst = append(dst, `,"error":`...)
		msg, merr := json.Marshal(err.Error())
		if merr != nil {
			msg = []byte(`"error"`)
		}
		dst = append(dst, msg...)
	}
	return append(dst, '}')
}

// AppendBatchItemRecord renders one per-item batch record into dst exactly
// as the batch endpoint would: the exported form of appendItemRecord, used
// by the cluster router to render item records it resolves locally
// (planning errors) byte-identically to a single backend's rendering.
func AppendBatchItemRecord(dst []byte, idx int, response []byte, err error) []byte {
	return appendItemRecord(dst, idx, response, err)
}

// AppendBatchSummary renders the batch summary object into dst exactly as
// the batch endpoint would, for the cluster router's envelope reassembly.
func AppendBatchSummary(dst []byte, items, ok, errs int) []byte {
	return appendBatchSummary(dst, items, ok, errs)
}

// appendBatchSummary renders the terminal summary object.
func appendBatchSummary(dst []byte, items, ok, errs int) []byte {
	dst = append(dst, `{"items":`...)
	dst = strconv.AppendInt(dst, int64(items), 10)
	dst = append(dst, `,"ok":`...)
	dst = strconv.AppendInt(dst, int64(ok), 10)
	dst = append(dst, `,"errors":`...)
	dst = strconv.AppendInt(dst, int64(errs), 10)
	return append(dst, '}')
}

// renderBatchEnvelope builds the aggregated (non-streaming) batch response
// into sc.out, pulling each item's result from get. Item order is request
// order regardless of completion order, so the envelope is deterministic
// at any worker count:
//
//	{"items":[<record>,...],"summary":{"items":N,"ok":K,"errors":E}}
func renderBatchEnvelope(plan *batchPlan, sc *batchScratch, get func(i int, it *itemPlan) ([]byte, error)) (ok, errs int) {
	sc.out.Reset()
	sc.out.WriteString(`{"items":[`)
	for i := range plan.items {
		it := &plan.items[i]
		var data []byte
		ierr := it.err
		if ierr == nil {
			data, ierr = get(i, it)
		}
		if i > 0 {
			sc.out.WriteByte(',')
		}
		sc.rec = appendItemRecord(sc.rec[:0], i, data, ierr)
		sc.out.Write(sc.rec)
		if ierr == nil {
			ok++
		} else {
			errs++
		}
	}
	sc.out.WriteString(`],"summary":`)
	sc.rec = appendBatchSummary(sc.rec[:0], len(plan.items), ok, errs)
	sc.out.Write(sc.rec)
	sc.out.WriteString("}\n")
	return ok, errs
}

// computeBatchDirect is Service.Compute's /v1/batch path: every item is
// computed inline and sequentially — no cache, no pool, no admission —
// and the envelope bytes are exactly what the HTTP handler serves on a
// 200, which is what the load generator's byte verification compares
// against.
func (s *Service) computeBatchDirect(ctx context.Context, body []byte) ([]byte, error) {
	plan := s.planBatchCached(body)
	if plan.err != nil {
		return nil, plan.err
	}
	sc := getBatchScratch()
	defer putBatchScratch(sc)
	renderBatchEnvelope(plan, sc, func(_ int, it *itemPlan) ([]byte, error) {
		return it.compute(ctx)
	})
	return append([]byte(nil), sc.out.Bytes()...), nil
}
