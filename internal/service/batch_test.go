package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// batchFixture exercises every per-item outcome in one request: three
// heterogeneous explicit items, a non-batchable path (per-item 400), a
// candidates sweep sharing one compiled spec, and a malformed candidate
// row (per-item 400). Partial success is the point: the envelope is a 200.
const batchFixture = `{"items":[` +
	`{"path":"/v1/analyze","request":{"kernel":"matmul","n":16,"tiles":[4,4,4]}},` +
	`{"path":"/v1/predict","request":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"detail":true}},` +
	`{"path":"/v1/simulate","request":{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}},` +
	`{"path":"/v1/bogus","request":{}}` +
	`],"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,` +
	`"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8],[2,4]]}}`

// batchEnvelope mirrors the wire format for assertions.
type batchEnvelope struct {
	Items []struct {
		Item     int             `json:"item"`
		OK       bool            `json:"ok"`
		Response json.RawMessage `json:"response"`
		Status   int             `json:"status"`
		Error    string          `json:"error"`
	} `json:"items"`
	Summary struct {
		Items  int `json:"items"`
		OK     int `json:"ok"`
		Errors int `json:"errors"`
	} `json:"summary"`
}

// TestBatchGolden pins the aggregated batch envelope byte-for-byte, checks
// it against the direct Compute path, and checks every successful item's
// embedded response against the equivalent single-endpoint computation.
func TestBatchGolden(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	w := post(t, h, "/v1/batch", batchFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	got := w.Body.Bytes()

	direct, err := svc.Compute(context.Background(), "/v1/batch", []byte(batchFixture))
	if err != nil {
		t.Fatalf("direct compute: %v", err)
	}
	if !bytes.Equal(got, direct) {
		t.Fatalf("served batch differs from direct Compute:\nserved: %s\ndirect: %s", got, direct)
	}

	var env batchEnvelope
	if err := json.Unmarshal(got, &env); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	if env.Summary.Items != 8 || env.Summary.OK != 6 || env.Summary.Errors != 2 {
		t.Errorf("summary %+v, want items=8 ok=6 errors=2", env.Summary)
	}
	// Item order is request order.
	for i, it := range env.Items {
		if it.Item != i {
			t.Errorf("item %d reports index %d", i, it.Item)
		}
	}
	// Per-item equivalence: each embedded response equals the single
	// endpoint's bytes (minus the framing newline).
	singles := []struct {
		item       int
		path, body string
	}{
		{0, "/v1/analyze", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`},
		{1, "/v1/predict", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"detail":true}`},
		{2, "/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`},
		{4, "/v1/predict", `{"kernel":"matmul","n":16,"tiles":[2,4,4],"cacheKB":4}`},
		{5, "/v1/predict", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`},
		{6, "/v1/predict", `{"kernel":"matmul","n":16,"tiles":[8,8,8],"cacheKB":4}`},
	}
	for _, s := range singles {
		want, err := svc.Compute(context.Background(), s.path, []byte(s.body))
		if err != nil {
			t.Fatalf("single %s: %v", s.path, err)
		}
		want = bytes.TrimSuffix(want, []byte{'\n'})
		if !bytes.Equal(env.Items[s.item].Response, want) {
			t.Errorf("item %d differs from single %s:\nbatch:  %s\nsingle: %s",
				s.item, s.path, env.Items[s.item].Response, want)
		}
	}
	// The taxonomy items: bad path and short candidate row are 400s.
	for _, i := range []int{3, 7} {
		if env.Items[i].OK || env.Items[i].Status != 400 || env.Items[i].Error == "" {
			t.Errorf("item %d = %+v, want ok=false status=400 with error", i, env.Items[i])
		}
	}

	golden := filepath.Join("testdata", "batch_mixed.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch envelope differs from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestBatchCandidatesShareCache: a candidate row keys identically to the
// equivalent single /v1/predict, so the two share one cache entry in
// either order.
func TestBatchCandidatesShareCache(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()
	single := `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`
	batch := `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[4,4,4]]}}`
	if w := post(t, h, "/v1/predict", single); w.Code != http.StatusOK {
		t.Fatalf("single: %d %s", w.Code, w.Body.String())
	}
	w := post(t, h, "/v1/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	c := m.Counters()
	if c["service.cache.misses"] != 1 || c["service.cache.hits"] != 1 {
		t.Errorf("cache misses=%d hits=%d, want 1/1 (candidate should share the single predict's entry)",
			c["service.cache.misses"], c["service.cache.hits"])
	}
}

// TestBatchErrors pins the batch-level error taxonomy. Item-level problems
// are covered by the golden fixture; these fail the whole request.
func TestBatchErrors(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	okCand := `"cacheKB":4,"dims":["TI"],"sets":[[4]]`
	cases := []struct {
		name, body string
		method     string
		wantCode   int
	}{
		{"get rejected", "", http.MethodGet, http.StatusMethodNotAllowed},
		{"bad json", `{"items":`, http.MethodPost, http.StatusBadRequest},
		{"empty batch", `{}`, http.MethodPost, http.StatusBadRequest},
		{"no items no candidates", `{"items":[]}`, http.MethodPost, http.StatusBadRequest},
		{"candidates without dims", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":[],"sets":[[4]]}}`, http.MethodPost, http.StatusBadRequest},
		{"unknown dim", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TX"],"sets":[[4]]}}`, http.MethodPost, http.StatusBadRequest},
		{"duplicate dim", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TI"],"sets":[[4,4]]}}`, http.MethodPost, http.StatusBadRequest},
		{"candidates without capacity", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"dims":["TI"],"sets":[[4]]}}`, http.MethodPost, http.StatusBadRequest},
		{"candidates bad spec", `{"candidates":{"kernel":"nope","n":16,` + okCand + `}}`, http.MethodPost, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, "/v1/batch", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.wantCode {
				t.Errorf("status %d, want %d (body %s)", w.Code, tc.wantCode, w.Body.String())
			}
		})
	}

	// Over-cap batches answer 429 whole, like any other overload.
	small := New(Config{Obs: obs.New(), Workers: 1, QueueDepth: 4, MaxBatchItems: 2})
	t.Cleanup(small.Close)
	hs := small.Handler()
	big := `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI"],"sets":[[1],[2],[4]]}}`
	if w := post(t, hs, "/v1/batch", big); w.Code != http.StatusTooManyRequests {
		t.Errorf("over-cap batch: status %d, want 429 (%s)", w.Code, w.Body.String())
	}
}

// waitUntil polls cond for up to 2 seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchAtomicAdmission: a cold batch needing more pool slots than the
// queue has free is rejected whole — 429, queue depth untouched, no
// partial enqueue — and the same batch succeeds wholesale once the queue
// clears.
func TestBatchAtomicAdmission(t *testing.T) {
	m := obs.New()
	svc := New(Config{Obs: m, Workers: 1, QueueDepth: 4})
	t.Cleanup(svc.Close)
	h := svc.Handler()

	release := make(chan struct{})
	block := func() { <-release }
	// Occupy the single worker, then fill three of the four queue slots,
	// leaving exactly one free.
	if !svc.pool.trySubmit(block) {
		t.Fatal("could not occupy worker")
	}
	waitUntil(t, "worker pickup", func() bool { return m.Gauges()["service.queue.depth"] == 0 })
	for i := 0; i < 3; i++ {
		if !svc.pool.trySubmit(block) {
			t.Fatalf("queue fill %d rejected", i)
		}
	}
	depthBefore := m.Gauges()["service.queue.depth"]

	// Three cold items > one free slot: the whole batch must bounce.
	batch := `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI"],"sets":[[1],[2],[4]]}}`
	w := post(t, h, "/v1/batch", batch)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if depth := m.Gauges()["service.queue.depth"]; depth != depthBefore {
		t.Errorf("queue depth %d after rejected batch, want %d (partial enqueue)", depth, depthBefore)
	}
	c := m.Counters()
	if c["service.batch.rejected"] != 1 || c["service.batch.requests"] != 1 {
		t.Errorf("batch counters %v, want requests=1 rejected=1", c)
	}
	if c["service.batch.items"] != 0 {
		t.Errorf("rejected batch counted %d items, want 0", c["service.batch.items"])
	}

	// Unblock; the same batch must now succeed completely — the rejection
	// left no half-computed state behind.
	close(release)
	waitUntil(t, "queue drain", func() bool { return m.Gauges()["service.queue.depth"] == 0 })
	w = post(t, h, "/v1/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("retry status %d: %s", w.Code, w.Body.String())
	}
	var env batchEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Summary.OK != 3 || env.Summary.Errors != 0 {
		t.Errorf("retry summary %+v, want ok=3 errors=0", env.Summary)
	}
}

// TestBatchPartialTimeout: when the wait deadline expires mid-batch the
// envelope still arrives as a 200 with per-item 504 records — partial
// failure is per-item, never a truncated response.
func TestBatchPartialTimeout(t *testing.T) {
	m := obs.New()
	svc := New(Config{Obs: m, Workers: 1, QueueDepth: 8, RequestTimeout: time.Nanosecond})
	t.Cleanup(svc.Close)
	h := svc.Handler()
	batch := `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI"],"sets":[[1],[2]]}}`
	w := post(t, h, "/v1/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", w.Code, w.Body.String())
	}
	var env batchEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Summary.Errors == 0 {
		t.Skip("computation beat the nanosecond deadline") // effectively unreachable
	}
	for _, it := range env.Items {
		if !it.OK && it.Status != 504 {
			t.Errorf("timed-out item %d has status %d, want 504", it.Item, it.Status)
		}
	}
}

// TestBatchWarmAllocs: the cache-hot batch path — memoized plan, cache
// probes, pooled scratch — stays within 2 allocations per item.
func TestBatchWarmAllocs(t *testing.T) {
	svc := New(Config{Obs: obs.New(), Workers: 2, QueueDepth: 128})
	t.Cleanup(svc.Close)
	const items = 64
	var sets []string
	for i := 0; i < items; i++ {
		sets = append(sets, fmt.Sprintf("[%d,%d,%d]", 1+i%16, 1+(i/4)%16, 4))
	}
	body := []byte(`{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[` +
		strings.Join(sets, ",") + `]}}`)

	ctx := context.Background()
	run := func() {
		plan := svc.planBatchCached(body)
		if plan.err != nil {
			panic(plan.err)
		}
		sc := getBatchScratch()
		if err := svc.batchRun(plan, sc); err != nil {
			panic(err)
		}
		ok, errs := renderBatchEnvelope(plan, sc, func(i int, _ *itemPlan) ([]byte, error) {
			return entryResult(ctx, sc.entries[i])
		})
		if ok != items || errs != 0 {
			panic(fmt.Sprintf("ok=%d errs=%d", ok, errs))
		}
		putBatchScratch(sc)
	}
	run() // warm: populate plan memo, response cache, scratch capacity
	allocs := testing.AllocsPerRun(50, run)
	perItem := allocs / items
	t.Logf("warm batch: %.1f allocs/run, %.3f allocs/item", allocs, perItem)
	if perItem > 2 {
		t.Errorf("%.3f allocs per cache-hot item, want <= 2", perItem)
	}
}
