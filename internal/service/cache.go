package service

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// flightCache is the shared machinery behind the response cache and the
// analysis cache: a bounded LRU whose entries double as singleflight
// rendezvous points. acquire either finds an entry (complete or still in
// flight — the caller waits on done either way) or installs a new in-flight
// entry and nominates the caller as its leader; exactly one goroutine
// computes each key, everyone else coalesces onto that computation.
//
// Metric determinism (the serving layer's acceptance criterion): for a
// fixed request script against a cache whose capacity covers the distinct
// keys, misses equals the number of distinct keys — singleflight guarantees
// one leader per key no matter how the requests interleave — and hits is
// exactly lookups - misses. Only coalesced (the subset of hits that joined
// a still-in-flight entry) depends on timing, the same stance
// core.EvalCache takes for its coalesced counter.
//
// Failed computations are evicted on completion, so an error is returned to
// the leader and every coalesced waiter but never served from cache; the
// next request for that key retries (and counts a fresh miss).
type flightCache[V any] struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *flightEntry[V]
	entries map[string]*list.Element

	lookups, hits, misses, coalesced, evictions *obs.Counter
	gauge                                       *obs.Gauge
}

// flightEntry is one cached (or in-flight) computation. val and err are
// written once by complete before done is closed; waiters read them only
// after <-done.
type flightEntry[V any] struct {
	key  string
	done chan struct{}
	val  V
	err  error
}

// newFlightCache creates a cache holding at most capacity completed
// entries. Instrument names are resolved once under the given prefix
// (prefix+".lookups", ".hits", ".misses", ".coalesced", ".evictions" and
// the ".entries" gauge); m may be nil.
func newFlightCache[V any](capacity int, m *obs.Metrics, prefix string) *flightCache[V] {
	return &flightCache[V]{
		cap:       capacity,
		lru:       list.New(),
		entries:   map[string]*list.Element{},
		lookups:   m.Counter(prefix + ".lookups"),
		hits:      m.Counter(prefix + ".hits"),
		misses:    m.Counter(prefix + ".misses"),
		coalesced: m.Counter(prefix + ".coalesced"),
		evictions: m.Counter(prefix + ".evictions"),
		gauge:     m.Gauge(prefix + ".entries"),
	}
}

// acquire returns the entry for key and whether the caller is its leader.
// The leader must eventually call complete on the entry — failing to do so
// deadlocks every waiter — and a non-leader must not.
func (c *flightCache[V]) acquire(key string) (*flightEntry[V], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups.Inc()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*flightEntry[V])
		c.hits.Inc()
		select {
		case <-e.done:
		default:
			c.coalesced.Inc()
		}
		return e, false
	}
	e := &flightEntry[V]{key: key, done: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	c.misses.Inc()
	c.evict()
	c.gauge.Set(int64(len(c.entries)))
	return e, true
}

// evict drops least-recently-used completed entries until the cache fits.
// In-flight entries are skipped — evicting one would detach it from the
// map while waiters still hold it, and a concurrent acquire of its key
// would start a duplicate computation — so the cache can transiently
// exceed cap when everything in it is still computing.
func (c *flightCache[V]) evict() {
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		e := el.Value.(*flightEntry[V])
		select {
		case <-e.done:
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.evictions.Inc()
		default:
		}
		el = prev
	}
}

// complete publishes the leader's result and wakes every waiter. Errors
// are not cached: the entry is removed so the key can be retried.
func (c *flightCache[V]) complete(e *flightEntry[V], val V, err error) {
	c.mu.Lock()
	e.val, e.err = val, err
	close(e.done)
	if err != nil {
		if el, ok := c.entries[e.key]; ok && el.Value.(*flightEntry[V]) == e {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
	}
	c.gauge.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// len reports the number of cached (and in-flight) entries.
func (c *flightCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
