package service

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
)

// runScript fires the fixed request script — clients concurrent goroutines
// each posting every (path, body) pair rounds times — against a fresh
// service and returns the cache counters and the unique 200 bodies per
// path.
func runScript(t *testing.T, clients, rounds int) (map[string]int64, map[string][][]byte) {
	t.Helper()
	svc, m := newTestService(t)
	h := svc.Handler()

	script := []struct{ path, body string }{
		{"/v1/predict", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`},
		{"/v1/predict", `{"kernel":"matmul","n":16,"tiles":[8,8,8],"cacheKB":4}`},
		{"/v1/analyze", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`},
	}

	bodies := make([][][]byte, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, req := range script {
					w := post(t, h, req.path, req.body)
					if w.Code != http.StatusOK {
						t.Errorf("client %d: %s: status %d", c, req.path, w.Code)
						continue
					}
					bodies[c] = append(bodies[c], w.Body.Bytes())
				}
			}
		}(c)
	}
	wg.Wait()

	// Group the 200 bodies by script entry (not by path — the script holds
	// two distinct predict requests with distinct responses).
	perReq := map[string][][]byte{}
	for c := range bodies {
		for i, b := range bodies[c] {
			e := script[i%len(script)]
			perReq[e.path+" "+e.body] = append(perReq[e.path+" "+e.body], b)
		}
	}
	return m.Counters(), perReq
}

// TestCoalescingDeterministic is the acceptance criterion on cache
// metrics: for a fixed request script, the hit and miss counters are the
// same at any interleaving, because singleflight admits exactly one leader
// per distinct key. Only "coalesced" (hits that joined an in-flight entry)
// may vary with timing.
func TestCoalescingDeterministic(t *testing.T) {
	const clients, rounds = 32, 4
	// 3 distinct request keys, but a single analysis: tile sizes change
	// only the env, so every request shares one canonical nest.
	const distinctKeys = 3
	const distinctNests = 1

	c1, bodies := runScript(t, clients, rounds)
	c2, _ := runScript(t, clients, rounds)

	total := int64(clients * rounds * 3)
	for _, c := range []map[string]int64{c1, c2} {
		if c["service.cache.lookups"] != total {
			t.Errorf("cache lookups %d, want %d", c["service.cache.lookups"], total)
		}
		if c["service.cache.misses"] != distinctKeys {
			t.Errorf("cache misses %d, want %d (one per distinct key)", c["service.cache.misses"], distinctKeys)
		}
		if c["service.cache.hits"] != total-distinctKeys {
			t.Errorf("cache hits %d, want lookups-misses %d", c["service.cache.hits"], total-distinctKeys)
		}
		if c["service.analyses.misses"] != distinctNests {
			t.Errorf("analysis misses %d, want %d", c["service.analyses.misses"], distinctNests)
		}
		if c["service.cache.coalesced"] > c["service.cache.hits"] {
			t.Errorf("coalesced %d exceeds hits %d", c["service.cache.coalesced"], c["service.cache.hits"])
		}
	}
	// The two independent runs agree on every deterministic counter.
	for _, name := range []string{
		"service.cache.lookups", "service.cache.hits", "service.cache.misses",
		"service.cache.evictions", "service.analyses.misses",
		"service.requests", "service.predict.ok", "service.analyze.ok",
	} {
		if c1[name] != c2[name] {
			t.Errorf("counter %s differs across identical runs: %d vs %d", name, c1[name], c2[name])
		}
	}
	// Coalesced responses are byte-identical per path.
	for path, bs := range bodies {
		for _, b := range bs[1:] {
			if !bytes.Equal(b, bs[0]) {
				t.Fatalf("%s: concurrent responses differ", path)
			}
		}
	}
}

// TestErrorsNotCached: a failing computation is returned to its waiters
// but evicted immediately, so the key retries (and counts a fresh miss).
func TestErrorsNotCached(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()
	// Valid syntax, but the prediction fails: N is unbound.
	bad := `{"nest":"nest t\narray A[N]\nfor i = N {\nS0: A[i] = 0\n}\n","cacheKB":4}`
	for i := 0; i < 2; i++ {
		if w := post(t, h, "/v1/predict", bad); w.Code != http.StatusBadRequest {
			t.Fatalf("attempt %d: status %d, want 400", i, w.Code)
		}
	}
	c := m.Counters()
	if c["service.cache.misses"] != 2 {
		t.Errorf("cache misses %d, want 2 (errors must not be cached)", c["service.cache.misses"])
	}
	if n := svc.resp.len(); n != 0 {
		t.Errorf("response cache holds %d entries after failures, want 0", n)
	}
}

// TestLRUEviction: the response cache respects its bound and evicts the
// least recently used completed entry.
func TestLRUEviction(t *testing.T) {
	m := newFlightCache[[]byte](2, nil, "test")
	fill := func(key string) {
		e, leader := m.acquire(key)
		if leader {
			m.complete(e, []byte(key), nil)
		}
	}
	fill("a")
	fill("b")
	fill("a") // refresh a; b is now LRU
	fill("c") // evicts b
	if m.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", m.len())
	}
	// The refreshed key survived; this lookup is a pure hit.
	if e, leader := m.acquire("a"); leader {
		t.Error("refreshed key a was evicted")
		m.complete(e, nil, nil)
	}
	// b is gone; acquiring it reinstalls an entry (evicting the LRU again),
	// so this check comes last.
	if e, leader := m.acquire("b"); !leader {
		t.Error("evicted key b still cached")
	} else {
		m.complete(e, []byte("b"), nil)
	}
	if m.len() != 2 {
		t.Fatalf("cache holds %d entries after reinstall, want 2", m.len())
	}
}
