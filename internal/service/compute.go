package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loopir"
	"repro/internal/obs"
	"repro/internal/tilesearch"
	"repro/internal/trace"
)

// Sentinel errors the HTTP layer maps to status codes. Everything else a
// compute function returns is a client problem (400).
var (
	// ErrOverload is returned when the admission queue is full (429).
	ErrOverload = errors.New("service: overloaded, queue full")
	// errBadRequest wraps malformed-request errors explicitly; bare
	// compute errors are treated the same way.
	errBadRequest = errors.New("bad request")
)

// NestRequest is the problem-selection half of every request body: either
// a named kernel from the experiment suite (kernel/n/tiles, with env
// overlaying the generated bindings) or an inline nest in the textual
// format of loopir.Parse (nest/env). Exactly one of the two forms must be
// used.
type NestRequest struct {
	Kernel string           `json:"kernel,omitempty"`
	N      int64            `json:"n,omitempty"`
	Tiles  []int64          `json:"tiles,omitempty"`
	Nest   string           `json:"nest,omitempty"`
	Env    map[string]int64 `json:"env,omitempty"`
}

// resolve turns a NestRequest into a canonical spec plus the parsed nest.
// Canonicalization is what makes request keys insensitive to array order,
// env order, whitespace, comments and irrelevant bindings. The returned
// nest is what the batch candidates form validates its tile symbols
// against; single-request planning ignores it.
func (nr *NestRequest) resolve() (*loopir.Spec, *loopir.Nest, error) {
	switch {
	case nr.Nest != "" && nr.Kernel != "":
		return nil, nil, fmt.Errorf("%w: request has both nest and kernel; use one", errBadRequest)
	case nr.Nest != "":
		spec := &loopir.Spec{Nest: nr.Nest, Env: nr.Env}
		c, nest, err := spec.Canonicalize()
		if err != nil {
			return nil, nil, err
		}
		return c, nest, nil
	case nr.Kernel != "":
		if nr.N <= 0 {
			return nil, nil, fmt.Errorf("%w: kernel request needs n >= 1", errBadRequest)
		}
		nest, env, err := experiments.BuildKernel(nr.Kernel, nr.N, nr.Tiles)
		if err != nil {
			return nil, nil, err
		}
		for k, v := range nr.Env {
			env[k] = v
		}
		return loopir.SpecOf(nest, env), nest, nil
	}
	return nil, nil, fmt.Errorf("%w: request needs a nest or a kernel", errBadRequest)
}

// decodeInto strictly decodes a request body.
func decodeInto(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// cacheElemsOf resolves the capacity pair every model endpoint carries.
func cacheElemsOf(elems, kb int64) (int64, error) {
	switch {
	case elems > 0:
		return elems, nil
	case kb > 0:
		return experiments.KB(kb), nil
	}
	return 0, fmt.Errorf("%w: request needs cacheElems or cacheKB", errBadRequest)
}

// assocConfigOf resolves the optional ways/line pair into a cache config.
// Omitted ways yields the fully-associative config (Ways zero) so the
// prediction paths, cache keys and response bytes stay exactly what they
// were before the fields existed. Present ways must name a geometry the
// set-associative simulator itself would accept.
func assocConfigOf(ways, line *int64, cacheElems int64) (core.CacheConfig, error) {
	cfg := core.CacheConfig{CapacityElems: cacheElems}
	if ways == nil {
		if line != nil {
			return cfg, fmt.Errorf("%w: line requires ways", errBadRequest)
		}
		return cfg, nil
	}
	if *ways <= 0 {
		return cfg, fmt.Errorf("%w: ways must be >= 1, got %d", errBadRequest, *ways)
	}
	cfg.Ways = *ways
	if line != nil {
		if *line <= 0 {
			return cfg, fmt.Errorf("%w: line must be >= 1, got %d", errBadRequest, *line)
		}
		cfg.LineElems = *line
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return cfg, nil
}

// effectiveLine is the line size a config actually models (LineElems zero
// means one-element lines): what keys and responses report.
func effectiveLine(cfg core.CacheConfig) int64 {
	if cfg.LineElems <= 0 {
		return 1
	}
	return cfg.LineElems
}

// encBufPool recycles the buffer+encoder pairs marshal renders responses
// through, so the warm path reuses its encoding machinery instead of
// rebuilding it per response.
var encBufPool = sync.Pool{New: func() any {
	buf := new(bytes.Buffer)
	return &encBuf{buf: buf, enc: json.NewEncoder(buf)}
}}

type encBuf struct {
	buf *bytes.Buffer
	enc *json.Encoder
}

// marshal renders every response: compact deterministic JSON with a
// trailing newline, so cached bytes, direct Compute calls, batch item
// records and golden files compare byte-for-byte. Compact is the stored
// and served form (it is also what NDJSON framing requires of embedded
// records); human-readable output is an HTTP-layer presentation behind
// ?pretty=1. The returned slice is freshly owned — the cache retains it —
// while the encoding scratch is pooled.
func marshal(v any) ([]byte, error) {
	eb := encBufPool.Get().(*encBuf)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encBufPool.Put(eb)
		return nil, err
	}
	data := append([]byte(nil), eb.buf.Bytes()...)
	encBufPool.Put(eb)
	return data, nil
}

// AnalyzeRequest selects a nest; bindings are accepted but irrelevant (the
// component inventory is symbolic), so they do not enter the cache key.
type AnalyzeRequest struct {
	NestRequest
}

// AnalyzeResponse is the symbolic component inventory of a nest.
type AnalyzeResponse struct {
	Nest       string               `json:"nest"`    // nest name
	Source     string               `json:"source"`  // canonical nest text
	Symbols    []string             `json:"symbols"` // sorted symbol names
	Components []core.ComponentJSON `json:"components"`
}

// PredictRequest evaluates the model at concrete bindings. Capacity is
// given as elements or kilobytes (8-byte elements); detail adds the
// per-site miss breakdown. Ways, when present, switches to the
// conflict-aware set-associative model (line is the line size in elements,
// defaulting to one); omitted ways keeps the fully-associative model and
// its exact response bytes.
type PredictRequest struct {
	NestRequest
	CacheElems int64  `json:"cacheElems,omitempty"`
	CacheKB    int64  `json:"cacheKB,omitempty"`
	Ways       *int64 `json:"ways,omitempty"`
	Line       *int64 `json:"line,omitempty"`
	Detail     bool   `json:"detail,omitempty"`
}

// PredictResponse is a concrete miss prediction. Ways/Line echo the
// effective set-associative geometry and are omitted on the
// fully-associative model.
type PredictResponse struct {
	Nest       string           `json:"nest"`
	Env        map[string]int64 `json:"env"`
	CacheElems int64            `json:"cacheElems"`
	Ways       int64            `json:"ways,omitempty"`
	Line       int64            `json:"line,omitempty"`
	Accesses   int64            `json:"accesses"`
	Misses     int64            `json:"misses"`
	BySite     map[string]int64 `json:"bySite,omitempty"`
}

// TileSearchRequest runs the §6 search. Dims maps each tile symbol to its
// largest candidate size; the base environment must bind the loop bounds.
type TileSearchRequest struct {
	NestRequest
	CacheElems int64            `json:"cacheElems,omitempty"`
	CacheKB    int64            `json:"cacheKB,omitempty"`
	Ways       *int64           `json:"ways,omitempty"`
	Line       *int64           `json:"line,omitempty"`
	Dims       map[string]int64 `json:"dims"`
	MinTile    int64            `json:"minTile,omitempty"`
	DivisorOf  int64            `json:"divisorOf,omitempty"`
}

// PhaseSummary reports the search's phase structure (coarse sweep,
// frontier, refinement) as evaluated-candidate counts. Deterministic for a
// given request.
type PhaseSummary struct {
	Coarse       int64 `json:"coarse"`
	Refine       int64 `json:"refine"`
	FrontierSize int64 `json:"frontierSize"`
	Probes       int64 `json:"probes"` // frontier-detection probe evaluations
	Pruned       int64 `json:"pruned"`
	Evaluated    int64 `json:"evaluated"`
}

// TileSearchResponse is the search outcome plus its phase summary.
// Ways/Line echo the effective set-associative geometry and are omitted on
// the fully-associative model.
type TileSearchResponse struct {
	Nest       string                `json:"nest"`
	CacheElems int64                 `json:"cacheElems"`
	Ways       int64                 `json:"ways,omitempty"`
	Line       int64                 `json:"line,omitempty"`
	Result     tilesearch.ResultJSON `json:"result"`
	Phases     PhaseSummary          `json:"phases"`
}

// SimulateRequest runs a stack-distance simulation engine over the nest's
// reference trace. Watches are cache capacities in elements (or watchKB in
// kilobytes); perSite adds the per-reference-site breakdown. Engine selects
// "exact" (default — full StackSim trace walk), "analytic" (closed-form
// model evaluation, no trace) or "sampled" (SHARDS-style address-sampled
// estimate with a reported confidence envelope).
type SimulateRequest struct {
	NestRequest
	Watches []int64 `json:"watches,omitempty"`
	WatchKB []int64 `json:"watchKB,omitempty"`
	PerSite bool    `json:"perSite,omitempty"`
	Engine  string  `json:"engine,omitempty"`
}

// SamplingJSON reports the sampled engine's telemetry and error envelope.
type SamplingJSON struct {
	Log2Rate        int     `json:"log2Rate"` // sampling rate is 2^-log2Rate
	Rate            float64 `json:"rate"`
	Seed            uint64  `json:"seed"`
	SampledAccesses int64   `json:"sampledAccesses"`
	SampledDistinct int64   `json:"sampledDistinct"`
	Confidence      float64 `json:"confidence"` // 1-δ of the bound below
	MissBound       int64   `json:"missBound"`  // half-width around each miss estimate
}

// SimulateResponse is the simulation outcome. ModelExact is present only
// for the analytic engine (whether every closed-form component is exact);
// Sampling only for the sampled engine.
type SimulateResponse struct {
	Nest       string               `json:"nest"`
	Env        map[string]int64     `json:"env"`
	Engine     string               `json:"engine"`
	Length     int64                `json:"length"` // trace length in accesses
	Results    cachesim.ResultsJSON `json:"results"`
	ModelExact *bool                `json:"modelExact,omitempty"`
	Sampling   *SamplingJSON        `json:"sampling,omitempty"`
}

// key builders: endpoint tag, canonical spec key, then the endpoint's
// extra parameters, NUL-separated. Two requests share a key exactly when
// the canonical computation is identical.

func analyzeKey(spec *loopir.Spec) string {
	return "analyze\x00" + spec.Nest
}

func predictKey(spec *loopir.Spec, cfg core.CacheConfig, detail bool) string {
	k := "predict\x00" + spec.Key() + "\x00" + strconv.FormatInt(cfg.CapacityElems, 10)
	// Omitted ways must key exactly as before the field existed, so cached
	// fully-associative bytes keep being shared across releases; a present
	// ways keys on the effective geometry (the response echoes it), so
	// {ways:2} and {ways:2,line:1} collide and distinct geometries do not.
	if cfg.Ways > 0 {
		k += fmt.Sprintf("\x00ways=%d,line=%d", cfg.Ways, effectiveLine(cfg))
	}
	if detail {
		k += "\x00detail"
	}
	return k
}

func tileSearchKey(spec *loopir.Spec, req *TileSearchRequest, cfg core.CacheConfig) string {
	dims := tilesearch.SortedDims(req.Dims)
	var b strings.Builder
	b.WriteString("tilesearch\x00")
	b.WriteString(spec.Key())
	fmt.Fprintf(&b, "\x00%d\x00%d\x00%d\x00", cfg.CapacityElems, req.MinTile, req.DivisorOf)
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", d.Symbol, d.Max)
	}
	if cfg.Ways > 0 {
		fmt.Fprintf(&b, "\x00ways=%d,line=%d", cfg.Ways, effectiveLine(cfg))
	}
	return b.String()
}

func simulateKey(spec *loopir.Spec, watches []int64, perSite bool, eng cachesim.Engine) string {
	var b strings.Builder
	b.WriteString("simulate\x00")
	b.WriteString(spec.Key())
	b.WriteByte(0)
	for i, w := range watches {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(w, 10))
	}
	if perSite {
		b.WriteString("\x00persite")
	}
	// An omitted engine and an explicit "exact" are the same computation
	// and must share a key (and therefore cached bytes).
	if eng != cachesim.EngineExact {
		b.WriteString("\x00engine=")
		b.WriteString(string(eng))
	}
	return b.String()
}

// computeAnalyze is the /v1/analyze computation.
func (s *Service) computeAnalyze(ctx context.Context, spec *loopir.Spec) ([]byte, error) {
	a, err := s.getAnalysis(ctx, spec.Nest)
	if err != nil {
		return nil, err
	}
	return marshal(AnalyzeResponse{
		Nest:       a.Nest.Name,
		Source:     spec.Nest,
		Symbols:    a.Nest.SymbolNames(),
		Components: a.ComponentsJSON(),
	})
}

// computePredict is the /v1/predict computation: the frame-based fast path
// of the compiled model, on a pooled frame. A requested set-associative
// geometry routes through the conflict-aware model and is echoed in the
// response.
func (s *Service) computePredict(ctx context.Context, spec *loopir.Spec, cfg core.CacheConfig, detail bool) ([]byte, error) {
	a, err := s.getAnalysis(ctx, spec.Nest)
	if err != nil {
		return nil, err
	}
	f := a.GetFrame()
	defer a.PutFrame(f)
	f.Bind(spec.ExprEnv())
	var rep *core.MissReport
	if cfg.Ways > 0 {
		rep, err = a.PredictMissesFrameConfig(f, cfg)
	} else {
		rep, err = a.PredictMissesFrame(f, cfg.CapacityElems)
	}
	if err != nil {
		return nil, err
	}
	resp := PredictResponse{
		Nest:       a.Nest.Name,
		Env:        spec.Env,
		CacheElems: cfg.CapacityElems,
		Accesses:   rep.Accesses,
		Misses:     rep.Total,
	}
	if cfg.Ways > 0 {
		resp.Ways = cfg.Ways
		resp.Line = effectiveLine(cfg)
	}
	if detail {
		resp.BySite = rep.BySite
	}
	return marshal(resp)
}

// computeTileSearch is the /v1/tilesearch computation. The search runs
// sequentially (Parallelism 1): concurrency in the serving layer comes
// from the worker pool, and nesting a second level of parallelism inside a
// pool slot would oversubscribe the host. A per-request obs registry
// collects the phase counters for the response.
func (s *Service) computeTileSearch(ctx context.Context, spec *loopir.Spec, req *TileSearchRequest, cfg core.CacheConfig) ([]byte, error) {
	return s.computeTileSearchProgress(ctx, spec, req, cfg, nil)
}

// computeTileSearchProgress is computeTileSearch with an optional phase
// callback: the NDJSON streaming path receives one event per completed
// search phase and the response bytes stay byte-identical to the
// non-streaming computation (progress only adds observations, never
// changes the search).
func (s *Service) computeTileSearchProgress(ctx context.Context, spec *loopir.Spec, req *TileSearchRequest, cfg core.CacheConfig, progress func(tilesearch.ProgressEvent)) ([]byte, error) {
	if len(req.Dims) == 0 {
		return nil, fmt.Errorf("%w: tilesearch request needs dims", errBadRequest)
	}
	a, err := s.getAnalysis(ctx, spec.Nest)
	if err != nil {
		return nil, err
	}
	m := obs.New()
	res, err := tilesearch.Search(a, tilesearch.Options{
		Dims:       tilesearch.SortedDims(req.Dims),
		CacheElems: cfg.CapacityElems,
		Ways:       cfg.Ways,
		LineElems:  cfg.LineElems,
		BaseEnv:    spec.ExprEnv(),
		MinTile:    req.MinTile,
		DivisorOf:  req.DivisorOf,
		Context:    ctx,
		Obs:        m,
		Progress:   progress,
	})
	if err != nil {
		return nil, err
	}
	resp := TileSearchResponse{
		Nest:       a.Nest.Name,
		CacheElems: cfg.CapacityElems,
	}
	if cfg.Ways > 0 {
		resp.Ways = cfg.Ways
		resp.Line = effectiveLine(cfg)
	}
	counters, gauges := m.Counters(), m.Gauges()
	resp.Result = res.JSON()
	resp.Phases = PhaseSummary{
		Coarse:       counters["search.candidates.coarse"],
		Refine:       counters["search.candidates.refine"],
		FrontierSize: gauges["search.frontier.size"],
		Probes:       counters["search.candidates.frontier"],
		Pruned:       counters["search.pruned"],
		Evaluated:    gauges["search.evaluated"],
	}
	return marshal(resp)
}

// computeSimulate is the /v1/simulate computation, dispatched on the
// engine: exact and sampled compile the trace and stream it through their
// simulator (against the engine's own trace-length budget); analytic
// evaluates the cached compiled model on a pooled frame — no trace, so no
// length gate, and the same request that 400s under engine=exact at
// n=2048 answers in microseconds of compute.
func (s *Service) computeSimulate(ctx context.Context, spec *loopir.Spec, watches []int64, perSite bool, eng cachesim.Engine) ([]byte, error) {
	s.engines[eng].Inc()
	if eng == cachesim.EngineAnalytic {
		return s.computeSimulateAnalytic(ctx, spec, watches, perSite)
	}
	nest, err := loopir.Parse(spec.Nest)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, spec.ExprEnv())
	if err != nil {
		return nil, err
	}
	length, err := p.Length()
	if err != nil {
		return nil, err
	}
	limit := s.cfg.MaxTraceLen
	if eng == cachesim.EngineSampled {
		limit = s.cfg.MaxSampledTraceLen
	}
	if length > limit {
		return nil, fmt.Errorf("%w: trace length %d exceeds limit %d for engine %s", errBadRequest, length, limit, eng)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var labels []string
	if perSite {
		labels = make([]string, len(p.Sites))
		for i, site := range p.Sites {
			labels[i] = site.Key()
		}
	}
	resp := SimulateResponse{
		Nest:   nest.Name,
		Env:    spec.Env,
		Engine: string(eng),
		Length: length,
	}
	if eng == cachesim.EngineSampled {
		// Fixed seed and an address-space-derived rate: the estimate is a
		// pure function of the request, so responses stay cacheable and
		// byte-deterministic like every other endpoint's.
		sim := cachesim.NewSampledSim(p.Size, len(p.Sites), watches, cachesim.DefaultLog2Rate(p.Size), 0)
		p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
		resp.Results = sim.Results().JSON(labels)
		st := sim.Stats()
		resp.Sampling = &SamplingJSON{
			Log2Rate:        st.Log2Rate,
			Rate:            st.Rate,
			Seed:            st.Seed,
			SampledAccesses: st.SampledAccesses,
			SampledDistinct: st.SampledDistinct,
			Confidence:      0.95,
			MissBound:       sim.MissBound(0.05),
		}
	} else {
		sim := cachesim.NewStackSim(p.Size, len(p.Sites), watches)
		p.RunBlocks(trace.DefaultBlockSize, sim.AccessBlock)
		resp.Results = sim.Results().JSON(labels)
	}
	return marshal(resp)
}

// computeSimulateAnalytic is the engine=analytic path: the analysis is
// cached across requests (getAnalysis), so the steady state is a compiled-
// program evaluation per watched capacity on a pooled frame.
func (s *Service) computeSimulateAnalytic(ctx context.Context, spec *loopir.Spec, watches []int64, perSite bool) ([]byte, error) {
	a, err := s.getAnalysis(ctx, spec.Nest)
	if err != nil {
		return nil, err
	}
	f := a.GetFrame()
	defer a.PutFrame(f)
	f.Bind(spec.ExprEnv())
	res, info, err := analytic.SimulateFrame(a, f, watches)
	if err != nil {
		return nil, err
	}
	var labels []string
	if perSite {
		labels = analytic.SiteLabels(a.Nest)
	}
	return marshal(SimulateResponse{
		Nest:   a.Nest.Name,
		Env:    spec.Env,
		Engine: string(cachesim.EngineAnalytic),
		// The model counts the same accesses the trace would emit; the
		// cross-engine harness pins the equality.
		Length:     res.Accesses,
		Results:    res.JSON(labels),
		ModelExact: &info.Exact,
	})
}

// normWatches sorts, dedupes and validates the watch list so equivalent
// requests key and respond identically.
func normWatches(watches, watchKB []int64) ([]int64, error) {
	out := append([]int64(nil), watches...)
	for _, kb := range watchKB {
		out = append(out, experiments.KB(kb))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: simulate request needs watches or watchKB", errBadRequest)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:1]
	for _, w := range out[1:] {
		if w != uniq[len(uniq)-1] {
			uniq = append(uniq, w)
		}
	}
	for _, w := range uniq {
		if w <= 0 {
			return nil, fmt.Errorf("%w: watch capacities must be positive, got %d", errBadRequest, w)
		}
	}
	return uniq, nil
}

// Compute resolves and computes a request body directly, bypassing HTTP,
// cache, and admission control — the "direct library call" the load
// generator verifies served bytes against. path selects the endpoint
// ("/v1/analyze", "/v1/predict", "/v1/tilesearch", "/v1/optimize",
// "/v1/simulate") and the returned bytes are exactly what the
// corresponding handler serves on a 200.
func (s *Service) Compute(ctx context.Context, path string, body []byte) ([]byte, error) {
	if path == "/v1/batch" {
		return s.computeBatchDirect(ctx, body)
	}
	_, compute, err := s.plan(path, body)
	if err != nil {
		return nil, err
	}
	return compute(ctx)
}

// statusOf maps a per-item batch error to the status code the equivalent
// single request would have received: the batch taxonomy is the endpoint
// taxonomy, applied per item.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrOverload):
		return 429
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return 504
	}
	return 400
}

// computeFn is a parsed request's computation, abstracted over the service
// instance that will run it: parseRequest resolves a (path, body) pair into
// its canonical cache key and a computeFn without needing a Service, which
// is what lets the cluster router derive shard keys through the exact same
// code path the service plans requests through.
type computeFn func(*Service, context.Context) ([]byte, error)

// parseRequest parses a request body for an endpoint path and returns its
// canonical cache key plus the computation that produces its response
// bytes. The HTTP handlers, Compute, the batch expander and the cluster
// router's key derivation all share this single resolution path, which is
// what makes served, directly-computed and cluster-routed bytes identical
// by construction.
func parseRequest(path string, body []byte) (string, computeFn, error) {
	switch path {
	case "/v1/analyze":
		var req AnalyzeRequest
		if err := decodeInto(body, &req); err != nil {
			return "", nil, err
		}
		spec, _, err := req.resolve()
		if err != nil {
			return "", nil, err
		}
		return analyzeKey(spec), func(s *Service, ctx context.Context) ([]byte, error) {
			return s.computeAnalyze(ctx, spec)
		}, nil
	case "/v1/predict":
		var req PredictRequest
		if err := decodeInto(body, &req); err != nil {
			return "", nil, err
		}
		spec, _, err := req.resolve()
		if err != nil {
			return "", nil, err
		}
		cacheElems, err := cacheElemsOf(req.CacheElems, req.CacheKB)
		if err != nil {
			return "", nil, err
		}
		cfg, err := assocConfigOf(req.Ways, req.Line, cacheElems)
		if err != nil {
			return "", nil, err
		}
		return predictKey(spec, cfg, req.Detail), func(s *Service, ctx context.Context) ([]byte, error) {
			return s.computePredict(ctx, spec, cfg, req.Detail)
		}, nil
	case "/v1/tilesearch":
		var req TileSearchRequest
		if err := decodeInto(body, &req); err != nil {
			return "", nil, err
		}
		spec, _, err := req.resolve()
		if err != nil {
			return "", nil, err
		}
		cacheElems, err := cacheElemsOf(req.CacheElems, req.CacheKB)
		if err != nil {
			return "", nil, err
		}
		cfg, err := assocConfigOf(req.Ways, req.Line, cacheElems)
		if err != nil {
			return "", nil, err
		}
		return tileSearchKey(spec, &req, cfg), func(s *Service, ctx context.Context) ([]byte, error) {
			return s.computeTileSearch(ctx, spec, &req, cfg)
		}, nil
	case "/v1/optimize":
		var req OptimizeRequest
		spec, cfg, err := planOptimize(body, &req)
		if err != nil {
			return "", nil, err
		}
		return optimizeKey(spec, &req, cfg), func(s *Service, ctx context.Context) ([]byte, error) {
			return s.computeOptimize(ctx, spec, &req, cfg)
		}, nil
	case "/v1/simulate":
		var req SimulateRequest
		if err := decodeInto(body, &req); err != nil {
			return "", nil, err
		}
		spec, _, err := req.resolve()
		if err != nil {
			return "", nil, err
		}
		watches, err := normWatches(req.Watches, req.WatchKB)
		if err != nil {
			return "", nil, err
		}
		eng, err := cachesim.ParseEngine(req.Engine)
		if err != nil {
			return "", nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		return simulateKey(spec, watches, req.PerSite, eng), func(s *Service, ctx context.Context) ([]byte, error) {
			return s.computeSimulate(ctx, spec, watches, req.PerSite, eng)
		}, nil
	}
	return "", nil, fmt.Errorf("%w: unknown endpoint %s", errBadRequest, path)
}

// plan binds parseRequest's outcome to this service instance. The closure
// is created once per plan-memo miss (planCached stores it), so the warm
// path still costs one map probe.
func (s *Service) plan(path string, body []byte) (string, func(context.Context) ([]byte, error), error) {
	key, fn, err := parseRequest(path, body)
	if err != nil {
		return "", nil, err
	}
	return key, func(ctx context.Context) ([]byte, error) {
		return fn(s, ctx)
	}, nil
}

// CanonicalKeyForRequest derives the canonical cache/shard key of a single-
// endpoint request body: the same key the service's own planner computes,
// produced by the same resolution path (decode, canonicalize, key-pack), so
// a router sharding on this key and a replica caching under it can never
// disagree. /v1/batch has no single key — a batch is a set of per-item keys
// (see ExpandBatch) — so it is rejected here.
func CanonicalKeyForRequest(path string, body []byte) (string, error) {
	if path == "/v1/batch" {
		return "", fmt.Errorf("%w: /v1/batch has per-item keys; use ExpandBatch", errBadRequest)
	}
	key, _, err := parseRequest(path, body)
	return key, err
}
