package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDrainUnderStorm is the lifecycle race test: 64 goroutines hammer
// every endpoint over real TCP while the server drains. The guarantees
// under test:
//
//   - every accepted request gets a real HTTP answer — transport errors
//     are legal only once the drain has begun (listener closed, idle
//     connections torn down), never before;
//   - only the documented statuses appear (200, 400, 429 overload,
//     503 draining, 504 timeout);
//   - the metric balance service.<ep>.requests == ok + errors + rejected
//     holds after the drain, i.e. no handler path leaks a request;
//   - Drain returns with the worker queue empty and a subsequent request
//     cannot sneak in.
//
// Run under -race (make check does) to make the memory-ordering claims
// meaningful.
func TestDrainUnderStorm(t *testing.T) {
	m := obs.New()
	// A tiny pool and queue so the storm actually trips admission control:
	// we want 429s in the mix, not just 200s.
	svc := New(Config{Obs: m, Workers: 2, QueueDepth: 4, CacheEntries: 8})
	sv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + sv.Addr()

	// Mixed script: cheap predicts (several keys so the cache churns),
	// an analyze, a simulate, and a malformed request for the error path.
	script := make([]struct{ path, body string }, 0, 8)
	for i := 0; i < 5; i++ {
		script = append(script, struct{ path, body string }{
			"/v1/predict",
			fmt.Sprintf(`{"kernel":"matmul","n":16,"tiles":[%d,%d,%d],"cacheKB":4}`, 2<<uint(i%3), 4, 4),
		})
	}
	script = append(script,
		struct{ path, body string }{"/v1/analyze", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`},
		struct{ path, body string }{"/v1/simulate", `{"kernel":"matmul","n":8,"tiles":[4,4,4],"watchKB":[1]}`},
		struct{ path, body string }{"/v1/predict", `{"kernel":"matmul","n":16}`}, // 400: no capacity
		// Batch traffic in the mix: a candidates sweep (multi-slot atomic
		// admission racing the singles), a heterogeneous items batch, and a
		// malformed batch for the error path.
		struct{ path, body string }{"/v1/batch", `{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,4,4]]}}`},
		struct{ path, body string }{"/v1/batch", `{"items":[{"path":"/v1/analyze","request":{"kernel":"matmul","n":16,"tiles":[4,4,4]}},{"path":"/v1/predict","request":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}}]}`},
		struct{ path, body string }{"/v1/batch", `{}`}, // 400: empty batch
	)

	var drainStarted atomic.Bool
	var statuses [600]atomic.Int64 // indexed by status code
	var transportErrsBeforeDrain atomic.Int64

	const goroutines = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := g; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := script[i%len(script)]
				resp, err := client.Post(base+req.path, "application/json", strings.NewReader(req.body))
				if err != nil {
					if !drainStarted.Load() {
						transportErrsBeforeDrain.Add(1)
					}
					// Post-drain transport errors are expected; back off
					// until the main goroutine closes stop.
					time.Sleep(time.Millisecond)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode < len(statuses) {
					statuses[resp.StatusCode].Add(1)
				}
			}
		}(g)
	}

	// Let the storm rage, then drain mid-flight.
	time.Sleep(100 * time.Millisecond)
	drainStarted.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	if n := transportErrsBeforeDrain.Load(); n != 0 {
		t.Errorf("%d transport errors before drain began (requests dropped)", n)
	}
	allowed := map[int]bool{200: true, 400: true, 429: true, 503: true, 504: true}
	for code := 0; code < len(statuses); code++ {
		if n := statuses[code].Load(); n > 0 && !allowed[code] {
			t.Errorf("unexpected status %d seen %d times", code, n)
		}
	}
	if statuses[200].Load() == 0 {
		t.Error("storm produced no successful responses")
	}

	// Metric balance: no handler path may leak a request.
	c := m.Counters()
	var sum int64
	for _, ep := range []string{"analyze", "predict", "tilesearch", "simulate", "batch"} {
		req := c["service."+ep+".requests"]
		acc := c["service."+ep+".ok"] + c["service."+ep+".errors"] + c["service."+ep+".rejected"]
		if req != acc {
			t.Errorf("%s: requests %d != ok+errors+rejected %d", ep, req, acc)
		}
		sum += req
	}
	if total := c["service.requests"]; total != sum {
		t.Errorf("service.requests %d != per-endpoint sum %d", total, sum)
	}
	// Per-item accounting balances the same way: every admitted batch item
	// resolves to exactly one of ok/errors.
	if items, acc := c["service.batch.items"], c["service.batch.items.ok"]+c["service.batch.items.errors"]; items != acc {
		t.Errorf("service.batch.items %d != items.ok+items.errors %d", items, acc)
	}
	if depth := m.Gauges()["service.queue.depth"]; depth != 0 {
		t.Errorf("queue depth %d after drain, want 0", depth)
	}

	// The drained server refuses further work.
	if _, err := http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"kernel":"matmul","n":16,"tiles":[4,4,4]}`)); err == nil {
		t.Error("request succeeded after drain; listener should be closed")
	}
}

// TestDrainIdle: draining an idle server returns promptly and is
// idempotent at the Service level.
func TestDrainIdle(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	sv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	svc.Close() // second close must not panic
}
