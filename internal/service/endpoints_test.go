package service

import (
	"bytes"
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// endpointFixtures is the fixed request script behind the golden tests and
// the determinism test: one representative request per endpoint, small
// enough that the full suite stays fast.
var endpointFixtures = []struct {
	name, path, body string
}{
	{
		name: "analyze_matmul",
		path: "/v1/analyze",
		body: `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`,
	},
	{
		name: "predict_matmul",
		path: "/v1/predict",
		body: `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"detail":true}`,
	},
	{
		name: "tilesearch_matmul",
		path: "/v1/tilesearch",
		body: `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`,
	},
	{
		name: "simulate_matmul",
		path: "/v1/simulate",
		body: `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"perSite":true}`,
	},
	{
		name: "optimize_twoindexchain",
		path: "/v1/optimize",
		body: `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`,
	},
	{
		name: "predict_matmul_directmapped",
		path: "/v1/predict",
		body: `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4,"detail":true}`,
	},
	{
		name: "tilesearch_matmul_directmapped",
		path: "/v1/tilesearch",
		body: `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"ways":1,"dims":{"TI":32,"TJ":32,"TK":32}}`,
	},
}

func newTestService(t *testing.T) (*Service, *obs.Metrics) {
	t.Helper()
	m := obs.New()
	svc := New(Config{Obs: m, Workers: 2, QueueDepth: 16})
	t.Cleanup(svc.Close)
	return svc, m
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestEndpointGolden pins each endpoint's JSON response byte-for-byte.
// Regenerate with: go test ./internal/service -run Golden -update
func TestEndpointGolden(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	for _, fx := range endpointFixtures {
		t.Run(fx.name, func(t *testing.T) {
			w := post(t, h, fx.path, fx.body)
			if w.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", fx.path, w.Code, w.Body.String())
			}
			got := w.Body.Bytes()

			// The handler's bytes must equal the direct library call's.
			direct, err := svc.Compute(context.Background(), fx.path, []byte(fx.body))
			if err != nil {
				t.Fatalf("direct compute: %v", err)
			}
			if !bytes.Equal(got, direct) {
				t.Fatalf("served response differs from direct Compute")
			}

			golden := filepath.Join("testdata", fx.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response differs from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
			}
		})
	}
}

// TestEndpointErrors pins the error statuses of the request lifecycle.
func TestEndpointErrors(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	cases := []struct {
		name, path, body string
		method           string
		wantCode         int
	}{
		{"get rejected", "/v1/predict", "", http.MethodGet, http.StatusMethodNotAllowed},
		{"bad json", "/v1/predict", `{"kernel":`, http.MethodPost, http.StatusBadRequest},
		{"unknown field", "/v1/analyze", `{"kernle":"matmul"}`, http.MethodPost, http.StatusBadRequest},
		{"no nest or kernel", "/v1/analyze", `{}`, http.MethodPost, http.StatusBadRequest},
		{"both nest and kernel", "/v1/analyze", `{"kernel":"matmul","n":16,"nest":"nest x\nfor i = 2 {\nS0: A[i] = 0\n}","env":{}}`, http.MethodPost, http.StatusBadRequest},
		{"kernel without n", "/v1/predict", `{"kernel":"matmul","cacheKB":4}`, http.MethodPost, http.StatusBadRequest},
		{"no capacity", "/v1/predict", `{"kernel":"matmul","n":16}`, http.MethodPost, http.StatusBadRequest},
		{"missing binding", "/v1/predict", `{"nest":"nest t\narray A[N]\nfor i = N {\nS0: A[i] = 0\n}\n","cacheKB":4}`, http.MethodPost, http.StatusBadRequest},
		{"no dims", "/v1/tilesearch", `{"kernel":"matmul","n":32,"cacheKB":4,"dims":{}}`, http.MethodPost, http.StatusBadRequest},
		{"no watches", "/v1/simulate", `{"kernel":"matmul","n":16}`, http.MethodPost, http.StatusBadRequest},
		{"negative watch", "/v1/simulate", `{"kernel":"matmul","n":16,"watches":[-1]}`, http.MethodPost, http.StatusBadRequest},
		{"oversized trace", "/v1/simulate", `{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[4]}`, http.MethodPost, http.StatusBadRequest},
		// The set-associative geometry taxonomy: an explicit ways of zero is
		// rejected (omit the field for the fully-associative model), the line
		// must divide the capacity, the ways must divide the line count, and
		// a line without ways selects nothing and is rejected.
		{"zero ways", "/v1/predict", `{"kernel":"matmul","n":16,"cacheKB":4,"ways":0}`, http.MethodPost, http.StatusBadRequest},
		{"line not dividing capacity", "/v1/predict", `{"kernel":"matmul","n":16,"cacheKB":4,"ways":2,"line":3}`, http.MethodPost, http.StatusBadRequest},
		{"ways exceeding lines", "/v1/predict", `{"kernel":"matmul","n":16,"cacheKB":4,"ways":256,"line":4}`, http.MethodPost, http.StatusBadRequest},
		{"line without ways", "/v1/predict", `{"kernel":"matmul","n":16,"cacheKB":4,"line":4}`, http.MethodPost, http.StatusBadRequest},
		{"tilesearch zero ways", "/v1/tilesearch", `{"kernel":"matmul","n":32,"cacheKB":4,"ways":0,"dims":{"TI":32}}`, http.MethodPost, http.StatusBadRequest},
		{"tilesearch bad geometry", "/v1/tilesearch", `{"kernel":"matmul","n":32,"cacheKB":4,"ways":3,"dims":{"TI":32}}`, http.MethodPost, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.wantCode {
				t.Errorf("status %d, want %d (body %s)", w.Code, tc.wantCode, w.Body.String())
			}
		})
	}
	// The oversize guard is MaxTraceLen at work: 2048³ matmul iterations
	// exceed the default 1<<28 accesses.
}

// TestHealthz: readiness flips with the draining flag.
func TestHealthz(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", w.Code)
	}
	svc.draining.Store(true)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", w.Code)
	}
}

// TestCanonicalizationSharesCache: two syntactically different requests
// for the same problem — reordered env keys, whitespace, comments, junk
// bindings, kernel form vs equivalent inline form — hit one cache entry.
func TestCanonicalizationSharesCache(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()

	// The same inline nest twice: once as written, once with shuffled env
	// order, extra whitespace, a comment and an irrelevant binding.
	a := `{"nest":"nest t\narray A[N]\nfor i = N {\nS0: A[i] = 0\n}\n","env":{"N":64},"cacheKB":4}`
	b := `{"nest":"# same nest\nnest t\narray A[N]\n\nfor i = N  {\nS0: A[i] = 0\n}\n","env":{"JUNK":1,"N":64},"cacheKB":4}`
	r1 := post(t, h, "/v1/predict", a)
	r2 := post(t, h, "/v1/predict", b)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("status %d / %d: %s %s", r1.Code, r2.Code, r1.Body.String(), r2.Body.String())
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("equivalent requests served different bytes")
	}
	c := m.Counters()
	if c["service.cache.misses"] != 1 || c["service.cache.hits"] != 1 {
		t.Errorf("cache misses=%d hits=%d, want 1/1 (canonical keys should collide)",
			c["service.cache.misses"], c["service.cache.hits"])
	}
}

// TestAssocCacheKeys pins the cache-key contract of the ways/line fields:
// distinct geometries get distinct entries, an omitted line keys as line 1,
// and a request that omits ways shares the pre-existing fully-associative
// entry (and therefore its exact bytes).
func TestAssocCacheKeys(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()
	base := `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`
	script := []struct {
		name, body string
		wantMisses int64 // cumulative distinct entries after this request
	}{
		{"fully associative", base, 1},
		{"direct mapped", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1}`, 2},
		{"direct mapped line 1", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":1}`, 2},
		{"two way", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":2}`, 3},
		{"fully associative again", base, 3},
	}
	bodies := map[string][]byte{}
	for _, step := range script {
		w := post(t, h, "/v1/predict", step.body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", step.name, w.Code, w.Body.String())
		}
		bodies[step.name] = append([]byte(nil), w.Body.Bytes()...)
		if got := m.Counters()["service.cache.misses"]; got != step.wantMisses {
			t.Errorf("%s: %d distinct cache entries, want %d", step.name, got, step.wantMisses)
		}
	}
	if bytes.Equal(bodies["fully associative"], bodies["direct mapped"]) {
		t.Error("direct-mapped response identical to fully-associative response")
	}
	if !bytes.Equal(bodies["direct mapped"], bodies["direct mapped line 1"]) {
		t.Error("omitted line and explicit line 1 served different bytes")
	}
	if !bytes.Equal(bodies["fully associative"], bodies["fully associative again"]) {
		t.Error("repeat fully-associative request served different bytes")
	}
}
