package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// Engine selection on /v1/simulate: taxonomy, response shape, per-engine
// counters, cache-key behavior, and the large-problem contract (exact
// rejects what analytic answers instantly).

// TestSimulateEngineTaxonomy: every valid engine value answers 200 with the
// engine echoed and its engine-specific fields present; anything else is a
// 400 naming the valid set.
func TestSimulateEngineTaxonomy(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()
	body := func(engine string) string {
		if engine == "" {
			return `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`
		}
		return fmt.Sprintf(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":%q}`, engine)
	}

	for _, tc := range []struct {
		engine   string
		wantEcho string
	}{
		{"", "exact"},
		{"exact", "exact"},
		{"analytic", "analytic"},
		{"sampled", "sampled"},
	} {
		w := post(t, h, "/v1/simulate", body(tc.engine))
		if w.Code != http.StatusOK {
			t.Fatalf("engine %q: status %d: %s", tc.engine, w.Code, w.Body.String())
		}
		var resp SimulateResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("engine %q: %v", tc.engine, err)
		}
		if resp.Engine != tc.wantEcho {
			t.Errorf("engine %q echoed as %q, want %q", tc.engine, resp.Engine, tc.wantEcho)
		}
		if (resp.ModelExact != nil) != (tc.wantEcho == "analytic") {
			t.Errorf("engine %q: modelExact presence wrong: %v", tc.engine, resp.ModelExact)
		}
		if (resp.Sampling != nil) != (tc.wantEcho == "sampled") {
			t.Errorf("engine %q: sampling presence wrong: %+v", tc.engine, resp.Sampling)
		}
		if resp.Results.Accesses != 3*16*16*16 {
			t.Errorf("engine %q: accesses %d, want %d", tc.engine, resp.Results.Accesses, 3*16*16*16)
		}
	}

	for _, bad := range []string{"bogus", "Exact", "EXACT", "analytical"} {
		w := post(t, h, "/v1/simulate", body(bad))
		if w.Code != http.StatusBadRequest {
			t.Errorf("engine %q: status %d, want 400", bad, w.Code)
		}
		if !bytes.Contains(w.Body.Bytes(), []byte("valid: exact, analytic, sampled")) {
			t.Errorf("engine %q: error does not name the valid engines: %s", bad, w.Body.String())
		}
	}

	c := m.Counters()
	// "" and "exact" share a cache key, so exact computed once; unknown
	// engines never reach a computation.
	if c["service.simulate.engine.exact"] != 1 ||
		c["service.simulate.engine.analytic"] != 1 ||
		c["service.simulate.engine.sampled"] != 1 {
		t.Errorf("per-engine computation counters: exact=%d analytic=%d sampled=%d, want 1/1/1",
			c["service.simulate.engine.exact"], c["service.simulate.engine.analytic"], c["service.simulate.engine.sampled"])
	}
}

// TestSimulateEngineAgreement: on a small kernel the three engines answer
// the same question — identical totals where the contract requires it
// (the auto sampling rate is exact at this scale, analytic matches at a
// footprint-covering capacity).
func TestSimulateEngineAgreement(t *testing.T) {
	svc, _ := newTestService(t)
	get := func(engine string) SimulateResponse {
		body := fmt.Sprintf(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"watches":[1,1048576],"engine":%q}`, engine)
		data, err := svc.Compute(context.Background(), "/v1/simulate", []byte(body))
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		var resp SimulateResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	exact, analytic, sampled := get("exact"), get("analytic"), get("sampled")
	for _, r := range []SimulateResponse{analytic, sampled} {
		if r.Results.Accesses != exact.Results.Accesses || r.Results.Distinct != exact.Results.Distinct {
			t.Errorf("engine %s totals %d/%d differ from exact %d/%d",
				r.Engine, r.Results.Accesses, r.Results.Distinct, exact.Results.Accesses, exact.Results.Distinct)
		}
	}
	// Sampled at rate 1 (small address space) is bit-identical.
	if sampled.Sampling == nil || sampled.Sampling.Log2Rate != 0 {
		t.Fatalf("expected auto rate 1 at this scale, got %+v", sampled.Sampling)
	}
	for i := range exact.Results.Misses {
		if sampled.Results.Misses[i] != exact.Results.Misses[i] {
			t.Errorf("sampled misses[%d] = %d, exact %d", i, sampled.Results.Misses[i], exact.Results.Misses[i])
		}
	}
	// Analytic at 1M elements (footprint is 3·16²) predicts compulsory-only.
	last := len(analytic.Results.Misses) - 1
	if analytic.Results.Misses[last] != exact.Results.Misses[last] {
		t.Errorf("analytic at footprint capacity: %d, exact %d", analytic.Results.Misses[last], exact.Results.Misses[last])
	}
	if analytic.ModelExact == nil || !*analytic.ModelExact {
		t.Errorf("matmul is in the structured class; modelExact = %v", analytic.ModelExact)
	}
}

// TestSimulateSampledRate: a nest with a large address space engages a
// non-trivial sampling rate over HTTP, with a positive reported bound.
func TestSimulateSampledRate(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	body := `{"nest":"nest big\narray A[N]\nfor r = 3 {\nfor i = N {\nS0: A[i] = 0\n}\n}\n","env":{"N":300000},"watches":[1024],"engine":"sampled"}`
	w := post(t, h, "/v1/simulate", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sampling == nil || resp.Sampling.Log2Rate < 1 {
		t.Fatalf("expected a non-trivial rate for a 300000-element space: %+v", resp.Sampling)
	}
	if resp.Sampling.SampledAccesses <= 0 || resp.Sampling.SampledAccesses >= resp.Results.Accesses {
		t.Errorf("sampled %d of %d accesses", resp.Sampling.SampledAccesses, resp.Results.Accesses)
	}
	if resp.Sampling.MissBound <= 0 {
		t.Errorf("expected a positive miss bound, got %d", resp.Sampling.MissBound)
	}
	if resp.Results.Accesses != 3*300000 {
		t.Errorf("access total %d, want %d (counted, not estimated)", resp.Results.Accesses, 3*300000)
	}
	// The estimate is deterministic: a second request serves the same bytes
	// (from cache or not).
	w2 := post(t, h, "/v1/simulate", body)
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("sampled responses are not byte-deterministic")
	}
}

// TestSimulateLargeProblemContract pins the headline asymmetry: the n=2048
// matmul trace (3·2048³ ≈ 2.6e10 accesses) is over every walking engine's
// budget — exact and sampled answer 400 — while analytic, which never
// builds the trace, answers from the compiled model in well under the 10ms
// budget once the analysis is cached.
func TestSimulateLargeProblemContract(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	body := func(engine string) string {
		return fmt.Sprintf(`{"kernel":"matmul","n":2048,"tiles":[64,64,64],"watchKB":[16,64],"engine":%q}`, engine)
	}
	for _, eng := range []string{"exact", "sampled"} {
		w := post(t, h, "/v1/simulate", body(eng))
		if w.Code != http.StatusBadRequest {
			t.Errorf("engine %s on n=2048: status %d, want 400 (trace budget)", eng, w.Code)
		}
	}
	w := post(t, h, "/v1/simulate", body("analytic"))
	if w.Code != http.StatusOK {
		t.Fatalf("analytic on n=2048: status %d: %s", w.Code, w.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := int64(3) * 2048 * 2048 * 2048; resp.Length != want {
		t.Errorf("length %d, want %d", resp.Length, want)
	}

	// Steady state (analysis cached, response cache bypassed via Compute):
	// best of three well under 10ms.
	req := []byte(body("analytic"))
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := svc.Compute(context.Background(), "/v1/simulate", req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best > 10*time.Millisecond {
		t.Errorf("analytic n=2048 steady-state compute took %v, want < 10ms", best)
	}
	t.Logf("analytic n=2048 steady-state compute: %v", best)
}

// TestSimulateEngineKeyedCache: engines are distinct cache keys, but an
// omitted engine and an explicit exact share one.
func TestSimulateEngineKeyedCache(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()
	base := `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[4]`
	r1 := post(t, h, "/v1/simulate", base+`}`)
	r2 := post(t, h, "/v1/simulate", base+`,"engine":"exact"}`)
	r3 := post(t, h, "/v1/simulate", base+`,"engine":"analytic"}`)
	for i, r := range []*bytes.Buffer{r1.Body, r2.Body, r3.Body} {
		if r.Len() == 0 {
			t.Fatalf("response %d empty", i)
		}
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("omitted and explicit exact engine served different bytes")
	}
	if bytes.Equal(r1.Body.Bytes(), r3.Body.Bytes()) {
		t.Error("exact and analytic engines served identical bytes (keys collided?)")
	}
	c := m.Counters()
	if c["service.cache.misses"] != 2 || c["service.cache.hits"] != 1 {
		t.Errorf("cache misses=%d hits=%d, want 2/1", c["service.cache.misses"], c["service.cache.hits"])
	}
}
