package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies; nest sources are small.
const maxBodyBytes = 1 << 20

// errorBody is the JSON error envelope every non-200 carries.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux: the /v1 endpoints plus
// /healthz (200 while serving, 503 while draining — a readiness probe).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range []struct{ name, path string }{
		{"analyze", "/v1/analyze"},
		{"predict", "/v1/predict"},
		{"simulate", "/v1/simulate"},
	} {
		mux.Handle(ep.path, s.endpoint(ep.path, s.eps[ep.name]))
	}
	// /v1/tilesearch dispatches on ?stream=1: the sweep-shaped endpoint
	// gets an NDJSON variant; plain requests keep the shared lifecycle.
	tsPlain := s.endpoint("/v1/tilesearch", s.eps["tilesearch"])
	mux.HandleFunc("/v1/tilesearch", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") == "1" {
			s.serveTileSearchStream(w, r)
			return
		}
		tsPlain(w, r)
	})
	// /v1/optimize gets the same treatment: the joint plan search emits one
	// record per scored variant under ?stream=1.
	optPlain := s.endpoint("/v1/optimize", s.eps["optimize"])
	mux.HandleFunc("/v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stream") == "1" {
			s.serveOptimizeStream(w, r)
			return
		}
		optPlain(w, r)
	})
	mux.Handle("/v1/batch", s.batchEndpoint())
	// /healthz keeps its bare one-field contract (200 {"status":"ok"} /
	// 503 {"error":"draining"}) for existing probes and goldens; ?v=1 opts
	// into the enriched HealthStatus body the cluster prober consumes, with
	// the same status-code semantics.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("v") == "1" {
			h := s.Health()
			code := http.StatusOK
			if h.Draining {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, h)
			return
		}
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// endpoint wraps one API route with the request lifecycle every endpoint
// shares: counting, admission, coalescing, timeout, and status mapping.
// Exactly one of ok/errors/rejected is incremented per request, so
// requests == ok + errors + rejected holds at every instant the counters
// are quiescent.
func (s *Service) endpoint(path string, st *epStats) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := st.latency.Start()
		defer sw.Stop()
		s.total.Inc()
		st.requests.Inc()

		if r.Method != http.MethodPost {
			st.errors.Inc()
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
			return
		}
		if r.URL.Query().Get("stream") == "1" {
			// Streaming exists where incremental records exist: tilesearch,
			// optimize, and batch. Point lookups answer in one record.
			st.errors.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "streaming is not supported on this endpoint"})
			return
		}
		if s.draining.Load() {
			st.rejected.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			st.errors.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		key, compute, err := s.planCached(path, body)
		if err != nil {
			st.errors.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}

		// Singleflight: first caller for the key leads, the rest coalesce.
		// The leader's computation runs on the worker pool under the
		// service timeout, detached from this request's context — a
		// coalesced waiter must not lose the result because the leader's
		// client hung up.
		e, leader := s.resp.acquire(key)
		if leader {
			accepted := s.pool.trySubmit(func() {
				ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
				defer cancel()
				data, err := compute(ctx)
				s.resp.complete(e, data, err)
			})
			if !accepted {
				// Complete the entry so coalesced waiters see the same
				// overload instead of hanging; the error also removes the
				// entry, so the key retries cleanly.
				s.resp.complete(e, nil, ErrOverload)
			}
		}

		wait, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		select {
		case <-e.done:
		case <-wait.Done():
			st.errors.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "timed out waiting for result"})
			return
		}

		switch {
		case e.err == nil:
			st.ok.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			if r.URL.Query().Get("pretty") == "1" {
				writePretty(w, e.val)
			} else {
				w.Write(e.val)
			}
		case errors.Is(e.err, ErrOverload):
			st.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: e.err.Error()})
		case errors.Is(e.err, context.DeadlineExceeded), errors.Is(e.err, context.Canceled):
			st.errors.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "computation timed out"})
		default:
			st.errors.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: e.err.Error()})
		}
	}
}

// writePretty re-indents a cached compact response for human readers.
// Cached and verified bytes stay compact — pretty is presentation only,
// applied at write time, never stored.
func writePretty(w io.Writer, data []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSuffix(data, []byte{'\n'}), "", "  "); err != nil {
		w.Write(data)
		return
	}
	buf.WriteByte('\n')
	w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

// Server is a Service bound to a listener, with a drain path that loses no
// accepted request.
type Server struct {
	Service *Service
	http    *http.Server
	addr    string
	done    chan error
}

// Serve binds addr (":0" picks a free port) and serves the API in a
// background goroutine. Stop with Drain.
func Serve(addr string, svc *Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	sv := &Server{
		Service: svc,
		http:    &http.Server{Handler: svc.Handler()},
		addr:    ln.Addr().String(),
		done:    make(chan error, 1),
	}
	go func() {
		err := sv.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		sv.done <- err
	}()
	return sv, nil
}

// Addr returns the bound listen address.
func (sv *Server) Addr() string { return sv.addr }

// Drain performs the graceful-shutdown sequence:
//
//  1. flip the draining flag — every new request is answered 503 and
//     /healthz fails, so load balancers stop routing here;
//  2. shut the HTTP server down, which closes the listener and waits for
//     in-flight handlers; those handlers are waiting on cache entries
//     whose computations sit in the worker pool, and the pool never drops
//     an accepted task, so each gets its real response;
//  3. close the pool: admission is already impossible (no handlers
//     remain), the queue runs dry, the workers exit.
//
// If ctx expires mid-shutdown the remaining connections are closed
// forcibly and the context error is returned.
func (sv *Server) Drain(ctx context.Context) error {
	sv.Service.draining.Store(true)
	err := sv.http.Shutdown(ctx)
	if err != nil {
		sv.http.Close()
	}
	sv.Service.pool.close()
	if serveErr := <-sv.done; serveErr != nil && err == nil {
		err = serveErr
	}
	if err != nil {
		return fmt.Errorf("service: drain: %w", err)
	}
	return nil
}

// DrainTimeout is the default bound production callers give Drain.
const DrainTimeout = 30 * time.Second
