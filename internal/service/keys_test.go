package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// keyFixtures covers every /v1/* single endpoint with representative
// bodies, including both the kernel and inline-nest request forms and the
// optional set-associative geometry.
var keyFixtures = []struct{ path, body string }{
	{"/v1/analyze", `{"kernel":"matmul","n":16,"tiles":[4,4,4]}`},
	{"/v1/predict", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`},
	{"/v1/predict", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4,"detail":true}`},
	{"/v1/tilesearch", `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`},
	{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4]}`},
	{"/v1/simulate", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"watchKB":[1,4],"engine":"analytic"}`},
	{"/v1/optimize", `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`},
}

// TestCanonicalKeyForRequestAgreesWithPlan pins the sharding contract: the
// exported key helper the cluster router derives shard keys from must agree
// byte-for-byte with the key the service's own planner caches responses
// under, for every /v1/* endpoint. A divergence would send a request to a
// replica that caches it under a different key than the router sharded on.
func TestCanonicalKeyForRequestAgreesWithPlan(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	for _, fx := range keyFixtures {
		routerKey, err := CanonicalKeyForRequest(fx.path, []byte(fx.body))
		if err != nil {
			t.Fatalf("CanonicalKeyForRequest(%s): %v", fx.path, err)
		}
		planKey, _, err := svc.plan(fx.path, []byte(fx.body))
		if err != nil {
			t.Fatalf("plan(%s): %v", fx.path, err)
		}
		if routerKey != planKey {
			t.Errorf("%s %s:\n router key %q\nservice key %q", fx.path, fx.body, routerKey, planKey)
		}
	}
	// Equivalent-but-different bodies must agree on one key too: the router
	// and the service canonicalize identically.
	a, err := CanonicalKeyForRequest("/v1/predict", []byte(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalKeyForRequest("/v1/predict", []byte(`{"cacheElems":512,"kernel":"matmul","tiles":[4,4,4],"n":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equivalent predict bodies keyed differently:\n%q\n%q", a, b)
	}
	// /v1/batch has no single key.
	if _, err := CanonicalKeyForRequest("/v1/batch", []byte(`{}`)); err == nil {
		t.Error("CanonicalKeyForRequest accepted /v1/batch")
	}
	// Planning errors surface identically.
	if _, err := CanonicalKeyForRequest("/v1/predict", []byte(`{"kernel":"matmul","n":16}`)); err == nil {
		t.Error("CanonicalKeyForRequest accepted a predict without a capacity")
	}
}

// TestExpandBatchRowBodiesRoundTrip pins the batch-splitting contract: each
// candidate row's synthesized /v1/predict body must plan to the row's own
// key and compute the row's exact response bytes, so a router that re-sends
// rows as explicit items to owning replicas reassembles a byte-identical
// envelope.
func TestExpandBatchRowBodiesRoundTrip(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	bodies := []string{
		`{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"dims":["TI","TJ","TK"],"sets":[[2,4,4],[4,4,4],[8,8,8]]}}`,
		`{"candidates":{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4,"ways":1,"line":4,"detail":true,"dims":["TI","TJ"],"sets":[[2,4],[4,8]]}}`,
	}
	for _, body := range bodies {
		exp, err := ExpandBatch([]byte(body), 256)
		if err != nil {
			t.Fatalf("ExpandBatch: %v", err)
		}
		for i := range exp.Items {
			it := &exp.Items[i]
			if it.Err != nil {
				t.Fatalf("item %d: unexpected planning error %v", i, it.Err)
			}
			key, fn, err := parseRequest(it.Path, it.Body)
			if err != nil {
				t.Fatalf("item %d: synthesized body does not plan: %v", i, err)
			}
			if key != it.Key {
				t.Errorf("item %d: synthesized body keys %q, row keys %q", i, key, it.Key)
			}
			fromBody, err := fn(svc, context.Background())
			if err != nil {
				t.Fatalf("item %d: compute from body: %v", i, err)
			}
			fromRow, err := it.compute(svc, context.Background())
			if err != nil {
				t.Fatalf("item %d: compute from row: %v", i, err)
			}
			if string(fromBody) != string(fromRow) {
				t.Errorf("item %d: body-planned and row-planned responses differ:\n%s\n%s", i, fromBody, fromRow)
			}
		}
	}
}

// TestHealthzEnriched checks the /healthz?v=1 opt-in: the bare probe's
// bytes are exactly what they always were, while ?v=1 answers the
// HealthStatus JSON with the same status-code semantics across draining.
func TestHealthzEnriched(t *testing.T) {
	svc := New(Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	get := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get(ts.URL + "/healthz")
	if code != 200 || body != `{"status":"ok"}`+"\n" {
		t.Fatalf("bare healthz changed: %d %q", code, body)
	}

	code, body = get(ts.URL + "/healthz?v=1")
	if code != 200 {
		t.Fatalf("healthz?v=1 -> %d", code)
	}
	var h HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz?v=1 body %q: %v", body, err)
	}
	if h.Status != "ok" || h.Draining || h.UptimeSec < 0 || h.QueueDepth != 0 {
		t.Errorf("unexpected health snapshot: %+v", h)
	}

	svc.draining.Store(true)
	code, body = get(ts.URL + "/healthz")
	if code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("bare healthz while draining changed: %d %q", code, body)
	}
	code, body = get(ts.URL + "/healthz?v=1")
	if code != 503 {
		t.Fatalf("healthz?v=1 while draining -> %d", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Errorf("draining health snapshot: %+v", h)
	}
}
