package service

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/tilesearch"
)

// OptimizeRequest runs the joint transformation-plan search: structural
// variants (loop permutation, fusion, auto-tiling) of the nest are
// enumerated under the dependence legality checks, each scored by the §6
// tile search against its own compiled analysis. The axes default on;
// permute/fuse/autoTile accept explicit false to disable one. Dims names
// pre-existing tile symbols of the input nest (searched in every variant);
// leave it empty for untiled nests and let autoTile strip-mine the perfect
// variants.
type OptimizeRequest struct {
	NestRequest
	CacheElems  int64            `json:"cacheElems,omitempty"`
	CacheKB     int64            `json:"cacheKB,omitempty"`
	Ways        *int64           `json:"ways,omitempty"`
	Line        *int64           `json:"line,omitempty"`
	Dims        map[string]int64 `json:"dims,omitempty"`
	MinTile     int64            `json:"minTile,omitempty"`
	DivisorOf   int64            `json:"divisorOf,omitempty"`
	Permute     *bool            `json:"permute,omitempty"`
	Fuse        *bool            `json:"fuse,omitempty"`
	AutoTile    *bool            `json:"autoTile,omitempty"`
	MaxVariants int              `json:"maxVariants,omitempty"`
}

// axis resolves a tri-state axis flag: omitted means enabled.
func axis(p *bool) bool { return p == nil || *p }

// OptimizeResponse is the joint-search outcome. Result.Variants[0] is the
// tile-only baseline, Result.BestIndex the winner; BestPlan echoes the
// winning plan's text for quick reading. Ways/Line echo the effective
// set-associative geometry and are omitted on the fully-associative model.
type OptimizeResponse struct {
	Nest       string                    `json:"nest"`
	CacheElems int64                     `json:"cacheElems"`
	Ways       int64                     `json:"ways,omitempty"`
	Line       int64                     `json:"line,omitempty"`
	BestPlan   string                    `json:"bestPlan"`
	Result     tilesearch.PlanResultJSON `json:"result"`
}

// optimizeKey builds the /v1/optimize cache key: endpoint tag, canonical
// spec key, then the search parameters — axes, variant cap, tile-search
// knobs, dims, and (when present) the set-associative geometry, mirroring
// tileSearchKey so equal computations share cached bytes.
func optimizeKey(spec *loopir.Spec, req *OptimizeRequest, cfg core.CacheConfig) string {
	var b strings.Builder
	b.WriteString("optimize\x00")
	b.WriteString(spec.Key())
	fmt.Fprintf(&b, "\x00%d\x00%d\x00%d\x00", cfg.CapacityElems, req.MinTile, req.DivisorOf)
	for i, d := range tilesearch.SortedDims(req.Dims) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", d.Symbol, d.Max)
	}
	fmt.Fprintf(&b, "\x00permute=%t,fuse=%t,autotile=%t,maxvariants=%d",
		axis(req.Permute), axis(req.Fuse), axis(req.AutoTile), req.MaxVariants)
	if cfg.Ways > 0 {
		fmt.Fprintf(&b, "\x00ways=%d,line=%d", cfg.Ways, effectiveLine(cfg))
	}
	return b.String()
}

// planOptimize validates an optimize body into its resolved pieces — the
// same validation, in the same order, for the plan() switch and the
// streaming handler.
func planOptimize(body []byte, req *OptimizeRequest) (*loopir.Spec, core.CacheConfig, error) {
	var zero core.CacheConfig
	if err := decodeInto(body, req); err != nil {
		return nil, zero, err
	}
	spec, _, err := req.resolve()
	if err != nil {
		return nil, zero, err
	}
	cacheElems, err := cacheElemsOf(req.CacheElems, req.CacheKB)
	if err != nil {
		return nil, zero, err
	}
	cfg, err := assocConfigOf(req.Ways, req.Line, cacheElems)
	if err != nil {
		return nil, zero, err
	}
	if !axis(req.Permute) && !axis(req.Fuse) && !axis(req.AutoTile) && len(req.Dims) == 0 {
		return nil, zero, fmt.Errorf("%w: every search axis is disabled and no dims are given; nothing to optimize", errBadRequest)
	}
	return spec, cfg, nil
}

// computeOptimize is the /v1/optimize computation: the joint search over
// the plan space, sequential inside its pool slot like /v1/tilesearch
// (serving-layer concurrency comes from the worker pool).
func (s *Service) computeOptimize(ctx context.Context, spec *loopir.Spec, req *OptimizeRequest, cfg core.CacheConfig) ([]byte, error) {
	return s.computeOptimizeProgress(ctx, spec, req, cfg, nil)
}

// computeOptimizeProgress is computeOptimize with an optional per-variant
// callback for the NDJSON streaming path; the response bytes are identical
// with or without it.
func (s *Service) computeOptimizeProgress(ctx context.Context, spec *loopir.Spec, req *OptimizeRequest, cfg core.CacheConfig, progress func(tilesearch.PlanEvent)) ([]byte, error) {
	nest, err := loopir.Parse(spec.Nest)
	if err != nil {
		return nil, err
	}
	pr, err := tilesearch.SearchPlans(nest, tilesearch.PlanOptions{
		Options: tilesearch.Options{
			Dims:       tilesearch.SortedDims(req.Dims),
			CacheElems: cfg.CapacityElems,
			Ways:       cfg.Ways,
			LineElems:  cfg.LineElems,
			BaseEnv:    spec.ExprEnv(),
			MinTile:    req.MinTile,
			DivisorOf:  req.DivisorOf,
			Context:    ctx,
		},
		Permute:      axis(req.Permute),
		Fuse:         axis(req.Fuse),
		AutoTile:     axis(req.AutoTile),
		MaxVariants:  req.MaxVariants,
		PlanProgress: progress,
	})
	if err != nil {
		return nil, err
	}
	resp := OptimizeResponse{
		Nest:       nest.Name,
		CacheElems: cfg.CapacityElems,
		BestPlan:   pr.Best().Plan.String(),
		Result:     pr.JSON(),
	}
	if cfg.Ways > 0 {
		resp.Ways = cfg.Ways
		resp.Line = effectiveLine(cfg)
	}
	return marshal(resp)
}
