package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/loopir"
	"repro/internal/validate"
)

// optFixture is the acceptance case: the unfused two-index transform chain
// at a cache small enough that fusing the chain pays. AutoTile is off so
// every variant simulates directly under the kernel's own bindings.
const optFixture = `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false}`

// optimizeWire mirrors the /v1/optimize response for assertions.
type optimizeWire struct {
	Nest       string `json:"nest"`
	CacheElems int64  `json:"cacheElems"`
	BestPlan   string `json:"bestPlan"`
	Result     struct {
		Variants []struct {
			PlanText string `json:"planText"`
			Source   string `json:"source"`
			Result   struct {
				Best struct {
					Misses int64 `json:"misses"`
				} `json:"best"`
			} `json:"result"`
		} `json:"variants"`
		BestIndex int `json:"bestIndex"`
		Evaluated int `json:"evaluated"`
	} `json:"result"`
}

// TestOptimizeEndpoint is the end-to-end acceptance check: on the TCE
// two-index transform, the joint search's winner must beat the tile-only
// baseline (variant 0) in misses — and not just in the predicted scores the
// search ranks by: re-parsing both variants' Source from the response and
// simulating them must agree the transformed nest wins.
func TestOptimizeEndpoint(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	w := post(t, h, "/v1/optimize", optFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	// Served bytes equal the direct library call's.
	direct, err := svc.Compute(context.Background(), "/v1/optimize", []byte(optFixture))
	if err != nil {
		t.Fatalf("direct compute: %v", err)
	}
	if !bytes.Equal(w.Body.Bytes(), direct) {
		t.Fatal("served response differs from direct Compute")
	}

	var resp optimizeWire
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BestPlan == "identity" {
		t.Fatalf("joint search kept the identity plan; variants: %d", len(resp.Result.Variants))
	}
	if !strings.Contains(resp.BestPlan, "fuse") {
		t.Errorf("best plan %q, want a fusion step on the unfused chain", resp.BestPlan)
	}
	best := resp.Result.Variants[resp.Result.BestIndex]
	base := resp.Result.Variants[0]
	if base.PlanText != "identity" {
		t.Fatalf("variant 0 is %q, want the identity baseline", base.PlanText)
	}
	if best.Result.Best.Misses >= base.Result.Best.Misses {
		t.Errorf("predicted misses: winner %d, baseline %d — no improvement",
			best.Result.Best.Misses, base.Result.Best.Misses)
	}

	// The Source fields round-trip through the parser and the simulator
	// confirms the predicted ranking.
	env := expr.Env{"N": 32, "V": 16}
	sim := func(src string) int64 {
		t.Helper()
		nest, err := loopir.Parse(src)
		if err != nil {
			t.Fatalf("response source does not re-parse: %v", err)
		}
		m, err := validate.SimulatedMisses(nest, env, resp.CacheElems)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	simBest, simBase := sim(best.Source), sim(base.Source)
	if simBest >= simBase {
		t.Errorf("simulated misses: winner %d, baseline %d — prediction's win did not survive simulation",
			simBest, simBase)
	}
}

// TestOptimizeErrors pins the /v1/optimize 400 taxonomy on top of the
// shared lifecycle errors.
func TestOptimizeErrors(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	cases := []struct {
		name, body string
		method     string
		wantCode   int
	}{
		{"get rejected", "", http.MethodGet, http.StatusMethodNotAllowed},
		{"bad json", `{"kernel":`, http.MethodPost, http.StatusBadRequest},
		{"unknown field", `{"kernle":"matmul-naive","n":16,"cacheKB":4}`, http.MethodPost, http.StatusBadRequest},
		{"no capacity", `{"kernel":"matmul-naive","n":16}`, http.MethodPost, http.StatusBadRequest},
		{"unknown kernel", `{"kernel":"bogus","n":16,"cacheKB":4}`, http.MethodPost, http.StatusBadRequest},
		{"all axes off", `{"kernel":"matmul-naive","n":16,"cacheKB":4,"permute":false,"fuse":false,"autoTile":false}`, http.MethodPost, http.StatusBadRequest},
		{"bad geometry", `{"kernel":"matmul-naive","n":16,"cacheKB":4,"ways":3}`, http.MethodPost, http.StatusBadRequest},
		{"line without ways", `{"kernel":"matmul-naive","n":16,"cacheKB":4,"line":4}`, http.MethodPost, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, "/v1/optimize", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != tc.wantCode {
				t.Errorf("status %d, want %d (body %s)", w.Code, tc.wantCode, w.Body.String())
			}
		})
	}

	// Axes disabled but dims present is fine: that is exactly the tile-only
	// search behind /v1/tilesearch, reached through the joint endpoint.
	w := post(t, h, "/v1/optimize",
		`{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"permute":false,"fuse":false,"autoTile":false,"dims":{"TI":32,"TJ":32,"TK":32}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("dims-only request: status %d: %s", w.Code, w.Body.String())
	}
	var resp optimizeWire
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Variants) != 1 || resp.BestPlan != "identity" {
		t.Errorf("dims-only request scored %d variants with best %q, want the lone identity",
			len(resp.Result.Variants), resp.BestPlan)
	}
}

// TestOptimizeStream: the ?stream=1 variant emits one record per scored
// structural variant, then a result record byte-identical to the
// non-streaming response, then the ok trailer.
func TestOptimizeStream(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	w := post(t, h, "/v1/optimize?stream=1", optFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Content-Type %q, want %q", ct, ndjsonContentType)
	}
	lines := ndjsonLines(t, w.Body.Bytes())
	if string(lines[len(lines)-1]) != `{"summary":{"ok":true}}` {
		t.Fatalf("trailer %s, want ok summary", lines[len(lines)-1])
	}

	var resultRec struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(lines[len(lines)-2], &resultRec); err != nil || resultRec.Result == nil {
		t.Fatalf("second-to-last record is not a result: %s", lines[len(lines)-2])
	}
	direct, err := svc.Compute(context.Background(), "/v1/optimize", []byte(optFixture))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultRec.Result, bytes.TrimSuffix(direct, []byte{'\n'})) {
		t.Errorf("streamed result differs from direct Compute:\nstream: %s\ndirect: %s", resultRec.Result, direct)
	}

	var resp optimizeWire
	if err := json.Unmarshal(resultRec.Result, &resp); err != nil {
		t.Fatal(err)
	}
	variantRecs := lines[:len(lines)-2]
	if len(variantRecs) != len(resp.Result.Variants) {
		t.Fatalf("%d variant records for %d variants", len(variantRecs), len(resp.Result.Variants))
	}
	for i, line := range variantRecs {
		var rec streamVariantRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Variant != i || rec.Count != len(resp.Result.Variants) {
			t.Errorf("record %d claims variant %d/%d", i, rec.Variant, rec.Count)
		}
		if rec.Plan != resp.Result.Variants[i].PlanText {
			t.Errorf("record %d plan %q, result says %q", i, rec.Plan, resp.Result.Variants[i].PlanText)
		}
	}

	// A validation failure answers with a plain 400, not a truncated stream.
	w = post(t, h, "/v1/optimize?stream=1", `{"kernel":"matmul-naive","n":16}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("streaming bad request: status %d, want 400", w.Code)
	}
}

// TestOptimizeBatchAndCache: a batch item reaches the same cached bytes as
// the direct endpoint (one compute for both), and requests differing only
// in a default-valued axis flag share a key.
func TestOptimizeBatchAndCache(t *testing.T) {
	svc, m := newTestService(t)
	h := svc.Handler()

	w := post(t, h, "/v1/optimize", optFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := m.Counters()["service.cache.misses"]; got != 1 {
		t.Fatalf("%d cache entries after first request, want 1", got)
	}

	// Same search, spelled differently: explicit true axes, reordered keys.
	w2 := post(t, h, "/v1/optimize", `{"cacheElems":256,"autoTile":false,"kernel":"twoindexchain","n":32,"permute":true,"fuse":true}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w2.Code, w2.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("equivalent optimize requests served different bytes")
	}
	if got := m.Counters()["service.cache.misses"]; got != 1 {
		t.Errorf("%d cache entries after equivalent request, want 1 (keys should collide)", got)
	}

	// Through the batch endpoint: same key again, byte-identical item.
	batch := `{"items":[{"path":"/v1/optimize","request":` + optFixture + `}]}`
	wb := post(t, h, "/v1/batch", batch)
	if wb.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", wb.Code, wb.Body.String())
	}
	var env batchEnvelope
	if err := json.Unmarshal(wb.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Items) != 1 || !env.Items[0].OK {
		t.Fatalf("batch item failed: %s", wb.Body.String())
	}
	if !bytes.Equal(env.Items[0].Response, bytes.TrimSuffix(w.Body.Bytes(), []byte{'\n'})) {
		t.Error("batch item bytes differ from the direct endpoint's")
	}
	if got := m.Counters()["service.cache.misses"]; got != 1 {
		t.Errorf("%d cache entries after batch, want 1 (batch should reuse the entry)", got)
	}

	// A different variant cap is a different computation, so a new entry.
	w3 := post(t, h, "/v1/optimize", `{"kernel":"twoindexchain","n":32,"cacheElems":256,"autoTile":false,"maxVariants":2}`)
	if w3.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w3.Code, w3.Body.String())
	}
	if got := m.Counters()["service.cache.misses"]; got != 2 {
		t.Errorf("%d cache entries after capped request, want 2", got)
	}
}
