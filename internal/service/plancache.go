package service

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
)

// memoLRU is a bounded, mutex-guarded memo table keyed by exact bytes with
// LRU eviction: the shared machinery behind the single-request plan memo
// and the batch-plan memo. Lookups take the key as a []byte built into
// reused scratch — the []byte→string conversion inside the map index does
// not allocate, so a warm-path hit costs one lock and one map probe; the
// key string is materialized only when an entry is installed.
type memoLRU[V any] struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List
	entries map[string]*list.Element

	hits, misses *obs.Counter
}

// memoEntry is one memoized value.
type memoEntry[V any] struct {
	key string
	val V
}

func newMemoLRU[V any](capacity int, m *obs.Metrics, prefix string) *memoLRU[V] {
	return &memoLRU[V]{
		cap:     capacity,
		lru:     list.New(),
		entries: map[string]*list.Element{},
		hits:    m.Counter(prefix + ".hits"),
		misses:  m.Counter(prefix + ".misses"),
	}
}

// get looks key up, refreshing its LRU position. The zero-allocation hit
// path of the serving layer's request planning.
func (c *memoLRU[V]) get(key []byte) (V, bool) {
	c.mu.Lock()
	if el, ok := c.entries[string(key)]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*memoEntry[V]).val
		c.mu.Unlock()
		c.hits.Inc()
		return v, true
	}
	c.mu.Unlock()
	var zero V
	return zero, false
}

// put installs key→val unless a concurrent put won the race (first insert
// wins — planning is deterministic, so the values are equivalent), then
// evicts down to capacity.
func (c *memoLRU[V]) put(key []byte, val V) {
	c.mu.Lock()
	if _, ok := c.entries[string(key)]; !ok {
		k := string(key)
		c.entries[k] = c.lru.PushFront(&memoEntry[V]{key: k, val: val})
		for c.lru.Len() > c.cap {
			el := c.lru.Back()
			c.lru.Remove(el)
			delete(c.entries, el.Value.(*memoEntry[V]).key)
		}
	}
	c.mu.Unlock()
	c.misses.Inc()
}

// planned is one memoized single-request planning outcome: JSON decode,
// kernel construction, nest parse, canonicalization, key packing. Planning
// is deterministic, so identical bodies always reproduce the same canonical
// key and an equivalent computation; memoizing it moves the per-request hot
// path of a cache-hit request from "parse and canonicalize a nest" to "one
// map lookup". It is strictly an optimization: a body that misses here is
// planned from scratch and a hit can never change a response, only skip
// recomputing its key. Planning errors are cached too (they are equally
// deterministic), which also bounds the work a client re-sending a
// malformed body can cause.
type planned struct {
	key     string
	compute func(context.Context) ([]byte, error)
	err     error
}

const (
	planCacheCap = 1024
	maxPlanBody  = 4 << 10

	batchPlanCacheCap = 128
	maxBatchPlanBody  = 64 << 10
)

// memoKeyPool recycles the scratch the memo keys are assembled into.
var memoKeyPool = sync.Pool{New: func() any { return new([]byte) }}

// memoKeyOf renders (path, body) into scratch as path NUL body. The scratch
// pointer comes from memoKeyPool.
func memoKeyOf(scratch []byte, path string, body []byte) []byte {
	scratch = append(scratch[:0], path...)
	scratch = append(scratch, 0)
	return append(scratch, body...)
}

// planCached resolves a request through the plan memo. Only small bodies
// are memoized so the cache's memory stays bounded by planCacheCap *
// maxPlanBody.
func (s *Service) planCached(path string, body []byte) (string, func(context.Context) ([]byte, error), error) {
	if len(body) > maxPlanBody {
		return s.plan(path, body)
	}
	kp := memoKeyPool.Get().(*[]byte)
	*kp = memoKeyOf(*kp, path, body)
	if p, ok := s.plans.get(*kp); ok {
		memoKeyPool.Put(kp)
		return p.key, p.compute, p.err
	}
	key, compute, err := s.plan(path, body)
	s.plans.put(*kp, &planned{key: key, compute: compute, err: err})
	memoKeyPool.Put(kp)
	return key, compute, err
}

// planBatchCached resolves a /v1/batch body through the batch-plan memo:
// the whole per-request tax — envelope decode, per-item planning, candidate
// expansion — collapses to one map probe when the same batch body repeats,
// which is exactly the cache-hot sweep shape the batch endpoint amortizes.
func (s *Service) planBatchCached(body []byte) *batchPlan {
	if len(body) > maxBatchPlanBody {
		return s.planBatch(body)
	}
	kp := memoKeyPool.Get().(*[]byte)
	*kp = memoKeyOf(*kp, "/v1/batch", body)
	if p, ok := s.batchPlans.get(*kp); ok {
		memoKeyPool.Put(kp)
		return p
	}
	p := s.planBatch(body)
	s.batchPlans.put(*kp, p)
	memoKeyPool.Put(kp)
	return p
}
