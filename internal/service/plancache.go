package service

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
)

// planCache memoizes request planning — JSON decode, kernel construction,
// nest parse, canonicalization, key packing — by exact (path, body) bytes.
// Planning is deterministic, so identical bodies always reproduce the same
// canonical key and an equivalent computation; memoizing it moves the
// per-request hot path of a cache-hit request from "parse and canonicalize
// a nest" to "one map lookup". It is strictly an optimization: a body that
// misses here is planned from scratch and a hit can never change a
// response, only skip recomputing its key.
//
// Planning errors are cached too (they are equally deterministic), which
// also bounds the work a client re-sending a malformed body can cause.
// Only small bodies are memoized so the cache's memory stays bounded by
// planCacheCap * maxPlanBody.
type planCache struct {
	mu      sync.Mutex
	lru     *list.List
	entries map[string]*list.Element

	hits, misses *obs.Counter
}

// planned is one memoized planning outcome.
type planned struct {
	memoKey string
	key     string
	compute func(context.Context) ([]byte, error)
	err     error
}

const (
	planCacheCap = 1024
	maxPlanBody  = 4 << 10
)

func newPlanCache(m *obs.Metrics) *planCache {
	return &planCache{
		lru:     list.New(),
		entries: map[string]*list.Element{},
		hits:    m.Counter("service.plans.hits"),
		misses:  m.Counter("service.plans.misses"),
	}
}

// planCached resolves a request through the memo. Concurrent first
// requests for a body may plan it twice; the duplicate insert loses and
// the work is discarded — planning is cheap enough that singleflight
// machinery here would cost more than it saves.
func (s *Service) planCached(path string, body []byte) (string, func(context.Context) ([]byte, error), error) {
	if len(body) > maxPlanBody {
		return s.plan(path, body)
	}
	c := s.plans
	memoKey := path + "\x00" + string(body)
	c.mu.Lock()
	if el, ok := c.entries[memoKey]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*planned)
		c.mu.Unlock()
		c.hits.Inc()
		return p.key, p.compute, p.err
	}
	c.mu.Unlock()

	key, compute, err := s.plan(path, body)
	c.mu.Lock()
	if _, ok := c.entries[memoKey]; !ok {
		c.entries[memoKey] = c.lru.PushFront(&planned{memoKey: memoKey, key: key, compute: compute, err: err})
		for c.lru.Len() > planCacheCap {
			el := c.lru.Back()
			c.lru.Remove(el)
			delete(c.entries, el.Value.(*planned).memoKey)
		}
	}
	c.mu.Unlock()
	c.misses.Inc()
	return key, compute, err
}
