// Package service is the serving layer of the pipeline: an HTTP JSON API
// exposing the cache model (/v1/analyze, /v1/predict), the §6 tile-size
// search (/v1/tilesearch) and the stack-distance simulator (/v1/simulate)
// as a concurrent network service.
//
// The design centers on three mechanisms:
//
//   - Canonical request keys. Every request resolves to a canonical
//     loopir.Spec (nest source re-rendered by Unparse, environment
//     restricted to the nest's symbols), so syntactically different but
//     equivalent requests — reordered arrays, shuffled env keys, comments,
//     junk bindings — share one cache key.
//
//   - A bounded LRU response cache with singleflight coalescing. The first
//     request for a key becomes the leader and computes; concurrent
//     identical requests wait on the same entry and receive byte-identical
//     bytes. Completed responses are served straight from the cache until
//     evicted. Errors are never cached.
//
//   - Admission control. Leaders run their computation on a fixed worker
//     pool behind a bounded queue; when the queue is full the request is
//     answered 429 immediately. During drain (Server.Drain) new requests
//     are answered 503 while in-flight ones run to completion, so a
//     SIGTERM loses no accepted work.
//
// Every endpoint handler maintains the metric invariant
//
//	service.<ep>.requests == .ok + .errors + .rejected
//
// which the drain storm test asserts under the race detector. Cache
// counters follow the determinism stance of flightCache: misses and hits
// are deterministic for a fixed request script (capacity permitting);
// coalesced is the timing-dependent subset of hits.
package service

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/obs"
)

// Config sizes the service. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers is the number of compute workers; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 means 64. A full queue
	// answers 429.
	QueueDepth int
	// CacheEntries bounds the response LRU; 0 means 256.
	CacheEntries int
	// AnalysisEntries bounds the analysis LRU (canonical nest → analyzed
	// model); 0 means 64.
	AnalysisEntries int
	// RequestTimeout bounds both a computation and a handler's wait for a
	// coalesced result; 0 means 30s. An expired wait answers 504.
	RequestTimeout time.Duration
	// MaxTraceLen rejects /v1/simulate requests whose reference trace
	// exceeds this many accesses; 0 means 1<<28. It gates the exact engine
	// only: the sampled engine walks the trace without simulator state per
	// access and gets the larger MaxSampledTraceLen budget, and the
	// analytic engine never generates a trace at all.
	MaxTraceLen int64
	// MaxSampledTraceLen is MaxTraceLen's counterpart for engine=sampled;
	// 0 means 32 × MaxTraceLen.
	MaxSampledTraceLen int64
	// MaxBatchItems caps the item count of one /v1/batch request; 0 means
	// 256. A batch above the cap is rejected whole with 429 — the same
	// answer an atomically-unschedulable batch gets — so clients have one
	// retry story for "too much at once".
	MaxBatchItems int
	// Obs receives the service instruments (see README's Observability
	// section); nil disables instrumentation.
	Obs *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.AnalysisEntries <= 0 {
		c.AnalysisEntries = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTraceLen <= 0 {
		c.MaxTraceLen = 1 << 28
	}
	if c.MaxSampledTraceLen <= 0 {
		c.MaxSampledTraceLen = 32 * c.MaxTraceLen
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	return c
}

// Service implements the analysis API. Construct with New, mount via
// Handler (or serve via Serve), stop via Server.Drain.
type Service struct {
	cfg      Config
	m        *obs.Metrics
	pool     *workPool
	resp     *flightCache[[]byte]
	analyses *flightCache[*core.Analysis]
	plans    *memoLRU[*planned]
	// batchPlans memoizes whole /v1/batch bodies → decoded, per-item-planned
	// batch plans, so a repeated batch costs one map probe instead of a
	// decode plus N plannings.
	batchPlans *memoLRU[*batchPlan]
	draining   atomic.Bool
	started    time.Time

	total *obs.Counter // "service.requests"
	eps   map[string]*epStats
	// batchItems count per-item outcomes inside /v1/batch requests
	// ("service.batch.items{,.ok,.errors}"); the request-level invariant
	// stays on the "batch" epStats.
	batchItems, batchItemsOK, batchItemsErr *obs.Counter
	// streamFlush times each NDJSON record flush ("service.stream.flush").
	streamFlush *obs.Timer
	// engines counts /v1/simulate computations per engine
	// ("service.simulate.engine.<e>"): computations, not requests — cache
	// hits and coalesced waiters reuse the leader's computation.
	engines map[cachesim.Engine]*obs.Counter
}

// epStats is one endpoint's pre-resolved instruments.
type epStats struct {
	requests, ok, errors, rejected *obs.Counter
	latency                        *obs.Timer
}

// New creates a service. The worker pool starts immediately; a service
// that is never drained leaks its workers, so pair New with Server.Drain
// (or Close in tests).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	m := cfg.Obs
	s := &Service{
		cfg:           cfg,
		m:             m,
		resp:          newFlightCache[[]byte](cfg.CacheEntries, m, "service.cache"),
		analyses:      newFlightCache[*core.Analysis](cfg.AnalysisEntries, m, "service.analyses"),
		plans:         newMemoLRU[*planned](planCacheCap, m, "service.plans"),
		batchPlans:    newMemoLRU[*batchPlan](batchPlanCacheCap, m, "service.batchplans"),
		total:         m.Counter("service.requests"),
		eps:           map[string]*epStats{},
		batchItems:    m.Counter("service.batch.items"),
		batchItemsOK:  m.Counter("service.batch.items.ok"),
		batchItemsErr: m.Counter("service.batch.items.errors"),
		streamFlush:   m.Timer("service.stream.flush"),
		started:       time.Now(),
	}
	s.pool = newWorkPool(cfg.Workers, cfg.QueueDepth, m.Gauge("service.queue.depth"))
	for _, ep := range []string{"analyze", "predict", "tilesearch", "simulate", "optimize", "batch"} {
		s.eps[ep] = &epStats{
			requests: m.Counter("service." + ep + ".requests"),
			ok:       m.Counter("service." + ep + ".ok"),
			errors:   m.Counter("service." + ep + ".errors"),
			rejected: m.Counter("service." + ep + ".rejected"),
			latency:  m.Timer("service." + ep + ".latency"),
		}
	}
	s.engines = map[cachesim.Engine]*obs.Counter{}
	for _, eng := range cachesim.Engines() {
		s.engines[eng] = m.Counter("service.simulate.engine." + string(eng))
	}
	return s
}

// Close stops the worker pool after draining accepted tasks. Handler must
// no longer be receiving requests (tests use httptest.Server.Close first;
// production goes through Server.Drain, which orders this correctly).
func (s *Service) Close() {
	s.draining.Store(true)
	s.pool.close()
}

// HealthStatus is the JSON body of /healthz?v=1: the readiness signal
// enriched with the load facts a cluster router's prober wants — queue
// depth (accepted but unstarted work), response-cache population, the
// draining flag and uptime. The bare /healthz answer (200/503 with the
// original one-field bodies) is unchanged; the enrichment is opt-in so
// existing probes and goldens keep their bytes.
type HealthStatus struct {
	Status             string  `json:"status"` // "ok" or "draining"
	Draining           bool    `json:"draining"`
	UptimeSec          float64 `json:"uptimeSec"`
	QueueDepth         int64   `json:"queueDepth"`
	FlightCacheEntries int64   `json:"flightCacheEntries"`
}

// Health reports the service's current health snapshot.
func (s *Service) Health() HealthStatus {
	h := HealthStatus{
		Status:             "ok",
		Draining:           s.draining.Load(),
		UptimeSec:          time.Since(s.started).Seconds(),
		QueueDepth:         s.pool.depth.Load(),
		FlightCacheEntries: int64(s.resp.len()),
	}
	if h.Draining {
		h.Status = "draining"
	}
	return h
}

// getAnalysis returns the analyzed model for a canonical nest source,
// computing and caching it on first use. Analyses are immutable after
// construction and safe for concurrent use; per-request mutable state
// lives in pooled frames (core.Analysis.GetFrame).
func (s *Service) getAnalysis(ctx context.Context, canonicalNest string) (*core.Analysis, error) {
	e, leader := s.analyses.acquire(canonicalNest)
	if leader {
		var a *core.Analysis
		nest, err := loopir.Parse(canonicalNest)
		if err == nil {
			a, err = core.Analyze(nest)
		}
		s.analyses.complete(e, a, err)
	}
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
