package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/loopir"
	"repro/internal/tilesearch"
)

// ndjsonContentType is the media type of every streamed response: one JSON
// record per line, each line written and flushed whole, so a reader never
// observes a truncated record — a stream that ends early still ends on a
// line boundary, and the terminal record is always a {"summary":...} line.
const ndjsonContentType = "application/x-ndjson"

// flush pushes buffered response bytes to the client at a record boundary,
// timing each flush ("service.stream.flush"). The explicit flush points
// are what make the stream incremental: without them the records would sit
// in the server's write buffer until the response ended.
func (s *Service) flush(fl http.Flusher) {
	if fl == nil {
		return
	}
	sw := s.streamFlush.Start()
	fl.Flush()
	sw.Stop()
}

// batchEndpoint is the /v1/batch handler: the endpoint lifecycle
// (counting, draining, admission) around a planned batch, answering either
// one aggregated JSON envelope or — with ?stream=1 — one NDJSON record per
// item plus a summary line. Exactly one of ok/errors/rejected is counted
// per request, preserving the endpoint metric invariant; per-item outcomes
// are counted separately on service.batch.items{,.ok,.errors}.
func (s *Service) batchEndpoint() http.HandlerFunc {
	st := s.eps["batch"]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := st.latency.Start()
		defer sw.Stop()
		s.total.Inc()
		st.requests.Inc()

		if r.Method != http.MethodPost {
			st.errors.Inc()
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
			return
		}
		if s.draining.Load() {
			st.rejected.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			st.errors.Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		plan := s.planBatchCached(body)
		if plan.err != nil {
			if errors.Is(plan.err, ErrOverload) {
				st.rejected.Inc()
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errorBody{Error: plan.err.Error()})
			} else {
				st.errors.Inc()
				writeJSON(w, http.StatusBadRequest, errorBody{Error: plan.err.Error()})
			}
			return
		}
		sc := getBatchScratch()
		defer putBatchScratch(sc)
		if err := s.batchRun(plan, sc); err != nil {
			st.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
			return
		}
		s.batchItems.Add(int64(len(plan.items)))
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if r.URL.Query().Get("stream") == "1" {
			s.serveBatchStream(ctx, w, plan, sc, st)
			return
		}
		ok, errs := renderBatchEnvelope(plan, sc, func(i int, _ *itemPlan) ([]byte, error) {
			return entryResult(ctx, sc.entries[i])
		})
		s.batchItemsOK.Add(int64(ok))
		s.batchItemsErr.Add(int64(errs))
		// Partial success is a 200: the per-item records carry the taxonomy
		// (status per failed item), and the summary carries the counts.
		st.ok.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(sc.out.Bytes())
	}
}

// serveBatchStream writes the batch result as NDJSON: item records in
// request order as their results land, each line flushed whole, then the
// summary trailer. A request timeout mid-stream turns the remaining items
// into per-item 504 records — the stream still ends with a well-formed
// trailer, never a truncated line. A failed client write stops output but
// still accounts every item (leaders complete on the pool regardless).
func (s *Service) serveBatchStream(ctx context.Context, w http.ResponseWriter, plan *batchPlan, sc *batchScratch, st *epStats) {
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	ok, errs := 0, 0
	writeFailed := false
	for i := range plan.items {
		it := &plan.items[i]
		var data []byte
		ierr := it.err
		if ierr == nil {
			data, ierr = entryResult(ctx, sc.entries[i])
		}
		if ierr == nil {
			ok++
		} else {
			errs++
		}
		if writeFailed {
			continue
		}
		sc.rec = appendItemRecord(sc.rec[:0], i, data, ierr)
		sc.rec = append(sc.rec, '\n')
		if _, werr := w.Write(sc.rec); werr != nil {
			writeFailed = true
			continue
		}
		s.flush(fl)
	}
	if !writeFailed {
		sc.rec = append(sc.rec[:0], `{"summary":`...)
		sc.rec = appendBatchSummary(sc.rec, len(plan.items), ok, errs)
		sc.rec = append(sc.rec, '}', '\n')
		if _, werr := w.Write(sc.rec); werr != nil {
			writeFailed = true
		} else {
			s.flush(fl)
		}
	}
	s.batchItemsOK.Add(int64(ok))
	s.batchItemsErr.Add(int64(errs))
	if writeFailed {
		st.errors.Inc()
	} else {
		st.ok.Inc()
	}
}

// streamTrailer is the terminal record of a tilesearch stream: ok on a
// completed search, otherwise the same status/error taxonomy a
// non-streaming request would have answered as its HTTP status — the
// stream has already committed a 200, so the taxonomy moves into the
// trailer.
type streamTrailer struct {
	Summary streamSummary `json:"summary"`
}

type streamSummary struct {
	OK     bool   `json:"ok"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// planTileSearchStream resolves the request pieces the streaming path
// needs individually (spec and config feed the progress-aware compute
// variant): the same validation, in the same order, as the non-streaming
// plan.
func planTileSearchStream(body []byte, req *TileSearchRequest) (*loopir.Spec, core.CacheConfig, error) {
	var zero core.CacheConfig
	if err := decodeInto(body, req); err != nil {
		return nil, zero, err
	}
	spec, _, err := req.resolve()
	if err != nil {
		return nil, zero, err
	}
	cacheElems, err := cacheElemsOf(req.CacheElems, req.CacheKB)
	if err != nil {
		return nil, zero, err
	}
	cfg, err := assocConfigOf(req.Ways, req.Line, cacheElems)
	if err != nil {
		return nil, zero, err
	}
	return spec, cfg, nil
}

// streamPhaseRecord is one /v1/tilesearch?stream=1 progress line: a
// completed search phase with the best candidate known so far. The records
// are deterministic for a given request (phases are barriers and the
// search is sequential inside its pool slot), so stream output is
// golden-testable like every other response.
type streamPhaseRecord struct {
	Phase      string                   `json:"phase"`
	Round      int64                    `json:"round,omitempty"`
	Candidates int64                    `json:"candidates"`
	Best       tilesearch.CandidateJSON `json:"best"`
}

// streamVariantRecord is one /v1/optimize?stream=1 progress line: a scored
// structural variant with its best candidate. Variants are scored
// sequentially in enumeration order, so the records are deterministic for
// a given request like the tilesearch phase records.
type streamVariantRecord struct {
	Variant   int                      `json:"variant"` // index in enumeration order
	Count     int                      `json:"count"`   // total variants being scored
	Plan      string                   `json:"plan"`
	Best      tilesearch.CandidateJSON `json:"best"`
	Evaluated int                      `json:"evaluated"`
}

// serveOptimizeStream is the ?stream=1 variant of /v1/optimize: one record
// per scored structural variant, then a {"result":...} record carrying the
// exact non-streaming response bytes, then the summary trailer — the same
// shape and error taxonomy as the tilesearch stream.
func (s *Service) serveOptimizeStream(w http.ResponseWriter, r *http.Request) {
	st := s.eps["optimize"]
	sw := st.latency.Start()
	defer sw.Stop()
	s.total.Inc()
	st.requests.Inc()

	if r.Method != http.MethodPost {
		st.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		st.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		st.errors.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	var req OptimizeRequest
	spec, cfg, err := planOptimize(body, &req)
	if err != nil {
		st.errors.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	events := make(chan tilesearch.PlanEvent, 8)
	done := make(chan struct{})
	var data []byte
	var cerr error
	accepted := s.pool.trySubmit(func() {
		defer close(done)
		data, cerr = s.computeOptimizeProgress(ctx, spec, &req, cfg, func(ev tilesearch.PlanEvent) {
			select {
			case events <- ev:
			case <-ctx.Done():
			}
		})
	})
	if !accepted {
		st.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: ErrOverload.Error()})
		return
	}

	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	writeFailed := false
	emit := func(line []byte) {
		if writeFailed {
			return
		}
		if _, werr := w.Write(line); werr != nil {
			writeFailed = true
			return
		}
		s.flush(fl)
	}
	emitEvent := func(ev tilesearch.PlanEvent) {
		line, merr := marshal(streamVariantRecord{
			Variant:   ev.Index,
			Count:     ev.Count,
			Plan:      ev.Plan.String(),
			Best:      tilesearch.CandidateJSON{Tiles: ev.Best.Tiles, Misses: ev.Best.Misses},
			Evaluated: ev.Evaluated,
		})
		if merr == nil {
			emit(line)
		}
	}
	for running := true; running; {
		select {
		case ev := <-events:
			emitEvent(ev)
		case <-done:
			running = false
		}
	}
	for drained := false; !drained; {
		select {
		case ev := <-events:
			emitEvent(ev)
		default:
			drained = true
		}
	}
	if cerr == nil {
		line := append([]byte(`{"result":`), bytes.TrimSuffix(data, []byte{'\n'})...)
		line = append(line, '}', '\n')
		emit(line)
		emit([]byte(`{"summary":{"ok":true}}` + "\n"))
	} else {
		trailer, merr := marshal(streamTrailer{Summary: streamSummary{
			OK:     false,
			Status: statusOf(cerr),
			Error:  cerr.Error(),
		}})
		if merr == nil {
			emit(trailer)
		}
	}
	if cerr != nil || writeFailed {
		st.errors.Inc()
	} else {
		st.ok.Inc()
	}
}

// serveTileSearchStream is the ?stream=1 variant of /v1/tilesearch: phase
// records as the search progresses, then a {"result":...} record carrying
// the exact bytes the non-streaming endpoint would have served, then the
// summary trailer. The search always runs fresh (streamed responses bypass
// the response cache — replaying cached bytes would fake the progress),
// with its computation context tied to the client connection so a
// disconnect cancels the search and frees its pool slot.
func (s *Service) serveTileSearchStream(w http.ResponseWriter, r *http.Request) {
	st := s.eps["tilesearch"]
	sw := st.latency.Start()
	defer sw.Stop()
	s.total.Inc()
	st.requests.Inc()

	if r.Method != http.MethodPost {
		st.errors.Inc()
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		st.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		st.errors.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	var req TileSearchRequest
	spec, cfg, err := planTileSearchStream(body, &req)
	if err != nil {
		st.errors.Inc()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	events := make(chan tilesearch.ProgressEvent, 8)
	done := make(chan struct{})
	var data []byte
	var cerr error
	accepted := s.pool.trySubmit(func() {
		defer close(done)
		data, cerr = s.computeTileSearchProgress(ctx, spec, &req, cfg, func(ev tilesearch.ProgressEvent) {
			select {
			case events <- ev:
			case <-ctx.Done():
			}
		})
	})
	if !accepted {
		st.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: ErrOverload.Error()})
		return
	}

	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	writeFailed := false
	emit := func(line []byte) {
		if writeFailed {
			return
		}
		if _, werr := w.Write(line); werr != nil {
			writeFailed = true
			return
		}
		s.flush(fl)
	}
	emitEvent := func(ev tilesearch.ProgressEvent) {
		line, merr := marshal(streamPhaseRecord{
			Phase:      ev.Phase,
			Round:      ev.Round,
			Candidates: ev.Candidates,
			Best:       tilesearch.CandidateJSON{Tiles: ev.Best.Tiles, Misses: ev.Best.Misses},
		})
		if merr == nil {
			emit(line)
		}
	}
	for running := true; running; {
		select {
		case ev := <-events:
			emitEvent(ev)
		case <-done:
			running = false
		}
	}
	// The progress callback is synchronous, so after done closes only
	// already-buffered events remain; drain them before the terminal
	// records.
	for drained := false; !drained; {
		select {
		case ev := <-events:
			emitEvent(ev)
		default:
			drained = true
		}
	}
	if cerr == nil {
		line := append([]byte(`{"result":`), bytes.TrimSuffix(data, []byte{'\n'})...)
		line = append(line, '}', '\n')
		emit(line)
		emit([]byte(`{"summary":{"ok":true}}` + "\n"))
	} else {
		trailer, merr := marshal(streamTrailer{Summary: streamSummary{
			OK:     false,
			Status: statusOf(cerr),
			Error:  cerr.Error(),
		}})
		if merr == nil {
			emit(trailer)
		}
	}
	if cerr != nil || writeFailed {
		st.errors.Inc()
	} else {
		st.ok.Inc()
	}
}
