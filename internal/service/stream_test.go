package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

const tsStreamFixture = `{"kernel":"matmul","n":32,"tiles":[4,4,4],"cacheKB":4,"dims":{"TI":32,"TJ":32,"TK":32}}`

// ndjsonLines splits a streamed body into its records, requiring every
// line (including the last) to be newline-terminated valid JSON — the
// framing contract: no truncated lines, ever.
func ndjsonLines(t *testing.T, body []byte) [][]byte {
	t.Helper()
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatalf("stream does not end on a line boundary: %q", body)
	}
	var lines [][]byte
	for _, line := range bytes.Split(bytes.TrimSuffix(body, []byte{'\n'}), []byte{'\n'}) {
		if !json.Valid(line) {
			t.Fatalf("invalid NDJSON record: %q", line)
		}
		lines = append(lines, line)
	}
	return lines
}

// TestTileSearchStreamGolden pins the streamed NDJSON output: phase
// records in deterministic order, a result record byte-identical to the
// non-streaming response, and the ok trailer.
func TestTileSearchStreamGolden(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	w := post(t, h, "/v1/tilesearch?stream=1", tsStreamFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Content-Type %q, want %q", ct, ndjsonContentType)
	}
	got := w.Body.Bytes()
	lines := ndjsonLines(t, got)
	if len(lines) < 4 {
		t.Fatalf("only %d records; want coarse, frontier, refines, result, summary:\n%s", len(lines), got)
	}
	if string(lines[len(lines)-1]) != `{"summary":{"ok":true}}` {
		t.Errorf("trailer %s, want ok summary", lines[len(lines)-1])
	}

	// The embedded result is the non-streaming endpoint's response.
	var resultRec struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(lines[len(lines)-2], &resultRec); err != nil || resultRec.Result == nil {
		t.Fatalf("second-to-last record is not a result: %s", lines[len(lines)-2])
	}
	direct, err := svc.Compute(context.Background(), "/v1/tilesearch", []byte(tsStreamFixture))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultRec.Result, bytes.TrimSuffix(direct, []byte{'\n'})) {
		t.Errorf("streamed result differs from direct Compute:\nstream: %s\ndirect: %s", resultRec.Result, direct)
	}

	// Phase records lead with the coarse sweep; every one carries a best.
	var first struct {
		Phase      string `json:"phase"`
		Candidates int64  `json:"candidates"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Phase != "coarse" || first.Candidates == 0 {
		t.Errorf("first record %s, want a coarse phase with candidates", lines[0])
	}

	golden := filepath.Join("testdata", "tilesearch_stream.golden.ndjson")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stream differs from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestBatchStream: the streamed batch emits exactly the envelope's item
// records as lines plus the summary trailer, so stream and aggregate forms
// are two framings of identical bytes.
func TestBatchStream(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	w := post(t, h, "/v1/batch?stream=1", batchFixture)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines := ndjsonLines(t, w.Body.Bytes())

	agg := post(t, h, "/v1/batch", batchFixture)
	if agg.Code != http.StatusOK {
		t.Fatalf("aggregate status %d", agg.Code)
	}
	var env batchEnvelope
	if err := json.Unmarshal(agg.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(env.Items)+1 {
		t.Fatalf("%d stream records for %d items (+1 summary)", len(lines), len(env.Items))
	}
	// Each line must byte-match the corresponding aggregate record; rebuild
	// the aggregate's records the same way the server does.
	for i, it := range env.Items {
		var wantRec []byte
		if it.OK {
			wantRec = appendItemRecord(nil, i, append(it.Response, '\n'), nil)
		} else {
			if !bytes.Contains(lines[i], []byte(`"ok":false`)) {
				t.Errorf("line %d should be an error record: %s", i, lines[i])
			}
			continue
		}
		if !bytes.Equal(lines[i], wantRec) {
			t.Errorf("stream line %d differs from aggregate record:\nstream: %s\nagg:    %s", i, lines[i], wantRec)
		}
	}
	wantTrailer := append([]byte(`{"summary":`), appendBatchSummary(nil, env.Summary.Items, env.Summary.OK, env.Summary.Errors)...)
	wantTrailer = append(wantTrailer, '}')
	if !bytes.Equal(lines[len(lines)-1], wantTrailer) {
		t.Errorf("trailer %s, want %s", lines[len(lines)-1], wantTrailer)
	}
}

// TestStreamNotSupported: point-lookup endpoints reject ?stream=1 loudly
// instead of silently answering one JSON document.
func TestStreamNotSupported(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	for _, path := range []string{"/v1/analyze", "/v1/predict", "/v1/simulate"} {
		w := post(t, h, path+"?stream=1", `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s?stream=1: status %d, want 400", path, w.Code)
		}
	}
}

// TestPretty: ?pretty=1 re-indents the compact cached bytes at write time;
// the cache itself stays compact (the second compact request proves it).
func TestPretty(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()
	body := `{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`
	compact := post(t, h, "/v1/predict", body)
	pretty := post(t, h, "/v1/predict?pretty=1", body)
	if compact.Code != http.StatusOK || pretty.Code != http.StatusOK {
		t.Fatalf("status %d / %d", compact.Code, pretty.Code)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSuffix(compact.Body.Bytes(), []byte{'\n'}), "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	if !bytes.Equal(pretty.Body.Bytes(), buf.Bytes()) {
		t.Errorf("pretty output is not the indentation of the compact bytes:\n%s", pretty.Body.String())
	}
	if bytes.Equal(pretty.Body.Bytes(), compact.Body.Bytes()) {
		t.Error("pretty and compact responses are identical")
	}
	again := post(t, h, "/v1/predict", body)
	if !bytes.Equal(again.Body.Bytes(), compact.Body.Bytes()) {
		t.Error("compact bytes changed after a pretty request (cache contaminated)")
	}
}

// TestStreamClientDisconnect: a client that walks away mid-stream cancels
// the search — the worker-pool slot is released (the single worker can
// serve the next request) and the endpoint's metric balance still holds.
func TestStreamClientDisconnect(t *testing.T) {
	m := obs.New()
	svc := New(Config{Obs: m, Workers: 1, QueueDepth: 1})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	// A search big enough to outlive the first record read.
	big := `{"kernel":"matmul","n":4096,"cacheKB":256,"dims":{"TI":4096,"TJ":4096,"TK":4096}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/tilesearch?stream=1", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read one record, then hang up.
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		t.Fatalf("first record: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The slot must come back: the same single-worker pool serves a fresh
	// request promptly.
	waitUntil(t, "handler finish", func() bool {
		c := m.Counters()
		return c["service.tilesearch.ok"]+c["service.tilesearch.errors"]+c["service.tilesearch.rejected"] ==
			c["service.tilesearch.requests"]
	})
	r2, err := http.Post(srv.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"kernel":"matmul","n":16,"tiles":[4,4,4],"cacheKB":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("request after disconnect: status %d, want 200 (slot leaked?)", r2.StatusCode)
	}
}

// TestDrainDuringStream: a drain beginning mid-stream lets the stream run
// to its trailer — SIGTERM never truncates a record — while new requests
// are turned away.
func TestDrainDuringStream(t *testing.T) {
	m := obs.New()
	svc := New(Config{Obs: m, Workers: 2, QueueDepth: 4})
	sv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + sv.Addr()

	big := `{"kernel":"matmul","n":1024,"cacheKB":64,"dims":{"TI":1024,"TJ":1024,"TK":1024}}`
	resp, err := http.Post(base+"/v1/tilesearch?stream=1", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first record: %v", err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- sv.Drain(ctx)
	}()

	// Read the remainder; the final line must be a well-formed trailer.
	var last []byte
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			last = append(last[:0], line...)
		}
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !bytes.HasSuffix(last, []byte("\n")) || !json.Valid(bytes.TrimSuffix(last, []byte{'\n'})) {
		t.Fatalf("stream ended on a truncated line: %q", last)
	}
	if !bytes.Contains(last, []byte(`"summary"`)) {
		t.Errorf("final record %s is not a summary trailer", last)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
