package simbench

import (
	"repro/internal/core"
	"repro/internal/validate"
)

// Set-associative benchmark workload: the accuracy of the conflict-aware
// model against the AssocCache ground truth, and the cost of one
// conflict-aware prediction. Shared by the go-test benchmarks
// (assoc_test.go) and cmd/simbench -assoc, which writes BENCH_assoc.json,
// the same way the trace-pipeline workloads are shared.

// AssocCapacities is the capacity set the assoc artifact reports at: the
// 512-element cache where the n=64 matmul's stride-64 lattices resonate,
// and a 16 KB cache where they mostly do not.
func AssocCapacities() []int64 {
	return []int64{512, 2048}
}

// AssocWays is the associativity sweep of the assoc artifact.
func AssocWays() []int64 {
	return []int64{1, 2, 4, 8}
}

// RunAssocAccuracy plays the workload's trace through one AssocCache per
// capacity at the given associativity and pairs each simulated count with
// both models' predictions.
func (w *Workload) RunAssocAccuracy(ways int64) ([]validate.AssocComparison, error) {
	return validate.RunAssoc(w.Analysis, w.Env, AssocCapacities(), ways, 1)
}

// PredictConflict is one conflict-aware model evaluation through the
// pooled-frame fast path: the unit the ns/prediction measurements time.
func (w *Workload) PredictConflict(cfg core.CacheConfig) (int64, error) {
	f := w.Analysis.GetFrame()
	defer w.Analysis.PutFrame(f)
	f.Bind(w.Env)
	rep, err := w.Analysis.PredictMissesFrameConfig(f, cfg)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}

// PredictFA is the fully-associative counterpart of PredictConflict: the
// baseline the conflict term's overhead is quoted against.
func (w *Workload) PredictFA(capacity int64) (int64, error) {
	f := w.Analysis.GetFrame()
	defer w.Analysis.PutFrame(f)
	f.Bind(w.Env)
	rep, err := w.Analysis.PredictMissesFrame(f, capacity)
	if err != nil {
		return 0, err
	}
	return rep.Total, nil
}
