package simbench

import (
	"testing"

	"repro/internal/core"
)

// TestAssocAccuracyAgreesWithModels is the package's own cross-check of the
// assoc workload: the comparisons carry the same predictions the model
// entry points produce directly, so the artifact numbers are the model's.
func TestAssocAccuracyAgreesWithModels(t *testing.T) {
	w, err := Matmul(16, []int64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	cmps, err := w.RunAssocAccuracy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != len(AssocCapacities()) {
		t.Fatalf("%d comparisons for %d capacities", len(cmps), len(AssocCapacities()))
	}
	for _, c := range cmps {
		fa, err := w.PredictFA(c.CacheElems)
		if err != nil {
			t.Fatal(err)
		}
		conf, err := w.PredictConflict(core.CacheConfig{CapacityElems: c.CacheElems, Ways: 1, LineElems: 1})
		if err != nil {
			t.Fatal(err)
		}
		if fa != c.PredictedFA || conf != c.PredictedConflict {
			t.Errorf("cap %d: direct predictions %d/%d, comparison carries %d/%d",
				c.CacheElems, fa, conf, c.PredictedFA, c.PredictedConflict)
		}
	}
}

// BenchmarkAssocPredictConflict times one conflict-aware prediction on the
// benchmark workload at a direct-mapped 512-element geometry: the
// ns/prediction figure in BENCH_assoc.json.
func BenchmarkAssocPredictConflict(b *testing.B) {
	w := workload(b)
	cfg := core.CacheConfig{CapacityElems: 512, Ways: 1, LineElems: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.PredictConflict(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssocPredictFA is the fully-associative prediction on the same
// workload and capacity: the baseline the conflict term's overhead is
// quoted against.
func BenchmarkAssocPredictFA(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.PredictFA(512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssocSimulate is the AssocCache ground truth at the same
// geometry: what the model-vs-simulator speed gap in the artifact is
// measured against.
func BenchmarkAssocSimulate(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunAssocAccuracy(1); err != nil {
			b.Fatal(err)
		}
	}
	reportPerAccess(b, w.Accesses)
}
