package simbench

import "testing"

// The GenOnly benchmarks isolate trace *generation* from simulation by
// feeding the emitted accesses to a no-op consumer. They decompose the
// end-to-end SimScalar/SimBatched numbers: the per-access interpreter
// overhead that RunBlocks' leaf-stride walker amortizes away is visible
// here directly.

func BenchmarkGenScalarOnly(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Prog.RunScalar(func(int, int64) {})
	}
	reportPerAccess(b, w.Accesses)
}

func BenchmarkGenBatchedOnly(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Prog.RunBlocks(0, func([]int32, []int64) {})
	}
	reportPerAccess(b, w.Accesses)
}
