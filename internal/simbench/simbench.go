// Package simbench defines the simulator benchmark workloads shared by the
// committed benchmark suite (simbench_test.go) and cmd/simbench, which
// writes the BENCH_sim.json artifact. Keeping the workload definitions in
// one place guarantees the artifact measures exactly what the go-test
// benchmarks measure.
package simbench

import (
	"repro/internal/cachesim"
	"repro/internal/cachesim/analytic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/trace"
	"repro/internal/validate"
)

// Workload is one compiled trace-simulation problem. Analysis and Env
// carry the compiled closed-form model alongside the trace program, so the
// same workload can be played through every engine (exact, sampled,
// analytic).
type Workload struct {
	Name     string
	Prog     *trace.Program
	Analysis *core.Analysis
	Env      expr.Env
	Accesses int64
	Watches  []int64
}

// Matmul builds the standard tiled-matmul workload: the kernel whose
// simulation cost the batched pipeline is tuned on. n=64 with 8×8×8 tiles
// is the benchmark configuration committed in BENCH_sim.json (about 786k
// accesses — large enough to swamp per-run setup, small enough for CI).
func Matmul(n int64, tiles []int64) (*Workload, error) {
	nest, env, err := experiments.BuildKernel("matmul", n, tiles)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(nest)
	if err != nil {
		return nil, err
	}
	p, err := trace.Compile(nest, env)
	if err != nil {
		return nil, err
	}
	total, err := p.Length()
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:     "matmul-n64",
		Prog:     p,
		Analysis: a,
		Env:      env,
		Accesses: total,
		Watches:  []int64{experiments.KB(16), experiments.KB(64)},
	}, nil
}

// RunScalar simulates the workload through the frozen pre-batching
// pipeline: per-access emission (trace.RunScalar) feeding the Fenwick-tree
// reference simulator. This is the baseline BENCH_sim.json speedups are
// quoted against.
func (w *Workload) RunScalar() cachesim.Results {
	sim := cachesim.NewReferenceSim(w.Prog.Size, len(w.Prog.Sites), w.Watches)
	w.Prog.RunScalar(sim.Access)
	return sim.Results()
}

// RunBatched simulates the workload through the batched pipeline
// (trace.RunBlocks feeding StackSim.AccessBlock). blockSize 0 means
// trace.DefaultBlockSize.
func (w *Workload) RunBatched(blockSize int) cachesim.Results {
	sim := cachesim.NewStackSim(w.Prog.Size, len(w.Prog.Sites), w.Watches)
	w.Prog.RunBlocks(blockSize, sim.AccessBlock)
	return sim.Results()
}

// RunSampled simulates the workload through the SHARDS-style sampled
// engine. log2Rate below 0 picks the default rate for the address space;
// seed 0 selects cachesim.DefaultSampleSeed.
func (w *Workload) RunSampled(log2Rate int, seed uint64) cachesim.Results {
	if log2Rate < 0 {
		log2Rate = cachesim.DefaultLog2Rate(w.Prog.Size)
	}
	sim := cachesim.NewSampledSim(w.Prog.Size, len(w.Prog.Sites), w.Watches, log2Rate, seed)
	w.Prog.RunBlocks(0, sim.AccessBlock)
	return sim.Results()
}

// RunAnalytic evaluates the workload's closed-form model at the watched
// capacities — no trace is generated or walked.
func (w *Workload) RunAnalytic() (cachesim.Results, error) {
	res, _, err := analytic.Simulate(w.Analysis, w.Env, w.Watches)
	return res, err
}

// SweepCases builds the differential-sweep benchmark corpus: the tiled
// matmul analysis evaluated under several bound/tile combinations. Each
// case is an independent simulation, which is what validate.RunSweep
// distributes over its worker pool.
func SweepCases() ([]validate.Case, error) {
	a, err := experiments.MatmulAnalysis()
	if err != nil {
		return nil, err
	}
	var cases []validate.Case
	for _, cfg := range []struct {
		n, t int64
	}{
		{48, 8}, {48, 16}, {64, 8}, {64, 16}, {64, 32}, {80, 8}, {80, 16}, {96, 32},
	} {
		cases = append(cases, validate.Case{
			Name:     "matmul",
			Analysis: a,
			Env:      expr.Env{"N": cfg.n, "TI": cfg.t, "TJ": cfg.t, "TK": cfg.t},
		})
	}
	return cases, nil
}

// SweepWatches is the capacity set the sweep benchmark validates at.
func SweepWatches() []int64 {
	return []int64{experiments.KB(16), experiments.KB(64)}
}

// RunSweep runs the benchmark sweep at the given pool width through either
// pipeline.
func RunSweep(cases []validate.Case, parallelism int, scalar bool) ([][]validate.Comparison, error) {
	return validate.RunSweep(cases, SweepWatches(), validate.SweepOptions{
		Parallelism: parallelism,
		Scalar:      scalar,
	})
}
