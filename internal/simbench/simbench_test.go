package simbench

import (
	"reflect"
	"testing"
)

// TestWorkloadPathsAgree is the package's own differential check: the two
// pipelines must produce identical Results on the benchmark workload.
func TestWorkloadPathsAgree(t *testing.T) {
	w, err := Matmul(16, []int64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	scalar := w.RunScalar()
	batched := w.RunBatched(0)
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatalf("pipelines diverge on %s:\nscalar  %+v\nbatched %+v", w.Name, scalar, batched)
	}
	if scalar.Accesses != w.Accesses {
		t.Fatalf("simulated %d accesses, workload declares %d", scalar.Accesses, w.Accesses)
	}
}

// TestSweepPathsAgree checks the sweep corpus through both pipelines at
// two pool widths.
func TestSweepPathsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep corpus is slow")
	}
	cases, err := SweepCases()
	if err != nil {
		t.Fatal(err)
	}
	cases = cases[:3]
	ref, err := RunSweep(cases, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweep(cases, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("sweep pipelines diverge")
	}
}

// benchWorkload caches the compiled benchmark workload across benchmarks.
var benchWorkload *Workload

func workload(b *testing.B) *Workload {
	if benchWorkload == nil {
		w, err := Matmul(64, []int64{8, 8, 8})
		if err != nil {
			b.Fatal(err)
		}
		benchWorkload = w
	}
	return benchWorkload
}

func reportPerAccess(b *testing.B, accesses int64) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*accesses), "ns/access")
}

// BenchmarkSimScalar is the pre-batching baseline: per-access tree walk
// feeding per-access stack simulation.
func BenchmarkSimScalar(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunScalar()
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSimBatched is the batched pipeline at the default block size.
func BenchmarkSimBatched(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunBatched(0)
	}
	reportPerAccess(b, w.Accesses)
}

// BenchmarkSweepScalarSeq is the validate differential sweep, sequential
// scalar — the pre-PR configuration.
func BenchmarkSweepScalarSeq(b *testing.B) {
	cases, err := SweepCases()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(cases, 1, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBatchedSharded is the sweep on the batched pipeline with an
// 8-wide worker pool.
func BenchmarkSweepBatchedSharded(b *testing.B) {
	cases, err := SweepCases()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweep(cases, 8, false); err != nil {
			b.Fatal(err)
		}
	}
}
